// Observer-overhead smoke test: the probe layer's contract is that an
// unobserved run is free. The repo's CI bench-smoke job runs this with
// MOUSE_BENCH_SMOKE=1 and fails the build if attaching the no-op
// observer to the SVM MachineRunner benchmark adds any allocations or
// more than 2% latency.
package mouse_test

import (
	"io"
	"os"
	"testing"
	"time"

	"mouse/internal/controller"
	"mouse/internal/metrics"
	"mouse/internal/probe"
	"mouse/internal/sim"
)

// TestNopObserverOverhead compares the SVM MachineRunner workload with
// no observer against the same workload with probe.Nop attached:
// allocations must match exactly and the best-of-N latency ratio must
// stay under 1.02. Gated behind MOUSE_BENCH_SMOKE=1 because a timing
// assertion has no place in the default unit-test run.
func TestNopObserverOverhead(t *testing.T) {
	if os.Getenv("MOUSE_BENCH_SMOKE") == "" {
		t.Skip("set MOUSE_BENCH_SMOKE=1 to run the observer-overhead smoke benchmark")
	}
	mach, prog := setupSVMMachine(t, false)

	measure := func(obs probe.Observer) (bestNs float64, allocs int64) {
		const rounds = 5
		for i := 0; i < rounds; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for j := 0; j < b.N; j++ {
					c := controller.New(controller.ProgramStore(prog), mach)
					mr := sim.NewMachineRunner(c)
					mr.Obs = obs
					res, err := mr.Run(nil)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Completed {
						b.Fatal("run did not complete")
					}
				}
			})
			if ns := float64(r.NsPerOp()); i == 0 || ns < bestNs {
				bestNs = ns
			}
			allocs = r.AllocsPerOp()
		}
		return bestNs, allocs
	}

	baseNs, baseAllocs := measure(nil)
	nopNs, nopAllocs := measure(probe.Nop{})

	if nopAllocs != baseAllocs {
		t.Errorf("no-op observer changes allocations: %d -> %d allocs/op", baseAllocs, nopAllocs)
	}
	ratio := nopNs / baseNs
	t.Logf("nil %.0f ns/op, Nop %.0f ns/op (%.4fx), %d allocs/op", baseNs, nopNs, ratio, baseAllocs)
	if ratio > 1.02 {
		t.Errorf("no-op observer costs %.2f%% latency, budget is 2%%", (ratio-1)*100)
	}
}

// TestMetricsBridgeOverhead extends the gate to the metrics registry:
// bridging a probe.Stats into a registry that a background goroutine
// scrapes every 10ms — hundreds of times faster than any real
// Prometheus interval — must stay within 2% of feeding the bare Stats.
// The bridge does all conversion at scrape time from Section snapshots,
// so the simulation-side cost should be indistinguishable from Stats
// alone. Same MOUSE_BENCH_SMOKE gate as above.
func TestMetricsBridgeOverhead(t *testing.T) {
	if os.Getenv("MOUSE_BENCH_SMOKE") == "" {
		t.Skip("set MOUSE_BENCH_SMOKE=1 to run the metrics-overhead smoke benchmark")
	}
	mach, prog := setupSVMMachine(t, false)

	measure := func(obs probe.Observer) float64 {
		const rounds = 5
		var bestNs float64
		for i := 0; i < rounds; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				for j := 0; j < b.N; j++ {
					c := controller.New(controller.ProgramStore(prog), mach)
					mr := sim.NewMachineRunner(c)
					mr.Obs = obs
					res, err := mr.Run(nil)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Completed {
						b.Fatal("run did not complete")
					}
				}
			})
			if ns := float64(r.NsPerOp()); i == 0 || ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs
	}

	bareNs := measure(&probe.Stats{})

	stats := &probe.Stats{}
	reg := metrics.New()
	metrics.ExportStats(reg, "mouse_probe", stats.Section)
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if err := reg.WriteText(io.Discard); err != nil {
					panic(err)
				}
			}
		}
	}()
	bridgedNs := measure(stats)
	close(stop)
	<-scraperDone

	ratio := bridgedNs / bareNs
	t.Logf("bare Stats %.0f ns/op, bridged+scraped %.0f ns/op (%.4fx)", bareNs, bridgedNs, ratio)
	if ratio > 1.02 {
		t.Errorf("metrics bridge costs %.2f%% latency under continuous scraping, budget is 2%%", (ratio-1)*100)
	}
}
