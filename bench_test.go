// Package mouse's benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation (run with
// go test -bench=. -benchmem), plus microbenchmarks of the simulator's
// hot paths. Each table/figure benchmark reports the paper-relevant
// headline quantity as a custom metric so `-bench` output doubles as a
// results table; the full formatted tables come from cmd/mousebench.
package mouse_test

import (
	"io"
	"testing"

	"mouse/internal/array"
	"mouse/internal/bench"
	"mouse/internal/bnn"
	"mouse/internal/compile"
	"mouse/internal/controller"
	"mouse/internal/dataset"
	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/sim"
	"mouse/internal/svm"
	"mouse/internal/workload"
)

// --- Table I: interrupted-gate safety -------------------------------------

func BenchmarkTableI(b *testing.B) {
	cfg := mtj.ModernSTT()
	for i := 0; i < b.N; i++ {
		rows := bench.ComputeTableI(cfg)
		for _, r := range rows {
			if r.Output != r.Correct {
				b.Fatalf("unsafe interruption case: %+v", r)
			}
		}
	}
}

// --- Table III: area model -------------------------------------------------

func BenchmarkTableIII(b *testing.B) {
	var area float64
	for i := 0; i < b.N; i++ {
		rows := bench.ComputeTableIII()
		area = rows[0].ModernSTT
	}
	b.ReportMetric(area, "mm2-mnist-modern")
}

// --- Table IV: continuous-power comparison ---------------------------------

func BenchmarkTableIV(b *testing.B) {
	var rows []bench.TableIVRow
	for i := 0; i < b.N; i++ {
		rows = bench.ComputeTableIV(0)
	}
	for _, r := range rows {
		if r.System == "MOUSE SVM (Modern STT)" && r.Benchmark == "SVM MNIST (Bin)" {
			b.ReportMetric(r.LatencyUS, "µs-mnist-bin")
			b.ReportMetric(r.EnergyUJ, "µJ-mnist-bin")
		}
	}
}

// Per-benchmark continuous runs (the six MOUSE rows of Table IV).
func BenchmarkTableIVRow(b *testing.B) {
	r := sim.NewRunner(energy.NewModel(mtj.ModernSTT()))
	for _, s := range workload.Benchmarks() {
		b.Run(s.Name, func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				res = r.RunContinuous(s.Stream())
			}
			b.ReportMetric(res.OnLatency*1e6, "µs-latency")
			b.ReportMetric(res.TotalEnergy()*1e6, "µJ-energy")
		})
	}
}

// --- Fig. 9: latency vs power source ---------------------------------------

func benchmarkFig9(b *testing.B, cfg *mtj.Config) {
	powers := []float64{60e-6, 500e-6, 5e-3}
	var points []bench.Fig9Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = bench.ComputeFig9(cfg, powers, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.System == "SVM MNIST (Bin)" && p.Watts == 60e-6 {
			b.ReportMetric(p.LatencySec, "s-mnistbin-60µW")
		}
	}
}

func BenchmarkFig9ModernSTT(b *testing.B)    { benchmarkFig9(b, mtj.ModernSTT()) }
func BenchmarkFig9ProjectedSTT(b *testing.B) { benchmarkFig9(b, mtj.ProjectedSTT()) }
func BenchmarkFig9SHE(b *testing.B)          { benchmarkFig9(b, mtj.ProjectedSHE()) }

// The sweep engine's headline: the full Fig. 9 grid (8 systems × 8
// power points) at one worker vs one worker per CPU. The ratio between
// these two is the harness speedup recorded in BENCH_*.json trajectory
// files.
func benchmarkFig9Sweep(b *testing.B, workers int) {
	cfg := mtj.ModernSTT()
	for i := 0; i < b.N; i++ {
		points, err := bench.ComputeFig9(cfg, bench.Powers(), workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 8*len(bench.Powers()) {
			b.Fatalf("%d points", len(points))
		}
	}
}

func BenchmarkFig9SweepSerial(b *testing.B)   { benchmarkFig9Sweep(b, 1) }
func BenchmarkFig9SweepParallel(b *testing.B) { benchmarkFig9Sweep(b, 0) }

// Stepping vs segment A/B on one Fig. 9 row (a benchmark's full power
// sweep, single worker): the intermittent-path speedup the segment
// engine delivers, tracked so engine regressions show up in
// `go test -bench Fig9Row`. Both variants compute bit-identical
// Results; only the engine differs.
func benchmarkFig9Row(b *testing.B, force bool) {
	cfg := mtj.ModernSTT()
	model := energy.NewModel(cfg)
	spec := workload.Benchmarks()[0] // SVM MNIST
	powers := bench.Powers()
	var restarts uint64
	for i := 0; i < b.N; i++ {
		restarts = 0
		if force {
			for _, watts := range powers {
				r := sim.NewRunner(model)
				r.ForceStepping = true
				h := power.NewHarvester(power.Constant{W: watts}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
				res, err := r.Run(spec.Stream(), h)
				if err != nil {
					b.Fatal(err)
				}
				restarts += res.Restarts
			}
		} else {
			hs := make([]*power.Harvester, len(powers))
			for j, watts := range powers {
				hs[j] = power.NewHarvester(power.Constant{W: watts}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
			}
			results, errs := sim.NewRunner(model).RunSweep(spec.Stream(), hs)
			for j, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
				restarts += results[j].Restarts
			}
		}
	}
	b.ReportMetric(float64(restarts), "restarts")
}

func BenchmarkFig9RowStepping(b *testing.B) { benchmarkFig9Row(b, true) }
func BenchmarkFig9RowSegment(b *testing.B)  { benchmarkFig9Row(b, false) }

// --- Figs. 10–12: breakdowns at 60 µW --------------------------------------

func benchmarkBreakdown(b *testing.B, cfg *mtj.Config) {
	var rows []bench.BreakdownRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.ComputeBreakdown(cfg, 60e-6, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	backup, dead, restore := bench.AverageShares(rows)
	b.ReportMetric(100*backup, "%-backup")
	b.ReportMetric(100*dead, "%-dead")
	b.ReportMetric(100*restore, "%-restore")
}

func BenchmarkFig10BreakdownModernSTT(b *testing.B)    { benchmarkBreakdown(b, mtj.ModernSTT()) }
func BenchmarkFig11BreakdownProjectedSTT(b *testing.B) { benchmarkBreakdown(b, mtj.ProjectedSTT()) }
func BenchmarkFig12BreakdownSHE(b *testing.B)          { benchmarkBreakdown(b, mtj.ProjectedSHE()) }

// --- Fig. 9 crossover (Section IX) -----------------------------------------

func BenchmarkCrossover(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		var err error
		p, err = bench.CrossoverPowerW(mtj.ModernSTT(), 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p*1e3, "mW-crossover")
}

// --- ablations: design choices DESIGN.md calls out --------------------------

// BenchmarkAblationParallelism sweeps the column parallelism budget,
// the latency/power trade-off of Section IV-C.
func BenchmarkAblationParallelism(b *testing.B) {
	spec, err := workload.ByName("SVM MNIST (Bin)")
	if err != nil {
		b.Fatal(err)
	}
	r := sim.NewRunner(energy.NewModel(mtj.ModernSTT()))
	for _, budget := range []int{1024, 4096, 8192, 32768} {
		s := spec
		s.ParallelBudget = budget
		b.Run(fmtInt(budget), func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				res = r.RunContinuous(s.Stream())
			}
			b.ReportMetric(res.OnLatency*1e6, "µs-latency")
			b.ReportMetric(res.TotalEnergy()*1e6, "µJ-energy")
		})
	}
}

// BenchmarkAblationCapacitor sweeps the energy-buffer size (the
// Capybara-style tuning knob of Section IX).
func BenchmarkAblationCapacitor(b *testing.B) {
	spec, err := workload.ByName("SVM ADULT")
	if err != nil {
		b.Fatal(err)
	}
	cfg := mtj.ModernSTT()
	r := sim.NewRunner(energy.NewModel(cfg))
	for _, c := range []float64{10e-6, 100e-6, 1e-3} {
		b.Run(fmtCap(c), func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				h := power.NewHarvester(power.Constant{W: 60e-6}, c, cfg.CapVMin, cfg.CapVMax)
				var err error
				res, err = r.Run(spec.Stream(), h)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.TotalLatency(), "s-latency")
			b.ReportMetric(float64(res.Restarts), "restarts")
		})
	}
}

// --- microbenchmarks ---------------------------------------------------------

func BenchmarkGateEnergyModel(b *testing.B) {
	cfg := mtj.ModernSTT()
	var e float64
	for i := 0; i < b.N; i++ {
		e += mtj.GateEnergy(mtj.NAND2, cfg)
	}
	_ = e
}

// BenchmarkTileLogic1024Columns measures the scalar resistor-network
// path (one network solve + pulse integration per cell) — the engine
// interrupted operations still use.
func BenchmarkTileLogic1024Columns(b *testing.B) {
	tile := array.NewTile(mtj.ModernSTT(), 16, 1024)
	cols := make([]uint16, 1024)
	for i := range cols {
		cols[i] = uint16(i)
	}
	tile.SetActive(cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tile.ExecLogic(mtj.NAND2, []int{0, 2}, 1, array.FullPulse); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTileLogicPacked1024Columns measures the packed word-parallel
// path for the same operation: 64 columns per boolean word step from
// the memoized gate truth table.
func BenchmarkTileLogicPacked1024Columns(b *testing.B) {
	tile := array.NewTile(mtj.ModernSTT(), 16, 1024)
	cols := make([]uint16, 1024)
	for i := range cols {
		cols[i] = uint16(i)
	}
	tile.SetActive(cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tile.ExecLogicFull(mtj.NAND2, []int{0, 2}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- packed engine end-to-end: MachineRunner inference, packed vs scalar ---

// setupSVMMachine trains the ADULT SVM workload and maps it onto a
// bit-accurate machine with the first test sample loaded, returning the
// machine and its program. Shared by the packed-vs-scalar benchmarks
// and the observer-overhead smoke test.
func setupSVMMachine(tb testing.TB, forceScalar bool) (*array.Machine, isa.Program) {
	tb.Helper()
	ds := dataset.Adult(77, 24, 10)
	m, err := svm.Train(ds, svm.DefaultTrainConfig())
	if err != nil {
		tb.Fatal(err)
	}
	im, err := m.Quantize(10)
	if err != nil {
		tb.Fatal(err)
	}
	mp, err := svm.CompileParallelMapping(im, 1024, 8)
	if err != nil {
		tb.Fatal(err)
	}
	mach := array.NewMachine(mtj.ModernSTT(), 1, 1024, mp.Columns)
	mach.ForceScalar = forceScalar
	for j, rows := range mp.InputRows {
		for bi, row := range rows {
			bit := (ds.Test[0].X[j] >> bi) & 1
			for col := 0; col < mp.Columns; col++ {
				mach.Tiles[0].SetBit(row, col, bit)
			}
		}
	}
	return mach, mp.Prog
}

// benchmarkMachineRunnerSVM runs a full SV-parallel SVM inference on
// the bit-accurate machine under the MachineRunner (continuous power),
// with the logic engine pinned to the packed or scalar path. The ratio
// packed/scalar is the PR 3 headline recorded next to BENCH_1.json.
func benchmarkMachineRunnerSVM(b *testing.B, forceScalar bool) {
	mach, prog := setupSVMMachine(b, forceScalar)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := controller.New(controller.ProgramStore(prog), mach)
		res, err := sim.NewMachineRunner(c).Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("run did not complete")
		}
	}
}

func BenchmarkMachineRunnerSVMPacked(b *testing.B) { benchmarkMachineRunnerSVM(b, false) }
func BenchmarkMachineRunnerSVMScalar(b *testing.B) { benchmarkMachineRunnerSVM(b, true) }

// benchmarkMachineRunnerBNN runs a column-batched BNN inference (64
// samples per pass) through the MachineRunner, packed vs scalar.
func benchmarkMachineRunnerBNN(b *testing.B, forceScalar bool) {
	const feats = 64
	const batch = 64
	small := &dataset.Set{Name: "t", NumFeatures: feats, NumClasses: 10}
	for i := 0; i < 40; i++ {
		x := make([]int, feats)
		for j := range x {
			x[j] = (i*j + j%3) & 1
		}
		small.Train = append(small.Train, dataset.Sample{X: x, Label: i % 10})
	}
	small.Test = small.Train[:4]
	cfg := bnn.Config{Name: "t", In: feats, Hidden: []int{16}, Out: 10, InputBits: 1}
	net, err := bnn.Train(small, cfg, bnn.TrainConfig{Epochs: 2, LR: 0.002, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	mp, err := bnn.CompileMapping(net, 1024, batch)
	if err != nil {
		b.Fatal(err)
	}
	mach := array.NewMachine(mtj.ModernSTT(), 1, 1024, batch)
	mach.ForceScalar = forceScalar
	for col := 0; col < batch; col++ {
		x := small.Train[col%len(small.Train)].X
		for i, row := range mp.InputRows {
			mach.Tiles[0].SetBit(row, col, x[i])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := controller.New(controller.ProgramStore(mp.Prog), mach)
		res, err := sim.NewMachineRunner(c).Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("run did not complete")
		}
	}
}

func BenchmarkMachineRunnerBNNPacked(b *testing.B) { benchmarkMachineRunnerBNN(b, false) }
func BenchmarkMachineRunnerBNNScalar(b *testing.B) { benchmarkMachineRunnerBNN(b, true) }

func BenchmarkInstructionEncodeDecode(b *testing.B) {
	in := isa.Logic(mtj.MAJ3, []int{0, 2, 4}, 1)
	for i := 0; i < b.N; i++ {
		w, err := isa.Encode(in)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := isa.Decode(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkControllerStep(b *testing.B) {
	prog := isa.Program{
		isa.ActRange(true, 0, 0, 8, 1),
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NAND2, []int{0, 2}, 1),
	}
	m := array.NewMachine(mtj.ModernSTT(), 1, 16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := controller.New(controller.ProgramStore(prog), m)
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceSimThroughput(b *testing.B) {
	r := sim.NewRunner(energy.NewModel(mtj.ModernSTT()))
	ops := make([]energy.Op, 10000)
	for i := range ops {
		ops[i] = energy.Op{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 1024}
	}
	ops[0] = energy.Op{Kind: isa.KindAct, ActCols: 1024}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := r.RunContinuous(&sim.SliceStream{Ops: ops})
		if res.Instructions != 10000 {
			b.Fatal("wrong op count")
		}
	}
}

func BenchmarkSVMCompile(b *testing.B) {
	ds := dataset.Adult(77, 24, 10)
	m, err := svm.Train(ds, svm.DefaultTrainConfig())
	if err != nil {
		b.Fatal(err)
	}
	im, err := m.Quantize(10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svm.CompileParallelMapping(im, 1024, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBNNFunctionalInference(b *testing.B) {
	// A 64-feature binarized set sized to the 1024-row budget.
	const feats = 64
	small := &dataset.Set{Name: "t", NumFeatures: feats, NumClasses: 10}
	for i := 0; i < 40; i++ {
		x := make([]int, feats)
		for j := range x {
			x[j] = (i*j + j%3) & 1
		}
		small.Train = append(small.Train, dataset.Sample{X: x, Label: i % 10})
	}
	small.Test = small.Train[:4]
	cfg := bnn.Config{Name: "t", In: feats, Hidden: []int{16}, Out: 10, InputBits: 1}
	net, err := bnn.Train(small, cfg, bnn.TrainConfig{Epochs: 2, LR: 0.002, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	mp, err := bnn.CompileMapping(net, 1024, 1)
	if err != nil {
		b.Fatal(err)
	}
	m := array.NewMachine(mtj.ModernSTT(), 1, 1024, 1)
	for i, row := range mp.InputRows {
		m.Tiles[0].SetBit(row, 0, small.Test[0].X[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := controller.New(controller.ProgramStore(mp.Prog), m)
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileMultiplier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bl := compile.NewBuilder(1024)
		bl.ActivateBroadcast([]uint16{0})
		x := bl.AllocWord(8, 0)
		y := bl.AllocWord(8, 0)
		bl.MulWords(x, y)
		if _, err := bl.Program(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSONICModel(b *testing.B) {
	_ = io.Discard
	for i := 0; i < b.N; i++ {
		pts, err := bench.ComputeFig9(mtj.ModernSTT(), []float64{5e-3}, 0)
		if err != nil {
			b.Fatal(err)
		}
		_ = pts
	}
}

func fmtInt(v int) string {
	switch {
	case v >= 1024 && v%1024 == 0:
		return fmtSmall(v/1024) + "k-cols"
	default:
		return fmtSmall(v) + "-cols"
	}
}

func fmtSmall(v int) string {
	digits := ""
	if v == 0 {
		return "0"
	}
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	return digits
}

func fmtCap(c float64) string {
	return fmtSmall(int(c*1e6)) + "µF"
}

// BenchmarkAblationCheckpointInterval sweeps the checkpoint frequency
// (Section IV-D: per-instruction checkpointing vs. rarer commits).
func BenchmarkAblationCheckpointInterval(b *testing.B) {
	spec, err := workload.ByName("SVM ADULT")
	if err != nil {
		b.Fatal(err)
	}
	cfg := mtj.ModernSTT()
	r := sim.NewRunner(energy.NewModel(cfg))
	for _, interval := range []int{1, 8, 64} {
		b.Run(fmtSmall(interval)+"-instr", func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				h := power.NewHarvester(power.Constant{W: 60e-6}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
				var err error
				res, err = r.RunWithCheckpointInterval(spec.Stream(), h, interval)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.BackupEnergy*1e9, "nJ-backup")
			b.ReportMetric(res.DeadEnergy*1e9, "nJ-dead")
		})
	}
}

// BenchmarkRobustnessStudy measures the Section II-D variation analysis.
func BenchmarkRobustnessStudy(b *testing.B) {
	var tol float64
	for i := 0; i < b.N; i++ {
		tol, _ = mtj.MinVariationTolerance(mtj.ProjectedSHE())
	}
	b.ReportMetric(tol*100, "%-min-tolerance-SHE")
}

// BenchmarkFFTComparison measures the Section X FFT workload.
func BenchmarkFFTComparison(b *testing.B) {
	var rows []bench.FFTRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.ComputeFFT(0)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.System == "MOUSE Modern STT (intermittent-safe)" {
			b.ReportMetric(r.LatencySec*1e3, "ms-modern-stt")
		}
	}
}
