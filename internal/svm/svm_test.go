package svm

import (
	"math/rand"
	"testing"

	"mouse/internal/dataset"
)

func TestTrainAdult(t *testing.T) {
	ds := dataset.Adult(11, 400, 150)
	m, err := Train(ds, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSV() == 0 {
		t.Fatalf("no support vectors")
	}
	acc := Accuracy(m.Predict, ds.Test)
	if acc < 0.70 {
		t.Errorf("ADULT-syn accuracy %.2f below 0.70", acc)
	}
	t.Logf("ADULT-syn: %d SVs, accuracy %.3f", m.NumSV(), acc)
}

func TestTrainMultiClass(t *testing.T) {
	ds := dataset.HAR(12, 25, 10)
	m, err := Train(ds, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Machines) != 6 {
		t.Fatalf("%d machines, want 6", len(m.Machines))
	}
	acc := Accuracy(m.Predict, ds.Test)
	if acc < 0.60 {
		t.Errorf("HAR-syn accuracy %.2f below 0.60", acc)
	}
	t.Logf("HAR-syn: %d SVs, accuracy %.3f", m.NumSV(), acc)
}

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(&dataset.Set{}, DefaultTrainConfig()); err == nil {
		t.Errorf("empty set accepted")
	}
	ds := dataset.Adult(1, 10, 5)
	if _, err := Train(ds, TrainConfig{C: 0, Passes: 5}); err == nil {
		t.Errorf("zero C accepted")
	}
	if _, err := Train(ds, TrainConfig{C: 1, Passes: 0}); err == nil {
		t.Errorf("zero passes accepted")
	}
}

func TestQuantizeAgreesWithFloat(t *testing.T) {
	ds := dataset.Adult(13, 300, 120)
	m, err := Train(ds, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	im, err := m.Quantize(16)
	if err != nil {
		t.Fatal(err)
	}
	if im.AccBits <= 0 || im.AccBits > 62 {
		t.Fatalf("AccBits = %d", im.AccBits)
	}
	agree := 0
	for _, s := range ds.Test {
		if im.Predict(s.X) == m.Predict(s.X) {
			agree++
		}
	}
	rate := float64(agree) / float64(len(ds.Test))
	if rate < 0.9 {
		t.Errorf("fixed-point agreement %.2f below 0.9", rate)
	}
	if im.NumSV() != m.NumSV() {
		t.Errorf("SV counts differ: %d vs %d", im.NumSV(), m.NumSV())
	}
}

func TestQuantizeRejectsBadWidth(t *testing.T) {
	ds := dataset.Adult(14, 40, 10)
	m, err := Train(ds, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Quantize(1); err == nil {
		t.Errorf("1-bit coefficients accepted")
	}
	if _, err := m.Quantize(64); err == nil {
		t.Errorf("64-bit coefficients accepted")
	}
}

// tinySet builds a 3-class set over few small-valued features, sized so
// the compiled hardware program stays small.
func tinySet(seed int64, features, perClass int) *dataset.Set {
	rng := rand.New(rand.NewSource(seed))
	s := &dataset.Set{Name: "tiny", NumFeatures: features, NumClasses: 3}
	means := [][]int{}
	for c := 0; c < 3; c++ {
		mu := make([]int, features)
		for j := range mu {
			mu[j] = rng.Intn(12)
		}
		means = append(means, mu)
	}
	emit := func(n int) []dataset.Sample {
		var out []dataset.Sample
		for c := 0; c < 3; c++ {
			for i := 0; i < n; i++ {
				x := make([]int, features)
				for j := range x {
					v := means[c][j] + rng.Intn(5) - 2
					if v < 0 {
						v = 0
					}
					if v > 15 {
						v = 15
					}
					x[j] = v
				}
				out = append(out, dataset.Sample{X: x, Label: c})
			}
		}
		return out
	}
	s.Train = emit(perClass)
	s.Test = emit(2)
	return s
}

func TestScoreConsistency(t *testing.T) {
	ds := tinySet(15, 6, 4)
	m, err := Train(ds, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Predict must pick the argmax of Score.
	for _, s := range ds.Test {
		p := m.Predict(s.X)
		for c := 0; c < m.Classes; c++ {
			if m.Score(c, s.X) > m.Score(p, s.X) {
				t.Fatalf("Predict did not return the argmax")
			}
		}
	}
}
