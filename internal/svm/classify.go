package svm

import (
	"fmt"

	"mouse/internal/array"
	"mouse/internal/controller"
	"mouse/internal/mtj"
)

// High-level classification helpers: build a machine once, then classify
// inputs with a single call. The low-level flow (load rows, run the
// controller, read score words) remains available for callers that need
// custom power models or fault injection.

// NewMachine allocates a functional machine sized for the mapping.
func (m *ParallelMapping) NewMachine(cfg *mtj.Config, rows int) *array.Machine {
	return array.NewMachine(cfg, 1, rows, m.Columns)
}

// LoadInput writes the input vector into every column of the machine.
func (m *ParallelMapping) LoadInput(mach *array.Machine, x []int) error {
	if len(x) != len(m.InputRows) {
		return fmt.Errorf("svm: input has %d features, mapping expects %d", len(x), len(m.InputRows))
	}
	for j, rows := range m.InputRows {
		for bi, row := range rows {
			bit := (x[j] >> bi) & 1
			for col := 0; col < m.Columns; col++ {
				mach.Tiles[0].SetBit(row, col, bit)
			}
		}
	}
	return nil
}

// Scores runs one inference pass and returns every class score.
func (m *ParallelMapping) Scores(mach *array.Machine, x []int) ([]int64, error) {
	if err := m.LoadInput(mach, x); err != nil {
		return nil, err
	}
	c := controller.New(controller.ProgramStore(m.Prog), mach)
	if err := c.Run(); err != nil {
		return nil, err
	}
	classes := m.Columns / m.K
	scores := make([]int64, 0, classes)
	for class := 0; class < classes; class++ {
		bits := make([]int, len(m.ScoreRows))
		for i, row := range m.ScoreRows {
			bits[i] = mach.Tiles[0].Bit(row, m.ClassColumn(class))
		}
		scores = append(scores, m.ReadScore(bits))
	}
	return scores, nil
}

// Classify runs one inference pass and returns the predicted class. With
// an argmax-compiled mapping the index comes straight from the array;
// otherwise the host takes the argmax of the score columns.
func (m *ParallelMapping) Classify(mach *array.Machine, x []int) (int, error) {
	scores, err := m.Scores(mach, x)
	if err != nil {
		return 0, err
	}
	if m.ArgmaxRows != nil {
		idx := 0
		for i, row := range m.ArgmaxRows {
			idx |= mach.Tiles[0].Bit(row, 0) << i
		}
		return idx, nil
	}
	best := 0
	for c, s := range scores {
		if s > scores[best] {
			best = c
		}
	}
	return best, nil
}
