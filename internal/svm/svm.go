// Package svm implements the support vector machines of the paper's case
// studies (Section III): polynomial-kernel (degree 2) SVMs trained
// offline in software, extended to multi-class problems one-vs-rest (one
// binary machine per class, highest score wins), and quantized to the
// fixed-point integer form MOUSE executes — the inference computation is
// "effectively performing the dot product between an input vector and
// each of the support vectors", squaring, scaling by coefficients, and
// summing.
//
// Training uses dual coordinate descent on the L1-SVM dual with a
// precomputed kernel matrix, the standard approach for small data sets.
// The paper trains in R; the algorithm family and the resulting inference
// structure are the same.
package svm

import (
	"fmt"
	"math"

	"mouse/internal/dataset"
)

// TrainConfig controls the dual coordinate descent trainer.
type TrainConfig struct {
	// C is the box constraint (regularization). Typical: 1.
	C float64
	// Passes is the number of full sweeps over the training set.
	Passes int
	// KernelScale divides dot products before squaring, keeping kernel
	// values numerically tame. Zero selects an automatic scale (the mean
	// training-point norm).
	KernelScale float64
}

// DefaultTrainConfig returns sensible defaults.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{C: 1, Passes: 12}
}

// Binary is one trained one-vs-rest machine: score(x) = Σ coeffᵢ·K(x,svᵢ) + bias,
// with K(x,y) = (x·y / scale)².
type Binary struct {
	SV    [][]int
	Coeff []float64
	Bias  float64
}

// Model is a multi-class polynomial-kernel SVM.
type Model struct {
	Features int
	Classes  int
	// KernelScale is the shared dot-product scale.
	KernelScale float64
	Machines    []Binary
}

// NumSV returns the total number of support vectors across machines (the
// #SV column of Table IV).
func (m *Model) NumSV() int {
	n := 0
	for i := range m.Machines {
		n += len(m.Machines[i].SV)
	}
	return n
}

func dotInt(a, b []int) float64 {
	s := 0
	for i := range a {
		s += a[i] * b[i]
	}
	return float64(s)
}

// Train fits a one-vs-rest poly-2 SVM on the training split.
func Train(ds *dataset.Set, cfg TrainConfig) (*Model, error) {
	if len(ds.Train) == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	if cfg.C <= 0 || cfg.Passes <= 0 {
		return nil, fmt.Errorf("svm: bad config %+v", cfg)
	}
	n := len(ds.Train)

	scale := cfg.KernelScale
	if scale == 0 {
		mean := 0.0
		for _, s := range ds.Train {
			mean += math.Sqrt(dotInt(s.X, s.X))
		}
		scale = mean / float64(n)
		if scale == 0 {
			scale = 1
		}
	}

	// Precompute the kernel matrix once; every one-vs-rest machine
	// reuses it with different labels.
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			d := dotInt(ds.Train[i].X, ds.Train[j].X) / scale
			v := d * d
			k[i][j] = v
			k[j][i] = v
		}
	}

	m := &Model{
		Features:    ds.NumFeatures,
		Classes:     ds.NumClasses,
		KernelScale: scale,
	}
	for c := 0; c < ds.NumClasses; c++ {
		y := make([]float64, n)
		for i, s := range ds.Train {
			if s.Label == c {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		m.Machines = append(m.Machines, trainBinary(ds.Train, y, k, cfg))
	}
	return m, nil
}

// trainBinary runs dual coordinate descent for one binary problem.
func trainBinary(train []dataset.Sample, y []float64, k [][]float64, cfg TrainConfig) Binary {
	n := len(train)
	alpha := make([]float64, n)
	// f[i] = Σ_j alpha_j y_j K_ij, maintained incrementally.
	f := make([]float64, n)
	for pass := 0; pass < cfg.Passes; pass++ {
		for i := 0; i < n; i++ {
			kii := k[i][i]
			if kii <= 0 {
				continue
			}
			g := y[i]*f[i] - 1
			old := alpha[i]
			na := old - g/kii
			if na < 0 {
				na = 0
			} else if na > cfg.C {
				na = cfg.C
			}
			if na == old {
				continue
			}
			delta := (na - old) * y[i]
			alpha[i] = na
			for j := 0; j < n; j++ {
				f[j] += delta * k[i][j]
			}
		}
	}
	// Bias: average of y_i - f_i over free support vectors (0<α<C); if
	// none are free, over all support vectors.
	var b Binary
	biasSum, biasN := 0.0, 0
	freeSum, freeN := 0.0, 0
	for i := 0; i < n; i++ {
		if alpha[i] <= 0 {
			continue
		}
		b.SV = append(b.SV, train[i].X)
		b.Coeff = append(b.Coeff, alpha[i]*y[i])
		biasSum += y[i] - f[i]
		biasN++
		if alpha[i] < cfg.C {
			freeSum += y[i] - f[i]
			freeN++
		}
	}
	switch {
	case freeN > 0:
		b.Bias = freeSum / float64(freeN)
	case biasN > 0:
		b.Bias = biasSum / float64(biasN)
	}
	return b
}

// Score returns machine c's real-valued score for input x.
func (m *Model) Score(c int, x []int) float64 {
	mc := &m.Machines[c]
	s := mc.Bias
	for i, sv := range mc.SV {
		d := dotInt(x, sv) / m.KernelScale
		s += mc.Coeff[i] * d * d
	}
	return s
}

// Predict returns the class with the highest score (one-vs-rest).
func (m *Model) Predict(x []int) int {
	best, bestScore := 0, math.Inf(-1)
	for c := 0; c < m.Classes; c++ {
		if s := m.Score(c, x); s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// Accuracy evaluates a predictor over samples.
func Accuracy(predict func([]int) int, samples []dataset.Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if predict(s.X) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}
