package svm

import (
	"testing"

	"mouse/internal/array"
	"mouse/internal/controller"
	"mouse/internal/mtj"
)

// TestMappingMatchesGoldenModel is the SVM end-to-end check: the compiled
// MOUSE program, executed gate by gate on the functional array, produces
// bit-identical class scores to the fixed-point golden model.
func TestMappingMatchesGoldenModel(t *testing.T) {
	ds := tinySet(21, 6, 4)
	m, err := Train(ds, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	im, err := m.Quantize(12)
	if err != nil {
		t.Fatal(err)
	}
	const inputBits = 4 // tinySet features are 0..15
	mp, err := CompileMapping(im, 1024, inputBits)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("compiled: %d instructions, %d gates, %d SVs, acc width %d",
		len(mp.Prog), mp.Gates, im.NumSV(), im.AccBits)

	mach := array.NewMachine(mtj.ModernSTT(), 1, 1024, mp.Columns)
	for _, s := range ds.Test[:3] {
		// Load the input into every class column.
		for j, rows := range mp.InputRows {
			for bi, row := range rows {
				bit := (s.X[j] >> bi) & 1
				for col := 0; col < mp.Columns; col++ {
					mach.Tiles[0].SetBit(row, col, bit)
				}
			}
		}
		c := controller.New(controller.ProgramStore(mp.Prog), mach)
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		want := im.Scores(s.X)
		for col := 0; col < mp.Columns; col++ {
			bits := make([]int, len(mp.ScoreRows))
			for i, row := range mp.ScoreRows {
				bits[i] = mach.Tiles[0].Bit(row, col)
			}
			got := mp.ReadScore(bits)
			if got != want[col] {
				t.Errorf("class %d score = %d, want %d", col, got, want[col])
			}
		}
	}
}

func TestCompileMappingErrors(t *testing.T) {
	ds := tinySet(22, 4, 3)
	m, err := Train(ds, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	im, err := m.Quantize(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileMapping(im, 1024, 0); err == nil {
		t.Errorf("zero input width accepted")
	}
	if _, err := CompileMapping(im, 1024, 9); err == nil {
		t.Errorf("9-bit input width accepted")
	}
	if _, err := CompileMapping(im, 64, 4); err == nil {
		t.Errorf("tiny row budget accepted")
	}
	empty := &IntModel{Features: 4, Classes: 2, AccBits: 10, Machines: make([]IntBinary, 2)}
	if _, err := CompileMapping(empty, 1024, 4); err == nil {
		t.Errorf("empty model accepted")
	}
}

func TestReadScoreSignExtension(t *testing.T) {
	mp := &Mapping{}
	if got := mp.ReadScore([]int{1, 0, 0, 1}); got != -7 {
		t.Errorf("ReadScore(1001) = %d, want -7", got)
	}
	if got := mp.ReadScore([]int{1, 1, 0, 0}); got != 3 {
		t.Errorf("ReadScore(0011) = %d, want 3", got)
	}
}
