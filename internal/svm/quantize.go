package svm

import (
	"fmt"
	"math"
)

// IntModel is the fixed-point form of a trained SVM: exactly the
// arithmetic MOUSE performs in the array (integer dot product, square,
// optional right shift, signed integer coefficient multiply-accumulate).
// It is the bit-exact golden reference the compiled hardware program is
// verified against.
type IntModel struct {
	Features int
	Classes  int

	// Shift discards low bits of the squared dot product before the
	// coefficient multiply (free in hardware: the multiplier simply
	// reads higher rows), keeping accumulators narrow.
	Shift uint

	// CoeffBits is the signed coefficient width.
	CoeffBits int

	// AccBits is the accumulator width needed to hold any score without
	// overflow, used by the hardware mapper and the workload model.
	AccBits int

	Machines []IntBinary
}

// IntBinary is one quantized one-vs-rest machine.
type IntBinary struct {
	SV    [][]int
	Q     []int64 // signed quantized coefficients
	QBias int64
}

// sqBits bounds the width of the shifted squared dot product.
const sqBits = 20

// Quantize converts the trained model to fixed point with coeffBits-wide
// signed coefficients.
func (m *Model) Quantize(coeffBits int) (*IntModel, error) {
	if coeffBits < 2 || coeffBits > 32 {
		return nil, fmt.Errorf("svm: coefficient width %d out of range", coeffBits)
	}
	// Bound the raw dot product: inputs come from the same distribution
	// as the support vectors, so the largest feature value seen across
	// the SVs bounds the input range (255 for raw data, 1 for binarized).
	maxFeat := 1
	for c := range m.Machines {
		for _, sv := range m.Machines[c].SV {
			for _, v := range sv {
				if v > maxFeat {
					maxFeat = v
				}
			}
		}
	}
	maxDot := int64(1)
	maxAbsW := 0.0
	for c := range m.Machines {
		mc := &m.Machines[c]
		for i, sv := range mc.SV {
			s := int64(0)
			for _, v := range sv {
				s += int64(v) * int64(maxFeat)
			}
			if s > maxDot {
				maxDot = s
			}
			if w := math.Abs(mc.Coeff[i]) / (m.KernelScale * m.KernelScale); w > maxAbsW {
				maxAbsW = w
			}
		}
	}
	if maxAbsW == 0 {
		return nil, fmt.Errorf("svm: model has no support vectors")
	}
	// Choose the shift so the shifted square fits in sqBits bits.
	sq := float64(maxDot) * float64(maxDot)
	shift := uint(0)
	for sq/math.Pow(2, float64(shift)) >= math.Pow(2, sqBits) {
		shift++
	}
	qmax := float64(int64(1)<<(coeffBits-1) - 1)
	f := qmax / (maxAbsW * math.Pow(2, float64(shift)))

	im := &IntModel{
		Features:  m.Features,
		Classes:   m.Classes,
		Shift:     shift,
		CoeffBits: coeffBits,
	}
	var maxMag float64
	for c := range m.Machines {
		mc := &m.Machines[c]
		ib := IntBinary{SV: mc.SV, QBias: int64(math.Round(mc.Bias * f))}
		mag := math.Abs(float64(ib.QBias))
		for i := range mc.Coeff {
			w := mc.Coeff[i] / (m.KernelScale * m.KernelScale)
			q := int64(math.Round(w * math.Pow(2, float64(shift)) * f))
			ib.Q = append(ib.Q, q)
			mag += math.Abs(float64(q)) * math.Pow(2, sqBits)
		}
		if mag > maxMag {
			maxMag = mag
		}
		im.Machines = append(im.Machines, ib)
	}
	im.AccBits = int(math.Ceil(math.Log2(maxMag+1))) + 2 // magnitude + sign + slack
	if im.AccBits > 62 {
		return nil, fmt.Errorf("svm: accumulator needs %d bits; increase Shift or reduce model size", im.AccBits)
	}
	return im, nil
}

// Dot returns the raw integer dot product of x with support vector i of
// machine c.
func (im *IntModel) Dot(c, i int, x []int) int64 {
	s := int64(0)
	sv := im.Machines[c].SV[i]
	for j := range sv {
		s += int64(x[j]) * int64(sv[j])
	}
	return s
}

// Score returns machine c's integer score for x, using exactly the
// hardware arithmetic: d², right shift, signed MAC.
func (im *IntModel) Score(c int, x []int) int64 {
	mc := &im.Machines[c]
	acc := mc.QBias
	for i := range mc.SV {
		d := im.Dot(c, i, x)
		u := (d * d) >> im.Shift
		acc += mc.Q[i] * u
	}
	return acc
}

// Scores returns every machine's integer score.
func (im *IntModel) Scores(x []int) []int64 {
	out := make([]int64, im.Classes)
	for c := range out {
		out[c] = im.Score(c, x)
	}
	return out
}

// Predict returns the highest-scoring class.
func (im *IntModel) Predict(x []int) int {
	best, bestScore := 0, int64(math.MinInt64)
	for c := 0; c < im.Classes; c++ {
		if s := im.Score(c, x); s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// NumSV returns the total support vector count.
func (im *IntModel) NumSV() int {
	n := 0
	for i := range im.Machines {
		n += len(im.Machines[i].SV)
	}
	return n
}
