package svm

import (
	"testing"

	"mouse/internal/mtj"
)

// batchFixture trains and compiles a small SV-parallel model plus a
// pool of input vectors for batching.
func batchFixture(t *testing.T, argmax bool) (*ParallelMapping, *IntModel, [][]int) {
	t.Helper()
	ds := tinySet(91, 6, 4)
	m, err := Train(ds, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	im, err := m.Quantize(10)
	if err != nil {
		t.Fatal(err)
	}
	compile := CompileParallelMapping
	if argmax {
		compile = CompileParallelArgmax
	}
	mp, err := compile(im, 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	var samples [][]int
	for i := 0; len(samples) < 80; i++ {
		samples = append(samples, ds.Test[i%len(ds.Test)].X)
	}
	return mp, im, samples
}

// TestSVMBatchMatchesSequential: batched classification and scores must
// equal the sequential controller path sample for sample, across batch
// sizes and across back-to-back batches on the same (unreset) arena.
func TestSVMBatchMatchesSequential(t *testing.T) {
	cfg := mtj.ModernSTT()
	mp, _, samples := batchFixture(t, false)
	eng, err := mp.NewBatchEngine(cfg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	mach := mp.NewMachine(cfg, 1024)
	next := 0
	for _, size := range []int{1, 3, 64, 12} {
		batch := samples[next : next+size]
		next += size
		scores, err := eng.ScoresBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.ClassifyBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range batch {
			wantScores, err := mp.Scores(mach, x)
			if err != nil {
				t.Fatal(err)
			}
			if len(scores[i]) != len(wantScores) {
				t.Fatalf("batch %d sample %d: %d scores, want %d", size, i, len(scores[i]), len(wantScores))
			}
			for c := range wantScores {
				if scores[i][c] != wantScores[c] {
					t.Fatalf("batch %d sample %d class %d: batched score %d, sequential %d",
						size, i, c, scores[i][c], wantScores[c])
				}
			}
			want, err := mp.Classify(mach, x)
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != want {
				t.Fatalf("batch %d sample %d: batched class %d, sequential %d", size, i, got[i], want)
			}
		}
	}
}

// TestSVMBatchArgmaxMatchesSequential covers the in-array argmax
// tournament: the winner index extracted per lane must equal the
// sequential Classify answer.
func TestSVMBatchArgmaxMatchesSequential(t *testing.T) {
	cfg := mtj.ModernSTT()
	mp, _, samples := batchFixture(t, true)
	eng, err := mp.NewBatchEngine(cfg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	mach := mp.NewMachine(cfg, 1024)
	got, err := eng.ClassifyBatch(samples[:32])
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range samples[:32] {
		want, err := mp.Classify(mach, x)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("sample %d: batched argmax class %d, sequential %d", i, got[i], want)
		}
	}
}

// TestSVMBatchMatchesGoldenModel pins the batched path directly to the
// fixed-point golden model, independent of the array paths.
func TestSVMBatchMatchesGoldenModel(t *testing.T) {
	cfg := mtj.ModernSTT()
	mp, im, samples := batchFixture(t, false)
	eng, err := mp.NewBatchEngine(cfg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := eng.ScoresBatch(samples[:64])
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range samples[:64] {
		want := im.Scores(x)
		for c := range want {
			if scores[i][c] != want[c] {
				t.Fatalf("sample %d class %d: batched score %d, golden %d", i, c, scores[i][c], want[c])
			}
		}
	}
}

// TestSVMBatchValidatesInput: bad batch shapes are rejected before any
// replay.
func TestSVMBatchValidatesInput(t *testing.T) {
	cfg := mtj.ModernSTT()
	mp, _, samples := batchFixture(t, false)
	eng, err := mp.NewBatchEngine(cfg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ClassifyBatch(nil); err == nil {
		t.Error("accepted an empty batch")
	}
	if _, err := eng.ClassifyBatch(make([][]int, 65)); err == nil {
		t.Error("accepted a 65-sample batch")
	}
	if _, err := eng.ClassifyBatch([][]int{samples[0][:2]}); err == nil {
		t.Error("accepted a short feature vector")
	}
	if err := eng.ClassifyBatchInto(make([]int, 1), samples[:2]); err == nil {
		t.Error("accepted a short destination")
	}
}
