package svm

import (
	"fmt"

	"mouse/internal/array"
	"mouse/internal/compile"
	"mouse/internal/mtj"
)

// BatchEngine classifies up to array.MaxLanes input vectors per replay
// of the SV-parallel program: the mapping already computes every class
// score across columns in one pass, and the engine adds the third axis
// — each lane word bit is one independent sample, so the model-data
// presets, kernel arithmetic, and reduction tree are all amortized 64
// ways. The program is flattened once at construction and the arena is
// reused across batches, so the steady-state classify loop performs no
// allocation and no per-instruction validation.
//
// The batched path is the continuous-power fast path only; energy
// accounting and intermittent execution go through sim.RunnerBatch or
// the scalar controller path, which this engine leaves untouched.
type BatchEngine struct {
	m     *ParallelMapping
	flat  *array.FlatProgram
	arena *array.BatchMachine

	// scratch buffers for alloc-free extraction.
	scores []int64
	bits   []int
}

// NewBatchEngine compiles the mapping's program for bit-sliced replay on
// a rows-tall machine (the same geometry NewMachine allocates).
func (m *ParallelMapping) NewBatchEngine(cfg *mtj.Config, rows int) (*BatchEngine, error) {
	flat, err := compile.Flatten(m.Prog, cfg, 1, rows, m.Columns)
	if err != nil {
		return nil, err
	}
	return &BatchEngine{
		m:      m,
		flat:   flat,
		arena:  array.NewBatchMachine(1, rows, m.Columns),
		scores: make([]int64, m.Columns/m.K),
		bits:   make([]int, len(m.ScoreRows)),
	}, nil
}

// Lanes returns the batch capacity.
func (e *BatchEngine) Lanes() int { return array.MaxLanes }

// LoadInputs packs the samples into the input rows, sample i in lane i,
// the same bits in every column (the lane-sliced image of LoadInput).
func (e *BatchEngine) LoadInputs(samples [][]int) error {
	if len(samples) == 0 || len(samples) > array.MaxLanes {
		return fmt.Errorf("svm: batch of %d samples out of range [1, %d]", len(samples), array.MaxLanes)
	}
	t := e.arena.Tiles[0]
	for j, rows := range e.m.InputRows {
		for bi, row := range rows {
			var w uint64
			for lane, x := range samples {
				if len(x) != len(e.m.InputRows) {
					return fmt.Errorf("svm: sample %d has %d features, mapping expects %d", lane, len(x), len(e.m.InputRows))
				}
				w |= uint64(x[j]>>bi&1) << lane
			}
			for col := 0; col < e.m.Columns; col++ {
				t.SetCellLanes(row, col, w)
			}
		}
	}
	return nil
}

// ScoresBatch runs one batched inference pass and returns every class
// score per sample: out[i][c] is sample i's class-c score.
func (e *BatchEngine) ScoresBatch(samples [][]int) ([][]int64, error) {
	if err := e.run(samples); err != nil {
		return nil, err
	}
	out := make([][]int64, len(samples))
	for lane := range out {
		e.laneScores(lane)
		out[lane] = append([]int64(nil), e.scores...)
	}
	return out, nil
}

// ClassifyBatch runs one batched inference pass and returns the
// predicted class per sample.
func (e *BatchEngine) ClassifyBatch(samples [][]int) ([]int, error) {
	dst := make([]int, len(samples))
	if err := e.ClassifyBatchInto(dst, samples); err != nil {
		return nil, err
	}
	return dst, nil
}

// ClassifyBatchInto classifies into a caller-owned slice — the
// alloc-free steady-state entry point. dst must hold len(samples)
// elements.
func (e *BatchEngine) ClassifyBatchInto(dst []int, samples [][]int) error {
	if len(dst) < len(samples) {
		return fmt.Errorf("svm: destination holds %d results, batch has %d", len(dst), len(samples))
	}
	if err := e.run(samples); err != nil {
		return err
	}
	t := e.arena.Tiles[0]
	for lane := range samples {
		if e.m.ArgmaxRows != nil {
			// In-array argmax: the tournament left the winner index in
			// column 0.
			idx := 0
			for i, row := range e.m.ArgmaxRows {
				idx |= int(t.CellLanes(row, 0)>>lane&1) << i
			}
			dst[lane] = idx
			continue
		}
		e.laneScores(lane)
		best := 0
		for c, s := range e.scores {
			if s > e.scores[best] {
				best = c
			}
		}
		dst[lane] = best
	}
	return nil
}

// run loads the batch and replays the compiled program. No Reset: the
// loader overwrites every input row, and the program presets all model
// data and derived rows before reading them, so a dirty arena replays to
// the same state a fresh machine reaches.
func (e *BatchEngine) run(samples [][]int) error {
	if err := e.LoadInputs(samples); err != nil {
		return err
	}
	return e.arena.Replay(e.flat)
}

// laneScores reads one lane's class scores into the scratch slice, the
// lane-sliced image of Scores' read-out loop.
func (e *BatchEngine) laneScores(lane int) {
	t := e.arena.Tiles[0]
	for class := range e.scores {
		for i, row := range e.m.ScoreRows {
			e.bits[i] = int(t.CellLanes(row, e.m.ClassColumn(class)) >> lane & 1)
		}
		e.scores[class] = e.m.ReadScore(e.bits)
	}
}
