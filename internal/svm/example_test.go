package svm_test

import (
	"fmt"
	"log"

	"mouse/internal/dataset"
	"mouse/internal/svm"
)

// Example trains a poly-2 SVM on the synthetic census data, quantizes it
// to the fixed-point form MOUSE executes, and checks that the integer
// model agrees with the float model.
func Example() {
	ds := dataset.Adult(42, 300, 100)
	model, err := svm.Train(ds, svm.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	im, err := model.Quantize(16)
	if err != nil {
		log.Fatal(err)
	}
	agree := 0
	for _, s := range ds.Test {
		if im.Predict(s.X) == model.Predict(s.X) {
			agree++
		}
	}
	fmt.Printf("classes=%d, machines=%d, fixed-point agreement %d/%d\n",
		im.Classes, len(im.Machines), agree, len(ds.Test))
	fmt.Println("float accuracy above chance:", svm.Accuracy(model.Predict, ds.Test) > 0.55)
	// Output:
	// classes=2, machines=2, fixed-point agreement 100/100
	// float accuracy above chance: true
}
