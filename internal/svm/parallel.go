package svm

import (
	"fmt"

	"mouse/internal/compile"
	"mouse/internal/isa"
)

// SV-parallel mapping (Section VI's "by using many columns and multiple
// tiles, this can be performed for many vectors simultaneously"): every
// (class, support vector) pair occupies its own column, the input vector
// is replicated across columns, one uniform instruction sequence
// computes every kernel term at once, and the per-class score reduces
// through a SIMD tree of rotated read/write moves. Classes are padded to
// a common power-of-two support-vector count K with zero-coefficient
// vectors so the reduction strides are uniform.
type ParallelMapping struct {
	Prog isa.Program

	// InputRows[j] lists the rows (LSB first) of input feature j; load
	// the same bits into every column.
	InputRows [][]int

	// ScoreRows lists the accumulator rows (LSB first, two's
	// complement); read them in column ClassColumn(c) for class c.
	ScoreRows []int

	// Columns is the total column count (classes × K); the machine's
	// tiles must be exactly this wide so the reduction rotation wraps.
	Columns int

	// K is the padded per-class support-vector count.
	K int

	// AccBits is the score width.
	AccBits int

	// Gates is the logic-gate count of one inference.
	Gates int

	// ArgmaxRows, when the mapping was compiled with the in-array
	// argmax tournament, lists the rows (LSB first) of the winning
	// class index; read them in column 0. Nil otherwise.
	ArgmaxRows []int

	// WinnerScoreRows, in argmax mappings, lists the rows of the
	// tournament winner's score word (read in column 0).
	WinnerScoreRows []int
}

// ClassColumn returns the column holding class c's reduced score.
func (m *ParallelMapping) ClassColumn(c int) int { return c * m.K }

// Features returns the input-vector length the mapping expects — the
// serving layer validates requests against it before admission.
func (m *ParallelMapping) Features() int { return len(m.InputRows) }

// CompileParallelMapping compiles the quantized model in the SV-parallel
// mapping for tiles with the given row count.
func CompileParallelMapping(im *IntModel, rows, inputBits int) (*ParallelMapping, error) {
	return compileParallel(im, rows, inputBits, false)
}

// CompileParallelArgmax additionally runs the one-vs-rest class
// selection *inside the array* (Section III: "we take the highest-score
// output of the 10 classifiers to be the final classification"): a
// tournament of signed comparisons and muxes over the class columns,
// fed by rotated moves, leaves the winning class index in column 0.
// Classes are padded to a power of two with −∞-scored dummies.
func CompileParallelArgmax(im *IntModel, rows, inputBits int) (*ParallelMapping, error) {
	return compileParallel(im, rows, inputBits, true)
}

func compileParallel(im *IntModel, rows, inputBits int, argmax bool) (*ParallelMapping, error) {
	if inputBits < 1 || inputBits > 8 {
		return nil, fmt.Errorf("svm: input width %d out of range", inputBits)
	}
	maxSV := 0
	for c := range im.Machines {
		if n := len(im.Machines[c].SV); n > maxSV {
			maxSV = n
		}
	}
	if maxSV == 0 {
		return nil, fmt.Errorf("svm: model has no support vectors")
	}
	k := 1
	for k < maxSV {
		k <<= 1
	}
	classes := im.Classes
	if argmax {
		// Pad the class count to a power of two so the tournament
		// strides are uniform; dummies carry the most negative score.
		for classes&(classes-1) != 0 {
			classes++
		}
	}
	total := classes * k
	if total > isa.Cols {
		return nil, fmt.Errorf("svm: %d×%d columns exceed the column count", classes, k)
	}

	b := compile.NewBuilder(rows)
	allCols := func() { b.Emit(isa.ActRange(true, 0, 0, total, 1)) }
	allCols()

	// Shared input rows (externally loaded, identical in every column).
	input := make([]compile.Word, im.Features)
	for j := range input {
		input[j] = b.AllocWord(inputBits, j&1)
	}

	// Per-column model data: the support vector, its coefficient, and
	// the bias addend (nonzero only in each class's first column).
	svWord := make([]compile.Word, im.Features)
	for j := range svWord {
		svWord[j] = b.AllocWord(inputBits, (j+1)&1)
	}
	coeff := b.AllocWord(im.AccBits, 0)
	bias := b.AllocWord(im.AccBits, 1)
	minScore := uint64(1) << (im.AccBits - 1) // two's-complement minimum
	for col := 0; col < total; col++ {
		class, idx := col/k, col%k
		b.ActivateBroadcast([]uint16{uint16(col)})
		if class >= im.Classes {
			// Dummy tournament class: −∞ score, no support vectors.
			for j := 0; j < im.Features; j++ {
				presetWord(b, svWord[j], 0)
			}
			presetWord(b, coeff, 0)
			presetWord(b, bias, minScore)
			continue
		}
		mc := &im.Machines[class]
		if idx < len(mc.SV) {
			for j := 0; j < im.Features; j++ {
				presetWord(b, svWord[j], uint64(mc.SV[idx][j]))
			}
			presetWord(b, coeff, uint64(mc.Q[idx]))
		} else {
			for j := 0; j < im.Features; j++ {
				presetWord(b, svWord[j], 0)
			}
			presetWord(b, coeff, 0)
		}
		if idx == 0 {
			presetWord(b, bias, uint64(mc.QBias))
		} else {
			presetWord(b, bias, 0)
		}
	}
	allCols()

	// Uniform kernel term: dot, square, shift, coefficient MAC, bias.
	var dot compile.Word
	for j := 0; j < im.Features; j++ {
		p := b.MulWords(input[j], svWord[j])
		if dot == nil {
			dot = p
			continue
		}
		dot = b.AddShifted(dot, p, 0)
		b.FreeWord(p)
	}
	sq := b.Square(dot)
	b.FreeWord(dot)
	lo := int(im.Shift)
	hi := lo + sqBits
	if hi > len(sq) {
		hi = len(sq)
	}
	var u compile.Word
	if lo < len(sq) {
		u = sq[lo:hi]
	}
	for i := 0; i < lo && i < len(sq); i++ {
		b.Free(sq[i])
	}
	for i := hi; i < len(sq); i++ {
		b.Free(sq[i])
	}
	term := b.MulFixed(coeff, u)
	b.FreeWord(u)
	acc := b.AddFixed(term, bias, false)
	b.FreeWord(term)

	// SIMD tree reduction: at stride s, every column adds the score of
	// the column s to its right (rotated move), so after log2(K) levels
	// each class's first column holds the class sum.
	incoming := b.AllocWord(im.AccBits, 0)
	for s := 1; s < k; s <<= 1 {
		for i, bit := range acc {
			b.Emit(isa.Read(0, bit.Row))
			b.Emit(isa.WriteRot(0, incoming[i].Row, total-s))
		}
		next := b.AddFixed(acc, incoming, false)
		b.FreeWord(acc)
		acc = next
	}

	// Optional in-array argmax: a tournament over the class-leader
	// columns. Each level pulls the competitor's score and index from s
	// leader-strides away, compares signed, and muxes both. The
	// pre-tournament per-class scores stay live so callers can still
	// read them at the class columns.
	classScores := acc
	var idx compile.Word
	if argmax {
		idxBits := 1
		for 1<<idxBits < classes {
			idxBits++
		}
		idx = b.AllocWord(idxBits, 0)
		for col := 0; col < total; col++ {
			b.ActivateBroadcast([]uint16{uint16(col)})
			presetWord(b, idx, uint64(col/k))
		}
		allCols()
		inScore := b.AllocWord(im.AccBits, 1)
		inIdx := b.AllocWord(idxBits, 1)
		for s := k; s < total; s <<= 1 {
			for i, bit := range acc {
				b.Emit(isa.Read(0, bit.Row))
				b.Emit(isa.WriteRot(0, inScore[i].Row, total-s))
			}
			for i, bit := range idx {
				b.Emit(isa.Read(0, bit.Row))
				b.Emit(isa.WriteRot(0, inIdx[i].Row, total-s))
			}
			worse := b.SignedLessThan(acc, inScore)
			nextScore := b.Mux(worse, acc, inScore)
			nextIdx := b.Mux(worse, idx, inIdx)
			b.Free(worse)
			if &acc[0] != &classScores[0] {
				b.FreeWord(acc)
			}
			b.FreeWord(idx)
			acc, idx = nextScore, nextIdx
		}
	}

	prog, err := b.Program()
	if err != nil {
		return nil, err
	}
	m := &ParallelMapping{
		Prog:    prog,
		Columns: total,
		K:       k,
		AccBits: im.AccBits,
		Gates:   b.GateCount(),
	}
	for _, w := range input {
		m.InputRows = append(m.InputRows, wordRows(w))
	}
	m.ScoreRows = wordRows(classScores)
	if idx != nil {
		m.ArgmaxRows = wordRows(idx)
		m.WinnerScoreRows = wordRows(acc)
	}
	return m, nil
}

// ReadScore decodes a two's-complement score from bits read at
// ScoreRows (shared with the class-per-column mapping).
func (m *ParallelMapping) ReadScore(bits []int) int64 {
	return (&Mapping{}).ReadScore(bits)
}
