package svm

import (
	"fmt"

	"mouse/internal/compile"
	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// Mapping is a compiled SVM inference program following the paper's
// application-mapping discipline (Sections VI–VII): class c's one-vs-rest
// machine occupies column c, the input vector occupies shared rows
// (identical across columns), and per-class model data (support vectors,
// coefficients, bias) is embedded in the program as per-column preset
// writes — "the instructions are written into these tiles before
// deployment". One program pass computes every class score
// simultaneously via column-level parallelism; the host (the memory
// controller's read-out path, Section IV-E) reads the score word of
// column c as class c's score.
type Mapping struct {
	Prog isa.Program

	// InputRows[j] lists the rows (LSB first) holding input feature j;
	// load the input value's bits there in every class column before
	// running the program.
	InputRows [][]int

	// ScoreRows lists the accumulator rows (LSB first, two's
	// complement); read them in column c for class c's score.
	ScoreRows []int

	// Columns is the number of class columns (= classes).
	Columns int

	// AccBits is the score width in bits.
	AccBits int

	// Gates is the total logic-gate count of one inference pass.
	Gates int
}

// CompileMapping compiles the quantized model into a MOUSE program for
// tiles with the given row count. inputBits is the per-feature input
// width (8 for raw data, 1 for binarized).
func CompileMapping(im *IntModel, rows, inputBits int) (*Mapping, error) {
	if im.Classes > isa.Cols {
		return nil, fmt.Errorf("svm: %d classes exceed the column count", im.Classes)
	}
	if inputBits < 1 || inputBits > 8 {
		return nil, fmt.Errorf("svm: input width %d out of range", inputBits)
	}
	nSV := 0
	for c := range im.Machines {
		if len(im.Machines[c].SV) > nSV {
			nSV = len(im.Machines[c].SV)
		}
	}
	if nSV == 0 {
		return nil, fmt.Errorf("svm: model has no support vectors")
	}

	b := compile.NewBuilder(rows)
	allCols := func() {
		b.ActivateBroadcast(contiguous(im.Classes))
	}
	oneCol := func(c int) {
		b.ActivateBroadcast([]uint16{uint16(c)})
	}

	// Input feature words (loaded externally; shared across columns).
	input := make([]compile.Word, im.Features)
	for j := range input {
		input[j] = b.AllocWord(inputBits, j&1)
	}

	// Reusable per-SV operand words: the support vector's features and
	// the coefficient, re-preset for each support vector index.
	svWord := make([]compile.Word, im.Features)
	for j := range svWord {
		svWord[j] = b.AllocWord(inputBits, (j+1)&1)
	}
	coeff := b.AllocWord(im.AccBits, 0)

	// Score accumulator, initialized per column with the class bias.
	acc := b.AllocWord(im.AccBits, 1)
	for c := 0; c < im.Classes; c++ {
		oneCol(c)
		presetWord(b, acc, uint64(im.Machines[c].QBias))
	}

	for i := 0; i < nSV; i++ {
		// Load support vector i and its coefficient for every class.
		for c := 0; c < im.Classes; c++ {
			mc := &im.Machines[c]
			oneCol(c)
			if i < len(mc.SV) {
				for j := 0; j < im.Features; j++ {
					presetWord(b, svWord[j], uint64(mc.SV[i][j]))
				}
				presetWord(b, coeff, uint64(mc.Q[i]))
			} else {
				// Machines with fewer SVs contribute a zero term.
				for j := 0; j < im.Features; j++ {
					presetWord(b, svWord[j], 0)
				}
				presetWord(b, coeff, 0)
			}
		}
		allCols()

		// dot = Σ_j input_j · sv_j
		dot := b.DotProduct(input, svWord)

		// u = (dot²) >> Shift, truncated to the square width.
		sq := b.Square(dot)
		b.FreeWord(dot)
		lo := int(im.Shift)
		hi := lo + sqBits
		if hi > len(sq) {
			hi = len(sq)
		}
		var u compile.Word
		if lo < len(sq) {
			u = sq[lo:hi]
		}
		for k := 0; k < lo && k < len(sq); k++ {
			b.Free(sq[k])
		}
		for k := hi; k < len(sq); k++ {
			b.Free(sq[k])
		}

		// acc += coeff · u (two's complement, fixed width).
		term := b.MulFixed(coeff, u)
		b.FreeWord(u)
		next := b.AddFixed(acc, term, false)
		b.FreeWord(term)
		b.FreeWord(acc)
		acc = next
	}

	prog, err := b.Program()
	if err != nil {
		return nil, err
	}
	m := &Mapping{
		Prog:    prog,
		Columns: im.Classes,
		AccBits: im.AccBits,
		Gates:   b.GateCount(),
	}
	for _, w := range input {
		m.InputRows = append(m.InputRows, wordRows(w))
	}
	m.ScoreRows = wordRows(acc)
	return m, nil
}

// presetWord emits preset writes storing value v into the word's rows
// (affecting the currently active columns).
func presetWord(b *compile.Builder, w compile.Word, v uint64) {
	for i, bit := range w {
		b.Emit(isa.Preset(bit.Row, mtj.FromBit(int(v>>i)&1)))
	}
}

func wordRows(w compile.Word) []int {
	rows := make([]int, len(w))
	for i, bit := range w {
		rows[i] = bit.Row
	}
	return rows
}

func contiguous(n int) []uint16 {
	cols := make([]uint16, n)
	for i := range cols {
		cols[i] = uint16(i)
	}
	return cols
}

// ReadScore decodes a two's-complement score read from the given rows of
// a column (bits[i] is the value of ScoreRows[i]).
func (m *Mapping) ReadScore(bits []int) int64 {
	var v uint64
	for i, bit := range bits {
		v |= uint64(bit&1) << i
	}
	// Sign extend.
	if len(bits) < 64 && bits[len(bits)-1] == 1 {
		v |= ^uint64(0) << len(bits)
	}
	return int64(v)
}
