package svm

import (
	"testing"

	"mouse/internal/array"
	"mouse/internal/controller"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/sim"
)

// TestParallelMappingMatchesGolden verifies the SV-per-column mapping —
// including the rotated-move class reduction — bit-for-bit against the
// fixed-point golden model.
func TestParallelMappingMatchesGolden(t *testing.T) {
	ds := tinySet(71, 6, 3)
	m, err := Train(ds, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	im, err := m.Quantize(10)
	if err != nil {
		t.Fatal(err)
	}
	const inputBits = 4
	mp, err := CompileParallelMapping(im, 1024, inputBits)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SV-parallel: %d instructions, %d gates, %d columns (K=%d)",
		len(mp.Prog), mp.Gates, mp.Columns, mp.K)

	mach := array.NewMachine(mtj.ModernSTT(), 1, 1024, mp.Columns)
	for _, s := range ds.Test[:3] {
		for j, rows := range mp.InputRows {
			for bi, row := range rows {
				bit := (s.X[j] >> bi) & 1
				for col := 0; col < mp.Columns; col++ {
					mach.Tiles[0].SetBit(row, col, bit)
				}
			}
		}
		c := controller.New(controller.ProgramStore(mp.Prog), mach)
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		want := im.Scores(s.X)
		for class := 0; class < im.Classes; class++ {
			col := mp.ClassColumn(class)
			bits := make([]int, len(mp.ScoreRows))
			for i, row := range mp.ScoreRows {
				bits[i] = mach.Tiles[0].Bit(row, col)
			}
			if got := mp.ReadScore(bits); got != want[class] {
				t.Errorf("class %d: SV-parallel score %d, want %d", class, got, want[class])
			}
		}
	}
}

// TestParallelMappingSurvivesOutages stresses the rotated-move reduction
// across checkpoint boundaries under a starved supply.
func TestParallelMappingSurvivesOutages(t *testing.T) {
	ds := tinySet(72, 5, 3)
	m, err := Train(ds, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	im, err := m.Quantize(10)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := CompileParallelMapping(im, 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := ds.Test[0].X

	runOnce := func(h *power.Harvester) ([]int64, uint64) {
		mach := array.NewMachine(mtj.ModernSTT(), 1, 1024, mp.Columns)
		for j, rows := range mp.InputRows {
			for bi, row := range rows {
				bit := (x[j] >> bi) & 1
				for col := 0; col < mp.Columns; col++ {
					mach.Tiles[0].SetBit(row, col, bit)
				}
			}
		}
		c := controller.New(controller.ProgramStore(mp.Prog), mach)
		res, err := sim.NewMachineRunner(c).Run(h)
		if err != nil {
			t.Fatal(err)
		}
		scores := make([]int64, im.Classes)
		for class := range scores {
			bits := make([]int, len(mp.ScoreRows))
			for i, row := range mp.ScoreRows {
				bits[i] = mach.Tiles[0].Bit(row, mp.ClassColumn(class))
			}
			scores[class] = mp.ReadScore(bits)
		}
		return scores, res.Restarts
	}

	want, _ := runOnce(nil)
	cfg := mtj.ModernSTT()
	got, restarts := runOnce(power.NewHarvester(power.Constant{W: 3e-6}, 10e-9, cfg.CapVMin, cfg.CapVMax))
	if restarts == 0 {
		t.Fatalf("starved run saw no outages")
	}
	golden := im.Scores(x)
	for class := range want {
		if got[class] != want[class] || got[class] != golden[class] {
			t.Fatalf("class %d: %d (outages) vs %d (continuous) vs %d (golden), restarts=%d",
				class, got[class], want[class], golden[class], restarts)
		}
	}
}

// TestParallelFasterThanClassLocal confirms the mapping trade-off: the
// SV-parallel program is much shorter than the class-per-column one,
// which serializes support vectors.
func TestParallelFasterThanClassLocal(t *testing.T) {
	ds := tinySet(73, 6, 4)
	m, err := Train(ds, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	im, err := m.Quantize(10)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CompileParallelMapping(im, 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	local, err := CompileMapping(im, 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Prog)*2 > len(local.Prog) {
		t.Errorf("SV-parallel %d instructions not ≥2× below class-local %d", len(par.Prog), len(local.Prog))
	}
	t.Logf("instructions: SV-parallel %d vs class-local %d (%.1fx)",
		len(par.Prog), len(local.Prog), float64(len(local.Prog))/float64(len(par.Prog)))
}

func TestCompileParallelMappingValidates(t *testing.T) {
	ds := tinySet(74, 4, 3)
	m, err := Train(ds, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	im, err := m.Quantize(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileParallelMapping(im, 1024, 0); err == nil {
		t.Errorf("zero input width accepted")
	}
	if _, err := CompileParallelMapping(im, 80, 4); err == nil {
		t.Errorf("tiny row budget accepted")
	}
	empty := &IntModel{Features: 4, Classes: 2, AccBits: 10, Machines: make([]IntBinary, 2)}
	if _, err := CompileParallelMapping(empty, 1024, 4); err == nil {
		t.Errorf("empty model accepted")
	}
	huge := &IntModel{Features: 4, Classes: 64, AccBits: 10, Machines: make([]IntBinary, 64)}
	for i := range huge.Machines {
		huge.Machines[i].SV = make([][]int, 64)
		huge.Machines[i].Q = make([]int64, 64)
		for j := range huge.Machines[i].SV {
			huge.Machines[i].SV[j] = []int{1, 2, 3, 4}
		}
	}
	if _, err := CompileParallelMapping(huge, 1024, 4); err == nil {
		t.Errorf("column overflow accepted")
	}
}

// TestArgmaxTournamentMatchesPredict verifies the fully in-array
// inference: the winning class index read from column 0 equals the
// golden model's Predict on every sample.
func TestArgmaxTournamentMatchesPredict(t *testing.T) {
	ds := tinySet(75, 6, 3)
	m, err := Train(ds, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	im, err := m.Quantize(10)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := CompileParallelArgmax(im, 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mp.ArgmaxRows == nil {
		t.Fatalf("argmax rows missing")
	}
	// 3 classes pad to 4 tournament slots.
	if mp.Columns%4 != 0 {
		t.Fatalf("padded columns = %d", mp.Columns)
	}
	t.Logf("argmax mapping: %d instructions, %d gates, %d columns", len(mp.Prog), mp.Gates, mp.Columns)

	mach := array.NewMachine(mtj.ModernSTT(), 1, 1024, mp.Columns)
	for _, s := range ds.Test {
		for j, rows := range mp.InputRows {
			for bi, row := range rows {
				bit := (s.X[j] >> bi) & 1
				for col := 0; col < mp.Columns; col++ {
					mach.Tiles[0].SetBit(row, col, bit)
				}
			}
		}
		c := controller.New(controller.ProgramStore(mp.Prog), mach)
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		got := 0
		for i, row := range mp.ArgmaxRows {
			got |= mach.Tiles[0].Bit(row, 0) << i
		}
		if want := im.Predict(s.X); got != want {
			t.Errorf("in-array argmax = %d, golden Predict = %d (scores %v)", got, want, im.Scores(s.X))
		}
		// The winning score in column 0 equals the max class score, and
		// the per-class scores remain readable at the class columns.
		bits := make([]int, len(mp.WinnerScoreRows))
		for i, row := range mp.WinnerScoreRows {
			bits[i] = mach.Tiles[0].Bit(row, 0)
		}
		maxScore := im.Scores(s.X)[im.Predict(s.X)]
		if got := mp.ReadScore(bits); got != maxScore {
			t.Errorf("tournament winner score %d, want %d", got, maxScore)
		}
		for class, want := range im.Scores(s.X) {
			cb := make([]int, len(mp.ScoreRows))
			for i, row := range mp.ScoreRows {
				cb[i] = mach.Tiles[0].Bit(row, mp.ClassColumn(class))
			}
			if got := mp.ReadScore(cb); got != want {
				t.Errorf("class %d score %d after tournament, want %d", class, got, want)
			}
		}
	}
}

func TestClassifyHelpers(t *testing.T) {
	ds := tinySet(76, 6, 3)
	m, err := Train(ds, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	im, err := m.Quantize(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, withArgmax := range []bool{false, true} {
		var mp *ParallelMapping
		if withArgmax {
			mp, err = CompileParallelArgmax(im, 1024, 4)
		} else {
			mp, err = CompileParallelMapping(im, 1024, 4)
		}
		if err != nil {
			t.Fatal(err)
		}
		mach := mp.NewMachine(mtj.ModernSTT(), 1024)
		for _, s := range ds.Test[:3] {
			got, err := mp.Classify(mach, s.X)
			if err != nil {
				t.Fatal(err)
			}
			if want := im.Predict(s.X); got != want {
				t.Errorf("argmax=%v: Classify = %d, want %d", withArgmax, got, want)
			}
			scores, err := mp.Scores(mach, s.X)
			if err != nil {
				t.Fatal(err)
			}
			for c, want := range im.Scores(s.X) {
				if scores[c] != want {
					t.Errorf("class %d score %d, want %d", c, scores[c], want)
				}
			}
		}
		if _, err := mp.Classify(mach, []int{1}); err == nil {
			t.Errorf("short input accepted")
		}
	}
}
