// Package isa defines the MOUSE instruction set: 64-bit instruction words
// in the three formats of Fig. 6 of the paper (logic operations, memory
// operations, and column activation), plus an output-preset write used to
// prepare logic outputs. It provides encoding, decoding, validation, a
// textual assembler/disassembler, and binary program images suitable for
// preloading into instruction tiles.
//
// Addressing follows the paper: 4-bit opcodes, 9-bit tile addresses
// (up to 512 tiles = 64 MB of 128 KB tiles) and 10-bit row and column
// addresses (1024×1024 arrays).
//
// One deliberate design point: Activate Columns replaces the machine's
// entire active-column configuration (for one tile or broadcast to all
// data tiles), rather than accumulating. This makes the configuration at
// any instant fully determined by the single most recent ACT instruction,
// which is exactly what the controller's one duplicated ACT register can
// restore after a power outage (Section IV-D). Dense activations use the
// ranged form (bulk addressing, as in Section IV-B's reference to [78]).
package isa

import (
	"fmt"
	"strings"

	"mouse/internal/mtj"
)

// Address geometry constants (Fig. 6).
const (
	OpcodeBits = 4
	TileBits   = 9
	RowBits    = 10
	ColBits    = 10

	// MaxTiles is the maximum number of addressable tiles.
	MaxTiles = 1 << TileBits
	// Rows and Cols are the addressable rows/columns per tile.
	Rows = 1 << RowBits
	Cols = 1 << ColBits

	// MaxActList is the maximum number of explicit column addresses a
	// single Activate Columns instruction can carry (Section IV-B).
	MaxActList = 5

	// BroadcastTile is the reserved tile address that an Activate Columns
	// instruction uses to target every data tile at once.
	BroadcastTile = MaxTiles - 1
)

// Kind classifies an instruction into the three formats of Fig. 6
// (memory, logic, activation), with presets distinguished from general
// memory writes because they are row-wide constant writes to the active
// columns.
type Kind uint8

const (
	// KindRead transfers one row of a tile into the memory buffer.
	KindRead Kind = iota
	// KindWrite transfers the memory buffer into one row of a tile.
	KindWrite
	// KindPreset writes a constant state into one row of every active
	// column (preparing a logic output, Section II-B).
	KindPreset
	// KindAct replaces the active-column configuration.
	KindAct
	// KindLogic performs an in-array threshold gate in every active column.
	KindLogic
)

func (k Kind) String() string {
	switch k {
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	case KindPreset:
		return "preset"
	case KindAct:
		return "act"
	case KindLogic:
		return "logic"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Instruction is one decoded 64-bit MOUSE instruction.
//
// Field usage by kind:
//
//	KindRead, KindWrite: Tile, Row
//	KindPreset:          Row, Value
//	KindLogic:           Gate, In (first Spec(Gate).Inputs entries), Out
//	KindAct:             Broadcast, Tile (unless Broadcast), and either
//	                     Cols (list form, ≤5 entries) or Ranged with
//	                     Start/Count/Stride (bulk form)
type Instruction struct {
	Kind Kind

	// Logic fields.
	Gate mtj.GateKind
	In   [3]uint16
	Out  uint16

	// Memory fields.
	Tile uint16
	Row  uint16

	// Rot rotates the memory buffer as a write lands: destination
	// column c receives buffer bit (c-Rot) mod 1024. A rotated
	// read-write pair is how partial results move *across* columns
	// ("the partial sums are moved, via reads and writes, to a single
	// column", Section VI) — the bit lines only ever move data
	// vertically. Reads always capture the row unrotated.
	Rot uint16

	// Preset value.
	Value mtj.State

	// Activation fields.
	Broadcast bool
	Cols      []uint16
	Ranged    bool
	Start     uint16
	Count     uint16 // number of activated columns (1..1024)
	Stride    uint16
}

// NumInputs returns how many input rows a logic instruction uses.
func (in *Instruction) NumInputs() int {
	return mtj.Spec(in.Gate).Inputs
}

// Read returns an instruction reading (tile, row) into the memory buffer.
func Read(tile, row int) Instruction {
	return Instruction{Kind: KindRead, Tile: uint16(tile), Row: uint16(row)}
}

// Write returns an instruction writing the memory buffer to (tile, row).
func Write(tile, row int) Instruction {
	return Instruction{Kind: KindWrite, Tile: uint16(tile), Row: uint16(row)}
}

// WriteRot returns a write that rotates the buffer by rot columns as it
// lands (column c receives buffer bit (c-rot) mod 1024).
func WriteRot(tile, row, rot int) Instruction {
	return Instruction{Kind: KindWrite, Tile: uint16(tile), Row: uint16(row), Rot: uint16(rot)}
}

// Preset returns an instruction presetting row in all active columns to s.
func Preset(row int, s mtj.State) Instruction {
	return Instruction{Kind: KindPreset, Row: uint16(row), Value: s}
}

// Logic returns a gate instruction with the given input and output rows.
// The number of inputs must match the gate's arity.
func Logic(g mtj.GateKind, inputs []int, out int) Instruction {
	spec := mtj.Spec(g)
	if len(inputs) != spec.Inputs {
		panic(fmt.Sprintf("isa: %s takes %d inputs, got %d", g, spec.Inputs, len(inputs)))
	}
	in := Instruction{Kind: KindLogic, Gate: g, Out: uint16(out)}
	for i, r := range inputs {
		in.In[i] = uint16(r)
	}
	return in
}

// ActList returns an Activate Columns instruction activating the listed
// columns (at most MaxActList of them) in tile t, replacing the previous
// configuration. Pass broadcast to activate the columns in every tile.
func ActList(broadcast bool, tile int, cols []uint16) Instruction {
	if broadcast {
		tile = 0
	}
	return Instruction{
		Kind:      KindAct,
		Broadcast: broadcast,
		Tile:      uint16(tile),
		Cols:      append([]uint16(nil), cols...),
	}
}

// ActRange returns a bulk Activate Columns instruction activating count
// columns start, start+stride, ... in tile t (or every tile if broadcast),
// replacing the previous configuration.
func ActRange(broadcast bool, tile int, start, count, stride int) Instruction {
	if broadcast {
		tile = 0
	}
	return Instruction{
		Kind:      KindAct,
		Broadcast: broadcast,
		Tile:      uint16(tile),
		Ranged:    true,
		Start:     uint16(start),
		Count:     uint16(count),
		Stride:    uint16(stride),
	}
}

// ActiveColumns expands an Activate Columns instruction into the concrete
// set of column indices it activates. It panics if in is not a KindAct.
func (in *Instruction) ActiveColumns() []uint16 {
	if in.Kind != KindAct {
		panic("isa: ActiveColumns on non-ACT instruction")
	}
	if !in.Ranged {
		// De-duplicate: repeated entries pad short lists.
		seen := make(map[uint16]bool, len(in.Cols))
		out := make([]uint16, 0, len(in.Cols))
		for _, c := range in.Cols {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
		return out
	}
	out := make([]uint16, 0, in.Count)
	c := uint32(in.Start)
	for i := 0; i < int(in.Count); i++ {
		if c >= Cols {
			break
		}
		out = append(out, uint16(c))
		c += uint32(in.Stride)
	}
	return out
}

// Validate reports whether the instruction is well-formed and encodable.
func (in *Instruction) Validate() error {
	switch in.Kind {
	case KindRead, KindWrite:
		if in.Tile >= MaxTiles {
			return fmt.Errorf("isa: %s: tile %d out of range", in.Kind, in.Tile)
		}
		if in.Row >= Rows {
			return fmt.Errorf("isa: %s: row %d out of range", in.Kind, in.Row)
		}
		if in.Kind == KindRead && in.Rot != 0 {
			return fmt.Errorf("isa: read: rotation applies only to writes")
		}
		if in.Rot >= Cols {
			return fmt.Errorf("isa: %s: rotation %d out of range", in.Kind, in.Rot)
		}
	case KindPreset:
		if in.Row >= Rows {
			return fmt.Errorf("isa: preset: row %d out of range", in.Row)
		}
		if in.Value != mtj.P && in.Value != mtj.AP {
			return fmt.Errorf("isa: preset: bad value %d", in.Value)
		}
	case KindLogic:
		if !in.Gate.Valid() {
			return fmt.Errorf("isa: logic: invalid gate %d", uint8(in.Gate))
		}
		spec := mtj.Spec(in.Gate)
		if in.Out >= Rows {
			return fmt.Errorf("isa: %s: output row %d out of range", in.Gate, in.Out)
		}
		outParity := in.Out & 1
		for i := 0; i < spec.Inputs; i++ {
			r := in.In[i]
			if r >= Rows {
				return fmt.Errorf("isa: %s: input row %d out of range", in.Gate, r)
			}
			// Inputs must share a parity and the output must have the
			// opposite one, so the current path crosses from one bit line
			// to the other (Section II-C).
			if r&1 == outParity {
				return fmt.Errorf("isa: %s: input row %d has same parity as output row %d", in.Gate, r, in.Out)
			}
			if i > 0 && r&1 != in.In[0]&1 {
				return fmt.Errorf("isa: %s: input rows %d and %d differ in parity", in.Gate, in.In[0], r)
			}
			if r == in.Out {
				return fmt.Errorf("isa: %s: row %d used as both input and output", in.Gate, r)
			}
			for j := 0; j < i; j++ {
				if in.In[j] == r {
					return fmt.Errorf("isa: %s: row %d used as two inputs (a cell has one MTJ)", in.Gate, r)
				}
			}
		}
		for i := spec.Inputs; i < 3; i++ {
			if in.In[i] != 0 {
				return fmt.Errorf("isa: %s: unused input slot %d must be zero", in.Gate, i)
			}
		}
	case KindAct:
		if !in.Broadcast && in.Tile >= BroadcastTile {
			return fmt.Errorf("isa: act: tile %d out of range (%d is reserved for broadcast)", in.Tile, BroadcastTile)
		}
		if in.Ranged {
			if in.Start >= Cols {
				return fmt.Errorf("isa: act: start column %d out of range", in.Start)
			}
			if in.Count == 0 || int(in.Count) > Cols {
				return fmt.Errorf("isa: act: count %d out of range [1, %d]", in.Count, Cols)
			}
			if in.Stride >= Cols {
				return fmt.Errorf("isa: act: stride %d out of range", in.Stride)
			}
			if len(in.Cols) != 0 {
				return fmt.Errorf("isa: act: ranged form cannot carry a column list")
			}
		} else {
			if len(in.Cols) == 0 || len(in.Cols) > MaxActList {
				return fmt.Errorf("isa: act: column list length %d out of range [1, %d]", len(in.Cols), MaxActList)
			}
			for _, c := range in.Cols {
				if c >= Cols {
					return fmt.Errorf("isa: act: column %d out of range", c)
				}
			}
		}
	default:
		return fmt.Errorf("isa: unknown instruction kind %d", uint8(in.Kind))
	}
	return nil
}

// String renders the instruction in assembler syntax (see Parse).
func (in Instruction) String() string {
	switch in.Kind {
	case KindRead:
		return fmt.Sprintf("RD %d %d", in.Tile, in.Row)
	case KindWrite:
		if in.Rot != 0 {
			return fmt.Sprintf("WR %d %d %d", in.Tile, in.Row, in.Rot)
		}
		return fmt.Sprintf("WR %d %d", in.Tile, in.Row)
	case KindPreset:
		return fmt.Sprintf("PRE%d %d", in.Value.Bit(), in.Row)
	case KindLogic:
		var b strings.Builder
		fmt.Fprintf(&b, "%s", in.Gate)
		for i := 0; i < in.NumInputs(); i++ {
			fmt.Fprintf(&b, " %d", in.In[i])
		}
		fmt.Fprintf(&b, " %d", in.Out)
		return b.String()
	case KindAct:
		var b strings.Builder
		b.WriteString("ACT ")
		if in.Broadcast {
			b.WriteString("*")
		} else {
			fmt.Fprintf(&b, "T%d", in.Tile)
		}
		if in.Ranged {
			fmt.Fprintf(&b, " R %d %d %d", in.Start, in.Count, in.Stride)
		} else {
			b.WriteString(" C")
			for _, c := range in.Cols {
				fmt.Fprintf(&b, " %d", c)
			}
		}
		return b.String()
	}
	return fmt.Sprintf("?%d", uint8(in.Kind))
}

// Program is a linear sequence of instructions. MOUSE programs have no
// control flow: the controller executes instructions in order until the
// program repeats (Section IV-B), so a Program fully describes execution.
type Program []Instruction

// Validate checks every instruction and returns the first error with its
// index.
func (p Program) Validate() error {
	for i := range p {
		if err := p[i].Validate(); err != nil {
			return fmt.Errorf("instruction %d: %w", i, err)
		}
	}
	return nil
}

// Counts tallies the instructions by kind, a useful summary for energy
// estimation and reporting.
type Counts struct {
	Read, Write, Preset, Act, Logic int
}

// Total returns the total instruction count.
func (c Counts) Total() int { return c.Read + c.Write + c.Preset + c.Act + c.Logic }

// Count returns the per-kind instruction totals of the program.
func (p Program) Count() Counts {
	var c Counts
	for i := range p {
		switch p[i].Kind {
		case KindRead:
			c.Read++
		case KindWrite:
			c.Write++
		case KindPreset:
			c.Preset++
		case KindAct:
			c.Act++
		case KindLogic:
			c.Logic++
		}
	}
	return c
}
