package isa

import (
	"fmt"

	"mouse/internal/mtj"
)

// Opcode assignments. The 4-bit opcode space is fully used: three
// memory/configuration opcodes, a preset, and one opcode per gate kind.
const (
	opRead   = 0
	opWrite  = 1
	opPreset = 2
	opAct    = 3
	opGate0  = 4 // opGate0 + gate kind, for the 12 gates
)

// Bit-field layout (LSB-first offsets within the 64-bit word).
const (
	// Memory operations: | op:4 | tile:9 | row:10 | rot:10 (writes) |
	memTileShift = 4
	memRowShift  = memTileShift + TileBits
	memRotShift  = memRowShift + RowBits

	// Preset: | op:4 | value:1 | row:10 |
	preValueShift = 4
	preRowShift   = preValueShift + 1

	// Logic: | op:4 | in1:10 | in2:10 | in3:10 | out:10 |
	logIn1Shift = 4
	logIn2Shift = logIn1Shift + RowBits
	logIn3Shift = logIn2Shift + RowBits
	logOutShift = logIn3Shift + RowBits

	// Activation: | op:4 | tile:9 | ranged:1 | payload |
	// List payload: five 10-bit columns (short lists repeat the last
	// column; the decoder de-duplicates). Exactly fills the word.
	// Ranged payload: | start:10 | count-1:10 | stride:10 |
	actTileShift   = 4
	actRangedShift = actTileShift + TileBits
	actPayload     = actRangedShift + 1
)

func field(w uint64, shift, bits uint) uint64 {
	return (w >> shift) & ((1 << bits) - 1)
}

// Encode packs the instruction into its 64-bit word. The instruction must
// validate.
func Encode(in Instruction) (uint64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	switch in.Kind {
	case KindRead, KindWrite:
		op := uint64(opRead)
		if in.Kind == KindWrite {
			op = opWrite
		}
		return op | uint64(in.Tile)<<memTileShift | uint64(in.Row)<<memRowShift |
			uint64(in.Rot)<<memRotShift, nil
	case KindPreset:
		return opPreset | uint64(in.Value.Bit())<<preValueShift | uint64(in.Row)<<preRowShift, nil
	case KindLogic:
		w := uint64(opGate0 + uint8(in.Gate))
		w |= uint64(in.In[0]) << logIn1Shift
		w |= uint64(in.In[1]) << logIn2Shift
		w |= uint64(in.In[2]) << logIn3Shift
		w |= uint64(in.Out) << logOutShift
		return w, nil
	case KindAct:
		w := uint64(opAct)
		tile := uint64(in.Tile)
		if in.Broadcast {
			tile = BroadcastTile
		}
		w |= tile << actTileShift
		if in.Ranged {
			w |= 1 << actRangedShift
			w |= uint64(in.Start) << actPayload
			w |= uint64(in.Count-1) << (actPayload + ColBits)
			w |= uint64(in.Stride) << (actPayload + 2*ColBits)
			return w, nil
		}
		// Pad short lists by repeating the final column.
		last := in.Cols[len(in.Cols)-1]
		for i := 0; i < MaxActList; i++ {
			c := last
			if i < len(in.Cols) {
				c = in.Cols[i]
			}
			w |= uint64(c) << (actPayload + uint(i)*ColBits)
		}
		return w, nil
	}
	return 0, fmt.Errorf("isa: cannot encode kind %d", uint8(in.Kind))
}

// Decode unpacks a 64-bit instruction word. Activate Columns lists come
// back de-duplicated (padding repeats collapse away).
func Decode(w uint64) (Instruction, error) {
	op := field(w, 0, OpcodeBits)
	switch {
	case op == opRead || op == opWrite:
		in := Instruction{
			Kind: KindRead,
			Tile: uint16(field(w, memTileShift, TileBits)),
			Row:  uint16(field(w, memRowShift, RowBits)),
			Rot:  uint16(field(w, memRotShift, ColBits)),
		}
		if op == opWrite {
			in.Kind = KindWrite
		}
		return in, in.Validate()
	case op == opPreset:
		in := Instruction{
			Kind:  KindPreset,
			Value: mtj.FromBit(int(field(w, preValueShift, 1))),
			Row:   uint16(field(w, preRowShift, RowBits)),
		}
		return in, in.Validate()
	case op == opAct:
		in := Instruction{Kind: KindAct}
		tile := uint16(field(w, actTileShift, TileBits))
		if tile == BroadcastTile {
			in.Broadcast = true
		} else {
			in.Tile = tile
		}
		if field(w, actRangedShift, 1) == 1 {
			in.Ranged = true
			in.Start = uint16(field(w, actPayload, ColBits))
			in.Count = uint16(field(w, actPayload+ColBits, ColBits)) + 1
			in.Stride = uint16(field(w, actPayload+2*ColBits, ColBits))
		} else {
			seen := make(map[uint16]bool, MaxActList)
			for i := 0; i < MaxActList; i++ {
				c := uint16(field(w, actPayload+uint(i)*ColBits, ColBits))
				if !seen[c] {
					seen[c] = true
					in.Cols = append(in.Cols, c)
				}
			}
		}
		return in, in.Validate()
	default:
		g := mtj.GateKind(op - opGate0)
		if !g.Valid() {
			return Instruction{}, fmt.Errorf("isa: bad opcode %d", op)
		}
		in := Instruction{
			Kind: KindLogic,
			Gate: g,
			Out:  uint16(field(w, logOutShift, RowBits)),
		}
		in.In[0] = uint16(field(w, logIn1Shift, RowBits))
		in.In[1] = uint16(field(w, logIn2Shift, RowBits))
		in.In[2] = uint16(field(w, logIn3Shift, RowBits))
		return in, in.Validate()
	}
}
