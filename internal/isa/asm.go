package isa

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mouse/internal/mtj"
)

// The assembler syntax mirrors Instruction.String(), one instruction per
// line:
//
//	RD <tile> <row>              read a row into the memory buffer
//	WR <tile> <row> [rot]        write the memory buffer to a row,
//	                             optionally rotated by rot columns
//	PRE0 <row> | PRE1 <row>      preset a row in the active columns
//	ACT (*|T<tile>) C <col>...   activate up to 5 listed columns
//	ACT (*|T<tile>) R <start> <count> [stride]
//	                             activate count columns from start
//	<GATE> <in>... <out>         logic gate, e.g. NAND2 0 2 1
//
// '#' and ';' start comments; blank lines are ignored.

var gateByName = func() map[string]mtj.GateKind {
	m := make(map[string]mtj.GateKind, mtj.NumGates)
	for g := mtj.GateKind(0); g.Valid(); g++ {
		m[g.String()] = g
	}
	return m
}()

// ParseLine assembles a single line into an instruction. It returns
// ok=false for blank and comment-only lines.
func ParseLine(line string) (in Instruction, ok bool, err error) {
	if i := strings.IndexAny(line, "#;"); i >= 0 {
		line = line[:i]
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Instruction{}, false, nil
	}
	op := strings.ToUpper(fields[0])
	args := fields[1:]

	num := func(s string) (int, error) {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("isa: bad number %q", s)
		}
		return v, nil
	}
	nums := func(ss []string) ([]int, error) {
		out := make([]int, len(ss))
		for i, s := range ss {
			v, err := num(s)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	switch op {
	case "RD", "WR":
		if len(args) != 2 && !(op == "WR" && len(args) == 3) {
			return Instruction{}, false, fmt.Errorf("isa: %s takes tile and row (WR also accepts a rotation)", op)
		}
		v, err := nums(args)
		if err != nil {
			return Instruction{}, false, err
		}
		switch {
		case op == "RD":
			in = Read(v[0], v[1])
		case len(v) == 3:
			in = WriteRot(v[0], v[1], v[2])
		default:
			in = Write(v[0], v[1])
		}
	case "PRE0", "PRE1":
		if len(args) != 1 {
			return Instruction{}, false, fmt.Errorf("isa: %s takes a row", op)
		}
		row, err := num(args[0])
		if err != nil {
			return Instruction{}, false, err
		}
		val := mtj.P
		if op == "PRE1" {
			val = mtj.AP
		}
		in = Preset(row, val)
	case "ACT":
		if len(args) < 3 {
			return Instruction{}, false, fmt.Errorf("isa: ACT takes a target, a mode, and arguments")
		}
		broadcast := false
		tile := 0
		switch {
		case args[0] == "*":
			broadcast = true
		case strings.HasPrefix(strings.ToUpper(args[0]), "T"):
			t, err := num(args[0][1:])
			if err != nil {
				return Instruction{}, false, err
			}
			tile = t
		default:
			return Instruction{}, false, fmt.Errorf("isa: ACT target must be * or T<tile>, got %q", args[0])
		}
		mode := strings.ToUpper(args[1])
		v, err := nums(args[2:])
		if err != nil {
			return Instruction{}, false, err
		}
		switch mode {
		case "C":
			cols := make([]uint16, len(v))
			for i, c := range v {
				cols[i] = uint16(c)
			}
			in = ActList(broadcast, tile, cols)
		case "R":
			if len(v) < 2 || len(v) > 3 {
				return Instruction{}, false, fmt.Errorf("isa: ACT R takes start, count, and optional stride")
			}
			stride := 1
			if len(v) == 3 {
				stride = v[2]
			}
			in = ActRange(broadcast, tile, v[0], v[1], stride)
		default:
			return Instruction{}, false, fmt.Errorf("isa: ACT mode must be C or R, got %q", mode)
		}
	default:
		g, isGate := gateByName[op]
		if !isGate {
			return Instruction{}, false, fmt.Errorf("isa: unknown mnemonic %q", op)
		}
		arity := mtj.Spec(g).Inputs
		if len(args) != arity+1 {
			return Instruction{}, false, fmt.Errorf("isa: %s takes %d inputs and an output", op, arity)
		}
		v, err := nums(args)
		if err != nil {
			return Instruction{}, false, err
		}
		in = Logic(g, v[:arity], v[arity])
	}
	if err := in.Validate(); err != nil {
		return Instruction{}, false, err
	}
	return in, true, nil
}

// ParseError locates an assembly error on its 1-based source line, so
// front ends can prefix the file name (file.s:17: ...).
type ParseError struct {
	Line int
	Err  error
}

func (e *ParseError) Error() string { return fmt.Sprintf("line %d: %v", e.Line, e.Err) }

func (e *ParseError) Unwrap() error { return e.Err }

// Parse assembles a whole program from r. Syntax errors are reported as
// a *ParseError carrying the source line.
func Parse(r io.Reader) (Program, error) {
	p, _, err := ParseLines(r)
	return p, err
}

// ParseLines assembles a whole program from r, also returning the
// 1-based source line of each instruction — the map that lets analysis
// diagnostics point back at the assembly text.
func ParseLines(r io.Reader) (Program, []int, error) {
	var (
		p     Program
		lines []int
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		in, ok, err := ParseLine(sc.Text())
		if err != nil {
			return nil, nil, &ParseError{Line: lineNo, Err: err}
		}
		if ok {
			p = append(p, in)
			lines = append(lines, lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return p, lines, nil
}

// ParseString assembles a program from source text.
func ParseString(src string) (Program, error) {
	return Parse(strings.NewReader(src))
}

// Format disassembles the program, one instruction per line.
func Format(p Program, w io.Writer) error {
	for i := range p {
		if _, err := fmt.Fprintln(w, p[i].String()); err != nil {
			return err
		}
	}
	return nil
}
