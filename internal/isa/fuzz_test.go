package isa

import (
	"math/rand"
	"reflect"
	"testing"
)

// FuzzDecode feeds arbitrary 64-bit words to the decoder: it must never
// panic, and anything it accepts must re-encode to a word that decodes
// to the same instruction (a semantic fixpoint — don't-care bits may
// normalize to zero).
func FuzzDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 32; i++ {
		w, err := Encode(randomInstruction(rng))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(w)
	}
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, w uint64) {
		in, err := Decode(w)
		if err != nil {
			return
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("decoder produced an invalid instruction: %v (%v)", in, err)
		}
		w2, err := Encode(in)
		if err != nil {
			t.Fatalf("accepted instruction does not re-encode: %v (%v)", in, err)
		}
		in2, err := Decode(w2)
		if err != nil {
			t.Fatalf("re-encoded word does not decode: %#x (%v)", w2, err)
		}
		if !reflect.DeepEqual(canonical(in), canonical(in2)) {
			t.Fatalf("semantic fixpoint broken: %v vs %v", in, in2)
		}
	})
}

// FuzzParseLine feeds arbitrary text to the assembler: no panics, and
// accepted lines must round-trip through String.
func FuzzParseLine(f *testing.F) {
	seeds := []string{
		"RD 3 17", "WR 4 2 100", "PRE1 9", "NAND2 0 2 1", "MAJ3 0 2 4 1",
		"ACT * C 1 2", "ACT T7 R 0 8 2", "# comment", "", "RD x y",
		"NOT 2 1 ; trailing", "ACT * R 1023 1024 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		in, ok, err := ParseLine(line)
		if err != nil || !ok {
			return
		}
		again, ok2, err2 := ParseLine(in.String())
		if err2 != nil || !ok2 {
			t.Fatalf("String() of parsed %q does not re-parse: %q (%v)", line, in.String(), err2)
		}
		if !reflect.DeepEqual(canonical(in), canonical(again)) {
			t.Fatalf("assembler round trip: %v vs %v", in, again)
		}
	})
}
