package isa

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Program images are how instructions get preloaded into MOUSE's
// instruction tiles before deployment (Section IV-B). The on-disk format
// is a small header followed by one big-endian 64-bit word per
// instruction.

// imageMagic identifies a MOUSE program image.
var imageMagic = [8]byte{'M', 'O', 'U', 'S', 'E', 'P', 'R', 'G'}

const imageVersion = 1

// WriteImage serializes the program to w as a binary image.
func WriteImage(p Program, w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, err := w.Write(imageMagic[:]); err != nil {
		return err
	}
	hdr := make([]byte, 12)
	binary.BigEndian.PutUint32(hdr[0:4], imageVersion)
	binary.BigEndian.PutUint64(hdr[4:12], uint64(len(p)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for i := range p {
		word, err := Encode(p[i])
		if err != nil {
			return fmt.Errorf("instruction %d: %w", i, err)
		}
		binary.BigEndian.PutUint64(buf, word)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadImage deserializes a program image from r.
func ReadImage(r io.Reader) (Program, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("isa: reading image magic: %w", err)
	}
	if magic != imageMagic {
		return nil, fmt.Errorf("isa: not a MOUSE program image (magic %q)", magic[:])
	}
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("isa: reading image header: %w", err)
	}
	if v := binary.BigEndian.Uint32(hdr[0:4]); v != imageVersion {
		return nil, fmt.Errorf("isa: unsupported image version %d", v)
	}
	n := binary.BigEndian.Uint64(hdr[4:12])
	const maxInstructions = 1 << 28 // 2 GiB of instructions; sanity bound
	if n > maxInstructions {
		return nil, fmt.Errorf("isa: image declares %d instructions, beyond the %d limit", n, maxInstructions)
	}
	p := make(Program, 0, n)
	buf := make([]byte, 8)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("isa: reading instruction %d: %w", i, err)
		}
		in, err := Decode(binary.BigEndian.Uint64(buf))
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		p = append(p, in)
	}
	return p, nil
}
