package isa

import "fmt"

// Re-execution safety analysis. MOUSE checkpoints after every
// instruction, so only single instructions are ever replayed — and
// single gates are idempotent by device physics (Section V-A). The paper
// notes that replaying *multiple* instructions is a different matter:
// "over the course of multiple instructions, temporary values can be
// created... periodically overwritten. Repeating multiple instructions
// on startup would require some method for ensuring correctness of
// these temporary values" (Section IV-D).
//
// The precise condition is the write-after-read (WAR) hazard: a region
// of straight-line MOUSE code replays to the same final state if and
// only if no instruction writes a location that an earlier instruction
// of the region read — otherwise the replayed read sees the clobbered
// value. FindWARHazards locates every such pair, letting a
// checkpoint-thinning compiler (sim.RunWithCheckpointInterval's model)
// place commits only at hazard-free boundaries.

// Hazard is one write-after-read pair that makes a region unsafe to
// replay.
type Hazard struct {
	// ReadAt and WriteAt are instruction indices with ReadAt < WriteAt.
	ReadAt, WriteAt int
	// Tile and Row locate the clobbered cell row (Tile is -1 for
	// broadcast operations, which touch every data tile).
	Tile, Row int
}

func (h Hazard) String() string {
	loc := fmt.Sprintf("tile %d row %d", h.Tile, h.Row)
	if h.Tile < 0 {
		loc = fmt.Sprintf("row %d (broadcast)", h.Row)
	}
	return fmt.Sprintf("instruction %d reads %s; instruction %d overwrites it", h.ReadAt, loc, h.WriteAt)
}

// Location conventions for the Effects model: broadcast operations use
// tile = LocAnyTile (they touch every data tile); the memory buffer is
// tile = LocBuffer, row 0.
const (
	LocAnyTile = -1
	LocBuffer  = -2
)

// Effects lists the (tile, row) locations an instruction reads and
// writes, in the LocAnyTile/LocBuffer convention. This is the shared
// dataflow model behind the WAR-hazard analysis and the lint package's
// def-before-use and dead-write rules. Note that a logic gate reads its
// output row as well as its inputs: threshold switching depends on the
// preset state.
func (in *Instruction) Effects() (reads, writes [][2]int) {
	return rw(in)
}

// ActEffects reports whether the instruction depends on (reads) or
// replaces (writes) the machine's active-column configuration — the
// peripheral state that FindWARHazards deliberately ignores, because the
// Section IV-D restart protocol restores it from the duplicated ACT
// register rather than by replay. That restore is exactly why the
// configuration matters to a *region* replay analysis: after a crash the
// machine resumes under the most recently *executed* ACT, which may not
// be the configuration the region entered with. Presets and logic
// operations read the configuration (they touch only active columns);
// ACT replaces it wholesale; memory transfers are column-addressed by
// the instruction itself and ignore it.
func (in *Instruction) ActEffects() (reads, writes bool) {
	switch in.Kind {
	case KindPreset, KindLogic:
		return true, false
	case KindAct:
		return false, true
	}
	return false, false
}

// rw lists the rows an instruction reads and writes. Broadcast
// operations use tile = -1 (they conflict with every tile). The memory
// buffer is modelled as tile = -2, row = 0.
func rw(in *Instruction) (reads, writes [][2]int) {
	const (
		anyTile = LocAnyTile
		buffer  = LocBuffer
	)
	switch in.Kind {
	case KindRead:
		reads = append(reads, [2]int{int(in.Tile), int(in.Row)})
		writes = append(writes, [2]int{buffer, 0})
	case KindWrite:
		reads = append(reads, [2]int{buffer, 0})
		writes = append(writes, [2]int{int(in.Tile), int(in.Row)})
	case KindPreset:
		writes = append(writes, [2]int{anyTile, int(in.Row)})
	case KindLogic:
		for i := 0; i < in.NumInputs(); i++ {
			reads = append(reads, [2]int{anyTile, int(in.In[i])})
		}
		// A gate both reads and writes its output (threshold switching
		// depends on the preset state).
		reads = append(reads, [2]int{anyTile, int(in.Out)})
		writes = append(writes, [2]int{anyTile, int(in.Out)})
	case KindAct:
		// Peripheral configuration only; the restart protocol restores
		// it independently of replay.
	}
	return reads, writes
}

// overlap reports whether two (tile, row) locations can alias.
func overlap(a, b [2]int) bool {
	if a[1] != b[1] && !(a[0] == -2 && b[0] == -2) {
		return false
	}
	if a[0] == -2 || b[0] == -2 {
		return a[0] == b[0]
	}
	return a[0] == -1 || b[0] == -1 || a[0] == b[0]
}

// definitelyCovers reports whether a prior write w certainly supplies
// the value a read r observes: a broadcast-row write covers any read of
// that row; a tile-specific write covers only the identical location.
func definitelyCovers(w, r [2]int) bool {
	if w[0] == -2 || r[0] == -2 {
		return w[0] == -2 && r[0] == -2
	}
	if w[1] != r[1] {
		return false
	}
	if w[0] == -1 {
		return true
	}
	return w[0] == r[0] && r[0] != -1
}

// FindWARHazards returns every write-after-read hazard in the program
// region, in instruction order. An empty result means the whole region
// can be replayed from its start with no corrective presets: every value
// a replayed instruction reads is either untouched region input or is
// re-established by the replayed writes that precede it.
//
// Only *exposed* reads matter — a read preceded (within the region) by a
// write that definitely covers its location is safe, because the replay
// re-performs that write first. This is why the idiomatic
// preset-then-gate sequence is hazard-free even though the gate reads
// its preset output row.
func FindWARHazards(region Program) []Hazard {
	type pendingRead struct {
		at  int
		loc [2]int
	}
	var (
		hazards []Hazard
		exposed []pendingRead
		written [][2]int
	)
	for i := range region {
		reads, writes := rw(&region[i])
		for _, w := range writes {
			for _, r := range exposed {
				if overlap(r.loc, w) {
					hazards = append(hazards, Hazard{
						ReadAt: r.at, WriteAt: i,
						Tile: w[0], Row: w[1],
					})
				}
			}
		}
		for _, r := range reads {
			covered := false
			for _, w := range written {
				if definitelyCovers(w, r) {
					covered = true
					break
				}
			}
			if !covered {
				exposed = append(exposed, pendingRead{at: i, loc: r})
			}
		}
		written = append(written, writes...)
	}
	return hazards
}

// SafeCheckpointBoundaries partitions the program into maximal replay-
// safe regions: it returns the instruction indices (ascending, always
// ending with len(p)) where a checkpoint must be committed so that no
// replay window contains a WAR hazard. With per-instruction
// checkpointing (MOUSE's design point) every boundary is trivially safe;
// this computes how far apart checkpoints *could* be pushed.
func SafeCheckpointBoundaries(p Program) []int {
	var bounds []int
	start := 0
	for start < len(p) {
		end := start + 1
		for end < len(p) {
			if len(FindWARHazards(p[start:end+1])) > 0 {
				break
			}
			end++
		}
		bounds = append(bounds, end)
		start = end
	}
	if len(bounds) == 0 {
		bounds = append(bounds, 0)
	}
	return bounds
}

// WearProfile counts, per addressed location, how many cell writes one
// pass of the program performs — the input to an endurance estimate.
// STT-MRAM's ~10¹⁵-cycle write endurance is one of the technology's
// advantages the paper highlights over RRAM (Section X); because MOUSE
// re-presets its scratch rows on every inference, the hottest row bounds
// the array's lifetime in inferences.
type WearProfile struct {
	// RowWrites[row] counts broadcast writes (presets and gate outputs)
	// landing on the row in every active column.
	RowWrites map[int]int64
	// TileRowWrites[tile<<16|row] counts buffer writes to a specific
	// tile's row.
	TileRowWrites map[int]int64
}

// Wear analyzes one program pass.
func Wear(p Program) WearProfile {
	w := WearProfile{
		RowWrites:     make(map[int]int64),
		TileRowWrites: make(map[int]int64),
	}
	for i := range p {
		switch p[i].Kind {
		case KindPreset:
			w.RowWrites[int(p[i].Row)]++
		case KindLogic:
			// The gate may switch its output cell.
			w.RowWrites[int(p[i].Out)]++
		case KindWrite:
			w.TileRowWrites[int(p[i].Tile)<<16|int(p[i].Row)]++
		}
	}
	return w
}

// Hottest returns the most-written row (broadcast or tile-specific) and
// its per-pass write count.
func (w WearProfile) Hottest() (desc string, writes int64) {
	for row, n := range w.RowWrites {
		if n > writes {
			writes = n
			desc = fmt.Sprintf("row %d (broadcast)", row)
		}
	}
	for key, n := range w.TileRowWrites {
		if n > writes {
			writes = n
			desc = fmt.Sprintf("tile %d row %d", key>>16, key&0xFFFF)
		}
	}
	return desc, writes
}

// LifetimeInferences returns how many program passes the array endures
// before its hottest cells reach the given write endurance (e.g. 1e15
// for STT-MRAM).
func (w WearProfile) LifetimeInferences(endurance float64) float64 {
	_, hottest := w.Hottest()
	if hottest == 0 {
		return endurance
	}
	return endurance / float64(hottest)
}
