package isa

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mouse/internal/mtj"
)

// canonical reduces an instruction to a comparable form: ACT column lists
// compare as expanded active sets (encoding pads short lists).
func canonical(in Instruction) Instruction {
	if in.Kind == KindAct && !in.Ranged {
		in.Cols = in.ActiveColumns()
	}
	return in
}

func roundTrip(t *testing.T, in Instruction) {
	t.Helper()
	w, err := Encode(in)
	if err != nil {
		t.Fatalf("encode %v: %v", in, err)
	}
	out, err := Decode(w)
	if err != nil {
		t.Fatalf("decode %v (word %#x): %v", in, w, err)
	}
	if !reflect.DeepEqual(canonical(in), canonical(out)) {
		t.Errorf("round trip: %v -> %#x -> %v", in, w, out)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instruction{
		Read(0, 0),
		Read(MaxTiles-1, Rows-1),
		Write(37, 512),
		Preset(0, mtj.P),
		Preset(Rows-1, mtj.AP),
		Logic(mtj.NOT, []int{2}, 1),
		Logic(mtj.NAND2, []int{0, 2}, 1),
		Logic(mtj.MAJ3, []int{1, 3, 5}, 1022),
		ActList(true, 0, []uint16{0}),
		ActList(false, 13, []uint16{1, 2, 3, 4, 5}),
		ActList(false, BroadcastTile-1, []uint16{Cols - 1}),
		ActRange(true, 0, 0, Cols, 1),
		ActRange(false, 7, 100, 50, 2),
	}
	for _, in := range cases {
		roundTrip(t, in)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	bad := Read(MaxTiles, 0)
	if _, err := Encode(bad); err == nil {
		t.Errorf("encoding an invalid instruction succeeded")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	// A logic opcode with same-parity rows must not decode.
	w, err := Encode(Logic(mtj.NAND2, []int{0, 2}, 1))
	if err != nil {
		t.Fatal(err)
	}
	w |= 1 << logIn1Shift // flip input row 0 -> 1, colliding with output parity
	if _, err := Decode(w); err == nil {
		t.Errorf("decoding a parity-violating word succeeded")
	}
}

// randomInstruction builds a random valid instruction.
func randomInstruction(rng *rand.Rand) Instruction {
	evenRow := func() int { return int(rng.Intn(Rows/2)) * 2 }
	for {
		var in Instruction
		switch rng.Intn(5) {
		case 0:
			in = Read(rng.Intn(MaxTiles), rng.Intn(Rows))
		case 1:
			in = Write(rng.Intn(MaxTiles), rng.Intn(Rows))
		case 2:
			in = Preset(rng.Intn(Rows), mtj.FromBit(rng.Intn(2)))
		case 3:
			if rng.Intn(2) == 0 {
				n := 1 + rng.Intn(MaxActList)
				cols := make([]uint16, n)
				for i := range cols {
					cols[i] = uint16(rng.Intn(Cols))
				}
				in = ActList(rng.Intn(2) == 0, rng.Intn(BroadcastTile), cols)
			} else {
				in = ActRange(rng.Intn(2) == 0, rng.Intn(BroadcastTile),
					rng.Intn(Cols), 1+rng.Intn(Cols), rng.Intn(Cols))
			}
		case 4:
			g := mtj.GateKind(rng.Intn(mtj.NumGates))
			arity := mtj.Spec(g).Inputs
			// Distinct even input rows, odd output row.
			ins := make([]int, 0, arity)
			used := map[int]bool{}
			for len(ins) < arity {
				r := evenRow()
				if !used[r] {
					used[r] = true
					ins = append(ins, r)
				}
			}
			in = Logic(g, ins, evenRow()+1)
		}
		if in.Validate() == nil {
			return in
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func() bool {
		in := randomInstruction(rng)
		w, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(w)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(canonical(in), canonical(out))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestAssemblerRoundTrip(t *testing.T) {
	src := `
# a short MOUSE program
ACT * R 0 4 1      ; activate 4 columns everywhere
PRE0 1
NAND2 0 2 1
NOT 2 3            # invert
RD 0 1
WR 1 1
ACT T3 C 9 11
PRE1 5
MAJ3 0 2 4 5
`
	p, err := ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(p) != 9 {
		t.Fatalf("parsed %d instructions, want 9", len(p))
	}
	var buf bytes.Buffer
	if err := Format(p, &buf); err != nil {
		t.Fatalf("format: %v", err)
	}
	p2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Errorf("assembler round trip mismatch:\n%v\n%v", p, p2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"FROB 1 2",
		"RD 1",
		"RD x y",
		"PRE0",
		"NAND2 0 2",
		"NAND2 0 1 2", // parity violation
		"ACT",
		"ACT Q C 1",
		"ACT * X 1",
		"ACT * R 5",
		"RD -1 2",
	}
	for _, src := range bad {
		if _, _, err := ParseLine(src); err == nil {
			t.Errorf("ParseLine(%q) succeeded", src)
		}
	}
}

func TestParseLineSkipsBlanks(t *testing.T) {
	for _, src := range []string{"", "   ", "# comment", "; comment"} {
		_, ok, err := ParseLine(src)
		if ok || err != nil {
			t.Errorf("ParseLine(%q) = ok=%v err=%v", src, ok, err)
		}
	}
}

func TestImageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := make(Program, 200)
	for i := range p {
		p[i] = randomInstruction(rng)
	}
	var buf bytes.Buffer
	if err := WriteImage(p, &buf); err != nil {
		t.Fatalf("write image: %v", err)
	}
	p2, err := ReadImage(&buf)
	if err != nil {
		t.Fatalf("read image: %v", err)
	}
	if len(p2) != len(p) {
		t.Fatalf("image returned %d instructions, want %d", len(p2), len(p))
	}
	for i := range p {
		if !reflect.DeepEqual(canonical(p[i]), canonical(p2[i])) {
			t.Fatalf("instruction %d: %v != %v", i, p[i], p2[i])
		}
	}
}

func TestImageRejectsBadMagic(t *testing.T) {
	if _, err := ReadImage(bytes.NewReader([]byte("NOTMOUSE    "))); err == nil {
		t.Errorf("bad magic accepted")
	}
	if _, err := ReadImage(bytes.NewReader(nil)); err == nil {
		t.Errorf("empty image accepted")
	}
}

func TestImageTruncated(t *testing.T) {
	var buf bytes.Buffer
	p := Program{Read(0, 0), Write(0, 1)}
	if err := WriteImage(p, &buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadImage(bytes.NewReader(trunc)); err == nil {
		t.Errorf("truncated image accepted")
	}
}

func TestWriteRotRoundTrip(t *testing.T) {
	in := WriteRot(5, 100, 777)
	roundTrip(t, in)
	if in.String() != "WR 5 100 777" {
		t.Errorf("String = %q", in.String())
	}
	p, err := ParseString("WR 5 100 777\nWR 5 100\nRD 1 2")
	if err != nil {
		t.Fatal(err)
	}
	if p[0].Rot != 777 || p[1].Rot != 0 {
		t.Errorf("parsed rotations %d/%d", p[0].Rot, p[1].Rot)
	}
	if _, _, err := ParseLine("RD 1 2 3"); err == nil {
		t.Errorf("rotated read accepted")
	}
	bad := WriteRot(0, 0, Cols)
	if err := bad.Validate(); err == nil {
		t.Errorf("out-of-range rotation accepted")
	}
	badRead := Read(0, 0)
	badRead.Rot = 1
	if err := badRead.Validate(); err == nil {
		t.Errorf("read with rotation accepted")
	}
}
