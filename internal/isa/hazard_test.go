package isa

import (
	"testing"

	"mouse/internal/mtj"
)

func TestNoHazardInPresetGateIdiom(t *testing.T) {
	// The compiler's idiom — preset an output row, run the gate, use the
	// result — replays safely: every temporary is re-established.
	p := Program{
		ActRange(true, 0, 0, 4, 1),
		Preset(1, mtj.P),
		Logic(mtj.NAND2, []int{0, 2}, 1),
		Preset(3, mtj.P),
		Logic(mtj.NOT, []int{1}, 3+1), // reads the NAND result
	}
	// Fix parity: NOT input row 1 (odd) → output must be even.
	p[4] = Logic(mtj.NOT, []int{1}, 4)
	if hz := FindWARHazards(p); len(hz) != 0 {
		t.Fatalf("idiomatic program flagged: %v", hz)
	}
}

func TestScratchReuseIsSafe(t *testing.T) {
	// Reusing a scratch row for a second value is safe because the new
	// preset is itself replayed (the paper's "additional presetting
	// operations" are already in the stream).
	p := Program{
		Preset(1, mtj.P),
		Logic(mtj.NAND2, []int{0, 2}, 1),
		Preset(3, mtj.P),
		Logic(mtj.NOT, []int{1}, 4),
		Preset(1, mtj.AP), // scratch row 1 reused
		Logic(mtj.AND2, []int{0, 2}, 1),
	}
	if hz := FindWARHazards(p); len(hz) != 0 {
		t.Fatalf("scratch reuse flagged: %v", hz)
	}
}

func TestInputClobberIsAHazard(t *testing.T) {
	// Reading a region input and later overwriting it: the replayed read
	// sees the clobbered value.
	p := Program{
		Preset(1, mtj.P),
		Logic(mtj.NAND2, []int{0, 2}, 1), // reads row 0 (region input)
		Preset(0, mtj.AP),                // clobbers row 0
	}
	hz := FindWARHazards(p)
	if len(hz) != 1 {
		t.Fatalf("hazards = %v, want exactly one", hz)
	}
	if hz[0].ReadAt != 1 || hz[0].WriteAt != 2 || hz[0].Row != 0 {
		t.Errorf("hazard = %+v", hz[0])
	}
	if hz[0].String() == "" {
		t.Errorf("empty hazard description")
	}
}

func TestBufferHazard(t *testing.T) {
	// RD fills the buffer; a later RD clobbers it before the paired WR's
	// replay… the exposed read here is the WR's buffer read.
	p := Program{
		Read(0, 0),  // buffer ← row 0 (buffer write covers later reads)
		Write(1, 4), // reads buffer (covered by instr 0: safe)
		Read(0, 2),  // buffer ← row 2
	}
	if hz := FindWARHazards(p); len(hz) != 0 {
		t.Fatalf("covered buffer use flagged: %v", hz)
	}
	// Without the leading RD, the WR's buffer read is exposed, and the
	// trailing RD clobbers it.
	p2 := Program{
		Write(1, 4),
		Read(0, 2),
	}
	hz := FindWARHazards(p2)
	if len(hz) != 1 || hz[0].Tile != -2 {
		t.Fatalf("buffer hazard = %v", hz)
	}
}

func TestTileSpecificWritesDontMask(t *testing.T) {
	// A write to one tile's row does not cover a broadcast (all-tile)
	// read of that row in another instruction.
	p := Program{
		Write(3, 0),                      // writes row 0 of tile 3 only
		Logic(mtj.NAND2, []int{0, 2}, 1), // reads row 0 of EVERY data tile
		Preset(0, mtj.AP),                // broadcast clobber of row 0
	}
	// Need a preset for row 1 to avoid an unrelated exposure of the
	// gate's output row... the gate's output read is exposed but row 1
	// is never rewritten, so only row 0 should be flagged.
	hz := FindWARHazards(p)
	if len(hz) != 1 || hz[0].Row != 0 {
		t.Fatalf("hazards = %v, want one on row 0", hz)
	}
}

func TestSafeCheckpointBoundaries(t *testing.T) {
	// A hazard forces a checkpoint before the clobbering write.
	p := Program{
		Preset(1, mtj.P),
		Logic(mtj.NAND2, []int{0, 2}, 1),
		Preset(0, mtj.AP), // clobbers the gate's input
		Preset(3, mtj.P),
		Logic(mtj.NOT, []int{0}, 3),
	}
	bounds := SafeCheckpointBoundaries(p)
	if bounds[len(bounds)-1] != len(p) {
		t.Fatalf("boundaries %v do not cover the program", bounds)
	}
	if len(bounds) < 2 {
		t.Fatalf("hazardous program needs >1 region, got %v", bounds)
	}
	// Every region must itself be hazard-free.
	start := 0
	for _, end := range bounds {
		if hz := FindWARHazards(p[start:end]); len(hz) != 0 {
			t.Fatalf("region [%d, %d) has hazards: %v", start, end, hz)
		}
		start = end
	}
	// A hazard-free program collapses to one region.
	clean := Program{
		Preset(1, mtj.P),
		Logic(mtj.NAND2, []int{0, 2}, 1),
		Preset(3, mtj.P),
		Logic(mtj.NOT, []int{1}, 4),
	}
	if b := SafeCheckpointBoundaries(clean); len(b) != 1 || b[0] != len(clean) {
		t.Fatalf("clean program boundaries = %v", b)
	}
	if b := SafeCheckpointBoundaries(nil); len(b) != 1 || b[0] != 0 {
		t.Fatalf("empty program boundaries = %v", b)
	}
}

func TestWearProfile(t *testing.T) {
	p := Program{
		ActRange(true, 0, 0, 4, 1),
		Preset(1, mtj.P),
		Logic(mtj.NAND2, []int{0, 2}, 1),
		Preset(1, mtj.AP), // row 1 hammered again
		Logic(mtj.AND2, []int{0, 2}, 1),
		Read(0, 1),
		Write(3, 7),
	}
	w := Wear(p)
	if w.RowWrites[1] != 4 {
		t.Fatalf("row 1 writes = %d, want 4 (2 presets + 2 gate outputs)", w.RowWrites[1])
	}
	if w.TileRowWrites[3<<16|7] != 1 {
		t.Fatalf("tile write missed: %v", w.TileRowWrites)
	}
	desc, n := w.Hottest()
	if n != 4 || desc != "row 1 (broadcast)" {
		t.Fatalf("hottest = %q/%d", desc, n)
	}
	// 10^15 endurance at 4 writes/pass → 2.5×10^14 inferences.
	if life := w.LifetimeInferences(1e15); life != 2.5e14 {
		t.Fatalf("lifetime = %g", life)
	}
	if life := Wear(nil).LifetimeInferences(1e15); life != 1e15 {
		t.Fatalf("empty program lifetime = %g", life)
	}
}

// ActEffects is the activation-configuration side channel the
// region-replay analysis consumes: presets and gates read the
// configuration (they touch only active columns), ACT replaces it
// wholesale, and memory transfers ignore it entirely.
func TestActEffects(t *testing.T) {
	cases := []struct {
		in            Instruction
		reads, writes bool
	}{
		{Preset(1, mtj.P), true, false},
		{Logic(mtj.NAND2, []int{0, 2}, 1), true, false},
		{ActRange(true, 0, 0, 4, 1), false, true},
		{ActList(false, 0, []uint16{3}), false, true},
		{Read(0, 1), false, false},
		{Write(0, 1), false, false},
	}
	for _, tc := range cases {
		r, w := tc.in.ActEffects()
		if r != tc.reads || w != tc.writes {
			t.Errorf("%v: ActEffects = (%v, %v), want (%v, %v)", tc.in.Kind, r, w, tc.reads, tc.writes)
		}
	}
}
