package isa

import (
	"strings"
	"testing"

	"mouse/internal/mtj"
)

func TestConstructors(t *testing.T) {
	rd := Read(3, 17)
	if rd.Kind != KindRead || rd.Tile != 3 || rd.Row != 17 {
		t.Errorf("Read built %+v", rd)
	}
	wr := Write(4, 18)
	if wr.Kind != KindWrite || wr.Tile != 4 || wr.Row != 18 {
		t.Errorf("Write built %+v", wr)
	}
	pre := Preset(9, mtj.AP)
	if pre.Kind != KindPreset || pre.Row != 9 || pre.Value != mtj.AP {
		t.Errorf("Preset built %+v", pre)
	}
	lg := Logic(mtj.NAND2, []int{0, 2}, 1)
	if lg.Kind != KindLogic || lg.Gate != mtj.NAND2 || lg.In[0] != 0 || lg.In[1] != 2 || lg.Out != 1 {
		t.Errorf("Logic built %+v", lg)
	}
	if lg.NumInputs() != 2 {
		t.Errorf("NAND2 NumInputs = %d", lg.NumInputs())
	}
}

func TestLogicArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Logic with wrong arity did not panic")
		}
	}()
	Logic(mtj.NAND2, []int{0}, 1)
}

func TestValidateParity(t *testing.T) {
	// Inputs must share parity; output must be the opposite parity.
	good := Logic(mtj.NAND2, []int{0, 2}, 3)
	if err := good.Validate(); err != nil {
		t.Errorf("valid gate rejected: %v", err)
	}
	badOut := Logic(mtj.NAND2, []int{0, 2}, 4)
	if err := badOut.Validate(); err == nil {
		t.Errorf("same-parity output accepted")
	}
	badIn := Logic(mtj.NAND2, []int{0, 3}, 1) // inputs differ in parity; in[1] also collides with out parity
	if err := badIn.Validate(); err == nil {
		t.Errorf("mixed-parity inputs accepted")
	}
}

func TestValidateRanges(t *testing.T) {
	cases := []Instruction{
		Read(MaxTiles, 0),
		Read(0, Rows),
		Write(0, Rows),
		Preset(Rows, mtj.P),
		Logic(mtj.NOT, []int{0}, Rows+1),
		ActList(false, BroadcastTile, []uint16{1}),
		ActList(false, 0, nil),
		ActList(false, 0, []uint16{1, 2, 3, 4, 5, 6}),
		ActList(false, 0, []uint16{Cols}),
		ActRange(false, 0, Cols, 1, 1),
		ActRange(false, 0, 0, 0, 1),
		ActRange(false, 0, 0, Cols+1, 1),
	}
	for i, in := range cases {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d (%v) should not validate", i, in)
		}
	}
}

func TestValidateUnusedInputSlots(t *testing.T) {
	in := Logic(mtj.NOT, []int{2}, 1)
	if err := in.Validate(); err != nil {
		t.Fatalf("NOT rejected: %v", err)
	}
	in.In[1] = 5
	if err := in.Validate(); err == nil {
		t.Errorf("nonzero unused input slot accepted")
	}
}

func TestActiveColumnsList(t *testing.T) {
	in := ActList(true, 0, []uint16{7, 7, 9, 7})
	got := in.ActiveColumns()
	if len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Errorf("ActiveColumns = %v, want [7 9]", got)
	}
}

func TestActiveColumnsRange(t *testing.T) {
	in := ActRange(false, 2, 10, 4, 3)
	got := in.ActiveColumns()
	want := []uint16{10, 13, 16, 19}
	if len(got) != len(want) {
		t.Fatalf("ActiveColumns = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ActiveColumns = %v, want %v", got, want)
		}
	}
	// Ranges clip at the column limit rather than wrapping.
	in = ActRange(false, 2, Cols-2, 10, 1)
	if got := in.ActiveColumns(); len(got) != 2 {
		t.Errorf("range past end activated %d columns, want 2", len(got))
	}
}

func TestActiveColumnsPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic")
		}
	}()
	rd := Read(0, 0)
	rd.ActiveColumns()
}

func TestProgramValidateAndCount(t *testing.T) {
	p := Program{
		ActRange(true, 0, 0, 8, 1),
		Preset(1, mtj.P),
		Logic(mtj.NAND2, []int{0, 2}, 1),
		Read(0, 1),
		Write(1, 3),
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("program invalid: %v", err)
	}
	c := p.Count()
	if c.Act != 1 || c.Preset != 1 || c.Logic != 1 || c.Read != 1 || c.Write != 1 {
		t.Errorf("counts = %+v", c)
	}
	if c.Total() != 5 {
		t.Errorf("total = %d", c.Total())
	}

	p = append(p, Read(MaxTiles, 0))
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "instruction 5") {
		t.Errorf("program validation error %v should name instruction 5", err)
	}
}

func TestInstructionStrings(t *testing.T) {
	cases := map[string]Instruction{
		"RD 3 17":       Read(3, 17),
		"WR 4 2":        Write(4, 2),
		"PRE1 9":        Preset(9, mtj.AP),
		"PRE0 8":        Preset(8, mtj.P),
		"NAND2 0 2 1":   Logic(mtj.NAND2, []int{0, 2}, 1),
		"NOT 2 1":       Logic(mtj.NOT, []int{2}, 1),
		"MAJ3 1 3 5 2":  Logic(mtj.MAJ3, []int{1, 3, 5}, 2),
		"ACT * C 1 2":   ActList(true, 0, []uint16{1, 2}),
		"ACT T7 C 5":    ActList(false, 7, []uint16{5}),
		"ACT * R 0 8 1": ActRange(true, 0, 0, 8, 1),
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
