package fault

import (
	"fmt"

	"mouse/internal/power"
	"mouse/internal/probe"
)

// minWindowJ floors the pre-charged energy window. A window of exactly
// zero is not representable (the harvester requires V_on > V_off), so a
// "crash before the first instruction" schedule charges this much: it is
// orders of magnitude below any instruction's energy, so the first Draw
// still dies in its fetch phase.
const minWindowJ = 1e-21

// Injector is the adversarial power source at the heart of the
// fault-injection engine. It delivers exactly enough energy for the run
// to die at a scheduled point and then recovers:
//
//  1. charging — while the harvester performs the initial charge, the
//     injector supplies generous power, so the buffer quickly reaches
//     V_on holding exactly WindowJ joules of usable energy above V_off.
//  2. armed — during execution it supplies zero power, so the machine
//     runs down the buffer deterministically: the outage lands at the
//     precise instruction (and µ-phase fraction) whose cumulative energy
//     crosses WindowJ.
//  3. recovered — the moment the outage fires, it supplies enough power
//     that the rest of the run completes without another outage.
//
// The mode transitions are driven by the run's own probe events — the
// injector doubles as an observer and must be attached to the runner
// (the engine composes it with any caller observer via probe.Multi):
// OutageEnd of the initial charge arms it, PulseInterrupted trips it.
// Tripping on PulseInterrupted (which every runner emits before its
// non-termination guard) also guarantees the guard sees the recovery
// power, so a window smaller than one instruction's energy is still a
// survivable outage rather than a spurious ErrNonTermination.
type Injector struct {
	probe.Nop

	// WindowJ is the usable energy above V_off the buffer holds when the
	// machine boots — the scheduled crash point in joules.
	WindowJ float64
	// RecoverW is the power supplied while charging and after the trip.
	RecoverW float64

	mode injectorMode
}

type injectorMode int

const (
	modeCharging injectorMode = iota
	modeArmed
	modeRecovered
)

// NewInjector schedules an outage after windowJ joules of demand, with
// recoverW watts of post-outage (and initial-charge) supply. recoverW
// must exceed the workload's peak single-cycle power so the recovered
// run sees no second outage; the sweep engine derives it from the golden
// run's energy schedule.
func NewInjector(windowJ, recoverW float64) *Injector {
	if windowJ < minWindowJ {
		windowJ = minWindowJ
	}
	return &Injector{WindowJ: windowJ, RecoverW: recoverW}
}

// Injector voltage window: the absolute levels are arbitrary (only
// energies matter); the capacitance is sized so the usable window
// between them is exactly WindowJ.
const (
	injVOff = 1.0
	injVOn  = 2.0
)

// Harvester builds the harvester realizing the schedule: a capacitor
// sized so that a full buffer holds exactly WindowJ above the shutdown
// voltage, supplied by the injector itself.
func (inj *Injector) Harvester() *power.Harvester {
	c := 2 * inj.WindowJ / (injVOn*injVOn - injVOff*injVOff)
	return power.NewHarvester(inj, c, injVOff, injVOn)
}

// Power implements power.Source: zero while armed, RecoverW otherwise.
func (inj *Injector) Power(float64) float64 {
	if inj.mode == modeArmed {
		return 0
	}
	return inj.RecoverW
}

// Name implements power.Source.
func (inj *Injector) Name() string {
	return fmt.Sprintf("fault injector (window %.3g J)", inj.WindowJ)
}

// OutageEnd arms the injector once the initial charge completes; later
// outages (there is exactly one) leave the recovered mode untouched.
func (inj *Injector) OutageEnd(float64, float64) {
	if inj.mode == modeCharging {
		inj.mode = modeArmed
	}
}

// PulseInterrupted trips the injector: the scheduled outage has fired
// and the supply recovers.
func (inj *Injector) PulseInterrupted(probe.Interrupt) {
	inj.mode = modeRecovered
}

// Tripped reports whether the scheduled outage has fired.
func (inj *Injector) Tripped() bool { return inj.mode == modeRecovered }
