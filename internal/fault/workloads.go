package fault

import (
	"fmt"
	"sort"

	"mouse/internal/array"
	"mouse/internal/bnn"
	"mouse/internal/compile"
	"mouse/internal/controller"
	"mouse/internal/energy"
	"mouse/internal/fft"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/sim"
	"mouse/internal/svm"
)

// Built-in sweep workloads. Each is deliberately small enough that an
// exhaustive boundary × fraction sweep finishes in seconds, yet real
// enough to exercise every instruction kind, both logic engines, and
// the full dual-PC commit protocol: a multiplier chain (the ≥200
// instruction reference workload), a hand-built two-class SVM using the
// production application mapping, a hand-built BNN with a hidden layer,
// and a 2-point FFT through the production FFT mapping. Models are
// constructed directly — not trained — so every run of every workload
// is bit-deterministic.

// arithRows/arithCols size the multiplier workload's single tile.
const (
	arithRows = 128
	arithCols = 8
)

// compiledArith builds the reference program: an 8×8 multiply whose
// product feeds a second multiply, plus a row transfer through the
// memory buffer, so the stream covers ACT, preset, logic, read, and
// write kinds. Returns the input words for seeding. The deployment
// context (geometry plus capacitor) rides into the builder's lint
// self-check, so the compile itself proves the program fits the energy
// buffer it will be swept under.
func compiledArith(cfg *mtj.Config) (isa.Program, compile.Word, compile.Word, error) {
	b := compile.NewBuilder(arithRows)
	b.SetCheckContext(compile.CheckContext{Cfg: cfg, Tiles: 1, Rows: arithRows, Cols: arithCols})
	cols := make([]uint16, arithCols)
	for i := range cols {
		cols[i] = uint16(i)
	}
	b.ActivateBroadcast(cols)
	x := b.AllocWord(8, 0)
	y := b.AllocWord(8, 0)
	p := b.MulWords(x, y)
	q := b.MulWords(p[:8], x)
	b.FreeWord(p)
	b.Emit(isa.Read(0, q[0].Row))
	b.Emit(isa.Write(0, q[1].Row))
	prog, err := b.Program()
	return prog, x, y, err
}

// Arith is the ≥200-instruction multiplier-chain workload.
func Arith(cfg *mtj.Config) Workload {
	return Workload{
		Name: "arith",
		New: func() (*controller.Controller, error) {
			prog, x, y, err := compiledArith(cfg)
			if err != nil {
				return nil, err
			}
			m := array.NewMachine(cfg, 1, arithRows, arithCols)
			for c := 0; c < arithCols; c++ {
				for i, w := range x {
					m.Tiles[0].SetBit(w.Row, c, (c*5+3)>>i&1)
				}
				for i, w := range y {
					m.Tiles[0].SetBit(w.Row, c, (c*7+11)>>i&1)
				}
			}
			return controller.New(controller.ProgramStore(prog), m), nil
		},
	}
}

// tinySVMModel hand-constructs a two-class, two-feature quantized SVM.
func tinySVMModel() *svm.IntModel {
	return &svm.IntModel{
		Features:  2,
		Classes:   2,
		Shift:     0,
		CoeffBits: 4,
		AccBits:   10,
		Machines: []svm.IntBinary{
			{SV: [][]int{{1, 0}, {0, 1}}, Q: []int64{3, -2}, QBias: 1},
			{SV: [][]int{{1, 1}}, Q: []int64{2}, QBias: -1},
		},
	}
}

// svmRows sizes the SVM workload's tile.
const svmRows = 96

// TinySVM compiles the hand-built SVM through the production
// application mapping and loads a fixed binarized input.
func TinySVM(cfg *mtj.Config) Workload {
	return Workload{
		Name: "tiny-svm",
		New: func() (*controller.Controller, error) {
			im := tinySVMModel()
			mp, err := svm.CompileMapping(im, svmRows, 1)
			if err != nil {
				return nil, err
			}
			m := array.NewMachine(cfg, 1, svmRows, arithCols)
			input := []int{1, 1}
			for c := 0; c < mp.Columns; c++ {
				for j, rows := range mp.InputRows {
					for i, row := range rows {
						m.Tiles[0].SetBit(row, c, input[j]>>i&1)
					}
				}
			}
			return controller.New(controller.ProgramStore(mp.Prog), m), nil
		},
	}
}

// tinyBNNNetwork hand-constructs a 6-4-2 binarized network with
// deterministic weights and biases.
func tinyBNNNetwork() *bnn.Network {
	n := &bnn.Network{
		Cfg: bnn.Config{Name: "tiny-bnn", In: 6, Hidden: []int{4}, Out: 2, InputBits: 1},
	}
	widths := n.Cfg.Widths()
	for l := 0; l+1 < len(widths); l++ {
		layer := bnn.Layer{
			W:    make([][]uint8, widths[l+1]),
			Bias: make([]int, widths[l+1]),
		}
		for j := range layer.W {
			layer.W[j] = make([]uint8, widths[l])
			for i := range layer.W[j] {
				layer.W[j][i] = uint8((i + j) % 2)
			}
			layer.Bias[j] = j - 1
		}
		n.Layers = append(n.Layers, layer)
	}
	return n
}

// bnnRows/bnnCols size the BNN workload's tile and batch.
const (
	bnnRows = 96
	bnnCols = 4
)

// TinyBNN compiles the hand-built network through the production
// application mapping, one input sample per batch column.
func TinyBNN(cfg *mtj.Config) Workload {
	return Workload{
		Name: "tiny-bnn",
		New: func() (*controller.Controller, error) {
			n := tinyBNNNetwork()
			mp, err := bnn.CompileMapping(n, bnnRows, bnnCols)
			if err != nil {
				return nil, err
			}
			m := array.NewMachine(cfg, 1, bnnRows, arithCols)
			for c := 0; c < bnnCols; c++ {
				for i, row := range mp.InputRows {
					m.Tiles[0].SetBit(row, c, (i+c)%2)
				}
			}
			return controller.New(controller.ProgramStore(mp.Prog), m), nil
		},
	}
}

// tinyFFTParams sizes the FFT workload: the smallest legal transform
// (2-point, Q2.2), compiled through the production FFT mapping. Still
// ~800 instructions — every butterfly is unrolled shift-and-add — so
// the sweep covers a long real program without dominating the suite.
func tinyFFTParams() fft.Params { return fft.Params{N: 2, Width: 4, Frac: 2} }

// fftRows/fftCols size the FFT workload's tile and batch.
const (
	fftRows = 64
	fftCols = 2
)

// TinyFFT compiles the 2-point transform through the production FFT
// mapping, one fixed complex signal per batch column.
func TinyFFT(cfg *mtj.Config) Workload {
	return Workload{
		Name: "tiny-fft",
		New: func() (*controller.Controller, error) {
			mp, err := fft.Compile(tinyFFTParams(), fftRows, fftCols)
			if err != nil {
				return nil, err
			}
			m := array.NewMachine(cfg, 1, fftRows, arithCols)
			for c := 0; c < fftCols; c++ {
				for i := range mp.InRe {
					loadRows(m, mp.InRe[i], c, uint64(2*i+c+1))
					loadRows(m, mp.InIm[i], c, uint64(3*i+c))
				}
			}
			return controller.New(controller.ProgramStore(mp.Prog), m), nil
		},
	}
}

// loadRows writes an LSB-first value into one column of the listed rows.
func loadRows(m *array.Machine, rows []int, col int, v uint64) {
	for i, row := range rows {
		m.Tiles[0].SetBit(row, col, int(v>>i)&1)
	}
}

// ArithStream is the trace-layer form of the multiplier workload: the
// same program priced analytically.
func ArithStream(cfg *mtj.Config) (StreamWorkload, error) {
	prog, _, _, err := compiledArith(cfg)
	if err != nil {
		return StreamWorkload{}, err
	}
	model := energy.NewModel(cfg)
	model.RowBits = arithCols
	return StreamWorkload{
		Name:  "arith",
		Model: model,
		New:   func() sim.OpStream { return sim.StreamFromProgram(prog, 1) },
	}, nil
}

// Workloads returns the built-in machine-layer workload registry keyed
// by CLI name.
func Workloads(cfg *mtj.Config) map[string]Workload {
	ws := map[string]Workload{}
	for _, w := range []Workload{Arith(cfg), TinySVM(cfg), TinyBNN(cfg), TinyFFT(cfg)} {
		ws[w.Name] = w
	}
	return ws
}

// WorkloadNames returns the registry's names, sorted.
func WorkloadNames(cfg *mtj.Config) []string {
	ws := Workloads(cfg)
	names := make([]string, 0, len(ws))
	for name := range ws {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LookupWorkload resolves a CLI workload name.
func LookupWorkload(cfg *mtj.Config, name string) (Workload, error) {
	if w, ok := Workloads(cfg)[name]; ok {
		return w, nil
	}
	return Workload{}, fmt.Errorf("fault: unknown workload %q (have %v)", name, WorkloadNames(cfg))
}
