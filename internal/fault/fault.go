// Package fault is MOUSE's crash-equivalence fault-injection engine.
//
// The paper's headline intermittency claim (Sections I and V) is that
// idempotent MTJ gates plus the dual-PC commit protocol give free
// checkpoints: a power loss at *any* point costs at most one re-executed
// instruction and never corrupts state. Property tests under harvested
// traces only exercise the outages that happen to occur; this package
// makes the claim adversarial. It systematically crashes a run at every
// instruction boundary and at swept intra-instruction µ-phase fractions,
// then differentially checks each crashed run against a continuous-power
// golden run: byte-identical final cells and memory buffer, identical
// committed-instruction counts, exactly one outage, and at most one
// replayed instruction per outage.
//
// Two layers are covered, mirroring package sim:
//
//   - The bit-accurate machine layer (Sweep): a real controller over an
//     array.Machine, outages injected at the exact µ-phase where the
//     energy ran out. State equivalence is checked cell by cell.
//   - The trace layer (SweepStream): an analytic OpStream run, where
//     equivalence means identical committed work and bounded dead energy.
//
// The adversarial supply is Injector: a power.Source pre-charged with
// exactly enough energy to die at the scheduled point, recovering the
// moment the outage fires. Enumeration parallelizes over injection
// points on the bench worker pool; results are index-ordered, so serial
// and parallel sweeps produce identical reports.
package fault

import (
	"fmt"

	"mouse/internal/array"
	"mouse/internal/controller"
	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/probe"
	"mouse/internal/sim"
)

// Workload is a bit-accurate machine workload: New builds a fresh
// controller (machine + program + preloaded inputs) for one run. Every
// injection point re-runs a fresh instance, so New must be deterministic
// and safe to call from concurrent sweep workers.
type Workload struct {
	Name string
	New  func() (*controller.Controller, error)
}

// ForceScalar returns a variant of the workload whose machine is pinned
// to the scalar resistor-network logic path, so sweeps cover both
// execution engines.
func (w Workload) ForceScalar() Workload {
	inner := w.New
	return Workload{
		Name: w.Name + " (scalar)",
		New: func() (*controller.Controller, error) {
			c, err := inner()
			if err != nil {
				return nil, err
			}
			c.Machine().ForceScalar = true
			return c, nil
		},
	}
}

// StreamWorkload is a trace-layer workload: an operation stream priced
// by a model. New returns a fresh stream per run.
type StreamWorkload struct {
	Name  string
	Model *energy.Model
	New   func() sim.OpStream
}

// Point is one scheduled injection: crash at the given µ-phase fraction
// of the instruction at Index (Frac 0 is the boundary just before it).
type Point struct {
	Index int
	Frac  float64
}

// Verdict is one injection point's differential outcome.
type Verdict struct {
	Index int     `json:"index"`
	Frac  float64 `json:"frac"`
	// WindowJ is the pre-charged energy window that realized the crash.
	WindowJ float64 `json:"window_j"`
	// Equivalent reports crash-equivalence with the golden run; Mismatch
	// holds the first divergence otherwise.
	Equivalent bool   `json:"equivalent"`
	Mismatch   string `json:"mismatch,omitempty"`
	// Replays and Restarts are the crashed run's counters: a passing
	// verdict has exactly one restart and at most one replay.
	Replays  uint64 `json:"replays"`
	Restarts uint64 `json:"restarts"`
	// DeadJ, RestoreJ, and OffSeconds are the energy/latency the outage
	// cost over the golden run.
	DeadJ      float64 `json:"dead_j"`
	RestoreJ   float64 `json:"restore_j"`
	OffSeconds float64 `json:"off_seconds"`
}

// Golden is the continuous-power reference a sweep injects against: the
// final machine state, the run accounting, and the per-instruction
// energy schedule that turns instruction indices into energy windows.
type Golden struct {
	Result sim.Result
	// Energies[i] is instruction i's compute+backup draw in joules; the
	// injector window for point (k, f) is sum(Energies[:k]) + f*Energies[k].
	Energies []float64

	prefix   []float64 // prefix[i] = sum(Energies[:i])
	maxE     float64   // costliest single instruction, joules
	snap     *snapshot
	recoverW float64
}

// Points returns the number of whole-instruction boundaries available
// for injection (one per executed instruction).
func (g *Golden) Points() int { return len(g.Energies) }

// windowFor maps an injection point to its energy window.
func (g *Golden) windowFor(p Point) float64 {
	return g.prefix[p.Index] + p.Frac*g.Energies[p.Index]
}

// energyRecorder captures the golden run's per-instruction energy
// schedule from the probe stream.
type energyRecorder struct {
	probe.Nop
	energies []float64
}

func (rec *energyRecorder) InstrRetired(ev probe.Instr) {
	rec.energies = append(rec.energies, ev.Energy+ev.Backup)
}

// recoverHeadroom scales the peak single-cycle demand into the
// injector's recovery power, so the recovered run completes without a
// second outage even for the restore phase.
const recoverHeadroom = 8

// RunGolden executes the workload once under continuous power and
// captures the reference for a sweep.
func RunGolden(w Workload) (*Golden, error) {
	c, err := w.New()
	if err != nil {
		return nil, fmt.Errorf("fault: building %s: %w", w.Name, err)
	}
	r := sim.NewMachineRunner(c)
	rec := &energyRecorder{}
	r.Obs = rec
	res, err := r.Run(nil)
	if err != nil {
		return nil, fmt.Errorf("fault: golden run of %s: %w", w.Name, err)
	}
	if len(rec.energies) == 0 {
		return nil, fmt.Errorf("fault: %s executed no instructions", w.Name)
	}
	g := &Golden{Result: res, Energies: rec.energies, snap: capture(c)}
	g.prefix = prefixSums(rec.energies)
	g.maxE = maxFloat(rec.energies)
	// Recovery must out-pay the hungriest cycle and the widest possible
	// restore (every column of every tile re-latched).
	dt := r.Model.CycleTime()
	peak := g.maxE
	if re := r.Model.Restore(isa.Cols * len(c.Machine().Tiles)); re > peak {
		peak = re
	}
	g.recoverW = recoverHeadroom * peak / dt
	return g, nil
}

func prefixSums(es []float64) []float64 {
	prefix := make([]float64, len(es))
	sum := 0.0
	for i, e := range es {
		prefix[i] = sum
		sum += e
	}
	return prefix
}

func maxFloat(es []float64) float64 {
	m := 0.0
	for _, e := range es {
		if e > m {
			m = e
		}
	}
	return m
}

// snapshot is the complete non-volatile outcome of a machine run: every
// cell of every tile (read out row by row), the memory buffer, and the
// final program counter.
type snapshot struct {
	tiles  [][][]byte
	buffer []byte
	pc     uint64
}

func capture(c *controller.Controller) *snapshot {
	s := captureMachine(c.Machine())
	s.pc = c.NV.PC()
	return s
}

// captureMachine snapshots the machine-only state (cells and buffer,
// no program counter) — the comparison unit for the batched engine,
// which replays flat programs without a controller.
func captureMachine(m *array.Machine) *snapshot {
	s := &snapshot{buffer: append([]byte(nil), m.Buffer...)}
	for _, t := range m.Tiles {
		rows := make([][]byte, t.Rows())
		for r := range rows {
			rows[r] = make([]byte, (t.Cols()+7)/8)
			if err := t.ReadRow(r, rows[r]); err != nil {
				// Rows()/Cols() bound the loop; a read can only fail on a
				// bad row index, which cannot happen here.
				panic(err)
			}
		}
		s.tiles = append(s.tiles, rows)
	}
	return s
}

// diff reports the first divergence between two snapshots, or "".
func (s *snapshot) diff(o *snapshot) string {
	if d := s.diffState(o); d != "" {
		return d
	}
	if s.pc != o.pc {
		return fmt.Sprintf("final PC %d vs %d", s.pc, o.pc)
	}
	return ""
}

// diffState compares the machine-only state (cells and buffer),
// skipping the program counter — the batched replay has none.
func (s *snapshot) diffState(o *snapshot) string {
	if len(s.tiles) != len(o.tiles) {
		return fmt.Sprintf("tile count %d vs %d", len(s.tiles), len(o.tiles))
	}
	for ti := range s.tiles {
		if len(s.tiles[ti]) != len(o.tiles[ti]) {
			return fmt.Sprintf("tile %d row count %d vs %d", ti, len(s.tiles[ti]), len(o.tiles[ti]))
		}
		for r := range s.tiles[ti] {
			if string(s.tiles[ti][r]) != string(o.tiles[ti][r]) {
				return fmt.Sprintf("tile %d row %d cells diverge", ti, r)
			}
		}
	}
	if string(s.buffer) != string(o.buffer) {
		return "memory buffer diverges"
	}
	return ""
}

// verdictFor fills the protocol-level fields every layer shares and
// checks the at-most-one-re-execution contract: exactly one outage,
// at most one replay, committed work identical to golden, dead energy
// bounded by one partial attempt plus one re-execution of the costliest
// instruction (the scheduled window can land an ulp before its target
// boundary, so the bound is program-wide rather than per-index).
func verdictFor(p Point, windowJ float64, res sim.Result, runErr error, g *Golden) Verdict {
	v := Verdict{
		Index: p.Index, Frac: p.Frac, WindowJ: windowJ,
		Replays: res.Replays, Restarts: res.Restarts,
		DeadJ: res.DeadEnergy, RestoreJ: res.RestoreEnergy, OffSeconds: res.OffLatency,
	}
	switch {
	case runErr != nil:
		v.Mismatch = fmt.Sprintf("run failed: %v", runErr)
	case !res.Completed:
		v.Mismatch = "run did not complete"
	case res.Restarts != 1:
		v.Mismatch = fmt.Sprintf("expected exactly one outage, saw %d", res.Restarts)
	case res.Replays > 1:
		v.Mismatch = fmt.Sprintf("%d replays for one outage (claim: at most one)", res.Replays)
	case res.Instructions != g.Result.Instructions:
		// The dual-PC protocol rolls the interrupted instruction back, so
		// the crashed run commits each program position exactly once (the
		// replayed commit is one of them, flagged Replay): the commit
		// count must equal the golden run's.
		v.Mismatch = fmt.Sprintf("committed %d instructions, golden %d", res.Instructions, g.Result.Instructions)
	case res.DeadEnergy > 2*g.maxE*(1+1e-9):
		v.Mismatch = fmt.Sprintf("dead energy %.3g J exceeds one re-execution bound %.3g J", res.DeadEnergy, 2*g.maxE)
	}
	v.Equivalent = v.Mismatch == ""
	return v
}
