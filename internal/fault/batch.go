package fault

import (
	"fmt"

	"mouse/internal/array"
	"mouse/internal/controller"
	"mouse/internal/mtj"
	"mouse/internal/sim"
	"mouse/internal/svm"
)

// Batched-inference coverage: the bit-sliced engine only runs on
// continuous power (interrupted pulses fall back to the scalar path per
// lane), so its intermittency story decomposes into two obligations
// this file sweeps together:
//
//  1. The batched fast path must be state- and accounting-identical to
//     each lane's golden continuous run — otherwise a deployment that
//     batches when energy is plentiful and falls back when it is not
//     would compute different answers depending on the weather.
//  2. Each lane's scalar fallback — the path a harvested deployment
//     actually executes — must be crash-equivalent at every injection
//     point with at most one replay, exactly like every other workload.

// BatchWorkload is a batched bit-accurate workload: one shared program
// replayed across lanes with per-lane inputs.
type BatchWorkload struct {
	Name string
	Cfg  *mtj.Config
	// Lanes is the batch width under test (1–64).
	Lanes int
	// Sim carries the program, geometry, and per-lane loader; it is the
	// same value a sim.RunnerBatch consumes.
	Sim sim.BatchWorkload
}

// Lane builds the scalar per-lane workload: a fresh controller over a
// fresh machine seeded with that lane's inputs — exactly what the
// batched engine's fallback runs for the lane under an outage.
func (w BatchWorkload) Lane(lane int) Workload {
	return Workload{
		Name: fmt.Sprintf("%s[lane %d]", w.Name, lane),
		New: func() (*controller.Controller, error) {
			m := array.NewMachine(w.Cfg, w.Sim.Tiles, w.Sim.Rows, w.Sim.Cols)
			err := w.Sim.Load(lane, func(tile, row, col, bit int) {
				m.Tiles[tile].SetBit(row, col, bit)
			})
			if err != nil {
				return nil, err
			}
			return controller.New(controller.ProgramStore(w.Sim.Prog), m), nil
		},
	}
}

// BatchReport aggregates a batched sweep: the batch-vs-golden
// differential outcome plus one full crash-sweep report per lane.
type BatchReport struct {
	Workload string `json:"workload"`
	Lanes    int    `json:"lanes"`
	// BatchMismatches holds per-lane divergences between the batched
	// fast path and that lane's golden continuous run (state or
	// accounting); empty on a correct engine.
	BatchMismatches []string `json:"batch_mismatches,omitempty"`
	// LaneReports[k] is lane k's exhaustive crash sweep over the scalar
	// fallback path.
	LaneReports []*Report `json:"lane_reports"`
}

// AllEquivalent reports whether the batched path matched every lane's
// golden run and every lane's crash sweep was fully equivalent.
func (r *BatchReport) AllEquivalent() bool {
	if len(r.BatchMismatches) > 0 {
		return false
	}
	for _, lr := range r.LaneReports {
		if !lr.AllEquivalent() {
			return false
		}
	}
	return true
}

// MaxReplays is the worst per-outage replay count across all lanes.
func (r *BatchReport) MaxReplays() uint64 {
	var max uint64
	for _, lr := range r.LaneReports {
		if lr.MaxReplays > max {
			max = lr.MaxReplays
		}
	}
	return max
}

// Normalize zeroes run-environment fields in every lane report.
func (r *BatchReport) Normalize() {
	for _, lr := range r.LaneReports {
		lr.Normalize()
	}
}

// SweepBatch runs the two-obligation batched sweep: golden runs per
// lane, one batched fast-path replay checked lane-by-lane against them,
// then an exhaustive per-lane crash sweep of the scalar fallback.
func SweepBatch(w BatchWorkload, opts Options) (*BatchReport, error) {
	if w.Lanes < 1 || w.Lanes > array.MaxLanes {
		return nil, fmt.Errorf("fault: batch lanes %d outside [1, %d]", w.Lanes, array.MaxLanes)
	}
	rep := &BatchReport{Workload: w.Name, Lanes: w.Lanes}

	goldens := make([]*Golden, w.Lanes)
	for lane := range goldens {
		g, err := RunGolden(w.Lane(lane))
		if err != nil {
			return nil, err
		}
		goldens[lane] = g
	}

	rb, err := sim.NewRunnerBatch(w.Cfg, w.Sim)
	if err != nil {
		return nil, err
	}
	snaps := make([]*snapshot, w.Lanes)
	results, err := rb.Run(w.Lanes, &sim.BatchRun{
		Visit: func(lane int, m *array.Machine) error {
			snaps[lane] = captureMachine(m)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	for lane, g := range goldens {
		if d := g.snap.diffState(snaps[lane]); d != "" {
			rep.BatchMismatches = append(rep.BatchMismatches,
				fmt.Sprintf("lane %d: batched state diverges from golden: %s", lane, d))
		}
		if results[lane] != g.Result {
			rep.BatchMismatches = append(rep.BatchMismatches,
				fmt.Sprintf("lane %d: batched accounting %+v, golden %+v", lane, results[lane], g.Result))
		}
	}

	for lane := 0; lane < w.Lanes; lane++ {
		lr, err := Sweep(w.Lane(lane), opts)
		if err != nil {
			return nil, err
		}
		rep.LaneReports = append(rep.LaneReports, lr)
	}
	return rep, nil
}

// TinySVMBatch maps the hand-built two-class SVM onto the batched
// engine with per-lane distinct binarized inputs (lane k feeds the
// 2-bit input k), compiled once and shared by the batched replay and
// every per-lane fallback controller.
func TinySVMBatch(cfg *mtj.Config) (BatchWorkload, error) {
	im := tinySVMModel()
	mp, err := svm.CompileMapping(im, svmRows, 1)
	if err != nil {
		return BatchWorkload{}, err
	}
	const lanes = 4
	return BatchWorkload{
		Name:  "tiny-svm-batch",
		Cfg:   cfg,
		Lanes: lanes,
		Sim: sim.BatchWorkload{
			Prog:  mp.Prog,
			Tiles: 1, Rows: svmRows, Cols: arithCols,
			Load: func(lane int, set func(tile, row, col, bit int)) error {
				input := []int{lane & 1, lane >> 1 & 1}
				for c := 0; c < mp.Columns; c++ {
					for j, rows := range mp.InputRows {
						for i, row := range rows {
							set(0, row, c, input[j]>>i&1)
						}
					}
				}
				return nil
			},
		},
	}, nil
}
