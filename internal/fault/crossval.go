package fault

import (
	"errors"
	"fmt"

	"mouse/internal/bnn"
	"mouse/internal/energy"
	"mouse/internal/fft"
	"mouse/internal/isa"
	"mouse/internal/lint"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/sim"
	"mouse/internal/svm"
)

// Cross-validation closes the loop between mousevet's static analysis
// and this package's dynamic evidence: the abstract interpreter claims
// a program is replay-safe and energy-feasible, the sweep and the
// intermittent simulator try to refute the claim on the very same
// instruction stream under the very same capacitor. A disagreement in
// either direction is a bug in one of the two engines, so CI runs the
// comparison over every built-in workload (the differential gate of
// the mousevet v2 issue).

// Subject pairs a machine workload's dynamic form (a fresh controller
// per injected run) with the static-analysis view of the same program:
// the instruction stream and the geometry it deploys onto.
type Subject struct {
	Workload Workload
	Prog     isa.Program

	// Tiles/Rows/Cols is the deployed geometry, matching the machine the
	// workload builds.
	Tiles, Rows, Cols int
}

// Subjects returns every built-in machine workload in cross-validation
// form, compiled under cfg. The programs are the exact streams the
// workloads execute — same compiles, same parameters.
func Subjects(cfg *mtj.Config) ([]Subject, error) {
	var subjects []Subject

	prog, _, _, err := compiledArith(cfg)
	if err != nil {
		return nil, fmt.Errorf("fault: compiling arith: %w", err)
	}
	subjects = append(subjects, Subject{
		Workload: Arith(cfg), Prog: prog,
		Tiles: 1, Rows: arithRows, Cols: arithCols,
	})

	smp, err := svm.CompileMapping(tinySVMModel(), svmRows, 1)
	if err != nil {
		return nil, fmt.Errorf("fault: compiling tiny-svm: %w", err)
	}
	subjects = append(subjects, Subject{
		Workload: TinySVM(cfg), Prog: smp.Prog,
		Tiles: 1, Rows: svmRows, Cols: arithCols,
	})

	bmp, err := bnn.CompileMapping(tinyBNNNetwork(), bnnRows, bnnCols)
	if err != nil {
		return nil, fmt.Errorf("fault: compiling tiny-bnn: %w", err)
	}
	subjects = append(subjects, Subject{
		Workload: TinyBNN(cfg), Prog: bmp.Prog,
		Tiles: 1, Rows: bnnRows, Cols: arithCols,
	})

	fmp, err := fft.Compile(tinyFFTParams(), fftRows, fftCols)
	if err != nil {
		return nil, fmt.Errorf("fault: compiling tiny-fft: %w", err)
	}
	subjects = append(subjects, Subject{
		Workload: TinyFFT(cfg), Prog: fmp.Prog,
		Tiles: 1, Rows: fftRows, Cols: arithCols,
	})

	return subjects, nil
}

// CrossResult holds one subject's verdicts from both sides of the
// differential: the static analysis (lint report, WCE certificate,
// termination check) and the dynamic evidence (crash sweep, simulated
// run on the capacitor).
type CrossResult struct {
	Name string

	// Static side: the full lint report under the machine's geometry and
	// capacitor at checkpoint interval 1 (the hardware checkpoints after
	// every instruction), the per-region worst-case-energy certificate,
	// and the per-instruction termination check.
	Static lint.Report
	Cert   *lint.Certificate
	Term   sim.TerminationReport

	// Dynamic side: the exhaustive crash sweep and one intermittent
	// trace-layer run on a harvester buffered by the same capacitor.
	Sweep        *Report
	SimCompleted bool
	SimErr       error

	// SegmentMismatch is non-empty when the analytic segment engine and
	// the stepping engine disagree on the intermittent run — a third
	// differential axis alongside static-vs-dynamic: the two simulator
	// paths must be bit-identical on the same stream and capacitor.
	SegmentMismatch string
}

// chargeWatts supplies the cross-validation harvester: strong enough
// to recharge the buffer in simulated minutes, yet three orders of
// magnitude below one instruction's draw per cycle, so completion is
// decided by the capacitor window alone — exactly the quantity the
// static WCE model reasons about. (A generous source would pay for
// ops out of incoming power and mask an undersized buffer.)
const chargeWatts = 1e-7

// CrossValidate runs both engines over one subject under cfg and
// returns the paired verdicts. Sweep options bound the dynamic side's
// injection schedule; the static side is always exhaustive.
func CrossValidate(s Subject, cfg *mtj.Config, opts Options) (*CrossResult, error) {
	lopts := lint.Options{
		Geometry:           lint.Geometry{Tiles: s.Tiles, Rows: s.Rows, Cols: s.Cols},
		Config:             cfg,
		CheckpointInterval: 1,
	}
	r := &CrossResult{Name: s.Workload.Name, Static: lint.Lint(s.Prog, lopts)}

	cert, err := lint.Certify(s.Prog, lopts)
	if err != nil {
		return nil, fmt.Errorf("fault: certifying %s: %w", s.Workload.Name, err)
	}
	r.Cert = cert

	model := energy.NewModel(cfg)
	model.RowBits = s.Cols
	r.Term = sim.CheckTermination(sim.StreamFromProgram(s.Prog, s.Tiles), model)

	// The intermittent run: same program, same capacitor, a steady
	// source. Completion here is the dynamic analogue of the WCE
	// certificate's feasibility verdict. The constant source makes the
	// stream eligible for the analytic segment engine, so this run also
	// exercises the fast path...
	h := power.NewHarvester(power.Constant{W: chargeWatts}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
	runner := &sim.Runner{Model: model, MaxChargeWait: 24 * 3600}
	res, runErr := runner.Run(sim.StreamFromProgram(s.Prog, s.Tiles), h)
	r.SimCompleted = runErr == nil && res.Completed
	r.SimErr = runErr

	// ...and the stepping engine must agree with it bit for bit on the
	// very same stream (the simulator-internal differential).
	hStep := power.NewHarvester(power.Constant{W: chargeWatts}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
	stepper := &sim.Runner{Model: model, MaxChargeWait: 24 * 3600, ForceStepping: true}
	stepRes, stepErr := stepper.Run(sim.StreamFromProgram(s.Prog, s.Tiles), hStep)
	switch {
	case (runErr == nil) != (stepErr == nil),
		runErr != nil && stepErr != nil && runErr.Error() != stepErr.Error():
		r.SegmentMismatch = fmt.Sprintf("segment err %v vs stepping err %v", runErr, stepErr)
	case res != stepRes:
		r.SegmentMismatch = fmt.Sprintf("segment %+v vs stepping %+v", res, stepRes)
	}

	swp, err := Sweep(s.Workload, opts)
	if err != nil {
		return nil, fmt.Errorf("fault: sweeping %s: %w", s.Workload.Name, err)
	}
	r.Sweep = swp
	return r, nil
}

// Disagreement returns "" when the static and dynamic verdicts are
// consistent, and a description of the first inconsistency otherwise.
// The contract is soundness in both directions where the static
// analysis claims precision, and one-sided where it is conservative:
//
//   - a lint-clean program must be crash-equivalent at every injection
//     point (static safety proof vs dynamic refutation);
//   - a sweep failure must be matched by a static error (dynamic
//     counterexample vs static proof);
//   - a feasible WCE certificate must complete on the capacitor, and a
//     failed termination check must refute the certificate (the
//     certificate may be infeasible while the run still completes —
//     restore overhead makes it conservative — but never the reverse).
func (r *CrossResult) Disagreement() string {
	staticSafe := !r.Static.HasErrors()
	dynamicSafe := r.Sweep.AllEquivalent()
	switch {
	case staticSafe && !dynamicSafe:
		f := r.Sweep.Failures()[0]
		return fmt.Sprintf("%s: mousevet proves the program safe but injection at instr %d frac %.2f broke equivalence: %s",
			r.Name, f.Index, f.Frac, f.Mismatch)
	case !staticSafe && dynamicSafe:
		return fmt.Sprintf("%s: mousevet reports errors (%v) but the exhaustive sweep is fully crash-equivalent",
			r.Name, r.Static.Err())
	}
	if r.Cert.Feasible && !r.SimCompleted {
		return fmt.Sprintf("%s: WCE certificate proves every region fits the %.3g J window, but the simulated run did not complete: %v",
			r.Name, r.Cert.WindowJ, r.SimErr)
	}
	if !r.Term.OK && r.Cert.Feasible {
		return fmt.Sprintf("%s: termination check finds op %d needs %.3g J > window %.3g J, but the certificate claims feasibility",
			r.Name, r.Term.MaxOpIndex, r.Term.MaxOpJ, r.Term.WindowJ)
	}
	if r.SegmentMismatch != "" {
		return fmt.Sprintf("%s: segment engine disagrees with stepping engine: %s", r.Name, r.SegmentMismatch)
	}
	return ""
}

// CheckAgreement cross-validates every built-in workload under cfg and
// returns an error describing the first static/dynamic disagreement.
// This is the function the CI differential gate calls (through its
// test wrapper): a refuted certificate or an unproven hazard fails the
// build.
func CheckAgreement(cfg *mtj.Config, opts Options) error {
	subjects, err := Subjects(cfg)
	if err != nil {
		return err
	}
	var failures []string
	for _, s := range subjects {
		r, err := CrossValidate(s, cfg, opts)
		if err != nil {
			return err
		}
		if d := r.Disagreement(); d != "" {
			failures = append(failures, d)
		}
	}
	if len(failures) > 0 {
		return errors.New("fault: static/dynamic disagreement: " + failures[0])
	}
	return nil
}
