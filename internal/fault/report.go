package fault

import (
	"encoding/json"
	"fmt"
	"io"

	"mouse/internal/bench"
)

// Schema identifies the mousefault JSON report layout. Bump it when the
// report structure changes incompatibly; tooling keys off this string.
const Schema = "mouse-fault/v1"

// Layer names the simulation layer a sweep exercised.
const (
	LayerMachine = "machine"
	LayerTrace   = "trace"
)

// Report is the machine-readable result of one fault-injection sweep:
// every injection point's verdict plus the sweep's aggregate outcome.
type Report struct {
	Schema   string `json:"schema"`
	Tool     string `json:"tool"`
	Workload string `json:"workload"`
	// Layer is "machine" (bit-accurate, cell-state equivalence) or
	// "trace" (analytic stream, protocol equivalence).
	Layer string `json:"layer"`
	// Instructions is the golden run's committed-instruction count.
	Instructions uint64 `json:"instructions"`
	// Points, Equivalent, and MaxReplays aggregate the verdicts.
	Points     int    `json:"points"`
	Equivalent int    `json:"equivalent"`
	MaxReplays uint64 `json:"max_replays"`
	// Parallelism is the resolved sweep worker bound; WallSeconds the
	// host wall-clock cost. Both are zeroed by Normalize.
	Parallelism int     `json:"parallelism"`
	WallSeconds float64 `json:"wall_seconds"`

	Verdicts []Verdict `json:"verdicts"`
}

// buildReport aggregates a sweep's verdicts.
func buildReport(workload, layer string, instructions uint64, verdicts []Verdict, opts Options) *Report {
	workers := opts.Workers
	if workers <= 0 {
		workers = bench.DefaultWorkers()
	}
	rep := &Report{
		Schema:       Schema,
		Tool:         "mousefault",
		Workload:     workload,
		Layer:        layer,
		Instructions: instructions,
		Points:       len(verdicts),
		Verdicts:     verdicts,
		Parallelism:  workers,
	}
	for _, v := range verdicts {
		if v.Equivalent {
			rep.Equivalent++
		}
		if v.Replays > rep.MaxReplays {
			rep.MaxReplays = v.Replays
		}
	}
	return rep
}

// AllEquivalent reports whether every injection point was
// crash-equivalent to the golden run.
func (r *Report) AllEquivalent() bool { return r.Equivalent == r.Points }

// Failures returns the non-equivalent verdicts.
func (r *Report) Failures() []Verdict {
	var out []Verdict
	for _, v := range r.Verdicts {
		if !v.Equivalent {
			out = append(out, v)
		}
	}
	return out
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Normalize zeroes the run-environment fields — the worker count and
// wall-clock time — leaving only simulation output, so reports from
// different machines or parallelism settings compare deep-equal exactly
// when the sweep itself is deterministic.
func (r *Report) Normalize() {
	r.Parallelism = 0
	r.WallSeconds = 0
}

// Summary renders a one-paragraph human-readable outcome.
func (r *Report) Summary(w io.Writer) {
	fmt.Fprintf(w, "%s [%s]: %d/%d injection points crash-equivalent, max replays %d\n",
		r.Workload, r.Layer, r.Equivalent, r.Points, r.MaxReplays)
	for i, v := range r.Failures() {
		if i == 8 {
			fmt.Fprintf(w, "  ... and %d more failures\n", len(r.Failures())-i)
			break
		}
		fmt.Fprintf(w, "  FAIL at instr %d frac %.2f: %s\n", v.Index, v.Frac, v.Mismatch)
	}
}
