package fault

import (
	"fmt"
	"math/rand"
	"time"

	"mouse/internal/bench"
	"mouse/internal/isa"
	"mouse/internal/probe"
	"mouse/internal/sim"
)

// Options configures a sweep's injection-point enumeration.
type Options struct {
	// Fracs are the intra-instruction µ-phase fractions swept at every
	// selected boundary. Empty selects DefaultFracs.
	Fracs []float64

	// Stride samples every Stride-th instruction boundary (for bounded
	// smoke sweeps over long programs). <= 1 is exhaustive.
	Stride int

	// Random > 0 replaces the systematic grid with a seeded randomized
	// campaign of that many uniformly drawn (index, fraction) points.
	Random int
	Seed   int64

	// Workers bounds the sweep pool; <= 0 selects one worker per CPU,
	// 1 runs serially. Reports are identical at any parallelism.
	Workers int

	// Obs optionally receives every injected run's event stream plus one
	// probe fault event per injection. It is shared across concurrent
	// workers, so it must be concurrency-safe (like probe.Stats).
	Obs probe.Observer
}

// DefaultFracs covers every µ-phase band of the controller cycle: the
// exact boundary, fetch, early/mid/late execute, the ACT register write,
// the PC write, and the PC parity commit (see sim's phaseFor).
func DefaultFracs() []float64 {
	return []float64{0, 0.02, 0.30, 0.60, 0.84, 0.87, 0.92, 0.97}
}

// enumerate builds the injection schedule over n instruction boundaries.
func enumerate(n int, opts Options) []Point {
	if opts.Random > 0 {
		rng := rand.New(rand.NewSource(opts.Seed))
		pts := make([]Point, opts.Random)
		for i := range pts {
			pts[i] = Point{Index: rng.Intn(n), Frac: rng.Float64()}
		}
		return pts
	}
	fracs := opts.Fracs
	if len(fracs) == 0 {
		fracs = DefaultFracs()
	}
	stride := opts.Stride
	if stride < 1 {
		stride = 1
	}
	pts := make([]Point, 0, (n/stride+1)*len(fracs))
	for k := 0; k < n; k += stride {
		for _, f := range fracs {
			pts = append(pts, Point{Index: k, Frac: f})
		}
	}
	return pts
}

// checkPoint validates a schedule entry against the golden run.
func checkPoint(p Point, g *Golden) error {
	if p.Index < 0 || p.Index >= len(g.Energies) {
		return fmt.Errorf("fault: injection index %d outside program [0, %d)", p.Index, len(g.Energies))
	}
	if p.Frac < 0 || p.Frac >= 1 {
		return fmt.Errorf("fault: injection fraction %g outside [0, 1)", p.Frac)
	}
	return nil
}

// Inject runs one scheduled crash of the machine workload against the
// golden reference and returns its verdict. It is the unit the sweep
// parallelizes — and the entry point for the fuzz harness, which feeds
// it arbitrary points.
func Inject(w Workload, g *Golden, p Point, obs probe.Observer) (Verdict, error) {
	if err := checkPoint(p, g); err != nil {
		return Verdict{}, err
	}
	c, err := w.New()
	if err != nil {
		return Verdict{}, fmt.Errorf("fault: building %s: %w", w.Name, err)
	}
	windowJ := g.windowFor(p)
	inj := NewInjector(windowJ, g.recoverW)
	r := sim.NewMachineRunner(c)
	r.Obs = inj
	if probe.Enabled(obs) {
		r.Obs = probe.Multi{inj, obs}
		probe.EmitFault(obs, probe.Fault{Index: p.Index, Frac: p.Frac, WindowJ: windowJ})
	}
	res, runErr := r.Run(inj.Harvester())
	v := verdictFor(p, windowJ, res, runErr, g)
	if v.Mismatch == "" {
		if d := g.snap.diff(capture(c)); d != "" {
			v.Mismatch = d
			v.Equivalent = false
		}
	}
	return v, nil
}

// Sweep crashes the machine workload at every scheduled injection point
// and differentially checks each crashed run against one golden run.
func Sweep(w Workload, opts Options) (*Report, error) {
	g, err := RunGolden(w)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	pts := enumerate(len(g.Energies), opts)
	verdicts, err := bench.Jobs(opts.Workers, len(pts), func(i int) (Verdict, error) {
		return Inject(w, g, pts[i], opts.Obs)
	})
	if err != nil {
		return nil, err
	}
	rep := buildReport(w.Name, LayerMachine, g.Result.Instructions, verdicts, opts)
	rep.WallSeconds = time.Since(start).Seconds()
	return rep, nil
}

// InjectStream is Inject for the trace layer: the run is an analytic
// OpStream, so equivalence is the protocol contract (one outage, at
// most one replay, identical committed work, bounded dead energy)
// rather than cell-state comparison.
func InjectStream(w StreamWorkload, g *Golden, p Point, obs probe.Observer) (Verdict, error) {
	if err := checkPoint(p, g); err != nil {
		return Verdict{}, err
	}
	windowJ := g.windowFor(p)
	inj := NewInjector(windowJ, g.recoverW)
	r := &sim.Runner{Model: w.Model, MaxChargeWait: 24 * 3600}
	r.Obs = inj
	if probe.Enabled(obs) {
		r.Obs = probe.Multi{inj, obs}
		probe.EmitFault(obs, probe.Fault{Index: p.Index, Frac: p.Frac, WindowJ: windowJ})
	}
	res, runErr := r.Run(w.New(), inj.Harvester())
	return verdictFor(p, windowJ, res, runErr, g), nil
}

// GoldenStream prices the stream instruction by instruction and runs the
// continuous-power reference.
func GoldenStream(w StreamWorkload) (*Golden, error) {
	s := w.New()
	s.Reset()
	var energies []float64
	maxAct := 0
	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		energies = append(energies, w.Model.Energy(op)+w.Model.Backup(op))
		if op.Kind == isa.KindAct && op.ActCols > maxAct {
			maxAct = op.ActCols
		}
	}
	if len(energies) == 0 {
		return nil, fmt.Errorf("fault: %s has an empty stream", w.Name)
	}
	r := &sim.Runner{Model: w.Model, MaxChargeWait: 24 * 3600}
	res := r.RunContinuous(w.New())
	g := &Golden{Result: res, Energies: energies}
	g.prefix = prefixSums(energies)
	g.maxE = maxFloat(energies)
	peak := g.maxE
	if re := w.Model.Restore(maxAct); re > peak {
		peak = re
	}
	g.recoverW = recoverHeadroom * peak / w.Model.CycleTime()
	return g, nil
}

// SweepStream crashes the trace-layer workload at every scheduled
// injection point.
func SweepStream(w StreamWorkload, opts Options) (*Report, error) {
	g, err := GoldenStream(w)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	pts := enumerate(len(g.Energies), opts)
	verdicts, err := bench.Jobs(opts.Workers, len(pts), func(i int) (Verdict, error) {
		return InjectStream(w, g, pts[i], opts.Obs)
	})
	if err != nil {
		return nil, err
	}
	rep := buildReport(w.Name, LayerTrace, g.Result.Instructions, verdicts, opts)
	rep.WallSeconds = time.Since(start).Seconds()
	return rep, nil
}
