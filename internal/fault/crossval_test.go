package fault

import (
	"errors"
	"testing"

	"mouse/internal/energy"
	"mouse/internal/lint"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/sim"
)

// TestStaticDynamicAgreement is the differential gate of the mousevet
// v2 issue: for every built-in workload (arith, tiny-svm, tiny-bnn,
// tiny-fft), the static verdict — replay-safe per the region-aware
// abstract interpreter, energy-feasible per the WCE certificate — must
// agree with the exhaustive crash sweep and with intermittent
// simulation under the same capacitor. CI runs exactly this test as
// its gate step.
func TestStaticDynamicAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive differential sweep")
	}
	cfg := mtj.ModernSTT()
	subjects, err := Subjects(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(subjects) != len(Workloads(cfg)) {
		t.Fatalf("cross-validating %d subjects but %d workloads are registered", len(subjects), len(Workloads(cfg)))
	}
	// Every instruction boundary; the fraction triple covers the fetch,
	// execute, and commit µ-phase bands (the full grid runs in
	// TestArithExhaustive).
	opts := Options{Fracs: []float64{0, 0.5, 0.97}}
	for _, s := range subjects {
		t.Run(s.Workload.Name, func(t *testing.T) {
			t.Parallel()
			r, err := CrossValidate(s, cfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			if d := r.Disagreement(); d != "" {
				t.Fatal(d)
			}
			// These workloads are built to be certified safe, so agreement
			// must be realized as safe/safe — not as a vacuous unsafe pair.
			if r.Static.HasErrors() {
				t.Errorf("static analysis rejects the workload: %v", r.Static.Err())
			}
			if !r.Cert.Feasible {
				t.Errorf("WCE certificate refutes feasibility: worst region %d", r.Cert.WorstRegion)
			}
			if !r.SimCompleted {
				t.Errorf("intermittent run did not complete: %v", r.SimErr)
			}
			if !r.Sweep.AllEquivalent() {
				t.Errorf("%d/%d injection points not crash-equivalent", r.Sweep.Points-r.Sweep.Equivalent, r.Sweep.Points)
			}
		})
	}
}

// The negative direction of the capacitor agreement: on a vanishingly
// small buffer the certificate must refute feasibility, and the
// intermittent simulator must refuse the same program with
// ErrNonTermination — static and dynamic agreeing that the program
// livelocks.
func TestInfeasibleCapacitorAgreement(t *testing.T) {
	tiny := *mtj.ModernSTT()
	tiny.CapC = 1e-12
	prog, _, _, err := compiledArith(mtj.ModernSTT())
	if err != nil {
		t.Fatal(err)
	}
	lopts := lint.Options{
		Geometry:           lint.Geometry{Tiles: 1, Rows: arithRows, Cols: arithCols},
		Config:             &tiny,
		CheckpointInterval: 1,
	}
	cert, err := lint.Certify(prog, lopts)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Feasible {
		t.Fatalf("1 pF buffer certified feasible: window %.3g J", cert.WindowJ)
	}
	if !lint.Lint(prog, lopts).HasErrors() {
		t.Error("wce rule produced no error for the infeasible buffer")
	}

	model := energy.NewModel(&tiny)
	model.RowBits = arithCols
	h := power.NewHarvester(power.Constant{W: chargeWatts}, tiny.CapC, tiny.CapVMin, tiny.CapVMax)
	r := &sim.Runner{Model: model, MaxChargeWait: 24 * 3600}
	if _, err := r.Run(sim.StreamFromProgram(prog, 1), h); !errors.Is(err, sim.ErrNonTermination) {
		t.Fatalf("simulator verdict disagrees with the certificate: err=%v", err)
	}
}
