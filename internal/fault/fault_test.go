package fault

import (
	"reflect"
	"testing"

	"mouse/internal/mtj"
	"mouse/internal/probe"
)

// requireClean fails the test with the first few mismatches when any
// injection point broke crash-equivalence.
func requireClean(t *testing.T, rep *Report) {
	t.Helper()
	if rep.MaxReplays > 1 {
		t.Errorf("max replays %d, claim allows at most 1", rep.MaxReplays)
	}
	if rep.AllEquivalent() {
		return
	}
	for i, v := range rep.Failures() {
		if i == 5 {
			break
		}
		t.Errorf("instr %d frac %.2f: %s", v.Index, v.Frac, v.Mismatch)
	}
	t.Fatalf("%d/%d injection points not crash-equivalent", rep.Points-rep.Equivalent, rep.Points)
}

// TestArithExhaustive is the acceptance sweep: the ≥200-instruction
// multiplier workload, every instruction boundary, every µ-phase
// fraction, 100% crash-equivalent with at most one replay each.
func TestArithExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	w := Arith(mtj.ModernSTT())
	g, err := RunGolden(w)
	if err != nil {
		t.Fatal(err)
	}
	if g.Points() < 200 {
		t.Fatalf("arith runs %d instructions, want >= 200", g.Points())
	}
	rep, err := Sweep(w, Options{Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points != g.Points()*len(DefaultFracs()) {
		t.Fatalf("swept %d points, want %d", rep.Points, g.Points()*len(DefaultFracs()))
	}
	requireClean(t, rep)
}

// crashAtEveryK sweeps every instruction boundary of the workload in
// both execution engines.
func crashAtEveryK(t *testing.T, w Workload) {
	t.Helper()
	for _, variant := range []Workload{w, w.ForceScalar()} {
		// Every instruction boundary, with fractions covering the fetch,
		// execute, and commit bands (the full µ-phase grid runs in
		// TestArithExhaustive; repeating it per engine here doubles the
		// suite's cost for no added protocol coverage).
		rep, err := Sweep(variant, Options{Workers: 0, Fracs: []float64{0, 0.5, 0.97}})
		if err != nil {
			t.Fatalf("%s: %v", variant.Name, err)
		}
		requireClean(t, rep)
	}
}

func TestCrashAtEveryKSVM(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	crashAtEveryK(t, TinySVM(mtj.ModernSTT()))
}

func TestCrashAtEveryKBNN(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	crashAtEveryK(t, TinyBNN(mtj.ModernSTT()))
}

// TestStreamSweep covers the trace layer: every boundary of the
// analytically priced multiplier stream.
func TestStreamSweep(t *testing.T) {
	w, err := ArithStream(mtj.ModernSTT())
	if err != nil {
		t.Fatal(err)
	}
	g, err := GoldenStream(w)
	if err != nil {
		t.Fatal(err)
	}
	if g.Points() < 200 {
		t.Fatalf("arith stream has %d instructions, want >= 200", g.Points())
	}
	rep, err := SweepStream(w, Options{Workers: 0, Fracs: []float64{0, 0.5, 0.97}})
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, rep)
}

// TestSerialParallelDeterminism: the same sweep at workers=1 and
// workers=8 must produce identical normalized reports.
func TestSerialParallelDeterminism(t *testing.T) {
	w := TinySVM(mtj.ModernSTT())
	opts := Options{Stride: 7, Fracs: []float64{0, 0.4, 0.9}}

	opts.Workers = 1
	serial, err := Sweep(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	parallel, err := Sweep(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	serial.Normalize()
	parallel.Normalize()
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("serial and parallel sweeps diverge:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}

// TestRandomCampaign: the seeded randomized mode is deterministic for a
// seed and still finds only crash-equivalent points.
func TestRandomCampaign(t *testing.T) {
	w := TinyBNN(mtj.ModernSTT())
	opts := Options{Workers: 0, Random: 48, Seed: 42}
	a, err := Sweep(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, a)
	b, err := Sweep(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	a.Normalize()
	b.Normalize()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different campaigns")
	}
	if a.Points != 48 {
		t.Fatalf("campaign ran %d points, want 48", a.Points)
	}
}

// TestSweepEmitsFaultEvents: a shared Stats observer sees one fault
// event per injection point, plus the outages the injections caused.
func TestSweepEmitsFaultEvents(t *testing.T) {
	stats := &probe.Stats{}
	w := TinySVM(mtj.ModernSTT())
	rep, err := Sweep(w, Options{Workers: 2, Stride: 11, Fracs: []float64{0.5}, Obs: stats})
	if err != nil {
		t.Fatal(err)
	}
	sec := stats.Section()
	if sec.FaultsInjected != uint64(rep.Points) {
		t.Fatalf("stats saw %d fault events, report has %d points", sec.FaultsInjected, rep.Points)
	}
	if sec.Interrupts < uint64(rep.Points) {
		t.Fatalf("stats saw %d interrupts for %d injections", sec.Interrupts, rep.Points)
	}
}

// TestInjectorModeMachine covers the injector's three-phase protocol
// directly.
func TestInjectorModeMachine(t *testing.T) {
	inj := NewInjector(1e-12, 1e-3)
	if inj.Power(0) != 1e-3 {
		t.Fatalf("charging power %g, want recover power", inj.Power(0))
	}
	inj.OutageEnd(0, 0) // initial charge completes -> armed
	if inj.Power(0) != 0 {
		t.Fatalf("armed power %g, want 0", inj.Power(0))
	}
	if inj.Tripped() {
		t.Fatal("tripped before any interrupt")
	}
	inj.PulseInterrupted(probe.Interrupt{})
	if !inj.Tripped() {
		t.Fatal("not tripped after interrupt")
	}
	if inj.Power(0) != 1e-3 {
		t.Fatalf("recovered power %g, want recover power", inj.Power(0))
	}
	inj.OutageEnd(0, 0) // post-trip recharge must not re-arm
	if inj.Power(0) != 1e-3 {
		t.Fatal("post-trip OutageEnd re-armed the injector")
	}
}

// TestInjectorZeroWindow: a zero-energy schedule is floored to a
// representable window and the harvester stays valid.
func TestInjectorZeroWindow(t *testing.T) {
	inj := NewInjector(0, 1e-3)
	if inj.WindowJ <= 0 {
		t.Fatalf("window %g not floored", inj.WindowJ)
	}
	h := inj.Harvester()
	if err := h.Validate(); err != nil {
		t.Fatalf("zero-window harvester invalid: %v", err)
	}
}

// TestInjectBounds: out-of-range points are rejected, not run.
func TestInjectBounds(t *testing.T) {
	w := TinySVM(mtj.ModernSTT())
	g, err := RunGolden(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Point{{Index: -1, Frac: 0}, {Index: g.Points(), Frac: 0}, {Index: 0, Frac: 1}, {Index: 0, Frac: -0.1}} {
		if _, err := Inject(w, g, p, nil); err == nil {
			t.Errorf("point %+v accepted", p)
		}
	}
}

// FuzzCrashEquivalence feeds arbitrary (boundary, fraction) points into
// the bit-accurate injector: every reachable point must be
// crash-equivalent.
func FuzzCrashEquivalence(f *testing.F) {
	w := TinySVM(mtj.ModernSTT())
	g, err := RunGolden(w)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint16(0), uint8(0))
	f.Add(uint16(1), uint8(128))
	f.Add(uint16(9999), uint8(255))
	f.Fuzz(func(t *testing.T, kRaw uint16, fRaw uint8) {
		p := Point{Index: int(kRaw) % g.Points(), Frac: float64(fRaw) / 256}
		v, err := Inject(w, g, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Equivalent {
			t.Fatalf("instr %d frac %.3f: %s", p.Index, p.Frac, v.Mismatch)
		}
	})
}
