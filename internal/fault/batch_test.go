package fault

import (
	"testing"

	"mouse/internal/mtj"
)

// TestTinySVMBatchCrashEquivalence is the batched intermittency gate:
// the bit-sliced fast path must match every lane's golden continuous
// run, and every lane's scalar fallback must be crash-equivalent at
// every exhaustively-swept injection point with at most one replayed
// instruction per outage.
func TestTinySVMBatchCrashEquivalence(t *testing.T) {
	w, err := TinySVMBatch(mtj.ModernSTT())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SweepBatch(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range rep.BatchMismatches {
		t.Error(m)
	}
	if len(rep.LaneReports) != w.Lanes {
		t.Fatalf("%d lane reports, want %d", len(rep.LaneReports), w.Lanes)
	}
	for lane, lr := range rep.LaneReports {
		if !lr.AllEquivalent() {
			for i, v := range lr.Failures() {
				if i == 4 {
					t.Errorf("lane %d: ... and %d more failures", lane, len(lr.Failures())-i)
					break
				}
				t.Errorf("lane %d: point (%d, %.2f): %s", lane, v.Index, v.Frac, v.Mismatch)
			}
		}
		if lr.MaxReplays > 1 {
			t.Errorf("lane %d: %d replays for one outage (claim: at most one)", lane, lr.MaxReplays)
		}
	}
	if !rep.AllEquivalent() {
		t.Error("batched sweep not fully crash-equivalent")
	}
	if rep.MaxReplays() > 1 {
		t.Errorf("max replays %d across lanes", rep.MaxReplays())
	}
}

// TestTinySVMBatchLanesDiffer guards the fixture: the four lanes feed
// distinct inputs, so at least two lanes must reach distinct final
// states — otherwise the per-lane differential checks prove nothing.
func TestTinySVMBatchLanesDiffer(t *testing.T) {
	w, err := TinySVMBatch(mtj.ModernSTT())
	if err != nil {
		t.Fatal(err)
	}
	var snaps []*snapshot
	for lane := 0; lane < w.Lanes; lane++ {
		g, err := RunGolden(w.Lane(lane))
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, g.snap)
	}
	for _, s := range snaps[1:] {
		if snaps[0].diffState(s) != "" {
			return
		}
	}
	t.Error("all lanes converged to one state; fixture inputs are not distinct")
}

// TestSweepBatchRejectsBadLanes: lane bounds are validated.
func TestSweepBatchRejectsBadLanes(t *testing.T) {
	w, err := TinySVMBatch(mtj.ModernSTT())
	if err != nil {
		t.Fatal(err)
	}
	w.Lanes = 0
	if _, err := SweepBatch(w, Options{}); err == nil {
		t.Error("accepted 0 lanes")
	}
	w.Lanes = 65
	if _, err := SweepBatch(w, Options{}); err == nil {
		t.Error("accepted 65 lanes")
	}
}
