package controller

import (
	"errors"
	"math/rand"
	"testing"

	"mouse/internal/array"
	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// adderProgram computes a 1-bit full add of (a, b, cin) laid out in rows
// 0, 2, 4 of the active columns, leaving sum in row 6 and carry in row 8.
// It uses the MAJ3/MIN3 pair plus NANDs, and exercises every instruction
// kind (ACT, preset, logic, read, write).
func adderProgram() isa.Program {
	return isa.Program{
		isa.ActList(true, 0, []uint16{0, 1}),
		// carry = MAJ3(a, b, cin) into row 8 (preset 1, toward P).
		isa.Preset(9, mtj.AP),
		isa.Logic(mtj.MAJ3, []int{0, 2, 4}, 9),
		// t1 = MIN3(a,b,cin) = NOT carry, row 11.
		isa.Preset(11, mtj.P),
		isa.Logic(mtj.MIN3, []int{0, 2, 4}, 11),
		// t2 = MAJ3(a, b, t1') — build sum = XOR3 via minority logic:
		// sum = MAJ3(t1, t1, ...) is awkward; instead use the classic
		// identity sum = MIN3(MIN3(a,b,cin) twice)… For the test we only
		// need a deterministic multi-instruction program, so compute
		// sum = NOT(NAND3(a,b,cin)) OR' related junk into scratch rows.
		isa.Preset(13, mtj.P),
		isa.Logic(mtj.NAND3, []int{0, 2, 4}, 13),
		isa.Preset(15, mtj.P),
		isa.Logic(mtj.NOT, []int{13 - 1}, 15), // NOT of row 12 (unused, 0) → 1
		// Move a row between tiles through the buffer.
		isa.Read(0, 9),
		isa.Write(1, 21),
		// Narrow the activation and do one more gate.
		isa.ActList(false, 0, []uint16{1}),
		isa.Preset(17, mtj.P),
		isa.Logic(mtj.NOR2, []int{0, 2}, 17),
	}
}

func newRig() (*Controller, *array.Machine) {
	m := array.NewMachine(mtj.ModernSTT(), 2, 32, 4)
	// Operands in columns 0 and 1 of tile 0: (a,b,cin) = (1,0,1) / (1,1,1).
	m.Tiles[0].SetBit(0, 0, 1)
	m.Tiles[0].SetBit(2, 0, 0)
	m.Tiles[0].SetBit(4, 0, 1)
	m.Tiles[0].SetBit(0, 1, 1)
	m.Tiles[0].SetBit(2, 1, 1)
	m.Tiles[0].SetBit(4, 1, 1)
	c := New(ProgramStore(adderProgram()), m)
	return c, m
}

// snapshot captures every non-volatile cell of the machine.
func snapshot(m *array.Machine) []int {
	var out []int
	for _, t := range m.Tiles {
		for r := 0; r < t.Rows(); r++ {
			for c := 0; c < t.Cols(); c++ {
				out = append(out, t.Bit(r, c))
			}
		}
	}
	return out
}

func TestRunToCompletion(t *testing.T) {
	c, m := newRig()
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// carry(1,0,1)=1, carry(1,1,1)=1
	if m.Tiles[0].Bit(9, 0) != 1 || m.Tiles[0].Bit(9, 1) != 1 {
		t.Errorf("MAJ3 results wrong: %d %d", m.Tiles[0].Bit(9, 0), m.Tiles[0].Bit(9, 1))
	}
	// MIN3 = NOT MAJ3.
	if m.Tiles[0].Bit(11, 0) != 0 || m.Tiles[0].Bit(11, 1) != 0 {
		t.Errorf("MIN3 results wrong")
	}
	// Row copied to tile 1.
	if m.Tiles[1].Bit(21, 0) != 1 || m.Tiles[1].Bit(21, 1) != 1 {
		t.Errorf("buffer transfer failed")
	}
	// Final NOR ran only in column 1 (narrowed activation).
	if m.Tiles[0].Bit(17, 1) != 0 { // NOR(1,1)=0
		t.Errorf("NOR in active column wrong")
	}
	if m.Tiles[0].Bit(17, 0) != 0 { // inactive: preset also skipped; stays 0
		t.Errorf("inactive column computed")
	}
	if c.Executed != uint64(len(adderProgram())) {
		t.Errorf("Executed = %d, want %d", c.Executed, len(adderProgram()))
	}
}

func TestEmptyProgram(t *testing.T) {
	m := array.NewMachine(mtj.ModernSTT(), 1, 8, 2)
	c := New(ProgramStore(nil), m)
	done, err := c.Step()
	if err != nil || !done {
		t.Fatalf("empty program: done=%v err=%v", done, err)
	}
}

func TestDualPCProtocol(t *testing.T) {
	var nv Persistent
	if nv.PC() != 0 {
		t.Fatalf("initial PC = %d", nv.PC())
	}
	nv.setNextPC(1)
	if nv.PC() != 0 {
		t.Fatalf("PC changed before commit")
	}
	nv.commitPC()
	if nv.PC() != 1 {
		t.Fatalf("PC = %d after commit, want 1", nv.PC())
	}
	// The now-invalid register may be freely corrupted.
	nv.setNextPC(^uint64(0))
	if nv.PC() != 1 {
		t.Fatalf("corrupting the invalid register changed the valid PC")
	}
}

func TestActRegisterProtocol(t *testing.T) {
	var nv Persistent
	if _, ok := nv.Act(); ok {
		t.Fatalf("Act set before any ACT issued")
	}
	a1 := isa.ActList(true, 0, []uint16{1})
	nv.setNextAct(a1)
	if _, ok := nv.Act(); ok {
		t.Fatalf("uncommitted ACT visible")
	}
	nv.commitAct()
	got, ok := nv.Act()
	if !ok || got.String() != a1.String() {
		t.Fatalf("Act() = %v, %v", got, ok)
	}
	a2 := isa.ActList(false, 3, []uint16{5})
	nv.setNextAct(a2)
	if got, _ := nv.Act(); got.String() != a1.String() {
		t.Fatalf("uncommitted second ACT replaced valid one")
	}
	nv.commitAct()
	if got, _ := nv.Act(); got.String() != a2.String() {
		t.Fatalf("second ACT not visible after commit")
	}
}

// TestEveryInterruptionPointIsSafe is the Fig. 7 exhaustive check: for
// every instruction of the program and every µ-phase of its cycle, cut
// power at that point, restart, run to completion, and require the final
// non-volatile state to be identical to an uninterrupted run.
func TestEveryInterruptionPointIsSafe(t *testing.T) {
	ref, refM := newRig()
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	want := snapshot(refM)

	phases := []Phase{PhaseFetch, PhaseExecute, PhaseWriteActReg, PhaseCommitActReg, PhaseWritePC, PhaseCommitPC}
	progLen := len(adderProgram())
	for instr := 0; instr < progLen; instr++ {
		for _, ph := range phases {
			c, m := newRig()
			// Run normally up to the target instruction.
			for i := 0; i < instr; i++ {
				if _, err := c.Step(); err != nil {
					t.Fatal(err)
				}
			}
			// Interrupt the target instruction at phase ph.
			err := c.StepWithFailure(ph, &array.Partial{Columns: 1, Pulse: func(col int) float64 {
				if col == 0 {
					return 0.3
				}
				return 1.0
			}})
			if !errors.Is(err, ErrPowerFailure) {
				t.Fatalf("instr %d phase %v: expected power failure, got %v", instr, ph, err)
			}
			// Outage: volatile state gone; reboot; resume.
			c.PowerFail()
			if err := c.Restart(); err != nil {
				t.Fatalf("instr %d phase %v: restart: %v", instr, ph, err)
			}
			if err := c.Run(); err != nil {
				t.Fatalf("instr %d phase %v: resume: %v", instr, ph, err)
			}
			got := snapshot(m)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("instr %d phase %v: state diverged at cell %d", instr, ph, i)
				}
			}
			if c.Restarts != 1 {
				t.Fatalf("Restarts = %d", c.Restarts)
			}
		}
	}
}

// TestRandomOutageStorm injects many random outages (random instruction,
// random phase, random partial progress) and checks convergence each time.
func TestRandomOutageStorm(t *testing.T) {
	ref, refM := newRig()
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	want := snapshot(refM)
	phases := []Phase{PhaseFetch, PhaseExecute, PhaseWriteActReg, PhaseCommitActReg, PhaseWritePC, PhaseCommitPC}

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		c, m := newRig()
		outages := 1 + rng.Intn(8)
		for o := 0; o < outages; o++ {
			steps := rng.Intn(4)
			done := false
			for i := 0; i < steps && !done; i++ {
				var err error
				done, err = c.Step()
				if err != nil {
					t.Fatal(err)
				}
			}
			if done {
				break
			}
			frac := rng.Float64() * 1.2
			err := c.StepWithFailure(phases[rng.Intn(len(phases))], &array.Partial{
				Columns: rng.Intn(3),
				Pulse:   func(int) float64 { return frac },
			})
			if !errors.Is(err, ErrPowerFailure) {
				t.Fatal(err)
			}
			c.PowerFail()
			if err := c.Restart(); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		got := snapshot(m)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: state diverged at cell %d", trial, i)
			}
		}
	}
}

type flakySensor struct{ valid bool }

func (s *flakySensor) Valid() bool { return s.valid }

func TestSensorWindowRewind(t *testing.T) {
	// Program: instructions 0-2 are the "sensor transfer" (reads/writes),
	// instruction 3+ is computation.
	prog := isa.Program{
		isa.Read(1, 0), // sensor tile reads
		isa.Write(0, 0),
		isa.Read(1, 2),
		isa.ActList(true, 0, []uint16{0}),
		isa.Preset(1, mtj.P),
	}
	m := array.NewMachine(mtj.ModernSTT(), 2, 8, 2)
	c := New(ProgramStore(prog), m)
	sensor := &flakySensor{valid: true}
	c.SetSensor(sensor)
	c.SensorWindow.Start, c.SensorWindow.End, c.SensorWindow.Enabled = 0, 3, true

	// Execute one transfer instruction, then lose power mid-window with
	// the sensor buffer invalidated (corrupted by the outage).
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if err := c.StepWithFailure(PhaseExecute, nil); !errors.Is(err, ErrPowerFailure) {
		t.Fatal(err)
	}
	sensor.valid = false
	c.PowerFail()
	if err := c.Restart(); err != nil {
		t.Fatal(err)
	}
	if c.NV.PC() != 0 {
		t.Fatalf("PC after sensor rewind = %d, want 0", c.NV.PC())
	}

	// With the sensor valid again, an outage inside the window does not
	// rewind.
	sensor.valid = true
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if err := c.StepWithFailure(PhaseFetch, nil); !errors.Is(err, ErrPowerFailure) {
		t.Fatal(err)
	}
	c.PowerFail()
	if err := c.Restart(); err != nil {
		t.Fatal(err)
	}
	if c.NV.PC() != 1 {
		t.Fatalf("PC = %d, want 1 (no rewind)", c.NV.PC())
	}
	// Outside the window, an invalid sensor does not rewind either.
	for {
		done, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if c.NV.PC() >= 3 || done {
			break
		}
	}
	sensor.valid = false
	c.PowerFail()
	if err := c.Restart(); err != nil {
		t.Fatal(err)
	}
	if c.NV.PC() < 3 {
		t.Fatalf("PC rewound outside the sensor window")
	}
}

func TestRestartWithoutAnyAct(t *testing.T) {
	// A restart before the first ACT instruction must not fail and must
	// leave no columns active.
	c, m := newRig()
	if err := c.StepWithFailure(PhaseFetch, nil); !errors.Is(err, ErrPowerFailure) {
		t.Fatal(err)
	}
	c.PowerFail()
	if err := c.Restart(); err != nil {
		t.Fatal(err)
	}
	if m.ActivePairs() != 0 {
		t.Errorf("columns active after restart with no stored ACT")
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseStrings(t *testing.T) {
	phases := []Phase{PhaseFetch, PhaseExecute, PhaseWriteActReg, PhaseCommitActReg, PhaseWritePC, PhaseCommitPC, PhaseDone, Phase(42)}
	seen := map[string]bool{}
	for _, p := range phases {
		s := p.String()
		if s == "" || seen[s] {
			t.Errorf("phase %d has empty/duplicate name %q", int(p), s)
		}
		seen[s] = true
	}
}

func TestRepeatStore(t *testing.T) {
	prog := isa.Program{
		isa.ActRange(true, 0, 0, 2, 1),
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NAND2, []int{0, 2}, 1),
	}
	s := Repeat(ProgramStore(prog), 3)
	for pass := 0; pass < 3; pass++ {
		for i := range prog {
			in, ok := s.Fetch(uint64(pass*len(prog) + i))
			if !ok || in.String() != prog[i].String() {
				t.Fatalf("pass %d instr %d: %v ok=%v", pass, i, in, ok)
			}
		}
	}
	if _, ok := s.Fetch(uint64(3 * len(prog))); ok {
		t.Fatalf("fetch past the final pass succeeded")
	}
	// Endless mode keeps answering.
	inf := Repeat(ProgramStore(prog), 0)
	if _, ok := inf.Fetch(1_000_003); !ok {
		t.Fatalf("endless repeat stopped")
	}
	// Empty programs stay empty.
	if _, ok := Repeat(ProgramStore(nil), 5).Fetch(0); ok {
		t.Fatalf("empty repeat produced instructions")
	}
}

func TestRepeatedInferencePasses(t *testing.T) {
	// Three passes of the same program run back to back; presets
	// re-initialize all scratch, so every pass produces the same result.
	m := array.NewMachine(mtj.ModernSTT(), 1, 16, 4)
	m.Tiles[0].SetBit(0, 0, 1)
	m.Tiles[0].SetBit(2, 0, 1)
	prog := isa.Program{
		isa.ActRange(true, 0, 0, 4, 1),
		isa.Preset(1, mtj.AP),
		isa.Logic(mtj.AND2, []int{0, 2}, 1),
	}
	c := New(Repeat(ProgramStore(prog), 3), m)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Executed != 9 {
		t.Fatalf("executed %d instructions, want 9", c.Executed)
	}
	if m.Tiles[0].Bit(1, 0) != 1 || m.Tiles[0].Bit(1, 1) != 0 {
		t.Fatalf("result wrong after repeated passes")
	}
}
