package controller

import (
	"errors"
	"testing"

	"mouse/internal/array"
	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// TestSensorTileEndToEnd exercises the full Section IV-E input path: the
// sensor's non-volatile buffer is mapped at a tile address, the program
// transfers the sample with ordinary reads and writes, the sensor-read
// window is guarded by the dedicated sensor-PC register, and a torn
// sample (outage during the sensor's own transfer) causes the restart
// protocol to rewind and re-transfer rather than consume garbage.
func TestSensorTileEndToEnd(t *testing.T) {
	cfg := mtj.ModernSTT()
	build := func() (*Controller, *array.Machine, *array.SensorBuffer) {
		m := array.NewMachine(cfg, 1, 16, 8)
		sensor := array.NewSensorBuffer(cfg, 2, 8)
		sensorTile := m.AttachSensor(sensor)

		// Program: transfer the sensor's two rows into data-tile rows 0
		// and 2 (the sensor window), then compute NAND of the rows'
		// bits column-wise.
		prog := isa.Program{
			isa.Read(sensorTile, 0), // sensor window: [0, 4)
			isa.Write(0, 0),
			isa.Read(sensorTile, 1),
			isa.Write(0, 2),
			isa.ActRange(true, 0, 0, 8, 1),
			isa.Preset(1, mtj.P),
			isa.Logic(mtj.NAND2, []int{0, 2}, 1),
		}
		c := New(ProgramStore(prog), m)
		c.SetSensor(sensor)
		c.SensorWindow.Start, c.SensorWindow.End, c.SensorWindow.Enabled = 0, 4, true
		return c, m, sensor
	}

	sampleA := []int{1, 0, 1, 0, 1, 0, 1, 0, 0, 1, 1, 0, 0, 1, 1, 0}

	// Reference: clean run.
	refC, refM, refSensor := build()
	if err := refSensor.Provide(sampleA); err != nil {
		t.Fatal(err)
	}
	if err := refC.Run(); err != nil {
		t.Fatal(err)
	}

	// Torn-sample run: the first transfer instruction completes, then
	// power dies; during the blackout the sensor's own refill is ALSO
	// interrupted, leaving a torn buffer with the valid bit low.
	c, m, sensor := build()
	if err := sensor.Provide(sampleA); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if err := c.StepWithFailure(PhaseExecute, nil); !errors.Is(err, ErrPowerFailure) {
		t.Fatal(err)
	}
	c.PowerFail()
	if err := sensor.ProvidePartial(sampleA, 5); err != nil { // torn refill
		t.Fatal(err)
	}
	if err := c.Restart(); err != nil {
		t.Fatal(err)
	}
	if c.NV.PC() != 0 {
		t.Fatalf("PC = %d after torn-sample restart, want rewind to 0", c.NV.PC())
	}
	// The sensor completes its refill; MOUSE re-runs the transfer.
	if err := sensor.Provide(sampleA); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}

	for c0 := 0; c0 < 8; c0++ {
		for _, row := range []int{0, 1, 2} {
			if m.Tiles[0].Bit(row, c0) != refM.Tiles[0].Bit(row, c0) {
				t.Fatalf("row %d col %d diverged from the clean run", row, c0)
			}
		}
	}
	// NAND of rows 0 and 2: check one column for concreteness.
	want := 1 - sampleA[0]&sampleA[8]
	if got := m.Tiles[0].Bit(1, 0); got != want {
		t.Fatalf("NAND result %d, want %d", got, want)
	}
}

func TestSensorBufferBasics(t *testing.T) {
	s := array.NewSensorBuffer(mtj.ModernSTT(), 2, 8)
	if s.Valid() {
		t.Fatalf("fresh buffer valid")
	}
	bits := make([]int, 16)
	bits[3] = 1
	if err := s.Provide(bits); err != nil {
		t.Fatal(err)
	}
	if !s.Valid() || s.Tile().Bit(0, 3) != 1 {
		t.Fatalf("provide failed")
	}
	s.Consume()
	if s.Valid() {
		t.Fatalf("consume did not clear valid")
	}
	if err := s.Provide(make([]int, 99)); err == nil {
		t.Fatalf("oversized sample accepted")
	}
	if err := s.ProvidePartial(make([]int, 99), 1); err == nil {
		t.Fatalf("oversized partial sample accepted")
	}
	if err := s.ProvidePartial(bits, 4); err != nil {
		t.Fatal(err)
	}
	if s.Valid() {
		t.Fatalf("torn sample marked valid")
	}
}
