package controller

import (
	"fmt"

	"mouse/internal/array"
	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// TileStore holds the program in actual MTJ instruction tiles, as MOUSE
// does (Section IV-A: "a subset of the tiles are dedicated to store the
// instructions... written into these tiles before deployment"; the
// prototype's instruction and data tiles are homogeneous in design).
// Instruction i's 64-bit word occupies bit columns (i mod perRow)·64 ..
// +63 of row (i / perRow) of the appropriate tile.
//
// Because the store is non-volatile memory, the program trivially
// survives outages; Fetch is a plain array read.
type TileStore struct {
	tiles  []*array.Tile
	rows   int
	perRow int // instructions per row
	count  uint64

	// err records a decode failure (bit corruption in an instruction
	// tile); Fetch then reports the program as ended.
	err error
}

// NewTileStore flashes the program into freshly allocated instruction
// tiles of the given geometry. cols must be a multiple of 64.
func NewTileStore(cfg *mtj.Config, prog isa.Program, rows, cols int) (*TileStore, error) {
	if cols%64 != 0 || cols == 0 {
		return nil, fmt.Errorf("controller: instruction tile width %d is not a multiple of 64", cols)
	}
	s := &TileStore{rows: rows, perRow: cols / 64, count: uint64(len(prog))}
	perTile := rows * s.perRow
	nTiles := (len(prog) + perTile - 1) / perTile
	if nTiles == 0 {
		nTiles = 1
	}
	for i := 0; i < nTiles; i++ {
		s.tiles = append(s.tiles, array.NewTile(cfg, rows, cols))
	}
	for i, in := range prog {
		word, err := isa.Encode(in)
		if err != nil {
			return nil, fmt.Errorf("controller: instruction %d: %w", i, err)
		}
		tile, row, slot := s.locate(uint64(i))
		for b := 0; b < 64; b++ {
			tile.SetBit(row, slot*64+b, int(word>>b)&1)
		}
	}
	return s, nil
}

func (s *TileStore) locate(pc uint64) (*array.Tile, int, int) {
	perTile := uint64(s.rows * s.perRow)
	t := pc / perTile
	rem := pc % perTile
	return s.tiles[t], int(rem) / s.perRow, int(rem) % s.perRow
}

// Tiles returns the instruction tiles (e.g. for fault-injection tests).
func (s *TileStore) Tiles() []*array.Tile { return s.tiles }

// Len returns the stored instruction count.
func (s *TileStore) Len() uint64 { return s.count }

// Err reports a decode failure encountered by Fetch, if any.
func (s *TileStore) Err() error { return s.err }

// Fetch reads and decodes the instruction at pc from the tiles.
func (s *TileStore) Fetch(pc uint64) (isa.Instruction, bool) {
	if pc >= s.count || s.err != nil {
		return isa.Instruction{}, false
	}
	tile, row, slot := s.locate(pc)
	var word uint64
	for b := 0; b < 64; b++ {
		word |= uint64(tile.Bit(row, slot*64+b)) << b
	}
	in, err := isa.Decode(word)
	if err != nil {
		s.err = fmt.Errorf("controller: corrupt instruction tile at pc %d: %w", pc, err)
		return isa.Instruction{}, false
	}
	return in, true
}
