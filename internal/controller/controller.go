// Package controller implements MOUSE's memory controller: the only
// sequential logic in the machine (Section IV of the paper). It fetches
// instructions, broadcasts them to the data tiles, and maintains the
// architectural state — a program counter and the active-column
// configuration — across unexpected power outages.
//
// Correctness under interruption follows the paper's Section V-B:
//
//   - The PC is duplicated (PC-A / PC-B) with a parity bit selecting the
//     valid copy. The next PC is always written to the *invalid* register,
//     and only then is the parity bit flipped (Fig. 7). A write can
//     therefore never corrupt the currently valid PC.
//   - The most recent Activate Columns instruction is stored in a
//     duplicated register pair handled identically.
//   - On restart, the controller re-issues the stored Activate Columns
//     instruction and then resumes fetching at the valid PC, which
//     re-performs the instruction that may have been cut short. Because
//     every instruction is idempotent (Section V-A), this is safe.
//
// The package separates Persistent (non-volatile registers, which survive
// a simulated outage) from everything else (volatile, reconstructed on
// restart), so the crash-consistency semantics of non-volatile hardware
// are modelled explicitly rather than inherited from the Go runtime.
package controller

import (
	"errors"
	"fmt"

	"mouse/internal/array"
	"mouse/internal/isa"
)

// Store supplies instructions by address, playing the role of the
// instruction tiles. Fetch reports ok=false one past the last instruction
// (program complete).
type Store interface {
	Fetch(pc uint64) (in isa.Instruction, ok bool)
}

// ProgramStore adapts an isa.Program into a Store.
type ProgramStore isa.Program

// Fetch returns the instruction at pc.
func (p ProgramStore) Fetch(pc uint64) (isa.Instruction, bool) {
	if pc >= uint64(len(p)) {
		return isa.Instruction{}, false
	}
	return p[pc], true
}

// Repeat wraps a store so the program runs `times` passes back to back
// (the paper's deployment loop: "instructions are performed in
// sequential order one by one until the program repeats", Section IV-B).
// The PC keeps counting up across passes, so the dual-PC protocol and
// restart semantics are untouched; pass 0 for an endless loop.
func Repeat(s Store, times uint64) Store {
	return &repeatStore{inner: s, times: times, length: storeLen(s)}
}

type repeatStore struct {
	inner  Store
	times  uint64
	length uint64
}

func storeLen(s Store) uint64 {
	// Binary-search the first failing fetch (stores are dense from 0).
	if _, ok := s.Fetch(0); !ok {
		return 0
	}
	lo, hi := uint64(1), uint64(2)
	for {
		if _, ok := s.Fetch(hi); !ok {
			break
		}
		lo, hi = hi, hi*2
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if _, ok := s.Fetch(mid); ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// Fetch maps the monotonically increasing PC into the wrapped program.
func (r *repeatStore) Fetch(pc uint64) (isa.Instruction, bool) {
	if r.length == 0 {
		return isa.Instruction{}, false
	}
	if r.times != 0 && pc >= r.times*r.length {
		return isa.Instruction{}, false
	}
	return r.inner.Fetch(pc % r.length)
}

// Sensor models the non-volatile input buffer of the attached sensor
// (Section IV-E): it exposes a valid bit that stays zero while the sensor
// is (re)filling the buffer, e.g. after a power outage corrupted a
// transfer.
type Sensor interface {
	Valid() bool
}

// AlwaysValidSensor is a Sensor whose data is always ready.
type AlwaysValidSensor struct{}

// Valid always reports true.
func (AlwaysValidSensor) Valid() bool { return true }

// Persistent is the controller's non-volatile register file: the five
// non-array components of Section IV-A that must survive power loss. A
// simulated outage preserves exactly this struct and nothing else.
type Persistent struct {
	// PCA and PCB are the duplicated program counter registers; Parity
	// selects the valid one (0 → PCA, 1 → PCB).
	PCA, PCB uint64
	Parity   uint8

	// ActA and ActB duplicate the most recent Activate Columns
	// instruction; ActParity selects the valid copy and ActSet reports
	// whether any has been stored yet.
	ActA, ActB isa.Instruction
	ActParity  uint8
	ActSet     bool

	// SensorPC is the dedicated register holding the PC of the first
	// instruction of the current sensor-read sequence (Section IV-E).
	SensorPC    uint64
	SensorPCSet bool
}

// PC returns the currently valid program counter.
func (nv *Persistent) PC() uint64 {
	if nv.Parity == 0 {
		return nv.PCA
	}
	return nv.PCB
}

// setNextPC writes pc into the invalid PC register. It does not commit.
func (nv *Persistent) setNextPC(pc uint64) {
	if nv.Parity == 0 {
		nv.PCB = pc
	} else {
		nv.PCA = pc
	}
}

// commitPC flips the parity bit, making the previously written register
// valid. This is the single atomic commit point of an instruction.
func (nv *Persistent) commitPC() { nv.Parity ^= 1 }

// Act returns the currently valid Activate Columns register.
func (nv *Persistent) Act() (isa.Instruction, bool) {
	if !nv.ActSet {
		return isa.Instruction{}, false
	}
	if nv.ActParity == 0 {
		return nv.ActA, true
	}
	return nv.ActB, true
}

// setNextAct writes in into the invalid ACT register without committing.
func (nv *Persistent) setNextAct(in isa.Instruction) {
	if nv.ActParity == 0 {
		nv.ActB = in
	} else {
		nv.ActA = in
	}
}

// commitAct flips the ACT parity (and marks the register pair live).
func (nv *Persistent) commitAct() {
	nv.ActParity ^= 1
	nv.ActSet = true
}

// Phase enumerates the µ-steps of one instruction cycle, in execution
// order. Power can fail between (or during) any of them; tests
// exhaustively interrupt each one.
type Phase int

const (
	// PhaseFetch reads the instruction at the valid PC.
	PhaseFetch Phase = iota
	// PhaseExecute broadcasts the instruction and performs it in the
	// array (the interruptible datapath work).
	PhaseExecute
	// PhaseWriteActReg stores an ACT instruction into the invalid ACT
	// register (ACT instructions only).
	PhaseWriteActReg
	// PhaseCommitActReg flips the ACT parity bit (ACT instructions only).
	PhaseCommitActReg
	// PhaseWritePC writes PC+1 into the invalid PC register.
	PhaseWritePC
	// PhaseCommitPC flips the PC parity bit, completing the instruction.
	PhaseCommitPC
	// PhaseDone marks an uninterrupted cycle.
	PhaseDone
)

func (p Phase) String() string {
	switch p {
	case PhaseFetch:
		return "fetch"
	case PhaseExecute:
		return "execute"
	case PhaseWriteActReg:
		return "write-act-reg"
	case PhaseCommitActReg:
		return "commit-act-reg"
	case PhaseWritePC:
		return "write-pc"
	case PhaseCommitPC:
		return "commit-pc"
	case PhaseDone:
		return "done"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// ErrPowerFailure is returned by StepWithFailure when the simulated
// outage point is reached.
var ErrPowerFailure = errors.New("controller: power failure")

// Controller drives a Machine through a program.
type Controller struct {
	// NV is the non-volatile register file. It is exported so the
	// simulator can carry it — and only it — across a simulated outage.
	NV Persistent

	store  Store
	mach   *array.Machine
	sensor Sensor

	// SensorWindow optionally marks [Start, End) as the PC range that
	// performs the sensor-buffer transfer; see Restart.
	SensorWindow struct {
		Start, End uint64
		Enabled    bool
	}

	// Statistics (volatile; informational only).
	Executed   uint64 // completed instructions
	Reexecuted uint64 // instructions re-performed after a restart
	Restarts   uint64
}

// New creates a controller over the given instruction store and machine.
func New(store Store, mach *array.Machine) *Controller {
	return &Controller{store: store, mach: mach, sensor: AlwaysValidSensor{}}
}

// SetSensor attaches a sensor model used by the restart protocol.
func (c *Controller) SetSensor(s Sensor) { c.sensor = s }

// Machine returns the attached datapath.
func (c *Controller) Machine() *array.Machine { return c.mach }

// Peek returns the instruction the next Step will execute, without side
// effects. ok=false means the program is complete. The simulator uses it
// to price the upcoming cycle before deciding whether the energy buffer
// can pay for it.
func (c *Controller) Peek() (isa.Instruction, bool) {
	return c.store.Fetch(c.NV.PC())
}

// Step executes one complete instruction cycle. It returns done=true when
// the PC has moved past the final instruction.
func (c *Controller) Step() (done bool, err error) {
	return c.step(PhaseDone, nil)
}

// StepWithFailure executes one cycle but loses power at the given phase:
// all phases before failAt complete, failAt itself is performed partially
// (per partial, where meaningful), and ErrPowerFailure is returned. The
// caller is expected to invoke Restart before stepping again.
func (c *Controller) StepWithFailure(failAt Phase, partial *array.Partial) error {
	_, err := c.step(failAt, partial)
	return err
}

func (c *Controller) step(failAt Phase, partial *array.Partial) (bool, error) {
	// PhaseFetch.
	if failAt == PhaseFetch {
		// Fetch is a read; dying during it has no architectural effect.
		return false, ErrPowerFailure
	}
	pc := c.NV.PC()
	in, ok := c.store.Fetch(pc)
	if !ok {
		return true, nil
	}

	// PhaseExecute.
	if failAt == PhaseExecute {
		// The datapath operation is cut short (partial describes how
		// far it got); architectural state is untouched.
		if err := c.mach.ExecPartial(in, partial); err != nil {
			return false, err
		}
		return false, ErrPowerFailure
	}
	if err := c.mach.Exec(in); err != nil {
		return false, err
	}

	// PhaseWriteActReg / PhaseCommitActReg (ACT instructions only). For
	// other instructions these failure points collapse to "power died
	// between execute and the PC update".
	if in.Kind != isa.KindAct && (failAt == PhaseWriteActReg || failAt == PhaseCommitActReg) {
		return false, ErrPowerFailure
	}
	if in.Kind == isa.KindAct {
		if failAt == PhaseWriteActReg {
			// Die mid-write: the invalid register holds garbage. Model
			// the garbage explicitly; it must never be read before being
			// rewritten.
			c.NV.setNextAct(isa.Instruction{Kind: isa.KindAct, Ranged: true, Start: 0x3FF, Count: 1, Stride: 0x3FF})
			return false, ErrPowerFailure
		}
		c.NV.setNextAct(in)
		if failAt == PhaseCommitActReg {
			return false, ErrPowerFailure
		}
		c.NV.commitAct()
	}

	// PhaseWritePC.
	if failAt == PhaseWritePC {
		// Die mid-write: the invalid PC register holds garbage.
		c.NV.setNextPC(^uint64(0))
		return false, ErrPowerFailure
	}
	c.NV.setNextPC(pc + 1)

	// PhaseCommitPC.
	if failAt == PhaseCommitPC {
		return false, ErrPowerFailure
	}
	c.NV.commitPC()
	c.Executed++

	done := func() bool { _, more := c.store.Fetch(pc + 1); return !more }()
	return done, nil
}

// PowerFail models the instant of an unexpected outage: every volatile
// element (tile activation latches, memory buffer, in-flight decode)
// vanishes; only c.NV persists.
func (c *Controller) PowerFail() {
	c.mach.LoseVolatile()
}

// Restart models the reboot sequence of Section IV-D once the energy
// buffer has recharged:
//
//  1. Re-issue the stored Activate Columns instruction, restoring the
//     peripheral column latches (the Restore cost).
//  2. If the valid PC lies inside the sensor-read window and the sensor's
//     valid bit is clear (the input transfer was corrupted by the
//     outage), rewind the PC to the start of the window via the dedicated
//     sensor PC register (Section IV-E).
//
// The next Step then re-fetches the instruction at the valid PC,
// re-performing whatever the outage may have cut short (the Dead cost).
func (c *Controller) Restart() error {
	c.Restarts++
	if act, ok := c.NV.Act(); ok {
		if err := c.mach.Activate(act); err != nil {
			return fmt.Errorf("controller: restoring active columns: %w", err)
		}
	}
	if c.SensorWindow.Enabled {
		pc := c.NV.PC()
		if pc >= c.SensorWindow.Start && pc < c.SensorWindow.End && !c.sensor.Valid() {
			// Rewind through the regular double-buffered protocol.
			c.NV.setNextPC(c.SensorWindow.Start)
			c.NV.commitPC()
		}
	}
	c.Reexecuted++
	return nil
}

// Run executes the program to completion under continuous power.
func (c *Controller) Run() error {
	for {
		done, err := c.Step()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}
