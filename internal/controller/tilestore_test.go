package controller

import (
	"errors"
	"testing"

	"mouse/internal/array"
	"mouse/internal/isa"
	"mouse/internal/mtj"
)

func TestTileStoreFetchMatchesProgram(t *testing.T) {
	prog := adderProgram()
	store, err := NewTileStore(mtj.ModernSTT(), prog, 4, 128) // 2 instrs/row, 8 per tile
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != uint64(len(prog)) {
		t.Fatalf("Len = %d", store.Len())
	}
	if len(store.Tiles()) != 2 { // 13 instructions, 8 per tile
		t.Fatalf("%d instruction tiles, want 2", len(store.Tiles()))
	}
	for i := range prog {
		got, ok := store.Fetch(uint64(i))
		if !ok {
			t.Fatalf("fetch %d failed", i)
		}
		if got.String() != prog[i].String() {
			t.Errorf("instruction %d: %v != %v", i, got, prog[i])
		}
	}
	if _, ok := store.Fetch(uint64(len(prog))); ok {
		t.Errorf("fetch past the end succeeded")
	}
}

func TestRunFromInstructionTiles(t *testing.T) {
	// The same program produces identical machine state whether fetched
	// from a Go slice or from real MTJ instruction tiles.
	refC, refM := newRig()
	if err := refC.Run(); err != nil {
		t.Fatal(err)
	}
	want := snapshot(refM)

	store, err := NewTileStore(mtj.ModernSTT(), adderProgram(), 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	m := array.NewMachine(mtj.ModernSTT(), 2, 32, 4)
	m.Tiles[0].SetBit(0, 0, 1)
	m.Tiles[0].SetBit(2, 0, 0)
	m.Tiles[0].SetBit(4, 0, 1)
	m.Tiles[0].SetBit(0, 1, 1)
	m.Tiles[0].SetBit(2, 1, 1)
	m.Tiles[0].SetBit(4, 1, 1)
	c := New(store, m)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	got := snapshot(m)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tile-fetched run diverged at cell %d", i)
		}
	}
}

func TestTileStoreSurvivesOutage(t *testing.T) {
	store, err := NewTileStore(mtj.ModernSTT(), adderProgram(), 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	m := array.NewMachine(mtj.ModernSTT(), 2, 32, 4)
	c := New(store, m)
	if err := c.StepWithFailure(PhaseWritePC, nil); !errors.Is(err, ErrPowerFailure) {
		t.Fatal(err)
	}
	c.PowerFail()
	for _, tile := range store.Tiles() {
		tile.LoseVolatile()
	}
	if err := c.Restart(); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if store.Err() != nil {
		t.Fatalf("store error after outage: %v", store.Err())
	}
}

func TestTileStoreDetectsCorruption(t *testing.T) {
	prog := isa.Program{isa.Read(0, 0), isa.Logic(mtj.NAND2, []int{0, 2}, 1)}
	store, err := NewTileStore(mtj.ModernSTT(), prog, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit of instruction 1 so its input parity breaks.
	tile := store.Tiles()[0]
	tile.SetBit(1, 4, 1-tile.Bit(1, 4)) // bit 4 = LSB of In[0]
	if _, ok := store.Fetch(1); ok {
		t.Fatalf("corrupt instruction fetched successfully")
	}
	if store.Err() == nil {
		t.Fatalf("corruption not recorded")
	}
}

func TestTileStoreGeometryErrors(t *testing.T) {
	if _, err := NewTileStore(mtj.ModernSTT(), nil, 4, 100); err == nil {
		t.Errorf("non-multiple-of-64 width accepted")
	}
	if _, err := NewTileStore(mtj.ModernSTT(), nil, 4, 0); err == nil {
		t.Errorf("zero width accepted")
	}
	// An empty program still yields a working (empty) store.
	s, err := NewTileStore(mtj.ModernSTT(), nil, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Fetch(0); ok {
		t.Errorf("empty store fetched an instruction")
	}
}
