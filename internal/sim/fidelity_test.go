package sim

import (
	"testing"

	"mouse/internal/array"
	"mouse/internal/compile"
	"mouse/internal/controller"
	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/power"
)

// TestFullFidelityStack is the maximal-fidelity integration test: the
// program lives in real MTJ instruction tiles (TileStore), the input
// arrives through a sensor buffer tile, execution runs under an
// energy-starved harvester with outages injected at energy-determined
// µ-phases, and the result must match a continuous-power run fetched
// from a plain program store.
func TestFullFidelityStack(t *testing.T) {
	cfg := mtj.ModernSTT()

	// Program: transfer two sensor rows into the data tile, then
	// compute their columnwise XOR (3 gates) and a popcount-free
	// summary gate.
	b := compile.NewBuilder(32)
	b.ActivateBroadcast([]uint16{0, 1, 2, 3, 4, 5, 6, 7})
	x := b.Reserve(0)
	y := b.Reserve(2)
	xor := b.XOR(x, y)
	nand := b.NAND(x, y)
	tail, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	// Prefix: sensor transfer (sensor is tile 1 of a 1-data-tile machine).
	prog := append(isa.Program{
		isa.Read(1, 0), isa.Write(0, 0),
		isa.Read(1, 1), isa.Write(0, 2),
	}, tail...)

	sample := []int{1, 0, 1, 1, 0, 0, 1, 0, // row 0
		0, 1, 1, 0, 1, 0, 1, 0} // row 1

	runOnce := func(useTiles, forceScalar bool, h *power.Harvester) (*array.Machine, Result) {
		m := array.NewMachine(cfg, 1, 32, 8)
		m.ForceScalar = forceScalar
		sensor := array.NewSensorBuffer(cfg, 2, 8)
		if got := m.AttachSensor(sensor); got != 1 {
			t.Fatalf("sensor tile at %d", got)
		}
		if err := sensor.Provide(sample); err != nil {
			t.Fatal(err)
		}
		var store controller.Store = controller.ProgramStore(prog)
		if useTiles {
			ts, err := controller.NewTileStore(cfg, prog, 64, 64)
			if err != nil {
				t.Fatal(err)
			}
			store = ts
		}
		c := controller.New(store, m)
		c.SetSensor(sensor)
		c.SensorWindow.Start, c.SensorWindow.End, c.SensorWindow.Enabled = 0, 4, true
		res, err := NewMachineRunner(c).Run(h)
		if err != nil {
			t.Fatal(err)
		}
		return m, res
	}

	ref, _ := runOnce(false, false, nil)
	// Run the starved stack through both engines: the packed
	// word-parallel fast path (production) and the scalar
	// resistor-network path (ForceScalar). Both must see outages and both
	// must land on identical cell state.
	for _, forceScalar := range []bool{false, true} {
		starved := power.NewHarvester(power.Constant{W: 1.5e-6}, 2.5e-9, cfg.CapVMin, cfg.CapVMax)
		got, res := runOnce(true, forceScalar, starved)
		if res.Restarts == 0 {
			t.Fatalf("starved run (forceScalar=%v) saw no outages", forceScalar)
		}

		for col := 0; col < 8; col++ {
			for _, row := range []int{0, 2, xor.Row, nand.Row} {
				if got.Tiles[0].Bit(row, col) != ref.Tiles[0].Bit(row, col) {
					t.Fatalf("forceScalar=%v: row %d col %d diverged (restarts=%d)", forceScalar, row, col, res.Restarts)
				}
			}
			wantXor := sample[col] ^ sample[8+col]
			if got.Tiles[0].Bit(xor.Row, col) != wantXor {
				t.Fatalf("col %d: xor = %d, want %d", col, got.Tiles[0].Bit(xor.Row, col), wantXor)
			}
		}
	}
}

// TestPackedAndScalarRunsAreByteIdentical runs a full starved
// MachineRunner workload twice — packed fast path vs ForceScalar — and
// requires the entire simulation outcome to match exactly: every cell
// of every tile, the memory buffer, and the complete energy/latency
// breakdown.
func TestPackedAndScalarRunsAreByteIdentical(t *testing.T) {
	cfg := mtj.ModernSTT()
	b := compile.NewBuilder(64)
	b.ActivateBroadcast([]uint16{0, 1, 2, 3, 4, 5, 6, 7})
	x := b.AllocWord(6, 0)
	y := b.AllocWord(6, 0)
	b.MulWords(x, y)
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}

	run := func(forceScalar bool) (*array.Machine, Result) {
		m := array.NewMachine(cfg, 2, 64, 8)
		m.ForceScalar = forceScalar
		for c := 0; c < 8; c++ {
			for i, w := range x {
				m.Tiles[0].SetBit(w.Row, c, (c*3+5)>>i&1)
			}
			for i, w := range y {
				m.Tiles[0].SetBit(w.Row, c, (c+9)>>i&1)
			}
		}
		ctrl := controller.New(controller.ProgramStore(prog), m)
		h := power.NewHarvester(power.Constant{W: 1.2e-6}, 2.5e-9, cfg.CapVMin, cfg.CapVMax)
		res, err := NewMachineRunner(ctrl).Run(h)
		if err != nil {
			t.Fatal(err)
		}
		return m, res
	}

	mp, rp := run(false)
	ms, rs := run(true)
	if rp.Restarts == 0 {
		t.Fatalf("starved run saw no outages")
	}
	if rp != rs {
		t.Fatalf("results diverge:\npacked %+v\nscalar %+v", rp, rs)
	}
	for ti := range mp.Tiles {
		for r := 0; r < mp.Tiles[ti].Rows(); r++ {
			for c := 0; c < mp.Tiles[ti].Cols(); c++ {
				if mp.Tiles[ti].Bit(r, c) != ms.Tiles[ti].Bit(r, c) {
					t.Fatalf("tile %d cell (%d,%d): packed %d scalar %d", ti, r, c, mp.Tiles[ti].Bit(r, c), ms.Tiles[ti].Bit(r, c))
				}
			}
		}
	}
	for i := range mp.Buffer {
		if mp.Buffer[i] != ms.Buffer[i] {
			t.Fatalf("buffer byte %d: packed %x scalar %x", i, mp.Buffer[i], ms.Buffer[i])
		}
	}
}

// TestTraceLayerMatchesFunctionalLayer is the cross-layer consistency
// guarantee: for the same program, the analytic trace engine (which the
// paper-scale workloads use) and the bit-accurate functional engine must
// account identical instruction counts, energies, and latencies under
// continuous power.
func TestTraceLayerMatchesFunctionalLayer(t *testing.T) {
	cfg := mtj.ModernSTT()
	b := compile.NewBuilder(64)
	b.ActivateBroadcast([]uint16{0, 1, 2, 3})
	x := b.AllocWord(5, 0)
	y := b.AllocWord(5, 0)
	p := b.MulWords(x, y)
	b.Emit(isa.Read(0, p[0].Row))
	b.Emit(isa.WriteRot(0, p[1].Row, 2))
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}

	// Functional layer.
	mach := array.NewMachine(cfg, 2, 64, 8)
	c := controller.New(controller.ProgramStore(prog), mach)
	mr := NewMachineRunner(c)
	funcRes, err := mr.Run(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Trace layer, priced with the identical model (including the
	// machine-specific row width the functional runner derived).
	r := &Runner{Model: mr.Model, MaxChargeWait: 3600}
	traceRes := r.RunContinuous(StreamFromProgram(prog, 2))

	if funcRes.Instructions != traceRes.Instructions {
		t.Fatalf("instruction counts differ: functional %d vs trace %d", funcRes.Instructions, traceRes.Instructions)
	}
	if funcRes.OnLatency != traceRes.OnLatency {
		t.Fatalf("latencies differ: %g vs %g", funcRes.OnLatency, traceRes.OnLatency)
	}
	diff := funcRes.ComputeEnergy - traceRes.ComputeEnergy
	if diff < 0 {
		diff = -diff
	}
	if diff > funcRes.ComputeEnergy*1e-12 {
		t.Fatalf("compute energies differ: %.6g vs %.6g", funcRes.ComputeEnergy, traceRes.ComputeEnergy)
	}
	if funcRes.BackupEnergy != traceRes.BackupEnergy {
		t.Fatalf("backup energies differ: %g vs %g", funcRes.BackupEnergy, traceRes.BackupEnergy)
	}
}

// TestLevelSwitchCounting: a workload alternating gate and preset
// operations crosses converter levels (Section IV-C's level-change
// share), and the counter sees it.
func TestLevelSwitchCounting(t *testing.T) {
	m := energy.NewModel(mtj.ModernSTT())
	r := NewRunner(m)
	ops := []energy.Op{}
	for i := 0; i < 10; i++ {
		ops = append(ops,
			energy.Op{Kind: isa.KindPreset, ActivePairs: 4},
			energy.Op{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 4})
	}
	res := r.RunContinuous(&SliceStream{Ops: ops})
	if res.LevelSwitches == 0 {
		t.Fatalf("alternating preset/logic stream recorded no level switches")
	}
}
