package sim

import (
	"io"
	"math/rand"
	"testing"

	"mouse/internal/array"
	"mouse/internal/compile"
	"mouse/internal/controller"
	"mouse/internal/energy"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/probe"
)

// starvedMachineRun executes a starved multiplier workload on the
// bit-accurate machine with the given observer attached (nil for none)
// and returns the machine and result for differential comparison.
func starvedMachineRun(t *testing.T, forceScalar bool, obs probe.Observer) (*array.Machine, Result) {
	t.Helper()
	cfg := mtj.ModernSTT()
	b := compile.NewBuilder(64)
	b.ActivateBroadcast([]uint16{0, 1, 2, 3, 4, 5, 6, 7})
	x := b.AllocWord(6, 0)
	y := b.AllocWord(6, 0)
	b.MulWords(x, y)
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	m := array.NewMachine(cfg, 2, 64, 8)
	m.ForceScalar = forceScalar
	for c := 0; c < 8; c++ {
		for i, w := range x {
			m.Tiles[0].SetBit(w.Row, c, (c*3+5)>>i&1)
		}
		for i, w := range y {
			m.Tiles[0].SetBit(w.Row, c, (c+9)>>i&1)
		}
	}
	ctrl := controller.New(controller.ProgramStore(prog), m)
	h := power.NewHarvester(power.Constant{W: 1.2e-6}, 2.5e-9, cfg.CapVMin, cfg.CapVMax)
	h.Obs = obs
	h.SampleEvery = 1e-6
	mr := NewMachineRunner(ctrl)
	mr.Obs = obs
	res, err := mr.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

// TestObserverDoesNotPerturbMachineRun is the differential guarantee of
// the probe layer: a starved run with a full observer stack attached
// (Stats + a trace writer + voltage sampling) must be byte-identical —
// every cell, the memory buffer, and the whole energy breakdown — to
// the same run with no observer, on both the packed fast path and the
// scalar ForceScalar path.
func TestObserverDoesNotPerturbMachineRun(t *testing.T) {
	for _, forceScalar := range []bool{false, true} {
		ref, refRes := starvedMachineRun(t, forceScalar, nil)
		if refRes.Restarts == 0 {
			t.Fatalf("forceScalar=%v: starved run saw no outages", forceScalar)
		}

		stats := &probe.Stats{}
		obs := probe.Multi{stats, probe.NewTraceWriter(io.Discard)}
		got, gotRes := starvedMachineRun(t, forceScalar, obs)

		if refRes != gotRes {
			t.Fatalf("forceScalar=%v: results diverge:\nunobserved %+v\nobserved   %+v",
				forceScalar, refRes, gotRes)
		}
		for ti := range ref.Tiles {
			for r := 0; r < ref.Tiles[ti].Rows(); r++ {
				for c := 0; c < ref.Tiles[ti].Cols(); c++ {
					if ref.Tiles[ti].Bit(r, c) != got.Tiles[ti].Bit(r, c) {
						t.Fatalf("forceScalar=%v: tile %d cell (%d,%d) diverged",
							forceScalar, ti, r, c)
					}
				}
			}
		}
		for i := range ref.Buffer {
			if ref.Buffer[i] != got.Buffer[i] {
				t.Fatalf("forceScalar=%v: buffer byte %d diverged", forceScalar, i)
			}
		}

		// The observer's view must agree with the runner's own accounting.
		sec := stats.Section()
		if sec.Instructions != gotRes.Instructions {
			t.Errorf("forceScalar=%v: stats saw %d instructions, result %d",
				forceScalar, sec.Instructions, gotRes.Instructions)
		}
		if sec.Replays != gotRes.Replays {
			t.Errorf("forceScalar=%v: stats saw %d replays, result %d",
				forceScalar, sec.Replays, gotRes.Replays)
		}
		if sec.Outages != gotRes.Restarts+1 {
			// Every restart is one outage, plus the initial charge.
			t.Errorf("forceScalar=%v: stats saw %d outages, restarts %d",
				forceScalar, sec.Outages, gotRes.Restarts)
		}
		if sec.Restores != gotRes.Restarts {
			t.Errorf("forceScalar=%v: stats saw %d restores, restarts %d",
				forceScalar, sec.Restores, gotRes.Restarts)
		}
		if sec.VoltageSamples == 0 {
			t.Errorf("forceScalar=%v: no voltage samples despite SampleEvery", forceScalar)
		}
		if len(sec.TileWrites) == 0 {
			t.Errorf("forceScalar=%v: no tile-write events", forceScalar)
		}
	}
}

// TestObserverDoesNotPerturbTraceRun extends the differential guarantee
// to the analytic trace engine across random streams and power levels.
func TestObserverDoesNotPerturbTraceRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := mtj.ModernSTT()
	for trial := 0; trial < 10; trial++ {
		ops := randomOps(rng, 200+rng.Intn(800))
		watts := 40e-6 * (1 + rng.Float64()*20)
		run := func(obs probe.Observer) Result {
			r := NewRunner(energy.NewModel(cfg))
			r.Obs = obs
			h := power.NewHarvester(power.Constant{W: watts}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
			h.Obs = obs
			h.SampleEvery = 1e-3
			res, err := r.Run(&SliceStream{Ops: ops}, h)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		ref := run(nil)
		stats := &probe.Stats{}
		got := run(stats)
		if ref != got {
			t.Fatalf("trial %d: observed run diverged:\nunobserved %+v\nobserved   %+v",
				trial, ref, got)
		}
		sec := stats.Section()
		if sec.Instructions != got.Instructions || sec.Replays != got.Replays {
			t.Errorf("trial %d: stats %d/%d vs result %d/%d",
				trial, sec.Instructions, sec.Replays, got.Instructions, got.Replays)
		}
	}
}

// TestNopObserverAddsNoAllocations verifies the disabled-probe
// guarantee at its lowest level: attaching the Nop observer to the
// trace engine adds zero allocations per run, on both the continuous
// and the intermittent path, compared to no observer at all.
func TestNopObserverAddsNoAllocations(t *testing.T) {
	cfg := mtj.ModernSTT()
	ops := randomOps(rand.New(rand.NewSource(5)), 300)
	s := &SliceStream{Ops: ops}
	r := NewRunner(energy.NewModel(cfg))

	runCont := func() { s.Reset(); r.RunContinuous(s) }
	base := testing.AllocsPerRun(50, runCont)
	r.Obs = probe.Nop{}
	if got := testing.AllocsPerRun(50, runCont); got != base {
		t.Errorf("continuous: Nop observer adds allocations: %v -> %v allocs/run", base, got)
	}

	runInt := func() {
		s.Reset()
		h := power.NewHarvester(power.Constant{W: 500e-6}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
		if _, err := r.Run(s, h); err != nil {
			t.Fatal(err)
		}
	}
	r.Obs = nil
	baseInt := testing.AllocsPerRun(20, runInt)
	r.Obs = probe.Nop{}
	if got := testing.AllocsPerRun(20, runInt); got != baseInt {
		t.Errorf("intermittent: Nop observer adds allocations: %v -> %v allocs/run", baseInt, got)
	}
}

// TestReplaysNeverExceedRestarts pins the paper's core intermittence
// claim (Section IV-D: "at most one instruction is re-executed" per
// outage) across random streams, configurations, and power levels.
func TestReplaysNeverExceedRestarts(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cfgs := mtj.Configs()
	for trial := 0; trial < 20; trial++ {
		cfg := cfgs[trial%len(cfgs)]
		watts := 40e-6 * (1 + rng.Float64()*50)
		ops := randomOps(rng, 200+rng.Intn(1000))
		r := NewRunner(energy.NewModel(cfg))
		h := power.NewHarvester(power.Constant{W: watts}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
		res, err := r.Run(&SliceStream{Ops: ops}, h)
		if err != nil {
			t.Fatalf("trial %d (%s, %.3g W): %v", trial, cfg.Name, watts, err)
		}
		if res.Replays > res.Restarts {
			t.Errorf("trial %d (%s, %.3g W): %d replays exceed %d restarts",
				trial, cfg.Name, watts, res.Replays, res.Restarts)
		}
	}
}
