package sim

import (
	"fmt"

	"mouse/internal/array"
	"mouse/internal/controller"
	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/probe"
)

// RunnerBatch executes one program over up to array.MaxLanes
// independent input lanes. Under continuous power with no observers it
// takes the bit-sliced fast path: the program is flattened once
// (compile.Flatten), replayed once on a reused lane-sliced arena
// (array.BatchMachine.Replay) — every word operation advancing all
// lanes — and the energy accounting is priced analytically, instruction
// by instruction, with exactly the model calls MachineRunner's
// continuous path makes, so each lane's Result is bit-identical to a
// sequential MachineRunner run of that lane.
//
// Intermittent execution has no batched form: an outage lands at one
// lane's own µ-phase, the interrupted pulse integrates per cell, and
// checkpoint/replay state is per machine. So any lane given a harvester
// or an observer runs the untouched scalar path — a fresh machine, the
// real controller, MachineRunner.Run — preserving checkpoint, replay,
// and probe semantics per lane exactly as the single-sample runner
// does.
type RunnerBatch struct {
	cfg  *mtj.Config
	w    BatchWorkload
	flat *array.FlatProgram

	model   *energy.Model
	arena   *array.BatchMachine
	scratch *array.Machine

	base       Result
	basePriced bool
}

// BatchWorkload is one program executed identically across lanes, with
// per-lane inputs delivered through Load.
type BatchWorkload struct {
	// Prog is the shared instruction stream.
	Prog isa.Program

	// Tiles, Rows, Cols is the machine geometry every lane runs on.
	Tiles, Rows, Cols int

	// Load writes lane's input cells through set (tile, row, col, bit).
	// It runs against a reset machine state, so it only needs to set the
	// cells the program reads before writing.
	Load func(lane int, set func(tile, row, col, bit int)) error
}

// BatchRun configures one Run call. The zero value (or a nil pointer)
// selects the batched fast path for every lane.
type BatchRun struct {
	// Harvester supplies lane's power source; nil (the function or its
	// result) means continuous power. Any non-nil harvester routes that
	// Run onto the per-lane scalar path.
	Harvester func(lane int) *power.Harvester

	// Observer supplies lane's probe observer. Observers see per-lane
	// event streams, which only the scalar path produces, so a non-nil
	// Observer routes the Run onto it too.
	Observer func(lane int) probe.Observer

	// Visit, if non-nil, receives each lane's final machine state after
	// execution. On the fast path the machine is a shared scratch
	// instance refilled per lane — copy out what you need.
	Visit func(lane int, m *array.Machine) error
}

// NewRunnerBatch compiles the workload for batched replay. The
// flattening performs all per-instruction validation once; Run performs
// none.
func NewRunnerBatch(cfg *mtj.Config, w BatchWorkload) (*RunnerBatch, error) {
	if w.Load == nil {
		return nil, fmt.Errorf("sim: batch workload has no input loader")
	}
	flat, err := array.Flatten(w.Prog, cfg, w.Tiles, w.Rows, w.Cols)
	if err != nil {
		return nil, err
	}
	model := energy.NewModel(cfg)
	// Price row transfers at the machine's actual row width, matching
	// NewMachineRunner.
	model.RowBits = w.Cols
	return &RunnerBatch{
		cfg:     cfg,
		w:       w,
		flat:    flat,
		model:   model,
		arena:   array.NewBatchMachine(w.Tiles, w.Rows, w.Cols),
		scratch: array.NewMachine(cfg, w.Tiles, w.Rows, w.Cols),
	}, nil
}

// Run executes lanes lanes of the workload and returns one Result per
// lane. With a nil opts (or one with neither harvester nor observer)
// every lane advances through the shared bit-sliced replay; otherwise
// each lane runs the scalar intermittent path.
func (r *RunnerBatch) Run(lanes int, opts *BatchRun) ([]Result, error) {
	if lanes <= 0 || lanes > array.MaxLanes {
		return nil, fmt.Errorf("sim: lane count %d out of range [1, %d]", lanes, array.MaxLanes)
	}
	if opts == nil || (opts.Harvester == nil && opts.Observer == nil) {
		var visit func(lane int, m *array.Machine) error
		if opts != nil {
			visit = opts.Visit
		}
		return r.runBatched(lanes, visit)
	}
	return r.runScalar(lanes, opts)
}

// runBatched is the fast path: one arena replay advances every lane.
func (r *RunnerBatch) runBatched(lanes int, visit func(int, *array.Machine) error) ([]Result, error) {
	// The arena is reused across Runs (alloc-free steady state); Reset
	// restores the fresh-machine origin each sequential run starts from,
	// so programs that read a cell before writing it still agree with
	// the scalar path bit for bit.
	r.arena.Reset()
	for lane := 0; lane < lanes; lane++ {
		l := lane
		err := r.w.Load(lane, func(tile, row, col, bit int) {
			r.arena.SetLaneBit(l, tile, row, col, bit)
		})
		if err != nil {
			return nil, fmt.Errorf("sim: loading lane %d: %w", lane, err)
		}
	}
	if err := r.arena.Replay(r.flat); err != nil {
		return nil, err
	}
	if !r.basePriced {
		r.base = r.priceContinuous()
		r.basePriced = true
	}
	out := make([]Result, lanes)
	for lane := range out {
		out[lane] = r.base
	}
	if visit != nil {
		for lane := 0; lane < lanes; lane++ {
			if err := r.arena.StoreLane(lane, r.scratch); err != nil {
				return nil, err
			}
			if err := visit(lane, r.scratch); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// runScalar is the per-lane fallback: fresh machine, real controller,
// MachineRunner — the seed's intermittent execution path, untouched.
func (r *RunnerBatch) runScalar(lanes int, opts *BatchRun) ([]Result, error) {
	out := make([]Result, lanes)
	for lane := 0; lane < lanes; lane++ {
		m := array.NewMachine(r.cfg, r.w.Tiles, r.w.Rows, r.w.Cols)
		err := r.w.Load(lane, func(tile, row, col, bit int) {
			m.Tiles[tile].SetBit(row, col, bit)
		})
		if err != nil {
			return nil, fmt.Errorf("sim: loading lane %d: %w", lane, err)
		}
		runner := NewMachineRunner(controller.New(controller.ProgramStore(r.w.Prog), m))
		var h *power.Harvester
		if opts.Harvester != nil {
			h = opts.Harvester(lane)
		}
		if opts.Observer != nil {
			runner.Obs = opts.Observer(lane)
		}
		res, err := runner.Run(h)
		if err != nil {
			return nil, fmt.Errorf("sim: lane %d: %w", lane, err)
		}
		out[lane] = res
		if opts.Visit != nil {
			if err := opts.Visit(lane, m); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// priceContinuous reproduces MachineRunner.Run's continuous-power
// accounting analytically: the same opPricer, the same Op for every
// instruction (activation pairs tracked exactly as the machine's
// latches evolve), accumulated in the same order — so the Result is bit
// identical, float for float, to running one lane through the scalar
// runner under nil harvester.
func (r *RunnerBatch) priceContinuous() Result {
	var b energy.Breakdown
	dt := r.model.CycleTime()
	lastLevel := 0
	pricer := newOpPricer(r.model)
	// Per-tile active-column counts, mirroring Machine.ActivePairs: the
	// width-filtered, deduplicated column sets compile.Flatten resolved.
	tilePairs := make([]int, r.w.Tiles)
	pairs := 0
	for i := range r.w.Prog {
		in := &r.w.Prog[i]
		// Price before applying the instruction's own latch update —
		// MachineRunner prices at Peek, before Step.
		actCols := 0
		if in.Kind == isa.KindAct {
			// opFor counts the instruction's raw column list (not width
			// filtered) times the tile fan-out.
			actCols = len(in.ActiveColumns())
			if in.Broadcast {
				actCols *= r.w.Tiles
			}
		}
		p := pricer.price(energy.OpOf(*in, pairs, actCols))
		b.ComputeEnergy += p.compute
		b.BackupEnergy += p.backup
		b.OnLatency += dt
		b.Instructions++
		if p.level >= 0 && p.level != lastLevel {
			b.LevelSwitches++
			lastLevel = p.level
		}
		if in.Kind == isa.KindAct {
			n := len(r.flat.Ops[i].Cols)
			pairs = 0
			for t := range tilePairs {
				switch {
				case in.Broadcast, t == int(in.Tile):
					tilePairs[t] = n
				default:
					tilePairs[t] = 0
				}
				pairs += tilePairs[t]
			}
		}
	}
	return Result{Breakdown: b, Completed: true}
}
