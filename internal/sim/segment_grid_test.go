package sim_test

// The external-package grid test: the in-package differential tests
// (segment_test.go) cover randomized streams; this one pins the
// acceptance criterion itself — bit-identical Results on every
// (configuration × benchmark × power) point the paper figures sweep —
// using the real workload streams the bench package runs. It lives in
// sim_test because workload imports sim.

import (
	"testing"

	"mouse/internal/bench"
	"mouse/internal/energy"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/sim"
	"mouse/internal/workload"
)

// TestSegmentMatchesSteppingGrid runs every Fig. 9 grid point (all
// three MTJ configurations × all benchmarks × the paper's power sweep,
// which includes the 60 µW column Figs. 10–12 and Table IV read off)
// through both engines and requires Result equality under ==.
func TestSegmentMatchesSteppingGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper grid; skipped with -short")
	}
	for _, cfg := range mtj.Configs() {
		model := energy.NewModel(cfg)
		for _, spec := range workload.Benchmarks() {
			for _, watts := range bench.Powers() {
				mk := func() *power.Harvester {
					return power.NewHarvester(power.Constant{W: watts}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
				}

				seg := sim.NewRunner(model)
				segRes, segErr := seg.Run(spec.Stream(), mk())

				step := sim.NewRunner(model)
				step.ForceStepping = true
				stepRes, stepErr := step.Run(spec.Stream(), mk())

				if (segErr == nil) != (stepErr == nil) ||
					(segErr != nil && segErr.Error() != stepErr.Error()) {
					t.Fatalf("%s / %s / %.3g W: error parity broken: segment=%v stepping=%v",
						cfg.Name, spec.Name, watts, segErr, stepErr)
				}
				if segRes != stepRes {
					t.Errorf("%s / %s / %.3g W: segment result diverges\nsegment:  %+v\nstepping: %+v",
						cfg.Name, spec.Name, watts, segRes, stepRes)
				}
			}
		}
	}
}

// TestRunSweepMatchesRun drives each benchmark's whole power grid as
// one interleaved RunSweep call and requires every lane bit-identical
// (==) to the same point run in isolation — lane interleaving must not
// leak state between powers. A solar lane is mixed in to exercise the
// sweep's sequential fallback alongside live lanes.
func TestRunSweepMatchesRun(t *testing.T) {
	cfg := mtj.ModernSTT()
	model := energy.NewModel(cfg)
	for _, spec := range workload.Benchmarks() {
		hs := make([]*power.Harvester, 0, len(bench.Powers())+2)
		for _, watts := range bench.Powers() {
			hs = append(hs, power.NewHarvester(power.Constant{W: watts}, cfg.CapC, cfg.CapVMin, cfg.CapVMax))
		}
		hs = append(hs, power.NewHarvester(power.Solar{Peak: 5e-3, Period: 0.05}, cfg.CapC, cfg.CapVMin, cfg.CapVMax))

		sweepRes, sweepErrs := sim.NewRunner(model).RunSweep(spec.Stream(), hs)

		for i := range hs {
			h := power.NewHarvester(hs[i].Src, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
			res, err := sim.NewRunner(model).Run(spec.Stream(), h)
			if (sweepErrs[i] == nil) != (err == nil) ||
				(err != nil && sweepErrs[i].Error() != err.Error()) {
				t.Fatalf("%s lane %d: error parity broken: sweep=%v solo=%v", spec.Name, i, sweepErrs[i], err)
			}
			if sweepRes[i] != res {
				t.Errorf("%s lane %d: sweep lane diverges from solo run\nsweep: %+v\nsolo:  %+v",
					spec.Name, i, sweepRes[i], res)
			}
		}
	}
}
