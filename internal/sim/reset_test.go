package sim

import (
	"errors"
	"testing"

	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// Regression tests for the stream-position contract: Run (and the
// checkpoint variant) must start from the stream's beginning even if a
// caller — or a previous failed run — left the stream mid-position, and
// a failed run must rewind the stream on the way out. Before the fix, a
// run aborted by ErrNonTermination left the stream pointing at the
// failing op, so a retry silently executed only the program's suffix.

// TestRunResetsAdvancedStream: a stream advanced by the caller still
// executes from op 0.
func TestRunResetsAdvancedStream(t *testing.T) {
	cfg := mtj.ModernSTT()
	r := NewRunner(energy.NewModel(cfg))
	s := &SliceStream{Ops: opsFixture(50)}
	s.Next()
	s.Next() // leave the stream mid-position
	res, err := r.Run(s, harvester(cfg, 60e-6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 50 {
		t.Fatalf("ran %d instructions, want all 50", res.Instructions)
	}
}

// TestFailedRunRewindsStream: after an aborted run, the same stream
// re-runs in full once the blocker is fixed.
func TestFailedRunRewindsStream(t *testing.T) {
	cfg := mtj.ModernSTT()
	r := NewRunner(energy.NewModel(cfg))
	ops := opsFixture(40)
	// A mid-program op no single buffer discharge can pay for.
	ops[20] = energy.Op{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 1 << 30}
	s := &SliceStream{Ops: ops}
	if _, err := r.Run(s, harvester(cfg, 60e-6)); !errors.Is(err, ErrNonTermination) {
		t.Fatalf("expected non-termination, got %v", err)
	}
	if op, ok := s.Next(); !ok || op.Kind != isa.KindAct {
		t.Fatalf("failed run left the stream mid-position (next op %+v, ok %v)", op, ok)
	}

	// With the pathological op fixed, the very same stream object must
	// execute the whole program, not a suffix.
	ops[20] = energy.Op{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 64}
	res, err := r.Run(s, harvester(cfg, 60e-6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 40 {
		t.Fatalf("retry ran %d instructions, want all 40", res.Instructions)
	}
}

// TestCheckpointRunResetsStream: the checkpoint-interval variant honors
// the same contract.
func TestCheckpointRunResetsStream(t *testing.T) {
	cfg := mtj.ModernSTT()
	r := NewRunner(energy.NewModel(cfg))
	s := &SliceStream{Ops: opsFixture(30)}
	s.Next()
	res, err := r.RunWithCheckpointInterval(s, harvester(cfg, 60e-6), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 30 {
		t.Fatalf("ran %d instructions, want all 30", res.Instructions)
	}
}

// TestBadCheckpointInterval: interval < 1 fails typed, before touching
// the harvester or the stream.
func TestBadCheckpointInterval(t *testing.T) {
	cfg := mtj.ModernSTT()
	r := NewRunner(energy.NewModel(cfg))
	for _, interval := range []int{0, -1, -100} {
		s := &SliceStream{Ops: opsFixture(5)}
		s.Next() // position must be left untouched by the rejected call
		_, err := r.RunWithCheckpointInterval(s, harvester(cfg, 60e-6), interval)
		if !errors.Is(err, ErrBadInterval) {
			t.Fatalf("interval %d: got %v, want ErrBadInterval", interval, err)
		}
		if s.pos != 1 {
			t.Errorf("interval %d: rejected call moved the stream to %d", interval, s.pos)
		}
	}
}
