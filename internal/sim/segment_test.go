package sim

import (
	"errors"
	"math/rand"
	"testing"

	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/probe"
)

// spyStream wraps SliceStream and counts which access path an engine
// used: the stepping path consumes Next(), the segment engine reads
// Runs(). This distinguishes the engines structurally, without relying
// on their outputs differing (they must not).
type spyStream struct {
	SliceStream
	nexts, runs int
}

func (s *spyStream) Next() (energy.Op, bool) { s.nexts++; return s.SliceStream.Next() }
func (s *spyStream) Runs() []energy.OpRun    { s.runs++; return s.SliceStream.Runs() }

// steppingResult reruns the stream on a fresh harvester with the
// segment engine disabled.
func steppingResult(t *testing.T, r *Runner, ops []energy.Op, mk func() *power.Harvester) (Result, error) {
	t.Helper()
	forced := *r
	forced.ForceStepping = true
	return forced.Run(&SliceStream{Ops: ops}, mk())
}

// requireIdentical fails unless the two results are bit-identical and
// the errors render identically.
func requireIdentical(t *testing.T, label string, seg, step Result, segErr, stepErr error) {
	t.Helper()
	if seg != step {
		t.Errorf("%s: segment result diverges from stepping\nsegment:  %+v\nstepping: %+v", label, seg, step)
	}
	switch {
	case (segErr == nil) != (stepErr == nil):
		t.Errorf("%s: error parity broken: segment=%v stepping=%v", label, segErr, stepErr)
	case segErr != nil && segErr.Error() != stepErr.Error():
		t.Errorf("%s: error text diverges:\nsegment:  %v\nstepping: %v", label, segErr, stepErr)
	}
}

// TestSegmentPathSelection verifies the automatic fast/slow split:
// constant power with no observation takes the segment engine; traces,
// observers, voltage sampling, and ForceStepping all keep the stepping
// path.
func TestSegmentPathSelection(t *testing.T) {
	cfg := mtj.ModernSTT()
	ops := randomOps(rand.New(rand.NewSource(3)), 300)
	mkConst := func() *power.Harvester {
		return power.NewHarvester(power.Constant{W: 60e-6}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
	}

	run := func(t *testing.T, r *Runner, h *power.Harvester) *spyStream {
		t.Helper()
		s := &spyStream{SliceStream: SliceStream{Ops: ops}}
		if _, err := r.Run(s, h); err != nil {
			t.Fatalf("run: %v", err)
		}
		return s
	}

	r := NewRunner(energy.NewModel(cfg))
	if s := run(t, r, mkConst()); s.runs == 0 || s.nexts != 0 {
		t.Errorf("constant source: nexts=%d runs=%d, want segment path (runs>0, nexts=0)", s.nexts, s.runs)
	}

	forced := NewRunner(energy.NewModel(cfg))
	forced.ForceStepping = true
	if s := run(t, forced, mkConst()); s.runs != 0 || s.nexts == 0 {
		t.Errorf("ForceStepping: nexts=%d runs=%d, want stepping path", s.nexts, s.runs)
	}

	observed := NewRunner(energy.NewModel(cfg))
	observed.Obs = &probe.Stats{}
	if s := run(t, observed, mkConst()); s.runs != 0 || s.nexts == 0 {
		t.Errorf("attached observer: nexts=%d runs=%d, want stepping path", s.nexts, s.runs)
	}

	sampled := mkConst()
	sampled.Obs = &probe.Stats{}
	sampled.SampleEvery = 1e-6
	if s := run(t, NewRunner(energy.NewModel(cfg)), sampled); s.runs != 0 || s.nexts == 0 {
		t.Errorf("voltage sampling: nexts=%d runs=%d, want stepping path", s.nexts, s.runs)
	}

	solar := power.NewHarvester(power.Solar{Peak: 5e-3, Period: 2}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
	if s := run(t, NewRunner(energy.NewModel(cfg)), solar); s.runs != 0 || s.nexts == 0 {
		t.Errorf("solar source: nexts=%d runs=%d, want stepping path", s.nexts, s.runs)
	}
}

// TestSegmentMatchesSteppingRandom is the core differential property on
// randomized streams: across configurations and power levels spanning
// outage-free to outage-dominated regimes, the segment engine's Result
// must equal the stepping engine's bit for bit.
func TestSegmentMatchesSteppingRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	cfgs := mtj.Configs()
	for trial := 0; trial < 40; trial++ {
		cfg := cfgs[trial%len(cfgs)]
		watts := 20e-6 * (1 + rng.Float64()*500) // 20 µW – 10 mW
		ops := randomOps(rng, 100+rng.Intn(2000))
		r := NewRunner(energy.NewModel(cfg))
		mk := func() *power.Harvester {
			return power.NewHarvester(power.Constant{W: watts}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
		}

		seg, segErr := r.Run(&SliceStream{Ops: ops}, mk())
		step, stepErr := steppingResult(t, r, ops, mk)
		requireIdentical(t, cfg.Name, seg, step, segErr, stepErr)
		if t.Failed() {
			t.Fatalf("trial %d (%s, %.3g W)", trial, cfg.Name, watts)
		}
	}
}

// TestSegmentFinalVoltageMatchesStepping: the segment engine writes the
// harvester's buffer back on exit; the final voltage must be the exact
// stepped value (the clock is committed in bulk and may differ by
// sub-cycle remainders, but the buffer state is part of the physics).
func TestSegmentFinalVoltageMatchesStepping(t *testing.T) {
	cfg := mtj.ModernSTT()
	ops := randomOps(rand.New(rand.NewSource(11)), 800)
	r := NewRunner(energy.NewModel(cfg))
	mk := func() *power.Harvester {
		return power.NewHarvester(power.Constant{W: 60e-6}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
	}

	hSeg, hStep := mk(), mk()
	if _, err := r.Run(&SliceStream{Ops: ops}, hSeg); err != nil {
		t.Fatalf("segment: %v", err)
	}
	forced := *r
	forced.ForceStepping = true
	if _, err := forced.Run(&SliceStream{Ops: ops}, hStep); err != nil {
		t.Fatalf("stepping: %v", err)
	}
	if hSeg.Cap.Voltage() != hStep.Cap.Voltage() {
		t.Errorf("final buffer voltage: segment %.17g V, stepping %.17g V",
			hSeg.Cap.Voltage(), hStep.Cap.Voltage())
	}
}

// TestSegmentNonTerminationParity: an instruction larger than the full
// window budget must abort both engines with the identical error text
// and identical partial accounting.
func TestSegmentNonTerminationParity(t *testing.T) {
	cfg := mtj.ModernSTT()
	// A tiny buffer whose window cannot pay for a wide logic op.
	mk := func() *power.Harvester {
		return power.NewHarvester(power.Constant{W: 10e-6}, 1e-9, cfg.CapVMin, cfg.CapVMax)
	}
	ops := []energy.Op{
		{Kind: isa.KindAct, ActCols: 8},
		{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 2048},
	}
	r := NewRunner(energy.NewModel(cfg))

	seg, segErr := r.Run(&SliceStream{Ops: ops}, mk())
	step, stepErr := steppingResult(t, r, ops, mk)
	if !errors.Is(segErr, ErrNonTermination) {
		t.Fatalf("segment did not detect non-termination: %v", segErr)
	}
	requireIdentical(t, "non-termination", seg, step, segErr, stepErr)
	if seg.Completed {
		t.Error("aborted run marked completed")
	}
}

// TestSegmentChargeWaitParity: a source too weak to recharge within
// MaxChargeWait must abort both engines identically — both on the
// initial charge and on a mid-run recharge.
func TestSegmentChargeWaitParity(t *testing.T) {
	cfg := mtj.ModernSTT()
	ops := randomOps(rand.New(rand.NewSource(5)), 200)
	r := NewRunner(energy.NewModel(cfg))

	// Initial charge exceeds the wait budget.
	r.MaxChargeWait = 1e-9
	mk := func() *power.Harvester {
		return power.NewHarvester(power.Constant{W: 10e-6}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
	}
	seg, segErr := r.Run(&SliceStream{Ops: ops}, mk())
	step, stepErr := steppingResult(t, r, ops, mk)
	if segErr == nil {
		t.Fatal("charge beyond MaxChargeWait did not fail")
	}
	requireIdentical(t, "initial charge", seg, step, segErr, stepErr)

	// A dead source cannot charge at all.
	r.MaxChargeWait = 24 * 3600
	mkDead := func() *power.Harvester {
		return power.NewHarvester(power.Constant{W: 0}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
	}
	seg, segErr = r.Run(&SliceStream{Ops: ops}, mkDead())
	step, stepErr = steppingResult(t, r, ops, mkDead)
	if segErr == nil {
		t.Fatal("dead source did not fail")
	}
	requireIdentical(t, "dead source", seg, step, segErr, stepErr)

	// Invalid harvester configurations must fail identically too.
	mkBad := func() *power.Harvester {
		return power.NewHarvester(power.Constant{W: 60e-6}, 0, cfg.CapVMin, cfg.CapVMax)
	}
	seg, segErr = r.Run(&SliceStream{Ops: randomOps(rand.New(rand.NewSource(6)), 50)}, mkBad())
	step, stepErr = steppingResult(t, r, randomOps(rand.New(rand.NewSource(6)), 50), mkBad)
	if segErr == nil || !errors.Is(segErr, power.ErrInvalidHarvester) {
		t.Fatalf("invalid harvester did not fail typed: %v", segErr)
	}
	requireIdentical(t, "invalid harvester", seg, step, segErr, stepErr)
}

// TestSegmentEmptyStream: a stream with no operations still pays the
// initial charge, identically on both paths.
func TestSegmentEmptyStream(t *testing.T) {
	cfg := mtj.ModernSTT()
	r := NewRunner(energy.NewModel(cfg))
	mk := func() *power.Harvester {
		return power.NewHarvester(power.Constant{W: 60e-6}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
	}
	seg, segErr := r.Run(&SliceStream{}, mk())
	step, stepErr := steppingResult(t, r, nil, mk)
	requireIdentical(t, "empty stream", seg, step, segErr, stepErr)
	if !seg.Completed || seg.Instructions != 0 || seg.OffLatency == 0 {
		t.Errorf("empty-stream result suspicious: %+v", seg)
	}
}

// TestSegmentPropertyInvariants checks the extrapolation-facing
// invariants on the segment path directly: at most one replay per
// restart, instruction count equal to the stream length, and energy
// conservation (accounted energy cannot exceed harvest).
func TestSegmentPropertyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cfgs := mtj.Configs()
	for trial := 0; trial < 25; trial++ {
		cfg := cfgs[trial%len(cfgs)]
		watts := 40e-6 * (1 + rng.Float64()*100)
		ops := randomOps(rng, 200+rng.Intn(1500))
		r := NewRunner(energy.NewModel(cfg))
		h := power.NewHarvester(power.Constant{W: watts}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)

		s := &spyStream{SliceStream: SliceStream{Ops: ops}}
		res, err := r.Run(s, h)
		if err != nil && !errors.Is(err, ErrNonTermination) {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.runs == 0 {
			t.Fatalf("trial %d: segment path not taken", trial)
		}
		if res.Replays > res.Restarts {
			t.Errorf("trial %d: %d replays exceed %d restarts", trial, res.Replays, res.Restarts)
		}
		if err == nil && res.Instructions != uint64(len(ops)) {
			t.Errorf("trial %d: retired %d of %d instructions", trial, res.Instructions, len(ops))
		}
		harvested := watts * (res.OnLatency + res.OffLatency)
		if consumed := res.TotalEnergy(); consumed > harvested*(1+1e-9)+1e-15 {
			t.Errorf("trial %d: accounted %.6g J exceeds harvested %.6g J", trial, consumed, harvested)
		}
	}
}

// FuzzSegmentVsStepping derives an op stream and a constant-power
// harvester from the fuzz inputs and requires the two engines to agree
// byte for byte — Result structs equal under ==, error texts identical.
func FuzzSegmentVsStepping(f *testing.F) {
	f.Add(int64(1), uint16(300), 60.0, uint8(0))
	f.Add(int64(2), uint16(40), 5000.0, uint8(1))
	f.Add(int64(3), uint16(1200), 20.0, uint8(2))
	f.Add(int64(99), uint16(0), 100.0, uint8(0))
	f.Add(int64(7), uint16(800), 0.0, uint8(1)) // dead source
	f.Fuzz(func(t *testing.T, seed int64, n uint16, microwatts float64, cfgSel uint8) {
		if microwatts < 0 || microwatts > 1e9 {
			t.Skip()
		}
		cfgs := mtj.Configs()
		cfg := cfgs[int(cfgSel)%len(cfgs)]
		ops := randomOps(rand.New(rand.NewSource(seed)), int(n)%2048)
		r := NewRunner(energy.NewModel(cfg))
		mk := func() *power.Harvester {
			return power.NewHarvester(power.Constant{W: microwatts * 1e-6}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
		}

		seg, segErr := r.Run(&SliceStream{Ops: ops}, mk())
		step, stepErr := steppingResult(t, r, ops, mk)
		requireIdentical(t, "fuzz", seg, step, segErr, stepErr)
	})
}
