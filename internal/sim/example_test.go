package sim_test

import (
	"fmt"
	"log"

	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/sim"
)

// ExampleRunner_Run executes a short operation stream on a 60 µW
// harvester and reports the EH-model accounting categories.
func ExampleRunner_Run() {
	cfg := mtj.ModernSTT()
	r := sim.NewRunner(energy.NewModel(cfg))

	ops := []energy.Op{{Kind: isa.KindAct, ActCols: 128}}
	for i := 0; i < 100; i++ {
		ops = append(ops,
			energy.Op{Kind: isa.KindPreset, ActivePairs: 128},
			energy.Op{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 128})
	}
	h := power.NewHarvester(power.Constant{W: 60e-6}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
	res, err := r.Run(&sim.SliceStream{Ops: ops}, h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instructions=%d completed=%v\n", res.Instructions, res.Completed)
	fmt.Printf("dead and restore are zero without outages: %v\n",
		res.DeadEnergy == 0 && res.RestoreEnergy == 0 && res.Restarts == 0)
	// Output:
	// instructions=201 completed=true
	// dead and restore are zero without outages: true
}

// ExampleCheckTermination statically verifies forward progress: every
// instruction must fit within one energy-buffer discharge.
func ExampleCheckTermination() {
	cfg := mtj.ModernSTT()
	m := energy.NewModel(cfg)
	ops := []energy.Op{{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 1024}}
	rep := sim.CheckTermination(&sim.SliceStream{Ops: ops}, m)
	fmt.Println("makes forward progress:", rep.OK)

	monster := []energy.Op{{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 1 << 30}}
	rep = sim.CheckTermination(&sim.SliceStream{Ops: monster}, m)
	fmt.Println("billion-column op fits:", rep.OK)
	// Output:
	// makes forward progress: true
	// billion-column op fits: false
}
