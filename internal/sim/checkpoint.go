package sim

import (
	"fmt"

	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/power"
	"mouse/internal/probe"
)

// RunWithCheckpointInterval executes the stream under harvester h, but
// commits the architectural checkpoint (PC write + parity flip) only
// every interval instructions, exploring the trade-off Section IV-D
// discusses: "doing so more often results in less work potentially lost
// on shut-down, however this also increases the checkpointing overhead...
// it is possible that MOUSE would be more energy efficient performing
// checkpointing less often."
//
// With interval > 1, an outage rolls execution back to the last
// checkpoint, so every uncommitted instruction is re-performed (Dead
// work) — correct only because the re-executed window re-issues its own
// preset writes, which our instruction streams carry explicitly (the
// paper's "additional presetting operations").
//
// interval = 1 reproduces MOUSE's per-instruction checkpointing.
func (r *Runner) RunWithCheckpointInterval(s OpStream, h *power.Harvester, interval int) (res Result, err error) {
	if interval < 1 {
		return Result{}, fmt.Errorf("%w (got %d)", ErrBadInterval, interval)
	}
	// Same stream-position contract as Run: start from the beginning,
	// rewind again if the run fails.
	s.Reset()
	defer func() {
		if err != nil {
			s.Reset()
		}
	}()
	var b energy.Breakdown
	var replays uint64
	dt := r.Model.CycleTime()
	activeCols := 0
	active := probe.Enabled(r.Obs)

	if active {
		r.Obs.OutageBegin(h.Now())
	}
	off, err := h.ChargeUntilOn(r.MaxChargeWait)
	if err != nil {
		return Result{Breakdown: b}, err
	}
	b.OffLatency += off
	if active {
		r.Obs.OutageEnd(h.Now(), off)
	}
	// Non-termination budget, invariant across outages (a successful
	// charge means the harvester validated, so Cap is non-nil).
	window := h.WindowEnergy()

	// pending holds instructions executed since the last committed
	// checkpoint; an outage re-performs all of them.
	var pending []energy.Op

	// execute draws one op's energy, retrying through outages; retries
	// replay the pending window first. asDead marks replayed work.
	var execute func(op energy.Op, asDead bool) error
	execute = func(op energy.Op, asDead bool) error {
		e := r.Model.Energy(op)
		for {
			frac := h.Draw(dt, e)
			if frac >= 1 {
				if asDead {
					b.DeadEnergy += e
					b.DeadLatency += dt
					replays++
				} else {
					b.ComputeEnergy += e
					b.Instructions++
				}
				b.OnLatency += dt
				if active {
					r.Obs.InstrRetired(probe.Instr{
						T: h.Now(), Dur: dt, Kind: op.Kind, Gate: op.Gate,
						Tile: -1, Energy: e, Replay: asDead,
					})
				}
				return nil
			}
			b.DeadEnergy += e * frac
			b.DeadLatency += dt * frac
			b.OnLatency += dt * frac
			b.Restarts++
			if active {
				r.Obs.PulseInterrupted(probe.Interrupt{
					T: h.Now(), Frac: frac, Kind: op.Kind, Lost: e * frac,
				})
			}

			if e > window+h.Src.Power(h.Now())*dt {
				return fmt.Errorf("%w (instruction needs %.3g J, window holds %.3g J)", ErrNonTermination, e, window)
			}
			if active {
				r.Obs.OutageBegin(h.Now())
			}
			off, err := h.ChargeUntilOn(r.MaxChargeWait)
			if err != nil {
				return err
			}
			b.OffLatency += off
			if active {
				r.Obs.OutageEnd(h.Now(), off)
			}
			if err := r.restore(h, activeCols, dt, &b); err != nil {
				return err
			}
			// Roll back: replay everything since the last checkpoint,
			// then fall through to retry the current instruction.
			for _, prev := range pending {
				if err := execute(prev, true); err != nil {
					return err
				}
			}
		}
	}

	sinceCheckpoint := 0
	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		if err := execute(op, false); err != nil {
			return Result{Breakdown: b, Replays: replays}, err
		}
		if op.Kind == isa.KindAct {
			activeCols = op.ActCols
		}
		pending = append(pending, op)
		sinceCheckpoint++
		if sinceCheckpoint >= interval {
			// Commit: one checkpoint covers the whole window.
			ck := r.Model.Backup(energy.Op{Kind: isa.KindLogic})
			frac := h.Draw(0, ck) // checkpoint overlaps the cycle: no extra latency
			b.BackupEnergy += ck * frac
			if frac < 1 {
				// The checkpoint itself died; the window replays.
				b.Restarts++
				if active {
					r.Obs.OutageBegin(h.Now())
				}
				off, err := h.ChargeUntilOn(r.MaxChargeWait)
				if err != nil {
					return Result{Breakdown: b, Replays: replays}, err
				}
				b.OffLatency += off
				if active {
					r.Obs.OutageEnd(h.Now(), off)
				}
				if err := r.restore(h, activeCols, dt, &b); err != nil {
					return Result{Breakdown: b, Replays: replays}, err
				}
				for _, prev := range pending {
					if err := execute(prev, true); err != nil {
						return Result{Breakdown: b, Replays: replays}, err
					}
				}
				h.Draw(0, ck)
				b.BackupEnergy += ck * (1 - frac)
			}
			pending = pending[:0]
			sinceCheckpoint = 0
		}
	}
	return Result{Breakdown: b, Replays: replays, Completed: true}, nil
}
