package sim

import (
	"errors"
	"math/rand"
	"testing"

	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/power"
)

// randomOps builds a deterministic pseudo-random operation stream: a
// plausible mix of activations, presets, gates, and row transfers with
// varying activity, the kind of traffic any compiled program produces.
func randomOps(rng *rand.Rand, n int) []energy.Op {
	gates := []mtj.GateKind{mtj.NAND2, mtj.MAJ3, mtj.AND2}
	ops := make([]energy.Op, 0, n+1)
	ops = append(ops, energy.Op{Kind: isa.KindAct, ActCols: 1 + rng.Intn(2048)})
	for len(ops) < n {
		switch rng.Intn(6) {
		case 0:
			ops = append(ops, energy.Op{Kind: isa.KindAct, ActCols: 1 + rng.Intn(2048)})
		case 1:
			ops = append(ops, energy.Op{Kind: isa.KindPreset, ActivePairs: 1 + rng.Intn(2048)})
		case 2, 3:
			ops = append(ops, energy.Op{Kind: isa.KindLogic,
				Gate: gates[rng.Intn(len(gates))], ActivePairs: 1 + rng.Intn(2048)})
		case 4:
			ops = append(ops, energy.Op{Kind: isa.KindRead})
		case 5:
			ops = append(ops, energy.Op{Kind: isa.KindWrite})
		}
	}
	return ops
}

// TestEnergyConservationProperty checks the first-law invariant of the
// intermittent engine: the energy a run accounts for across
// Compute+Backup+Dead+Restore can never exceed what the source
// harvested plus what the buffer initially held (here: nothing — the
// harvester starts empty). This must hold for every randomized stream,
// configuration, and power level, including runs that abort.
func TestEnergyConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfgs := mtj.Configs()
	for trial := 0; trial < 30; trial++ {
		cfg := cfgs[trial%len(cfgs)]
		watts := 40e-6 * (1 + rng.Float64()*100) // 40 µW – 4 mW
		ops := randomOps(rng, 200+rng.Intn(1500))
		r := NewRunner(energy.NewModel(cfg))
		h := power.NewHarvester(power.Constant{W: watts}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)

		res, err := r.Run(&SliceStream{Ops: ops}, h)
		if err != nil && !errors.Is(err, ErrNonTermination) {
			t.Fatalf("trial %d (%s, %.3g W): %v", trial, cfg.Name, watts, err)
		}
		harvested := watts * h.Now()
		consumed := res.TotalEnergy()
		if consumed > harvested*(1+1e-9)+1e-15 {
			t.Errorf("trial %d (%s, %.3g W): accounted %.6g J exceeds harvested %.6g J",
				trial, cfg.Name, watts, consumed, harvested)
		}
		if res.Replays > res.Restarts {
			t.Errorf("trial %d (%s, %.3g W): %d replays exceed %d restarts",
				trial, cfg.Name, watts, res.Replays, res.Restarts)
		}
		if err == nil && !res.Completed {
			t.Errorf("trial %d: error-free run not completed", trial)
		}
	}
}

// TestEnergyConservationCheckpointed extends the conservation invariant
// to the relaxed-checkpointing runner, whose rollback-replay accounting
// is easy to get wrong.
func TestEnergyConservationCheckpointed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := mtj.ModernSTT()
	for _, interval := range []int{1, 8, 64} {
		watts := 60e-6
		ops := randomOps(rng, 600)
		r := NewRunner(energy.NewModel(cfg))
		h := power.NewHarvester(power.Constant{W: watts}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
		res, err := r.RunWithCheckpointInterval(&SliceStream{Ops: ops}, h, interval)
		if err != nil && !errors.Is(err, ErrNonTermination) {
			t.Fatalf("interval %d: %v", interval, err)
		}
		harvested := watts * h.Now()
		if consumed := res.TotalEnergy(); consumed > harvested*(1+1e-9)+1e-15 {
			t.Errorf("interval %d: accounted %.6g J exceeds harvested %.6g J", interval, consumed, harvested)
		}
	}
}

// infiniteHarvester returns a supply that can never brown out: the
// buffer starts full and the source harvests far more per cycle than
// any instruction costs.
func infiniteHarvester(cfg *mtj.Config) *power.Harvester {
	return &power.Harvester{
		Src:  power.Constant{W: 1000},
		Cap:  power.NewCapacitor(cfg.CapC, cfg.CapVMax),
		VOff: cfg.CapVMin,
		VOn:  cfg.CapVMax,
		VMax: cfg.CapVMax,
	}
}

// TestInfinitePowerMatchesContinuous checks that Run degenerates to
// RunContinuous when power never runs out: identical Compute, Backup,
// and OnLatency — bit for bit, since both paths must perform the same
// float operations in the same order — and exactly zero Dead, Restore,
// Off, and restart accounting.
func TestInfinitePowerMatchesContinuous(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, cfg := range mtj.Configs() {
		ops := randomOps(rng, 2000)
		r := NewRunner(energy.NewModel(cfg))

		cont := r.RunContinuous(&SliceStream{Ops: ops})
		res, err := r.Run(&SliceStream{Ops: ops}, infiniteHarvester(cfg))
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if !res.Completed {
			t.Fatalf("%s: run not completed", cfg.Name)
		}
		if res.ComputeEnergy != cont.ComputeEnergy {
			t.Errorf("%s: ComputeEnergy %.12g != continuous %.12g", cfg.Name, res.ComputeEnergy, cont.ComputeEnergy)
		}
		if res.BackupEnergy != cont.BackupEnergy {
			t.Errorf("%s: BackupEnergy %.12g != continuous %.12g", cfg.Name, res.BackupEnergy, cont.BackupEnergy)
		}
		if res.OnLatency != cont.OnLatency {
			t.Errorf("%s: OnLatency %.12g != continuous %.12g", cfg.Name, res.OnLatency, cont.OnLatency)
		}
		if res.Instructions != cont.Instructions || res.LevelSwitches != cont.LevelSwitches {
			t.Errorf("%s: instruction accounting differs: %d/%d vs %d/%d",
				cfg.Name, res.Instructions, res.LevelSwitches, cont.Instructions, cont.LevelSwitches)
		}
		if res.DeadEnergy != 0 || res.RestoreEnergy != 0 || res.DeadLatency != 0 ||
			res.RestoreLatency != 0 || res.OffLatency != 0 || res.Restarts != 0 {
			t.Errorf("%s: infinite power still paid intermittence costs: %+v", cfg.Name, res.Breakdown)
		}
		if res.Replays != 0 {
			t.Errorf("%s: infinite power still replayed %d instructions", cfg.Name, res.Replays)
		}
	}
}
