package sim

import (
	"errors"
	"math"
	"testing"

	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/power"
)

func opsFixture(n int) []energy.Op {
	ops := []energy.Op{{Kind: isa.KindAct, ActCols: 64}}
	for len(ops) < n {
		ops = append(ops,
			energy.Op{Kind: isa.KindPreset, ActivePairs: 64},
			energy.Op{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 64},
		)
	}
	return ops[:n]
}

func TestSliceStream(t *testing.T) {
	s := &SliceStream{Ops: opsFixture(3)}
	n := 0
	for {
		_, ok := s.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("stream yielded %d ops", n)
	}
	s.Reset()
	if _, ok := s.Next(); !ok {
		t.Fatalf("Reset did not rewind")
	}
}

func TestRunContinuousAccounting(t *testing.T) {
	m := energy.NewModel(mtj.ModernSTT())
	r := NewRunner(m)
	res := r.RunContinuous(&SliceStream{Ops: opsFixture(100)})
	if !res.Completed {
		t.Fatalf("did not complete")
	}
	if res.Instructions != 100 {
		t.Errorf("instructions = %d", res.Instructions)
	}
	wantLat := 100 * m.CycleTime()
	if math.Abs(res.OnLatency-wantLat) > 1e-12 {
		t.Errorf("on latency %g, want %g", res.OnLatency, wantLat)
	}
	if res.OffLatency != 0 || res.DeadEnergy != 0 || res.RestoreEnergy != 0 {
		t.Errorf("continuous run has intermittent costs: %+v", res.Breakdown)
	}
	if res.ComputeEnergy <= 0 || res.BackupEnergy <= 0 {
		t.Errorf("energies not positive: %+v", res.Breakdown)
	}
	if res.BackupEnergy >= res.ComputeEnergy {
		t.Errorf("backup energy %g should be far below compute %g", res.BackupEnergy, res.ComputeEnergy)
	}
}

func harvester(cfg *mtj.Config, watts float64) *power.Harvester {
	return power.NewHarvester(power.Constant{W: watts}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
}

func TestRunIntermittentCompletes(t *testing.T) {
	cfg := mtj.ModernSTT()
	m := energy.NewModel(cfg)
	r := NewRunner(m)
	res, err := r.Run(&SliceStream{Ops: opsFixture(2000)}, harvester(cfg, 60e-6))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Instructions != 2000 {
		t.Fatalf("incomplete: %+v", res.Breakdown)
	}
	if res.OffLatency <= 0 {
		t.Errorf("no initial charging time recorded")
	}
}

func TestIntermittentMatchesContinuousComputeEnergy(t *testing.T) {
	// The useful work is identical regardless of the power supply; only
	// Dead/Restore/Off costs are added by intermittence.
	cfg := mtj.ProjectedSTT()
	m := energy.NewModel(cfg)
	r := NewRunner(m)
	cont := r.RunContinuous(&SliceStream{Ops: opsFixture(500)})
	inter, err := r.Run(&SliceStream{Ops: opsFixture(500)}, harvester(cfg, 60e-6))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cont.ComputeEnergy-inter.ComputeEnergy) > 1e-15 {
		t.Errorf("compute energy differs: %g vs %g", cont.ComputeEnergy, inter.ComputeEnergy)
	}
	if math.Abs(cont.BackupEnergy-inter.BackupEnergy) > 1e-15 {
		t.Errorf("backup energy differs: %g vs %g", cont.BackupEnergy, inter.BackupEnergy)
	}
}

func TestLowPowerMeansMoreRestartsAndLatency(t *testing.T) {
	cfg := mtj.ModernSTT()
	m := energy.NewModel(cfg)
	r := NewRunner(m)
	// Big ops so the buffer drains quickly relative to the window.
	big := make([]energy.Op, 4000)
	for i := range big {
		big[i] = energy.Op{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 16 * 1024}
	}
	big[0] = energy.Op{Kind: isa.KindAct, ActCols: 16 * 1024}

	low, err := r.Run(&SliceStream{Ops: big}, harvester(cfg, 60e-6))
	if err != nil {
		t.Fatal(err)
	}
	high, err := r.Run(&SliceStream{Ops: big}, harvester(cfg, 5e-3))
	if err != nil {
		t.Fatal(err)
	}
	if low.Restarts == 0 {
		t.Fatalf("60 µW run with heavy ops should incur restarts")
	}
	if low.TotalLatency() <= high.TotalLatency() {
		t.Errorf("lower power should mean higher latency: %g vs %g", low.TotalLatency(), high.TotalLatency())
	}
	if low.Restarts < high.Restarts {
		t.Errorf("lower power should mean at least as many restarts: %d vs %d", low.Restarts, high.Restarts)
	}
	if low.DeadEnergy <= 0 || low.RestoreEnergy <= 0 {
		t.Errorf("restarting run must record dead and restore energy: %+v", low.Breakdown)
	}
	// The paper: total energy is nearly independent of the power source
	// (Section IX); dead/restore overheads stay a small fraction.
	if low.TotalEnergy() > 1.5*high.TotalEnergy() {
		t.Errorf("energy blew up at low power: %g vs %g", low.TotalEnergy(), high.TotalEnergy())
	}
}

func TestNonTerminationDetected(t *testing.T) {
	cfg := mtj.ModernSTT()
	m := energy.NewModel(cfg)
	r := NewRunner(m)
	// An absurdly parallel op that no single discharge can pay for.
	ops := []energy.Op{{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 1 << 30}}
	_, err := r.Run(&SliceStream{Ops: ops}, harvester(cfg, 60e-6))
	if !errors.Is(err, ErrNonTermination) {
		t.Fatalf("expected non-termination, got %v", err)
	}
}

func TestChargeFailureSurfaces(t *testing.T) {
	cfg := mtj.ModernSTT()
	r := NewRunner(energy.NewModel(cfg))
	h := power.NewHarvester(power.Constant{W: 0}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
	if _, err := r.Run(&SliceStream{Ops: opsFixture(10)}, h); err == nil {
		t.Fatalf("zero-power source should fail to charge")
	}
}

func TestStreamFromProgram(t *testing.T) {
	p := isa.Program{
		isa.ActRange(true, 0, 0, 8, 1), // 8 cols × 4 tiles = 32 pairs
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NAND2, []int{0, 2}, 1),
		isa.ActList(false, 1, []uint16{3}), // 1 pair
		isa.Logic(mtj.NOT, []int{0}, 1),
		isa.Read(0, 0),
	}
	s := StreamFromProgram(p, 4)
	var got []energy.Op
	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, op)
	}
	if len(got) != len(p) {
		t.Fatalf("stream yielded %d ops", len(got))
	}
	if got[0].ActCols != 32 {
		t.Errorf("broadcast ACT cols = %d, want 32", got[0].ActCols)
	}
	if got[1].ActivePairs != 32 || got[2].ActivePairs != 32 {
		t.Errorf("pairs after broadcast = %d/%d, want 32", got[1].ActivePairs, got[2].ActivePairs)
	}
	if got[3].ActCols != 1 || got[4].ActivePairs != 1 {
		t.Errorf("pairs after targeted ACT = %d/%d, want 1", got[3].ActCols, got[4].ActivePairs)
	}
	if got[5].ActivePairs != 0 {
		t.Errorf("read op should carry no pairs")
	}
	s.Reset()
	if op, ok := s.Next(); !ok || op.ActCols != 32 {
		t.Errorf("Reset did not rewind")
	}
}

// TestRunEnergyConservation: over an intermittent run, everything the
// machine consumed must equal what the harvester delivered minus what
// remains in the buffer (no energy invented or silently lost, absent
// the VMax clamp).
func TestRunEnergyConservation(t *testing.T) {
	cfg := mtj.ModernSTT()
	m := energy.NewModel(cfg)
	r := NewRunner(m)
	ops := make([]energy.Op, 2000)
	for i := range ops {
		ops[i] = energy.Op{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 8192}
	}
	ops[0] = energy.Op{Kind: isa.KindAct, ActCols: 8192}
	h := harvester(cfg, 60e-6)
	res, err := r.Run(&SliceStream{Ops: ops}, h)
	if err != nil {
		t.Fatal(err)
	}
	harvested := 60e-6 * h.Now()
	consumed := res.TotalEnergy()
	remaining := h.Cap.Energy()
	if diff := math.Abs(harvested - consumed - remaining); diff > harvested*1e-6 {
		t.Fatalf("energy not conserved: harvested %.4g = consumed %.4g + remaining %.4g (diff %.3g)",
			harvested, consumed, remaining, diff)
	}
}
