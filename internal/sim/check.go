package sim

import (
	"fmt"

	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// TerminationReport is the result of a static forward-progress check
// (the intermittent-computing non-termination hazard of Section I:
// "if the energy required between two checkpoints is too large, the
// device will be unable to complete the computation").
type TerminationReport struct {
	// OK reports whether every instruction fits the discharge window.
	OK bool
	// WindowJ is the usable energy of one buffer discharge (V_on→V_off).
	WindowJ float64
	// MaxOpJ is the most expensive single instruction (compute + backup).
	MaxOpJ float64
	// MaxOpIndex is that instruction's position in the stream.
	MaxOpIndex int64
	// MaxOp is the offending (or just most expensive) operation.
	MaxOp energy.Op
	// Headroom is WindowJ / MaxOpJ; values near 1 are fragile.
	Headroom float64
	// Ops is the total operation count inspected.
	Ops int64
}

// CheckTermination statically verifies, before deployment, that the
// program can always make forward progress on cfg's energy buffer: the
// most expensive single instruction — the unit of atomic progress, since
// MOUSE checkpoints after every instruction — must fit within one full
// buffer discharge. This is MOUSE's analogue of CleanCut's
// non-termination checking (Section X), made trivial by the
// one-instruction checkpoint interval.
func CheckTermination(s OpStream, m *energy.Model) TerminationReport {
	cfg := m.Cfg
	rep := TerminationReport{
		WindowJ: 0.5 * cfg.CapC * (cfg.CapVMax*cfg.CapVMax - cfg.CapVMin*cfg.CapVMin),
	}
	var idx int64
	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		e := m.Energy(op) + m.Backup(op)
		if e > rep.MaxOpJ {
			rep.MaxOpJ = e
			rep.MaxOpIndex = idx
			rep.MaxOp = op
		}
		idx++
	}
	rep.Ops = idx
	rep.OK = rep.MaxOpJ <= rep.WindowJ
	if rep.MaxOpJ > 0 {
		rep.Headroom = rep.WindowJ / rep.MaxOpJ
	}
	return rep
}

func (r TerminationReport) String() string {
	verdict := "terminates"
	if !r.OK {
		verdict = "NON-TERMINATING"
	}
	return fmt.Sprintf("%s: window %.4g J, costliest op %.4g J at index %d (%v, %d pairs), headroom %.2fx over %d ops",
		verdict, r.WindowJ, r.MaxOpJ, r.MaxOpIndex, r.MaxOp.Kind, r.MaxOp.ActivePairs, r.Headroom, r.Ops)
}

// MaxParallelColumns returns the largest number of simultaneously active
// columns for which a logic instruction (using the costliest gate) still
// fits within one buffer discharge with the given headroom factor — the
// Section IV-C knob: "by adjusting the amount of parallelism in the
// computation, the power consumption of MOUSE can be finely tuned".
func MaxParallelColumns(m *energy.Model, headroom float64) int {
	cfg := m.Cfg
	window := 0.5 * cfg.CapC * (cfg.CapVMax*cfg.CapVMax - cfg.CapVMin*cfg.CapVMin)
	budget := window / headroom

	// Find the most expensive per-column operation (preset writes cost
	// more than gates on STT cells).
	perCol := 0.0
	for g := mtj.GateKind(0); g.Valid(); g++ {
		probe := m.Energy(energy.Op{Kind: isa.KindLogic, Gate: g, ActivePairs: 1}) -
			m.Energy(energy.Op{Kind: isa.KindLogic, Gate: g, ActivePairs: 0})
		if probe > perCol {
			perCol = probe
		}
	}
	presetCol := m.Energy(energy.Op{Kind: isa.KindPreset, ActivePairs: 1}) -
		m.Energy(energy.Op{Kind: isa.KindPreset, ActivePairs: 0})
	if presetCol > perCol {
		perCol = presetCol
	}
	if perCol <= 0 {
		return 0
	}
	fixed := m.Energy(energy.Op{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 0}) +
		m.Backup(energy.Op{Kind: isa.KindLogic})
	if budget <= fixed {
		return 0
	}
	return int((budget - fixed) / perCol)
}
