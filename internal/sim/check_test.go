package sim

import (
	"strings"
	"testing"

	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
)

func TestCheckTerminationPasses(t *testing.T) {
	m := energy.NewModel(mtj.ModernSTT())
	rep := CheckTermination(&SliceStream{Ops: opsFixture(100)}, m)
	if !rep.OK {
		t.Fatalf("modest workload flagged: %v", rep)
	}
	if rep.Ops != 100 || rep.Headroom <= 1 {
		t.Errorf("report wrong: %+v", rep)
	}
	if !strings.Contains(rep.String(), "terminates") {
		t.Errorf("String = %q", rep.String())
	}
}

func TestCheckTerminationFlagsMonsterOp(t *testing.T) {
	m := energy.NewModel(mtj.ModernSTT())
	ops := opsFixture(10)
	ops[7] = energy.Op{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 1 << 30}
	rep := CheckTermination(&SliceStream{Ops: ops}, m)
	if rep.OK {
		t.Fatalf("monster op passed: %v", rep)
	}
	if rep.MaxOpIndex != 7 {
		t.Errorf("wrong culprit index %d", rep.MaxOpIndex)
	}
	if !strings.Contains(rep.String(), "NON-TERMINATING") {
		t.Errorf("String = %q", rep.String())
	}
	// The dynamic engine must agree with the static verdict.
	r := NewRunner(m)
	cfg := mtj.ModernSTT()
	_, err := r.Run(&SliceStream{Ops: ops}, harvester(cfg, 60e-6))
	if err == nil {
		t.Fatalf("dynamic run of a non-terminating stream succeeded")
	}
}

func TestCheckTerminationAgreesWithRunner(t *testing.T) {
	// Property: any workload the checker passes with headroom completes
	// under the dynamic engine.
	for _, cfg := range mtj.Configs() {
		m := energy.NewModel(cfg)
		cols := MaxParallelColumns(m, 2.0)
		ops := []energy.Op{{Kind: isa.KindAct, ActCols: cols}}
		for i := 0; i < 50; i++ {
			ops = append(ops,
				energy.Op{Kind: isa.KindPreset, ActivePairs: cols},
				energy.Op{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: cols})
		}
		rep := CheckTermination(&SliceStream{Ops: ops}, m)
		if !rep.OK {
			t.Fatalf("%s: sized workload flagged: %v", cfg.Name, rep)
		}
		r := NewRunner(m)
		if _, err := r.Run(&SliceStream{Ops: ops}, harvester(cfg, 60e-6)); err != nil {
			t.Fatalf("%s: sized workload failed dynamically: %v", cfg.Name, err)
		}
	}
}

func TestMaxParallelColumns(t *testing.T) {
	for _, cfg := range mtj.Configs() {
		m := energy.NewModel(cfg)
		n := MaxParallelColumns(m, 1.0)
		if n <= 0 {
			t.Fatalf("%s: no parallelism possible", cfg.Name)
		}
		half := MaxParallelColumns(m, 2.0)
		if half >= n {
			t.Errorf("%s: headroom did not shrink the budget (%d vs %d)", cfg.Name, half, n)
		}
	}
	// Projected technologies afford far more parallelism than modern.
	modern := MaxParallelColumns(energy.NewModel(mtj.ModernSTT()), 1.0)
	projected := MaxParallelColumns(energy.NewModel(mtj.ProjectedSTT()), 1.0)
	if projected <= modern {
		t.Errorf("projected budget %d not above modern %d", projected, modern)
	}
}

func TestCheckpointIntervalTradeoff(t *testing.T) {
	// Section IV-D: rarer checkpoints mean less backup energy but more
	// dead (re-performed) work.
	cfg := mtj.ModernSTT()
	m := energy.NewModel(cfg)
	r := NewRunner(m)
	mk := func() *SliceStream {
		ops := make([]energy.Op, 3000)
		for i := range ops {
			ops[i] = energy.Op{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 8192}
		}
		ops[0] = energy.Op{Kind: isa.KindAct, ActCols: 8192}
		return &SliceStream{Ops: ops}
	}
	var prevBackup, prevDead float64
	for i, interval := range []int{1, 8, 64} {
		res, err := r.RunWithCheckpointInterval(mk(), harvester(cfg, 60e-6), interval)
		if err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
		if !res.Completed || res.Instructions != 3000 {
			t.Fatalf("interval %d incomplete: %+v", interval, res.Breakdown)
		}
		if i > 0 {
			if res.BackupEnergy >= prevBackup {
				t.Errorf("interval %d: backup energy %.3g did not drop (was %.3g)", interval, res.BackupEnergy, prevBackup)
			}
			if res.DeadEnergy <= prevDead {
				t.Errorf("interval %d: dead energy %.3g did not grow (was %.3g)", interval, res.DeadEnergy, prevDead)
			}
		}
		prevBackup, prevDead = res.BackupEnergy, res.DeadEnergy
	}
}

func TestCheckpointIntervalOneMatchesRun(t *testing.T) {
	cfg := mtj.ProjectedSTT()
	m := energy.NewModel(cfg)
	r := NewRunner(m)
	a, err := r.Run(&SliceStream{Ops: opsFixture(500)}, harvester(cfg, 60e-6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunWithCheckpointInterval(&SliceStream{Ops: opsFixture(500)}, harvester(cfg, 60e-6), 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Instructions != b.Instructions {
		t.Errorf("instruction counts differ: %d vs %d", a.Instructions, b.Instructions)
	}
	// Compute energy must agree exactly; backup may differ slightly
	// because interval mode prices every checkpoint as a plain-PC commit.
	if diff := a.ComputeEnergy - b.ComputeEnergy; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("compute energy differs: %g vs %g", a.ComputeEnergy, b.ComputeEnergy)
	}
}

func TestCheckpointIntervalValidates(t *testing.T) {
	r := NewRunner(energy.NewModel(mtj.ModernSTT()))
	if _, err := r.RunWithCheckpointInterval(&SliceStream{}, nil, 0); err == nil {
		t.Fatalf("interval 0 accepted")
	}
}
