// Package sim is MOUSE's intermittent-execution engine. It drives a
// program through the energy model (package energy) under a harvested
// power supply (package power), reproducing the paper's evaluation
// methodology (Section VIII): the machine runs while the capacitor buffer
// is above the shutdown voltage, dies unexpectedly mid-instruction when
// the buffer empties, recharges, restores its active columns, and
// re-performs the interrupted instruction.
//
// Two layers share the engine:
//
//   - The trace layer (Run/RunContinuous) consumes an OpStream of
//     (instruction kind, activity) events — this is how the paper-scale
//     benchmarks execute, mirroring the authors' analytic R simulator.
//   - The functional layer (MachineRunner) drives a real
//     controller.Controller over a bit-accurate array.Machine, injecting
//     outages at the exact µ-phase the energy ran out, so small end-to-end
//     inferences demonstrably survive real interruption.
//
// Accounting convention (following the paper's EH-model usage): an
// instruction's first-attempt commit is Compute (plus Backup) energy;
// every failed partial attempt AND the post-restart re-execution are Dead
// energy and Dead latency ("repeating the last instruction on restart");
// each restart's column re-activation is Restore energy and latency. Off
// latency is recharge waiting time, including the initial charge from an
// empty buffer.
package sim

import (
	"errors"
	"fmt"

	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/power"
	"mouse/internal/probe"
)

// OpStream yields the operation sequence of a program.
type OpStream interface {
	// Next returns the next operation, or ok=false at program end.
	Next() (op energy.Op, ok bool)
	// Reset rewinds the stream to the beginning.
	Reset()
}

// RunStream is an OpStream that can also describe itself as a
// run-length encoding. Streams that implement it are eligible for the
// analytic segment engine (segment.go), which prices the runs once and
// retires whole outage-to-outage windows in bulk instead of stepping
// Next() per instruction. Runs() must enumerate exactly the operations
// Next() would yield from a fresh stream, in order; a run-driven
// execution leaves the stream rewound rather than exhausted.
type RunStream interface {
	OpStream
	Runs() []energy.OpRun
}

// SliceStream is an OpStream over a materialized operation slice.
type SliceStream struct {
	Ops []energy.Op
	pos int
}

// Next returns the next operation.
func (s *SliceStream) Next() (energy.Op, bool) {
	if s.pos >= len(s.Ops) {
		return energy.Op{}, false
	}
	op := s.Ops[s.pos]
	s.pos++
	return op, true
}

// Reset rewinds the stream.
func (s *SliceStream) Reset() { s.pos = 0 }

// Runs returns the slice's run-length encoding (RunStream).
func (s *SliceStream) Runs() []energy.OpRun {
	var runs []energy.OpRun
	for _, op := range s.Ops {
		if n := len(runs); n > 0 && runs[n-1].Op == op {
			runs[n-1].Count++
			continue
		}
		runs = append(runs, energy.OpRun{Op: op, Count: 1})
	}
	return runs
}

// ErrNonTermination reports that a single instruction needs more energy
// than one full buffer discharge plus concurrent harvest can supply, so
// the program can never make forward progress (the intermittent-computing
// non-termination hazard of Section I).
var ErrNonTermination = errors.New("sim: non-termination: an instruction exceeds the energy buffer's budget")

// ErrBadInterval reports a checkpoint interval below 1, which has no
// protocol meaning (there is no such thing as committing more than once
// per instruction). Typed so sweep drivers can errors.Is it.
var ErrBadInterval = errors.New("sim: checkpoint interval must be >= 1")

// Runner executes operation streams.
type Runner struct {
	Model *energy.Model

	// MaxChargeWait bounds a single recharge wait (guards against a
	// source that can never reach V_on). Seconds.
	MaxChargeWait float64

	// Obs receives the run's event stream. Nil or probe.Nop disables
	// emission at the cost of one branch per instruction; observers must
	// never influence accounting.
	Obs probe.Observer

	// ForceStepping pins Run to the per-instruction stepping path even
	// when the stream and harvester qualify for the analytic segment
	// engine — the counterpart of array.Machine.ForceScalar, used by
	// differential tests and A/B benchmarks.
	ForceStepping bool
}

// NewRunner returns a runner over the given model.
func NewRunner(m *energy.Model) *Runner {
	return &Runner{Model: m, MaxChargeWait: 24 * 3600}
}

// Result is the outcome of one run.
type Result struct {
	energy.Breakdown
	// Replays counts instructions that were re-executed after an outage
	// — the paper's "at most one re-execution per outage" claim means
	// Replays never exceeds Restarts.
	Replays uint64
	// Completed is false only when an error aborted the run.
	Completed bool
}

// RunContinuous executes the stream under continuous power: no outages,
// no Dead/Restore costs (Section IX, Table IV).
func (r *Runner) RunContinuous(s OpStream) Result {
	s.Reset()
	var b energy.Breakdown
	dt := r.Model.CycleTime()
	lastLevel := 0
	active := probe.Enabled(r.Obs)
	now := 0.0
	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		b.ComputeEnergy += r.Model.Energy(op)
		b.BackupEnergy += r.Model.Backup(op)
		b.OnLatency += dt
		b.Instructions++
		if active {
			now += dt
			r.Obs.InstrRetired(probe.Instr{
				T: now, Dur: dt, Kind: op.Kind, Gate: op.Gate, Tile: -1,
				Energy: r.Model.Energy(op), Backup: r.Model.Backup(op),
			})
		}
		if lv := r.Model.Level(op); lv >= 0 && lv != lastLevel {
			b.LevelSwitches++
			lastLevel = lv
		}
	}
	return Result{Breakdown: b, Completed: true}
}

// Run executes the stream under the harvested supply h, applying the
// shutdown/restore/re-execute protocol on every outage. The stream's
// activation state is tracked so Restore is priced by the number of
// columns that must be re-latched.
//
// When the stream can describe itself as runs (RunStream), the source
// is constant, and no observer or voltage sampling is attached, Run
// dispatches to the analytic segment engine (segment.go), which
// produces a bit-identical Result without stepping the harvester.
// Trace/solar sources, attached observers, and ForceStepping keep the
// per-instruction path.
func (r *Runner) Run(s OpStream, h *power.Harvester) (res Result, err error) {
	if rs, ok := s.(RunStream); ok && !r.ForceStepping && h != nil &&
		!probe.Enabled(r.Obs) && !h.SamplingEnabled() {
		if plan, ok := h.Plan(); ok {
			return r.runSegments(rs, h, plan)
		}
	}
	// A stream left mid-position by a previous failed run (for example
	// after ErrNonTermination) must not silently execute only a suffix
	// on reuse: every run starts from the beginning, and a failed run
	// rewinds the stream again on the way out.
	s.Reset()
	defer func() {
		if err != nil {
			s.Reset()
		}
	}()
	// Accounting is window-local: each outage-to-outage window folds
	// into acc and flushes into b when the window closes (restore
	// complete, error, or stream end). The per-window sums are therefore
	// independent of where in the run the window sits — the property the
	// segment engine's window cache relies on for bit-exact replay.
	var b, acc energy.Breakdown
	flush := func() {
		b.Add(acc)
		acc = energy.Breakdown{}
	}
	var replays uint64
	dt := r.Model.CycleTime()
	window := 0.0 // non-termination budget, invariant across outages
	if h.Cap != nil {
		window = h.WindowEnergy()
	}
	lastLevel := 0
	activeCols := 0 // columns the most recent ACT latched
	active := probe.Enabled(r.Obs)

	// Initial charge from an empty (or partial) buffer.
	if active {
		r.Obs.OutageBegin(h.Now())
	}
	off, err := h.ChargeUntilOn(r.MaxChargeWait)
	if err != nil {
		return Result{Breakdown: b, Replays: replays}, err
	}
	b.OffLatency += off
	if active {
		r.Obs.OutageEnd(h.Now(), off)
	}

	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		// Price the instruction once per attempt loop; the stepping path
		// previously recomputed Energy/Backup up to three times per
		// retired instruction.
		ec, bk := r.Model.Energy(op), r.Model.Backup(op)
		e := ec + bk
		// Attempt until the instruction commits. Per the paper's EH-model
		// accounting, the re-execution of an interrupted instruction is
		// Dead energy ("repeating the last instruction on restart"), as
		// is the partial energy the failed attempt spent.
		retry := false
		for {
			frac := h.Draw(dt, e)
			if frac >= 1 {
				if retry {
					acc.DeadEnergy += ec
					acc.DeadLatency += dt
					replays++
				} else {
					acc.ComputeEnergy += ec
				}
				acc.BackupEnergy += bk
				acc.OnLatency += dt
				acc.Instructions++
				if active {
					r.Obs.InstrRetired(probe.Instr{
						T: h.Now(), Dur: dt, Kind: op.Kind, Gate: op.Gate,
						Tile:   -1,
						Energy: ec, Backup: bk,
						Replay: retry,
					})
				}
				break
			}
			retry = true
			// Outage mid-instruction: the partial work is Dead.
			acc.DeadEnergy += e * frac
			acc.DeadLatency += dt * frac
			acc.OnLatency += dt * frac
			acc.Restarts++
			if active {
				r.Obs.PulseInterrupted(probe.Interrupt{
					T: h.Now(), Frac: frac, Kind: op.Kind, Lost: e * frac,
				})
			}

			// Detect non-termination: even a full window plus one
			// cycle's harvest cannot pay for this instruction.
			if e > window+h.Src.Power(h.Now())*dt {
				flush()
				return Result{Breakdown: b, Replays: replays}, fmt.Errorf("%w (instruction needs %.3g J, window holds %.3g J)", ErrNonTermination, e, window)
			}

			// Recharge, then restore the active columns.
			if active {
				r.Obs.OutageBegin(h.Now())
			}
			off, err := h.ChargeUntilOn(r.MaxChargeWait)
			if err != nil {
				flush()
				return Result{Breakdown: b, Replays: replays}, err
			}
			acc.OffLatency += off
			if active {
				r.Obs.OutageEnd(h.Now(), off)
			}
			if err := r.restore(h, activeCols, dt, &acc); err != nil {
				flush()
				return Result{Breakdown: b, Replays: replays}, err
			}
			// Restore complete: the window closes here.
			flush()
		}
		if op.Kind == isa.KindAct {
			activeCols = op.ActCols
		}
		if lv := r.Model.Level(op); lv >= 0 && lv != lastLevel {
			acc.LevelSwitches++
			lastLevel = lv
		}
	}
	flush()
	return Result{Breakdown: b, Replays: replays, Completed: true}, nil
}

// restore pays the restart cost (re-issuing the stored ACT instruction);
// if even that triggers another outage, it recharges and retries.
func (r *Runner) restore(h *power.Harvester, activeCols int, dt float64, b *energy.Breakdown) error {
	e := r.Model.Restore(activeCols)
	active := probe.Enabled(r.Obs)
	var spentE, spentT float64
	for {
		frac := h.Draw(dt, e)
		b.RestoreEnergy += e * frac
		b.RestoreLatency += dt * frac
		b.OnLatency += dt * frac
		spentE += e * frac
		spentT += dt * frac
		if frac >= 1 {
			if active {
				r.Obs.Restored(probe.Restore{
					T: h.Now(), Dur: spentT, Cols: activeCols, Energy: spentE,
				})
			}
			return nil
		}
		if active {
			r.Obs.OutageBegin(h.Now())
		}
		off, err := h.ChargeUntilOn(r.MaxChargeWait)
		if err != nil {
			return err
		}
		b.OffLatency += off
		if active {
			r.Obs.OutageEnd(h.Now(), off)
		}
	}
}
