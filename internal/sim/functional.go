package sim

import (
	"errors"
	"fmt"

	"mouse/internal/array"
	"mouse/internal/controller"
	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/probe"
)

// MachineRunner executes a real program on the bit-accurate machine under
// harvested power. When the buffer cannot pay for the upcoming cycle, the
// runner injects a power failure at exactly the µ-phase where the energy
// ran out, reboots the controller through its restore protocol, and
// resumes — an end-to-end demonstration that computation survives
// arbitrary interruption (Section V).
//
// Fast/slow path selection: cycles that complete in full step through
// the machine with no Partial, so logic operations take the packed
// word-parallel truth-table engine (array.Tile.ExecLogicFull). Only a
// cycle that dies inside PhaseExecute carries a per-column pulse profile
// (see phaseFor) and drops to the scalar resistor-network path, which
// integrates the partial pulse cell by cell. The two paths are
// bit-identical for full pulses — fidelity tests run entire starved
// workloads both ways and require byte-identical results — so outage
// semantics are exactly the seed's while the common case runs 64
// columns per word operation. Setting Machine.ForceScalar pins the
// scalar path for differential tests and benchmarks.
type MachineRunner struct {
	C     *controller.Controller
	Model *energy.Model

	// MaxChargeWait bounds one recharge wait, in seconds.
	MaxChargeWait float64

	// Obs receives the run's event stream (and is lent to the machine
	// for per-tile write events while Run executes, unless the machine
	// already has its own observer). Nil or probe.Nop disables emission.
	Obs probe.Observer
}

// NewMachineRunner wraps a controller with the energy model for its
// machine's configuration.
func NewMachineRunner(c *controller.Controller) *MachineRunner {
	m := energy.NewModel(c.Machine().Cfg)
	// Price row transfers at the machine's actual row width rather than
	// the full-scale 1024-column default.
	if len(c.Machine().Tiles) > 0 {
		m.RowBits = c.Machine().Tiles[0].Cols()
	}
	return &MachineRunner{
		C:             c,
		Model:         m,
		MaxChargeWait: 24 * 3600,
	}
}

// opFor prices the upcoming instruction given current machine state.
func (r *MachineRunner) opFor(in isa.Instruction) energy.Op {
	actCols := 0
	if in.Kind == isa.KindAct {
		actCols = len(in.ActiveColumns())
		if in.Broadcast {
			actCols *= len(r.C.Machine().Tiles)
		}
	}
	return energy.OpOf(in, r.C.Machine().ActivePairs(), actCols)
}

// phaseFor maps the fraction of a cycle that completed before the outage
// to the controller µ-phase where execution stopped, with the array
// pulse-length fraction for mid-execute failures. The execute phase
// occupies the bulk of the cycle; the bookkeeping writes sit at the end
// (Section IV-B).
func phaseFor(frac float64) (controller.Phase, *array.Partial) {
	switch {
	case frac < 0.05:
		return controller.PhaseFetch, nil
	case frac < 0.85:
		pulse := (frac - 0.05) / 0.80
		return controller.PhaseExecute, &array.Partial{
			Columns: int(pulse * float64(isa.Cols)),
			Pulse:   func(int) float64 { return pulse },
		}
	case frac < 0.90:
		return controller.PhaseWriteActReg, nil
	case frac < 0.95:
		return controller.PhaseWritePC, nil
	default:
		return controller.PhaseCommitPC, nil
	}
}

// priced is one Op's cycle cost, cached per Run: compute energy, backup
// energy, and converter level.
type priced struct {
	compute, backup float64
	level           int
}

// opPricer caches the energy model's per-Op answers for the duration of
// one run. A program prices only a handful of distinct Ops (one per gate
// at the current activation width, plus the memory and ACT shapes), but
// the run loop consults the model for every instruction of every
// restart; hashing Ops through a map was itself a hot spot, so the cache
// is direct-indexed — one slot per gate keyed by the pair count, and one
// slot per remaining kind. Cached values are the Model's own outputs, so
// accounting stays bit-identical to calling the Model each cycle.
type opPricer struct {
	m *energy.Model

	logic      [mtj.NumGates]priced
	logicPairs [mtj.NumGates]int // -1 = empty

	preset      priced
	presetPairs int // -1 = empty

	act     priced
	actCols int // -1 = empty

	read, write, other       priced
	readOK, writeOK, otherOK bool
}

func newOpPricer(m *energy.Model) *opPricer {
	p := &opPricer{m: m, presetPairs: -1, actCols: -1}
	for i := range p.logicPairs {
		p.logicPairs[i] = -1
	}
	return p
}

func (p *opPricer) compute(op energy.Op) priced {
	return priced{
		compute: p.m.Energy(op),
		backup:  p.m.Backup(op),
		level:   p.m.Level(op),
	}
}

func (p *opPricer) price(op energy.Op) priced {
	switch op.Kind {
	case isa.KindLogic:
		if p.logicPairs[op.Gate] != op.ActivePairs {
			p.logic[op.Gate] = p.compute(op)
			p.logicPairs[op.Gate] = op.ActivePairs
		}
		return p.logic[op.Gate]
	case isa.KindPreset:
		if p.presetPairs != op.ActivePairs {
			p.preset = p.compute(op)
			p.presetPairs = op.ActivePairs
		}
		return p.preset
	case isa.KindAct:
		if p.actCols != op.ActCols {
			p.act = p.compute(op)
			p.actCols = op.ActCols
		}
		return p.act
	case isa.KindRead:
		if !p.readOK {
			p.read = p.compute(op)
			p.readOK = true
		}
		return p.read
	case isa.KindWrite:
		if !p.writeOK {
			p.write = p.compute(op)
			p.writeOK = true
		}
		return p.write
	default:
		// Every remaining kind prices as fetch-only with the common
		// backup cost and no array bias level.
		if !p.otherOK {
			p.other = p.compute(op)
			p.otherOK = true
		}
		return p.other
	}
}

// instrTile reports the tile an instruction addresses, or -1 for
// broadcast and tile-less operations (logic and preset fan out across
// every data tile).
func instrTile(in isa.Instruction) int {
	switch in.Kind {
	case isa.KindRead, isa.KindWrite:
		return int(in.Tile)
	case isa.KindAct:
		if !in.Broadcast {
			return int(in.Tile)
		}
	}
	return -1
}

// Run executes the program to completion under harvester h (or under
// continuous power if h is nil), returning the EH-model accounting.
func (r *MachineRunner) Run(h *power.Harvester) (Result, error) {
	var b energy.Breakdown
	var replays uint64
	dt := r.Model.CycleTime()
	lastLevel := 0
	pricer := newOpPricer(r.Model)
	active := probe.Enabled(r.Obs)
	now := 0.0 // continuous-power clock; h.Now() rules when h != nil

	// Lend the observer to the machine for per-tile write events, unless
	// the caller already wired one there.
	if active {
		if m := r.C.Machine(); m.Obs == nil {
			m.Obs = r.Obs
			defer func() { m.Obs = nil }()
		}
	}
	clock := func() float64 {
		if h != nil {
			return h.Now()
		}
		return now
	}

	var window float64 // non-termination budget, invariant across outages
	if h != nil {
		if active {
			r.Obs.OutageBegin(h.Now())
		}
		off, err := h.ChargeUntilOn(r.MaxChargeWait)
		if err != nil {
			return Result{Breakdown: b, Replays: replays}, err
		}
		b.OffLatency += off
		if active {
			r.Obs.OutageEnd(h.Now(), off)
		}
		// A successful charge means the harvester validated, so Cap is
		// non-nil.
		window = h.WindowEnergy()
	}

	retry := false
	for {
		in, more := r.C.Peek()
		if !more {
			return Result{Breakdown: b, Replays: replays, Completed: true}, nil
		}
		op := r.opFor(in)
		p := pricer.price(op)
		e := p.compute + p.backup

		frac := 1.0
		if h != nil {
			frac = h.Draw(dt, e)
		}
		if frac >= 1 {
			done, err := r.C.Step()
			if err != nil {
				return Result{Breakdown: b, Replays: replays}, err
			}
			if retry {
				// Re-execution after a restart is Dead work (the paper's
				// "repeating the last instruction on restart").
				b.DeadEnergy += p.compute
				b.DeadLatency += dt
				replays++
			} else {
				b.ComputeEnergy += p.compute
			}
			b.BackupEnergy += p.backup
			b.OnLatency += dt
			b.Instructions++
			if active {
				now += dt
				r.Obs.InstrRetired(probe.Instr{
					T: clock(), Dur: dt, Kind: in.Kind, Gate: in.Gate,
					Tile:   instrTile(in),
					Energy: p.compute, Backup: p.backup,
					Replay: retry,
				})
			}
			retry = false
			if p.level >= 0 && p.level != lastLevel {
				b.LevelSwitches++
				lastLevel = p.level
			}
			if done {
				return Result{Breakdown: b, Replays: replays, Completed: true}, nil
			}
			continue
		}

		// Outage mid-cycle: inject the failure at the matching µ-phase.
		ph, partial := phaseFor(frac)
		if err := r.C.StepWithFailure(ph, partial); !errors.Is(err, controller.ErrPowerFailure) {
			return Result{Breakdown: b, Replays: replays}, fmt.Errorf("sim: expected injected power failure, got %v", err)
		}
		retry = true
		b.DeadEnergy += e * frac
		b.DeadLatency += dt * frac
		b.OnLatency += dt * frac
		b.Restarts++
		if active {
			r.Obs.PulseInterrupted(probe.Interrupt{
				T: h.Now(), Frac: frac, Kind: in.Kind, Lost: e * frac,
			})
		}

		if e > window+h.Src.Power(h.Now())*dt {
			return Result{Breakdown: b, Replays: replays}, fmt.Errorf("%w (instruction needs %.3g J, window holds %.3g J)", ErrNonTermination, e, window)
		}

		r.C.PowerFail()
		if active {
			r.Obs.OutageBegin(h.Now())
		}
		off, err := h.ChargeUntilOn(r.MaxChargeWait)
		if err != nil {
			return Result{Breakdown: b, Replays: replays}, err
		}
		b.OffLatency += off
		if active {
			r.Obs.OutageEnd(h.Now(), off)
		}

		// Reboot: restore the column latches from the stored ACT.
		restoreCols := 0
		if act, ok := r.C.NV.Act(); ok {
			restoreCols = len(act.ActiveColumns())
			if act.Broadcast {
				restoreCols *= len(r.C.Machine().Tiles)
			}
		}
		re := r.Model.Restore(restoreCols)
		var spentE, spentT float64
		for {
			reFrac := h.Draw(dt, re)
			b.RestoreEnergy += re * reFrac
			b.RestoreLatency += dt * reFrac
			b.OnLatency += dt * reFrac
			spentE += re * reFrac
			spentT += dt * reFrac
			if reFrac >= 1 {
				break
			}
			// Even the restore ran out; recharge and retry (re-issuing
			// an ACT is itself idempotent).
			if active {
				r.Obs.OutageBegin(h.Now())
			}
			off, err := h.ChargeUntilOn(r.MaxChargeWait)
			if err != nil {
				return Result{Breakdown: b, Replays: replays}, err
			}
			b.OffLatency += off
			if active {
				r.Obs.OutageEnd(h.Now(), off)
			}
		}
		if active {
			r.Obs.Restored(probe.Restore{
				T: h.Now(), Dur: spentT, Cols: restoreCols, Energy: spentE,
			})
		}
		if err := r.C.Restart(); err != nil {
			return Result{Breakdown: b, Replays: replays}, err
		}
	}
}

// StreamFromProgram turns a concrete program into an OpStream by
// tracking the activation state analytically (without simulating cell
// contents): ACT instructions update the active set; logic and preset
// operations are priced at the resulting (tile, column) parallelism.
// nTiles is the machine's data-tile count.
func StreamFromProgram(p isa.Program, nTiles int) OpStream {
	return &programStream{p: p, nTiles: nTiles}
}

type programStream struct {
	p      isa.Program
	nTiles int
	pos    int
	pairs  int // current active (tile, column) pairs
}

func (s *programStream) Reset() { s.pos, s.pairs = 0, 0 }

func (s *programStream) Next() (energy.Op, bool) {
	if s.pos >= len(s.p) {
		return energy.Op{}, false
	}
	in := s.p[s.pos]
	s.pos++
	actCols := 0
	if in.Kind == isa.KindAct {
		actCols = len(in.ActiveColumns())
		if in.Broadcast {
			actCols *= s.nTiles
		}
		s.pairs = actCols
	}
	return energy.OpOf(in, s.pairs, actCols), true
}

// Runs implements RunStream by replaying a fresh clone of the stream —
// the activation tracking makes the op sequence stateful, so the
// encoding is derived from the same Next() the stepping path would see.
func (s *programStream) Runs() []energy.OpRun {
	clone := &programStream{p: s.p, nTiles: s.nTiles}
	var runs []energy.OpRun
	for {
		op, ok := clone.Next()
		if !ok {
			return runs
		}
		if n := len(runs); n > 0 && runs[n-1].Op == op {
			runs[n-1].Count++
			continue
		}
		runs = append(runs, energy.OpRun{Op: op, Count: 1})
	}
}
