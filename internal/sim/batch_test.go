package sim

import (
	"bytes"
	"testing"

	"mouse/internal/array"
	"mouse/internal/controller"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/probe"
)

// batchWorkload is a small program whose per-lane inputs (tile 0, rows
// 0 and 2) flow through every instruction kind: presets, all gate
// shapes, a buffer read, a rotated cross-tile write, and a narrowing
// activation.
func batchWorkload() BatchWorkload {
	prog := isa.Program{
		isa.ActRange(true, 0, 0, 8, 1),
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NAND2, []int{0, 2}, 1),
		isa.Preset(3, mtj.AP),
		isa.Logic(mtj.AND2, []int{0, 2}, 3),
		isa.Preset(5, mtj.P),
		isa.Logic(mtj.NOT, []int{2}, 5),
		isa.Read(0, 1),
		isa.WriteRot(1, 9, 3),
		isa.ActList(false, 0, []uint16{2, 5}),
		isa.Preset(7, mtj.P),
		isa.Logic(mtj.NOR2, []int{0, 2}, 7),
	}
	return BatchWorkload{
		Prog:  prog,
		Tiles: 2, Rows: 16, Cols: 8,
		Load: func(lane int, set func(tile, row, col, bit int)) error {
			for c := 0; c < 8; c++ {
				set(0, 0, c, lane>>(c%6)&1)
				set(0, 2, c, (lane+c)&1)
			}
			return nil
		},
	}
}

// sequentialLane runs one lane of the workload on the untouched scalar
// path: fresh machine, loader, controller, MachineRunner.
func sequentialLane(t *testing.T, cfg *mtj.Config, w BatchWorkload, lane int, h *power.Harvester) (Result, *array.Machine) {
	t.Helper()
	m := array.NewMachine(cfg, w.Tiles, w.Rows, w.Cols)
	err := w.Load(lane, func(tile, row, col, bit int) {
		m.Tiles[tile].SetBit(row, col, bit)
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewMachineRunner(controller.New(controller.ProgramStore(w.Prog), m)).Run(h)
	if err != nil {
		t.Fatal(err)
	}
	return res, m
}

func requireMachinesEqual(t *testing.T, lane int, want, got *array.Machine) {
	t.Helper()
	for ti := range want.Tiles {
		wt, gt := want.Tiles[ti], got.Tiles[ti]
		for r := 0; r < wt.Rows(); r++ {
			for c := 0; c < wt.Cols(); c++ {
				if wt.Bit(r, c) != gt.Bit(r, c) {
					t.Fatalf("lane %d: tile %d cell (%d, %d): sequential %d, batched %d",
						lane, ti, r, c, wt.Bit(r, c), gt.Bit(r, c))
				}
			}
		}
	}
	if !bytes.Equal(want.Buffer, got.Buffer) {
		t.Fatalf("lane %d: buffers differ: % x vs % x", lane, want.Buffer, got.Buffer)
	}
}

// TestRunnerBatchMatchesMachineRunner: on the fast path, every lane's
// Result must equal — float for float — a sequential
// MachineRunner.Run(nil) of that lane, and every visited machine must
// be byte-identical to the sequential lane's final state.
func TestRunnerBatchMatchesMachineRunner(t *testing.T) {
	cfg := mtj.ModernSTT()
	w := batchWorkload()
	r, err := NewRunnerBatch(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{1, 2, 17, 64} {
		visited := 0
		results, err := r.Run(lanes, &BatchRun{
			Visit: func(lane int, m *array.Machine) error {
				_, wantM := sequentialLane(t, cfg, w, lane, nil)
				requireMachinesEqual(t, lane, wantM, m)
				visited++
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if visited != lanes || len(results) != lanes {
			t.Fatalf("visited %d lanes, got %d results, want %d", visited, len(results), lanes)
		}
		for lane, res := range results {
			want, _ := sequentialLane(t, cfg, w, lane, nil)
			if res != want {
				t.Fatalf("lane %d: batched result %+v, sequential %+v", lane, res, want)
			}
		}
	}
}

// TestRunnerBatchArenaReuse: back-to-back Runs on the same runner must
// keep producing sequential-identical states (the arena reset restores
// the fresh-machine origin) and identical accounting (the priced base
// is cached).
func TestRunnerBatchArenaReuse(t *testing.T) {
	cfg := mtj.ModernSTT()
	w := batchWorkload()
	r, err := NewRunnerBatch(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	var first []Result
	for round := 0; round < 3; round++ {
		results, err := r.Run(64, &BatchRun{
			Visit: func(lane int, m *array.Machine) error {
				_, wantM := sequentialLane(t, cfg, w, lane, nil)
				requireMachinesEqual(t, lane, wantM, m)
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if round == 0 {
			first = results
			continue
		}
		for lane := range results {
			if results[lane] != first[lane] {
				t.Fatalf("round %d lane %d: result drifted: %+v vs %+v", round, lane, results[lane], first[lane])
			}
		}
	}
}

// TestRunnerBatchScalarFallback: lanes given a harvester run the real
// intermittent path — checkpoints, replays, outage accounting — and
// must match a direct MachineRunner run of the same lane under an
// identical harvester, state and Result alike.
func TestRunnerBatchScalarFallback(t *testing.T) {
	cfg := mtj.ModernSTT()
	w := batchWorkload()
	r, err := NewRunnerBatch(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	starved := func(int) *power.Harvester {
		return power.NewHarvester(power.Constant{W: 1e-6}, 2e-9, cfg.CapVMin, cfg.CapVMax)
	}
	const lanes = 5
	finals := make([]*array.Machine, lanes)
	results, err := r.Run(lanes, &BatchRun{
		Harvester: starved,
		Visit: func(lane int, m *array.Machine) error {
			finals[lane] = m
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sawOutage := false
	for lane := 0; lane < lanes; lane++ {
		want, wantM := sequentialLane(t, cfg, w, lane, starved(lane))
		if results[lane] != want {
			t.Fatalf("lane %d: fallback result %+v, direct %+v", lane, results[lane], want)
		}
		requireMachinesEqual(t, lane, wantM, finals[lane])
		if results[lane].Restarts > 0 {
			sawOutage = true
		}
	}
	if !sawOutage {
		t.Fatal("starved harvester produced no outages; fallback path untested")
	}
}

// TestRunnerBatchObserverFallback: a per-lane observer forces the
// scalar path and sees each lane's own event stream.
func TestRunnerBatchObserverFallback(t *testing.T) {
	cfg := mtj.ModernSTT()
	w := batchWorkload()
	r, err := NewRunnerBatch(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	const lanes = 3
	stats := make([]*probe.Stats, lanes)
	results, err := r.Run(lanes, &BatchRun{
		Observer: func(lane int) probe.Observer {
			stats[lane] = &probe.Stats{}
			return stats[lane]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < lanes; lane++ {
		if got := stats[lane].Section().Instructions; got != results[lane].Instructions {
			t.Fatalf("lane %d: observer saw %d instructions, result says %d", lane, got, results[lane].Instructions)
		}
		if results[lane].Instructions != uint64(len(w.Prog)) {
			t.Fatalf("lane %d: ran %d instructions, want %d", lane, results[lane].Instructions, len(w.Prog))
		}
	}
}

// TestRunnerBatchLaneBounds: lane counts outside [1, MaxLanes] are
// rejected.
func TestRunnerBatchLaneBounds(t *testing.T) {
	r, err := NewRunnerBatch(mtj.ModernSTT(), batchWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(0, nil); err == nil {
		t.Error("accepted 0 lanes")
	}
	if _, err := r.Run(array.MaxLanes+1, nil); err == nil {
		t.Error("accepted too many lanes")
	}
}
