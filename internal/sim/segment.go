package sim

import (
	"fmt"
	"math"

	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/power"
	"mouse/internal/probe"
)

// The analytic segment engine: the intermittent counterpart of the
// packed bit-plane and bit-sliced batch fast paths. For constant-power
// sources the entire outage protocol is closed-form arithmetic — every
// Draw, recharge, and restore is a function of the buffer voltage and
// per-run constants alone, never of the clock — so a run-length encoded
// stream can be retired window by window without stepping the
// harvester, and, once the execution reaches its periodic steady state,
// whole outage-to-outage windows replay from a cache in O(1).
//
// Float identity with the stepping Run is a hard requirement (the
// differential tests compare Result structs with ==), which dictates
// the design:
//
//   - The engine replays the stepping path's float operations exactly —
//     the same expressions on the same values in the same order — using
//     the pure helpers power.EnergyOf / EnergyAboveOf / VoltageAfterAdd
//     the Capacitor itself delegates to. Retiring a segment by
//     prefix-sum subtraction or multiplying a steady-state window by an
//     iteration count would be only approximately equal.
//   - Accounting is window-local (mirroring Run's acc/flush structure):
//     each window's sums start from zero, so a window's Breakdown
//     depends only on its entry state, not on its position in the run.
//     That is what makes a cached window bit-exact at every revisit.
//   - The steady-state detector keys windows on the exact entry state:
//     (run index, voltage bits, active columns, converter level). A
//     revisit of that tuple reproduces the identical window, so the
//     cached Breakdown, replay count, and exit state substitute for the
//     fold. The cache only records windows that open after a restore
//     (retry pending) and close inside the same run, and only applies
//     when the remaining run still contains the window's closing
//     outage; everything else folds fresh.
//   - When the buffer is pinned at VMax (the run's draw never exceeds
//     the VMax budget and the post-draw clamp writes back exactly
//     VMax), the voltage is stationary and the per-op sqrt/divide chain
//     is skipped outright; only the Breakdown adds remain, because
//     float sums are not associative and each op's add must happen
//     individually.
//
// The engine is written as a resumable per-lane state machine (segLane)
// rather than nested loops so that RunSweep can interleave several
// constant-power lanes in one pass. The voltage recurrence
// v' = sqrt(2*(0.5*C*v*v + de)/C) is a serial sqrt+divide dependency
// chain (~45 cycles of latency per retired op when folding fresh);
// round-robin stepping across independent lanes lets the out-of-order
// core overlap the chains, turning the fold latency-bound into
// throughput-bound — a ~4x gain on drain-dominated grids on top of the
// window cache, at identical per-lane arithmetic.
//
// The harvester is written back in bulk on exit: the buffer voltage is
// exact; the clock advances by OnLatency+OffLatency, which can differ
// from the stepped clock by the sub-cycle remainders of interrupted
// instructions (the Result itself carries no clock, so this does not
// affect accounting).

// segKey is a window's entry state. Windows are entered immediately
// after a restore completes, with the interrupted instruction's replay
// pending, so the run index plus these three state variables determine
// the entire window.
type segKey struct {
	ri    int
	vBits uint64
	cols  int
	level int
}

// segWindow is one fully folded outage-to-outage window: the
// instructions it retired, its Breakdown contribution, and the state it
// exits with (again post-restore, replay pending).
type segWindow struct {
	retired   int64
	sum       energy.Breakdown
	replays   uint64
	exitV     float64
	exitCols  int
	exitLevel int
}

// segLane is one constant-power execution in flight: a Runner's full
// intermittent-run state, advanced one retired instruction per step
// call. Run drives a single lane to completion; RunSweep round-robins
// several so their voltage chains overlap.
type segLane struct {
	idx int // position in the caller's harvester slice (RunSweep)

	r *Runner
	h *power.Harvester
	p power.ConstantPlan

	costs *energy.RunCosts

	// Sweep-wide constants.
	dt         float64 // Model.CycleTime()
	harvest    float64 // p.W*dt: h.Src.Power(t)*dt, t-independent
	window     float64 // p.WindowJ: the stepping path's h.WindowEnergy()
	stall      float64 // window+harvest: non-termination budget, stepping's association
	budgetVMax float64 // the stepping budget whenever the buffer sits at VMax

	// Stream position: runs[ri], used instructions retired from it.
	ri   int
	used int64

	// Per-run constants, refreshed by enterRun (count and actCols are
	// cached off the OpRun so the hot path never loads the run struct).
	count     int64
	ec, bk, e float64
	lv        int
	actCols   int
	isAct     bool
	canStall  bool // e > stall precomputed: stepping's comparison, hoisted
	pinned    bool // VMax is a fixed point of this run's draw

	// Machine state.
	v           float64
	cols, level int
	replays     uint64

	// Window-local accounting, exactly as in the stepping Run: acc
	// flushes into b at window close, error, and stream end.
	b, acc energy.Breakdown

	cache       map[segKey]segWindow
	restoreCost map[int]float64 // Model.Restore front-cache by cols

	// Recording state for the currently open window. Only windows that
	// open post-restore are recordable; the first window (fresh start)
	// and any window that crosses a run boundary fold fresh.
	recordable bool
	wKey       segKey
	wRetired   int64
	wReplays   uint64

	res  Result
	err  error
	done bool
}

// newSegLane validates the harvester and performs the initial charge.
// The lane may come back already done (charge error). The caller
// precosts the stream once — sweeps share the arrays across lanes.
func newSegLane(r *Runner, h *power.Harvester, p power.ConstantPlan, costs *energy.RunCosts) *segLane {
	dt := r.Model.CycleTime()
	harvest := p.W * dt
	ls := &segLane{
		r: r, h: h, p: p, costs: costs,
		dt: dt, harvest: harvest,
		window:      p.WindowJ,
		stall:       p.WindowJ + harvest,
		budgetVMax:  power.EnergyAboveOf(p.C, p.VMax, p.VOff) + harvest,
		v:           h.Cap.Voltage(),
		cache:       make(map[segKey]segWindow),
		restoreCost: make(map[int]float64),
	}

	// Initial charge from an empty (or partial) buffer.
	offDt, charged, cerr := p.ChargeTime(power.EnergyOf(p.C, ls.v), r.MaxChargeWait)
	if cerr != nil {
		ls.finish(cerr, false)
		return ls
	}
	if charged {
		ls.v = p.VOn
	}
	ls.b.OffLatency += offDt

	if len(costs.Runs) == 0 {
		ls.finish(nil, true)
		return ls
	}
	ls.enterRun()
	return ls
}

// enterRun refreshes the per-run constants for runs[ri].
func (ls *segLane) enterRun() {
	run := ls.costs.Runs[ls.ri]
	ls.count = run.Count
	ls.ec, ls.bk = ls.costs.Compute[ls.ri], ls.costs.Backup[ls.ri]
	ls.e = ls.costs.Total[ls.ri]
	ls.lv = ls.costs.Level[ls.ri]
	ls.isAct = run.Op.Kind == isa.KindAct
	ls.actCols = run.Op.ActCols
	ls.canStall = ls.e > ls.stall
	// Pinned-state detection: when the buffer sits exactly at VMax and
	// this run's instruction both fits the VMax budget and leaves the
	// post-draw voltage at or above VMax (so the clamp writes back
	// exactly VMax), every further op of the run is a frac==1 commit
	// that does not move the voltage. The expression below is the
	// stepping path's own update evaluated once — if its result clamps
	// to VMax, so does every per-op evaluation, bit for bit.
	ls.pinned = (ls.e <= ls.budgetVMax || ls.e <= 0) &&
		power.VoltageAfterAdd(ls.p.C, ls.p.VMax, ls.harvest-ls.e) >= ls.p.VMax
	ls.used = 0
}

// flush folds the open window's accrual into the run total.
func (ls *segLane) flush() {
	ls.b.Add(ls.acc)
	ls.acc = energy.Breakdown{}
}

// finish closes the lane: flush, build the Result, and write the
// harvester back so callers observe the same final buffer voltage as
// stepping (the clock advances in bulk).
func (ls *segLane) finish(err error, completed bool) {
	ls.flush()
	ls.res = Result{Breakdown: ls.b, Replays: ls.replays, Completed: completed}
	ls.err = err
	ls.done = true
	ls.h.Cap.SetVoltage(ls.v)
	ls.h.AdvanceClock(ls.b.OnLatency + ls.b.OffLatency)
}

// step retires at least one instruction (replaying through any outages
// it hits) or finishes the lane; it reports whether the lane still has
// work. One call never spans an outage boundary mid-instruction, so
// interleaved lanes stay independent.
func (ls *segLane) step() bool {
	if ls.done {
		return false
	}

	// Bulk-commit a pinned tail: the voltage, columns, and level are all
	// stationary past the run's first retired op, so the only per-op
	// work bit-identity still requires is the Breakdown accumulation
	// itself (the sqrt/divide voltage chain is gone).
	if ls.pinned && ls.used > 0 && ls.v == ls.p.VMax {
		rem := ls.count - ls.used
		for j := int64(0); j < rem; j++ {
			ls.acc.ComputeEnergy += ls.ec
			ls.acc.BackupEnergy += ls.bk
			ls.acc.OnLatency += ls.dt
		}
		ls.acc.Instructions += uint64(rem)
		ls.wRetired += rem
		return ls.advanceRun()
	}

	// Fast path: the overwhelmingly common case is a plain commit with
	// no outage — h.Draw(dt, e) inlined over the local voltage.
	budget := power.EnergyAboveOf(ls.p.C, ls.v, ls.p.VOff) + ls.harvest
	if ls.e <= budget || ls.e <= 0 {
		v := power.VoltageAfterAdd(ls.p.C, ls.v, ls.harvest-ls.e)
		if v > ls.p.VMax {
			v = ls.p.VMax
		}
		ls.v = v
		ls.acc.ComputeEnergy += ls.ec
		ls.acc.BackupEnergy += ls.bk
		ls.acc.OnLatency += ls.dt
		ls.acc.Instructions++
		ls.wRetired++
		return ls.commitAdvance()
	}
	return ls.stepOutage()
}

// stepOutage is the slow path: the pending instruction outages at the
// current voltage. It replays the stepping path's outage protocol —
// partial accrual, recharge, restore (with window close and cache
// chaining) — until the instruction finally commits or the lane errors.
func (ls *segLane) stepOutage() bool {
	retry := false
	for {
		// h.Draw(dt, e), inlined over the local voltage.
		budget := power.EnergyAboveOf(ls.p.C, ls.v, ls.p.VOff) + ls.harvest
		var frac float64
		if ls.e <= budget || ls.e <= 0 {
			v := power.VoltageAfterAdd(ls.p.C, ls.v, ls.harvest-ls.e)
			if v > ls.p.VMax {
				v = ls.p.VMax
			}
			ls.v = v
			frac = 1.0
		} else {
			// Outage: the buffer pins at VOff. frac can still round up
			// to exactly 1.0, in which case the stepping path commits
			// the instruction with the buffer at VOff — the branch
			// below reproduces that.
			frac = budget / ls.e
			ls.v = ls.p.VOff
		}
		if frac >= 1 {
			if retry {
				ls.acc.DeadEnergy += ls.ec
				ls.acc.DeadLatency += ls.dt
				ls.replays++
				ls.wReplays++
			} else {
				ls.acc.ComputeEnergy += ls.ec
			}
			ls.acc.BackupEnergy += ls.bk
			ls.acc.OnLatency += ls.dt
			ls.acc.Instructions++
			ls.wRetired++
			break
		}
		retry = true
		ls.acc.DeadEnergy += ls.e * frac
		ls.acc.DeadLatency += ls.dt * frac
		ls.acc.OnLatency += ls.dt * frac
		ls.acc.Restarts++

		if ls.canStall {
			ls.finish(fmt.Errorf("%w (instruction needs %.3g J, window holds %.3g J)", ErrNonTermination, ls.e, ls.window), false)
			return false
		}

		// h.ChargeUntilOn, closed form.
		if !ls.recharge() {
			return false
		}

		// r.restore, inlined: pay the re-activation cost, recharging
		// through any further outages.
		rc, ok := ls.restoreCost[ls.cols]
		if !ok {
			rc = ls.r.Model.Restore(ls.cols)
			ls.restoreCost[ls.cols] = rc
		}
		for {
			budget := power.EnergyAboveOf(ls.p.C, ls.v, ls.p.VOff) + ls.harvest
			var rfrac float64
			if rc <= budget || rc <= 0 {
				v := power.VoltageAfterAdd(ls.p.C, ls.v, ls.harvest-rc)
				if v > ls.p.VMax {
					v = ls.p.VMax
				}
				ls.v = v
				rfrac = 1.0
			} else {
				rfrac = budget / rc
				ls.v = ls.p.VOff
			}
			ls.acc.RestoreEnergy += rc * rfrac
			ls.acc.RestoreLatency += ls.dt * rfrac
			ls.acc.OnLatency += ls.dt * rfrac
			if rfrac >= 1 {
				break
			}
			if !ls.recharge() {
				return false
			}
		}

		// Restore complete: the window closes here. Record it if it
		// opened post-restore and stayed inside this run.
		if ls.recordable && ls.wKey.ri == ls.ri {
			ls.cache[ls.wKey] = segWindow{
				retired: ls.wRetired, sum: ls.acc, replays: ls.wReplays,
				exitV: ls.v, exitCols: ls.cols, exitLevel: ls.level,
			}
		}
		ls.flush()

		// Steady state: chain any cached windows that fit in the
		// remainder of this run. Each application retires a whole
		// outage-to-outage window in O(1).
		for {
			k := segKey{ri: ls.ri, vBits: math.Float64bits(ls.v), cols: ls.cols, level: ls.level}
			w, hit := ls.cache[k]
			if !hit || ls.used+w.retired >= ls.count {
				break
			}
			ls.b.Add(w.sum)
			ls.replays += w.replays
			ls.v, ls.cols, ls.level = w.exitV, w.exitCols, w.exitLevel
			ls.used += w.retired
		}

		// The next window opens here, replay pending.
		ls.wKey = segKey{ri: ls.ri, vBits: math.Float64bits(ls.v), cols: ls.cols, level: ls.level}
		ls.recordable = true
		ls.wRetired, ls.wReplays = 0, 0
	}
	return ls.commitAdvance()
}

// commitAdvance applies the post-commit state updates (ACT column
// latch, converter level switch) and moves to the next instruction.
func (ls *segLane) commitAdvance() bool {
	if ls.isAct {
		ls.cols = ls.actCols
	}
	if ls.lv >= 0 && ls.lv != ls.level {
		ls.acc.LevelSwitches++
		ls.level = ls.lv
	}
	ls.used++
	if ls.used >= ls.count {
		return ls.advanceRun()
	}
	return true
}

// recharge is the closed-form h.ChargeUntilOn; it reports false after
// finishing the lane on a charge error.
func (ls *segLane) recharge() bool {
	offDt, charged, cerr := ls.p.ChargeTime(power.EnergyOf(ls.p.C, ls.v), ls.r.MaxChargeWait)
	if cerr != nil {
		ls.finish(cerr, false)
		return false
	}
	if charged {
		ls.v = ls.p.VOn
	}
	ls.acc.OffLatency += offDt
	return true
}

// advanceRun moves to the next run, finishing the lane at stream end.
func (ls *segLane) advanceRun() bool {
	ls.ri++
	if ls.ri >= len(ls.costs.Runs) {
		ls.finish(nil, true)
		return false
	}
	ls.enterRun()
	return true
}

// runSegments is Run's analytic fast path. Eligibility (checked by the
// caller): the stream is a RunStream, the source is constant with a
// valid plan, no observer is attached, no voltage sampling, and
// ForceStepping is off.
func (r *Runner) runSegments(s RunStream, h *power.Harvester, p power.ConstantPlan) (Result, error) {
	// Parity with the stepping path's entry/exit stream contract: start
	// from the beginning. The engine reads Runs() instead of Next(), so
	// the stream stays rewound rather than exhausted.
	s.Reset()
	if err := h.Validate(); err != nil {
		return Result{}, err
	}
	ls := newSegLane(r, h, p, energy.PrecostRuns(r.Model, s.Runs()))
	for ls.step() {
	}
	return ls.res, ls.err
}

// RunSweep executes the same stream once per harvester — the shape of
// every power-grid experiment — and returns the per-harvester Results
// and errors, each bit-identical to the corresponding r.Run(s, hs[i])
// call in isolation.
//
// Lanes that qualify for the segment engine (RunStream, constant
// source, no observer or sampling, ForceStepping off) share one
// precosting pass and advance round-robin, one retired instruction per
// turn, so their serial sqrt/divide voltage chains overlap in the
// out-of-order core: the sweep folds at divider-throughput instead of
// chain-latency. Everything else falls back to sequential r.Run calls
// with unchanged semantics.
func (r *Runner) RunSweep(s OpStream, hs []*power.Harvester) ([]Result, []error) {
	results := make([]Result, len(hs))
	errs := make([]error, len(hs))

	var lanes []*segLane
	var rest []int
	rs, streamOK := s.(RunStream)
	eligible := streamOK && !r.ForceStepping && !probe.Enabled(r.Obs)
	var costs *energy.RunCosts
	if eligible {
		rs.Reset()
		costs = energy.PrecostRuns(r.Model, rs.Runs())
	}
	for i, h := range hs {
		if eligible && h != nil && !h.SamplingEnabled() {
			if plan, ok := h.Plan(); ok {
				if err := h.Validate(); err != nil {
					errs[i] = err
					continue
				}
				ls := newSegLane(r, h, plan, costs)
				ls.idx = i
				lanes = append(lanes, ls)
				continue
			}
		}
		rest = append(rest, i)
	}

	// Compaction below reorders the active set in place, so it works on
	// a copy; lanes keeps the finished order for the result copy-out.
	active := append([]*segLane(nil), lanes...)
	for len(active) > 0 {
		n := 0
		for _, ls := range active {
			if ls.step() {
				active[n] = ls
				n++
			}
		}
		active = active[:n]
	}
	for _, ls := range lanes {
		results[ls.idx], errs[ls.idx] = ls.res, ls.err
	}
	for _, i := range rest {
		results[i], errs[i] = r.Run(s, hs[i])
	}
	return results, errs
}
