package sim

import (
	"testing"

	"mouse/internal/array"
	"mouse/internal/controller"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/power"
)

// funcProgram builds a program exercising all instruction kinds whose
// results land in deterministic cells.
func funcProgram() isa.Program {
	return isa.Program{
		isa.ActRange(true, 0, 0, 4, 1),
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NAND2, []int{0, 2}, 1), // NAND of zeros = 1
		isa.Preset(3, mtj.AP),
		isa.Logic(mtj.AND2, []int{0, 2}, 3), // AND of zeros = 0
		isa.Preset(5, mtj.P),
		isa.Logic(mtj.NOT, []int{1 + 1}, 5), // NOT row2(=0) = 1... row 2 even
		isa.Read(0, 1),
		isa.Write(1, 9),
		isa.ActList(false, 0, []uint16{2}),
		isa.Preset(7, mtj.P),
		isa.Logic(mtj.NOR2, []int{0, 2}, 7), // NOR(0,0)=1 in tile0 col2 only
	}
}

func funcRig(cfg *mtj.Config) (*controller.Controller, *array.Machine) {
	m := array.NewMachine(cfg, 2, 16, 8)
	c := controller.New(controller.ProgramStore(funcProgram()), m)
	return c, m
}

func snapshot(m *array.Machine) []int {
	var out []int
	for _, t := range m.Tiles {
		for r := 0; r < t.Rows(); r++ {
			for c := 0; c < t.Cols(); c++ {
				out = append(out, t.Bit(r, c))
			}
		}
	}
	return out
}

func TestMachineRunnerContinuous(t *testing.T) {
	cfg := mtj.ModernSTT()
	c, m := funcRig(cfg)
	r := NewMachineRunner(c)
	res, err := r.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Instructions != uint64(len(funcProgram())) {
		t.Fatalf("run incomplete: %+v", res.Breakdown)
	}
	if m.Tiles[0].Bit(1, 0) != 1 { // NAND(0,0)
		t.Errorf("NAND result missing")
	}
	if m.Tiles[1].Bit(9, 0) != 1 { // copied row
		t.Errorf("copy missing")
	}
	if m.Tiles[0].Bit(7, 2) != 1 || m.Tiles[0].Bit(7, 0) != 0 {
		t.Errorf("narrowed NOR wrong")
	}
	if res.Restarts != 0 || res.DeadEnergy != 0 {
		t.Errorf("continuous run recorded outages")
	}
}

// TestMachineRunnerIntermittentMatchesContinuous is the end-to-end
// guarantee: under a starved supply that forces outages at
// energy-determined µ-phases, the final non-volatile state is identical
// to the continuous-power run.
func TestMachineRunnerIntermittentMatchesContinuous(t *testing.T) {
	cfg := mtj.ModernSTT()
	refC, refM := funcRig(cfg)
	if _, err := NewMachineRunner(refC).Run(nil); err != nil {
		t.Fatal(err)
	}
	want := snapshot(refM)

	c, m := funcRig(cfg)
	r := NewMachineRunner(c)
	// Shrink the window so outages strike mid-program: use a tiny
	// dedicated capacitor barely above per-instruction cost.
	h := power.NewHarvester(power.Constant{W: 1e-6}, 2e-9, cfg.CapVMin, cfg.CapVMax)
	res, err := r.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("intermittent run incomplete")
	}
	got := snapshot(m)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("state diverged at cell %d (restarts=%d)", i, res.Restarts)
		}
	}
	if res.Restarts == 0 {
		t.Skipf("no restarts triggered; tighten the energy window") // should not happen
	}
	if res.DeadEnergy <= 0 || res.RestoreEnergy <= 0 {
		t.Errorf("restarting run must record dead and restore costs: %+v", res.Breakdown)
	}
	if res.OffLatency <= 0 {
		t.Errorf("no charging time recorded")
	}
}

func TestMachineRunnerSweepManyWindows(t *testing.T) {
	// Sweep capacitor sizes so outages land at many different µ-phases
	// and instruction boundaries; every run must converge to the same
	// final state.
	cfg := mtj.ModernSTT()
	refC, refM := funcRig(cfg)
	if _, err := NewMachineRunner(refC).Run(nil); err != nil {
		t.Fatal(err)
	}
	want := snapshot(refM)

	for _, capF := range []float64{1.5e-9, 2e-9, 3e-9, 5e-9, 8e-9, 2e-8} {
		c, m := funcRig(cfg)
		r := NewMachineRunner(c)
		h := power.NewHarvester(power.Constant{W: 2e-6}, capF, cfg.CapVMin, cfg.CapVMax)
		res, err := r.Run(h)
		if err != nil {
			t.Fatalf("cap %g: %v", capF, err)
		}
		got := snapshot(m)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cap %g: state diverged at cell %d (restarts=%d)", capF, i, res.Restarts)
			}
		}
	}
}

func TestMachineRunnerNonTermination(t *testing.T) {
	cfg := mtj.ModernSTT()
	c, _ := funcRig(cfg)
	r := NewMachineRunner(c)
	// A capacitor so small that not even one instruction fits.
	h := power.NewHarvester(power.Constant{W: 1e-9}, 1e-12, cfg.CapVMin, cfg.CapVMax)
	if _, err := r.Run(h); err == nil {
		t.Fatalf("expected non-termination or charge failure")
	}
}

func TestPhaseForMapping(t *testing.T) {
	cases := []struct {
		frac float64
		want controller.Phase
	}{
		{0.0, controller.PhaseFetch},
		{0.04, controller.PhaseFetch},
		{0.5, controller.PhaseExecute},
		{0.86, controller.PhaseWriteActReg},
		{0.92, controller.PhaseWritePC},
		{0.99, controller.PhaseCommitPC},
	}
	for _, c := range cases {
		got, _ := phaseFor(c.frac)
		if got != c.want {
			t.Errorf("phaseFor(%g) = %v, want %v", c.frac, got, c.want)
		}
	}
	_, partial := phaseFor(0.5)
	if partial == nil || partial.Pulse == nil {
		t.Fatalf("execute-phase interrupt missing pulse profile")
	}
	if p := partial.Pulse(0); p <= 0 || p >= 1 {
		t.Errorf("pulse fraction %g out of (0,1)", p)
	}
}
