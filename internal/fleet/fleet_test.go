package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mouse/internal/workload"
)

// quickConfig is a continuous-power fleet that never stalls or lingers:
// the fast default for tests that don't exercise the energy model.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Devices = 2
	cfg.Mode = Continuous
	cfg.BatchLinger = 0
	return cfg
}

func newFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)
	return f
}

func TestConfigValidation(t *testing.T) {
	mut := map[string]func(*Config){
		"no devices":     func(c *Config) { c.Devices = 0 },
		"no queue":       func(c *Config) { c.QueueDepth = 0 },
		"bad mode":       func(c *Config) { c.Mode = "solar" },
		"no capacitance": func(c *Config) { c.CapacitanceF = 0 },
		"window":         func(c *Config) { c.VOn = c.VOff },
		"negative cost":  func(c *Config) { c.EnergyPerSampleJ = -1 },
		"no harvest":     func(c *Config) { c.HarvestW = 0 },
		"bad workload":   func(c *Config) { c.Workloads = []string{"frobnicate"} },
		"dup workload":   func(c *Config) { c.Workloads = []string{"svm-adult", "svm-adult"} },
	}
	for name, fn := range mut {
		cfg := DefaultConfig()
		fn(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestRankByCharge(t *testing.T) {
	cases := []struct {
		avail []float64
		want  []int
	}{
		{[]float64{1, 3, 2}, []int{1, 2, 0}},
		{[]float64{5}, []int{0}},
		{[]float64{2, 2, 2}, []int{0, 1, 2}}, // ties keep index order: deterministic
		{[]float64{0, 0, 7, 0}, []int{2, 0, 1, 3}},
	}
	for _, c := range cases {
		got := rankByCharge(c.avail)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("rankByCharge(%v) = %v, want %v", c.avail, got, c.want)
				break
			}
		}
	}
}

// TestInferMatchesOffline: for both power modes and every hot workload,
// predictions served through the fleet's batcher, scheduler, and device
// engines must be bit-identical to a locally built batch classifier.
func TestInferMatchesOffline(t *testing.T) {
	for _, mode := range []PowerMode{Continuous, Harvested} {
		cfg := quickConfig()
		cfg.Mode = mode
		if mode == Harvested {
			cfg.HarvestW = 0.5 // µs recharge stalls
			cfg.EnergyPerSampleJ = 1e-6
			cfg.BatchLinger = 100 * time.Microsecond
		}
		f := newFleet(t, cfg)
		for _, hb := range workload.HotBatches() {
			offline, err := hb.NewBatched()
			if err != nil {
				t.Fatal(err)
			}
			samples := hb.Samples(16)
			for _, chunk := range [][][]int{samples[:7], samples[7:16]} {
				want, err := offline(chunk)
				if err != nil {
					t.Fatal(err)
				}
				got, err := f.Infer(context.Background(), hb.Name, chunk)
				if err != nil {
					t.Fatalf("%s/%s: %v", mode, hb.Name, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%s/%s sample %d: fleet %d, offline %d", mode, hb.Name, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestInferValidation(t *testing.T) {
	f := newFleet(t, quickConfig())
	hb, err := workload.HotBatchByName("svm-adult")
	if err != nil {
		t.Fatal(err)
	}
	good := hb.Samples(1)[0]
	cases := map[string]struct {
		wl      string
		samples [][]int
	}{
		"unknown workload": {"frobnicate", [][]int{good}},
		"empty batch":      {"svm-adult", nil},
		"oversized batch":  {"svm-adult", make([][]int, hb.Capacity+1)},
		"wrong features":   {"svm-adult", [][]int{append(append([]int{}, good...), 1)}},
	}
	for name, c := range cases {
		if _, err := f.Infer(context.Background(), c.wl, c.samples); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", name, err)
		}
	}
}

// TestPlacementPrefersCharged drains two of three capacitors by hand and
// checks the harvested scheduler ranks the full device first, while the
// continuous scheduler rotates.
func TestPlacementPrefersCharged(t *testing.T) {
	cfg := quickConfig()
	cfg.Devices = 3
	cfg.Mode = Harvested
	cfg.HarvestW = 1e-12 // too slow to recharge within the test
	f := newFleet(t, cfg)
	for _, i := range []int{0, 2} {
		d := f.devices[i]
		d.mu.Lock()
		d.storedJ = f.floorJ()
		d.lastCredit = time.Now()
		d.mu.Unlock()
	}
	if order := f.placement(); order[0] != 1 {
		t.Errorf("harvested placement %v, want device 1 (the only charged one) first", order)
	}

	cont := newFleet(t, quickConfig())
	first := cont.placement()
	second := cont.placement()
	if first[0] == second[0] {
		t.Errorf("continuous placement did not rotate: %v then %v", first, second)
	}
}

// TestBatchCoalescing: with a generous linger window, 8 concurrent
// single-sample requests must share replays instead of dispatching 8
// batches.
func TestBatchCoalescing(t *testing.T) {
	cfg := quickConfig()
	cfg.Devices = 1
	cfg.BatchLinger = 250 * time.Millisecond
	cfg.Workloads = []string{"svm-adult"}
	f := newFleet(t, cfg)
	hb, err := workload.HotBatchByName("svm-adult")
	if err != nil {
		t.Fatal(err)
	}
	samples := hb.Samples(8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := f.Infer(context.Background(), "svm-adult", samples[i:i+1]); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if got := f.BatchedSamples(); got != 8 {
		t.Errorf("BatchedSamples = %d, want 8", got)
	}
	if got := f.Batches(); got >= 8 {
		t.Errorf("dispatched %d batches for 8 lingering requests, want coalescing", got)
	}
	if got := f.DeviceServed(0); got != 8 {
		t.Errorf("DeviceServed(0) = %d, want 8", got)
	}
}

// TestHarvestedStallRecordsOutage: a draw bigger than the capacitor
// window must stall as a probe-visible outage and land the charge near
// the floor.
func TestHarvestedStallRecordsOutage(t *testing.T) {
	cfg := quickConfig()
	cfg.Devices = 1
	cfg.Mode = Harvested
	cfg.HarvestW = 0.5
	cfg.EnergyPerSampleJ = 2e-6 // one sample costs ~3x the 0.66 µJ window
	cfg.Workloads = []string{"svm-adult"}
	f := newFleet(t, cfg)
	hb, err := workload.HotBatchByName("svm-adult")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Infer(context.Background(), "svm-adult", hb.Samples(1)); err != nil {
		t.Fatal(err)
	}
	sec := f.DeviceStats()[0].Section()
	if sec.Outages < 1 {
		t.Errorf("over-window draw recorded %d outages, want >= 1", sec.Outages)
	}
	if sec.OutageSeconds <= 0 {
		t.Errorf("outage seconds %g, want > 0", sec.OutageSeconds)
	}
	if sec.VoltageMin < cfg.VOff-1e-9 || sec.VoltageMin >= sec.VoltageMax {
		t.Errorf("voltage excursion [%g, %g] outside capacitor window [%g, %g]",
			sec.VoltageMin, sec.VoltageMax, cfg.VOff, cfg.VOn)
	}
	j, v := f.DeviceCharge(0)
	if j > f.fullJ() || v > cfg.VOn+1e-9 {
		t.Errorf("charge %g J / %g V above the full window", j, v)
	}
}

// TestQueueFullRejects starves a single device so the pipeline backs up
// into the depth-1 admission queue and a fresh request bounces with
// OverloadedError.
func TestQueueFullRejects(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Devices = 1
	cfg.QueueDepth = 1
	cfg.BatchLinger = 0
	cfg.HarvestW = 1e-9
	cfg.EnergyPerSampleJ = 1 // the first batch stalls the device for eons
	cfg.Workloads = []string{"svm-adult"}
	f := newFleet(t, cfg)
	hb, err := workload.HotBatchByName("svm-adult")
	if err != nil {
		t.Fatal(err)
	}
	sample := hb.Samples(1)

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		_, err := f.Infer(ctx, "svm-adult", sample)
		cancel()
		var oe *OverloadedError
		if errors.As(err, &oe) {
			if !errors.Is(err, ErrOverloaded) {
				t.Error("OverloadedError does not match the ErrOverloaded sentinel")
			}
			if oe.Workload != "svm-adult" || oe.RetryAfter <= 0 {
				t.Errorf("rejection: %+v", oe)
			}
			if f.Rejected() == 0 {
				t.Error("rejection not counted")
			}
			return
		}
		// context.DeadlineExceeded: the request was admitted and is now
		// wedged somewhere in the stalled pipeline — keep filling.
	}
	t.Fatal("starved depth-1 fleet never rejected a request")
}

// TestStopFailsInflight: Stop must wake a request stalled mid-recharge
// with ErrStopped, and later Infers must refuse immediately.
func TestStopFailsInflight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Devices = 1
	cfg.BatchLinger = 0
	cfg.HarvestW = 1e-9
	cfg.EnergyPerSampleJ = 1
	cfg.Workloads = []string{"svm-adult"}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := workload.HotBatchByName("svm-adult")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := f.Infer(context.Background(), "svm-adult", hb.Samples(1))
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the stall
	f.Stop()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrStopped) {
			t.Errorf("in-flight request got %v, want ErrStopped", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight request still blocked after Stop")
	}
	if _, err := f.Infer(context.Background(), "svm-adult", hb.Samples(1)); !errors.Is(err, ErrStopped) {
		t.Errorf("post-Stop Infer got %v, want ErrStopped", err)
	}
	f.Stop() // idempotent
}

func TestIntrospection(t *testing.T) {
	f := newFleet(t, quickConfig())
	infos := f.Workloads()
	if len(infos) != 2 || infos[0].Name != "bnn-hidden16" || infos[1].Name != "svm-adult" {
		t.Fatalf("Workloads() = %+v, want both hot workloads sorted by name", infos)
	}
	for _, wi := range infos {
		if wi.Capacity <= 0 || wi.LaneWidth <= 0 {
			t.Errorf("workload %s: bad geometry %+v", wi.Name, wi)
		}
	}
	if !f.HasWorkload("svm-adult") || f.HasWorkload("frobnicate") {
		t.Error("HasWorkload misreports")
	}
	if f.Devices() != 2 || f.QueueDepth("svm-adult") != 0 || f.QueueDepth("frobnicate") != 0 {
		t.Error("introspection misreports an idle fleet")
	}
	j, v := f.DeviceCharge(0)
	if j != f.fullJ() || v != f.cfg.VOn {
		t.Errorf("continuous device charge %g J / %g V, want the full window", j, v)
	}
}
