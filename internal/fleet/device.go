package fleet

import (
	"sync"
	"sync/atomic"
	"time"

	"mouse/internal/power"
	"mouse/internal/probe"
	"mouse/internal/workload"
)

// Device is one simulated MOUSE device: a single-slot batch inbox, a
// lazily built batch engine per workload, a capacitor state-of-charge,
// and a probe.Stats shard recording its outages and voltage excursions.
// All engine access happens on the device goroutine; the charge fields
// are mutex-guarded because the scheduler reads them from the batcher
// goroutines.
type Device struct {
	id      int
	f       *Fleet
	in      chan *batch
	stats   *probe.Stats
	served  atomic.Uint64
	engines map[string]workload.Classifier

	mu         sync.Mutex
	storedJ    float64
	lastCredit time.Time
}

// floorJ and fullJ are the capacitor's usable-energy bounds.
func (f *Fleet) floorJ() float64 { return power.EnergyOf(f.cfg.CapacitanceF, f.cfg.VOff) }
func (f *Fleet) fullJ() float64  { return power.EnergyOf(f.cfg.CapacitanceF, f.cfg.VOn) }

func newDevice(f *Fleet, id int) *Device {
	d := &Device{
		id:      id,
		f:       f,
		in:      make(chan *batch, 1),
		stats:   &probe.Stats{},
		engines: map[string]workload.Classifier{},
		storedJ: f.fullJ(),
	}
	d.lastCredit = f.start
	d.stats.VoltageSample(0, f.cfg.VOn)
	return d
}

// run is the device goroutine: execute batches until the fleet stops,
// then fail whatever is still in the inbox.
func (d *Device) run() {
	defer d.f.wg.Done()
	for {
		select {
		case b := <-d.in:
			d.exec(b)
		case <-d.f.ctx.Done():
			for {
				select {
				case b := <-d.in:
					b.fail(ErrStopped)
				default:
					return
				}
			}
		}
	}
}

// exec charges for, classifies, and scatters one batch. The engine's
// result slice is fresh per call and not retained, so per-request
// sub-slices are handed out without copying.
func (d *Device) exec(b *batch) {
	cls, err := d.engine(b.wl)
	if err != nil {
		b.fail(err)
		return
	}
	if err := d.drawOrWait(float64(b.n) * d.f.cfg.EnergyPerSampleJ); err != nil {
		b.fail(err)
		return
	}
	samples := make([][]int, 0, b.n)
	for _, r := range b.reqs {
		samples = append(samples, r.samples...)
	}
	preds, err := cls(samples)
	if err != nil {
		b.fail(err)
		return
	}
	off := 0
	for _, r := range b.reqs {
		r.done <- result{preds: preds[off : off+len(r.samples)]}
		off += len(r.samples)
	}
	d.served.Add(uint64(len(b.reqs)))
}

// engine returns the device's classifier for the workload, compiling it
// on first use (device goroutine only, no locking).
func (d *Device) engine(wl *wlState) (workload.Classifier, error) {
	if cls, ok := d.engines[wl.hb.Name]; ok {
		return cls, nil
	}
	cls, err := wl.hb.NewBatched()
	if err != nil {
		return nil, err
	}
	d.engines[wl.hb.Name] = cls
	return cls, nil
}

// credit tops the capacitor up for the wall-clock time since the last
// accounting, capped at the full charge. Callers hold d.mu.
func (d *Device) credit(now time.Time) {
	elapsed := now.Sub(d.lastCredit).Seconds()
	d.lastCredit = now
	if elapsed <= 0 {
		return
	}
	d.storedJ += elapsed * d.f.cfg.HarvestW
	if full := d.f.fullJ(); d.storedJ > full {
		d.storedJ = full
	}
}

// voltsLocked derives the capacitor voltage from the stored energy
// (V = sqrt(2E/C)). Callers hold d.mu.
func (d *Device) voltsLocked() float64 {
	return power.VoltageAfterAdd(d.f.cfg.CapacitanceF, 0, d.storedJ)
}

// drawOrWait spends cost joules of charge. If the capacitor holds less
// than cost above the floor, the device stalls for the recharge time —
// a real wall-clock sleep recorded as an outage on the probe shard —
// before completing the draw. Continuous mode never waits.
func (d *Device) drawOrWait(cost float64) error {
	f := d.f
	if f.cfg.Mode == Continuous || cost <= 0 {
		return nil
	}
	d.mu.Lock()
	d.credit(time.Now())
	if d.storedJ-f.floorJ() >= cost {
		d.storedJ -= cost
		v := d.voltsLocked()
		d.mu.Unlock()
		d.stats.VoltageSample(f.sinceStart(), v)
		return nil
	}
	need := cost - (d.storedJ - f.floorJ())
	d.mu.Unlock()
	wait := time.Duration(need / f.cfg.HarvestW * float64(time.Second))
	begin := f.sinceStart()
	d.stats.OutageBegin(begin)
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-f.ctx.Done():
		end := f.sinceStart()
		d.stats.OutageEnd(end, end-begin)
		return ErrStopped
	}
	d.mu.Lock()
	d.credit(time.Now())
	d.storedJ -= cost
	if floor := f.floorJ(); d.storedJ < floor {
		// The timer can undershoot the harvest by a rounding error;
		// clamp rather than carry negative charge.
		d.storedJ = floor
	}
	v := d.voltsLocked()
	d.mu.Unlock()
	end := f.sinceStart()
	d.stats.OutageEnd(end, end-begin)
	d.stats.VoltageSample(end, v)
	return nil
}

// Available returns the energy the device can spend right now (stored
// charge above the shutdown floor, after crediting harvest). In
// continuous mode every device always reports the full window.
func (d *Device) Available() float64 {
	if d.f.cfg.Mode == Continuous {
		return d.f.fullJ() - d.f.floorJ()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.credit(time.Now())
	return d.storedJ - d.f.floorJ()
}

// Charge returns the stored energy and the capacitor voltage.
func (d *Device) Charge() (joules, volts float64) {
	if d.f.cfg.Mode == Continuous {
		full := d.f.fullJ()
		return full, d.f.cfg.VOn
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.credit(time.Now())
	return d.storedJ, d.voltsLocked()
}
