// Package fleet runs a sharded fleet of simulated MOUSE devices behind
// an inference-serving front end: requests are admitted per workload
// into a bounded queue, coalesced into bit-sliced batches (fill the
// lanes or hit a deadline, whichever first), and placed on the device
// with the most harvested charge. Each device owns its compiled batch
// engines (workload.HotBatches recipes replayed through
// array.BatchMachine), a capacitor state-of-charge fed by a constant
// harvester, and a probe.Stats telemetry shard, so a fleet-wide metrics
// view is one Stats.Merge away.
//
// The energy model is the serving-layer image of the simulator's
// capacitor: a device stores E = ½CV² between the shutdown floor VOff
// and the restart threshold VOn, harvests HarvestW joules per
// wall-clock second, and spends EnergyPerSampleJ per classified
// sample. A batch whose cost exceeds the stored energy stalls the
// device for the recharge time — recorded as an outage on the device's
// probe shard — which is what makes placement by charge and admission
// backpressure observable end to end.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mouse/internal/mtj"
	"mouse/internal/probe"
	"mouse/internal/workload"
)

// PowerMode selects the fleet's power source.
type PowerMode string

const (
	// Continuous powers every device unconditionally: no charge
	// tracking, no stalls, round-robin placement. The latency baseline.
	Continuous PowerMode = "continuous"

	// Harvested gives each device a VOff..VOn capacitor window topped
	// up at HarvestW; batches that outrun the harvest stall the device
	// and the scheduler routes around it by charge.
	Harvested PowerMode = "harvested"
)

// Config sizes a fleet.
type Config struct {
	// Devices is the number of simulated devices (shards).
	Devices int

	// QueueDepth bounds each workload's admission queue; a full queue
	// rejects with ErrOverloaded (HTTP 429 upstream).
	QueueDepth int

	// BatchLinger is the batching deadline: after the first request of
	// a batch arrives, the batcher waits at most this long for more
	// lanes before dispatching. Zero dispatches whatever is immediately
	// queued.
	BatchLinger time.Duration

	// Mode selects Continuous or Harvested power.
	Mode PowerMode

	// HarvestW is the per-device harvest rate in watts (Harvested mode).
	HarvestW float64

	// CapacitanceF, VOn, VOff describe the per-device energy buffer:
	// CapacitanceF farads charged to VOn at boot, unusable below VOff.
	CapacitanceF float64
	VOn, VOff    float64

	// EnergyPerSampleJ is the charge drawn per classified sample.
	EnergyPerSampleJ float64

	// Workloads restricts the served workloads to these hot-batch
	// registry names; nil serves every workload.HotBatches entry.
	Workloads []string
}

// DefaultConfig returns a small harvested fleet on the modern-STT
// capacitor window (100 µF, 0.320–0.340 V — mtj.ModernSTT's energy
// buffer), a 5 mW harvester, and 2 µJ per sample.
func DefaultConfig() Config {
	cfg := mtj.ModernSTT()
	return Config{
		Devices:          4,
		QueueDepth:       256,
		BatchLinger:      2 * time.Millisecond,
		Mode:             Harvested,
		HarvestW:         5e-3,
		CapacitanceF:     cfg.CapC,
		VOn:              cfg.CapVMax,
		VOff:             cfg.CapVMin,
		EnergyPerSampleJ: 2e-6,
	}
}

func (c Config) validate() error {
	switch {
	case c.Devices < 1:
		return fmt.Errorf("fleet: %d devices", c.Devices)
	case c.QueueDepth < 1:
		return fmt.Errorf("fleet: queue depth %d", c.QueueDepth)
	case c.Mode != Continuous && c.Mode != Harvested:
		return fmt.Errorf("fleet: unknown power mode %q", c.Mode)
	case c.CapacitanceF <= 0:
		return fmt.Errorf("fleet: capacitance %g F", c.CapacitanceF)
	case c.VOff <= 0 || c.VOn <= c.VOff:
		return fmt.Errorf("fleet: capacitor window [%g, %g] V invalid", c.VOff, c.VOn)
	case c.EnergyPerSampleJ < 0:
		return fmt.Errorf("fleet: energy per sample %g J", c.EnergyPerSampleJ)
	case c.Mode == Harvested && c.HarvestW <= 0:
		return fmt.Errorf("fleet: harvested mode needs a positive harvest rate, got %g W", c.HarvestW)
	}
	return nil
}

// Sentinel errors. OverloadedError carries the Retry-After hint and
// matches ErrOverloaded through errors.Is.
var (
	// ErrInvalid wraps request-validation failures (unknown workload,
	// empty or oversized batch, wrong feature count): the client's
	// fault, HTTP 400 upstream.
	ErrInvalid = errors.New("fleet: invalid request")

	// ErrOverloaded reports a full admission queue: backpressure, HTTP
	// 429 upstream.
	ErrOverloaded = errors.New("fleet: overloaded")

	// ErrStopped reports a fleet shut down while the request was in
	// flight.
	ErrStopped = errors.New("fleet: stopped")
)

// OverloadedError is the concrete rejection: errors.Is(err,
// ErrOverloaded) matches it, and RetryAfter hints when the client
// should try again.
type OverloadedError struct {
	Workload   string
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("fleet: %s admission queue full, retry after %v", e.Workload, e.RetryAfter)
}

// Is matches the ErrOverloaded sentinel.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// result is one request's reply.
type result struct {
	preds []int
	err   error
}

// request is one admitted Infer call waiting for its batch to execute.
type request struct {
	samples [][]int
	done    chan result // buffered 1: the executor never blocks on it
}

// batch is a set of requests dispatched to one device as a single
// bit-sliced replay.
type batch struct {
	wl   *wlState
	reqs []*request
	n    int // total samples across reqs
}

// fail replies err to every request of the batch.
func (b *batch) fail(err error) {
	for _, r := range b.reqs {
		r.done <- result{err: err}
	}
}

// wlState is one served workload: its hot-batch recipe and admission
// queue (the batcher goroutine drains it).
type wlState struct {
	hb    workload.HotBatch
	queue chan *request
}

// WorkloadInfo describes one served workload.
type WorkloadInfo struct {
	// Name keys the workload in requests ("svm-adult", "bnn-hidden16").
	Name string `json:"name"`
	// Capacity is the most samples one batched replay serves (64 lanes
	// times the mapping's column batch); also the per-request limit.
	Capacity int `json:"capacity"`
	// LaneWidth is the samples served per bit-slice lane.
	LaneWidth int `json:"lane_width"`
}

// Fleet is the running device fleet. Construct with New, serve with
// Infer, shut down with Stop.
type Fleet struct {
	cfg     Config
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	stopped sync.Once

	start   time.Time
	devices []*Device
	wls     map[string]*wlState
	names   []string // sorted workload names

	rr             atomic.Uint64 // continuous-mode round-robin cursor
	batches        atomic.Uint64
	batchedSamples atomic.Uint64
	rejected       atomic.Uint64
}

// New validates cfg, builds the devices, and starts the batcher and
// device goroutines. Workload engines are compiled lazily, per device,
// on the first batch of each workload, so construction is cheap.
func New(cfg Config) (*Fleet, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	wanted := cfg.Workloads
	if wanted == nil {
		for _, hb := range workload.HotBatches() {
			wanted = append(wanted, hb.Name)
		}
	}
	f := &Fleet{cfg: cfg, start: time.Now(), wls: map[string]*wlState{}}
	for _, name := range wanted {
		hb, err := workload.HotBatchByName(name)
		if err != nil {
			return nil, err
		}
		if _, dup := f.wls[name]; dup {
			return nil, fmt.Errorf("fleet: workload %q listed twice", name)
		}
		f.wls[name] = &wlState{hb: hb, queue: make(chan *request, cfg.QueueDepth)}
		f.names = append(f.names, name)
	}
	sort.Strings(f.names)
	f.ctx, f.cancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Devices; i++ {
		f.devices = append(f.devices, newDevice(f, i))
	}
	for _, d := range f.devices {
		f.wg.Add(1)
		go d.run()
	}
	for _, name := range f.names {
		wl := f.wls[name]
		f.wg.Add(1)
		go f.batchLoop(wl)
	}
	return f, nil
}

// Stop shuts the fleet down: queued and in-flight requests fail with
// ErrStopped, goroutines exit. Idempotent.
func (f *Fleet) Stop() {
	f.stopped.Do(func() {
		f.cancel()
		f.wg.Wait()
	})
}

// Infer classifies samples on the named workload, blocking until the
// batch containing the request executes. It returns ErrInvalid-wrapped
// errors for malformed requests, an OverloadedError when the admission
// queue is full, ErrStopped after Stop, or ctx's error if the caller
// gives up first.
func (f *Fleet) Infer(ctx context.Context, name string, samples [][]int) ([]int, error) {
	wl, ok := f.wls[name]
	if !ok {
		return nil, fmt.Errorf("%w: unknown workload %q", ErrInvalid, name)
	}
	if len(samples) == 0 || len(samples) > wl.hb.Capacity {
		return nil, fmt.Errorf("%w: batch of %d samples outside [1, %d]", ErrInvalid, len(samples), wl.hb.Capacity)
	}
	feats, err := wl.hb.Features()
	if err != nil {
		return nil, err
	}
	for i, x := range samples {
		if len(x) != feats {
			return nil, fmt.Errorf("%w: sample %d has %d features, %s expects %d", ErrInvalid, i, len(x), name, feats)
		}
	}
	select {
	case <-f.ctx.Done():
		return nil, ErrStopped
	default:
	}
	req := &request{samples: samples, done: make(chan result, 1)}
	select {
	case wl.queue <- req:
	default:
		f.rejected.Add(1)
		return nil, &OverloadedError{Workload: name, RetryAfter: f.retryAfter()}
	}
	select {
	case res := <-req.done:
		return res.preds, res.err
	case <-f.ctx.Done():
		return nil, ErrStopped
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// retryAfter is the backpressure hint on a full queue: one linger
// window (the soonest another batch can close), floored so clients
// never busy-spin.
func (f *Fleet) retryAfter() time.Duration {
	retry := f.cfg.BatchLinger
	if retry < 50*time.Millisecond {
		retry = 50 * time.Millisecond
	}
	return retry
}

// batchLoop is one workload's batcher: it assembles batches from the
// admission queue and dispatches each to a device, carrying over the
// request that overflowed the previous batch, until the fleet stops.
func (f *Fleet) batchLoop(wl *wlState) {
	defer f.wg.Done()
	var leftover *request
	for {
		b, next, ok := f.fill(wl, leftover)
		leftover = next
		if b != nil {
			f.dispatch(b)
		}
		if !ok {
			if leftover != nil {
				leftover.done <- result{err: ErrStopped}
			}
			f.drain(wl)
			return
		}
	}
}

// fill assembles one batch: it blocks for the first request (seed, if
// the previous batch overflowed), then adds requests until the batch
// holds Capacity samples or the linger deadline — measured from the
// first request — expires. A request that would overflow the batch
// closes it and seeds the next one. ok is false when the fleet is
// stopping.
func (f *Fleet) fill(wl *wlState, seed *request) (b *batch, leftover *request, ok bool) {
	first := seed
	if first == nil {
		select {
		case first = <-wl.queue:
		case <-f.ctx.Done():
			return nil, nil, false
		}
	}
	b = &batch{wl: wl, reqs: []*request{first}, n: len(first.samples)}
	capacity := wl.hb.Capacity
	add := func(r *request) bool {
		if b.n+len(r.samples) > capacity {
			leftover = r
			return false
		}
		b.reqs = append(b.reqs, r)
		b.n += len(r.samples)
		return true
	}
	if f.cfg.BatchLinger <= 0 {
		for b.n < capacity {
			select {
			case r := <-wl.queue:
				if !add(r) {
					return b, leftover, true
				}
			default:
				return b, nil, true
			}
		}
		return b, nil, true
	}
	timer := time.NewTimer(f.cfg.BatchLinger)
	defer timer.Stop()
	for b.n < capacity {
		select {
		case r := <-wl.queue:
			if !add(r) {
				return b, leftover, true
			}
		case <-timer.C:
			return b, nil, true
		case <-f.ctx.Done():
			return b, nil, false
		}
	}
	return b, nil, true
}

// dispatch places the batch on a device: first device in placement
// order with a free slot, else block on the preferred one. Device inbox
// capacity is 1, so sustained overload backs up here, then into the
// admission queue, then into 429s — backpressure end to end.
func (f *Fleet) dispatch(b *batch) {
	f.batches.Add(1)
	f.batchedSamples.Add(uint64(b.n))
	order := f.placement()
	for _, i := range order {
		select {
		case f.devices[i].in <- b:
			return
		default:
		}
	}
	select {
	case f.devices[order[0]].in <- b:
	case <-f.ctx.Done():
		b.fail(ErrStopped)
	}
}

// placement ranks devices for the next batch. Harvested mode prefers
// the device with the most available charge (it is the least likely to
// stall); continuous mode has no charge signal and round-robins.
func (f *Fleet) placement() []int {
	if f.cfg.Mode == Continuous {
		n := len(f.devices)
		start := int(f.rr.Add(1)-1) % n
		order := make([]int, n)
		for i := range order {
			order[i] = (start + i) % n
		}
		return order
	}
	avail := make([]float64, len(f.devices))
	for i, d := range f.devices {
		avail[i] = d.Available()
	}
	return rankByCharge(avail)
}

// rankByCharge orders device indices by available charge, descending,
// ties broken by lower index — a pure function so the scheduler is unit
// testable without a running fleet.
func rankByCharge(avail []float64) []int {
	order := make([]int, len(avail))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return avail[order[a]] > avail[order[b]]
	})
	return order
}

// drain fails whatever is left in the admission queue after stop.
func (f *Fleet) drain(wl *wlState) {
	for {
		select {
		case r := <-wl.queue:
			r.done <- result{err: ErrStopped}
		default:
			return
		}
	}
}

// sinceStart is the fleet-relative timestamp fed to probe events.
func (f *Fleet) sinceStart() float64 { return time.Since(f.start).Seconds() }

// --- introspection --------------------------------------------------------

// Workloads lists the served workloads, sorted by name.
func (f *Fleet) Workloads() []WorkloadInfo {
	out := make([]WorkloadInfo, 0, len(f.names))
	for _, name := range f.names {
		hb := f.wls[name].hb
		out = append(out, WorkloadInfo{Name: hb.Name, Capacity: hb.Capacity, LaneWidth: hb.LaneWidth})
	}
	return out
}

// HasWorkload reports whether the fleet serves name.
func (f *Fleet) HasWorkload(name string) bool {
	_, ok := f.wls[name]
	return ok
}

// QueueDepth returns the named workload's current admission-queue
// length (0 for unknown workloads).
func (f *Fleet) QueueDepth(name string) int {
	wl, ok := f.wls[name]
	if !ok {
		return 0
	}
	return len(wl.queue)
}

// Devices returns the device count.
func (f *Fleet) Devices() int { return len(f.devices) }

// DeviceStats returns every device's probe shard, in device order —
// merge them for the fleet view.
func (f *Fleet) DeviceStats() []*probe.Stats {
	out := make([]*probe.Stats, len(f.devices))
	for i, d := range f.devices {
		out[i] = d.stats
	}
	return out
}

// DeviceCharge returns device i's stored energy and capacitor voltage.
func (f *Fleet) DeviceCharge(i int) (joules, volts float64) {
	return f.devices[i].Charge()
}

// DeviceServed returns the requests device i has answered.
func (f *Fleet) DeviceServed(i int) uint64 { return f.devices[i].served.Load() }

// Batches returns the batches dispatched so far.
func (f *Fleet) Batches() uint64 { return f.batches.Load() }

// BatchedSamples returns the samples dispatched so far.
func (f *Fleet) BatchedSamples() uint64 { return f.batchedSamples.Load() }

// Rejected returns the requests refused at admission.
func (f *Fleet) Rejected() uint64 { return f.rejected.Load() }
