package fleet

import (
	"context"
	"errors"
	"testing"
	"time"

	"mouse/internal/workload"
)

// TestRunLoadCounts drives the generator against a scripted SendFunc and
// checks every outcome bucket: OK, rejected, hard error, mismatch.
func TestRunLoadCounts(t *testing.T) {
	// Pool of 10 single-feature samples; request i serves samples
	// [2i, 2i+1]. The fake classifier echoes the feature value.
	samples := make([][]int, 10)
	expected := make([]int, 10)
	for i := range samples {
		samples[i] = []int{i}
		expected[i] = i
	}
	expected[5] = 99 // request 2's second sample will disagree

	send := func(chunk [][]int) ([]int, error) {
		switch chunk[0][0] / 2 {
		case 3:
			return nil, &OverloadedError{Workload: "fake", RetryAfter: time.Second}
		case 4:
			return nil, errors.New("device caught fire")
		}
		preds := make([]int, len(chunk))
		for i, x := range chunk {
			preds[i] = x[0]
		}
		return preds, nil
	}

	rep, err := RunLoad(LoadConfig{Requests: 5, BatchSize: 2, Expected: expected}, samples, send)
	if err != nil {
		t.Fatal(err)
	}
	want := LoadReport{Requests: 5, OK: 3, Rejected: 1, Errors: 1, Mismatches: 1}
	if rep.Requests != want.Requests || rep.OK != want.OK || rep.Rejected != want.Rejected ||
		rep.Errors != want.Errors || rep.Mismatches != want.Mismatches {
		t.Errorf("RunLoad counted %+v, want %+v (latency fields aside)", rep, want)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 || rep.Mean <= 0 {
		t.Errorf("latency aggregates inconsistent: p50 %v p99 %v mean %v", rep.P50, rep.P99, rep.Mean)
	}

	// A response with the wrong number of predictions is a hard error.
	rep, err = RunLoad(LoadConfig{Requests: 1, BatchSize: 2},
		samples, func(chunk [][]int) ([]int, error) { return []int{1}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 1 || rep.OK != 0 {
		t.Errorf("short prediction vector counted as %+v, want 1 error", rep)
	}
}

func TestRunLoadValidation(t *testing.T) {
	ok := func([][]int) ([]int, error) { return nil, nil }
	if _, err := RunLoad(LoadConfig{Requests: 0, BatchSize: 1}, nil, ok); err == nil {
		t.Error("zero requests accepted")
	}
	if _, err := RunLoad(LoadConfig{Requests: 2, BatchSize: 3}, make([][]int, 5), ok); err == nil {
		t.Error("undersized sample pool accepted")
	}
	if _, err := RunLoad(LoadConfig{Requests: 1, BatchSize: 2, Expected: []int{1}}, make([][]int, 2), ok); err == nil {
		t.Error("undersized expected labels accepted")
	}
}

func TestQuantileNearestRank(t *testing.T) {
	lat := make([]time.Duration, 100)
	for i := range lat {
		lat[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := quantile(lat, 0.50); got != 50*time.Millisecond {
		t.Errorf("p50 of 1..100ms = %v, want 50ms", got)
	}
	if got := quantile(lat, 0.99); got != 99*time.Millisecond {
		t.Errorf("p99 of 1..100ms = %v, want 99ms", got)
	}
	if got := quantile(lat[:1], 0.99); got != time.Millisecond {
		t.Errorf("p99 of a single sample = %v, want 1ms", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile(nil) = %v, want 0", got)
	}
}

// TestRunLoadAgainstFleet wires the generator to a live continuous
// fleet: every request must succeed and verify against the offline
// labels (the in-process version of the mouseload -verify path).
func TestRunLoadAgainstFleet(t *testing.T) {
	cfg := quickConfig()
	cfg.Workloads = []string{"svm-adult"}
	f := newFleet(t, cfg)
	hb, err := workload.HotBatchByName("svm-adult")
	if err != nil {
		t.Fatal(err)
	}
	offline, err := hb.NewBatched()
	if err != nil {
		t.Fatal(err)
	}
	const requests, batch = 6, 4
	samples := hb.Samples(requests * batch)
	expected := make([]int, 0, requests*batch)
	for i := 0; i < requests; i++ {
		preds, err := offline(samples[i*batch : (i+1)*batch])
		if err != nil {
			t.Fatal(err)
		}
		expected = append(expected, preds...)
	}
	rep, err := RunLoad(LoadConfig{Requests: requests, BatchSize: batch, Expected: expected},
		samples, func(chunk [][]int) ([]int, error) {
			return f.Infer(context.Background(), "svm-adult", chunk)
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != requests || rep.Rejected != 0 || rep.Errors != 0 || rep.Mismatches != 0 {
		t.Errorf("load against a live fleet: %+v, want %d clean OKs", rep, requests)
	}
}
