package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// The synthetic open-loop load generator: requests are launched on a
// fixed arrival schedule regardless of how fast earlier requests
// complete (the standard way to measure serving latency without the
// coordinated-omission bias of closed loops), and the per-request
// latencies aggregate into p50/p99. The send function is pluggable so
// the same generator drives an in-process Fleet (the bench experiment)
// and a remote moused over HTTP (cmd/mouseload).

// SendFunc submits one request's samples and returns its predictions.
// Rejections must match ErrOverloaded through errors.Is to be counted
// as backpressure rather than failures.
type SendFunc func(samples [][]int) ([]int, error)

// LoadConfig shapes one load run.
type LoadConfig struct {
	// Requests is the number of requests to launch.
	Requests int
	// BatchSize is the samples per request; the sample pool must hold
	// Requests*BatchSize vectors.
	BatchSize int
	// Interval is the open-loop arrival spacing (0 launches every
	// request immediately).
	Interval time.Duration
	// Expected, when non-nil, holds the golden label per sample (pool
	// order); each OK response is checked against its slice and
	// disagreements count as Mismatches.
	Expected []int
}

// LoadReport aggregates one load run.
type LoadReport struct {
	Requests   int `json:"requests"`
	OK         int `json:"ok"`
	Rejected   int `json:"rejected"`
	Errors     int `json:"errors"`
	Mismatches int `json:"mismatches"`

	// Latency percentiles and mean over OK requests only (zero when
	// nothing succeeded).
	P50  time.Duration `json:"p50_ns"`
	P99  time.Duration `json:"p99_ns"`
	Mean time.Duration `json:"mean_ns"`
}

// RunLoad launches cfg.Requests requests of cfg.BatchSize consecutive
// samples each on the open-loop schedule and blocks until every
// response (or rejection) is in.
func RunLoad(cfg LoadConfig, samples [][]int, send SendFunc) (LoadReport, error) {
	if cfg.Requests < 1 || cfg.BatchSize < 1 {
		return LoadReport{}, fmt.Errorf("fleet: load of %d requests x %d samples", cfg.Requests, cfg.BatchSize)
	}
	total := cfg.Requests * cfg.BatchSize
	if len(samples) < total {
		return LoadReport{}, fmt.Errorf("fleet: sample pool holds %d, load needs %d", len(samples), total)
	}
	if cfg.Expected != nil && len(cfg.Expected) < total {
		return LoadReport{}, fmt.Errorf("fleet: expected labels hold %d, load needs %d", len(cfg.Expected), total)
	}

	type outcome struct {
		lat        time.Duration
		err        error
		mismatches int
	}
	outcomes := make([]outcome, cfg.Requests)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Open loop: wait for this request's scheduled arrival, not
			// for any earlier request to finish.
			if cfg.Interval > 0 {
				time.Sleep(time.Until(start.Add(time.Duration(i) * cfg.Interval)))
			}
			chunk := samples[i*cfg.BatchSize : (i+1)*cfg.BatchSize]
			t0 := time.Now()
			preds, err := send(chunk)
			o := outcome{lat: time.Since(t0), err: err}
			if err == nil && len(preds) != len(chunk) {
				o.err = fmt.Errorf("fleet: request %d got %d predictions for %d samples", i, len(preds), len(chunk))
			}
			if o.err == nil && cfg.Expected != nil {
				for j, p := range preds {
					if p != cfg.Expected[i*cfg.BatchSize+j] {
						o.mismatches++
					}
				}
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()

	rep := LoadReport{Requests: cfg.Requests}
	var oks []time.Duration
	var sum time.Duration
	for _, o := range outcomes {
		switch {
		case o.err == nil:
			rep.OK++
			rep.Mismatches += o.mismatches
			oks = append(oks, o.lat)
			sum += o.lat
		case errors.Is(o.err, ErrOverloaded):
			rep.Rejected++
		default:
			rep.Errors++
		}
	}
	if len(oks) > 0 {
		sort.Slice(oks, func(a, b int) bool { return oks[a] < oks[b] })
		rep.P50 = quantile(oks, 0.50)
		rep.P99 = quantile(oks, 0.99)
		rep.Mean = sum / time.Duration(len(oks))
	}
	return rep, nil
}

// quantile reads the q-quantile of an ascending latency slice (nearest
// rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
