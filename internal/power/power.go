// Package power models the energy-harvesting supply chain of Section
// IV-C and VIII of the paper: a harvesting power source charging a
// capacitor energy buffer, a switched-capacitor voltage converter, and
// the voltage-window shutdown/restart policy (run while the buffer is
// above V_off; once it drops there, shut down and wait until it recharges
// to V_on).
package power

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Source provides harvested power as a function of time.
type Source interface {
	// Power returns the harvested power in watts at time t (seconds).
	Power(t float64) float64
	// Name identifies the source in reports.
	Name() string
}

// Constant is a fixed-power source, the paper's evaluation model ("we
// model our energy harvester as a constant power source").
type Constant struct {
	// W is the harvested power in watts.
	W float64
}

// Power returns the constant wattage.
func (c Constant) Power(float64) float64 { return c.W }

// Name describes the source.
func (c Constant) Name() string { return fmt.Sprintf("constant %.3g W", c.W) }

// TailPolicy selects what a Trace supplies once the simulation clock
// passes its last point. The policy is explicit because the implicit
// alternative is a hazard: a recorded trace that happens to end at (or
// near) zero watts silently starves any run that outlives it, and the
// resulting outage looks like a property of the workload instead of an
// artifact of the recording's length.
type TailPolicy int

const (
	// TailHold keeps supplying the final recorded value forever (the
	// default, matching the historical behaviour).
	TailHold TailPolicy = iota
	// TailLoop repeats the trace cyclically: time past the end wraps
	// back to the first point, modeling a periodic environment recorded
	// over one period.
	TailLoop
	// TailZero supplies nothing past the end — the honest policy when
	// the recording's end really is the end of available energy; runs
	// that outlive the trace brown out (and trip the simulator's
	// non-termination guard rather than hanging).
	TailZero
)

func (p TailPolicy) String() string {
	switch p {
	case TailHold:
		return "hold"
	case TailLoop:
		return "loop"
	case TailZero:
		return "zero"
	}
	return fmt.Sprintf("tail(%d)", int(p))
}

// ParseTailPolicy resolves a CLI spelling of a tail policy.
func ParseTailPolicy(s string) (TailPolicy, error) {
	switch s {
	case "hold":
		return TailHold, nil
	case "loop":
		return TailLoop, nil
	case "zero":
		return TailZero, nil
	}
	return TailHold, fmt.Errorf("power: unknown trace tail policy %q (hold, loop, zero)", s)
}

// Trace is a piecewise-constant power trace: Watts[i] applies from
// Times[i] (seconds) until Times[i+1]; before Times[0] the power is 0.
// After the last point the Tail policy rules: hold the final value
// (default), loop the trace, or drop to zero.
type Trace struct {
	Times []float64
	Watts []float64
	Tail  TailPolicy
}

// End returns the trace's last timestamp (0 for an empty trace): the
// moment the Tail policy takes over. Callers surfacing end-of-trace
// behaviour (mousetrace) compare the run's final clock against it.
func (tr Trace) End() float64 {
	if len(tr.Times) == 0 {
		return 0
	}
	return tr.Times[len(tr.Times)-1]
}

// Power returns the traced wattage at time t.
func (tr Trace) Power(t float64) float64 {
	if len(tr.Times) == 0 {
		return 0
	}
	if end := tr.End(); t > end {
		switch tr.Tail {
		case TailLoop:
			span := end - tr.Times[0]
			if span <= 0 {
				return tr.Watts[len(tr.Watts)-1]
			}
			// Wrap into [Times[0], end); math.Mod keeps long simulations
			// exact enough (the trace grid is coarse by construction).
			t = tr.Times[0] + math.Mod(t-tr.Times[0], span)
		case TailZero:
			return 0
		}
	}
	last := 0.0
	for i, ts := range tr.Times {
		if t < ts {
			return last
		}
		last = tr.Watts[i]
	}
	return last
}

// Name describes the source: point count plus the time span the points
// cover (and any non-default tail policy), so sweep tables over
// different traces are self-describing.
func (tr Trace) Name() string {
	if len(tr.Times) == 0 {
		return "trace (empty)"
	}
	span := tr.Times[len(tr.Times)-1] - tr.Times[0]
	if tr.Tail != TailHold {
		return fmt.Sprintf("trace (%d points over %.3g s, tail %s)", len(tr.Times), span, tr.Tail)
	}
	return fmt.Sprintf("trace (%d points over %.3g s)", len(tr.Times), span)
}

// ParseTrace reads a whitespace-separated "seconds watts" trace, one
// point per line; blank lines and #-comments are skipped. Points must
// be non-negative and strictly increasing in time.
func ParseTrace(r io.Reader, tail TailPolicy) (Trace, error) {
	tr := Trace{Tail: tail}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var ts, w float64
		if _, err := fmt.Sscan(text, &ts, &w); err != nil {
			return Trace{}, fmt.Errorf("power: trace line %d %q: %w", line, text, err)
		}
		if w < 0 {
			return Trace{}, fmt.Errorf("power: trace line %d: negative power %g", line, w)
		}
		if n := len(tr.Times); n > 0 && ts <= tr.Times[n-1] {
			return Trace{}, fmt.Errorf("power: trace line %d: time %g not after %g", line, ts, tr.Times[n-1])
		}
		tr.Times = append(tr.Times, ts)
		tr.Watts = append(tr.Watts, w)
	}
	if err := sc.Err(); err != nil {
		return Trace{}, err
	}
	if len(tr.Times) == 0 {
		return Trace{}, fmt.Errorf("power: trace has no points")
	}
	return tr, nil
}

// Solar is a half-sine "daylight" source: power follows
// Peak*max(0, sin(2πt/Period)) — daylight for the first half of each
// period, darkness for the second. It gives examples a realistic
// fluctuating supply.
type Solar struct {
	Peak   float64 // watts at noon
	Period float64 // seconds per full day/night cycle
}

// Power returns the instantaneous solar harvest at time t.
func (s Solar) Power(t float64) float64 {
	if s.Period <= 0 {
		return 0
	}
	p := s.Peak * math.Sin(2*math.Pi*t/s.Period)
	if p < 0 {
		return 0
	}
	return p
}

// Name describes the source.
func (s Solar) Name() string { return fmt.Sprintf("solar peak %.3g W", s.Peak) }

// RFBursts models an RF energy harvester (the paper's SONIC baseline
// runs from a Powercast transmitter): power arrives in bursts as the
// channel fades in and out, following a two-state Markov process with
// exponentially distributed dwell times. The process is deterministic
// per seed, and lazily extended as far as the simulation asks.
type RFBursts struct {
	// Peak is the harvested power during a burst, in watts.
	Peak float64
	// MeanOn and MeanOff are the mean burst and fade durations, seconds.
	MeanOn, MeanOff float64
	// Seed fixes the dwell-time sequence.
	Seed int64

	edges []float64 // alternating on→off, off→on transition times; starts on
	rng   *rand.Rand
}

// NewRFBursts creates a bursty source with the given duty parameters.
func NewRFBursts(peak, meanOn, meanOff float64, seed int64) *RFBursts {
	return &RFBursts{Peak: peak, MeanOn: meanOn, MeanOff: meanOff, Seed: seed}
}

// Power returns the harvested power at time t.
func (r *RFBursts) Power(t float64) float64 {
	if r.Peak <= 0 || r.MeanOn <= 0 || r.MeanOff <= 0 {
		return 0
	}
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(r.Seed))
		r.edges = []float64{0}
	}
	for len(r.edges) == 0 || r.edges[len(r.edges)-1] <= t {
		mean := r.MeanOn
		if len(r.edges)%2 == 0 {
			mean = r.MeanOff
		}
		r.edges = append(r.edges, r.edges[len(r.edges)-1]+r.rng.ExpFloat64()*mean)
	}
	// Find the phase containing t: edges[i] ≤ t < edges[i+1]; even i = on.
	i := sort.SearchFloat64s(r.edges, t)
	if i < len(r.edges) && r.edges[i] == t {
		i++
	}
	if (i-1)%2 == 0 {
		return r.Peak
	}
	return 0
}

// Name describes the source.
func (r *RFBursts) Name() string {
	return fmt.Sprintf("RF bursts %.3g W (on %.3g s / off %.3g s)", r.Peak, r.MeanOn, r.MeanOff)
}

// Capacitor is the on-chip energy buffer.
type Capacitor struct {
	// C is the capacitance in farads.
	C float64
	v float64
}

// NewCapacitor returns a capacitor of c farads charged to v0 volts.
func NewCapacitor(c, v0 float64) *Capacitor {
	return &Capacitor{C: c, v: v0}
}

// Voltage returns the present voltage.
func (c *Capacitor) Voltage() float64 { return c.v }

// SetVoltage forces the voltage (used for initial conditions).
func (c *Capacitor) SetVoltage(v float64) { c.v = v }

// Energy returns the stored energy ½CV² in joules.
func (c *Capacitor) Energy() float64 { return EnergyOf(c.C, c.v) }

// EnergyAbove returns the energy stored above the given floor voltage —
// the budget usable before the system must shut down.
func (c *Capacitor) EnergyAbove(vFloor float64) float64 {
	return EnergyAboveOf(c.C, c.v, vFloor)
}

// AddEnergy deposits (or, if negative, withdraws) e joules, clamping at
// zero charge.
func (c *Capacitor) AddEnergy(e float64) {
	c.v = VoltageAfterAdd(c.C, c.v, e)
}

// EnergyOf returns the stored energy of a c-farad capacitor at v volts.
// The Capacitor methods are defined in terms of these plain-float
// helpers so an engine that tracks buffer state outside a Capacitor
// (sim's analytic segment engine) rounds identically to the stepping
// path by construction.
func EnergyOf(c, v float64) float64 { return 0.5 * c * v * v }

// EnergyAboveOf returns the energy a c-farad capacitor at v volts holds
// above the floor voltage, zero when it sits at or below the floor.
func EnergyAboveOf(c, v, vFloor float64) float64 {
	if v <= vFloor {
		return 0
	}
	return 0.5 * c * (v*v - vFloor*vFloor)
}

// VoltageAfterAdd returns the voltage of a c-farad capacitor at v volts
// after depositing (or, if negative, withdrawing) e joules, clamping at
// zero charge.
func VoltageAfterAdd(c, v, e float64) float64 {
	stored := EnergyOf(c, v) + e
	if stored < 0 {
		stored = 0
	}
	return math.Sqrt(2 * stored / c)
}

// Converter is the switched-capacitor DC-DC converter that derives each
// operation's bias voltage from the buffer voltage using a small set of
// conversion ratios (Section VIII: 0.75, 1, 1.5 and 1.75).
type Converter struct {
	// Ratios are the available conversion ratios, ascending.
	Ratios []float64
	// Efficiency is the conversion efficiency in (0, 1]. The paper
	// evaluates on the power *supplied by* the converter (efficiency
	// excluded from MOUSE's accounting), so the default is 1.0; the
	// 35–80% converter loss scales the harvester requirement instead.
	Efficiency float64
}

// DefaultConverter returns the converter of Section VIII.
func DefaultConverter() Converter {
	return Converter{Ratios: []float64{0.75, 1, 1.5, 1.75}, Efficiency: 1.0}
}

// RatioFor returns the smallest ratio that can produce vOut from vIn,
// and whether one exists.
func (cv Converter) RatioFor(vIn, vOut float64) (float64, bool) {
	if vIn <= 0 {
		return 0, false
	}
	need := vOut / vIn
	for _, r := range cv.Ratios {
		if r >= need {
			return r, true
		}
	}
	return 0, false
}

// LevelIndex buckets a required output voltage into a converter level for
// the given input window; consecutive operations on different levels pay
// the level-switch latency share (Section IV-C). The index is the
// position of the chosen ratio, or -1 if unreachable.
func (cv Converter) LevelIndex(vIn, vOut float64) int {
	if vIn <= 0 {
		return -1
	}
	need := vOut / vIn
	for i, r := range cv.Ratios {
		if r >= need {
			return i
		}
	}
	return -1
}

// SourceOverheadRange returns the multiplier range on harvested energy a
// real 35–80%-efficient converter would impose (Section VIII reports
// 1.25–2.85×).
func SourceOverheadRange() (lo, hi float64) { return 1 / 0.80, 1 / 0.35 }
