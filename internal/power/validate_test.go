package power

import (
	"errors"
	"strings"
	"testing"
)

// TestHarvesterValidate is the regression suite for the configuration
// bugs Validate now catches: each of these previously hung or silently
// misbehaved inside ChargeUntilOn instead of failing typed.
func TestHarvesterValidate(t *testing.T) {
	good := func() *Harvester { return NewHarvester(Constant{W: 1e-3}, 100e-6, 0.32, 0.34) }
	cases := []struct {
		name   string
		mutate func(h *Harvester)
		ok     bool
	}{
		{"valid", func(*Harvester) {}, true},
		{"nil source", func(h *Harvester) { h.Src = nil }, false},
		{"nil capacitor", func(h *Harvester) { h.Cap = nil }, false},
		{"zero capacitance", func(h *Harvester) { h.Cap.C = 0 }, false},
		{"negative capacitance", func(h *Harvester) { h.Cap.C = -1e-6 }, false},
		{"zero shutdown voltage", func(h *Harvester) { h.VOff = 0 }, false},
		{"negative shutdown voltage", func(h *Harvester) { h.VOff = -0.1 }, false},
		{"restart below shutdown", func(h *Harvester) { h.VOn = h.VOff / 2 }, false},
		{"restart equals shutdown", func(h *Harvester) { h.VOn = h.VOff }, false},
		{"cap below restart", func(h *Harvester) { h.VMax = h.VOn / 2 }, false},
		{"zero cap means default", func(h *Harvester) { h.VMax = 0 }, true},
	}
	for _, c := range cases {
		h := good()
		c.mutate(h)
		err := h.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok {
			if err == nil {
				t.Errorf("%s: invalid harvester accepted", c.name)
			} else if !errors.Is(err, ErrInvalidHarvester) {
				t.Errorf("%s: error %v is not ErrInvalidHarvester", c.name, err)
			}
		}
	}
}

// TestChargeUntilOnRejectsInvalid: the charge loop fails fast with the
// typed error instead of spinning on a buffer that can never hold its
// voltage window.
func TestChargeUntilOnRejectsInvalid(t *testing.T) {
	h := NewHarvester(Constant{W: 1e-3}, 0, 0.32, 0.34) // zero capacitance
	if _, err := h.ChargeUntilOn(10); !errors.Is(err, ErrInvalidHarvester) {
		t.Fatalf("got %v, want ErrInvalidHarvester", err)
	}
	h = NewHarvester(Solar{Peak: 1e-3, Period: 1}, 100e-6, 0.34, 0.32) // inverted window
	if _, err := h.ChargeUntilOn(10); !errors.Is(err, ErrInvalidHarvester) {
		t.Fatalf("got %v, want ErrInvalidHarvester", err)
	}
}

// TestTraceTailPolicies pins down what each policy supplies past the
// recording's end.
func TestTraceTailPolicies(t *testing.T) {
	base := Trace{Times: []float64{1, 2, 3}, Watts: []float64{10, 20, 30}}
	if base.End() != 3 {
		t.Fatalf("End() = %g, want 3", base.End())
	}
	cases := []struct {
		tail TailPolicy
		t    float64
		want float64
	}{
		{TailHold, 3, 30},  // at the end: recorded data, not tail
		{TailHold, 10, 30}, // hold keeps the final value
		{TailZero, 10, 0},
		{TailZero, 3, 30},   // zero applies only strictly past the end
		{TailLoop, 4, 20},   // 4 wraps to 2 over the [1,3) span -> 20 W
		{TailLoop, 5.5, 10}, // 5.5 wraps to 1.5 -> 10 W
		{TailLoop, 7, 10},   // 7 wraps a whole span back to 1 -> 10 W
	}
	for _, c := range cases {
		tr := base
		tr.Tail = c.tail
		if got := tr.Power(c.t); got != c.want {
			t.Errorf("tail %s: Power(%g) = %g, want %g", c.tail, c.t, got, c.want)
		}
	}
	// A single-point trace cannot loop (zero span): it degrades to hold.
	one := Trace{Times: []float64{1}, Watts: []float64{7}, Tail: TailLoop}
	if got := one.Power(9); got != 7 {
		t.Errorf("single-point loop: Power(9) = %g, want 7", got)
	}
	var empty Trace
	if empty.End() != 0 {
		t.Errorf("empty End() = %g, want 0", empty.End())
	}
}

// TestTailPolicyNames: the CLI spellings round-trip and reports name the
// non-default policy.
func TestTailPolicyNames(t *testing.T) {
	for _, s := range []string{"hold", "loop", "zero"} {
		p, err := ParseTailPolicy(s)
		if err != nil {
			t.Fatalf("ParseTailPolicy(%q): %v", s, err)
		}
		if p.String() != s {
			t.Errorf("ParseTailPolicy(%q).String() = %q", s, p.String())
		}
	}
	if _, err := ParseTailPolicy("forever"); err == nil {
		t.Error("unknown policy accepted")
	}
	tr := Trace{Times: []float64{0, 1}, Watts: []float64{1, 2}, Tail: TailLoop}
	if !strings.Contains(tr.Name(), "tail loop") {
		t.Errorf("name %q does not surface the tail policy", tr.Name())
	}
	tr.Tail = TailHold
	if strings.Contains(tr.Name(), "tail") {
		t.Errorf("name %q mentions the default tail policy", tr.Name())
	}
}

// TestParseTrace covers the file format: comments, blank lines, and the
// rejected malformed inputs.
func TestParseTrace(t *testing.T) {
	good := `# solar morning, recorded 2025-11-03
0.0 0.0

0.5 2e-3
1.5 3.5e-3
`
	tr, err := ParseTrace(strings.NewReader(good), TailZero)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Times) != 3 || tr.Tail != TailZero {
		t.Fatalf("parsed %d points tail %s, want 3 points tail zero", len(tr.Times), tr.Tail)
	}
	if tr.Power(1) != 2e-3 || tr.Power(100) != 0 {
		t.Errorf("parsed trace misbehaves: Power(1)=%g Power(100)=%g", tr.Power(1), tr.Power(100))
	}
	for name, bad := range map[string]string{
		"empty":          "# only a comment\n",
		"garbage":        "0.5 fast\n",
		"missing column": "0.5\n",
		"negative power": "0.5 -1e-3\n",
		"time goes back": "1 1e-3\n0.5 1e-3\n",
		"time repeats":   "1 1e-3\n1 2e-3\n",
	} {
		if _, err := ParseTrace(strings.NewReader(bad), TailHold); err == nil {
			t.Errorf("%s: malformed trace accepted", name)
		}
	}
}
