package power

import (
	"errors"
	"fmt"

	"mouse/internal/probe"
)

// ErrInvalidHarvester marks a harvester whose configuration cannot
// execute the voltage-window protocol (and would previously hang or
// silently misbehave inside ChargeUntilOn). Typed so callers can
// errors.Is it.
var ErrInvalidHarvester = errors.New("power: invalid harvester")

// Harvester combines a power source, the capacitor buffer, and the
// voltage-window policy into the stepping model the intermittent
// simulator drives. Time is explicit: the harvester tracks the global
// simulation clock so trace and solar sources see wall-clock time.
type Harvester struct {
	Src Source
	Cap *Capacitor

	// VOff is the shutdown voltage: once the buffer drops here, the
	// machine powers down. VOn is the restart voltage the buffer must
	// recharge to before the machine boots again.
	VOff, VOn float64

	// VMax caps the buffer voltage (the regulator sheds surplus harvest
	// once the buffer is full). Defaults to VOn if zero.
	VMax float64

	// Obs receives capacitor-voltage samples, decimated to at most one
	// per SampleEvery seconds of simulated time; the brown-out and
	// recharge-complete voltages are always sampled so the waveform's
	// envelope survives decimation. SampleEvery <= 0 or a nil/no-op
	// observer disables sampling entirely.
	Obs         probe.Observer
	SampleEvery float64

	now        float64
	lastSample float64
}

// NewHarvester builds a harvester with the buffer initially empty — the
// paper assumes every run starts below the shutdown voltage, so all
// benchmarks begin with an initial charging period.
func NewHarvester(src Source, capacitance, vOff, vOn float64) *Harvester {
	return &Harvester{
		Src:  src,
		Cap:  NewCapacitor(capacitance, 0),
		VOff: vOff,
		VOn:  vOn,
		VMax: vOn,
	}
}

// Now returns the simulation clock in seconds.
func (h *Harvester) Now() float64 { return h.now }

// AdvanceClock adds dt seconds to the simulation clock with no energy
// exchange. The analytic segment engine (internal/sim) accounts energy
// and buffer voltage itself and commits its elapsed time in bulk when a
// run finishes.
func (h *Harvester) AdvanceClock(dt float64) { h.now += dt }

// vmax returns the effective voltage cap: VMax, defaulting to VOn when
// zero — the documented default, which a Harvester built as a struct
// literal relies on (NewHarvester always fills VMax in).
func (h *Harvester) vmax() float64 {
	if h.VMax == 0 {
		return h.VOn
	}
	return h.VMax
}

// SamplingEnabled reports whether voltage sampling is live: an observer
// is attached and SampleEvery is positive. A harvester with sampling
// disabled behaves identically whether or not Obs is set, which is what
// makes it eligible for the segment engine's bulk accounting.
func (h *Harvester) SamplingEnabled() bool { return h.Obs != nil && h.SampleEvery > 0 }

// Validate checks the harvester's physical configuration: a positive
// capacitance, a positive voltage window ordered vOn > vOff > 0, and a
// cap VMax that does not sit below the restart voltage. ChargeUntilOn
// calls it so a misconfigured harvester fails with a typed error
// instead of hanging in the charge loop (a zero-capacitance buffer, for
// example, reaches its target energy of zero instantly yet can never
// hold a voltage window).
func (h *Harvester) Validate() error {
	switch {
	case h.Src == nil:
		return fmt.Errorf("%w: nil power source", ErrInvalidHarvester)
	case h.Cap == nil || h.Cap.C <= 0:
		return fmt.Errorf("%w: capacitance must be > 0", ErrInvalidHarvester)
	case h.VOff <= 0:
		return fmt.Errorf("%w: shutdown voltage %g must be > 0", ErrInvalidHarvester, h.VOff)
	case h.VOn <= h.VOff:
		return fmt.Errorf("%w: restart voltage %g must exceed shutdown voltage %g", ErrInvalidHarvester, h.VOn, h.VOff)
	case h.VMax != 0 && h.VMax < h.VOn:
		return fmt.Errorf("%w: voltage cap %g sits below restart voltage %g", ErrInvalidHarvester, h.VMax, h.VOn)
	}
	return nil
}

// sample emits a decimated voltage sample; force bypasses the
// decimation for envelope points (brown-out, recharge complete). The
// nil check keeps unobserved harvesters at one branch per step.
func (h *Harvester) sample(force bool) {
	if h.Obs == nil || h.SampleEvery <= 0 {
		return
	}
	if !force && h.now-h.lastSample < h.SampleEvery {
		return
	}
	h.lastSample = h.now
	h.Obs.VoltageSample(h.now, h.Cap.Voltage())
}

// On reports whether the buffer is above the shutdown voltage.
func (h *Harvester) On() bool { return h.Cap.Voltage() > h.VOff }

// chargeStep is the integration step used while charging from a
// non-constant source, as a fraction of the remaining estimate.
const chargeQuantum = 1e-3 // seconds

// ChargeUntilOn advances time until the buffer reaches VOn, returning the
// elapsed charging time. Constant sources use the closed form
// t = C·(Von²−V²)/(2P); other sources are integrated in small steps. It
// returns an error if the source cannot reach VOn within maxWait seconds
// (non-termination guard).
func (h *Harvester) ChargeUntilOn(maxWait float64) (float64, error) {
	if err := h.Validate(); err != nil {
		return 0, err
	}
	start := h.now
	target := 0.5 * h.Cap.C * h.VOn * h.VOn
	if _, isConst := h.Src.(Constant); isConst {
		plan, _ := h.Plan()
		dt, charged, err := plan.ChargeTime(h.Cap.Energy(), maxWait)
		if err != nil {
			return 0, err
		}
		if charged {
			h.now += dt
			h.Cap.SetVoltage(h.VOn)
			h.sample(true)
		}
		// The closed form is returned directly rather than as a clock
		// difference: fl((now+dt)−now) wobbles with the clock's
		// magnitude, and the segment engine must see the same off-time
		// at every outage of a steady source.
		return dt, nil
	}
	for h.Cap.Energy() < target {
		if h.now-start > maxWait {
			return 0, fmt.Errorf("power: source %s did not recharge the buffer within %.3g s", h.Src.Name(), maxWait)
		}
		p := h.Src.Power(h.now)
		h.Cap.AddEnergy(p * chargeQuantum)
		h.now += chargeQuantum
		h.sample(false)
	}
	if h.Cap.Voltage() > h.vmax() {
		h.Cap.SetVoltage(h.vmax())
	}
	h.sample(true)
	return h.now - start, nil
}

// Draw advances the clock by dt seconds while the machine consumes e
// joules, with the source harvesting concurrently. It returns the
// fraction of the operation that completed before the buffer hit VOff:
// 1.0 for a completed operation, less for one cut short by an outage (in
// which case the clock advances only by the completed fraction and the
// buffer sits exactly at VOff).
func (h *Harvester) Draw(dt, e float64) float64 {
	harvest := h.Src.Power(h.now) * dt
	budget := h.Cap.EnergyAbove(h.VOff) + harvest
	if e <= budget || e <= 0 {
		h.Cap.AddEnergy(harvest - e)
		if h.Cap.Voltage() > h.vmax() {
			h.Cap.SetVoltage(h.vmax())
		}
		h.now += dt
		h.sample(false)
		return 1.0
	}
	frac := budget / e
	h.now += dt * frac
	h.Cap.SetVoltage(h.VOff)
	h.sample(true)
	return frac
}

// Idle advances the clock by dt with no machine draw (e.g. the
// level-switch portion of a cycle), still harvesting.
func (h *Harvester) Idle(dt float64) {
	h.Cap.AddEnergy(h.Src.Power(h.now) * dt)
	if h.Cap.Voltage() > h.vmax() {
		h.Cap.SetVoltage(h.vmax())
	}
	h.now += dt
	h.sample(false)
}

// WindowEnergy returns the energy one full voltage-window discharge
// supplies, ½C(VOn²−VOff²) — the budget the simulator's non-termination
// guard compares single instructions against.
func (h *Harvester) WindowEnergy() float64 {
	return 0.5 * h.Cap.C * (h.VOn*h.VOn - h.VOff*h.VOff)
}

// ConstantPlan is the closed-form arithmetic of a constant-source
// harvester: everything Draw and ChargeUntilOn compute step by step,
// exposed as plain constants so the analytic segment engine
// (internal/sim) can retire whole outage-to-outage windows without
// touching the harvester. The fields reuse the exact expressions of the
// stepping methods, so accounting built from a plan is bit-identical to
// stepping.
type ConstantPlan struct {
	// W is the source power in watts; C the buffer capacitance.
	W, C float64
	// VOff and VOn are the shutdown and restart voltages; VMax is the
	// effective voltage cap (the zero-defaults-to-VOn rule applied).
	VOff, VOn, VMax float64
	// TargetE is the stored energy at VOn — ChargeUntilOn's recharge
	// target — and WindowJ the full-window discharge budget.
	TargetE float64
	WindowJ float64

	src Constant
}

// Plan returns the harvester's closed-form plan, or ok=false for any
// non-constant source (traces, solar, RF bursts evolve with the clock
// and must be stepped).
func (h *Harvester) Plan() (ConstantPlan, bool) {
	c, isConst := h.Src.(Constant)
	if !isConst || h.Cap == nil {
		return ConstantPlan{}, false
	}
	return ConstantPlan{
		W:       c.W,
		C:       h.Cap.C,
		VOff:    h.VOff,
		VOn:     h.VOn,
		VMax:    h.vmax(),
		TargetE: 0.5 * h.Cap.C * h.VOn * h.VOn,
		WindowJ: h.WindowEnergy(),
		src:     c,
	}, true
}

// ChargeTime is ChargeUntilOn's constant-source closed form over a
// plain stored-energy value: the off-time to recharge from fromE to the
// restart target. charged reports whether a recharge was needed — when
// it was, the buffer ends exactly at VOn, which the caller applies
// itself. The errors are the same ones ChargeUntilOn returns.
func (p ConstantPlan) ChargeTime(fromE, maxWait float64) (dt float64, charged bool, err error) {
	if p.W <= 0 {
		return 0, false, fmt.Errorf("power: source %s cannot charge the buffer", p.src.Name())
	}
	need := p.TargetE - fromE
	if need <= 0 {
		return 0, false, nil
	}
	dt = need / p.W
	if dt > maxWait {
		return 0, false, fmt.Errorf("power: charging would take %.3g s, beyond the %.3g s limit", dt, maxWait)
	}
	return dt, true, nil
}
