package power

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestConstantSource(t *testing.T) {
	s := Constant{W: 60e-6}
	if s.Power(0) != 60e-6 || s.Power(1e9) != 60e-6 {
		t.Errorf("constant source varies")
	}
	if s.Name() == "" {
		t.Errorf("empty name")
	}
}

func TestTraceSource(t *testing.T) {
	tr := Trace{Times: []float64{1, 2, 3}, Watts: []float64{10, 0, 5}}
	cases := []struct{ t, want float64 }{
		{0, 0}, {0.5, 0}, {1, 10}, {1.5, 10}, {2, 0}, {2.9, 0}, {3, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := tr.Power(c.t); got != c.want {
			t.Errorf("trace.Power(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	var empty Trace
	if empty.Power(5) != 0 {
		t.Errorf("empty trace should give 0")
	}
}

func TestSolarSource(t *testing.T) {
	s := Solar{Peak: 1e-3, Period: 100}
	if got := s.Power(25); !almost(got, 1e-3, 1e-9) {
		t.Errorf("noon power = %g, want peak", got)
	}
	if s.Power(75) != 0 {
		t.Errorf("night power = %g, want 0", s.Power(75))
	}
	if s.Power(0) < 0 || s.Power(99) < 0 {
		t.Errorf("negative power")
	}
	if (Solar{Peak: 1, Period: 0}).Power(1) != 0 {
		t.Errorf("zero-period solar should give 0")
	}
}

func TestCapacitorEnergy(t *testing.T) {
	c := NewCapacitor(100e-6, 0.340)
	want := 0.5 * 100e-6 * 0.340 * 0.340
	if !almost(c.Energy(), want, 1e-12) {
		t.Errorf("Energy = %g, want %g", c.Energy(), want)
	}
	above := c.EnergyAbove(0.320)
	wantAbove := 0.5 * 100e-6 * (0.340*0.340 - 0.320*0.320)
	if !almost(above, wantAbove, 1e-12) {
		t.Errorf("EnergyAbove = %g, want %g", above, wantAbove)
	}
	if c.EnergyAbove(0.5) != 0 {
		t.Errorf("EnergyAbove a higher floor should be 0")
	}
}

func TestCapacitorAddEnergyRoundTrip(t *testing.T) {
	prop := func(v0Milli, addMicro uint16) bool {
		v0 := float64(v0Milli) / 1000
		e := float64(addMicro) * 1e-6
		c := NewCapacitor(10e-6, v0)
		before := c.Energy()
		c.AddEnergy(e)
		if !almost(c.Energy(), before+e, 1e-9) {
			return false
		}
		c.AddEnergy(-e)
		// The round trip's float error scales with the peak energy the
		// buffer held (the voltage<->energy conversions happen at
		// before+e), not with the possibly much smaller starting energy,
		// so a relative check against `before` alone is flaky.
		return math.Abs(c.Energy()-before) <= 1e-9*(before+e)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestCapacitorClampsAtZero(t *testing.T) {
	c := NewCapacitor(10e-6, 0.1)
	c.AddEnergy(-1) // far more than stored
	if c.Energy() != 0 || c.Voltage() != 0 {
		t.Errorf("over-drain left energy %g", c.Energy())
	}
}

func TestConverterRatio(t *testing.T) {
	cv := DefaultConverter()
	r, ok := cv.RatioFor(0.330, 0.243)
	if !ok || r != 0.75 {
		t.Errorf("RatioFor(0.33, 0.243) = %g, %v", r, ok)
	}
	r, ok = cv.RatioFor(0.330, 0.400)
	if !ok || r != 1.5 {
		t.Errorf("RatioFor(0.33, 0.4) = %g, %v", r, ok)
	}
	if _, ok := cv.RatioFor(0.330, 1.0); ok {
		t.Errorf("unreachable output voltage accepted")
	}
	if _, ok := cv.RatioFor(0, 0.1); ok {
		t.Errorf("zero input voltage accepted")
	}
	if i := cv.LevelIndex(0.330, 0.243); i != 0 {
		t.Errorf("LevelIndex = %d, want 0", i)
	}
	if i := cv.LevelIndex(0.330, 9); i != -1 {
		t.Errorf("unreachable LevelIndex = %d, want -1", i)
	}
	if i := cv.LevelIndex(0, 0.1); i != -1 {
		t.Errorf("zero-vin LevelIndex = %d", i)
	}
}

func TestSourceOverheadRange(t *testing.T) {
	lo, hi := SourceOverheadRange()
	if !almost(lo, 1.25, 0.01) || !almost(hi, 2.857, 0.01) {
		t.Errorf("overhead range [%g, %g], want about [1.25, 2.86]", lo, hi)
	}
}

func TestChargeUntilOnClosedForm(t *testing.T) {
	// 100 µF from empty to 340 mV at 60 µW: t = C·V²/2P.
	h := NewHarvester(Constant{W: 60e-6}, 100e-6, 0.320, 0.340)
	dt, err := h.ChargeUntilOn(1e6)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * 100e-6 * 0.340 * 0.340 / 60e-6
	if !almost(dt, want, 1e-9) {
		t.Errorf("charge time %g, want %g", dt, want)
	}
	if !h.On() {
		t.Errorf("harvester not on after charging")
	}
	// Already charged: no additional time.
	dt, err = h.ChargeUntilOn(1e6)
	if err != nil || dt != 0 {
		t.Errorf("second charge dt=%g err=%v", dt, err)
	}
}

func TestChargeUntilOnTimeout(t *testing.T) {
	h := NewHarvester(Constant{W: 1e-9}, 100e-6, 0.320, 0.340)
	if _, err := h.ChargeUntilOn(1.0); err == nil {
		t.Errorf("absurdly slow charge did not error")
	}
	h = NewHarvester(Constant{W: 0}, 100e-6, 0.320, 0.340)
	if _, err := h.ChargeUntilOn(1.0); err == nil {
		t.Errorf("zero-power source did not error")
	}
}

func TestChargeUntilOnIntegratesTraces(t *testing.T) {
	// 1 mW after t=1s, nothing before.
	tr := Trace{Times: []float64{0, 1}, Watts: []float64{0, 1e-3}}
	h := NewHarvester(tr, 10e-6, 0.100, 0.120)
	dt, err := h.ChargeUntilOn(10)
	if err != nil {
		t.Fatal(err)
	}
	// Needs 72 nJ: arrives almost instantly once power appears at t=1.
	if dt < 1.0 || dt > 1.1 {
		t.Errorf("trace charge time %g, want just over 1 s", dt)
	}
}

func TestDrawCompletesWithinBudget(t *testing.T) {
	h := NewHarvester(Constant{W: 0}, 100e-6, 0.320, 0.340)
	h.Cap.SetVoltage(0.340)
	before := h.Cap.Energy()
	frac := h.Draw(33e-9, 1e-9)
	if frac != 1.0 {
		t.Fatalf("draw within budget returned %g", frac)
	}
	if !almost(h.Cap.Energy(), before-1e-9, 1e-9) {
		t.Errorf("energy not conserved: %g vs %g", h.Cap.Energy(), before-1e-9)
	}
	if h.Now() != 33e-9 {
		t.Errorf("clock = %g", h.Now())
	}
}

func TestDrawCutShortAtVOff(t *testing.T) {
	h := NewHarvester(Constant{W: 0}, 100e-6, 0.320, 0.340)
	h.Cap.SetVoltage(0.340)
	budget := h.Cap.EnergyAbove(0.320)
	frac := h.Draw(33e-9, budget*2)
	if !almost(frac, 0.5, 1e-9) {
		t.Fatalf("frac = %g, want 0.5", frac)
	}
	if !almost(h.Cap.Voltage(), 0.320, 1e-12) {
		t.Errorf("voltage after outage = %g, want VOff", h.Cap.Voltage())
	}
	if h.On() {
		t.Errorf("harvester still on at VOff")
	}
}

func TestDrawClampsAtVMax(t *testing.T) {
	// A huge source cannot push the buffer past VMax.
	h := NewHarvester(Constant{W: 1}, 100e-6, 0.320, 0.340)
	h.Cap.SetVoltage(0.340)
	h.Draw(1e-3, 0)
	if h.Cap.Voltage() > 0.340+1e-12 {
		t.Errorf("voltage exceeded VMax: %g", h.Cap.Voltage())
	}
	h.Idle(1e-3)
	if h.Cap.Voltage() > 0.340+1e-12 {
		t.Errorf("Idle exceeded VMax: %g", h.Cap.Voltage())
	}
}

func TestIdleAdvancesClock(t *testing.T) {
	h := NewHarvester(Constant{W: 60e-6}, 100e-6, 0.320, 0.340)
	h.Idle(0.5)
	if h.Now() != 0.5 {
		t.Errorf("clock = %g", h.Now())
	}
	// 30 µJ arrives but the buffer clamps at VMax: ½·C·VMax².
	if want := 0.5 * 100e-6 * 0.340 * 0.340; !almost(h.Cap.Energy(), want, 1e-9) {
		t.Errorf("idle harvest = %g J, want %g (clamped at VMax)", h.Cap.Energy(), want)
	}
}

// TestEnergyConservationProperty: over a random mix of draws and idles
// with a constant source, stored + consumed = harvested (while below the
// VMax clamp).
func TestEnergyConservationProperty(t *testing.T) {
	prop := func(ops [8]uint8) bool {
		h := NewHarvester(Constant{W: 1e-3}, 1e-3, 0.1, 10.0) // huge VMax: no clamping
		h.Cap.SetVoltage(1.0)
		initial := h.Cap.Energy()
		consumed := 0.0
		for _, op := range ops {
			dt := float64(op%16+1) * 1e-6
			e := float64(op/16) * 1e-9
			frac := h.Draw(dt, e)
			consumed += e * frac
			if frac < 1 {
				return true // outage path exercised elsewhere
			}
		}
		harvested := 1e-3 * h.Now()
		return almost(h.Cap.Energy(), initial+harvested-consumed, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRFBursts(t *testing.T) {
	r := NewRFBursts(5e-3, 0.2, 0.5, 7)
	// Deterministic per seed.
	r2 := NewRFBursts(5e-3, 0.2, 0.5, 7)
	onTime, samples := 0, 0
	for ts := 0.0; ts < 50; ts += 0.01 {
		p := r.Power(ts)
		if p != r2.Power(ts) {
			t.Fatalf("non-deterministic at t=%g", ts)
		}
		if p != 0 && p != 5e-3 {
			t.Fatalf("power %g not 0 or peak", p)
		}
		if p > 0 {
			onTime++
		}
		samples++
	}
	duty := float64(onTime) / float64(samples)
	want := 0.2 / (0.2 + 0.5)
	if duty < want*0.7 || duty > want*1.3 {
		t.Errorf("duty cycle %.3f, want about %.3f", duty, want)
	}
	if (&RFBursts{}).Power(1) != 0 {
		t.Errorf("zero-parameter bursts should give 0")
	}
	if NewRFBursts(1e-3, 1, 1, 1).Name() == "" {
		t.Errorf("empty name")
	}
}

func TestRFBurstsDriveHarvester(t *testing.T) {
	// An intermittent supply still charges the buffer eventually.
	src := NewRFBursts(2e-3, 0.05, 0.15, 3)
	h := NewHarvester(src, 100e-6, 0.320, 0.340)
	dt, err := h.ChargeUntilOn(120)
	if err != nil {
		t.Fatal(err)
	}
	if dt <= 0 {
		t.Fatalf("instant charge from a bursty source")
	}
	if !h.On() {
		t.Fatalf("not on after charging")
	}
}
