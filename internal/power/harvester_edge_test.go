package power

import (
	"math"
	"testing"

	"mouse/internal/probe"
)

// voltRecorder counts voltage samples; everything else is a no-op.
type voltRecorder struct {
	probe.Nop
	samples int
}

func (r *voltRecorder) VoltageSample(_, _ float64) { r.samples++ }

// A zero VMax documents "defaults to VOn", but the clamp sites used to
// compare against the raw field — a struct-literal harvester with
// VMax==0 would clamp every post-draw voltage to zero. The clamps must
// behave exactly as if VMax were VOn.
func TestVMaxZeroDefaultsToVOn(t *testing.T) {
	mk := func(vmax float64) *Harvester {
		h := &Harvester{
			Src:  Constant{W: 1e-3},
			Cap:  NewCapacitor(100e-6, 0.9),
			VOff: 0.5,
			VOn:  0.9,
			VMax: vmax,
		}
		return h
	}
	zero, explicit := mk(0), mk(0.9)
	// A generous harvest window would overshoot VOn without the clamp.
	fracZ := zero.Draw(1.0, 1e-9)
	fracE := explicit.Draw(1.0, 1e-9)
	if fracZ != 1.0 || fracE != 1.0 {
		t.Fatalf("draws did not complete: %g, %g", fracZ, fracE)
	}
	if got, want := zero.Cap.Voltage(), explicit.Cap.Voltage(); got != want {
		t.Fatalf("VMax=0 drew to %g V, explicit VMax=VOn to %g V", got, want)
	}
	if v := zero.Cap.Voltage(); v != 0.9 {
		t.Fatalf("voltage after clamped harvest = %g, want exactly VOn (0.9)", v)
	}

	zero, explicit = mk(0), mk(0.9)
	zero.Idle(1.0)
	explicit.Idle(1.0)
	if got, want := zero.Cap.Voltage(), explicit.Cap.Voltage(); got != want || got != 0.9 {
		t.Fatalf("Idle clamp: VMax=0 ended at %g V, explicit at %g V, want 0.9", got, want)
	}
}

// Long charges from a non-constant source integrate in fixed quanta and
// can overshoot the target energy; the final voltage must be clamped to
// VMax so the segment math can assume every recharge ends in
// [VOn, VMax].
func TestChargeClampsToVMax(t *testing.T) {
	// A solar day peaking well above what the buffer needs.
	h := NewHarvester(Solar{Peak: 5e-2, Period: 20}, 100e-6, 0.5, 0.9)
	h.now = 5 // solar noon, maximum power
	if _, err := h.ChargeUntilOn(1e6); err != nil {
		t.Fatalf("ChargeUntilOn: %v", err)
	}
	if v := h.Cap.Voltage(); v > h.VMax {
		t.Fatalf("charge ended at %g V, above VMax %g", v, h.VMax)
	}
	if v := h.Cap.Voltage(); v < h.VOn {
		t.Fatalf("charge ended at %g V, below VOn %g", v, h.VOn)
	}
}

// SampleEvery <= 0 must disable sampling entirely even with an observer
// attached — the eligibility predicate the segment engine uses
// (SamplingEnabled) relies on it.
func TestSampleEveryZeroDisablesSampling(t *testing.T) {
	rec := &voltRecorder{}
	h := NewHarvester(Constant{W: 1e-3}, 100e-6, 0.5, 0.9)
	h.Obs = rec
	h.SampleEvery = 0
	if h.SamplingEnabled() {
		t.Fatal("SamplingEnabled() = true with SampleEvery = 0")
	}
	if _, err := h.ChargeUntilOn(1e6); err != nil {
		t.Fatalf("ChargeUntilOn: %v", err)
	}
	h.Draw(1e-6, 1e-9)
	h.Idle(1e-6)
	h.Draw(1e-6, 1.0) // outage: forced envelope sample if sampling were on
	if rec.samples != 0 {
		t.Fatalf("observer saw %d samples with SampleEvery = 0, want 0", rec.samples)
	}

	h2 := NewHarvester(Constant{W: 1e-3}, 100e-6, 0.5, 0.9)
	h2.Obs = rec
	h2.SampleEvery = 1e-9
	if !h2.SamplingEnabled() {
		t.Fatal("SamplingEnabled() = false with observer and positive SampleEvery")
	}
	if _, err := h2.ChargeUntilOn(1e6); err != nil {
		t.Fatalf("ChargeUntilOn: %v", err)
	}
	if rec.samples == 0 {
		t.Fatal("observer saw no samples with sampling enabled")
	}
}

// A buffer already at (or above) VOn needs no recharge: ChargeUntilOn
// must return exactly zero elapsed time and leave the state untouched.
func TestChargeUntilOnAlreadyCharged(t *testing.T) {
	h := NewHarvester(Constant{W: 1e-3}, 100e-6, 0.5, 0.9)
	h.Cap.SetVoltage(h.VOn)
	before := h.Cap.Voltage()
	dt, err := h.ChargeUntilOn(1e6)
	if err != nil {
		t.Fatalf("ChargeUntilOn: %v", err)
	}
	if dt != 0 {
		t.Fatalf("charge time from VOn = %g, want exactly 0", dt)
	}
	if h.Cap.Voltage() != before || h.Now() != 0 {
		t.Fatalf("state changed: v=%g (was %g), now=%g", h.Cap.Voltage(), before, h.Now())
	}
}

// Successive full-window recharges of a constant source must report the
// same off-time bit-for-bit regardless of how far the clock has run —
// the property that lets the segment engine reuse a window's accounting
// at any stream position. The closed form is returned directly instead
// of as a clock difference precisely because fl((now+dt)-now) wobbles
// with the clock magnitude.
func TestConstantChargeTimeClockInvariant(t *testing.T) {
	h := NewHarvester(Constant{W: 60e-6}, 100e-6, 0.5, 0.9)
	var first float64
	for i := 0; i < 5; i++ {
		h.Cap.SetVoltage(h.VOff) // as after an outage
		dt, err := h.ChargeUntilOn(1e9)
		if err != nil {
			t.Fatalf("recharge %d: %v", i, err)
		}
		if i == 0 {
			first = dt
			want := 0.5 * h.Cap.C * (h.VOn*h.VOn - h.VOff*h.VOff) / 60e-6
			if dt != want {
				t.Fatalf("closed-form charge time = %g, want %g", dt, want)
			}
			continue
		}
		if dt != first {
			t.Fatalf("recharge %d took %g s, first took %g s (diff %g)",
				i, dt, first, math.Abs(dt-first))
		}
		// Skew the clock far from zero to stress the invariance.
		h.AdvanceClock(1e7)
	}
}

// Plan exposes the same window and target energies the stepping methods
// use, and ChargeTime mirrors ChargeUntilOn's behavior including both
// error paths.
func TestPlanMatchesStepping(t *testing.T) {
	h := NewHarvester(Constant{W: 60e-6}, 100e-6, 0.5, 0.9)
	plan, ok := h.Plan()
	if !ok {
		t.Fatal("Plan() not ok for constant source")
	}
	if plan.WindowJ != h.WindowEnergy() {
		t.Fatalf("plan window %g != harvester window %g", plan.WindowJ, h.WindowEnergy())
	}
	if want := 0.5 * h.Cap.C * h.VOn * h.VOn; plan.TargetE != want {
		t.Fatalf("plan target %g != %g", plan.TargetE, want)
	}
	if plan.VMax != h.VOn {
		t.Fatalf("plan VMax %g, want defaulted VOn %g", plan.VMax, h.VOn)
	}

	// Errors mirror ChargeUntilOn: a dead source cannot charge, and a
	// charge beyond maxWait is refused.
	dead := NewHarvester(Constant{W: 0}, 100e-6, 0.5, 0.9)
	deadPlan, _ := dead.Plan()
	if _, _, err := deadPlan.ChargeTime(0, 1e9); err == nil {
		t.Fatal("ChargeTime with W=0 did not fail")
	}
	if _, err := dead.ChargeUntilOn(1e9); err == nil {
		t.Fatal("ChargeUntilOn with W=0 did not fail")
	}
	if _, _, err := plan.ChargeTime(0, 1e-12); err == nil {
		t.Fatal("ChargeTime beyond maxWait did not fail")
	}
	if _, err := NewHarvester(Constant{W: 60e-6}, 100e-6, 0.5, 0.9).ChargeUntilOn(1e-12); err == nil {
		t.Fatal("ChargeUntilOn beyond maxWait did not fail")
	}

	// Non-constant sources have no plan.
	if _, ok := NewHarvester(Solar{Peak: 1e-3, Period: 20}, 100e-6, 0.5, 0.9).Plan(); ok {
		t.Fatal("Plan() ok for solar source")
	}
}
