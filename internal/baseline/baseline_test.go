package baseline

import (
	"testing"

	"mouse/internal/dataset"
	"mouse/internal/power"
	"mouse/internal/svm"
)

func TestSONICContinuousCalibration(t *testing.T) {
	// With ample power (its 5 mW design point), the model's latency and
	// energy must approach the published continuous numbers.
	for _, s := range []*SONIC{SONICMNIST(), SONICHAR()} {
		res, err := s.Run(power.Constant{W: 20e-3})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if res.Restarts != 0 {
			t.Errorf("%s: %d restarts at 20 mW", s.Name, res.Restarts)
		}
		if res.OnLatency < s.ContLatency*0.9 || res.OnLatency > s.ContLatency*1.2 {
			t.Errorf("%s: on-latency %.3f s vs published %.3f s", s.Name, res.OnLatency, s.ContLatency)
		}
		if res.Energy < s.ContEnergy*0.9 || res.Energy > s.ContEnergy*1.2 {
			t.Errorf("%s: energy %.6f J vs published %.6f J", s.Name, res.Energy, s.ContEnergy)
		}
	}
}

func TestSONICLatencyGrowsAsPowerFalls(t *testing.T) {
	s := SONICMNIST()
	var prev float64
	for _, w := range []float64{5e-3, 1e-3, 250e-6, 60e-6} {
		res, err := s.Run(power.Constant{W: w})
		if err != nil {
			t.Fatalf("%g W: %v", w, err)
		}
		if prev != 0 && res.Latency <= prev {
			t.Errorf("latency did not grow as power fell: %.3f s at %g W vs %.3f s before", res.Latency, w, prev)
		}
		prev = res.Latency
	}
}

func TestSONICIntermittentOverheads(t *testing.T) {
	s := SONICMNIST()
	// At 1 mW the 9.85 mW device must cycle on and off repeatedly.
	res, err := s.Run(power.Constant{W: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts == 0 {
		t.Errorf("no restarts under starved power")
	}
	if res.Energy <= s.ContEnergy {
		t.Errorf("intermittent energy %.6f not above continuous %.6f", res.Energy, s.ContEnergy)
	}
	// Latency is roughly energy-bound: close to E/P plus overheads.
	bound := s.ContEnergy / 1e-3
	if res.Latency < bound*0.8 {
		t.Errorf("latency %.2f below the energy bound %.2f", res.Latency, bound)
	}
}

func TestSONICRejectsImpossibleBuffer(t *testing.T) {
	s := SONICMNIST()
	s.Cap = 1e-9 // window too small for one task
	if _, err := s.Run(power.Constant{W: 1e-3}); err == nil {
		t.Errorf("impossible buffer accepted")
	}
	s = SONICMNIST()
	if _, err := s.Run(power.Constant{W: 0}); err == nil {
		t.Errorf("zero power accepted")
	}
}

func TestReferenceRows(t *testing.T) {
	cpu := CPUReference()
	if len(cpu) != 4 || cpu[0].EnergyUJ != 5094702 {
		t.Errorf("CPU reference wrong: %+v", cpu)
	}
	lib := LibSVMReference()
	if len(lib) != 4 || lib[3].NumSV != 15792 {
		t.Errorf("libSVM reference wrong: %+v", lib)
	}
	son := SONICReference()
	if len(son) != 2 || son[0].LatencyUS != 2740000 {
		t.Errorf("SONIC reference wrong: %+v", son)
	}
}

// TestSectionIIISpeechClaim reproduces the paper's Section III
// observation: a degree-2 polynomial SVM cannot reach reasonable
// accuracy on the speech task, while a neural network performs well.
func TestSectionIIISpeechClaim(t *testing.T) {
	ds := dataset.Speech(3, 600, 200)
	m, err := svm.Train(ds, svm.DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	svmAcc := svm.Accuracy(m.Predict, ds.Test)
	mlp, err := TrainMLP(ds, MLPConfig{Hidden: []int{32, 16}, Epochs: 60, LR: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	mlpAcc := MLPAccuracy(mlp, ds.Test)
	if svmAcc > 0.65 {
		t.Errorf("poly-2 SVM reached %.2f on the parity task; it should fail", svmAcc)
	}
	if mlpAcc < 0.9 {
		t.Errorf("MLP reached only %.2f; neural networks should handle this task", mlpAcc)
	}
	t.Logf("speech: SVM %.3f vs MLP %.3f (paper: SVMs fail, networks succeed)", svmAcc, mlpAcc)
}

func TestTrainMLPBasics(t *testing.T) {
	ds := dataset.Adult(9, 300, 100)
	mlp, err := TrainMLP(ds, MLPConfig{Hidden: []int{16}, Epochs: 15, LR: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := MLPAccuracy(mlp, ds.Test); acc < 0.6 {
		t.Errorf("MLP accuracy %.2f on ADULT-syn below 0.6", acc)
	}
	if _, err := TrainMLP(&dataset.Set{}, MLPConfig{Hidden: []int{4}, Epochs: 1, LR: 0.1}); err == nil {
		t.Errorf("empty set accepted")
	}
	if _, err := TrainMLP(ds, MLPConfig{Epochs: 0, LR: 0.1}); err == nil {
		t.Errorf("zero epochs accepted")
	}
	if MLPAccuracy(mlp, nil) != 0 {
		t.Errorf("accuracy of empty sample set should be 0")
	}
}
