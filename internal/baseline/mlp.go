package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"mouse/internal/dataset"
)

// MLP is a small full-precision neural network — the software reference
// for the paper's Section III observation that neural networks handle
// the speech workload where polynomial SVMs cannot (SONIC [29] runs a
// full-precision DNN on its microcontroller). Tanh hidden layers,
// softmax output, plain SGD.
type MLP struct {
	widths []int
	w      [][][]float64 // [layer][neuron][input]
	b      [][]float64
}

// MLPConfig controls training.
type MLPConfig struct {
	Hidden []int
	Epochs int
	LR     float64
	Seed   int64
}

// TrainMLP fits the network on the training split.
func TrainMLP(ds *dataset.Set, cfg MLPConfig) (*MLP, error) {
	if len(ds.Train) == 0 {
		return nil, fmt.Errorf("baseline: empty training set")
	}
	if cfg.Epochs <= 0 || cfg.LR <= 0 {
		return nil, fmt.Errorf("baseline: bad MLP config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	widths := append([]int{ds.NumFeatures}, cfg.Hidden...)
	widths = append(widths, ds.NumClasses)
	m := &MLP{widths: widths}
	for l := 0; l+1 < len(widths); l++ {
		scale := 1 / math.Sqrt(float64(widths[l]))
		wl := make([][]float64, widths[l+1])
		for j := range wl {
			row := make([]float64, widths[l])
			for i := range row {
				row[i] = rng.NormFloat64() * scale
			}
			wl[j] = row
		}
		m.w = append(m.w, wl)
		m.b = append(m.b, make([]float64, widths[l+1]))
	}

	nLayers := len(m.w)
	acts := make([][]float64, nLayers+1)
	deltas := make([][]float64, nLayers)
	for l := 0; l < nLayers; l++ {
		acts[l+1] = make([]float64, widths[l+1])
		deltas[l] = make([]float64, widths[l+1])
	}
	order := rng.Perm(len(ds.Train))

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			s := ds.Train[idx]
			in := make([]float64, len(s.X))
			for i, v := range s.X {
				in[i] = float64(v)/128 - 1
			}
			acts[0] = in
			// Forward.
			for l := 0; l < nLayers; l++ {
				for j := 0; j < widths[l+1]; j++ {
					z := m.b[l][j]
					row := m.w[l][j]
					prev := acts[l]
					for i := range row {
						z += row[i] * prev[i]
					}
					if l < nLayers-1 {
						acts[l+1][j] = math.Tanh(z)
					} else {
						acts[l+1][j] = z
					}
				}
			}
			// Softmax cross-entropy gradient at the output.
			out := acts[nLayers]
			maxZ := out[0]
			for _, z := range out {
				if z > maxZ {
					maxZ = z
				}
			}
			sum := 0.0
			d := deltas[nLayers-1]
			for j, z := range out {
				d[j] = math.Exp(z - maxZ)
				sum += d[j]
			}
			for j := range d {
				d[j] /= sum
				if j == s.Label {
					d[j] -= 1
				}
			}
			// Backward.
			for l := nLayers - 1; l >= 0; l-- {
				d := deltas[l]
				if l > 0 {
					nd := deltas[l-1]
					for i := range nd {
						nd[i] = 0
					}
					for j, dj := range d {
						row := m.w[l][j]
						for i := range row {
							nd[i] += dj * row[i]
						}
					}
					for i := range nd {
						a := acts[l][i]
						nd[i] *= 1 - a*a // tanh'
					}
				}
				prev := acts[l]
				for j, dj := range d {
					row := m.w[l][j]
					for i := range row {
						row[i] -= cfg.LR * dj * prev[i]
					}
					m.b[l][j] -= cfg.LR * dj
				}
			}
		}
	}
	return m, nil
}

// Predict returns the argmax class for input x.
func (m *MLP) Predict(x []int) int {
	a := make([]float64, len(x))
	for i, v := range x {
		a[i] = float64(v)/128 - 1
	}
	for l := 0; l < len(m.w); l++ {
		next := make([]float64, len(m.w[l]))
		for j, row := range m.w[l] {
			z := m.b[l][j]
			for i := range row {
				z += row[i] * a[i]
			}
			if l < len(m.w)-1 {
				next[j] = math.Tanh(z)
			} else {
				next[j] = z
			}
		}
		a = next
	}
	best := 0
	for j, z := range a {
		if z > a[best] {
			best = j
		}
	}
	return best
}

// MLPAccuracy evaluates the network over samples.
func MLPAccuracy(m *MLP, samples []dataset.Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if m.Predict(s.X) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}
