// Package baseline models the systems the paper compares MOUSE against
// (Section IX, Table IV and Fig. 9):
//
//   - SONIC [29], a software inference runtime on a TI MSP430FR5994
//     microcontroller powered by a Powercast RF harvester. We calibrate a
//     task-based intermittent execution model to SONIC's published
//     continuous-power latency and energy, then run it under the same
//     constant-power harvester model as MOUSE to produce its
//     latency-vs-power curve.
//   - CPU SVM and libSVM reference rows, which the paper reports under
//     continuous power on a Haswell server; these are carried as
//     reference constants (they have no intermittent behaviour).
package baseline

import (
	"fmt"

	"mouse/internal/power"
)

// SONIC is the calibrated task-based intermittent software baseline.
type SONIC struct {
	Name string

	// ContLatency and ContEnergy are the published continuous-power
	// numbers (Table IV).
	ContLatency float64 // seconds
	ContEnergy  float64 // joules

	// Cap, VOn and VOff describe the energy buffer: run from VOn down to
	// VOff, then recharge.
	Cap  float64
	VOn  float64
	VOff float64

	// TaskEnergy is the energy of one atomic task interval: progress is
	// lost back to the last completed task on every outage.
	TaskEnergy float64

	// RestoreEnergy is the per-reboot cost (restoring the task context
	// from FRAM).
	RestoreEnergy float64

	// BackupFrac is the fraction of each task's energy spent on
	// checkpointing its results (SONIC's redo-logging overhead is already
	// inside the continuous numbers; this models the *additional*
	// bookkeeping under intermittence).
	BackupFrac float64
}

// SONICMNIST returns the MNIST inference baseline (Table IV: 2.74 s,
// 27,000 µJ at continuous power).
func SONICMNIST() *SONIC {
	return &SONIC{
		Name:          "SONIC MNIST",
		ContLatency:   2.74,
		ContEnergy:    27000e-6,
		Cap:           100e-6,
		VOn:           2.4,
		VOff:          2.0,
		TaskEnergy:    10e-6,
		RestoreEnergy: 1e-6,
		BackupFrac:    0.05,
	}
}

// SONICHAR returns the HAR inference baseline (Table IV: 1.1 s,
// 12,500 µJ at continuous power).
func SONICHAR() *SONIC {
	return &SONIC{
		Name:          "SONIC HAR",
		ContLatency:   1.1,
		ContEnergy:    12500e-6,
		Cap:           100e-6,
		VOn:           2.4,
		VOff:          2.0,
		TaskEnergy:    10e-6,
		RestoreEnergy: 1e-6,
		BackupFrac:    0.05,
	}
}

// Result summarizes one intermittent run of the baseline.
type Result struct {
	Latency   float64 // seconds, including charging time
	OnLatency float64
	Energy    float64 // joules, including dead/backup/restore overheads
	Restarts  int
}

// devicePower is the baseline's draw while running.
func (s *SONIC) devicePower() float64 { return s.ContEnergy / s.ContLatency }

// Run executes one inference under the given harvested power.
func (s *SONIC) Run(src power.Source) (Result, error) {
	h := power.NewHarvester(src, s.Cap, s.VOff, s.VOn)
	var res Result

	p := s.devicePower()
	taskTime := s.TaskEnergy / p
	taskCost := s.TaskEnergy * (1 + s.BackupFrac)
	nTasks := int(s.ContEnergy/s.TaskEnergy) + 1
	window := 0.5 * s.Cap * (s.VOn*s.VOn - s.VOff*s.VOff)
	if taskCost > window {
		return res, fmt.Errorf("baseline: %s cannot complete a task within one buffer discharge", s.Name)
	}

	const maxWait = 7 * 24 * 3600
	off, err := h.ChargeUntilOn(maxWait)
	if err != nil {
		return res, err
	}
	res.Latency += off

	for done := 0; done < nTasks; {
		frac := h.Draw(taskTime, taskCost)
		res.Energy += taskCost * frac
		res.Latency += taskTime * frac
		res.OnLatency += taskTime * frac
		if frac >= 1 {
			done++
			continue
		}
		// Outage mid-task: the partial task is lost; recharge, pay the
		// restore cost, and redo it.
		res.Restarts++
		off, err := h.ChargeUntilOn(maxWait)
		if err != nil {
			return res, err
		}
		res.Latency += off
		h.Draw(taskTime*0.1, s.RestoreEnergy)
		res.Energy += s.RestoreEnergy
		res.Latency += taskTime * 0.1
		res.OnLatency += taskTime * 0.1
	}
	return res, nil
}

// ReferenceRow is a static comparison row of Table IV.
type ReferenceRow struct {
	System    string
	Benchmark string
	LatencyUS float64
	EnergyUJ  float64
	NumSV     int
	Accuracy  float64
}

// CPUReference returns the paper's CPU-SVM rows (Intel Haswell
// E5-2680v3, idle-power accounting).
func CPUReference() []ReferenceRow {
	return []ReferenceRow{
		{System: "SVM (CPU)", Benchmark: "MNIST", LatencyUS: 169824, EnergyUJ: 5094702, NumSV: 11813, Accuracy: 97.55},
		{System: "SVM (CPU)", Benchmark: "MNIST (Binarized)", LatencyUS: 192370, EnergyUJ: 5771085, NumSV: 12214, Accuracy: 97.37},
		{System: "SVM (CPU)", Benchmark: "HAR (integer)", LatencyUS: 127494, EnergyUJ: 3824822, NumSV: 2809, Accuracy: 95.96},
		{System: "SVM (CPU)", Benchmark: "ADULT", LatencyUS: 4368, EnergyUJ: 131052, NumSV: 1909, Accuracy: 76.12},
	}
}

// LibSVMReference returns the paper's libSVM rows.
func LibSVMReference() []ReferenceRow {
	return []ReferenceRow{
		{System: "libSVM", Benchmark: "MNIST", LatencyUS: 7830, EnergyUJ: 234900, NumSV: 8652, Accuracy: 98.05},
		{System: "libSVM", Benchmark: "MNIST (Binarized)", LatencyUS: 19037, EnergyUJ: 571116, NumSV: 23672, Accuracy: 92.49},
		{System: "libSVM", Benchmark: "HAR (integer)", LatencyUS: 1701, EnergyUJ: 51042, NumSV: 2632, Accuracy: 93.69},
		{System: "libSVM", Benchmark: "ADULT", LatencyUS: 379, EnergyUJ: 11370, NumSV: 15792, Accuracy: 78.62},
	}
}

// SONICReference returns the paper's SONIC rows (continuous power).
func SONICReference() []ReferenceRow {
	return []ReferenceRow{
		{System: "SONIC", Benchmark: "MNIST", LatencyUS: 2740000, EnergyUJ: 27000, Accuracy: 99},
		{System: "SONIC", Benchmark: "HAR", LatencyUS: 1100000, EnergyUJ: 12500, Accuracy: 88},
	}
}
