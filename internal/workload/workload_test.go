package workload

import (
	"testing"

	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/sim"
)

func TestBenchmarkListMatchesTableIV(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 6 {
		t.Fatalf("%d benchmarks, want 6", len(bs))
	}
	sv := map[string]int{
		"SVM MNIST": 11813, "SVM MNIST (Bin)": 12214, "SVM HAR": 2809, "SVM ADULT": 1909,
	}
	for name, want := range sv {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumSV != want {
			t.Errorf("%s: NumSV = %d, want %d", name, s.NumSV, want)
		}
	}
	finn, err := ByName("BNN FINN MNIST")
	if err != nil {
		t.Fatal(err)
	}
	if len(finn.Hidden) != 3 || finn.Hidden[0] != 1024 || finn.InputBits != 1 {
		t.Errorf("FINN spec wrong: %+v", finn)
	}
	fp, err := ByName("BNN FPBNN MNIST")
	if err != nil {
		t.Fatal(err)
	}
	if fp.Hidden[0] != 2048 || fp.InputBits != 8 {
		t.Errorf("FP-BNN spec wrong: %+v", fp)
	}
	if _, err := ByName("nope"); err == nil {
		t.Errorf("unknown benchmark accepted")
	}
}

func TestTiles(t *testing.T) {
	s, _ := ByName("SVM MNIST")
	if s.Tiles() != 512 {
		t.Errorf("64 MB = %d tiles, want 512", s.Tiles())
	}
	s, _ = ByName("SVM ADULT")
	if s.Tiles() != 8 {
		t.Errorf("1 MB = %d tiles, want 8", s.Tiles())
	}
}

func TestStreamMatchesPhaseCounts(t *testing.T) {
	for _, s := range Benchmarks() {
		want := s.Instructions()
		if want <= 0 {
			t.Fatalf("%s: no instructions", s.Name)
		}
		st := s.Stream()
		var got int64
		for {
			_, ok := st.Next()
			if !ok {
				break
			}
			got++
		}
		if got != want {
			t.Errorf("%s: stream yielded %d ops, phases say %d", s.Name, got, want)
		}
		st.Reset()
		if _, ok := st.Next(); !ok {
			t.Errorf("%s: Reset did not rewind", s.Name)
		}
	}
}

func TestPhasesRespectBudget(t *testing.T) {
	for _, s := range Benchmarks() {
		budget := s.budget()
		for _, p := range s.Phases() {
			if p.Count <= 0 {
				t.Errorf("%s: phase %q has count %d", s.Name, p.Name, p.Count)
			}
			if p.Op.ActivePairs > budget {
				t.Errorf("%s: phase %q activates %d pairs beyond budget %d", s.Name, p.Name, p.Op.ActivePairs, budget)
			}
			if p.Op.ActivePairs > s.Tiles()*isa.Cols {
				t.Errorf("%s: phase %q exceeds physical columns", s.Name, p.Name)
			}
		}
	}
}

// TestContinuousLatencyNearTableIV checks the calibration: each
// benchmark's continuous-power latency must land within 4× of the
// paper's Table IV value (we match the shape, not the testbed).
func TestContinuousLatencyNearTableIV(t *testing.T) {
	paper := map[string]float64{ // µs
		"SVM MNIST":       23936,
		"SVM MNIST (Bin)": 6575,
		"SVM HAR":         11805,
		"SVM ADULT":       1189,
		"BNN FINN MNIST":  1485,
		"BNN FPBNN MNIST": 2007,
	}
	r := sim.NewRunner(energy.NewModel(mtj.ModernSTT()))
	for _, s := range Benchmarks() {
		res := r.RunContinuous(s.Stream())
		got := res.OnLatency * 1e6
		want := paper[s.Name]
		if got < want/4 || got > want*4 {
			t.Errorf("%s: latency %.0f µs not within 4× of paper's %.0f µs", s.Name, got, want)
		}
	}
}

// TestContinuousEnergyNearTableIV does the same for energy.
func TestContinuousEnergyNearTableIV(t *testing.T) {
	paper := map[string]float64{ // µJ
		"SVM MNIST":       1384,
		"SVM MNIST (Bin)": 65.49,
		"SVM HAR":         468.6,
		"SVM ADULT":       7.24,
		"BNN FINN MNIST":  14.33,
		"BNN FPBNN MNIST": 99.9,
	}
	r := sim.NewRunner(energy.NewModel(mtj.ModernSTT()))
	for _, s := range Benchmarks() {
		res := r.RunContinuous(s.Stream())
		got := res.TotalEnergy() * 1e6
		want := paper[s.Name]
		if got < want/4 || got > want*4 {
			t.Errorf("%s: energy %.2f µJ not within 4× of paper's %.2f µJ", s.Name, got, want)
		}
	}
}

// TestTableIVOrderings: the qualitative relations the paper draws from
// Table IV must hold.
func TestTableIVOrderings(t *testing.T) {
	r := sim.NewRunner(energy.NewModel(mtj.ModernSTT()))
	res := map[string]sim.Result{}
	for _, s := range Benchmarks() {
		res[s.Name] = r.RunContinuous(s.Stream())
	}
	// Binarization cuts both latency and energy dramatically.
	if res["SVM MNIST (Bin)"].TotalEnergy() >= res["SVM MNIST"].TotalEnergy()/5 {
		t.Errorf("binarized MNIST energy not ≪ full-precision")
	}
	if res["SVM MNIST (Bin)"].OnLatency >= res["SVM MNIST"].OnLatency {
		t.Errorf("binarized MNIST not faster")
	}
	// FP-BNN burns more energy than FINN and than binarized SVM, but is
	// faster than the binarized SVM (the Fig. 9 crossover driver).
	if res["BNN FPBNN MNIST"].TotalEnergy() <= res["BNN FINN MNIST"].TotalEnergy() {
		t.Errorf("FP-BNN energy not above FINN")
	}
	if res["BNN FPBNN MNIST"].TotalEnergy() <= res["SVM MNIST (Bin)"].TotalEnergy() {
		t.Errorf("FP-BNN energy not above binarized SVM")
	}
	if res["BNN FPBNN MNIST"].OnLatency >= res["SVM MNIST (Bin)"].OnLatency {
		t.Errorf("FP-BNN latency not below binarized SVM")
	}
	// ADULT (the smallest problem) is the fastest benchmark, and FINN is
	// the fastest MNIST benchmark, as in Table IV.
	for name, r := range res {
		if name == "SVM ADULT" {
			continue
		}
		if r.OnLatency < res["SVM ADULT"].OnLatency {
			t.Errorf("%s faster than ADULT", name)
		}
	}
	for _, name := range []string{"SVM MNIST", "SVM MNIST (Bin)", "BNN FPBNN MNIST"} {
		if res[name].OnLatency < res["BNN FINN MNIST"].OnLatency {
			t.Errorf("%s faster than FINN", name)
		}
	}
}

// TestSHEBeatsSTT: the SHE configuration consumes less energy on every
// benchmark (Section IX).
func TestSHEBeatsSTT(t *testing.T) {
	stt := sim.NewRunner(energy.NewModel(mtj.ProjectedSTT()))
	she := sim.NewRunner(energy.NewModel(mtj.ProjectedSHE()))
	for _, s := range Benchmarks() {
		es := stt.RunContinuous(s.Stream()).TotalEnergy()
		eh := she.RunContinuous(s.Stream()).TotalEnergy()
		if eh >= es {
			t.Errorf("%s: SHE energy %g not below STT %g", s.Name, eh, es)
		}
	}
}

func TestCostProbesArePositive(t *testing.T) {
	if costMAC(8, 26) <= 0 || costAdd(24) <= 0 || costAddFixed(16) <= 0 {
		t.Errorf("non-positive macro costs")
	}
	if costSquare(20) <= costAdd(20) {
		t.Errorf("square should cost more than add")
	}
	if costPopTree(400) <= costPopTree(100) {
		t.Errorf("popcount cost not increasing")
	}
	// Extrapolated cost roughly linear: pop(384) ≈ 2×pop(192).
	lo, hi := costPopTree(192), costPopTree(384)
	if hi < lo*3/2 || hi > lo*3 {
		t.Errorf("popcount extrapolation off: %d vs %d", lo, hi)
	}
}

func TestCustomSpecs(t *testing.T) {
	s, err := CustomSVM("my-svm", 100, 8, 500, 4, 3<<20)
	if err != nil {
		t.Fatal(err)
	}
	if s.MemBytes != 4<<20 {
		t.Errorf("memory not fitted to a power of two: %d", s.MemBytes)
	}
	if s.Instructions() <= 0 {
		t.Errorf("custom SVM produced no work")
	}
	r := sim.NewRunner(energy.NewModel(mtj.ModernSTT()))
	res := r.RunContinuous(s.Stream())
	if !res.Completed || res.TotalEnergy() <= 0 {
		t.Errorf("custom SVM did not run: %+v", res.Breakdown)
	}

	bn, err := CustomBNN("my-bnn", 64, 1, []int{128, 64}, 5, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if bn.Instructions() <= 0 {
		t.Errorf("custom BNN produced no work")
	}

	bad := []error{
		errOf(CustomSVM("x", 0, 8, 10, 2, 1<<20)),
		errOf(CustomSVM("x", 10, 4, 10, 2, 1<<20)),
		errOf(CustomSVM("x", 10, 8, 0, 2, 1<<20)),
		errOf(CustomSVM("x", 10, 8, 10, 0, 1<<20)),
		errOf(CustomBNN("x", 10, 1, nil, 2, 1<<20)),
		errOf(CustomBNN("x", 10, 1, []int{0}, 2, 1<<20)),
	}
	for i, err := range bad {
		if err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func errOf(_ Spec, err error) error { return err }

func TestBuiltinBenchmarksValidate(t *testing.T) {
	for _, s := range Benchmarks() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}
