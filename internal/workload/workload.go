// Package workload builds the paper-scale benchmark workloads of Section
// VIII as analytic instruction streams: the six MOUSE benchmarks of
// Table IV (SVM on MNIST, binarized MNIST, HAR and ADULT; BNN in the
// FINN and FP-BNN configurations) expressed as sequences of
// (instruction kind, active-column count) events the intermittent
// simulator executes. This mirrors the authors' in-house R simulator:
// the full gate-level state of a 64 MB array is never materialized, but
// the instruction counts come from the same compiler that produces the
// bit-accurate small-scale programs — each arithmetic macro's cost is
// measured by compiling it with package compile.
//
// The mapping model follows the paper's greedy, column-minimal
// scheduling (Section VI): operands pack into as few columns as the row
// budget allows, dot products and popcounts run in-column, and partial
// results merge through row reads and writes. A parallelism budget caps
// simultaneously active columns (Section IV-C: parallelism is tuned to
// the power budget); work beyond the budget serializes into batches.
package workload

import (
	"fmt"
	"sync"

	"mouse/internal/compile"
	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/sim"
)

// Kind distinguishes the two benchmark families.
type Kind int

const (
	// SVM is a support-vector-machine benchmark.
	SVM Kind = iota
	// BNN is a binary-neural-network benchmark.
	BNN
)

// Spec describes one paper-scale benchmark.
type Spec struct {
	Name string
	Kind Kind

	// Features is the input dimensionality; InputBits its width (8 or 1).
	Features  int
	InputBits int

	// NumSV is the support-vector count (SVM; Table IV's #SV column).
	NumSV int

	// Classes is the output class count.
	Classes int

	// Hidden lists hidden layer widths (BNN).
	Hidden []int

	// MemBytes is the provisioned memory capacity (Table III).
	MemBytes int64

	// DataMB and InstrMB are the I/D memory columns of Table IV.
	InstrMB, DataMB float64

	// ParallelBudget caps simultaneously active columns. Zero selects
	// the default (8192 columns ≈ 8 tiles fully active).
	ParallelBudget int
}

// DefaultParallelBudget caps active columns so a single instruction's
// energy stays well inside one buffer discharge even on modern MTJs.
const DefaultParallelBudget = 8192

// Benchmarks returns the six MOUSE benchmarks of Table IV with the
// paper's model sizes.
func Benchmarks() []Spec {
	return []Spec{
		{Name: "SVM MNIST", Kind: SVM, Features: 784, InputBits: 8, NumSV: 11813, Classes: 10,
			MemBytes: 64 << 20, InstrMB: 4.5, DataMB: 30.0, ParallelBudget: 32768},
		{Name: "SVM MNIST (Bin)", Kind: SVM, Features: 784, InputBits: 1, NumSV: 12214, Classes: 10,
			MemBytes: 8 << 20, InstrMB: 1.25, DataMB: 6.0},
		{Name: "SVM HAR", Kind: SVM, Features: 561, InputBits: 8, NumSV: 2809, Classes: 6,
			MemBytes: 16 << 20, InstrMB: 2.25, DataMB: 10.0},
		{Name: "SVM ADULT", Kind: SVM, Features: 15, InputBits: 8, NumSV: 1909, Classes: 2,
			MemBytes: 1 << 20, InstrMB: 0.25, DataMB: 0.5},
		{Name: "BNN FINN MNIST", Kind: BNN, Features: 784, InputBits: 1, Hidden: []int{1024, 1024, 1024}, Classes: 10,
			MemBytes: 8 << 20, InstrMB: 3.15, DataMB: 1.71},
		{Name: "BNN FPBNN MNIST", Kind: BNN, Features: 784, InputBits: 8, Hidden: []int{2048, 2048, 2048}, Classes: 10,
			MemBytes: 16 << 20, InstrMB: 4.20, DataMB: 8.00, ParallelBudget: 32768},
	}
}

// CustomSVM builds a Spec for a user-provided SVM deployment: features
// and input width describe the data, numSV the total trained support
// vectors, and memBytes the provisioned array (rounded up to a
// power-of-two megabyte count as NVSim requires).
func CustomSVM(name string, features, inputBits, numSV, classes int, memBytes int64) (Spec, error) {
	s := Spec{
		Name: name, Kind: SVM,
		Features: features, InputBits: inputBits,
		NumSV: numSV, Classes: classes,
		MemBytes: fitMem(memBytes),
	}
	return s, s.Validate()
}

// CustomBNN builds a Spec for a user-provided BNN deployment.
func CustomBNN(name string, features, inputBits int, hidden []int, classes int, memBytes int64) (Spec, error) {
	s := Spec{
		Name: name, Kind: BNN,
		Features: features, InputBits: inputBits,
		Hidden: append([]int(nil), hidden...), Classes: classes,
		MemBytes: fitMem(memBytes),
	}
	return s, s.Validate()
}

func fitMem(bytes int64) int64 {
	const mb = 1 << 20
	if bytes < mb {
		bytes = mb
	}
	fitted := int64(mb)
	for fitted < bytes {
		fitted <<= 1
	}
	return fitted
}

// Validate reports whether the spec describes a runnable workload.
func (s Spec) Validate() error {
	switch {
	case s.Features <= 0:
		return fmt.Errorf("workload: %s: feature count %d", s.Name, s.Features)
	case s.InputBits != 1 && s.InputBits != 8:
		return fmt.Errorf("workload: %s: input width %d must be 1 or 8", s.Name, s.InputBits)
	case s.Classes <= 0:
		return fmt.Errorf("workload: %s: class count %d", s.Name, s.Classes)
	case s.MemBytes < 128<<10:
		return fmt.Errorf("workload: %s: memory %d below one tile", s.Name, s.MemBytes)
	case s.Kind == SVM && s.NumSV <= 0:
		return fmt.Errorf("workload: %s: SVM needs support vectors", s.Name)
	case s.Kind == BNN && len(s.Hidden) == 0:
		return fmt.Errorf("workload: %s: BNN needs hidden layers", s.Name)
	}
	for _, h := range s.Hidden {
		if h <= 0 {
			return fmt.Errorf("workload: %s: hidden width %d", s.Name, h)
		}
	}
	return nil
}

// ByName returns the benchmark with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Benchmarks() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Tiles returns the number of 128 KB tiles the benchmark provisions.
func (s Spec) Tiles() int { return int(s.MemBytes / (128 << 10)) }

func (s Spec) budget() int {
	b := s.ParallelBudget
	if b <= 0 {
		b = DefaultParallelBudget
	}
	if avail := s.Tiles() * isa.Cols; b > avail {
		b = avail
	}
	return b
}

// Phase is a run of identical operations.
type Phase struct {
	Name  string
	Op    energy.Op
	Count int64
}

// Phases returns the benchmark's full execution recipe. The returned
// slice is the caller's to mutate; the underlying recipe is memoized.
func (s Spec) Phases() []Phase {
	return append([]Phase(nil), s.cachedPhases()...)
}

// phasesCache memoizes the compiled phase list per benchmark shape, in
// the same style as the macro-cost cache below: building a recipe
// probes the real compiler for every macro cost, which is far too
// expensive to repeat for each of the hundreds of sweep jobs the
// concurrent benchmark harness runs over the same six specs.
var (
	phasesMu    sync.Mutex
	phasesCache = map[string][]Phase{}
)

// cachedPhases returns the shared, memoized phase list for s's shape.
// The result is aliased across callers and must be treated read-only.
func (s Spec) cachedPhases() []Phase {
	key := fmt.Sprintf("%d|%d|%d|%d|%d|%v|%d|%d",
		s.Kind, s.Features, s.InputBits, s.NumSV, s.Classes, s.Hidden, s.MemBytes, s.ParallelBudget)
	phasesMu.Lock()
	defer phasesMu.Unlock()
	if ph, ok := phasesCache[key]; ok {
		return ph
	}
	ph := buildPhases(s)
	phasesCache[key] = ph
	return ph
}

// buildPhases compiles the recipe from scratch (the uncached path).
func buildPhases(s Spec) []Phase {
	switch s.Kind {
	case SVM:
		return svmPhases(s)
	case BNN:
		return bnnPhases(s)
	}
	panic(fmt.Sprintf("workload: unknown kind %d", s.Kind))
}

// flushCaches drops the memoized macro costs and phase lists. It exists
// for benchmarks that need to measure the cold path.
func flushCaches() {
	costMu.Lock()
	costCache = map[string]int{}
	costMu.Unlock()
	phasesMu.Lock()
	phasesCache = map[string][]Phase{}
	phasesMu.Unlock()
}

// Instructions returns the total instruction count of one inference.
func (s Spec) Instructions() int64 {
	var n int64
	for _, p := range s.cachedPhases() {
		n += p.Count
	}
	return n
}

// Stream returns an OpStream expanding the phases lazily. Streams are
// cheap: concurrent callers share one memoized recipe, each stream
// carrying only its own cursor.
func (s Spec) Stream() sim.OpStream {
	return &phaseStream{phases: s.cachedPhases()}
}

type phaseStream struct {
	phases []Phase
	idx    int
	done   int64
}

func (p *phaseStream) Reset() { p.idx, p.done = 0, 0 }

func (p *phaseStream) Next() (energy.Op, bool) {
	for p.idx < len(p.phases) {
		ph := &p.phases[p.idx]
		if p.done < ph.Count {
			p.done++
			return ph.Op, true
		}
		p.idx++
		p.done = 0
	}
	return energy.Op{}, false
}

// Runs implements sim.RunStream: the phase list already is the stream's
// run-length encoding, which makes every workload eligible for the
// analytic segment engine under constant power.
func (p *phaseStream) Runs() []energy.OpRun {
	runs := make([]energy.OpRun, 0, len(p.phases))
	for _, ph := range p.phases {
		if ph.Count <= 0 {
			continue
		}
		runs = append(runs, energy.OpRun{Op: ph.Op, Count: ph.Count})
	}
	return runs
}

// --- per-benchmark phase construction -----------------------------------

// logic and preset op constructors.
func gateOps(name string, gate mtj.GateKind, gates int64, pairs int) []Phase {
	if gates <= 0 {
		return nil
	}
	return []Phase{
		{Name: name + " preset", Op: energy.Op{Kind: isa.KindPreset, ActivePairs: pairs}, Count: gates},
		{Name: name + " gate", Op: energy.Op{Kind: isa.KindLogic, Gate: gate, ActivePairs: pairs}, Count: gates},
	}
}

func actOp(name string, cols int) Phase {
	return Phase{Name: name, Op: energy.Op{Kind: isa.KindAct, ActCols: cols}, Count: 1}
}

func rwOps(name string, reads, writes int64) []Phase {
	var out []Phase
	if reads > 0 {
		out = append(out, Phase{Name: name + " read", Op: energy.Op{Kind: isa.KindRead}, Count: reads})
	}
	if writes > 0 {
		out = append(out, Phase{Name: name + " write", Op: energy.Op{Kind: isa.KindWrite}, Count: writes})
	}
	return out
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func log2Ceil(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}

// svmPhases models one SVM inference: per-support-vector dot products in
// packed columns, squaring, coefficient multiply-accumulate, and class
// summation, batched under the parallelism budget.
func svmPhases(s Spec) []Phase {
	dotBits := 2*s.InputBits + log2Ceil(s.Features) // dot product width
	accBits := 40                                   // signed score accumulator

	// Column packing under the 1024-row budget (greedy column-minimal).
	var perElem, scratch int
	if s.InputBits == 1 {
		perElem = 2          // input bit + SV bit
		scratch = 2*248 + 64 // tree popcount scratch for ≤248 elements
	} else {
		perElem = 2 * s.InputBits
		scratch = 12*s.InputBits + 2*dotBits + 64 // multiplier + accumulator
	}
	elemsPerCol := (isa.Rows - scratch) / perElem
	if elemsPerCol < 1 {
		elemsPerCol = 1
	}
	if elemsPerCol > s.Features {
		elemsPerCol = s.Features
	}
	colsPerSV := ceilDiv(s.Features, elemsPerCol)
	totalCols := s.NumSV * colsPerSV
	budget := s.budget()
	batches := ceilDiv(totalCols, budget)
	colsPerBatch := ceilDiv(totalCols, batches)

	var phases []Phase
	// Input transfer from the sensor buffer, replicated per SV group.
	inputRows := ceilDiv(s.Features*s.InputBits, isa.Cols)
	replicaRows := int64(ceilDiv(s.Features*s.InputBits*s.NumSV, isa.Cols))
	phases = append(phases, rwOps("input load", int64(inputRows), replicaRows)...)

	// Per-column in-place work, repeated per batch.
	var macGates int64
	if s.InputBits == 1 {
		// AND multiply + tree popcount of the column's elements.
		macGates = int64(elemsPerCol) + int64(costPopTree(elemsPerCol))
	} else {
		macGates = int64(elemsPerCol) * int64(costMAC(s.InputBits, dotBits))
	}
	// Partial-sum merge across the SV's columns: log2 levels of row
	// moves plus in-column adds.
	mergeLevels := log2Ceil(colsPerSV)
	mergeGates := int64(mergeLevels) * int64(costAdd(dotBits))
	// Square and coefficient MAC, one column per SV.
	sqGates := int64(costSquare(dotBits))
	coeffGates := int64(costMulFixed(accBits, 20) + costAddFixed(accBits))

	for b := 0; b < batches; b++ {
		phases = append(phases, actOp("activate batch", colsPerBatch))
		phases = append(phases, gateOps("dot", mtj.NAND2, macGates, colsPerBatch)...)
		if mergeLevels > 0 {
			moveRows := int64(dotBits * ceilDiv(colsPerBatch, isa.Cols))
			phases = append(phases, rwOps("merge", moveRows*int64(mergeLevels), moveRows*int64(mergeLevels))...)
			phases = append(phases, gateOps("merge add", mtj.MAJ3, mergeGates, colsPerBatch/2)...)
		}
		svCols := ceilDiv(colsPerBatch, colsPerSV)
		phases = append(phases, gateOps("square", mtj.NAND2, sqGates, svCols)...)
		phases = append(phases, gateOps("coeff mac", mtj.MAJ3, coeffGates, svCols)...)
	}

	// Class summation: tree-sum the per-SV scores down to one score per
	// class.
	sumLevels := log2Ceil(ceilDiv(s.NumSV, s.Classes))
	active := s.NumSV
	for l := 0; l < sumLevels; l++ {
		moveRows := int64(accBits * ceilDiv(active, isa.Cols))
		phases = append(phases, rwOps("class sum", moveRows, moveRows)...)
		phases = append(phases, gateOps("class add", mtj.MAJ3, int64(costAdd(accBits)), active/2)...)
		active = ceilDiv(active, 2)
	}
	// Result read-out.
	phases = append(phases, rwOps("readout", int64(ceilDiv(s.Classes*accBits, isa.Cols)+1), 0)...)
	return compactPhases(phases)
}

// bnnPhases models one BNN inference: per-layer XNOR + popcount +
// threshold with neurons spread across columns, activations
// redistributed between layers through the row buffer.
func bnnPhases(s Spec) []Phase {
	budget := s.budget()
	widths := append([]int{s.Features}, s.Hidden...)
	widths = append(widths, s.Classes)

	var phases []Phase
	// Input transfer, replicated into the first layer's neuron columns.
	inputRows := ceilDiv(s.Features*s.InputBits, isa.Cols)
	phases = append(phases, rwOps("input load", int64(inputRows), int64(inputRows*widths[1]/isa.Cols+1))...)

	for l := 0; l+1 < len(widths); l++ {
		nIn, nOut := widths[l], widths[l+1]
		first := l == 0 && s.InputBits == 8
		last := l+2 == len(widths)

		// Pack each neuron into as few columns as the row budget allows.
		var perElem, scratch int
		if first {
			perElem = s.InputBits   // activations only; weights fold into the program
			scratch = 2*(16+8) + 64 // 16-bit signed accumulator + adder scratch
		} else {
			perElem = 1
			scratch = 2*248 + 64
		}
		elemsPerCol := (isa.Rows - scratch) / perElem
		if elemsPerCol < 1 {
			elemsPerCol = 1
		}
		if elemsPerCol > nIn {
			elemsPerCol = nIn
		}
		colsPerNeuron := ceilDiv(nIn, elemsPerCol)
		totalCols := nOut * colsPerNeuron
		batches := ceilDiv(totalCols, budget)
		colsPerBatch := ceilDiv(totalCols, batches)

		var neuronGates int64
		if first {
			// ±8-bit add/sub per element into a 16-bit accumulator.
			neuronGates = int64(elemsPerCol) * int64(costAddFixed(16))
		} else {
			// Constant-folded XNOR (≈ one gate per element) + tree
			// popcount.
			neuronGates = int64(elemsPerCol) + int64(costPopTree(elemsPerCol))
		}
		mergeLevels := log2Ceil(colsPerNeuron)
		popBits := log2Ceil(nIn) + 2
		mergeGates := int64(mergeLevels) * int64(costAdd(popBits))
		thresholdGates := int64(costAdd(popBits) + popBits) // compare = subtract + sign

		for b := 0; b < batches; b++ {
			phases = append(phases, actOp("activate layer batch", colsPerBatch))
			phases = append(phases, gateOps("neuron", mtj.NAND2, neuronGates, colsPerBatch)...)
			if mergeLevels > 0 {
				moveRows := int64(popBits * ceilDiv(colsPerBatch, isa.Cols))
				phases = append(phases, rwOps("merge", moveRows*int64(mergeLevels), moveRows*int64(mergeLevels))...)
				phases = append(phases, gateOps("merge add", mtj.MAJ3, mergeGates, colsPerBatch/2)...)
			}
			if !last {
				neurons := ceilDiv(colsPerBatch, colsPerNeuron)
				phases = append(phases, gateOps("threshold", mtj.MAJ3, thresholdGates, neurons)...)
			}
		}
		if !last {
			// Redistribute the nOut activation bits into the next
			// layer's neuron columns.
			bits := nOut * widths[l+2]
			phases = append(phases, rwOps("activations", int64(ceilDiv(nOut, isa.Cols)), int64(ceilDiv(bits, isa.Cols)))...)
		}
	}
	phases = append(phases, rwOps("readout", 1, 0)...)
	return compactPhases(phases)
}

// compactPhases drops empty phases.
func compactPhases(in []Phase) []Phase {
	out := in[:0]
	for _, p := range in {
		if p.Count > 0 {
			out = append(out, p)
		}
	}
	return out
}

// --- macro costs, measured from the compiler -----------------------------

// probe builds a fragment with the real compiler and returns its gate
// count (each gate is one preset plus one logic instruction).
func probe(f func(b *compile.Builder)) int {
	b := compile.NewBuilder(isa.Rows)
	b.ActivateBroadcast([]uint16{0})
	f(b)
	if b.Err() != nil {
		panic(fmt.Sprintf("workload: probe failed: %v", b.Err()))
	}
	return b.GateCount()
}

var (
	costMu    sync.Mutex
	costCache = map[string]int{}
)

func cached(key string, f func() int) int {
	costMu.Lock()
	defer costMu.Unlock()
	if v, ok := costCache[key]; ok {
		return v
	}
	v := f()
	costCache[key] = v
	return v
}

// costMAC is one multiply-accumulate: bits×bits multiply plus the
// running-sum add into an accBits accumulator.
func costMAC(bits, accBits int) int {
	return cached(fmt.Sprintf("mac%d-%d", bits, accBits), func() int {
		return probe(func(b *compile.Builder) {
			x := b.AllocWord(bits, 0)
			y := b.AllocWord(bits, 0)
			acc := b.AllocWord(accBits, 1)
			p := b.MulWords(x, y)
			b.AddFixed(acc, p, false)
		})
	})
}

// costAdd is a ripple add at the given width.
func costAdd(w int) int {
	return cached(fmt.Sprintf("add%d", w), func() int {
		return probe(func(b *compile.Builder) {
			x := b.AllocWord(w, 0)
			y := b.AllocWord(w, 0)
			b.AddWords(x, y)
		})
	})
}

// costAddFixed is a fixed-width add/subtract at width w.
func costAddFixed(w int) int {
	return cached(fmt.Sprintf("addf%d", w), func() int {
		return probe(func(b *compile.Builder) {
			x := b.AllocWord(w, 0)
			y := b.AllocWord(w, 0)
			b.AddFixed(x, y, true)
		})
	})
}

// costSquare squares a w-bit word.
func costSquare(w int) int {
	return cached(fmt.Sprintf("sq%d", w), func() int {
		return probe(func(b *compile.Builder) {
			x := b.AllocWord(w, 0)
			b.Square(x)
		})
	})
}

// costMulFixed multiplies a signed a-bit value by an unsigned b-bit one.
func costMulFixed(a, bBits int) int {
	return cached(fmt.Sprintf("mulf%d-%d", a, bBits), func() int {
		return probe(func(b *compile.Builder) {
			x := b.AllocWord(a, 0)
			y := b.AllocWord(bBits, 0)
			b.MulFixed(x, y)
		})
	})
}

// costPopTree is a tree popcount over n bits. Large n extrapolates
// linearly from a measured point (the tree cost is linear in n), since a
// probe beyond a few hundred bits exceeds the 1024-row scratch space.
func costPopTree(n int) int {
	return cached(fmt.Sprintf("pop%d", n), func() int {
		const probeMax = 192
		measure := func(k int) int {
			return probe(func(b *compile.Builder) {
				bits := make([]compile.Bit, k)
				for i := range bits {
					bits[i] = b.Alloc(i & 1)
				}
				b.PopCount(bits)
			})
		}
		if n <= probeMax {
			return measure(n)
		}
		lo, hi := measure(probeMax/2), measure(probeMax)
		slope := float64(hi-lo) / float64(probeMax/2)
		return hi + int(slope*float64(n-probeMax))
	})
}
