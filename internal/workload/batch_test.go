package workload

import (
	"testing"
)

// TestHotBatchesMatchSequential: every registry entry's batched
// classifier must agree label-for-label with its sequential reference
// on a capacity-spanning sample pool, including across back-to-back
// batches on the same engine.
func TestHotBatchesMatchSequential(t *testing.T) {
	for _, hb := range HotBatches() {
		hb := hb
		t.Run(hb.Name, func(t *testing.T) {
			if hb.Capacity <= 0 || hb.LaneWidth <= 0 || hb.Capacity%hb.LaneWidth != 0 {
				t.Fatalf("degenerate shape: capacity %d, lane width %d", hb.Capacity, hb.LaneWidth)
			}
			batched, err := hb.NewBatched()
			if err != nil {
				t.Fatal(err)
			}
			sequential, err := hb.NewSequential()
			if err != nil {
				t.Fatal(err)
			}
			// Two rounds: catches state leaking between replays.
			for round := 0; round < 2; round++ {
				n := 2*hb.LaneWidth + 1
				if n > hb.Capacity {
					n = hb.Capacity
				}
				samples := hb.Samples(n)
				if len(samples) != n {
					t.Fatalf("round %d: got %d samples, want %d", round, len(samples), n)
				}
				got, err := batched(samples)
				if err != nil {
					t.Fatal(err)
				}
				want, err := sequential(samples)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != n || len(want) != n {
					t.Fatalf("round %d: %d batched / %d sequential labels, want %d", round, len(got), len(want), n)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("round %d sample %d: batched class %d, sequential %d", round, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestHotBatchByName: lookup resolves registry names and rejects
// unknown ones.
func TestHotBatchByName(t *testing.T) {
	for _, hb := range HotBatches() {
		got, err := HotBatchByName(hb.Name)
		if err != nil || got.Name != hb.Name {
			t.Fatalf("lookup %q: %v %v", hb.Name, got.Name, err)
		}
	}
	if _, err := HotBatchByName("nope"); err == nil {
		t.Fatal("unknown hot batch accepted")
	}
}
