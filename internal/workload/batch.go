package workload

import (
	"fmt"
	"sync"

	"mouse/internal/array"
	"mouse/internal/bnn"
	"mouse/internal/dataset"
	"mouse/internal/mtj"
	"mouse/internal/svm"
)

// The hot-batch registry: the two trained, bit-accurate inference
// workloads the batch throughput experiment replays — the ADULT SVM in
// the SV-parallel mapping and the small binarized network in the
// column-batched BNN mapping, the same recipes as the packed-vs-scalar
// micro-benchmarks next to BENCH_1.json so the ns/inference numbers
// stay comparable across the trajectory. Training and compilation are
// cached process-wide (sync.Once): compile once, replay per batch.

// Classifier labels a batch of samples. Implementations own whatever
// machine state they mutate, so distinct Classifier values may run
// concurrently but a single value must not.
type Classifier func(samples [][]int) ([]int, error)

// HotBatch is one batch-ready inference workload.
type HotBatch struct {
	// Name keys the workload in reports ("svm-adult", "bnn-mnist16").
	Name string

	// Capacity is the most samples one batched replay serves: 64 lanes
	// times the mapping's column batch.
	Capacity int

	// LaneWidth is the samples served per lane (the mapping's column
	// batch); a run at L lanes batches L*LaneWidth samples.
	LaneWidth int

	// Samples returns n deterministic input vectors, cycling the
	// workload's held-out split.
	Samples func(n int) [][]int

	// Features returns the input-vector length the mapping expects,
	// training the underlying model on first call — request validation
	// for serving layers, without handing out the mapping itself.
	Features func() (int, error)

	// NewBatched builds a bit-sliced batch classifier (one flat-program
	// replay per call, alloc-free in steady state).
	NewBatched func() (Classifier, error)

	// NewSequential builds the sequential reference: the pre-batch
	// controller path, one MachineRunner pass per LaneWidth samples.
	NewSequential func() (Classifier, error)
}

// HotBatches returns the registry. The underlying models are trained
// lazily on first use and shared; the returned constructors are safe to
// call from concurrent goroutines and every call yields an independent
// classifier.
func HotBatches() []HotBatch {
	return []HotBatch{hotSVM(), hotBNN()}
}

// HotBatchByName resolves a registry entry.
func HotBatchByName(name string) (HotBatch, error) {
	for _, hb := range HotBatches() {
		if hb.Name == name {
			return hb, nil
		}
	}
	return HotBatch{}, fmt.Errorf("workload: unknown hot batch %q", name)
}

// --- ADULT SVM, SV-parallel mapping (one sample per run, 64 per batch) ---

var svmHot struct {
	once sync.Once
	ds   *dataset.Set
	mp   *svm.ParallelMapping
	err  error
}

func svmHotModel() (*dataset.Set, *svm.ParallelMapping, error) {
	svmHot.once.Do(func() {
		ds := dataset.Adult(77, 24, 10)
		m, err := svm.Train(ds, svm.DefaultTrainConfig())
		if err != nil {
			svmHot.err = err
			return
		}
		im, err := m.Quantize(10)
		if err != nil {
			svmHot.err = err
			return
		}
		mp, err := svm.CompileParallelMapping(im, 1024, 8)
		if err != nil {
			svmHot.err = err
			return
		}
		svmHot.ds, svmHot.mp = ds, mp
	})
	return svmHot.ds, svmHot.mp, svmHot.err
}

func hotSVM() HotBatch {
	return HotBatch{
		Name:      "svm-adult",
		Capacity:  array.MaxLanes,
		LaneWidth: 1,
		Samples: func(n int) [][]int {
			ds, _, err := svmHotModel()
			if err != nil {
				return nil
			}
			return cycleSamples(ds.Test, n)
		},
		Features: func() (int, error) {
			_, mp, err := svmHotModel()
			if err != nil {
				return 0, err
			}
			return mp.Features(), nil
		},
		NewBatched: func() (Classifier, error) {
			_, mp, err := svmHotModel()
			if err != nil {
				return nil, err
			}
			eng, err := mp.NewBatchEngine(mtj.ModernSTT(), 1024)
			if err != nil {
				return nil, err
			}
			return eng.ClassifyBatch, nil
		},
		NewSequential: func() (Classifier, error) {
			_, mp, err := svmHotModel()
			if err != nil {
				return nil, err
			}
			mach := mp.NewMachine(mtj.ModernSTT(), 1024)
			return func(samples [][]int) ([]int, error) {
				out := make([]int, len(samples))
				for i, x := range samples {
					c, err := mp.Classify(mach, x)
					if err != nil {
						return nil, err
					}
					out[i] = c
				}
				return out, nil
			}, nil
		},
	}
}

// --- small binarized network, column-batched mapping (64 per run) ---

// bnnHotBatch is the mapping's column batch: 64 samples per controller
// pass sequentially, 64*64 per replay batched.
const bnnHotBatch = 64

var bnnHot struct {
	once sync.Once
	ds   *dataset.Set
	net  *bnn.Network
	mp   *bnn.Mapping
	err  error
}

func bnnHotModel() (*dataset.Set, *bnn.Network, *bnn.Mapping, error) {
	bnnHot.once.Do(func() {
		const feats = 64
		small := &dataset.Set{Name: "hot-bnn", NumFeatures: feats, NumClasses: 10}
		for i := 0; i < 40; i++ {
			x := make([]int, feats)
			for j := range x {
				x[j] = (i*j + j%3) & 1
			}
			small.Train = append(small.Train, dataset.Sample{X: x, Label: i % 10})
		}
		small.Test = small.Train
		cfg := bnn.Config{Name: "hot-bnn", In: feats, Hidden: []int{16}, Out: 10, InputBits: 1}
		net, err := bnn.Train(small, cfg, bnn.TrainConfig{Epochs: 2, LR: 0.002, Seed: 1})
		if err != nil {
			bnnHot.err = err
			return
		}
		mp, err := bnn.CompileMapping(net, 1024, bnnHotBatch)
		if err != nil {
			bnnHot.err = err
			return
		}
		bnnHot.ds, bnnHot.net, bnnHot.mp = small, net, mp
	})
	return bnnHot.ds, bnnHot.net, bnnHot.mp, bnnHot.err
}

func hotBNN() HotBatch {
	return HotBatch{
		Name:      "bnn-hidden16",
		Capacity:  bnnHotBatch * array.MaxLanes,
		LaneWidth: bnnHotBatch,
		Samples: func(n int) [][]int {
			ds, _, _, err := bnnHotModel()
			if err != nil {
				return nil
			}
			return cycleSamples(ds.Test, n)
		},
		Features: func() (int, error) {
			_, _, mp, err := bnnHotModel()
			if err != nil {
				return 0, err
			}
			return mp.Features(), nil
		},
		NewBatched: func() (Classifier, error) {
			_, net, mp, err := bnnHotModel()
			if err != nil {
				return nil, err
			}
			eng, err := mp.NewBatchEngine(mtj.ModernSTT(), 1024, net)
			if err != nil {
				return nil, err
			}
			return eng.ClassifyBatch, nil
		},
		NewSequential: func() (Classifier, error) {
			_, net, mp, err := bnnHotModel()
			if err != nil {
				return nil, err
			}
			mach := mp.NewMachine(mtj.ModernSTT(), 1024)
			return func(samples [][]int) ([]int, error) {
				out := make([]int, 0, len(samples))
				for start := 0; start < len(samples); start += bnnHotBatch {
					end := start + bnnHotBatch
					if end > len(samples) {
						end = len(samples)
					}
					got, err := mp.ClassifyBatch(mach, net, samples[start:end])
					if err != nil {
						return nil, err
					}
					out = append(out, got...)
				}
				return out, nil
			}, nil
		},
	}
}

func cycleSamples(pool []dataset.Sample, n int) [][]int {
	if len(pool) == 0 {
		return nil
	}
	out := make([][]int, n)
	for i := range out {
		out[i] = pool[i%len(pool)].X
	}
	return out
}
