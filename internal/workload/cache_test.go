package workload

import (
	"reflect"
	"sync"
	"testing"
)

// TestPhasesCacheMatchesColdBuild checks the memoized recipe is exactly
// the one a from-scratch compile produces, for every built-in benchmark.
func TestPhasesCacheMatchesColdBuild(t *testing.T) {
	flushCaches()
	for _, s := range Benchmarks() {
		cold := buildPhases(s)
		if got := s.Phases(); !reflect.DeepEqual(got, cold) {
			t.Errorf("%s: cached phases differ from cold build", s.Name)
		}
		// A second lookup must hit the cache and still agree.
		if got := s.Phases(); !reflect.DeepEqual(got, cold) {
			t.Errorf("%s: second cached lookup differs", s.Name)
		}
	}
}

// TestPhasesReturnsPrivateCopy guards the cache against callers that
// mutate the slice Phases hands out.
func TestPhasesReturnsPrivateCopy(t *testing.T) {
	s, err := ByName("SVM ADULT")
	if err != nil {
		t.Fatal(err)
	}
	first := s.Phases()
	first[0].Count = -12345
	first[0].Name = "clobbered"
	second := s.Phases()
	if second[0].Count == -12345 || second[0].Name == "clobbered" {
		t.Fatalf("mutating a returned phase list corrupted the cache")
	}
}

// TestConcurrentStreamsAreIndependent drives many goroutines through
// shared memoized recipes at once — under `go test -race` this is the
// proof the sweep engine's workers can share workload state.
func TestConcurrentStreamsAreIndependent(t *testing.T) {
	flushCaches()
	specs := Benchmarks()
	counts := make([]int64, 16)
	var wg sync.WaitGroup
	for g := range counts {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st := specs[g%len(specs)].Stream()
			for _, ok := st.Next(); ok; _, ok = st.Next() {
				counts[g]++
			}
		}(g)
	}
	wg.Wait()
	for g, n := range counts {
		if want := specs[g%len(specs)].Instructions(); n != want {
			t.Errorf("%s: concurrent stream drained %d ops, want %d",
				specs[g%len(specs)].Name, n, want)
		}
	}
}

// Cold vs cached trace generation: the cold path re-probes every macro
// cost through the real compiler; the cached path is a map lookup plus
// a cursor allocation. The sweep engine depends on this gap staying
// large — hundreds of jobs share six recipes.
func BenchmarkTraceGenerationCold(b *testing.B) {
	s, err := ByName("SVM ADULT")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		flushCaches()
		if s.Stream() == nil {
			b.Fatal("nil stream")
		}
	}
}

func BenchmarkTraceGenerationCached(b *testing.B) {
	s, err := ByName("SVM ADULT")
	if err != nil {
		b.Fatal(err)
	}
	flushCaches()
	s.Stream() // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Stream() == nil {
			b.Fatal("nil stream")
		}
	}
}
