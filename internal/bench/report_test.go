package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestExperimentRegistryIsComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table4", "fig9", "fig10",
		"fig11", "fig12", "fft", "robustness", "checkpoint", "parallelism", "crossover",
		"batch", "segment", "fleet"}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("%d experiments, want %d", len(exps), len(want))
	}
	for i, e := range exps {
		if e.Name != want[i] {
			t.Errorf("experiment %d named %q, want %q", i, e.Name, want[i])
		}
		if e.Print == nil || e.Rows == nil {
			t.Errorf("%s: missing Print or Rows", e.Name)
		}
	}
}

func TestSelectExperiments(t *testing.T) {
	if _, err := selectExperiments("frobnicate"); err == nil {
		t.Errorf("unknown experiment accepted")
	}
	one, err := selectExperiments("fig11")
	if err != nil || len(one) != 1 || one[0].Name != "fig11" {
		t.Fatalf("fig11 selection: %v %v", one, err)
	}
	all, err := selectExperiments("all")
	if err != nil || len(all) != len(Experiments()) {
		t.Fatalf("all selection: %d %v", len(all), err)
	}
}

// TestReportRoundTrip checks the report survives a JSON round trip with
// the schema fields intact and typed rows preserved structurally —
// mousebench -json output is consumed by trajectory tooling, not only
// humans.
func TestReportRoundTrip(t *testing.T) {
	rep, err := BuildReport("checkpoint", 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || rep.Tool != "mousebench" || rep.Parallelism != 2 {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Name != "checkpoint" {
		t.Fatalf("experiments: %+v", rep.Experiments)
	}
	if rep.Experiments[0].WallSeconds <= 0 {
		t.Errorf("wall clock not recorded")
	}
	rows, ok := rep.Experiments[0].Rows.([]CheckpointRow)
	if !ok || len(rows) != 3 {
		t.Fatalf("rows: %#v", rep.Experiments[0].Rows)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Schema != Schema || len(decoded.Experiments) != 1 {
		t.Fatalf("decoded: %+v", decoded)
	}
	raw, ok := decoded.Experiments[0].Rows.([]any)
	if !ok || len(raw) != 3 {
		t.Fatalf("decoded rows: %#v", decoded.Experiments[0].Rows)
	}
	row, ok := raw[0].(map[string]any)
	if !ok {
		t.Fatalf("decoded row: %#v", raw[0])
	}
	if _, ok := row["Interval"]; !ok {
		t.Errorf("checkpoint row lost Interval field: %v", row)
	}
}

func TestNormalizeStripsRunEnvironment(t *testing.T) {
	a, err := BuildReport("parallelism", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildReport("parallelism", 5)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatalf("reports with different parallelism should differ before Normalize")
	}
	a.Normalize()
	b.Normalize()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("normalized reports differ: %+v vs %+v", a, b)
	}
}

// TestBenchTrajectory consumes the committed BENCH_*.json perf
// trajectory. Older snapshots were written by older registries, so the
// contract is monotone, not uniform: the numbered files must be
// contiguous from BENCH_0.json, every file schema-valid with a
// non-decreasing schema version, each snapshot's experiment set must
// contain its predecessor's (experiments are only ever added), and the
// newest snapshot must cover the full current registry.
func TestBenchTrajectory(t *testing.T) {
	paths, err := filepath.Glob("../../BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("seed baseline BENCH_0.json missing")
	}
	for i := range paths {
		want := fmt.Sprintf("BENCH_%d.json", i)
		found := false
		for _, p := range paths {
			if filepath.Base(p) == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("trajectory %v is not contiguous: missing %s", paths, want)
		}
	}
	var prevVersion int
	var prevSeen map[string]bool
	for i := range paths {
		name := fmt.Sprintf("BENCH_%d.json", i)
		data, err := os.ReadFile(filepath.Join("../..", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var rep Report
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
		var version int
		if _, err := fmt.Sscanf(rep.Schema, "mouse-bench/v%d", &version); err != nil || version < 1 {
			t.Fatalf("%s: unparseable schema %q", name, rep.Schema)
		}
		if version < prevVersion {
			t.Errorf("%s: schema version v%d regressed below v%d", name, version, prevVersion)
		}
		prevVersion = version
		seen := map[string]bool{}
		for _, e := range rep.Experiments {
			if e.Name == "" || e.Rows == nil {
				t.Errorf("%s: experiment incomplete: %+v", name, e)
			}
			if e.WallSeconds < 0 {
				t.Errorf("%s: %s: negative wall clock", name, e.Name)
			}
			if seen[e.Name] {
				t.Errorf("%s: duplicate experiment %q", name, e.Name)
			}
			seen[e.Name] = true
		}
		for exp := range prevSeen {
			if !seen[exp] {
				t.Errorf("%s: dropped experiment %q present in BENCH_%d.json", name, exp, i-1)
			}
		}
		prevSeen = seen
	}
	// The newest snapshot must speak for the whole current registry.
	newest := fmt.Sprintf("BENCH_%d.json", len(paths)-1)
	for _, e := range Experiments() {
		if !prevSeen[e.Name] {
			t.Errorf("%s: missing experiment %q from the current registry", newest, e.Name)
		}
	}
}

func TestPrintedSeparatorFraming(t *testing.T) {
	var buf bytes.Buffer
	if err := RunPrinted(&buf, "table2", 1); err != nil {
		t.Fatal(err)
	}
	if strings.HasSuffix(buf.String(), "\n\n") {
		t.Errorf("single experiment has a trailing blank line")
	}
	if err := RunPrinted(&buf, "nope", 1); err == nil {
		t.Errorf("unknown experiment accepted")
	}
}
