package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestExperimentRegistryIsComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table4", "fig9", "fig10",
		"fig11", "fig12", "fft", "robustness", "checkpoint", "parallelism", "crossover"}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("%d experiments, want %d", len(exps), len(want))
	}
	for i, e := range exps {
		if e.Name != want[i] {
			t.Errorf("experiment %d named %q, want %q", i, e.Name, want[i])
		}
		if e.Print == nil || e.Rows == nil {
			t.Errorf("%s: missing Print or Rows", e.Name)
		}
	}
}

func TestSelectExperiments(t *testing.T) {
	if _, err := selectExperiments("frobnicate"); err == nil {
		t.Errorf("unknown experiment accepted")
	}
	one, err := selectExperiments("fig11")
	if err != nil || len(one) != 1 || one[0].Name != "fig11" {
		t.Fatalf("fig11 selection: %v %v", one, err)
	}
	all, err := selectExperiments("all")
	if err != nil || len(all) != len(Experiments()) {
		t.Fatalf("all selection: %d %v", len(all), err)
	}
}

// TestReportRoundTrip checks the report survives a JSON round trip with
// the schema fields intact and typed rows preserved structurally —
// mousebench -json output is consumed by trajectory tooling, not only
// humans.
func TestReportRoundTrip(t *testing.T) {
	rep, err := BuildReport("checkpoint", 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || rep.Tool != "mousebench" || rep.Parallelism != 2 {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Name != "checkpoint" {
		t.Fatalf("experiments: %+v", rep.Experiments)
	}
	if rep.Experiments[0].WallSeconds <= 0 {
		t.Errorf("wall clock not recorded")
	}
	rows, ok := rep.Experiments[0].Rows.([]CheckpointRow)
	if !ok || len(rows) != 3 {
		t.Fatalf("rows: %#v", rep.Experiments[0].Rows)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Schema != Schema || len(decoded.Experiments) != 1 {
		t.Fatalf("decoded: %+v", decoded)
	}
	raw, ok := decoded.Experiments[0].Rows.([]any)
	if !ok || len(raw) != 3 {
		t.Fatalf("decoded rows: %#v", decoded.Experiments[0].Rows)
	}
	row, ok := raw[0].(map[string]any)
	if !ok {
		t.Fatalf("decoded row: %#v", raw[0])
	}
	if _, ok := row["Interval"]; !ok {
		t.Errorf("checkpoint row lost Interval field: %v", row)
	}
}

func TestNormalizeStripsRunEnvironment(t *testing.T) {
	a, err := BuildReport("parallelism", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildReport("parallelism", 5)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatalf("reports with different parallelism should differ before Normalize")
	}
	a.Normalize()
	b.Normalize()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("normalized reports differ: %+v vs %+v", a, b)
	}
}

// TestSeedBaselineReport consumes the committed BENCH_*.json perf
// trajectory: the seed baseline (BENCH_0.json) must exist, and every
// snapshot a PR adds on top of it must stay schema-valid and cover the
// full experiment registry, so trajectory files remain comparable
// across the whole sequence.
func TestSeedBaselineReport(t *testing.T) {
	paths, err := filepath.Glob("../../BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("seed baseline BENCH_0.json missing")
	}
	sort.Strings(paths)
	if filepath.Base(paths[0]) != "BENCH_0.json" {
		t.Fatalf("trajectory %v does not start at BENCH_0.json", paths)
	}
	for _, path := range paths {
		name := filepath.Base(path)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var rep Report
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
		if rep.Schema != Schema {
			t.Errorf("%s: schema %q, want %q", name, rep.Schema, Schema)
		}
		if len(rep.Experiments) != len(Experiments()) {
			t.Errorf("%s has %d experiments, registry has %d", name, len(rep.Experiments), len(Experiments()))
		}
		seen := map[string]bool{}
		for _, e := range rep.Experiments {
			if e.Name == "" || e.Rows == nil {
				t.Errorf("%s: experiment incomplete: %+v", name, e)
			}
			if e.WallSeconds < 0 {
				t.Errorf("%s: %s: negative wall clock", name, e.Name)
			}
			if seen[e.Name] {
				t.Errorf("%s: duplicate experiment %q", name, e.Name)
			}
			seen[e.Name] = true
		}
		for _, e := range Experiments() {
			if !seen[e.Name] {
				t.Errorf("%s: missing experiment %q", name, e.Name)
			}
		}
	}
}

func TestPrintedSeparatorFraming(t *testing.T) {
	var buf bytes.Buffer
	if err := RunPrinted(&buf, "table2", 1); err != nil {
		t.Fatal(err)
	}
	if strings.HasSuffix(buf.String(), "\n\n") {
		t.Errorf("single experiment has a trailing blank line")
	}
	if err := RunPrinted(&buf, "nope", 1); err == nil {
		t.Errorf("unknown experiment accepted")
	}
}
