package bench

import (
	"os"
	"strings"
	"testing"

	"mouse/internal/workload"
)

// TestComputeSegmentShapes: the experiment covers every benchmark,
// verifies stepping-vs-segment equivalence inline (zero mismatches),
// and sweeps the full Fig. 9 power grid. Correctness runs in the
// regular suite; the speedup claim lives behind the MOUSE_BENCH_SMOKE
// gate.
func TestComputeSegmentShapes(t *testing.T) {
	rows, err := ComputeSegment(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workload.Benchmarks()) {
		t.Fatalf("%d rows, want one per benchmark", len(rows))
	}
	for _, r := range rows {
		if r.Powers != len(Powers()) {
			t.Errorf("%s: swept %d powers, want %d", r.Workload, r.Powers, len(Powers()))
		}
		if r.Mismatches != 0 {
			t.Errorf("%s: %d grid points diverge between engines", r.Workload, r.Mismatches)
		}
		if r.Restarts == 0 {
			t.Errorf("%s: zero restarts across the grid — the sweep did not exercise intermittency", r.Workload)
		}
	}
}

// TestPrintSegmentCheckedDeterministic: the registry's table view must
// be byte-identical across runs and parallelism (no wall-clock columns).
func TestPrintSegmentCheckedDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := PrintSegmentChecked(&a, 1); err != nil {
		t.Fatal(err)
	}
	if err := PrintSegmentChecked(&b, 0); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("table not deterministic across parallelism:\n--- workers=1\n%s\n--- workers=auto\n%s", a.String(), b.String())
	}
}

// TestSegmentThroughputRegression is the bench-smoke gate (set
// MOUSE_BENCH_SMOKE=1): the segment engine must beat the stepping path
// by at least 3x on every benchmark's Fig. 9 sweep. The committed
// BENCH_3.json records the real margin (≥10x); the CI floor is lower so
// shared runners don't flake the gate.
func TestSegmentThroughputRegression(t *testing.T) {
	if os.Getenv("MOUSE_BENCH_SMOKE") == "" {
		t.Skip("set MOUSE_BENCH_SMOKE=1 to run the throughput regression gate")
	}
	rows, err := ComputeSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%s: %.0f ns stepping, %.0f ns segment, %.1fx", r.Workload, r.NsStepping, r.NsSegment, r.Speedup)
		if r.Mismatches != 0 {
			t.Errorf("%s: %d mismatches", r.Workload, r.Mismatches)
		}
		if r.Speedup < 3 {
			t.Errorf("%s: speedup %.2fx below the 3x regression floor", r.Workload, r.Speedup)
		}
	}
}
