package bench

import (
	"bytes"
	"strings"
	"testing"

	"mouse/internal/mtj"
)

func TestTableIAllCasesSafe(t *testing.T) {
	for _, cfg := range mtj.Configs() {
		for _, r := range ComputeTableI(cfg) {
			if r.Output != r.Correct {
				t.Errorf("%s: AND(%d,%d) after interrupt = %d, want %d",
					cfg.Name, r.InputA, r.InputB, r.Output, r.Correct)
			}
		}
	}
	// The impossible quadrant: a should-not-switch gate never switches,
	// even with a full first pulse.
	rows := ComputeTableI(mtj.ModernSTT())
	if rows[1].SwitchedBeforeInterrupt {
		t.Errorf("AND(1,1) switched before the interrupt — physically impossible")
	}
	// The bottom-right quadrant: a full pulse switched the output, and
	// the repeat left it switched.
	if !rows[3].SwitchedBeforeInterrupt || rows[3].Output != 0 {
		t.Errorf("AND(0,1) completed case wrong: %+v", rows[3])
	}
}

func TestTableIIIMatchesPaper(t *testing.T) {
	want := map[string][3]float64{ // benchmark -> modern, projected, SHE
		"SVM MNIST":       {50.98, 38.67, 77.35},
		"SVM MNIST (Bin)": {5.43 * 8 / 6.37, 0, 0}, // ratio only, see below
	}
	_ = want
	rows := ComputeTableIII()
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.SHE != 2*r.ProjSTT {
			t.Errorf("%s: SHE area %.2f != 2× projected %.2f", r.Benchmark, r.SHE, r.ProjSTT)
		}
		if r.ProjSTT >= r.ModernSTT {
			t.Errorf("%s: projected area %.2f not below modern %.2f", r.Benchmark, r.ProjSTT, r.ModernSTT)
		}
	}
	// The 64 MB MNIST row reproduces the paper exactly.
	if m := rows[0].ModernSTT; m < 50.8 || m > 51.2 {
		t.Errorf("SVM MNIST modern area %.2f, want ≈50.98", m)
	}
	if p := rows[0].ProjSTT; p < 38.5 || p > 38.9 {
		t.Errorf("SVM MNIST projected area %.2f, want ≈38.67", p)
	}
}

func TestTableIVRows(t *testing.T) {
	rows := ComputeTableIV(0)
	if len(rows) != 6+4+4+2 {
		t.Fatalf("%d rows, want 16", len(rows))
	}
	var mouseBin, sonicMNIST *TableIVRow
	for i := range rows {
		r := &rows[i]
		if strings.HasPrefix(r.System, "MOUSE") {
			if r.LatencyUS <= 0 || r.EnergyUJ <= 0 || r.AreaMM2 <= 0 {
				t.Errorf("%s/%s: non-positive metrics %+v", r.System, r.Benchmark, r)
			}
		}
		if r.Benchmark == "SVM MNIST (Bin)" {
			mouseBin = r
		}
		if r.System == "SONIC" && r.Benchmark == "MNIST" {
			sonicMNIST = r
		}
	}
	if mouseBin == nil || sonicMNIST == nil {
		t.Fatalf("missing rows")
	}
	// The headline claims: orders of magnitude better energy than SONIC
	// and the CPU, with competitive-or-better latency.
	if mouseBin.EnergyUJ*10 > sonicMNIST.EnergyUJ {
		t.Errorf("MOUSE energy %.1f µJ not ≥10× below SONIC's %.1f µJ", mouseBin.EnergyUJ, sonicMNIST.EnergyUJ)
	}
	if mouseBin.LatencyUS > sonicMNIST.LatencyUS/10 {
		t.Errorf("MOUSE latency %.0f µs not far below SONIC's %.0f µs", mouseBin.LatencyUS, sonicMNIST.LatencyUS)
	}
}

func TestFig9Shapes(t *testing.T) {
	cfg := mtj.ModernSTT()
	powers := []float64{60e-6, 500e-6, 5e-3}
	points, err := ComputeFig9(cfg, powers, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Latency decreases monotonically with power for every system.
	series := map[string][]Fig9Point{}
	for _, p := range points {
		series[p.System] = append(series[p.System], p)
	}
	if len(series) != 8 { // 6 benchmarks + 2 SONIC curves
		t.Fatalf("%d series", len(series))
	}
	for sys, pts := range series {
		for i := 1; i < len(pts); i++ {
			if pts[i].LatencySec >= pts[i-1].LatencySec {
				t.Errorf("%s: latency did not fall with power (%.3g → %.3g s)", sys, pts[i-1].LatencySec, pts[i].LatencySec)
			}
		}
	}
	// MOUSE beats SONIC at every power level on the shared benchmarks
	// (Section IX: "significantly lower latency than SONIC, even with a
	// much lower power budget").
	for i := range powers {
		if series["SVM MNIST"][i].LatencySec >= series["SONIC MNIST"][i].LatencySec {
			t.Errorf("MNIST at %.3g W: MOUSE %.3g s not below SONIC %.3g s",
				powers[i], series["SVM MNIST"][i].LatencySec, series["SONIC MNIST"][i].LatencySec)
		}
		if series["SVM HAR"][i].LatencySec >= series["SONIC HAR"][i].LatencySec {
			t.Errorf("HAR at %.3g W: MOUSE not below SONIC", powers[i])
		}
	}
	// Restarts shrink with power.
	low, high := series["SVM MNIST"][0], series["SVM MNIST"][len(powers)-1]
	if low.Restarts <= high.Restarts {
		t.Errorf("restarts did not shrink with power: %d vs %d", low.Restarts, high.Restarts)
	}
}

func TestSHEHasLowestLatencyAtLowPower(t *testing.T) {
	// Section IX: SHE's energy efficiency gives it the latency advantage
	// under harvesting.
	for _, name := range []string{"SVM MNIST (Bin)", "BNN FINN MNIST"} {
		var lat [3]float64
		for i, cfg := range mtj.Configs() {
			points, err := ComputeFig9(cfg, []float64{60e-6}, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range points {
				if p.System == name {
					lat[i] = p.LatencySec
				}
			}
		}
		if !(lat[2] < lat[1] && lat[1] < lat[0]) {
			t.Errorf("%s @60µW: latencies modern=%.3g projected=%.3g SHE=%.3g not strictly improving",
				name, lat[0], lat[1], lat[2])
		}
	}
}

func TestCrossoverPower(t *testing.T) {
	cfg := mtj.ModernSTT()
	p, err := CrossoverPowerW(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 {
		t.Fatalf("crossover power %g", p)
	}
	t.Logf("FP-BNN / SVM-bin latency crossover at %.3g W", p)
	// Below the crossover the energy-hungrier FP-BNN must be slower.
	points, err := ComputeFig9(cfg, []float64{60e-6}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fp, bin float64
	for _, pt := range points {
		switch pt.System {
		case "BNN FPBNN MNIST":
			fp = pt.LatencySec
		case "SVM MNIST (Bin)":
			bin = pt.LatencySec
		}
	}
	if fp <= bin {
		t.Errorf("at 60 µW FP-BNN (%.3g s) should be slower than SVM bin (%.3g s)", fp, bin)
	}
}

func TestBreakdownShares(t *testing.T) {
	var dead [3]float64
	for i, cfg := range mtj.Configs() {
		rows, err := ComputeBreakdown(cfg, 60e-6, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 6 {
			t.Fatalf("%d rows", len(rows))
		}
		backup, d, restore := AverageShares(rows)
		dead[i] = d
		// Overheads are a small fraction of total energy (Section IX).
		if backup > 0.05 || d > 0.15 || restore > 0.05 {
			t.Errorf("%s: shares too large: backup=%.3f dead=%.3f restore=%.3f", cfg.Name, backup, d, restore)
		}
		for _, r := range rows {
			if r.TotalLatency() <= 0 || r.TotalEnergy() <= 0 {
				t.Errorf("%s/%s: empty breakdown", cfg.Name, r.Benchmark)
			}
			// At 60 µW the STT configurations spend most time charging
			// (Section IX); SHE is efficient enough that some benchmarks
			// run largely on live harvest.
			if cfg.Cell == mtj.STT && r.OffLatency < r.OnLatency {
				t.Errorf("%s/%s: at 60 µW most time should be spent charging", cfg.Name, r.Benchmark)
			}
		}
	}
	// Dead share decreases with energy efficiency: Modern ≥ Projected ≥ SHE.
	if !(dead[0] >= dead[1] && dead[1] >= dead[2]) {
		t.Errorf("dead shares not decreasing: modern=%.4f projected=%.4f SHE=%.4f", dead[0], dead[1], dead[2])
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	var buf bytes.Buffer
	PrintTableI(&buf, mtj.ModernSTT())
	PrintTableII(&buf)
	PrintTableIII(&buf)
	PrintTableIV(&buf, 0)
	if err := PrintBreakdown(&buf, mtj.ProjectedSHE(), 60e-6, "Fig. 12", 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "Table II", "Table III", "Table IV", "Fig. 12", "SONIC", "SVM MNIST"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestPrintFig9(t *testing.T) {
	var buf bytes.Buffer
	if err := PrintFig9(&buf, mtj.ProjectedSHE(), 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SONIC MNIST") {
		t.Errorf("Fig. 9 output missing SONIC curve")
	}
}

func TestRobustnessStudy(t *testing.T) {
	rows := ComputeRobustness(0)
	if len(rows) != mtj.NumGates {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.SHE < r.ProjSTT {
			t.Errorf("%v: SHE tolerance %.3f below projected STT %.3f", r.Gate, r.SHE, r.ProjSTT)
		}
		if r.ModernSTT <= 0 || r.ProjSTT <= 0 || r.SHE <= 0 {
			t.Errorf("%v: zero tolerance", r.Gate)
		}
	}
	var buf bytes.Buffer
	PrintRobustness(&buf, 0)
	if !strings.Contains(buf.String(), "array-level limits") {
		t.Errorf("robustness output incomplete")
	}
}

func TestCheckpointSweepShapes(t *testing.T) {
	rows, err := ComputeCheckpointSweep(mtj.ModernSTT(), "SVM ADULT", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Backup shrinks and dead grows as checkpoints thin out.
	if !(rows[0].BackupEnergy > rows[1].BackupEnergy && rows[1].BackupEnergy > rows[2].BackupEnergy) {
		t.Errorf("backup energies not decreasing: %g %g %g",
			rows[0].BackupEnergy, rows[1].BackupEnergy, rows[2].BackupEnergy)
	}
	if rows[2].DeadEnergy <= rows[0].DeadEnergy {
		t.Errorf("dead energy did not grow with interval: %g vs %g", rows[2].DeadEnergy, rows[0].DeadEnergy)
	}
	var buf bytes.Buffer
	if err := PrintCheckpointSweep(&buf, mtj.ModernSTT(), "SVM ADULT", 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "interval") {
		t.Errorf("sweep output incomplete")
	}
	if _, err := ComputeCheckpointSweep(mtj.ModernSTT(), "nope", 0); err == nil {
		t.Errorf("unknown benchmark accepted")
	}
}

func TestPrintParallelism(t *testing.T) {
	var buf bytes.Buffer
	PrintParallelism(&buf)
	if !strings.Contains(buf.String(), "cols") {
		t.Errorf("parallelism output incomplete")
	}
}

// TestFFTComparison checks the Section X related-work shape: the
// intermittent-safe MOUSE FFT beats the non-volatile processor but pays
// a latency penalty against the non-intermittent-safe CRAFFT mapping on
// the same substrate (modern MTJs).
func TestFFTComparison(t *testing.T) {
	rows, err := ComputeFFT(0)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FFTRow{}
	for _, r := range rows {
		byName[r.System] = r
	}
	nvp := byName["NVP (THU1010N) [57]"]
	crafft := byName["CRAFFT on CRAM [19]"]
	mouse := byName["MOUSE Modern STT (intermittent-safe)"]
	if mouse.LatencySec == 0 {
		t.Fatalf("missing MOUSE row: %v", rows)
	}
	if mouse.LatencySec >= nvp.LatencySec {
		t.Errorf("MOUSE %.3g s not below the NVP's %.3g s", mouse.LatencySec, nvp.LatencySec)
	}
	if mouse.LatencySec <= crafft.LatencySec {
		t.Errorf("MOUSE %.3g s should pay an intermittent-safety penalty vs CRAFFT's %.3g s", mouse.LatencySec, crafft.LatencySec)
	}
	var buf bytes.Buffer
	if err := PrintFFT(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CRAFFT") {
		t.Errorf("FFT output incomplete")
	}
}
