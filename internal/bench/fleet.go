package bench

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"mouse/internal/fleet"
	"mouse/internal/workload"
)

// The fleet serving experiment: stand up a small inference fleet
// (internal/fleet) per hot workload and power mode, drive it with the
// open-loop load generator, and record request latency percentiles
// under harvested vs continuous power. The outcome counters and label
// agreement are the deterministic simulation output; the latency
// percentiles are host wall clock, so Normalize zeroes them and the
// registry table prints only the counters.

// FleetRow is one (workload, power mode) serving run.
type FleetRow struct {
	// Workload names the internal/workload hot-batch entry served.
	Workload string
	// Power is the fleet's power mode ("continuous" or "harvested").
	Power string
	// Devices, Requests, SamplesPerRequest fix the load shape.
	Devices           int
	Requests          int
	SamplesPerRequest int
	// OK, Rejected, Errors partition the requests; the admission queue
	// is sized past the offered load, so Rejected and Errors are 0 on a
	// correct fleet.
	OK       int
	Rejected int
	Errors   int
	// Mismatches counts served labels that disagreed with the offline
	// batch classifier (always 0 on a correct fleet).
	Mismatches int
	// P50Ms, P99Ms, MeanMs are host milliseconds per request — wall
	// clock, zeroed by Normalize.
	P50Ms  float64
	P99Ms  float64
	MeanMs float64
}

// The fixed load shape: small enough to finish in well under a second
// per combination, deep enough that batching and (in harvested mode)
// recharge stalls are actually exercised.
const (
	fleetBenchDevices  = 2
	fleetBenchRequests = 24
	fleetBenchBatch    = 8
	fleetBenchQueue    = 32 // > fleetBenchRequests: no deterministic-run rejections
	fleetBenchLinger   = 200 * time.Microsecond
	fleetBenchHarvestW = 0.05
	fleetBenchSampleJ  = 1e-6
)

// ComputeFleet serves every hot workload under both power modes, one
// fleet per combination, as independent jobs on the sweep pool. The
// experiment measures serving behaviour, not simulated device energy,
// so it takes no observer.
func ComputeFleet(workers int) ([]FleetRow, error) {
	type combo struct {
		hb   workload.HotBatch
		mode fleet.PowerMode
	}
	var combos []combo
	for _, hb := range workload.HotBatches() {
		for _, mode := range []fleet.PowerMode{fleet.Continuous, fleet.Harvested} {
			combos = append(combos, combo{hb, mode})
		}
	}
	return runJobs(workers, len(combos), func(i int) (FleetRow, error) {
		return computeFleetRow(combos[i].hb, combos[i].mode)
	})
}

func computeFleetRow(hb workload.HotBatch, mode fleet.PowerMode) (FleetRow, error) {
	row := FleetRow{
		Workload:          hb.Name,
		Power:             string(mode),
		Devices:           fleetBenchDevices,
		Requests:          fleetBenchRequests,
		SamplesPerRequest: fleetBenchBatch,
	}
	cfg := fleet.DefaultConfig()
	cfg.Devices = fleetBenchDevices
	cfg.QueueDepth = fleetBenchQueue
	cfg.BatchLinger = fleetBenchLinger
	cfg.Mode = mode
	cfg.HarvestW = fleetBenchHarvestW
	cfg.EnergyPerSampleJ = fleetBenchSampleJ
	cfg.Workloads = []string{hb.Name}
	f, err := fleet.New(cfg)
	if err != nil {
		return row, fmt.Errorf("bench: %s/%s: %w", hb.Name, mode, err)
	}
	defer f.Stop()

	// Golden labels from the offline batch classifier, chunk by chunk:
	// lanes are independent, so the fleet's coalesced batches must agree
	// bit for bit.
	offline, err := hb.NewBatched()
	if err != nil {
		return row, fmt.Errorf("bench: %s: %w", hb.Name, err)
	}
	samples := hb.Samples(fleetBenchRequests * fleetBenchBatch)
	expected := make([]int, 0, len(samples))
	for i := 0; i < fleetBenchRequests; i++ {
		preds, err := offline(samples[i*fleetBenchBatch : (i+1)*fleetBenchBatch])
		if err != nil {
			return row, fmt.Errorf("bench: %s offline: %w", hb.Name, err)
		}
		expected = append(expected, preds...)
	}

	rep, err := fleet.RunLoad(
		fleet.LoadConfig{Requests: fleetBenchRequests, BatchSize: fleetBenchBatch, Expected: expected},
		samples,
		func(chunk [][]int) ([]int, error) { return f.Infer(context.Background(), hb.Name, chunk) },
	)
	if err != nil {
		return row, fmt.Errorf("bench: %s/%s load: %w", hb.Name, mode, err)
	}
	row.OK = rep.OK
	row.Rejected = rep.Rejected
	row.Errors = rep.Errors
	row.Mismatches = rep.Mismatches
	row.P50Ms = rep.P50.Seconds() * 1e3
	row.P99Ms = rep.P99.Seconds() * 1e3
	row.MeanMs = rep.Mean.Seconds() * 1e3
	return row, nil
}

// PrintFleet renders the full experiment including the latency
// percentiles (the mousebench -fleet view; host timings vary run to
// run, so this form is not part of the deterministic-tables contract).
func PrintFleet(w io.Writer, workers int) error {
	rows, err := ComputeFleet(workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fleet serving latency — %d devices, %d requests x %d samples, host ms/request\n",
		fleetBenchDevices, fleetBenchRequests, fleetBenchBatch)
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tpower\tok\trejected\terrors\tmismatches\tp50 ms\tp99 ms\tmean ms")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%.2f\t%.2f\t%.2f\n",
			r.Workload, r.Power, r.OK, r.Rejected, r.Errors, r.Mismatches, r.P50Ms, r.P99Ms, r.MeanMs)
	}
	return tw.Flush()
}

// PrintFleetChecked renders the experiment's deterministic columns —
// the registry's table view. Experiment tables must be byte-identical
// across runs and parallelism, so the latency percentiles stay out;
// what remains is the serving result: every request served, none
// rejected or wrong, under both power modes.
func PrintFleetChecked(w io.Writer, workers int) error {
	rows, err := ComputeFleet(workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fleet serving equivalence — %d devices, %d requests x %d samples (latencies: mousebench -fleet)\n",
		fleetBenchDevices, fleetBenchRequests, fleetBenchBatch)
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tpower\tok\trejected\terrors\tmismatches")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\n",
			r.Workload, r.Power, r.OK, r.Rejected, r.Errors, r.Mismatches)
	}
	return tw.Flush()
}

// RunFleet is the mousebench -fleet entry point: the serving experiment
// alone, with latency percentiles, as a table or a one-experiment
// report.
func RunFleet(w io.Writer, workers int, asJSON bool) error {
	if !asJSON {
		return PrintFleet(w, workers)
	}
	start := time.Now()
	rows, err := ComputeFleet(workers)
	if err != nil {
		return err
	}
	rep := &Report{
		Schema: Schema, Tool: "mousebench", Parallelism: clampWorkers(workers, 1<<30),
		Experiments: []ExperimentReport{{
			Name: "fleet", WallSeconds: time.Since(start).Seconds(), Rows: rows,
		}},
	}
	return rep.WriteJSON(w)
}
