package bench

import (
	"fmt"
	"io"
	"reflect"
	"sync"
	"time"
)

// Progress receives experiment lifecycle events from the report and
// table runners. Implementations must be safe for use from the goroutine
// driving the run (events arrive sequentially, one experiment at a
// time); index is 1-based and total counts the selected experiments.
//
// The runners never let a Progress implementation alter results: events
// carry copies of what already happened, and a nil Progress is the
// zero-overhead default everywhere.
type Progress interface {
	// ExperimentStarted fires just before experiment index of total begins.
	ExperimentStarted(name string, index, total int)
	// ExperimentFinished fires after it returns. rows is the number of
	// structured rows produced (-1 when unknown, e.g. table mode); err is
	// the experiment's error, nil on success.
	ExperimentFinished(name string, index, total, rows int, wall time.Duration, err error)
}

// progressWriter renders events as single lines, one per event. It
// serialises writes so interleaved use from tests stays readable.
type progressWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewProgressWriter returns a Progress that prints one line per event
// to w, e.g.
//
//	mousebench: [3/15] table3 ...
//	mousebench: [3/15] table3 done: 4 rows in 1.2ms
//
// mousebench -progress points this at stderr so the live feed never
// perturbs stdout framing or report bytes.
func NewProgressWriter(w io.Writer) Progress {
	return &progressWriter{w: w}
}

func (p *progressWriter) ExperimentStarted(name string, index, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "mousebench: [%d/%d] %s ...\n", index, total, name)
}

func (p *progressWriter) ExperimentFinished(name string, index, total, rows int, wall time.Duration, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case err != nil:
		fmt.Fprintf(p.w, "mousebench: [%d/%d] %s failed after %s: %v\n", index, total, name, wall.Round(time.Microsecond), err)
	case rows >= 0:
		fmt.Fprintf(p.w, "mousebench: [%d/%d] %s done: %d rows in %s\n", index, total, name, rows, wall.Round(time.Microsecond))
	default:
		fmt.Fprintf(p.w, "mousebench: [%d/%d] %s done in %s\n", index, total, name, wall.Round(time.Microsecond))
	}
}

// RowCount reports the number of rows in an experiment's typed row
// value: the length when it is a slice (of any element type), -1
// otherwise. Experiments return []Fig9Sweep, []TableIVRow, etc. as
// `any`, so this is the one place reflection is warranted.
func RowCount(rows any) int {
	if rows == nil {
		return -1
	}
	v := reflect.ValueOf(rows)
	if v.Kind() != reflect.Slice {
		return -1
	}
	return v.Len()
}
