package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The sweep engine: every grid-shaped experiment (Fig. 9's power ×
// benchmark sweep, the Figs. 10–12 breakdowns, the checkpoint and FFT
// sweeps, Table IV's per-benchmark runs) executes its cells as
// independent jobs on a bounded worker pool. Each job owns all mutable
// state it touches — its sim.Runner, power.Harvester, and OpStream — so
// jobs never share anything but read-only inputs, and results land in a
// slice indexed by job number, making the output order (and therefore
// every table and JSON report) independent of goroutine scheduling.

// DefaultWorkers is the worker count used when a sweep is invoked with
// workers <= 0: one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// clampWorkers resolves a requested worker count against the job count.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runJobs executes n independent jobs with at most workers concurrent
// goroutines and returns their results ordered by job index, regardless
// of completion order. Every job runs to completion even when another
// job fails; the error returned is the lowest-indexed job's error, so
// the (result, error) pair is deterministic for a deterministic job
// function. workers <= 0 selects DefaultWorkers(); workers == 1 runs
// the jobs serially on the calling goroutine.
func runJobs[T any](workers, n int, job func(i int) (T, error)) ([]T, error) {
	return Jobs(workers, n, job)
}

// Jobs is the exported worker pool other engines (the fault-injection
// sweep) build on: n independent jobs, at most workers concurrent,
// results ordered by job index with the lowest-indexed error returned.
// See runJobs for the full contract.
func Jobs[T any](workers, n int, job func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	workers = clampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = job(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					results[i], errs[i] = job(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
