package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"mouse/internal/energy"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/sim"
	"mouse/internal/workload"
)

// The segment-engine experiment: run every benchmark's full Fig. 9
// power sweep twice — once on the stepping intermittent simulator, once
// on the analytic segment engine — timing both and verifying the
// Results are bit-identical at every grid point. The speedup is the
// PR's headline number, recorded in the BENCH_*.json trajectory; a
// speedup with mismatches is not a result.

// SegmentRow is one benchmark's stepping-vs-segment sweep comparison.
type SegmentRow struct {
	// Workload names the benchmark; Powers is the number of grid powers
	// swept (one full intermittent run each, per engine).
	Workload string
	Powers   int
	// Mismatches counts grid points where the segment engine's Result
	// (or error) differed from stepping (always 0 on a correct engine).
	Mismatches int
	// Restarts totals the outages across the sweep — the quantity that
	// makes this grid expensive for the stepping path, and deterministic
	// simulation output (both engines must agree on it).
	Restarts uint64
	// NsStepping and NsSegment are host nanoseconds for the benchmark's
	// whole power sweep on each engine; Speedup is their ratio. All
	// three are measured wall clock, so Normalize zeroes them.
	NsStepping float64
	NsSegment  float64
	Speedup    float64
}

// ComputeSegment runs the comparison at the Fig. 9 grid (ModernSTT,
// the paper's power sweep) with benchmarks as independent jobs on the
// sweep pool. The experiment measures host throughput plus an inline
// differential check, so it takes no observer.
func ComputeSegment(workers int) ([]SegmentRow, error) {
	specs := workload.Benchmarks()
	cfg := mtj.ModernSTT()
	return runJobs(workers, len(specs), func(i int) (SegmentRow, error) {
		return computeSegmentRow(specs[i], cfg)
	})
}

func computeSegmentRow(spec workload.Spec, cfg *mtj.Config) (SegmentRow, error) {
	powers := Powers()
	row := SegmentRow{Workload: spec.Name, Powers: len(powers)}
	model := energy.NewModel(cfg)

	// Both engines sweep the grid on one worker; the segment engine gets
	// the sweep as a single RunSweep call (its natural unit of work —
	// one precosting pass, lanes interleaved), the stepping engine runs
	// the points back to back.
	sweep := func(force bool) ([]sim.Result, []error, float64) {
		results := make([]sim.Result, len(powers))
		errs := make([]error, len(powers))
		start := time.Now()
		if force {
			for i, watts := range powers {
				r := sim.NewRunner(model)
				r.ForceStepping = true
				h := power.NewHarvester(power.Constant{W: watts}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
				results[i], errs[i] = r.Run(spec.Stream(), h)
			}
		} else {
			hs := make([]*power.Harvester, len(powers))
			for i, watts := range powers {
				hs[i] = power.NewHarvester(power.Constant{W: watts}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
			}
			results, errs = sim.NewRunner(model).RunSweep(spec.Stream(), hs)
		}
		return results, errs, time.Since(start).Seconds()
	}

	stepRes, stepErrs, stepSeconds := sweep(true)
	segRes, segErrs, segSeconds := sweep(false)

	for i := range powers {
		if (segErrs[i] == nil) != (stepErrs[i] == nil) ||
			(segErrs[i] != nil && segErrs[i].Error() != stepErrs[i].Error()) ||
			segRes[i] != stepRes[i] {
			row.Mismatches++
			continue
		}
		row.Restarts += segRes[i].Restarts
	}

	row.NsStepping = stepSeconds * 1e9
	row.NsSegment = segSeconds * 1e9
	if row.NsSegment > 0 {
		row.Speedup = row.NsStepping / row.NsSegment
	}
	return row, nil
}

// PrintSegment renders the timed experiment as a table (the mousebench
// -experiment segment view is PrintSegmentChecked; host timings vary
// run to run, so this form is not part of the deterministic-tables
// contract).
func PrintSegment(w io.Writer, workers int) error {
	rows, err := ComputeSegment(workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Segment engine — Fig. 9 sweep, host ns per full power sweep")
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tpowers\trestarts\tns stepping\tns segment\tspeedup\tmismatches")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%.0f\t%.1fx\t%d\n",
			r.Workload, r.Powers, r.Restarts, r.NsStepping, r.NsSegment, r.Speedup, r.Mismatches)
	}
	return tw.Flush()
}

// PrintSegmentChecked renders the experiment's deterministic columns —
// the registry's table view. Experiment tables must be byte-identical
// across runs and parallelism, so the wall-clock numbers stay out; what
// remains is the simulation result: every grid point bit-identical
// across engines, and the outage totals both engines agreed on.
func PrintSegmentChecked(w io.Writer, workers int) error {
	rows, err := ComputeSegment(workers)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Segment engine equivalence — Fig. 9 sweep (timings: BENCH_*.json or go test -bench Fig9Row)")
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tpowers\trestarts\tmismatches")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", r.Workload, r.Powers, r.Restarts, r.Mismatches)
	}
	return tw.Flush()
}
