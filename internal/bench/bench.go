// Package bench regenerates every table and figure of the paper's
// evaluation (Sections VIII–IX): Table I (interrupted-gate safety),
// Table II (device parameters), Table III (area), Table IV
// (continuous-power comparison), Fig. 9 (latency vs. power source), and
// Figs. 10–12 (latency/energy breakdowns per configuration at 60 µW).
// Each experiment has a Compute function returning structured rows
// (consumed by tests and testing.B benchmarks) and a Print function
// producing the human-readable table.
package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"mouse/internal/array"
	"mouse/internal/baseline"
	"mouse/internal/energy"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/probe"
	"mouse/internal/sim"
	"mouse/internal/workload"
)

// Powers is the Fig. 9 power-source sweep: 60 µW (a 1 cm² body-heat
// harvester) up to 5 mW (SONIC's Powercast harvester).
func Powers() []float64 {
	return []float64{60e-6, 100e-6, 175e-6, 300e-6, 500e-6, 1e-3, 2e-3, 5e-3}
}

// --- Table I -------------------------------------------------------------

// TableIRow is one cell of Table I: an interrupted-then-repeated AND
// gate case and its outcome.
type TableIRow struct {
	InputA, InputB int
	// SwitchedBeforeInterrupt reports whether the first (interrupted)
	// pulse completed the output switch.
	SwitchedBeforeInterrupt bool
	// Output is the final value after re-performing the gate.
	Output int
	// Correct is the truth-table AND value.
	Correct int
}

// ComputeTableI exercises the four interruption cases of Table I on the
// functional array.
func ComputeTableI(cfg *mtj.Config) []TableIRow {
	var rows []TableIRow
	for _, c := range []struct {
		a, b      int
		firstFrac float64
	}{
		{1, 1, 0.4}, // should not switch; interrupted early
		{1, 1, 1.0}, // should not switch; full first pulse (cannot switch by construction)
		{0, 1, 0.4}, // should switch; interrupted before switching
		{0, 1, 1.0}, // should switch; switched before the interrupt
	} {
		tile := array.NewTile(cfg, 8, 1)
		tile.SetActive([]uint16{0})
		tile.SetBit(0, 0, c.a)
		tile.SetBit(2, 0, c.b)
		tile.SetBit(1, 0, 1) // AND preset
		frac := c.firstFrac
		if err := tile.ExecLogic(mtj.AND2, []int{0, 2}, 1, func(int) float64 { return frac }); err != nil {
			panic(err)
		}
		switched := tile.Bit(1, 0) != 1
		if err := tile.ExecLogic(mtj.AND2, []int{0, 2}, 1, array.FullPulse); err != nil {
			panic(err)
		}
		rows = append(rows, TableIRow{
			InputA: c.a, InputB: c.b,
			SwitchedBeforeInterrupt: switched,
			Output:                  tile.Bit(1, 0),
			Correct:                 c.a & c.b,
		})
	}
	return rows
}

// PrintTableI renders Table I.
func PrintTableI(w io.Writer, cfg *mtj.Config) {
	fmt.Fprintf(w, "Table I — re-performing an interrupted AND gate (%s)\n", cfg.Name)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "inputs\tswitched before interrupt\tfinal output\texpected\tsafe")
	for _, r := range ComputeTableI(cfg) {
		fmt.Fprintf(tw, "(%d,%d)\t%v\t%d\t%d\t%v\n",
			r.InputA, r.InputB, r.SwitchedBeforeInterrupt, r.Output, r.Correct, r.Output == r.Correct)
	}
	tw.Flush()
}

// --- Table II ------------------------------------------------------------

// TableIIRow is one MTJ device parameter (Table II).
type TableIIRow struct {
	Parameter string
	Unit      string
	// Decimals is the precision the paper quotes the parameter at.
	Decimals int
	Modern   float64
	Proj     float64
}

// ComputeTableII returns the MTJ device parameters in paper units.
func ComputeTableII() []TableIIRow {
	m, p := mtj.Modern(), mtj.Projected()
	return []TableIIRow{
		{Parameter: "P state resistance", Unit: "kΩ", Decimals: 2, Modern: m.RP / 1e3, Proj: p.RP / 1e3},
		{Parameter: "AP state resistance", Unit: "kΩ", Decimals: 2, Modern: m.RAP / 1e3, Proj: p.RAP / 1e3},
		{Parameter: "switching time", Unit: "ns", Decimals: 0, Modern: m.SwitchTime * 1e9, Proj: p.SwitchTime * 1e9},
		{Parameter: "switching current", Unit: "µA", Decimals: 0, Modern: m.SwitchCurrent * 1e6, Proj: p.SwitchCurrent * 1e6},
	}
}

// PrintTableII renders the MTJ device parameters (Table II).
func PrintTableII(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table II — MTJ device parameters")
	fmt.Fprintln(tw, "parameter\tmodern\tprojected")
	for _, r := range ComputeTableII() {
		fmt.Fprintf(tw, "%s\t%.*f %s\t%.*f %s\n", r.Parameter, r.Decimals, r.Modern, r.Unit, r.Decimals, r.Proj, r.Unit)
	}
	tw.Flush()
}

// --- Table III -----------------------------------------------------------

// TableIIIRow is one area row.
type TableIIIRow struct {
	Benchmark string
	MemMB     int64
	ModernSTT float64
	ProjSTT   float64
	SHE       float64
}

// ComputeTableIII evaluates the area model for each benchmark.
func ComputeTableIII() []TableIIIRow {
	var rows []TableIIIRow
	for _, s := range workload.Benchmarks() {
		rows = append(rows, TableIIIRow{
			Benchmark: s.Name,
			MemMB:     s.MemBytes >> 20,
			ModernSTT: energy.Area(mtj.ModernSTT(), s.MemBytes),
			ProjSTT:   energy.Area(mtj.ProjectedSTT(), s.MemBytes),
			SHE:       energy.Area(mtj.ProjectedSHE(), s.MemBytes),
		})
	}
	return rows
}

// PrintTableIII renders Table III.
func PrintTableIII(w io.Writer) {
	fmt.Fprintln(w, "Table III — area (mm²) per benchmark and configuration")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tmemory\tModern STT\tProjected STT\tSHE")
	for _, r := range ComputeTableIII() {
		fmt.Fprintf(tw, "%s\t%d MB\t%.2f\t%.2f\t%.2f\n", r.Benchmark, r.MemMB, r.ModernSTT, r.ProjSTT, r.SHE)
	}
	tw.Flush()
}

// --- Table IV ------------------------------------------------------------

// TableIVRow is one continuous-power comparison row.
type TableIVRow struct {
	System    string
	Benchmark string
	LatencyUS float64
	EnergyUJ  float64
	NumSV     int
	InstrMB   float64
	DataMB    float64
	AreaMM2   float64
}

// ComputeTableIV runs every MOUSE benchmark under continuous power
// (Modern STT, as in the paper) and appends the CPU/libSVM/SONIC
// reference rows. The per-benchmark runs execute on the sweep pool with
// the given worker bound (<= 0 selects DefaultWorkers). An optional
// observer (shared across the pool's jobs — it must be concurrency-safe,
// like probe.Stats) receives every run's events.
func ComputeTableIV(workers int, obs ...probe.Observer) []TableIVRow {
	cfg := mtj.ModernSTT()
	specs := workload.Benchmarks()
	rows, _ := runJobs(workers, len(specs), func(i int) (TableIVRow, error) {
		s := specs[i]
		r := sim.NewRunner(energy.NewModel(cfg))
		r.Obs = probe.First(obs)
		res := r.RunContinuous(s.Stream())
		system := "MOUSE SVM (Modern STT)"
		if s.Kind == workload.BNN {
			system = "MOUSE BNN (Modern STT)"
		}
		return TableIVRow{
			System:    system,
			Benchmark: s.Name,
			LatencyUS: res.OnLatency * 1e6,
			EnergyUJ:  res.TotalEnergy() * 1e6,
			NumSV:     s.NumSV,
			InstrMB:   s.InstrMB,
			DataMB:    s.DataMB,
			AreaMM2:   energy.Area(cfg, s.MemBytes),
		}, nil
	})
	for _, ref := range baseline.CPUReference() {
		rows = append(rows, TableIVRow{System: ref.System, Benchmark: ref.Benchmark,
			LatencyUS: ref.LatencyUS, EnergyUJ: ref.EnergyUJ, NumSV: ref.NumSV})
	}
	for _, ref := range baseline.LibSVMReference() {
		rows = append(rows, TableIVRow{System: ref.System, Benchmark: ref.Benchmark,
			LatencyUS: ref.LatencyUS, EnergyUJ: ref.EnergyUJ, NumSV: ref.NumSV})
	}
	for _, ref := range baseline.SONICReference() {
		rows = append(rows, TableIVRow{System: ref.System, Benchmark: ref.Benchmark,
			LatencyUS: ref.LatencyUS, EnergyUJ: ref.EnergyUJ})
	}
	return rows
}

// PrintTableIV renders Table IV.
func PrintTableIV(w io.Writer, workers int, obs ...probe.Observer) {
	fmt.Fprintln(w, "Table IV — continuous power (MOUSE rows simulated; CPU/libSVM/SONIC rows from the paper)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "system\tbenchmark\tlatency (µs)\tenergy (µJ)\t#SV\tI/D mem (MB)\tarea (mm²)")
	for _, r := range ComputeTableIV(workers, obs...) {
		sv := "-"
		if r.NumSV > 0 {
			sv = fmt.Sprintf("%d", r.NumSV)
		}
		mem := "-"
		if r.DataMB > 0 {
			mem = fmt.Sprintf("%.2f / %.2f", r.InstrMB, r.DataMB)
		}
		area := "-"
		if r.AreaMM2 > 0 {
			area = fmt.Sprintf("%.2f", r.AreaMM2)
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.2f\t%s\t%s\t%s\n", r.System, r.Benchmark, r.LatencyUS, r.EnergyUJ, sv, mem, area)
	}
	tw.Flush()
}

// --- Fig. 9 --------------------------------------------------------------

// Fig9Point is one point of a latency-vs-power curve.
type Fig9Point struct {
	System string
	Watts  float64
	// LatencySec is total completion time (on + off).
	LatencySec float64
	Restarts   uint64
}

// ComputeFig9 sweeps the power source for every MOUSE benchmark under
// the given configuration, plus the SONIC baselines. Every
// (system, power) cell is one pool job owning its runner and harvester;
// points come back in grid order regardless of scheduling.
func ComputeFig9(cfg *mtj.Config, powers []float64, workers int, obs ...probe.Observer) ([]Fig9Point, error) {
	specs := workload.Benchmarks()
	sonics := []func() *baseline.SONIC{baseline.SONICMNIST, baseline.SONICHAR}
	n := (len(specs) + len(sonics)) * len(powers)
	return runJobs(workers, n, func(i int) (Fig9Point, error) {
		sys, p := i/len(powers), powers[i%len(powers)]
		if sys < len(specs) {
			s := specs[sys]
			r := sim.NewRunner(energy.NewModel(cfg))
			r.Obs = probe.First(obs)
			h := power.NewHarvester(power.Constant{W: p}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
			res, err := r.Run(s.Stream(), h)
			if err != nil {
				return Fig9Point{}, fmt.Errorf("%s at %g W: %w", s.Name, p, err)
			}
			return Fig9Point{System: s.Name, Watts: p,
				LatencySec: res.TotalLatency(), Restarts: res.Restarts}, nil
		}
		sb := sonics[sys-len(specs)]()
		res, err := sb.Run(power.Constant{W: p})
		if err != nil {
			return Fig9Point{}, fmt.Errorf("%s at %g W: %w", sb.Name, p, err)
		}
		return Fig9Point{System: sb.Name, Watts: p,
			LatencySec: res.Latency, Restarts: uint64(res.Restarts)}, nil
	})
}

// PrintFig9 renders the latency-vs-power series.
func PrintFig9(w io.Writer, cfg *mtj.Config, workers int, obs ...probe.Observer) error {
	points, err := ComputeFig9(cfg, Powers(), workers, obs...)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. 9 — latency (s) vs power source (%s)\n", cfg.Name)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "system")
	for _, p := range Powers() {
		fmt.Fprintf(tw, "\t%.3g W", p)
	}
	fmt.Fprintln(tw)
	bySystem := map[string][]Fig9Point{}
	var order []string
	for _, pt := range points {
		if _, seen := bySystem[pt.System]; !seen {
			order = append(order, pt.System)
		}
		bySystem[pt.System] = append(bySystem[pt.System], pt)
	}
	for _, sys := range order {
		fmt.Fprint(tw, sys)
		for _, pt := range bySystem[sys] {
			fmt.Fprintf(tw, "\t%.4g", pt.LatencySec)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// CrossoverPowerW returns the analytic power level at which FP-BNN's
// latency drops below the binarized MNIST SVM's (Section IX: "a
// cross-over of the latency between FP-BNN and SVM MNIST (Bin)"): below
// it the energy-hungrier FP-BNN is slower (latency is energy-bound);
// above it FP-BNN's higher exploited parallelism wins.
func CrossoverPowerW(cfg *mtj.Config, workers int, obs ...probe.Observer) (float64, error) {
	names := []string{"SVM MNIST (Bin)", "BNN FPBNN MNIST"}
	runs, err := runJobs(workers, len(names), func(i int) (sim.Result, error) {
		s, err := workload.ByName(names[i])
		if err != nil {
			return sim.Result{}, err
		}
		r := sim.NewRunner(energy.NewModel(cfg))
		r.Obs = probe.First(obs)
		return r.RunContinuous(s.Stream()), nil
	})
	if err != nil {
		return 0, err
	}
	rb, rf := runs[0], runs[1]
	dE := rf.TotalEnergy() - rb.TotalEnergy()
	dT := rb.OnLatency - rf.OnLatency
	if dE <= 0 || dT <= 0 {
		return 0, fmt.Errorf("bench: no crossover: ΔE=%g J, ΔT=%g s", dE, dT)
	}
	return dE / dT, nil
}

// --- Figs. 10–12 ---------------------------------------------------------

// BreakdownRow is one benchmark's EH-model breakdown (Figs. 10, 11, 12).
type BreakdownRow struct {
	Benchmark string
	energy.Breakdown
}

// ComputeBreakdown runs every benchmark at the given harvested power
// (the figures use 60 µW) under cfg, one pool job per benchmark.
func ComputeBreakdown(cfg *mtj.Config, watts float64, workers int, obs ...probe.Observer) ([]BreakdownRow, error) {
	specs := workload.Benchmarks()
	return runJobs(workers, len(specs), func(i int) (BreakdownRow, error) {
		s := specs[i]
		r := sim.NewRunner(energy.NewModel(cfg))
		r.Obs = probe.First(obs)
		h := power.NewHarvester(power.Constant{W: watts}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
		res, err := r.Run(s.Stream(), h)
		if err != nil {
			return BreakdownRow{}, fmt.Errorf("%s: %w", s.Name, err)
		}
		return BreakdownRow{Benchmark: s.Name, Breakdown: res.Breakdown}, nil
	})
}

// PrintBreakdown renders one of Figs. 10–12.
func PrintBreakdown(w io.Writer, cfg *mtj.Config, watts float64, figure string, workers int, obs ...probe.Observer) error {
	rows, err := ComputeBreakdown(cfg, watts, workers, obs...)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s — latency/energy breakdown, %s at %.0f µW\n", figure, cfg.Name, watts*1e6)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\ttotal E (µJ)\tbackup %\tdead %\trestore %\ttotal lat (s)\tdead lat %\trestore lat %\trestarts")
	for _, r := range rows {
		lat := r.TotalLatency()
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.4g\t%.4f\t%.4f\t%d\n",
			r.Benchmark, r.TotalEnergy()*1e6,
			100*r.Share(r.BackupEnergy), 100*r.Share(r.DeadEnergy), 100*r.Share(r.RestoreEnergy),
			lat, 100*r.DeadLatency/lat, 100*r.RestoreLatency/lat, r.Restarts)
	}
	return tw.Flush()
}

// AverageShares summarizes the Section IX percentages: mean Backup,
// Dead, and Restore energy shares across benchmarks.
func AverageShares(rows []BreakdownRow) (backup, dead, restore float64) {
	for _, r := range rows {
		backup += r.Share(r.BackupEnergy)
		dead += r.Share(r.DeadEnergy)
		restore += r.Share(r.RestoreEnergy)
	}
	n := float64(len(rows))
	return backup / n, dead / n, restore / n
}
