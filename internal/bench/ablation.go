package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"mouse/internal/energy"
	"mouse/internal/fft"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/probe"
	"mouse/internal/sim"
	"mouse/internal/workload"
)

// Ablations and analyses beyond the paper's tables: the design-choice
// studies DESIGN.md calls out.

// RobustnessRow is one gate's process-variation tolerance across the
// three configurations.
type RobustnessRow struct {
	Gate      mtj.GateKind
	ModernSTT float64
	ProjSTT   float64
	SHE       float64
}

// ComputeRobustness quantifies Section II-D's robustness claim: the
// largest relative MTJ resistance variation each gate tolerates. One
// pool job per gate.
func ComputeRobustness(workers int) []RobustnessRow {
	n := int(mtj.NumGates)
	rows, _ := runJobs(workers, n, func(i int) (RobustnessRow, error) {
		g := mtj.GateKind(i)
		return RobustnessRow{
			Gate:      g,
			ModernSTT: mtj.VariationTolerance(g, mtj.ModernSTT()),
			ProjSTT:   mtj.VariationTolerance(g, mtj.ProjectedSTT()),
			SHE:       mtj.VariationTolerance(g, mtj.ProjectedSHE()),
		}, nil
	})
	return rows
}

// PrintRobustness renders the variation-tolerance study.
func PrintRobustness(w io.Writer, workers int) {
	fmt.Fprintln(w, "Robustness — tolerated MTJ resistance variation (±%), per gate (Section II-D)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "gate\tModern STT\tProjected STT\tSHE")
	for _, r := range ComputeRobustness(workers) {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\n", r.Gate, r.ModernSTT*100, r.ProjSTT*100, r.SHE*100)
	}
	tw.Flush()
	mt, mg := mtj.MinVariationTolerance(mtj.ModernSTT())
	pt, pg := mtj.MinVariationTolerance(mtj.ProjectedSTT())
	st, sg := mtj.MinVariationTolerance(mtj.ProjectedSHE())
	fmt.Fprintf(w, "array-level limits: Modern %.1f%% (%v), Projected %.1f%% (%v), SHE %.1f%% (%v)\n",
		mt*100, mg, pt*100, pg, st*100, sg)
}

// CheckpointRow is one point of the checkpoint-interval sweep.
type CheckpointRow struct {
	Interval int
	energy.Breakdown
}

// ComputeCheckpointSweep runs a benchmark at 60 µW with checkpoint
// intervals of 1 (MOUSE's design point), 8 and 64 instructions — the
// frequency trade-off of Section IV-D. One pool job per interval.
func ComputeCheckpointSweep(cfg *mtj.Config, benchmark string, workers int, obs ...probe.Observer) ([]CheckpointRow, error) {
	spec, err := workload.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	intervals := []int{1, 8, 64}
	return runJobs(workers, len(intervals), func(i int) (CheckpointRow, error) {
		interval := intervals[i]
		r := sim.NewRunner(energy.NewModel(cfg))
		r.Obs = probe.First(obs)
		h := power.NewHarvester(power.Constant{W: 60e-6}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
		res, err := r.RunWithCheckpointInterval(spec.Stream(), h, interval)
		if err != nil {
			return CheckpointRow{}, fmt.Errorf("interval %d: %w", interval, err)
		}
		return CheckpointRow{Interval: interval, Breakdown: res.Breakdown}, nil
	})
}

// PrintCheckpointSweep renders the checkpoint-interval ablation.
func PrintCheckpointSweep(w io.Writer, cfg *mtj.Config, benchmark string, workers int, obs ...probe.Observer) error {
	rows, err := ComputeCheckpointSweep(cfg, benchmark, workers, obs...)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Checkpoint-interval ablation — %s, %s at 60 µW (Section IV-D trade-off)\n", benchmark, cfg.Name)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "interval\ttotal E (µJ)\tbackup (µJ)\tdead (µJ)\tlatency (s)\trestarts")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.3f\t%.4f\t%.4f\t%.4g\t%d\n",
			r.Interval, r.TotalEnergy()*1e6, r.BackupEnergy*1e6, r.DeadEnergy*1e6, r.TotalLatency(), r.Restarts)
	}
	return tw.Flush()
}

// ParallelismRow is one configuration's power-budget parallelism limit
// (Section IV-C).
type ParallelismRow struct {
	Config string
	// FullCols and HeadroomCols are the active-column caps with no
	// energy headroom and with 2× headroom.
	FullCols, HeadroomCols int
	// PeakPowerW is the instantaneous draw of a NAND2 issued at the
	// full width.
	PeakPowerW float64
}

// ComputeParallelism evaluates the parallelism budget per configuration.
func ComputeParallelism() []ParallelismRow {
	var rows []ParallelismRow
	for _, cfg := range mtj.Configs() {
		m := energy.NewModel(cfg)
		full := sim.MaxParallelColumns(m, 1.0)
		half := sim.MaxParallelColumns(m, 2.0)
		op := energy.Op{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: full}
		rows = append(rows, ParallelismRow{
			Config:       cfg.Name,
			FullCols:     full,
			HeadroomCols: half,
			PeakPowerW:   m.Energy(op) / m.CycleTime(),
		})
	}
	return rows
}

// PrintParallelism renders the power-budget parallelism limits
// (Section IV-C: tuning power draw by adjusting parallelism).
func PrintParallelism(w io.Writer) {
	fmt.Fprintln(w, "Parallelism budget — max simultaneously active columns per buffer discharge (Section IV-C)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "configuration\tno headroom\t2x headroom\tpeak power at that width")
	for _, r := range ComputeParallelism() {
		fmt.Fprintf(tw, "%s\t%d cols\t%d cols\t%.3g W\n", r.Config, r.FullCols, r.HeadroomCols, r.PeakPowerW)
	}
	tw.Flush()
}

// FFTRow is one row of the related-work FFT comparison (Section X).
type FFTRow struct {
	System     string
	LatencySec float64
	EnergyJ    float64
}

// ComputeFFT runs the CRAFFT-style 1024-point FFT workload on each MOUSE
// configuration under continuous power (one pool job per configuration)
// and lists the paper's reference systems alongside.
func ComputeFFT(workers int, obs ...probe.Observer) ([]FFTRow, error) {
	p := fft.MiBenchParams()
	rows := []FFTRow{
		{System: "NVP (THU1010N) [57]", LatencySec: fft.NVPLatency},
		{System: "CRAFFT on CRAM [19]", LatencySec: fft.CRAFFTLatency},
	}
	cfgs := mtj.Configs()
	mouseRows, err := runJobs(workers, len(cfgs), func(i int) (FFTRow, error) {
		cfg := cfgs[i]
		s, err := fft.Stream(p)
		if err != nil {
			return FFTRow{}, err
		}
		r := sim.NewRunner(energy.NewModel(cfg))
		r.Obs = probe.First(obs)
		res := r.RunContinuous(s)
		return FFTRow{
			System:     "MOUSE " + cfg.Name + " (intermittent-safe)",
			LatencySec: res.OnLatency,
			EnergyJ:    res.TotalEnergy(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return append(rows, mouseRows...), nil
}

// PrintFFT renders the FFT comparison.
func PrintFFT(w io.Writer, workers int, obs ...probe.Observer) error {
	rows, err := ComputeFFT(workers, obs...)
	if err != nil {
		return err
	}
	p := fft.MiBenchParams()
	fmt.Fprintf(w, "Related-work FFT comparison — %s transform (Section X)\n", p)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "system\tlatency (ms)\tenergy (µJ)")
	for _, r := range rows {
		e := "-"
		if r.EnergyJ > 0 {
			e = fmt.Sprintf("%.2f", r.EnergyJ*1e6)
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%s\n", r.System, r.LatencySec*1e3, e)
	}
	return tw.Flush()
}
