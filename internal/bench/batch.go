package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"mouse/internal/array"
	"mouse/internal/workload"
)

// The batch throughput experiment: replay the hot inference workloads
// (internal/workload's compile-once batch recipes) through the
// bit-sliced engine at a chosen lane count and report host ns per
// inference against the sequential controller path — the PR's headline
// number, recorded in the BENCH_*.json trajectory. The experiment also
// re-verifies batched-vs-sequential label equality inline: a speedup
// with mismatches is not a result.

// BatchRow is one hot workload's batched-vs-sequential comparison.
type BatchRow struct {
	// Workload names the internal/workload hot-batch entry.
	Workload string
	// Lanes is the bit-slice width used (1–64); SamplesPerBatch is
	// Lanes times the mapping's column batch.
	Lanes           int
	SamplesPerBatch int
	// Batches is the number of timed batched replays.
	Batches int
	// Mismatches counts batched labels that disagreed with the
	// sequential path (always 0 on a correct engine).
	Mismatches int
	// NsSequential and NsBatched are host nanoseconds per inference on
	// each path; Speedup is their ratio. All three are measured wall
	// clock, so Normalize zeroes them.
	NsSequential float64
	NsBatched    float64
	Speedup      float64
}

// batchTimedReplays fixes the timed batched-replay count so the row
// shape is machine-independent.
const batchTimedReplays = 8

// ComputeBatch times every hot workload at the given lane count.
// Workloads run as independent jobs on the sweep pool. The experiment
// measures host throughput, not simulated energy, so it takes no
// observer.
func ComputeBatch(lanes, workers int) ([]BatchRow, error) {
	if lanes < 1 || lanes > array.MaxLanes {
		return nil, fmt.Errorf("bench: batch lanes %d outside [1, %d]", lanes, array.MaxLanes)
	}
	hbs := workload.HotBatches()
	return runJobs(workers, len(hbs), func(i int) (BatchRow, error) {
		return computeBatchRow(hbs[i], lanes)
	})
}

func computeBatchRow(hb workload.HotBatch, lanes int) (BatchRow, error) {
	row := BatchRow{
		Workload:        hb.Name,
		Lanes:           lanes,
		SamplesPerBatch: lanes * hb.LaneWidth,
		Batches:         batchTimedReplays,
	}
	batched, err := hb.NewBatched()
	if err != nil {
		return row, fmt.Errorf("bench: %s: %w", hb.Name, err)
	}
	sequential, err := hb.NewSequential()
	if err != nil {
		return row, fmt.Errorf("bench: %s: %w", hb.Name, err)
	}
	samples := hb.Samples(row.SamplesPerBatch)
	if len(samples) != row.SamplesPerBatch {
		return row, fmt.Errorf("bench: %s: sample pool came up short", hb.Name)
	}

	// Inline equivalence check (and warm-up for both paths).
	start := time.Now()
	want, err := sequential(samples)
	if err != nil {
		return row, fmt.Errorf("bench: %s sequential: %w", hb.Name, err)
	}
	seqSeconds := time.Since(start).Seconds()
	got, err := batched(samples)
	if err != nil {
		return row, fmt.Errorf("bench: %s batched: %w", hb.Name, err)
	}
	for i := range want {
		if got[i] != want[i] {
			row.Mismatches++
		}
	}

	start = time.Now()
	for b := 0; b < batchTimedReplays; b++ {
		if _, err := batched(samples); err != nil {
			return row, fmt.Errorf("bench: %s batched: %w", hb.Name, err)
		}
	}
	batchSeconds := time.Since(start).Seconds()

	row.NsSequential = seqSeconds * 1e9 / float64(len(samples))
	row.NsBatched = batchSeconds * 1e9 / float64(batchTimedReplays*len(samples))
	if row.NsBatched > 0 {
		row.Speedup = row.NsSequential / row.NsBatched
	}
	return row, nil
}

// PrintBatch renders the timed experiment as a table (the mousebench
// -batch view; host timings vary run to run, so this form is not part
// of the deterministic-tables contract).
func PrintBatch(w io.Writer, lanes, workers int) error {
	rows, err := ComputeBatch(lanes, workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Batch inference throughput — %d bit-slice lanes, host ns/inference\n", lanes)
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tlanes\tsamples/batch\tns/inf seq\tns/inf batched\tspeedup\tmismatches")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%.0f\t%.1fx\t%d\n",
			r.Workload, r.Lanes, r.SamplesPerBatch, r.NsSequential, r.NsBatched, r.Speedup, r.Mismatches)
	}
	return tw.Flush()
}

// PrintBatchChecked renders the experiment's deterministic columns —
// the registry's table view. Experiment tables must be byte-identical
// across runs and parallelism, so the wall-clock throughput numbers
// stay out; what remains is the simulation result: every hot workload's
// batched labels matched sequential.
func PrintBatchChecked(w io.Writer, lanes, workers int) error {
	rows, err := ComputeBatch(lanes, workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Batch inference equivalence — %d bit-slice lanes (timings: mousebench -batch %d)\n", lanes, lanes)
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tlanes\tsamples/batch\tmismatches")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", r.Workload, r.Lanes, r.SamplesPerBatch, r.Mismatches)
	}
	return tw.Flush()
}

// RunBatch is the mousebench -batch entry point: the batch experiment
// alone, at an explicit lane count, as a table or a one-experiment
// report.
func RunBatch(w io.Writer, lanes, workers int, asJSON bool) error {
	if !asJSON {
		return PrintBatch(w, lanes, workers)
	}
	start := time.Now()
	rows, err := ComputeBatch(lanes, workers)
	if err != nil {
		return err
	}
	rep := &Report{
		Schema: Schema, Tool: "mousebench", Parallelism: clampWorkers(workers, 1<<30),
		Experiments: []ExperimentReport{{
			Name: "batch", WallSeconds: time.Since(start).Seconds(), Rows: rows,
		}},
	}
	return rep.WriteJSON(w)
}
