package bench

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"

	"mouse/internal/array"
	"mouse/internal/workload"
)

// TestComputeBatchShapes: the experiment covers every hot workload,
// verifies equivalence inline (zero mismatches), and scales the batch
// to the requested lane count. Small lane count keeps it cheap in the
// regular suite; the full-width throughput claim lives behind the
// MOUSE_BENCH_SMOKE gate.
func TestComputeBatchShapes(t *testing.T) {
	const lanes = 4
	rows, err := ComputeBatch(lanes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workload.HotBatches()) {
		t.Fatalf("%d rows, want one per hot workload", len(rows))
	}
	for _, r := range rows {
		hb, err := workload.HotBatchByName(r.Workload)
		if err != nil {
			t.Errorf("row names unknown workload %q", r.Workload)
			continue
		}
		if r.Lanes != lanes || r.SamplesPerBatch != lanes*hb.LaneWidth {
			t.Errorf("%s: lanes %d batch %d, want %d and %d", r.Workload, r.Lanes, r.SamplesPerBatch, lanes, lanes*hb.LaneWidth)
		}
		if r.Mismatches != 0 {
			t.Errorf("%s: %d batched-vs-sequential mismatches", r.Workload, r.Mismatches)
		}
		if r.NsSequential <= 0 || r.NsBatched <= 0 {
			t.Errorf("%s: non-positive timing %g / %g", r.Workload, r.NsSequential, r.NsBatched)
		}
	}
	if _, err := ComputeBatch(0, 0); err == nil {
		t.Error("accepted 0 lanes")
	}
	if _, err := ComputeBatch(array.MaxLanes+1, 0); err == nil {
		t.Error("accepted too many lanes")
	}
}

// TestPrintBatchAndRunBatch: table and JSON forms render, and the JSON
// form is a schema-valid one-experiment report.
func TestPrintBatchAndRunBatch(t *testing.T) {
	var buf bytes.Buffer
	if err := RunBatch(&buf, 2, 1, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"workload", "speedup", "mismatches"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table output missing %q", want)
		}
	}
	buf.Reset()
	if err := RunBatch(&buf, 2, 1, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), Schema) || !strings.Contains(buf.String(), `"batch"`) {
		t.Errorf("JSON output incomplete: %s", buf.String())
	}
	// The registry's table form carries only deterministic columns.
	buf.Reset()
	if err := PrintBatchChecked(&buf, 2, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mismatches") || strings.Contains(buf.String(), "speedup") {
		t.Errorf("deterministic table has wrong columns: %s", buf.String())
	}
}

// TestBatchNormalizeIsDeterministic: two batch reports from different
// parallelism normalize to deep-equal — the throughput fields are host
// wall clock and must not leak into the trajectory diff.
func TestBatchNormalizeIsDeterministic(t *testing.T) {
	a, err := BuildReport("batch", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildReport("batch", 2)
	if err != nil {
		t.Fatal(err)
	}
	a.Normalize()
	b.Normalize()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("normalized batch reports differ: %+v vs %+v", a, b)
	}
	for _, r := range a.Experiments[0].Rows.([]BatchRow) {
		if r.NsSequential != 0 || r.NsBatched != 0 || r.Speedup != 0 {
			t.Errorf("%s: Normalize left timing fields: %+v", r.Workload, r)
		}
	}
}

// TestBatchStress32Workers hammers the batch machinery from a wide
// worker pool — 32 concurrent jobs, each with its own engine pair over
// the shared (read-only) trained models — so `go test -race` covers the
// compile-once caches and the arena reuse under real concurrency.
func TestBatchStress32Workers(t *testing.T) {
	hbs := workload.HotBatches()
	_, err := Jobs(32, 32, func(i int) (struct{}, error) {
		hb := hbs[i%len(hbs)]
		row, err := computeBatchRow(hb, 1+i%array.MaxLanes)
		if err != nil {
			return struct{}{}, err
		}
		if row.Mismatches != 0 {
			t.Errorf("job %d (%s, %d lanes): %d mismatches", i, hb.Name, row.Lanes, row.Mismatches)
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBatchThroughputRegression is the bench-smoke gate (set
// MOUSE_BENCH_SMOKE=1): at full width the bit-sliced engine must beat
// the sequential path by at least 3x per inference on every hot
// workload. The committed BENCH_2.json records the real margin (≥5x);
// the CI floor is lower so shared runners don't flake the gate.
func TestBatchThroughputRegression(t *testing.T) {
	if os.Getenv("MOUSE_BENCH_SMOKE") == "" {
		t.Skip("set MOUSE_BENCH_SMOKE=1 to run the throughput regression gate")
	}
	rows, err := ComputeBatch(array.MaxLanes, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%s: %.0f ns/inf sequential, %.0f ns/inf batched, %.1fx", r.Workload, r.NsSequential, r.NsBatched, r.Speedup)
		if r.Mismatches != 0 {
			t.Errorf("%s: %d mismatches", r.Workload, r.Mismatches)
		}
		if r.Speedup < 3 {
			t.Errorf("%s: speedup %.2fx below the 3x regression floor", r.Workload, r.Speedup)
		}
	}
}
