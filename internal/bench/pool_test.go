package bench

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"mouse/internal/mtj"
)

func TestRunJobsOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16, 64} {
		// Early jobs sleep longest so completion order inverts index
		// order; results must come back in index order anyway.
		n := 40
		out, err := runJobs(workers, n, func(i int) (int, error) {
			time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != n {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunJobsErrorIsDeterministic(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("job %d failed", i) }
	for _, workers := range []int{1, 8} {
		var ran atomic.Int64
		_, err := runJobs(workers, 20, func(i int) (int, error) {
			ran.Add(1)
			if i == 7 || i == 3 || i == 15 {
				return 0, boom(i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Errorf("workers=%d: error %v, want the lowest-indexed job's", workers, err)
		}
		// Per-job error capture: a failure does not cancel the grid.
		if ran.Load() != 20 {
			t.Errorf("workers=%d: %d jobs ran, want all 20", workers, ran.Load())
		}
	}
}

func TestRunJobsZeroJobs(t *testing.T) {
	out, err := runJobs(4, 0, func(int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty grid: %v %v", out, err)
	}
}

// TestSweepStressHighParallelism hammers the sweep engine with far more
// workers than cores over real simulation jobs, so `go test -race`
// exercises the shared paths (workload phase cache, macro-cost cache,
// config singletons) under heavy interleaving.
func TestSweepStressHighParallelism(t *testing.T) {
	powers := []float64{300e-6, 5e-3}
	var rounds [4][]Fig9Point
	for round := range rounds {
		points, err := ComputeFig9(mtj.ProjectedSHE(), powers, 32)
		if err != nil {
			t.Fatal(err)
		}
		rounds[round] = points
	}
	for round := 1; round < len(rounds); round++ {
		if len(rounds[round]) != len(rounds[0]) {
			t.Fatalf("round %d: %d points, want %d", round, len(rounds[round]), len(rounds[0]))
		}
		for i := range rounds[0] {
			if rounds[round][i] != rounds[0][i] {
				t.Errorf("round %d point %d: %+v != %+v", round, i, rounds[round][i], rounds[0][i])
			}
		}
	}
}

// TestJobsExportedContract: Jobs is the pool other engines (the
// fault-injection sweep) build on; its (result, error) pair must be
// identical at any parallelism.
func TestJobsExported(t *testing.T) {
	job := func(i int) (string, error) {
		if i == 5 {
			return "", fmt.Errorf("job 5 failed")
		}
		return fmt.Sprintf("r%d", i), nil
	}
	serialOut, serialErr := Jobs(1, 12, job)
	parallelOut, parallelErr := Jobs(8, 12, job)
	if serialOut != nil || parallelOut != nil {
		t.Fatalf("failed grid returned results: %v / %v", serialOut, parallelOut)
	}
	if serialErr == nil || parallelErr == nil || serialErr.Error() != parallelErr.Error() {
		t.Fatalf("errors diverge across parallelism: %v vs %v", serialErr, parallelErr)
	}
	ok := func(i int) (string, error) { return fmt.Sprintf("r%d", i), nil }
	a, err1 := Jobs(1, 12, ok)
	b, err2 := Jobs(8, 12, ok)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range a {
		if a[i] != b[i] || a[i] != fmt.Sprintf("r%d", i) {
			t.Fatalf("result[%d] %q vs %q", i, a[i], b[i])
		}
	}
}
