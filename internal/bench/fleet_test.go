package bench

import (
	"strings"
	"testing"
)

// TestComputeFleetDeterministicOutcome: the serving experiment's
// deterministic columns must come out clean — every request OK, none
// rejected, zero mismatches — for both workloads under both power
// modes, in registry row order.
func TestComputeFleetDeterministicOutcome(t *testing.T) {
	rows, err := ComputeFleet(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ wl, power string }{
		{"svm-adult", "continuous"},
		{"svm-adult", "harvested"},
		{"bnn-hidden16", "continuous"},
		{"bnn-hidden16", "harvested"},
	}
	if len(rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		if r.Workload != want[i].wl || r.Power != want[i].power {
			t.Errorf("row %d is %s/%s, want %s/%s", i, r.Workload, r.Power, want[i].wl, want[i].power)
		}
		if r.OK != fleetBenchRequests || r.Rejected != 0 || r.Errors != 0 || r.Mismatches != 0 {
			t.Errorf("%s/%s: ok %d rejected %d errors %d mismatches %d, want %d/0/0/0",
				r.Workload, r.Power, r.OK, r.Rejected, r.Errors, r.Mismatches, fleetBenchRequests)
		}
		if r.P50Ms < 0 || r.P99Ms < r.P50Ms || r.MeanMs <= 0 {
			t.Errorf("%s/%s: latency percentiles inconsistent: p50 %g p99 %g mean %g",
				r.Workload, r.Power, r.P50Ms, r.P99Ms, r.MeanMs)
		}
	}
}

// TestNormalizeZeroesFleetLatencies: the wall-clock percentile fields
// must not survive Normalize, or the deterministic-report contract
// breaks the first time two machines disagree on microseconds.
func TestNormalizeZeroesFleetLatencies(t *testing.T) {
	rep := &Report{Experiments: []ExperimentReport{{
		Name: "fleet",
		Rows: []FleetRow{{Workload: "svm-adult", OK: 3, P50Ms: 1.5, P99Ms: 2.5, MeanMs: 1.8}},
	}}}
	rep.Normalize()
	row := rep.Experiments[0].Rows.([]FleetRow)[0]
	if row.P50Ms != 0 || row.P99Ms != 0 || row.MeanMs != 0 {
		t.Errorf("Normalize left latencies %g/%g/%g", row.P50Ms, row.P99Ms, row.MeanMs)
	}
	if row.OK != 3 || row.Workload != "svm-adult" {
		t.Errorf("Normalize damaged outcome fields: %+v", row)
	}
}

// TestPrintFleetCheckedShape: the registry table view carries only the
// deterministic columns — no latency numbers.
func TestPrintFleetCheckedShape(t *testing.T) {
	var sb strings.Builder
	if err := PrintFleetChecked(&sb, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, wantSub := range []string{"svm-adult", "bnn-hidden16", "continuous", "harvested", "mismatches"} {
		if !strings.Contains(out, wantSub) {
			t.Errorf("table missing %q:\n%s", wantSub, out)
		}
	}
	if strings.Contains(out, "ms") && !strings.Contains(out, "mousebench -fleet") {
		t.Errorf("deterministic table leaks latency columns:\n%s", out)
	}
}
