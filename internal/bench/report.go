package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"time"

	"mouse/internal/array"
	"mouse/internal/mtj"
	"mouse/internal/probe"
)

// Schema identifies the JSON report layout. Bump it when the report
// structure changes incompatibly; BENCH_*.json files across PRs form
// the perf trajectory and tooling keys off this string.
const Schema = "mouse-bench/v1"

// Report is the machine-readable result of a mousebench run: every
// selected experiment's typed rows plus its wall-clock cost, so a
// committed BENCH_N.json both records the paper-reproduction numbers
// and tracks how fast the harness regenerates them.
type Report struct {
	Schema string `json:"schema"`
	Tool   string `json:"tool"`
	// Parallelism is the sweep-engine worker bound the run used
	// (resolved: never 0).
	Parallelism int                `json:"parallelism"`
	Experiments []ExperimentReport `json:"experiments"`

	// Telemetry is the probe.Stats snapshot of every simulation the run
	// executed, present only when telemetry collection was requested
	// (mousebench -telemetry). Adding an optional section keeps the
	// schema at v1: absent in older BENCH_*.json files, ignored by
	// tooling that does not know it.
	Telemetry *probe.Section `json:"telemetry,omitempty"`

	// Meta records the environment that produced the report (toolchain,
	// host parallelism, git revision when the binary carries VCS
	// stamping). Like Telemetry it is an optional v1 section: Normalize
	// strips it, so it never participates in cross-run result diffs.
	Meta *RunMeta `json:"meta,omitempty"`
}

// RunMeta is the report's run-environment stamp.
type RunMeta struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// GitRevision is the commit the binary was built from, when the Go
	// toolchain embedded VCS info (`go build` inside a checkout; absent
	// under `go run` and in test binaries).
	GitRevision string `json:"git_revision,omitempty"`
	// GitDirty marks a build from a modified working tree.
	GitDirty bool `json:"git_dirty,omitempty"`
}

// CollectRunMeta captures the current process's run metadata.
func CollectRunMeta() *RunMeta {
	m := &RunMeta{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitRevision = s.Value
			case "vcs.modified":
				m.GitDirty = s.Value == "true"
			}
		}
	}
	return m
}

// ExperimentReport is one experiment's structured result.
type ExperimentReport struct {
	Name string `json:"name"`
	// WallSeconds is the host wall-clock time computing the rows took.
	WallSeconds float64 `json:"wall_seconds"`
	// Rows is the experiment's typed row slice (e.g. []Fig9Sweep for
	// fig9, []TableIVRow for table4); in decoded reports it is the
	// generic JSON form.
	Rows any `json:"rows"`
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Normalize zeroes the run-environment fields — wall-clock times and
// the worker count — leaving only the simulated results, so reports
// from different machines or parallelism settings compare deep-equal
// exactly when the simulation itself is deterministic.
func (r *Report) Normalize() {
	r.Parallelism = 0
	for i := range r.Experiments {
		r.Experiments[i].WallSeconds = 0
		// The batch experiment's throughput numbers are host wall clock
		// too; only its shape and mismatch count are simulation output.
		if rows, ok := r.Experiments[i].Rows.([]BatchRow); ok {
			for j := range rows {
				rows[j].NsSequential = 0
				rows[j].NsBatched = 0
				rows[j].Speedup = 0
			}
		}
		// Likewise the segment experiment's sweep timings; its restart
		// totals and mismatch counts are simulation output.
		if rows, ok := r.Experiments[i].Rows.([]SegmentRow); ok {
			for j := range rows {
				rows[j].NsStepping = 0
				rows[j].NsSegment = 0
				rows[j].Speedup = 0
			}
		}
		// And the fleet experiment's request latencies; its outcome and
		// mismatch counters are the serving result.
		if rows, ok := r.Experiments[i].Rows.([]FleetRow); ok {
			for j := range rows {
				rows[j].P50Ms = 0
				rows[j].P99Ms = 0
				rows[j].MeanMs = 0
			}
		}
	}
	// Telemetry floats accumulate in pool-scheduling order, so two runs
	// of the same experiments at different parallelism can differ in the
	// last ulp; the section is diagnostics, not simulation output.
	r.Telemetry = nil
	r.Meta = nil
}

// Fig9Sweep is one configuration's Fig. 9 power sweep in a report.
type Fig9Sweep struct {
	Config string
	Points []Fig9Point
}

// CrossoverResult is the crossover experiment's single row.
type CrossoverResult struct {
	// PowerW is the FP-BNN vs SVM MNIST (Bin) latency-crossover power.
	PowerW float64
}

// Experiment is one entry of the mousebench registry: a stable name, a
// human-readable table printer, and a typed-row producer for JSON
// reports. workers bounds the sweep pool (<= 0 selects DefaultWorkers).
// The optional observer is shared by every simulation the experiment
// runs (so it must be concurrency-safe, like probe.Stats); experiments
// that run no simulations ignore it.
type Experiment struct {
	Name  string
	Print func(w io.Writer, workers int, obs ...probe.Observer) error
	Rows  func(workers int, obs ...probe.Observer) (any, error)
}

// Experiments lists every experiment in output order. The names are the
// mousebench -experiment values and the report row keys; keep them
// stable across PRs so BENCH_*.json files stay comparable.
func Experiments() []Experiment {
	return []Experiment{
		{
			Name:  "table1",
			Print: func(w io.Writer, _ int, _ ...probe.Observer) error { PrintTableI(w, mtj.ModernSTT()); return nil },
			Rows:  func(_ int, _ ...probe.Observer) (any, error) { return ComputeTableI(mtj.ModernSTT()), nil },
		},
		{
			Name:  "table2",
			Print: func(w io.Writer, _ int, _ ...probe.Observer) error { PrintTableII(w); return nil },
			Rows:  func(_ int, _ ...probe.Observer) (any, error) { return ComputeTableII(), nil },
		},
		{
			Name:  "table3",
			Print: func(w io.Writer, _ int, _ ...probe.Observer) error { PrintTableIII(w); return nil },
			Rows:  func(_ int, _ ...probe.Observer) (any, error) { return ComputeTableIII(), nil },
		},
		{
			Name: "table4",
			Print: func(w io.Writer, workers int, obs ...probe.Observer) error {
				PrintTableIV(w, workers, obs...)
				return nil
			},
			Rows: func(workers int, obs ...probe.Observer) (any, error) { return ComputeTableIV(workers, obs...), nil },
		},
		{
			Name: "fig9",
			Print: func(w io.Writer, workers int, obs ...probe.Observer) error {
				for i, cfg := range mtj.Configs() {
					if i > 0 {
						fmt.Fprintln(w)
					}
					if err := PrintFig9(w, cfg, workers, obs...); err != nil {
						return err
					}
				}
				return nil
			},
			Rows: func(workers int, obs ...probe.Observer) (any, error) {
				var sweeps []Fig9Sweep
				for _, cfg := range mtj.Configs() {
					points, err := ComputeFig9(cfg, Powers(), workers, obs...)
					if err != nil {
						return nil, err
					}
					sweeps = append(sweeps, Fig9Sweep{Config: cfg.Name, Points: points})
				}
				return sweeps, nil
			},
		},
		breakdownExperiment("fig10", "Fig. 10", mtj.ModernSTT),
		breakdownExperiment("fig11", "Fig. 11", mtj.ProjectedSTT),
		breakdownExperiment("fig12", "Fig. 12", mtj.ProjectedSHE),
		{
			Name:  "fft",
			Print: func(w io.Writer, workers int, obs ...probe.Observer) error { return PrintFFT(w, workers, obs...) },
			Rows:  func(workers int, obs ...probe.Observer) (any, error) { return ComputeFFT(workers, obs...) },
		},
		{
			Name:  "robustness",
			Print: func(w io.Writer, workers int, _ ...probe.Observer) error { PrintRobustness(w, workers); return nil },
			Rows:  func(workers int, _ ...probe.Observer) (any, error) { return ComputeRobustness(workers), nil },
		},
		{
			Name: "checkpoint",
			Print: func(w io.Writer, workers int, obs ...probe.Observer) error {
				return PrintCheckpointSweep(w, mtj.ModernSTT(), "SVM ADULT", workers, obs...)
			},
			Rows: func(workers int, obs ...probe.Observer) (any, error) {
				rows, err := ComputeCheckpointSweep(mtj.ModernSTT(), "SVM ADULT", workers, obs...)
				if err != nil {
					return nil, err
				}
				return rows, nil
			},
		},
		{
			Name:  "parallelism",
			Print: func(w io.Writer, _ int, _ ...probe.Observer) error { PrintParallelism(w); return nil },
			Rows:  func(_ int, _ ...probe.Observer) (any, error) { return ComputeParallelism(), nil },
		},
		{
			Name: "crossover",
			Print: func(w io.Writer, workers int, obs ...probe.Observer) error {
				p, err := CrossoverPowerW(mtj.ModernSTT(), workers, obs...)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "FP-BNN vs SVM MNIST (Bin) latency crossover: %.3g W\n", p)
				fmt.Fprintln(w, "below this power the energy-hungrier FP-BNN is slower; above it its")
				fmt.Fprintln(w, "higher exploited parallelism wins (Section IX)")
				return nil
			},
			Rows: func(workers int, obs ...probe.Observer) (any, error) {
				p, err := CrossoverPowerW(mtj.ModernSTT(), workers, obs...)
				if err != nil {
					return nil, err
				}
				return []CrossoverResult{{PowerW: p}}, nil
			},
		},
		{
			Name: "batch",
			Print: func(w io.Writer, workers int, _ ...probe.Observer) error {
				return PrintBatchChecked(w, array.MaxLanes, workers)
			},
			Rows: func(workers int, _ ...probe.Observer) (any, error) {
				return ComputeBatch(array.MaxLanes, workers)
			},
		},
		{
			Name: "segment",
			Print: func(w io.Writer, workers int, _ ...probe.Observer) error {
				return PrintSegmentChecked(w, workers)
			},
			Rows: func(workers int, _ ...probe.Observer) (any, error) {
				return ComputeSegment(workers)
			},
		},
		{
			Name: "fleet",
			Print: func(w io.Writer, workers int, _ ...probe.Observer) error {
				return PrintFleetChecked(w, workers)
			},
			Rows: func(workers int, _ ...probe.Observer) (any, error) {
				return ComputeFleet(workers)
			},
		},
	}
}

// breakdownExperiment builds a Figs. 10–12 registry entry.
func breakdownExperiment(name, figure string, cfg func() *mtj.Config) Experiment {
	return Experiment{
		Name: name,
		Print: func(w io.Writer, workers int, obs ...probe.Observer) error {
			return PrintBreakdown(w, cfg(), 60e-6, figure, workers, obs...)
		},
		Rows: func(workers int, obs ...probe.Observer) (any, error) {
			rows, err := ComputeBreakdown(cfg(), 60e-6, workers, obs...)
			if err != nil {
				return nil, err
			}
			return rows, nil
		},
	}
}

// selectExperiments resolves an -experiment value against the registry.
func selectExperiments(experiment string) ([]Experiment, error) {
	all := Experiments()
	if experiment == "all" {
		return all, nil
	}
	for _, e := range all {
		if e.Name == experiment {
			return []Experiment{e}, nil
		}
	}
	return nil, fmt.Errorf("unknown experiment %q", experiment)
}

// RunPrinted renders the selected experiment (or "all") as the
// human-readable tables, separated by exactly one blank line, with no
// leading or trailing blank line.
func RunPrinted(w io.Writer, experiment string, workers int, obs ...probe.Observer) error {
	return RunPrintedProgress(w, experiment, workers, nil, obs...)
}

// RunPrintedProgress is RunPrinted with per-experiment lifecycle events
// delivered to prog (nil means no events). Events only wrap the calls —
// table bytes on w are identical with or without a Progress attached.
func RunPrintedProgress(w io.Writer, experiment string, workers int, prog Progress, obs ...probe.Observer) error {
	selected, err := selectExperiments(experiment)
	if err != nil {
		return err
	}
	for i, e := range selected {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if prog != nil {
			prog.ExperimentStarted(e.Name, i+1, len(selected))
		}
		start := time.Now()
		err := e.Print(w, workers, obs...)
		if prog != nil {
			prog.ExperimentFinished(e.Name, i+1, len(selected), -1, time.Since(start), err)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
	}
	return nil
}

// BuildReport computes the selected experiment's (or "all" experiments')
// typed rows and wall-clock costs into a Report, stamped with the
// current run's metadata.
func BuildReport(experiment string, workers int, obs ...probe.Observer) (*Report, error) {
	return BuildReportProgress(experiment, workers, nil, obs...)
}

// BuildReportProgress is BuildReport with per-experiment lifecycle
// events delivered to prog (nil means no events).
func BuildReportProgress(experiment string, workers int, prog Progress, obs ...probe.Observer) (*Report, error) {
	selected, err := selectExperiments(experiment)
	if err != nil {
		return nil, err
	}
	rep := &Report{Schema: Schema, Tool: "mousebench", Parallelism: clampWorkers(workers, 1<<30), Meta: CollectRunMeta()}
	for _, e := range selected {
		if prog != nil {
			prog.ExperimentStarted(e.Name, len(rep.Experiments)+1, len(selected))
		}
		start := time.Now()
		rows, err := e.Rows(workers, obs...)
		wall := time.Since(start)
		if prog != nil {
			prog.ExperimentFinished(e.Name, len(rep.Experiments)+1, len(selected), RowCount(rows), wall, err)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		rep.Experiments = append(rep.Experiments, ExperimentReport{
			Name:        e.Name,
			WallSeconds: wall.Seconds(),
			Rows:        rows,
		})
	}
	return rep, nil
}

// BuildTelemetryReport is BuildReport with a shared probe.Stats
// attached to every simulation the selected experiments run; its
// snapshot lands in the report's Telemetry section.
func BuildTelemetryReport(experiment string, workers int) (*Report, error) {
	return BuildTelemetryReportProgress(experiment, workers, nil)
}

// BuildTelemetryReportProgress is BuildTelemetryReport with progress
// events (nil prog means no events).
func BuildTelemetryReportProgress(experiment string, workers int, prog Progress) (*Report, error) {
	stats := &probe.Stats{}
	rep, err := BuildReportProgress(experiment, workers, prog, stats)
	if err != nil {
		return nil, err
	}
	rep.Telemetry = stats.Section()
	return rep, nil
}
