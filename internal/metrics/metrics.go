// Package metrics is a zero-dependency (stdlib-only), process-local
// metrics registry with Prometheus text-format exposition: counters,
// gauges, and histograms with explicit bucket bounds, all updated on
// the hot path with lock-free atomics (the same CAS-accumulator idiom
// internal/probe uses), plus callback-backed families for values that
// are snapshotted at scrape time rather than maintained eagerly.
//
// The registry is the live-telemetry substrate behind cmd/moused: probe
// shards feed it through the ExportStats bridge (see probe.go), server
// events feed it through direct instruments, and /metrics renders the
// whole registry with WriteText. Families render sorted by name and
// children sorted by label value, so exposition output is deterministic
// for a quiesced registry — tests diff it byte-for-byte.
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Label is one name="value" pair attached to a sample.
type Label struct {
	Name, Value string
}

// Sample is one exposition line of a metric family: the family name
// plus Suffix (e.g. "_bucket" inside a histogram family), the label
// set, and the value. Collect callbacks return these.
type Sample struct {
	Suffix string
	Labels []Label
	Value  float64
}

// family is one metric family: name, metadata, and a closure producing
// its samples at scrape time. Direct instruments close over their
// atomic state; Collect families run user callbacks.
type family struct {
	name    string
	help    string
	kind    string
	samples func() []Sample
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; call New.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	prep     []func()
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register installs a family, panicking on invalid or duplicate names —
// registration happens at process start-up, so a bad name is a
// programming error, not a runtime condition.
func (r *Registry) register(f *family) {
	if !nameRE.MatchString(f.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", f.name))
	}
	r.families[f.name] = f
}

// OnScrape registers fn to run at the start of every WriteText call,
// before any family renders. Bridges use it to snapshot a shared source
// once per scrape so every family derived from it sees one consistent
// view.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prep = append(r.prep, fn)
}

// Collect registers a callback-backed family: fn is invoked once per
// scrape and returns the family's samples. kind must be "counter",
// "gauge", "histogram", or "untyped"; the callback is responsible for
// emitting samples consistent with that type (histogram callbacks emit
// _bucket/_sum/_count suffixes themselves).
func (r *Registry) Collect(name, kind, help string, fn func() []Sample) {
	switch kind {
	case "counter", "gauge", "histogram", "untyped":
	default:
		panic(fmt.Sprintf("metrics: invalid family kind %q for %q", kind, name))
	}
	r.register(&family{name: name, help: help, kind: kind, samples: fn})
}

// --- direct instruments --------------------------------------------------

// floatBits is a float64 updated with CAS loops, mirroring
// probe.atomicFloat so hot-path updates stay lock-free.
type floatBits struct{ bits atomic.Uint64 }

func (f *floatBits) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *floatBits) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *floatBits) load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v floatBits }

// Inc adds 1.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds v, which must be non-negative.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("metrics: counter decremented")
	}
	c.v.add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v floatBits }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) { g.v.add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

// Histogram counts observations into explicit buckets. Buckets follow
// the Prometheus le convention: an observation lands in the first
// bucket whose upper bound is >= the value, with an implicit +Inf
// bucket at the end.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    floatBits
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// LogBuckets returns n log10-spaced bucket bounds starting at floor:
// floor, floor*10, ..., floor*10^(n-1). LogBuckets(1e-6, 9) reproduces
// the finite edges of probe's outage-duration histogram.
func LogBuckets(floor float64, n int) []float64 {
	bounds := make([]float64, n)
	for i := range bounds {
		bounds[i] = floor * math.Pow(10, float64(i))
	}
	return bounds
}

// ExpBuckets returns n exponentially spaced bucket bounds: start,
// start*factor, ..., start*factor^(n-1) — the general form of
// LogBuckets for latency histograms that need a factor finer than 10.
// start must be positive and factor greater than 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: ExpBuckets(%g, %g, %d) invalid", start, factor, n))
	}
	bounds := make([]float64, n)
	b := start
	for i := range bounds {
		bounds[i] = b
		b *= factor
	}
	return bounds
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: "counter", samples: func() []Sample {
		return []Sample{{Value: c.Value()}}
	}})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, kind: "gauge", samples: func() []Sample {
		return []Sample{{Value: g.Value()}}
	}})
	return g
}

// NewHistogram registers and returns a histogram with the given bucket
// upper bounds, which must be sorted strictly increasing and finite.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) || (i > 0 && b <= bounds[i-1]) {
			panic(fmt.Sprintf("metrics: histogram %q bounds must be finite and strictly increasing", name))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	r.register(&family{name: name, help: help, kind: "histogram", samples: func() []Sample {
		return histogramSamples(h.bounds, func(i int) uint64 { return h.counts[i].Load() }, h.Sum())
	}})
	return h
}

// histogramSamples renders cumulative _bucket samples plus _sum and
// _count from per-bucket counts (len(bounds)+1 of them, +Inf last).
func histogramSamples(bounds []float64, count func(i int) uint64, sum float64) []Sample {
	s := make([]Sample, 0, len(bounds)+3)
	var cum uint64
	for i, b := range bounds {
		cum += count(i)
		s = append(s, Sample{Suffix: "_bucket", Labels: []Label{{"le", formatValue(b)}}, Value: float64(cum)})
	}
	cum += count(len(bounds))
	s = append(s,
		Sample{Suffix: "_bucket", Labels: []Label{{"le", "+Inf"}}, Value: float64(cum)},
		Sample{Suffix: "_sum", Value: sum},
		Sample{Suffix: "_count", Value: float64(cum)},
	)
	return s
}

// --- labeled vectors -----------------------------------------------------

// vec is the shared child table behind CounterVec and GaugeVec: a
// read-mostly map from joined label values to the child instrument.
// Lookup takes a read lock (not the instrument update itself, which
// stays lock-free); callers on genuinely hot paths should cache the
// child returned by With.
type vec[T any] struct {
	labels []string
	mu     sync.RWMutex
	kids   map[string]*vecChild[T]
}

type vecChild[T any] struct {
	values []string
	inst   T
}

func newVec[T any](name string, labels []string) *vec[T] {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: vec %q needs at least one label", name))
	}
	for _, l := range labels {
		if !labelRE.MatchString(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	return &vec[T]{labels: labels, kids: map[string]*vecChild[T]{}}
}

// joinKey encodes label values unambiguously (values may contain any
// byte, so a plain separator join would collide).
func joinKey(values []string) string {
	key := ""
	for _, v := range values {
		key += fmt.Sprintf("%d:%s", len(v), v)
	}
	return key
}

func (v *vec[T]) with(values ...string) *T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: got %d label values, want %d", len(values), len(v.labels)))
	}
	key := joinKey(values)
	v.mu.RLock()
	kid := v.kids[key]
	v.mu.RUnlock()
	if kid != nil {
		return &kid.inst
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if kid = v.kids[key]; kid == nil {
		kid = &vecChild[T]{values: append([]string(nil), values...)}
		v.kids[key] = kid
	}
	return &kid.inst
}

// samples renders every child sorted by label-value key.
func (v *vec[T]) samples(value func(*T) float64) []Sample {
	v.mu.RLock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Sample, 0, len(keys))
	for _, k := range keys {
		kid := v.kids[k]
		labels := make([]Label, len(v.labels))
		for i, val := range kid.values {
			labels[i] = Label{v.labels[i], val}
		}
		out = append(out, Sample{Labels: labels, Value: value(&kid.inst)})
	}
	v.mu.RUnlock()
	return out
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ v *vec[Counter] }

// With returns the counter for the given label values, creating it on
// first use.
func (cv *CounterVec) With(values ...string) *Counter { return cv.v.with(values...) }

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	cv := &CounterVec{v: newVec[Counter](name, labels)}
	r.register(&family{name: name, help: help, kind: "counter", samples: func() []Sample {
		return cv.v.samples(func(c *Counter) float64 { return c.Value() })
	}})
	return cv
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ v *vec[Gauge] }

// With returns the gauge for the given label values, creating it on
// first use.
func (gv *GaugeVec) With(values ...string) *Gauge { return gv.v.with(values...) }

// NewGaugeVec registers and returns a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	gv := &GaugeVec{v: newVec[Gauge](name, labels)}
	r.register(&family{name: name, help: help, kind: "gauge", samples: func() []Sample {
		return gv.v.samples(func(g *Gauge) float64 { return g.Value() })
	}})
	return gv
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format (the /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		if err := r.WriteText(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			panic(http.ErrAbortHandler)
		}
	})
}
