package metrics

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type of the Prometheus text format
// version this package emits.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, each preceded by its
// # HELP and # TYPE lines, children in the deterministic order the
// family's sample function yields. OnScrape hooks run first, so
// callback-backed families observe one consistent snapshot.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	prep := append([]func(){}, r.prep...)
	families := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		families = append(families, f)
	}
	r.mu.Unlock()
	for _, fn := range prep {
		fn()
	}
	sort.Slice(families, func(i, j int) bool { return families[i].name < families[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range families {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind)
		bw.WriteByte('\n')
		for _, s := range f.samples() {
			bw.WriteString(f.name)
			bw.WriteString(s.Suffix)
			if len(s.Labels) > 0 {
				bw.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						bw.WriteByte(',')
					}
					bw.WriteString(l.Name)
					bw.WriteString(`="`)
					bw.WriteString(escapeLabel(l.Value))
					bw.WriteByte('"')
				}
				bw.WriteByte('}')
			}
			bw.WriteByte(' ')
			bw.WriteString(formatValue(s.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// formatValue renders a sample value: full round-trip precision, with
// the spec's spellings for infinities and NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
