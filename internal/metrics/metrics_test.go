package metrics

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.NewCounter("test_ops_total", "ops")
	g := r.NewGauge("test_depth", "depth")
	c.Inc()
	c.Add(2.5)
	g.Set(4)
	g.Add(-1.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter %g, want 3.5", got)
	}
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge %g, want 2.5", got)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("negative Add did not panic")
		}
	}()
	r := New()
	r.NewCounter("test_total", "t").Add(-1)
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.NewHistogram("test_seconds", "t", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count %d, want 6", h.Count())
	}
	if h.Sum() != 1024 {
		t.Errorf("sum %g, want 1024", h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_seconds t
# TYPE test_seconds histogram
test_seconds_bucket{le="1"} 2
test_seconds_bucket{le="10"} 4
test_seconds_bucket{le="100"} 5
test_seconds_bucket{le="+Inf"} 6
test_seconds_sum 1024
test_seconds_count 6
`
	if got := buf.String(); got != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestLogBuckets(t *testing.T) {
	got := LogBuckets(1e-6, 9)
	if len(got) != 9 || got[0] != 1e-6 || got[8] != 100 {
		t.Errorf("LogBuckets(1e-6, 9) = %v", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1e-4, 4, 10)
	if len(got) != 10 || got[0] != 1e-4 || got[1] != 4e-4 {
		t.Errorf("ExpBuckets(1e-4, 4, 10) = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("bounds not increasing at %d: %v", i, got)
		}
	}
	// ExpBuckets with factor 10 is LogBuckets.
	exp, log := ExpBuckets(1e-6, 10, 9), LogBuckets(1e-6, 9)
	for i := range log {
		if math.Abs(exp[i]-log[i]) > log[i]*1e-12 {
			t.Errorf("ExpBuckets/LogBuckets diverge at %d: %g vs %g", i, exp[i], log[i])
		}
	}
	for name, fn := range map[string]func(){
		"zero start":  func() { ExpBuckets(0, 2, 3) },
		"flat factor": func() { ExpBuckets(1, 1, 3) },
		"no buckets":  func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestVecChildrenSortedAndEscaped(t *testing.T) {
	r := New()
	cv := r.NewCounterVec("test_by_kind_total", `kinds with "quotes" and \slashes`, "kind")
	cv.With("b\nb").Add(2)
	cv.With(`a"x`).Inc()
	gv := r.NewGaugeVec("test_temp", "t", "zone", "rack")
	gv.With("z1", "r2").Set(5)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_by_kind_total kinds with "quotes" and \\slashes
# TYPE test_by_kind_total counter
test_by_kind_total{kind="a\"x"} 1
test_by_kind_total{kind="b\nb"} 2
# HELP test_temp t
# TYPE test_temp gauge
test_temp{zone="z1",rack="r2"} 5
`
	if got := buf.String(); got != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", got, want)
	}
	// Round-trip through the parser restores the escaped values.
	vals, err := Values(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	// Key() renders label values Go-quoted, so the quote re-escapes.
	if vals["test_by_kind_total{kind=\"a\\\"x\"}"] != 1 {
		t.Errorf("parsed values: %v", vals)
	}
}

func TestWithReturnsSameChild(t *testing.T) {
	r := New()
	cv := r.NewCounterVec("test_total", "t", "k")
	a, b := cv.With("x"), cv.With("x")
	if a != b {
		t.Errorf("With returned distinct children for identical labels")
	}
}

func TestDuplicateAndInvalidRegistrationPanics(t *testing.T) {
	r := New()
	r.NewCounter("dup_total", "d")
	for name, fn := range map[string]func(){
		"duplicate":      func() { r.NewGauge("dup_total", "d") },
		"invalid name":   func() { r.NewCounter("0bad", "d") },
		"invalid label":  func() { r.NewCounterVec("ok_total", "d", "0bad") },
		"invalid kind":   func() { r.Collect("ok2_total", "timer", "d", nil) },
		"unsorted hist":  func() { r.NewHistogram("h1", "d", []float64{2, 1}) },
		"infinite bound": func() { r.NewHistogram("h2", "d", []float64{1, math.Inf(1)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s registration did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestConcurrentUpdates hammers the instruments from several
// goroutines; totals must come out exact and -race must stay quiet,
// pinning the lock-free hot-path contract.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.NewCounter("test_total", "t")
	g := r.NewGauge("test_gauge", "t")
	h := r.NewHistogram("test_hist", "t", LogBuckets(1e-3, 5))
	cv := r.NewCounterVec("test_vec_total", "t", "w")
	const workers = 8
	const per = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // concurrent scraper
		for {
			select {
			case <-stop:
				return
			default:
				var buf bytes.Buffer
				if err := r.WriteText(&buf); err != nil {
					panic(err)
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kid := cv.With("w")
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(0.5)
				h.Observe(0.01)
				kid.Inc()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if c.Value() != workers*per {
		t.Errorf("counter %g, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per/2 {
		t.Errorf("gauge %g, want %d", g.Value(), workers*per/2)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count %d, want %d", h.Count(), workers*per)
	}
	if cv.With("w").Value() != workers*per {
		t.Errorf("vec %g, want %d", cv.With("w").Value(), workers*per)
	}
}

func TestOnScrapeRunsBeforeCollect(t *testing.T) {
	r := New()
	snapshot := -1.0
	r.OnScrape(func() { snapshot = 42 })
	r.Collect("test_total", "counter", "t", func() []Sample {
		return []Sample{{Value: snapshot}}
	})
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test_total 42") {
		t.Errorf("collect saw stale snapshot:\n%s", buf.String())
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := New()
	r.NewCounter("test_total", "t").Add(7)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("content type %q", ct)
	}
	vals, err := Values(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if vals["test_total"] != 7 {
		t.Errorf("served values %v", vals)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:            "0",
		1.5:          "1.5",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		1e-6:         "1e-06",
		12345678901:  "1.2345678901e+10",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%g) = %q, want %q", v, got, want)
		}
	}
	// Full round-trip precision: runtime float addition keeps the ulp.
	x, y := 0.1, 0.2
	if got := formatValue(x + y); got != "0.30000000000000004" {
		t.Errorf("formatValue(0.1+0.2) = %q", got)
	}
}
