package metrics

import (
	"bytes"
	"strings"
	"testing"

	"mouse/internal/isa"
	"mouse/internal/probe"
)

func TestLintAcceptsRegistryOutput(t *testing.T) {
	r := New()
	r.NewCounter("a_total", "a counter").Add(3)
	r.NewGauge("b_depth", "a gauge").Set(-2)
	r.NewHistogram("c_seconds", "a histogram", LogBuckets(1e-3, 4)).Observe(0.5)
	r.NewCounterVec("d_total", "labeled", "kind").With("x").Inc()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := Lint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("lint rejected registry output: %v\n%s", err, buf.String())
	}
}

func TestLintRejections(t *testing.T) {
	cases := map[string]string{
		"bad metric name":    "0bad 1\n",
		"bad value":          "a_total 1.2.3\n",
		"bad label name":     `a_total{0bad="x"} 1` + "\n",
		"unquoted label":     `a_total{k=x} 1` + "\n",
		"unterminated":       `a_total{k="x} 1` + "\n",
		"bad escape":         `a_total{k="\q"} 1` + "\n",
		"duplicate series":   "a_total 1\na_total 2\n",
		"negative counter":   "# TYPE a_total counter\na_total -1\n",
		"unknown type":       "# TYPE a_total timer\na_total 1\n",
		"second type":        "# TYPE a_total counter\n# TYPE a_total gauge\na_total 1\n",
		"type after samples": "a_total 1\n# TYPE a_total counter\n",
		"split group":        "# TYPE a_total counter\na_total 1\n# TYPE b_total counter\nb_total 1\n# HELP a_total again\n",
		"bad timestamp":      "a_total 1 12.5\n",
		"hist not cumulative": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\n" +
			"h_sum 1\nh_count 3\n",
		"hist unsorted le": "# TYPE h histogram\n" +
			`h_bucket{le="2"} 1` + "\n" + `h_bucket{le="1"} 1` + "\n" + `h_bucket{le="+Inf"} 2` + "\n" +
			"h_sum 1\nh_count 2\n",
		"hist missing +Inf": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\n" + "h_sum 1\nh_count 1\n",
		"hist count mismatch": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 2` + "\n" + "h_sum 1\nh_count 3\n",
		"hist missing sum": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 1` + "\n" + "h_count 1\n",
		"hist bucket without le": "# TYPE h histogram\n" +
			`h_bucket{x="1"} 1` + "\n" + "h_sum 1\nh_count 1\n",
	}
	for name, in := range cases {
		if err := Lint(strings.NewReader(in)); err == nil {
			t.Errorf("%s: lint accepted\n%s", name, in)
		}
	}
}

func TestLintAcceptsUntypedAndComments(t *testing.T) {
	in := "# a free comment\n\nplain_value 1\n# HELP other described\nother 2 1700000000\n"
	if err := Lint(strings.NewReader(in)); err != nil {
		t.Errorf("lint rejected valid untyped exposition: %v", err)
	}
}

func TestValuesRoundTrip(t *testing.T) {
	in := `a_total{x="1",y="2"} 3` + "\n" + "b 4\n"
	vals, err := Values(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if vals[`a_total{x="1",y="2"}`] != 3 || vals["b"] != 4 {
		t.Errorf("values %v", vals)
	}
}

// TestExportStatsMatchesSection is the bridge's differential test: every
// exposition value must equal the corresponding field of the same
// Section snapshot, and the whole document must pass the linter.
func TestExportStatsMatchesSection(t *testing.T) {
	s := &probe.Stats{}
	for i := 0; i < 7; i++ {
		s.InstrRetired(probe.Instr{Dur: 0.5, Kind: isa.KindLogic, Energy: 0.25, Backup: 0.125})
	}
	s.InstrRetired(probe.Instr{Dur: 0.5, Kind: isa.KindPreset, Energy: 0.25, Replay: true})
	s.PulseInterrupted(probe.Interrupt{Lost: 0.0625})
	for _, off := range []float64{1e-7, 3e-4, 2.0, 500} {
		s.OutageBegin(0)
		s.OutageEnd(1, off)
	}
	s.Restored(probe.Restore{Dur: 0.5, Energy: 0.125, Cols: 3})
	s.VoltageSample(0, 0.25)
	s.VoltageSample(1, 0.75)
	s.TileWrite(0, 8)
	s.TileWrite(5, 16)
	s.FaultInjected(probe.Fault{})

	r := New()
	ExportStats(r, "mouse_probe", s.Section)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := Lint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("bridge output fails lint: %v\n%s", err, buf.String())
	}
	vals, err := Values(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	sec := s.Section()
	want := map[string]float64{
		"mouse_probe_instructions_total":                         float64(sec.Instructions),
		`mouse_probe_instructions_by_kind_total{kind="logic"}`:   7,
		`mouse_probe_instructions_by_kind_total{kind="preset"}`:  1,
		"mouse_probe_replays_total":                              float64(sec.Replays),
		"mouse_probe_interrupts_total":                           float64(sec.Interrupts),
		"mouse_probe_outages_total":                              float64(sec.Outages),
		"mouse_probe_restores_total":                             float64(sec.Restores),
		"mouse_probe_faults_injected_total":                      float64(sec.FaultsInjected),
		"mouse_probe_voltage_samples_total":                      float64(sec.VoltageSamples),
		`mouse_probe_energy_joules_total{phase="compute"}`:       sec.Energy.Compute,
		`mouse_probe_energy_joules_total{phase="backup"}`:        sec.Energy.Backup,
		`mouse_probe_energy_joules_total{phase="restore"}`:       sec.Energy.Restore,
		`mouse_probe_energy_joules_total{phase="lost"}`:          sec.Energy.Lost,
		`mouse_probe_energy_joules_total{phase="replay"}`:        sec.Energy.Replay,
		"mouse_probe_busy_seconds_total":                         sec.BusySeconds,
		"mouse_probe_outage_seconds_total":                       sec.OutageSeconds,
		"mouse_probe_restore_seconds_total":                      sec.RestoreSeconds,
		`mouse_probe_voltage_volts{bound="min"}`:                 sec.VoltageMin,
		`mouse_probe_voltage_volts{bound="max"}`:                 sec.VoltageMax,
		`mouse_probe_tile_writes_total{tile="0"}`:                float64(sec.TileWrites[0].Writes),
		`mouse_probe_tile_bits_total{tile="5"}`:                  float64(sec.TileWrites[1].Bits),
		"mouse_probe_outage_duration_seconds_sum":                sec.OutageSeconds,
		"mouse_probe_outage_duration_seconds_count":              float64(sec.Outages),
		`mouse_probe_outage_duration_seconds_bucket{le="1e-06"}`: 1,
		`mouse_probe_outage_duration_seconds_bucket{le="0.001"}`: 2,
		`mouse_probe_outage_duration_seconds_bucket{le="10"}`:    3,
		`mouse_probe_outage_duration_seconds_bucket{le="+Inf"}`:  4,
	}
	for key, v := range want {
		got, ok := vals[key]
		if !ok {
			t.Errorf("missing series %s\n%s", key, buf.String())
			continue
		}
		if got != v {
			t.Errorf("%s = %g, want %g", key, got, v)
		}
	}
}

// TestExportStatsSnapshotsOncePerScrape pins the OnScrape contract: the
// source function runs exactly once per WriteText, no matter how many
// families it feeds.
func TestExportStatsSnapshotsOncePerScrape(t *testing.T) {
	s := &probe.Stats{}
	calls := 0
	r := New()
	ExportStats(r, "mouse_probe", func() *probe.Section {
		calls++
		return s.Section()
	})
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("source snapshotted %d times in one scrape, want 1", calls)
	}
	if err := Lint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("empty-stats exposition fails lint: %v", err)
	}
}
