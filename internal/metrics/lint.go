package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the in-repo exposition linter: a parser for the
// Prometheus text format plus semantic checks (header placement, sample
// grouping, histogram invariants). CI serves a live moused registry
// through it, so a formatting regression in WriteText or in a bridge
// callback fails the build instead of silently breaking scrapers.

// ParsedSample is one decoded sample line.
type ParsedSample struct {
	// Name is the full sample name, including histogram suffixes.
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the canonical identity of the sample: the name plus the
// label set sorted by label name, in exposition syntax.
func (s ParsedSample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	names := make([]string, 0, len(s.Labels))
	for n := range s.Labels {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, n, s.Labels[n])
	}
	b.WriteByte('}')
	return b.String()
}

// Parse decodes the text exposition format into its samples, validating
// syntax only (names, label quoting, float values). Comment lines other
// than HELP/TYPE are ignored.
func Parse(r io.Reader) ([]ParsedSample, error) {
	var samples []ParsedSample
	err := scan(r, func(int, string, headerLine) {}, func(_ int, s ParsedSample) error {
		samples = append(samples, s)
		return nil
	})
	return samples, err
}

// Values decodes the exposition into a map from canonical sample key
// (see ParsedSample.Key) to value, rejecting duplicate series.
func Values(r io.Reader) (map[string]float64, error) {
	samples, err := Parse(r)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		k := s.Key()
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("metrics: duplicate series %s", k)
		}
		out[k] = s.Value
	}
	return out, nil
}

// headerLine is a decoded # HELP or # TYPE comment.
type headerLine struct {
	kind string // "HELP" or "TYPE"
	name string
	rest string
}

// scan tokenizes the exposition line by line, invoking onHeader for
// HELP/TYPE comments and onSample for samples.
func scan(r io.Reader, onHeader func(line int, text string, h headerLine), onSample func(line int, s ParsedSample) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				rest := ""
				if len(fields) == 4 {
					rest = fields[3]
				}
				if !nameRE.MatchString(fields[2]) {
					return fmt.Errorf("line %d: invalid metric name %q in %s", ln, fields[2], fields[1])
				}
				onHeader(ln, line, headerLine{kind: fields[1], name: fields[2], rest: rest})
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", ln, err)
		}
		if err := onSample(ln, s); err != nil {
			return fmt.Errorf("line %d: %w", ln, err)
		}
	}
	return sc.Err()
}

// parseSample decodes `name{label="value",...} value [timestamp]`.
func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !nameRE.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		s.Labels = map[string]string{}
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if len(rest) > 0 && rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return s, fmt.Errorf("malformed labels in %q", line)
			}
			name := strings.TrimSpace(rest[:eq])
			if !labelRE.MatchString(name) {
				return s, fmt.Errorf("invalid label name %q", name)
			}
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				return s, fmt.Errorf("unquoted label value in %q", line)
			}
			val, n, err := unescapeLabel(rest[1:])
			if err != nil {
				return s, fmt.Errorf("%v in %q", err, line)
			}
			if _, dup := s.Labels[name]; dup {
				return s, fmt.Errorf("duplicate label %q in %q", name, line)
			}
			s.Labels[name] = val
			rest = rest[1+n:]
			if len(rest) > 0 && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected value [timestamp] after name in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return s, nil
}

// unescapeLabel decodes a quoted label value starting after the opening
// quote, returning the value and the number of input bytes consumed
// including the closing quote.
func unescapeLabel(in string) (string, int, error) {
	var b strings.Builder
	for i := 0; i < len(in); i++ {
		switch in[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(in) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			switch in[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("invalid escape \\%c", in[i])
			}
		default:
			b.WriteByte(in[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid sample value %q", s)
	}
	return v, nil
}

// baseName strips a histogram sample suffix when fam is a declared
// histogram family name matching the sample.
func histBase(name string) (base string, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf), suf
		}
	}
	return name, ""
}

// famState tracks one family group while linting.
type famState struct {
	typ     string
	sawHelp bool
	sawType bool
	done    bool
	// histogram accumulation, keyed by the non-le label signature
	buckets map[string][]bucket
	counts  map[string]float64
	sums    map[string]bool
}

type bucket struct {
	le  float64
	cum float64
}

// Lint validates text-exposition output end to end: syntax (via the
// parser), header rules (TYPE/HELP precede samples, at most one each,
// known types), group contiguity (all samples of a family form one
// block), per-series uniqueness, non-negative counters, and histogram
// invariants (le-sorted cumulative buckets, a +Inf bucket agreeing with
// _count, _sum present).
func Lint(r io.Reader) error {
	fams := map[string]*famState{}
	current := ""
	seen := map[string]bool{}

	get := func(name string) *famState {
		f := fams[name]
		if f == nil {
			f = &famState{buckets: map[string][]bucket{}, counts: map[string]float64{}, sums: map[string]bool{}}
			fams[name] = f
		}
		return f
	}
	var hdrErr error
	enter := func(ln int, name string) *famState {
		if current != name {
			if cur := fams[current]; cur != nil {
				cur.done = true
			}
			current = name
		}
		f := get(name)
		if f.done && hdrErr == nil {
			hdrErr = fmt.Errorf("line %d: family %q split into multiple groups", ln, name)
		}
		return f
	}

	err := scan(r,
		func(ln int, _ string, h headerLine) {
			f := enter(ln, h.name)
			if hdrErr != nil {
				return
			}
			switch h.kind {
			case "HELP":
				if f.sawHelp {
					hdrErr = fmt.Errorf("line %d: second HELP for %q", ln, h.name)
				}
				f.sawHelp = true
			case "TYPE":
				switch {
				case f.sawType:
					hdrErr = fmt.Errorf("line %d: second TYPE for %q", ln, h.name)
				case f.typ != "":
					// samples already seen (typ set by sample path)
					hdrErr = fmt.Errorf("line %d: TYPE for %q after its samples", ln, h.name)
				}
				switch h.rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = h.rest
				default:
					hdrErr = fmt.Errorf("line %d: unknown TYPE %q for %q", ln, h.rest, h.name)
				}
				f.sawType = true
			}
		},
		func(ln int, s ParsedSample) error {
			if hdrErr != nil {
				return nil
			}
			// Resolve which family this sample belongs to: histogram
			// child suffixes fold into their declared base family.
			fam := s.Name
			if base, suf := histBase(s.Name); suf != "" {
				if f := fams[base]; f != nil && f.typ == "histogram" {
					fam = base
				}
			}
			f := enter(ln, fam)
			if f.typ == "" {
				f.typ = "untyped"
			}
			key := s.Key()
			if seen[key] {
				return fmt.Errorf("duplicate series %s", key)
			}
			seen[key] = true

			if f.typ == "counter" && s.Value < 0 {
				return fmt.Errorf("counter %s is negative (%g)", key, s.Value)
			}
			if f.typ == "histogram" && fam != s.Name {
				_, suf := histBase(s.Name)
				sig := signatureWithoutLe(s.Labels)
				switch suf {
				case "_bucket":
					leStr, ok := s.Labels["le"]
					if !ok {
						return fmt.Errorf("histogram bucket %s without le label", key)
					}
					le, err := parseValue(leStr)
					if err != nil {
						return fmt.Errorf("histogram bucket %s: bad le: %v", key, err)
					}
					f.buckets[sig] = append(f.buckets[sig], bucket{le: le, cum: s.Value})
				case "_sum":
					f.sums[sig] = true
				case "_count":
					f.counts[sig] = s.Value
				}
			}
			return nil
		})
	if err != nil {
		return err
	}
	if hdrErr != nil {
		return hdrErr
	}

	// Post-pass: histogram invariants per family and label signature.
	for name, f := range fams {
		if f.typ != "histogram" {
			continue
		}
		for sig, bs := range f.buckets {
			for i := 1; i < len(bs); i++ {
				if bs[i].le <= bs[i-1].le {
					return fmt.Errorf("histogram %s%s: buckets not sorted by le", name, sig)
				}
				if bs[i].cum < bs[i-1].cum {
					return fmt.Errorf("histogram %s%s: cumulative counts decrease at le=%g", name, sig, bs[i].le)
				}
			}
			last := bs[len(bs)-1]
			if !math.IsInf(last.le, 1) {
				return fmt.Errorf("histogram %s%s: missing +Inf bucket", name, sig)
			}
			count, ok := f.counts[sig]
			if !ok {
				return fmt.Errorf("histogram %s%s: missing _count", name, sig)
			}
			if count != last.cum {
				return fmt.Errorf("histogram %s%s: _count %g != +Inf bucket %g", name, sig, count, last.cum)
			}
			if !f.sums[sig] {
				return fmt.Errorf("histogram %s%s: missing _sum", name, sig)
			}
		}
	}
	return nil
}

// signatureWithoutLe canonicalizes a bucket's labels minus le, so
// buckets of the same series group together.
func signatureWithoutLe(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	names := make([]string, 0, len(labels))
	for n := range labels {
		if n != "le" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, n, labels[n])
	}
	b.WriteByte('}')
	return b.String()
}
