package metrics

import (
	"sort"
	"strconv"
	"sync/atomic"

	"mouse/internal/probe"
)

// ExportStats bridges probe telemetry into a registry: src is invoked
// once per scrape (via an OnScrape hook) and its Section drives a full
// set of metric families under the given prefix — instruction and
// outage counters, per-phase energy, the log10 outage-duration
// histogram, capacitor-voltage gauges, and per-tile wear counters.
//
// The bridge adds zero cost to simulation hot paths: runners keep
// feeding their lock-free probe.Stats exactly as before, and all
// conversion work happens at scrape time from the snapshot src returns.
// src typically merges per-worker or per-device shards into a fresh
// Stats (probe.Stats.Merge) and returns its Section, which is also what
// post-run reports serialize — so a scrape and a report read the same
// numbers by construction.
func ExportStats(r *Registry, prefix string, src func() *probe.Section) {
	var holder atomic.Pointer[probe.Section]
	r.OnScrape(func() { holder.Store(src()) })

	reg := func(name, kind, help string, fn func(sec *probe.Section) []Sample) {
		r.Collect(prefix+name, kind, help, func() []Sample {
			sec := holder.Load()
			if sec == nil {
				return nil
			}
			return fn(sec)
		})
	}
	one := func(v float64) []Sample { return []Sample{{Value: v}} }

	reg("_instructions_total", "counter", "Committed instruction cycles.",
		func(sec *probe.Section) []Sample { return one(float64(sec.Instructions)) })
	reg("_instructions_by_kind_total", "counter", "Committed instruction cycles by ISA kind.",
		func(sec *probe.Section) []Sample {
			kinds := make([]string, 0, len(sec.ByKind))
			for k := range sec.ByKind {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			out := make([]Sample, 0, len(kinds))
			for _, k := range kinds {
				out = append(out, Sample{Labels: []Label{{"kind", k}}, Value: float64(sec.ByKind[k])})
			}
			return out
		})
	reg("_replays_total", "counter", "Instructions re-executed after a restart (the paper's at-most-one-per-outage replays).",
		func(sec *probe.Section) []Sample { return one(float64(sec.Replays)) })
	reg("_interrupts_total", "counter", "Pulses cut short by a power outage.",
		func(sec *probe.Section) []Sample { return one(float64(sec.Interrupts)) })
	reg("_outages_total", "counter", "Power outages (including each run's initial charge from empty).",
		func(sec *probe.Section) []Sample { return one(float64(sec.Outages)) })
	reg("_restores_total", "counter", "Completed restore phases.",
		func(sec *probe.Section) []Sample { return one(float64(sec.Restores)) })
	reg("_faults_injected_total", "counter", "Scheduled crash injections delivered by the fault engine.",
		func(sec *probe.Section) []Sample { return one(float64(sec.FaultsInjected)) })
	reg("_voltage_samples_total", "counter", "Decimated capacitor-voltage samples.",
		func(sec *probe.Section) []Sample { return one(float64(sec.VoltageSamples)) })

	reg("_energy_joules_total", "counter", "Energy by intermittent-protocol phase, in joules.",
		func(sec *probe.Section) []Sample {
			return []Sample{
				{Labels: []Label{{"phase", "backup"}}, Value: sec.Energy.Backup},
				{Labels: []Label{{"phase", "compute"}}, Value: sec.Energy.Compute},
				{Labels: []Label{{"phase", "lost"}}, Value: sec.Energy.Lost},
				{Labels: []Label{{"phase", "replay"}}, Value: sec.Energy.Replay},
				{Labels: []Label{{"phase", "restore"}}, Value: sec.Energy.Restore},
			}
		})
	reg("_busy_seconds_total", "counter", "Simulated seconds spent executing instructions.",
		func(sec *probe.Section) []Sample { return one(sec.BusySeconds) })
	reg("_outage_seconds_total", "counter", "Simulated seconds spent powered off.",
		func(sec *probe.Section) []Sample { return one(sec.OutageSeconds) })
	reg("_restore_seconds_total", "counter", "Simulated seconds spent in restore phases.",
		func(sec *probe.Section) []Sample { return one(sec.RestoreSeconds) })

	edges := probe.OutageHistEdges()
	reg("_outage_duration_seconds", "histogram", "Outage durations on probe's log10 buckets (probe buckets are lower-inclusive; le here is upper-inclusive, so boundary-exact durations shift one bucket).",
		func(sec *probe.Section) []Sample {
			counts := make([]uint64, len(edges)+1)
			for _, hb := range sec.OutageHist {
				idx := len(edges) // Hi == 0 marks the open-ended last bucket
				if hb.HiSeconds != 0 {
					for i, e := range edges {
						// Section computes HiSeconds with the same expression
						// as OutageHistEdges, so == is exact.
						if hb.HiSeconds == e {
							idx = i
							break
						}
					}
				}
				counts[idx] += hb.Count
			}
			return histogramSamples(edges, func(i int) uint64 { return counts[i] }, sec.OutageSeconds)
		})

	reg("_voltage_volts", "gauge", "Capacitor voltage extremes over the aggregated runs (absent until a voltage sample arrives).",
		func(sec *probe.Section) []Sample {
			if sec.VoltageSamples == 0 {
				return nil
			}
			return []Sample{
				{Labels: []Label{{"bound", "max"}}, Value: sec.VoltageMax},
				{Labels: []Label{{"bound", "min"}}, Value: sec.VoltageMin},
			}
		})

	reg("_tile_writes_total", "counter", "Datapath write operations per tile (wear accounting).",
		func(sec *probe.Section) []Sample {
			out := make([]Sample, 0, len(sec.TileWrites))
			for _, tw := range sec.TileWrites {
				out = append(out, Sample{Labels: []Label{{"tile", strconv.Itoa(tw.Tile)}}, Value: float64(tw.Writes)})
			}
			return out
		})
	reg("_tile_bits_total", "counter", "Cells written (or pulsed) per tile.",
		func(sec *probe.Section) []Sample {
			out := make([]Sample, 0, len(sec.TileWrites))
			for _, tw := range sec.TileWrites {
				out = append(out, Sample{Labels: []Label{{"tile", strconv.Itoa(tw.Tile)}}, Value: float64(tw.Bits)})
			}
			return out
		})
}
