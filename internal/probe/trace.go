package probe

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"mouse/internal/isa"
)

// Chrome trace_event track layout: one process ("mouse"), a machine
// thread for instruction/restore spans, a power thread for outage
// spans, and a "Vcap" counter track for the capacitor voltage.
const (
	tracePID       = 1
	machineTID     = 1
	powerTID       = 2
	interruptTID   = machineTID
	traceTimeScale = 1e6 // seconds -> trace microseconds
)

// TraceWriter streams a run's event stream as Chrome trace_event JSON
// (the format Perfetto and chrome://tracing load directly). It records
// a single run's timeline and is NOT safe for concurrent use — attach
// it to one runner, then Close.
//
// Adjacent retired instructions with identical labels are coalesced
// into one span carrying a count and summed energy, which keeps
// paper-scale runs (millions of cycles) tractable as trace files.
type TraceWriter struct {
	w     *bufio.Writer
	c     io.Closer
	err   error
	first bool

	// pending coalesced instruction span.
	open      bool
	name      string
	startT    float64
	endT      float64
	count     int
	energy    float64
	replays   int
	sawInstr  bool
	closeDone bool
}

var _ Observer = (*TraceWriter)(nil)

// NewTraceWriter starts a trace stream on w. If w is also an io.Closer
// it is closed by Close.
func NewTraceWriter(w io.Writer) *TraceWriter {
	tw := &TraceWriter{w: bufio.NewWriter(w), first: true}
	if c, ok := w.(io.Closer); ok {
		tw.c = c
	}
	tw.raw(`{"displayTimeUnit":"ms","traceEvents":[`)
	tw.meta("process_name", `"name":"mouse"`, 0)
	tw.meta("thread_name", `"name":"machine"`, machineTID)
	tw.meta("thread_name", `"name":"power"`, powerTID)
	return tw
}

func (tw *TraceWriter) raw(s string) {
	if tw.err != nil {
		return
	}
	_, tw.err = tw.w.WriteString(s)
}

// event emits one JSON object, handling the comma framing.
func (tw *TraceWriter) event(body string) {
	if tw.err != nil {
		return
	}
	if tw.first {
		tw.first = false
	} else {
		tw.raw(",")
	}
	tw.raw("\n")
	tw.raw(body)
}

func (tw *TraceWriter) meta(name, args string, tid int) {
	tw.event(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":%q,"args":{%s}}`,
		tracePID, tid, name, args))
}

// us formats a time or duration in trace microseconds with fixed
// precision so output is deterministic across platforms.
func us(seconds float64) string {
	return strconv.FormatFloat(seconds*traceTimeScale, 'f', 3, 64)
}

func jnum(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// span emits a complete ("X") event.
func (tw *TraceWriter) span(tid int, name string, start, dur float64, args string) {
	b := fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"name":%q,"ts":%s,"dur":%s`,
		tracePID, tid, name, us(start), us(dur))
	if args != "" {
		b += `,"args":{` + args + `}`
	}
	tw.event(b + "}")
}

// flushInstr closes the pending coalesced instruction span, if any.
func (tw *TraceWriter) flushInstr() {
	if !tw.open {
		return
	}
	tw.open = false
	args := fmt.Sprintf(`"count":%d,"energy_j":%s`, tw.count, jnum(tw.energy))
	if tw.replays > 0 {
		args += fmt.Sprintf(`,"replays":%d`, tw.replays)
	}
	tw.span(machineTID, tw.name, tw.startT, tw.endT-tw.startT, args)
}

func instrName(kind isa.Kind, ev Instr) string {
	if kind == isa.KindLogic {
		return ev.Gate.String()
	}
	return kind.String()
}

// InstrRetired implements Observer.
func (tw *TraceWriter) InstrRetired(ev Instr) {
	tw.sawInstr = true
	name := instrName(ev.Kind, ev)
	start := ev.T - ev.Dur
	const gapTol = 1e-12
	if tw.open && tw.name == name && start-tw.endT <= gapTol {
		tw.endT = ev.T
		tw.count++
		tw.energy += ev.Energy + ev.Backup
		if ev.Replay {
			tw.replays++
		}
		return
	}
	tw.flushInstr()
	tw.open = true
	tw.name = name
	tw.startT = start
	tw.endT = ev.T
	tw.count = 1
	tw.energy = ev.Energy + ev.Backup
	tw.replays = 0
	if ev.Replay {
		tw.replays = 1
	}
}

// PulseInterrupted implements Observer.
func (tw *TraceWriter) PulseInterrupted(ev Interrupt) {
	tw.flushInstr()
	tw.event(fmt.Sprintf(
		`{"ph":"i","pid":%d,"tid":%d,"name":"pulse interrupted","ts":%s,"s":"t","args":{"kind":%q,"frac":%s,"lost_j":%s}}`,
		tracePID, interruptTID, us(ev.T), ev.Kind.String(), jnum(ev.Frac), jnum(ev.Lost)))
}

// OutageBegin implements Observer. The outage span itself is emitted at
// OutageEnd, when the duration is known.
func (tw *TraceWriter) OutageBegin(float64) {
	tw.flushInstr()
}

// OutageEnd implements Observer.
func (tw *TraceWriter) OutageEnd(t, off float64) {
	name := "outage"
	if !tw.sawInstr {
		// The powered-off span before the first instruction is the
		// initial charge from an empty buffer, not a brown-out.
		name = "charge"
	}
	tw.span(powerTID, name, t-off, off, "")
}

// Restored implements Observer.
func (tw *TraceWriter) Restored(ev Restore) {
	tw.flushInstr()
	tw.span(machineTID, "restore", ev.T-ev.Dur, ev.Dur,
		fmt.Sprintf(`"cols":%d,"energy_j":%s`, ev.Cols, jnum(ev.Energy)))
}

// VoltageSample implements Observer.
func (tw *TraceWriter) VoltageSample(t, volts float64) {
	tw.event(fmt.Sprintf(
		`{"ph":"C","pid":%d,"name":"Vcap","ts":%s,"args":{"V":%s}}`,
		tracePID, us(t), jnum(volts)))
}

// TileWrite implements Observer. Per-cycle write traffic is far too
// fine-grained for a timeline; wear accounting belongs to Stats.
func (tw *TraceWriter) TileWrite(int, int) {}

// Close flushes the pending span, finalizes the JSON document, and
// returns the first error encountered while writing.
func (tw *TraceWriter) Close() error {
	if tw.closeDone {
		return tw.err
	}
	tw.closeDone = true
	tw.flushInstr()
	tw.raw("\n]}\n")
	if err := tw.w.Flush(); err != nil && tw.err == nil {
		tw.err = err
	}
	if tw.c != nil {
		if err := tw.c.Close(); err != nil && tw.err == nil {
			tw.err = err
		}
	}
	return tw.err
}
