package probe

import (
	"bytes"
	"math"
	"reflect"
	"sync"
	"testing"

	"mouse/internal/isa"
)

// events feeds s a deterministic stream with exactly-representable
// energies and durations (powers of two), so accumulation order cannot
// perturb the float totals and merged results compare exactly equal.
func events(s *Stats, seed int) {
	for i := 0; i < 50; i++ {
		s.InstrRetired(Instr{
			Dur: 0.25, Kind: isa.Kind(i % 3), Energy: 0.5, Backup: 0.125,
			Replay: i%10 == seed%10,
		})
		s.TileWrite(seed%7, 8)
	}
	s.PulseInterrupted(Interrupt{Lost: 0.0625})
	s.OutageBegin(1)
	s.OutageEnd(2, math.Pow(10, float64(seed%8-6))) // hits a different hist bucket per seed
	s.Restored(Restore{Dur: 0.5, Energy: 0.25, Cols: 4})
	s.VoltageSample(0, 0.25+float64(seed%4)*0.125)
	s.FaultInjected(Fault{})
}

// TestMergeEqualsSharedAccumulation proves the aggregation contract:
// feeding N shards and merging them into a fresh Stats yields the same
// Section as feeding one shared Stats the same events.
func TestMergeEqualsSharedAccumulation(t *testing.T) {
	shared := &Stats{}
	shards := make([]*Stats, 4)
	for i := range shards {
		shards[i] = &Stats{}
		events(shards[i], i)
		events(shared, i)
	}
	merged := &Stats{}
	for _, sh := range shards {
		merged.Merge(sh)
	}
	got, want := merged.Section(), shared.Section()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged section differs from shared accumulation:\n got %+v\nwant %+v", got, want)
	}
}

func TestMergeSelfAndNilAreNoOps(t *testing.T) {
	s := &Stats{}
	events(s, 0)
	before := s.Section()
	s.Merge(nil)
	s.Merge(s)
	if !reflect.DeepEqual(s.Section(), before) {
		t.Errorf("Merge(nil)/Merge(self) changed the stats")
	}
}

// TestMergeSeedsVoltageMinMax checks that merging voltage data into a
// Stats that never saw a VoltageSample seeds min/max instead of pinning
// the minimum at the zero value.
func TestMergeSeedsVoltageMinMax(t *testing.T) {
	src := &Stats{}
	src.VoltageSample(0, 0.8)
	src.VoltageSample(1, 0.3)
	dst := &Stats{}
	dst.Merge(src)
	sec := dst.Section()
	if sec.VoltageMin != 0.3 || sec.VoltageMax != 0.8 {
		t.Errorf("voltage range [%g, %g], want [0.3, 0.8]", sec.VoltageMin, sec.VoltageMax)
	}
	// A second merge must narrow/widen via Min/Max, not re-seed.
	src2 := &Stats{}
	src2.VoltageSample(0, 0.1)
	dst.Merge(src2)
	if sec := dst.Section(); sec.VoltageMin != 0.1 || sec.VoltageMax != 0.8 {
		t.Errorf("after second merge range [%g, %g], want [0.1, 0.8]", sec.VoltageMin, sec.VoltageMax)
	}
}

// TestMergeConcurrentWithWriters folds live shards into an aggregate
// while their emitters are still running; under -race this pins the
// lock-freedom of Merge, and the final totals must still be exact.
func TestMergeConcurrentWithWriters(t *testing.T) {
	const workers = 4
	const perWorker = 500
	shards := make([]*Stats, workers)
	for i := range shards {
		shards[i] = &Stats{}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader: merge mid-flight snapshots
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				view := &Stats{}
				for _, sh := range shards {
					view.Merge(sh)
				}
				_ = view.Section()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				shards[w].InstrRetired(Instr{Dur: 1, Kind: isa.KindLogic, Energy: 1})
				shards[w].OutageBegin(0)
				shards[w].OutageEnd(1, 1e-3)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	final := &Stats{}
	for _, sh := range shards {
		final.Merge(sh)
	}
	sec := final.Section()
	if sec.Instructions != workers*perWorker {
		t.Errorf("instructions %d, want %d", sec.Instructions, workers*perWorker)
	}
	if sec.Outages != workers*perWorker {
		t.Errorf("outages %d, want %d", sec.Outages, workers*perWorker)
	}
}

// TestAtomicFloatMinMaxConcurrent hammers one atomicFloat pair with
// Min/Max from many goroutines; the CAS loops must converge on the
// exact extremes regardless of interleaving.
func TestAtomicFloatMinMaxConcurrent(t *testing.T) {
	var lo, hi atomicFloat
	lo.bits.Store(math.Float64bits(math.Inf(1)))
	hi.bits.Store(math.Float64bits(math.Inf(-1)))
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v := float64((w*perWorker+i)%1009) / 1009
				lo.Min(v)
				hi.Max(v)
			}
		}(w)
	}
	wg.Wait()
	if got := lo.Load(); got != 0 {
		t.Errorf("min %g, want 0", got)
	}
	want := float64(1008) / 1009
	if got := hi.Load(); got != want {
		t.Errorf("max %g, want %g", got, want)
	}
}

// TestOutageHistogramConcurrent drives the log10 histogram from
// concurrent writers, each goroutine targeting every bucket, and
// requires exact per-bucket counts.
func TestOutageHistogramConcurrent(t *testing.T) {
	s := &Stats{}
	const workers = 8
	const perBucket = 200
	durations := []float64{
		1e-7, // below the floor: bucket 0
		2e-6, 3e-5, 4e-4, 5e-3, 6e-2, 0.7, 8, 90,
		1e3, // at or above the last edge: bucket 9
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perBucket; i++ {
				for _, d := range durations {
					s.OutageBegin(0)
					s.OutageEnd(1, d)
				}
			}
		}()
	}
	wg.Wait()
	sec := s.Section()
	if len(sec.OutageHist) != len(durations) {
		t.Fatalf("%d non-empty buckets, want %d: %+v", len(sec.OutageHist), len(durations), sec.OutageHist)
	}
	for i, hb := range sec.OutageHist {
		if hb.Count != workers*perBucket {
			t.Errorf("bucket %d count %d, want %d", i, hb.Count, workers*perBucket)
		}
	}
}

func TestOutageHistEdges(t *testing.T) {
	edges := OutageHistEdges()
	if len(edges) != histBuckets-1 {
		t.Fatalf("%d edges, want %d", len(edges), histBuckets-1)
	}
	if edges[0] != histFloor || edges[len(edges)-1] != 100 {
		t.Errorf("edge range [%g, %g], want [%g, 100]", edges[0], edges[len(edges)-1], histFloor)
	}
	// The edges must compare exactly equal to Section's bucket bounds.
	s := &Stats{}
	for _, e := range edges {
		s.OutageBegin(0)
		s.OutageEnd(1, e)
	}
	for i, hb := range s.Section().OutageHist {
		if hb.LoSeconds != edges[i] {
			t.Errorf("bucket %d lo %g != edge %g", i, hb.LoSeconds, edges[i])
		}
	}
}

// TestWriteSummaryGolden pins the exact summary bytes for a fully
// populated section; the substring checks elsewhere would miss
// formatting drift that breaks downstream scrapers of mousetrace and
// mousebench -telemetry output.
func TestWriteSummaryGolden(t *testing.T) {
	s := &Stats{}
	s.InstrRetired(Instr{Dur: 0.5, Kind: isa.KindLogic, Energy: 0.25, Backup: 0.125})
	s.InstrRetired(Instr{Dur: 0.5, Kind: isa.KindLogic, Energy: 0.25, Replay: true})
	s.PulseInterrupted(Interrupt{Lost: 0.0625})
	s.OutageBegin(1)
	s.OutageEnd(2, 1)
	s.Restored(Restore{Dur: 0.5, Energy: 0.125, Cols: 2})
	s.VoltageSample(0, 0.25)
	s.VoltageSample(1, 0.75)
	s.TileWrite(0, 8)
	s.TileWrite(3, 4)
	var buf bytes.Buffer
	if err := s.Section().WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	want := "instructions  2 (1 replayed)\n" +
		"outages       1 (1 s powered off)\n" +
		"restores      1 (0.5 s, 0.125 J)\n" +
		"interrupts    1 (0.0625 J lost)\n" +
		"energy        compute 0.5 J, backup 0.125 J, restore 0.125 J, dead 0.3125 J\n" +
		"capacitor     0.25 V .. 0.75 V (2 samples)\n" +
		"tile writes   2 across 2 tiles\n"
	if got := buf.String(); got != want {
		t.Errorf("summary drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
