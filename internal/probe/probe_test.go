package probe

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"mouse/internal/isa"
	"mouse/internal/mtj"
)

func TestEnabled(t *testing.T) {
	if Enabled(nil) {
		t.Errorf("nil observer enabled")
	}
	if Enabled(Nop{}) {
		t.Errorf("Nop observer enabled")
	}
	if !Enabled(&Stats{}) {
		t.Errorf("Stats observer not enabled")
	}
	if !Enabled(Multi{Nop{}}) {
		t.Errorf("Multi observer not enabled")
	}
}

func TestFirst(t *testing.T) {
	if _, ok := First(nil).(Nop); !ok {
		t.Errorf("First(nil) is not Nop")
	}
	if _, ok := First([]Observer{nil}).(Nop); !ok {
		t.Errorf("First([nil]) is not Nop")
	}
	s := &Stats{}
	if got := First([]Observer{nil, s}); got != Observer(s) {
		t.Errorf("First skipped past the first non-nil observer")
	}
}

func TestStatsCounters(t *testing.T) {
	s := &Stats{}
	s.InstrRetired(Instr{T: 1, Dur: 0.5, Kind: isa.KindLogic, Gate: mtj.NAND2, Energy: 3, Backup: 1})
	s.InstrRetired(Instr{T: 2, Dur: 0.25, Kind: isa.KindRead, Energy: 2, Backup: 0.5, Replay: true})
	s.PulseInterrupted(Interrupt{T: 1.5, Frac: 0.5, Kind: isa.KindLogic, Lost: 0.125})
	s.OutageBegin(1.5)
	s.OutageEnd(2.5, 1.0)
	s.Restored(Restore{T: 2.6, Dur: 0.1, Cols: 8, Energy: 0.0625})
	s.VoltageSample(0, 0.33)
	s.VoltageSample(1, 0.32)
	s.VoltageSample(2, 0.34)
	s.TileWrite(0, 8)
	s.TileWrite(0, 4)
	s.TileWrite(3, 2)
	s.TileWrite(-1, 99) // trace-layer sentinel: no tile addressing
	s.TileWrite(maxTrackedTiles+10, 1)

	sec := s.Section()
	if sec.Instructions != 2 || sec.Replays != 1 || sec.Interrupts != 1 ||
		sec.Outages != 1 || sec.Restores != 1 {
		t.Fatalf("counters: %+v", sec)
	}
	if sec.ByKind["logic"] != 1 || sec.ByKind["read"] != 1 {
		t.Errorf("by-kind map: %v", sec.ByKind)
	}
	if sec.Energy.Compute != 5 || sec.Energy.Backup != 1.5 ||
		sec.Energy.Restore != 0.0625 || sec.Energy.Lost != 0.125 ||
		sec.Energy.Replay != 2.5 {
		t.Errorf("energy: %+v", sec.Energy)
	}
	if sec.BusySeconds != 0.75 || sec.OutageSeconds != 1.0 || sec.RestoreSeconds != 0.1 {
		t.Errorf("latency: busy %g outage %g restore %g",
			sec.BusySeconds, sec.OutageSeconds, sec.RestoreSeconds)
	}
	if sec.VoltageSamples != 3 || sec.VoltageMin != 0.32 || sec.VoltageMax != 0.34 {
		t.Errorf("voltage: %d samples, [%g, %g]",
			sec.VoltageSamples, sec.VoltageMin, sec.VoltageMax)
	}
	// Negative tiles dropped, overflow folded into the last slot.
	want := []TileWrites{
		{Tile: 0, Writes: 2, Bits: 12},
		{Tile: 3, Writes: 1, Bits: 2},
		{Tile: maxTrackedTiles - 1, Writes: 1, Bits: 1},
	}
	if len(sec.TileWrites) != len(want) {
		t.Fatalf("tile writes: %+v", sec.TileWrites)
	}
	for i, w := range want {
		if sec.TileWrites[i] != w {
			t.Errorf("tile write %d: got %+v, want %+v", i, sec.TileWrites[i], w)
		}
	}
}

func TestStatsOutageHistogram(t *testing.T) {
	s := &Stats{}
	for _, off := range []float64{1e-9, 0.5e-6, 2e-6, 5e-3, 5e-3, 7.0, 1e6} {
		s.OutageBegin(0)
		s.OutageEnd(off, off)
	}
	sec := s.Section()
	var total uint64
	for i, hb := range sec.OutageHist {
		total += hb.Count
		if hb.Count == 0 {
			t.Errorf("bucket %d present but empty", i)
		}
		if i == 0 && hb.LoSeconds != 0 {
			t.Errorf("first bucket floor %g, want 0", hb.LoSeconds)
		}
	}
	if total != sec.Outages {
		t.Errorf("histogram total %d != outages %d", total, sec.Outages)
	}
	// The sub-µs outages share the first bucket; the repeated 5 ms
	// outages share one bucket with count 2.
	if sec.OutageHist[0].Count != 2 {
		t.Errorf("sub-µs bucket count %d, want 2", sec.OutageHist[0].Count)
	}
	found := false
	for _, hb := range sec.OutageHist {
		if hb.Count == 2 && hb.LoSeconds == 1e-3 {
			found = true
		}
	}
	if !found {
		t.Errorf("5 ms outages not bucketed at lo=1e-3: %+v", sec.OutageHist)
	}
	// The absurd 1e6 s outage lands in the open-ended last bucket.
	last := sec.OutageHist[len(sec.OutageHist)-1]
	if last.HiSeconds != 0 {
		t.Errorf("last bucket has a ceiling %g, want open-ended", last.HiSeconds)
	}
}

func TestBucketFor(t *testing.T) {
	cases := []struct {
		off  float64
		want int
	}{
		{0, 0}, {1e-9, 0}, {0.99e-6, 0}, {1e-6, 1}, {9e-6, 1},
		{1e-5, 2}, {1e-3, 4}, {1, 7}, {99, 8}, {1e3, 9}, {1e9, 9},
	}
	for _, c := range cases {
		if got := bucketFor(c.off); got != c.want {
			t.Errorf("bucketFor(%g) = %d, want %d", c.off, got, c.want)
		}
	}
}

// TestStatsConcurrent hammers one Stats from several goroutines under
// the race detector; the totals must come out exact (counters are
// atomic adds, not samples).
func TestStatsConcurrent(t *testing.T) {
	s := &Stats{}
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.InstrRetired(Instr{Dur: 1, Kind: isa.KindLogic, Energy: 1})
				s.VoltageSample(float64(i), 0.3+float64(w)*0.001)
				s.TileWrite(w, 1)
			}
		}(w)
	}
	wg.Wait()
	sec := s.Section()
	if sec.Instructions != workers*perWorker {
		t.Errorf("instructions %d, want %d", sec.Instructions, workers*perWorker)
	}
	if math.Abs(sec.Energy.Compute-workers*perWorker) > 1e-6 {
		t.Errorf("compute energy %g, want %d", sec.Energy.Compute, workers*perWorker)
	}
	var writes uint64
	for _, tw := range sec.TileWrites {
		writes += tw.Writes
	}
	if writes != workers*perWorker {
		t.Errorf("tile writes %d, want %d", writes, workers*perWorker)
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := &Stats{}, &Stats{}
	m := Multi{a, b}
	m.InstrRetired(Instr{Dur: 1, Kind: isa.KindPreset, Energy: 2})
	m.PulseInterrupted(Interrupt{Lost: 1})
	m.OutageBegin(0)
	m.OutageEnd(1, 1)
	m.Restored(Restore{Dur: 0.5, Energy: 0.25})
	m.VoltageSample(0, 0.3)
	m.TileWrite(0, 4)
	for i, s := range []*Stats{a, b} {
		sec := s.Section()
		if sec.Instructions != 1 || sec.Interrupts != 1 || sec.Outages != 1 ||
			sec.Restores != 1 || sec.VoltageSamples != 1 || len(sec.TileWrites) != 1 {
			t.Errorf("observer %d missed events: %+v", i, sec)
		}
	}
}

func TestSectionJSONRoundTrip(t *testing.T) {
	s := &Stats{}
	s.InstrRetired(Instr{T: 1, Dur: 1, Kind: isa.KindLogic, Gate: mtj.MAJ3, Energy: 1e-9, Backup: 1e-10})
	s.OutageBegin(1)
	s.OutageEnd(2, 1)
	data, err := json.Marshal(s.Section())
	if err != nil {
		t.Fatal(err)
	}
	var back Section
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Instructions != 1 || back.Outages != 1 || back.Energy.Compute != 1e-9 {
		t.Errorf("round trip lost data: %+v", back)
	}
	for _, key := range []string{"instructions", "energy", "compute_j", "outage_hist"} {
		if !bytes.Contains(data, []byte(`"`+key+`"`)) {
			t.Errorf("serialized section missing %q: %s", key, data)
		}
	}
}

func TestWriteSummary(t *testing.T) {
	s := &Stats{}
	s.InstrRetired(Instr{T: 1, Dur: 1, Kind: isa.KindLogic, Gate: mtj.NAND2, Energy: 1e-9})
	s.VoltageSample(0, 0.33)
	s.TileWrite(0, 8)
	var buf bytes.Buffer
	if err := s.Section().WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"instructions", "outages", "energy", "capacitor", "tile writes"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// traceDoc is the envelope of a Chrome trace_event JSON document.
type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Name string         `json:"name"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

func TestTraceWriterProducesValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	// Initial charge, three coalescible NAND cycles, an interrupt, an
	// outage, a restore, a replayed cycle, and a voltage sample.
	tw.OutageBegin(0)
	tw.OutageEnd(1, 1)
	tw.VoltageSample(1, 0.34)
	tw.InstrRetired(Instr{T: 1.1, Dur: 0.1, Kind: isa.KindLogic, Gate: mtj.NAND2, Energy: 1e-9})
	tw.InstrRetired(Instr{T: 1.2, Dur: 0.1, Kind: isa.KindLogic, Gate: mtj.NAND2, Energy: 1e-9})
	tw.InstrRetired(Instr{T: 1.3, Dur: 0.1, Kind: isa.KindLogic, Gate: mtj.NAND2, Energy: 1e-9})
	tw.PulseInterrupted(Interrupt{T: 1.35, Frac: 0.5, Kind: isa.KindLogic, Lost: 5e-10})
	tw.OutageBegin(1.35)
	tw.OutageEnd(2.35, 1)
	tw.Restored(Restore{T: 2.4, Dur: 0.05, Cols: 8, Energy: 1e-10})
	tw.InstrRetired(Instr{T: 2.5, Dur: 0.1, Kind: isa.KindLogic, Gate: mtj.NAND2, Energy: 1e-9, Replay: true})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	byName := map[string][]traceEvent{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name] = append(byName[ev.Name], ev)
	}
	// The three adjacent NAND cycles coalesce into one span; the replay
	// after the outage is a separate span flushed by the outage events.
	nands := byName[mtj.NAND2.String()]
	if len(nands) != 2 {
		t.Fatalf("NAND spans: %d, want 2 (coalesced + replay)", len(nands))
	}
	if c, ok := nands[0].Args["count"].(float64); !ok || c != 3 {
		t.Errorf("coalesced count %v, want 3", nands[0].Args["count"])
	}
	if r, ok := nands[1].Args["replays"].(float64); !ok || r != 1 {
		t.Errorf("replay span args %v, want replays=1", nands[1].Args)
	}
	// The pre-instruction powered-off span is "charge"; the later one is
	// "outage", on the power thread.
	if len(byName["charge"]) != 1 || len(byName["outage"]) != 1 {
		t.Fatalf("power spans: charge %d, outage %d", len(byName["charge"]), len(byName["outage"]))
	}
	if byName["outage"][0].TID != powerTID {
		t.Errorf("outage on tid %d, want %d", byName["outage"][0].TID, powerTID)
	}
	if len(byName["restore"]) != 1 || len(byName["pulse interrupted"]) != 1 || len(byName["Vcap"]) != 1 {
		t.Errorf("missing spans: %v", byName)
	}
	for _, ev := range doc.TraceEvents {
		if ev.PID != tracePID {
			t.Errorf("event %q on pid %d", ev.Name, ev.PID)
		}
		if ev.Ph == "X" && ev.Dur < 0 {
			t.Errorf("span %q has negative duration %g", ev.Name, ev.Dur)
		}
	}
}

func TestTraceWriterSplitsNonAdjacentSpans(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.InstrRetired(Instr{T: 1.0, Dur: 0.1, Kind: isa.KindRead, Energy: 1e-9})
	// Same label but a time gap: must not coalesce.
	tw.InstrRetired(Instr{T: 3.0, Dur: 0.1, Kind: isa.KindRead, Energy: 1e-9})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	reads := 0
	for _, ev := range doc.TraceEvents {
		if ev.Name == isa.KindRead.String() {
			reads++
		}
	}
	if reads != 2 {
		t.Errorf("read spans %d, want 2 (gap must split the span)", reads)
	}
}
