package probe

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"

	"mouse/internal/isa"
)

// maxKinds bounds the per-kind counter arrays; the ISA has five kinds
// and the array is sized with headroom so a new opcode cannot index out
// of range.
const maxKinds = 8

// maxTrackedTiles bounds the per-tile write table. MOUSE machines in
// this repo top out at a few hundred tiles; writes to tiles beyond the
// table are folded into the last slot so the counters never allocate.
const maxTrackedTiles = 1024

// histBuckets is the number of log10 outage-duration buckets, spanning
// <1µs up to >=100s.
const histBuckets = 10

// histFloor is the lower edge of the first bucket in seconds (1µs).
const histFloor = 1e-6

// atomicFloat is a float64 accumulated with a compare-and-swap loop so
// Stats stays lock-free under the sweep engine's worker pool.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Max raises the stored value to v if v is larger.
func (f *atomicFloat) Max(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Min lowers the stored value to v if v is smaller.
func (f *atomicFloat) Min(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Stats is a lock-free aggregating observer: counters and histograms
// only, safe to share across the sweep engine's concurrent jobs. Zero
// value is ready to use.
type Stats struct {
	instructions atomic.Uint64
	replays      atomic.Uint64
	interrupts   atomic.Uint64
	outages      atomic.Uint64
	restores     atomic.Uint64
	voltSamples  atomic.Uint64
	faults       atomic.Uint64

	byKind [maxKinds]atomic.Uint64

	computeEnergy atomicFloat
	backupEnergy  atomicFloat
	restoreEnergy atomicFloat
	lostEnergy    atomicFloat
	replayEnergy  atomicFloat
	outageSecs    atomicFloat
	busySecs      atomicFloat
	restoreSecs   atomicFloat

	outageHist [histBuckets]atomic.Uint64

	voltMin atomicFloat
	voltMax atomicFloat

	tileWrites [maxTrackedTiles]atomic.Uint64
	tileBits   [maxTrackedTiles]atomic.Uint64

	voltInit atomic.Bool
}

var _ Observer = (*Stats)(nil)

// InstrRetired implements Observer.
func (s *Stats) InstrRetired(ev Instr) {
	s.instructions.Add(1)
	k := int(ev.Kind)
	if k < 0 || k >= maxKinds {
		k = maxKinds - 1
	}
	s.byKind[k].Add(1)
	s.computeEnergy.Add(ev.Energy)
	s.backupEnergy.Add(ev.Backup)
	s.busySecs.Add(ev.Dur)
	if ev.Replay {
		s.replays.Add(1)
		s.replayEnergy.Add(ev.Energy + ev.Backup)
	}
}

// PulseInterrupted implements Observer.
func (s *Stats) PulseInterrupted(ev Interrupt) {
	s.interrupts.Add(1)
	s.lostEnergy.Add(ev.Lost)
}

// OutageBegin implements Observer.
func (s *Stats) OutageBegin(float64) { s.outages.Add(1) }

// OutageEnd implements Observer.
func (s *Stats) OutageEnd(_, off float64) {
	s.outageSecs.Add(off)
	s.outageHist[bucketFor(off)].Add(1)
}

// Restored implements Observer.
func (s *Stats) Restored(ev Restore) {
	s.restores.Add(1)
	s.restoreEnergy.Add(ev.Energy)
	s.restoreSecs.Add(ev.Dur)
}

// VoltageSample implements Observer.
func (s *Stats) VoltageSample(_, volts float64) {
	s.voltSamples.Add(1)
	if s.voltInit.CompareAndSwap(false, true) {
		// First sample seeds min/max (the zero value would pin the
		// minimum at 0 V otherwise). A sample racing the seed can read
		// the unseeded zero — stats from concurrent sweeps are
		// approximate by contract, single-run traces are sequential.
		s.voltMin.bits.Store(math.Float64bits(volts))
		s.voltMax.bits.Store(math.Float64bits(volts))
		return
	}
	s.voltMin.Min(volts)
	s.voltMax.Max(volts)
}

// FaultInjected implements FaultObserver.
func (s *Stats) FaultInjected(Fault) { s.faults.Add(1) }

// TileWrite implements Observer.
func (s *Stats) TileWrite(tile, bits int) {
	if tile < 0 {
		return
	}
	if tile >= maxTrackedTiles {
		tile = maxTrackedTiles - 1
	}
	s.tileWrites[tile].Add(1)
	s.tileBits[tile].Add(uint64(bits))
}

func bucketFor(off float64) int {
	if off < histFloor {
		return 0
	}
	b := 1 + int(math.Floor(math.Log10(off/histFloor)))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// HistBucket is one non-empty log10 bucket of the outage-duration
// histogram. Hi is +Inf-free: the last bucket reports Hi as 0 meaning
// "and above".
type HistBucket struct {
	LoSeconds float64 `json:"lo_seconds"`
	HiSeconds float64 `json:"hi_seconds,omitempty"`
	Count     uint64  `json:"count"`
}

// PhaseEnergy is the run's energy split by protocol phase, in joules.
type PhaseEnergy struct {
	Compute float64 `json:"compute_j"`
	Backup  float64 `json:"backup_j"`
	Restore float64 `json:"restore_j"`
	Lost    float64 `json:"lost_j"`
	Replay  float64 `json:"replay_j"`
}

// TileWrites is the wear counter for one tile.
type TileWrites struct {
	Tile   int    `json:"tile"`
	Writes uint64 `json:"writes"`
	Bits   uint64 `json:"bits"`
}

// Section is the JSON-serializable snapshot of a Stats observer; it is
// embedded into mouse-bench/v1 reports as the optional "telemetry"
// section.
type Section struct {
	Instructions   uint64            `json:"instructions"`
	Replays        uint64            `json:"replays"`
	Interrupts     uint64            `json:"interrupts"`
	Outages        uint64            `json:"outages"`
	Restores       uint64            `json:"restores"`
	FaultsInjected uint64            `json:"faults_injected,omitempty"`
	ByKind         map[string]uint64 `json:"instructions_by_kind,omitempty"`
	Energy         PhaseEnergy       `json:"energy"`
	BusySeconds    float64           `json:"busy_seconds"`
	OutageSeconds  float64           `json:"outage_seconds"`
	RestoreSeconds float64           `json:"restore_seconds"`
	OutageHist     []HistBucket      `json:"outage_hist,omitempty"`
	VoltageSamples uint64            `json:"voltage_samples,omitempty"`
	VoltageMin     float64           `json:"voltage_min,omitempty"`
	VoltageMax     float64           `json:"voltage_max,omitempty"`
	TileWrites     []TileWrites      `json:"tile_writes,omitempty"`
}

// Section snapshots the counters. Concurrent emitters may still be
// running; the snapshot is then merely approximate, which is fine for
// reporting.
func (s *Stats) Section() *Section {
	sec := &Section{
		Instructions:   s.instructions.Load(),
		Replays:        s.replays.Load(),
		Interrupts:     s.interrupts.Load(),
		Outages:        s.outages.Load(),
		Restores:       s.restores.Load(),
		FaultsInjected: s.faults.Load(),
		Energy: PhaseEnergy{
			Compute: s.computeEnergy.Load(),
			Backup:  s.backupEnergy.Load(),
			Restore: s.restoreEnergy.Load(),
			Lost:    s.lostEnergy.Load(),
			Replay:  s.replayEnergy.Load(),
		},
		BusySeconds:    s.busySecs.Load(),
		OutageSeconds:  s.outageSecs.Load(),
		RestoreSeconds: s.restoreSecs.Load(),
		VoltageSamples: s.voltSamples.Load(),
	}
	for k := 0; k < maxKinds; k++ {
		if n := s.byKind[k].Load(); n > 0 {
			if sec.ByKind == nil {
				sec.ByKind = map[string]uint64{}
			}
			sec.ByKind[isa.Kind(k).String()] = n
		}
	}
	for b := 0; b < histBuckets; b++ {
		n := s.outageHist[b].Load()
		if n == 0 {
			continue
		}
		hb := HistBucket{Count: n}
		if b > 0 {
			hb.LoSeconds = histFloor * math.Pow(10, float64(b-1))
		}
		if b < histBuckets-1 {
			hb.HiSeconds = histFloor * math.Pow(10, float64(b))
		}
		sec.OutageHist = append(sec.OutageHist, hb)
	}
	if sec.VoltageSamples > 0 {
		sec.VoltageMin = s.voltMin.Load()
		sec.VoltageMax = s.voltMax.Load()
	}
	for t := 0; t < maxTrackedTiles; t++ {
		if w := s.tileWrites[t].Load(); w > 0 {
			sec.TileWrites = append(sec.TileWrites, TileWrites{
				Tile: t, Writes: w, Bits: s.tileBits[t].Load(),
			})
		}
	}
	sort.Slice(sec.TileWrites, func(i, j int) bool {
		return sec.TileWrites[i].Tile < sec.TileWrites[j].Tile
	})
	return sec
}

// WriteSummary prints a human-readable digest of the section.
func (sec *Section) WriteSummary(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"instructions  %d (%d replayed)\noutages       %d (%.6g s powered off)\nrestores      %d (%.6g s, %.4g J)\ninterrupts    %d (%.4g J lost)\n",
		sec.Instructions, sec.Replays,
		sec.Outages, sec.OutageSeconds,
		sec.Restores, sec.RestoreSeconds, sec.Energy.Restore,
		sec.Interrupts, sec.Energy.Lost); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"energy        compute %.4g J, backup %.4g J, restore %.4g J, dead %.4g J\n",
		sec.Energy.Compute, sec.Energy.Backup, sec.Energy.Restore,
		sec.Energy.Lost+sec.Energy.Replay); err != nil {
		return err
	}
	if sec.VoltageSamples > 0 {
		if _, err := fmt.Fprintf(w, "capacitor     %.4g V .. %.4g V (%d samples)\n",
			sec.VoltageMin, sec.VoltageMax, sec.VoltageSamples); err != nil {
			return err
		}
	}
	if n := len(sec.TileWrites); n > 0 {
		var writes uint64
		for _, tw := range sec.TileWrites {
			writes += tw.Writes
		}
		if _, err := fmt.Fprintf(w, "tile writes   %d across %d tiles\n", writes, n); err != nil {
			return err
		}
	}
	return nil
}
