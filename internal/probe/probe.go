// Package probe is MOUSE's observability layer: a pluggable event
// interface the simulators emit into, turning a run's internal dynamics
// — instruction retirement, outages, replays, restore phases, capacitor
// voltage, and per-tile write traffic — into data instead of printf.
//
// The paper's core claims are temporal (at most one re-executed
// instruction per outage, an energy mix that shifts between compute,
// restore, and idle as harvested power varies), so the event model is
// designed around the intermittent-execution protocol: every committed
// instruction is one InstrRetired event carrying its energy and whether
// it was a post-restart replay; every brown-out is a PulseInterrupted
// followed by an OutageBegin/OutageEnd pair and a Restored event once
// the column latches are re-driven.
//
// Both execution engines honor the same event contract: the packed
// word-parallel fast path and the scalar interrupted-pulse path emit
// identical event streams for identical runs, and observers must never
// perturb simulation state — differential tests run workloads with and
// without observers attached and require byte-identical outcomes.
//
// The default observer is Nop, and runners gate every emission on
// Enabled, so an unobserved (or Nop-observed) run pays one branch per
// instruction and zero allocations — verified by benchmark.
package probe

import (
	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// Instr describes one committed instruction cycle.
type Instr struct {
	// T is the simulation time at commit (seconds, end of the cycle).
	T float64
	// Dur is the cycle duration in seconds.
	Dur float64
	// Kind is the instruction kind; Gate applies to logic instructions.
	Kind isa.Kind
	Gate mtj.GateKind
	// Tile is the addressed tile, or -1 for broadcast operations and
	// trace-layer streams (which carry no tile addressing).
	Tile int
	// Energy is the instruction's compute energy and Backup its
	// checkpoint energy, in joules.
	Energy float64
	Backup float64
	// Replay marks the re-execution of an interrupted instruction after
	// a restart (accounted as Dead work).
	Replay bool
}

// Interrupt describes a power outage cutting an instruction short.
type Interrupt struct {
	// T is the moment the buffer hit the shutdown voltage.
	T float64
	// Frac is the fraction of the cycle that completed before power died.
	Frac float64
	// Kind is the interrupted instruction's kind.
	Kind isa.Kind
	// Lost is the partial energy spent on the doomed attempt (joules,
	// accounted as Dead).
	Lost float64
}

// Restore describes one completed restore phase (re-issuing the stored
// Activate Columns instruction after a restart).
type Restore struct {
	// T is the completion time; Dur the powered restore latency it took
	// (including any retries after mid-restore outages).
	T   float64
	Dur float64
	// Cols is the number of columns re-latched.
	Cols int
	// Energy is the restore energy in joules.
	Energy float64
}

// Fault describes one scheduled crash injection. It is emitted by the
// fault-injection engine (not by runners) just before the injected run
// starts, so a shared observer can correlate the outage events that
// follow with the schedule that caused them.
type Fault struct {
	// Index and Frac are the scheduled crash point: the µ-phase fraction
	// of the Index-th committed instruction.
	Index int
	Frac  float64
	// WindowJ is the pre-charged energy window realizing the crash.
	WindowJ float64
}

// FaultObserver is the optional extension an Observer implements to
// receive fault-injection schedule events. It is separate from Observer
// so existing implementations keep compiling; EmitFault delivers to
// observers that opt in.
type FaultObserver interface {
	FaultInjected(ev Fault)
}

// EmitFault delivers ev to obs when it implements FaultObserver (Multi
// fans out to every member that does); otherwise it is a no-op.
func EmitFault(obs Observer, ev Fault) {
	if f, ok := obs.(FaultObserver); ok {
		f.FaultInjected(ev)
	}
}

// Observer receives the typed event stream of a simulation run.
//
// Implementations must not assume any particular goroutine: the sweep
// engine shares one observer across concurrent jobs, so observers
// attached to sweeps must be safe for concurrent use (Stats is;
// TraceWriter deliberately is not — it records a single run's timeline).
type Observer interface {
	// InstrRetired is called once per committed instruction cycle.
	InstrRetired(ev Instr)
	// PulseInterrupted is called when an outage cuts a cycle at ev.Frac.
	PulseInterrupted(ev Interrupt)
	// OutageBegin marks the machine powering down at time t; OutageEnd
	// marks the buffer recharged to V_on at time t after off seconds
	// powered down. The initial charge from an empty buffer is reported
	// through the same pair (it is the run's first powered-off span).
	OutageBegin(t float64)
	OutageEnd(t, off float64)
	// Restored is called after each restore phase completes.
	Restored(ev Restore)
	// VoltageSample reports the capacitor voltage, decimated by the
	// harvester's sampling interval.
	VoltageSample(t, volts float64)
	// TileWrite reports bits cells written (or pulsed) in one tile by a
	// datapath operation — the wear-accounting feed.
	TileWrite(tile, bits int)
}

// Nop is the zero-cost default observer. Runners special-case it (via
// Enabled) so an unobserved run skips event construction entirely.
type Nop struct{}

// InstrRetired implements Observer.
func (Nop) InstrRetired(Instr) {}

// PulseInterrupted implements Observer.
func (Nop) PulseInterrupted(Interrupt) {}

// OutageBegin implements Observer.
func (Nop) OutageBegin(float64) {}

// OutageEnd implements Observer.
func (Nop) OutageEnd(float64, float64) {}

// Restored implements Observer.
func (Nop) Restored(Restore) {}

// VoltageSample implements Observer.
func (Nop) VoltageSample(float64, float64) {}

// TileWrite implements Observer.
func (Nop) TileWrite(int, int) {}

// Enabled reports whether obs is a real observer — non-nil and not the
// no-op default. Runners evaluate it once per run and gate every
// emission on the result, which is what makes the Nop default free.
func Enabled(obs Observer) bool {
	if obs == nil {
		return false
	}
	_, nop := obs.(Nop)
	return !nop
}

// First returns the single observer of a variadic option list, or Nop
// when none was passed. It keeps observer parameters source-compatible
// with pre-telemetry call sites.
func First(obs []Observer) Observer {
	for _, o := range obs {
		if o != nil {
			return o
		}
	}
	return Nop{}
}

// Multi fans every event out to several observers — e.g. Stats plus a
// TraceWriter on the same run.
type Multi []Observer

// InstrRetired implements Observer.
func (m Multi) InstrRetired(ev Instr) {
	for _, o := range m {
		o.InstrRetired(ev)
	}
}

// PulseInterrupted implements Observer.
func (m Multi) PulseInterrupted(ev Interrupt) {
	for _, o := range m {
		o.PulseInterrupted(ev)
	}
}

// OutageBegin implements Observer.
func (m Multi) OutageBegin(t float64) {
	for _, o := range m {
		o.OutageBegin(t)
	}
}

// OutageEnd implements Observer.
func (m Multi) OutageEnd(t, off float64) {
	for _, o := range m {
		o.OutageEnd(t, off)
	}
}

// Restored implements Observer.
func (m Multi) Restored(ev Restore) {
	for _, o := range m {
		o.Restored(ev)
	}
}

// VoltageSample implements Observer.
func (m Multi) VoltageSample(t, volts float64) {
	for _, o := range m {
		o.VoltageSample(t, volts)
	}
}

// TileWrite implements Observer.
func (m Multi) TileWrite(tile, bits int) {
	for _, o := range m {
		o.TileWrite(tile, bits)
	}
}

// FaultInjected implements FaultObserver, delivering to every member
// that opts in.
func (m Multi) FaultInjected(ev Fault) {
	for _, o := range m {
		EmitFault(o, ev)
	}
}
