package probe

import "math"

// Merge folds src's counters into s. Both sides stay live: every field
// is read with an atomic load and folded in with an atomic add (or CAS
// min/max), so Merge is safe to call while emitters are still writing
// to either Stats — the result is then a snapshot-consistent-per-field
// aggregate, the same approximation contract Section documents.
//
// Merge is the aggregation primitive behind fleet-level telemetry:
// per-worker, per-lane, or per-device Stats can be folded into one
// live view (e.g. by merging every shard into a fresh Stats and taking
// its Section) without the shards ever sharing a cache line on their
// hot paths.
func (s *Stats) Merge(src *Stats) {
	if src == nil || src == s {
		return
	}
	s.instructions.Add(src.instructions.Load())
	s.replays.Add(src.replays.Load())
	s.interrupts.Add(src.interrupts.Load())
	s.outages.Add(src.outages.Load())
	s.restores.Add(src.restores.Load())
	s.faults.Add(src.faults.Load())

	for k := 0; k < maxKinds; k++ {
		if n := src.byKind[k].Load(); n > 0 {
			s.byKind[k].Add(n)
		}
	}

	s.computeEnergy.Add(src.computeEnergy.Load())
	s.backupEnergy.Add(src.backupEnergy.Load())
	s.restoreEnergy.Add(src.restoreEnergy.Load())
	s.lostEnergy.Add(src.lostEnergy.Load())
	s.replayEnergy.Add(src.replayEnergy.Load())
	s.outageSecs.Add(src.outageSecs.Load())
	s.busySecs.Add(src.busySecs.Load())
	s.restoreSecs.Add(src.restoreSecs.Load())

	for b := 0; b < histBuckets; b++ {
		if n := src.outageHist[b].Load(); n > 0 {
			s.outageHist[b].Add(n)
		}
	}

	if n := src.voltSamples.Load(); n > 0 {
		s.voltSamples.Add(n)
		lo, hi := src.voltMin.Load(), src.voltMax.Load()
		if s.voltInit.CompareAndSwap(false, true) {
			// First voltage data seeds min/max, mirroring VoltageSample.
			s.voltMin.bits.Store(math.Float64bits(lo))
			s.voltMax.bits.Store(math.Float64bits(hi))
		} else {
			s.voltMin.Min(lo)
			s.voltMax.Max(hi)
		}
	}

	for t := 0; t < maxTrackedTiles; t++ {
		if w := src.tileWrites[t].Load(); w > 0 {
			s.tileWrites[t].Add(w)
			s.tileBits[t].Add(src.tileBits[t].Load())
		}
	}
}

// OutageHistEdges returns the finite upper edges, in seconds, of the
// log10 outage-duration histogram: the first bucket counts outages
// shorter than edge 0, the last bucket counts outages at or above the
// final edge. The values are computed with the same expression Section
// uses for its Lo/HiSeconds fields, so they compare exactly equal.
func OutageHistEdges() []float64 {
	edges := make([]float64, histBuckets-1)
	for b := 0; b < histBuckets-1; b++ {
		edges[b] = histFloor * math.Pow(10, float64(b))
	}
	return edges
}
