// Package dataset provides deterministic synthetic stand-ins for the
// paper's three benchmarks datasets (Section VIII): MNIST digit images
// (28×28 pixels, 8-bit, 10 classes), the UCI Human Activity Recognition
// set (561 features, 6 classes), and the ADULT census set (15 features,
// 2 classes).
//
// The originals cannot ship with an offline repository, so each generator
// produces data with the same shape, value range, and enough class
// structure for the classifiers to train meaningfully. The hardware
// evaluation's latency/energy claims depend only on the problem
// dimensions and model sizes, which are preserved exactly; accuracy
// columns in EXPERIMENTS.md report both the paper's values on the real
// data and ours on the synthetic data.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Sample is one labelled example with 8-bit integer features (the
// paper's fixed-point input representation).
type Sample struct {
	X     []int
	Label int
}

// Set is a train/test split of labelled samples.
type Set struct {
	Name        string
	NumFeatures int
	NumClasses  int
	Train       []Sample
	Test        []Sample
}

// Validate checks internal consistency.
func (s *Set) Validate() error {
	for _, group := range [][]Sample{s.Train, s.Test} {
		for i, smp := range group {
			if len(smp.X) != s.NumFeatures {
				return fmt.Errorf("dataset %s: sample %d has %d features, want %d", s.Name, i, len(smp.X), s.NumFeatures)
			}
			if smp.Label < 0 || smp.Label >= s.NumClasses {
				return fmt.Errorf("dataset %s: sample %d label %d out of range", s.Name, i, smp.Label)
			}
			for j, v := range smp.X {
				if v < 0 || v > 255 {
					return fmt.Errorf("dataset %s: sample %d feature %d = %d outside 8-bit range", s.Name, i, j, v)
				}
			}
		}
	}
	return nil
}

// Binarize returns a copy of the set with every feature thresholded to
// 0/1 (the paper's binarized MNIST variant, which lets multiplications
// become AND gates).
func (s *Set) Binarize(threshold int) *Set {
	out := &Set{
		Name:        s.Name + " (binarized)",
		NumFeatures: s.NumFeatures,
		NumClasses:  s.NumClasses,
	}
	bin := func(in []Sample) []Sample {
		res := make([]Sample, len(in))
		for i, smp := range in {
			x := make([]int, len(smp.X))
			for j, v := range smp.X {
				if v > threshold {
					x[j] = 1
				}
			}
			res[i] = Sample{X: x, Label: smp.Label}
		}
		return res
	}
	out.Train = bin(s.Train)
	out.Test = bin(s.Test)
	return out
}

func clamp8(v float64) int {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return int(v)
}

// Digits generates an MNIST-like digit set: 28×28 8-bit images in 10
// classes. Each class is a prototype of blurred random strokes; samples
// add translation jitter and pixel noise.
func Digits(seed int64, trainPerClass, testPerClass int) *Set {
	const (
		side     = 28
		features = side * side
		classes  = 10
	)
	rng := rand.New(rand.NewSource(seed))
	protos := make([][]float64, classes)
	for c := range protos {
		protos[c] = digitPrototype(rng, side)
	}
	s := &Set{Name: "MNIST-syn", NumFeatures: features, NumClasses: classes}
	emit := func(n int) []Sample {
		var out []Sample
		for c := 0; c < classes; c++ {
			for i := 0; i < n; i++ {
				out = append(out, digitSample(rng, protos[c], side, c))
			}
		}
		return out
	}
	s.Train = emit(trainPerClass)
	s.Test = emit(testPerClass)
	shuffle(rng, s.Train)
	shuffle(rng, s.Test)
	return s
}

func digitPrototype(rng *rand.Rand, side int) []float64 {
	img := make([]float64, side*side)
	// Strokes between random anchor points.
	anchors := 3 + rng.Intn(3)
	px, py := float64(4+rng.Intn(side-8)), float64(4+rng.Intn(side-8))
	for a := 0; a < anchors; a++ {
		nx, ny := float64(4+rng.Intn(side-8)), float64(4+rng.Intn(side-8))
		steps := int(math.Hypot(nx-px, ny-py)*2) + 1
		for sIdx := 0; sIdx <= steps; sIdx++ {
			t := float64(sIdx) / float64(steps)
			x, y := px+(nx-px)*t, py+(ny-py)*t
			xi, yi := int(x), int(y)
			if xi >= 0 && xi < side && yi >= 0 && yi < side {
				img[yi*side+xi] = 255
			}
		}
		px, py = nx, ny
	}
	// Two passes of 3×3 box blur thicken and soften the strokes.
	for pass := 0; pass < 2; pass++ {
		img = boxBlur(img, side)
	}
	// Normalize to a 0..255 peak.
	peak := 0.0
	for _, v := range img {
		if v > peak {
			peak = v
		}
	}
	if peak > 0 {
		for i := range img {
			img[i] *= 255 / peak
		}
	}
	return img
}

func boxBlur(img []float64, side int) []float64 {
	out := make([]float64, len(img))
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			sum, n := 0.0, 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					xx, yy := x+dx, y+dy
					if xx >= 0 && xx < side && yy >= 0 && yy < side {
						sum += img[yy*side+xx]
						n++
					}
				}
			}
			out[y*side+x] = sum / float64(n)
		}
	}
	return out
}

func digitSample(rng *rand.Rand, proto []float64, side, label int) Sample {
	dx, dy := rng.Intn(5)-2, rng.Intn(5)-2
	x := make([]int, side*side)
	for yy := 0; yy < side; yy++ {
		for xx := 0; xx < side; xx++ {
			sx, sy := xx-dx, yy-dy
			v := 0.0
			if sx >= 0 && sx < side && sy >= 0 && sy < side {
				v = proto[sy*side+sx]
			}
			v += rng.NormFloat64() * 18
			x[yy*side+xx] = clamp8(v)
		}
	}
	return Sample{X: x, Label: label}
}

// HAR generates a Human-Activity-Recognition-like set: 561 8-bit
// features in 6 classes, Gaussian clusters around per-class means.
func HAR(seed int64, trainPerClass, testPerClass int) *Set {
	return gaussianSet("HAR-syn", seed, 561, 6, 55, 22, trainPerClass, testPerClass)
}

// Adult generates an ADULT-census-like set: 15 8-bit features in 2
// classes. The class structure is a noisy linear rule over a few
// features, giving classifiers a realistic ~80% ceiling.
func Adult(seed int64, train, test int) *Set {
	rng := rand.New(rand.NewSource(seed))
	s := &Set{Name: "ADULT-syn", NumFeatures: 15, NumClasses: 2}
	weights := make([]float64, s.NumFeatures)
	for i := range weights {
		weights[i] = rng.NormFloat64()
	}
	emit := func(n int) []Sample {
		out := make([]Sample, n)
		for i := range out {
			x := make([]int, s.NumFeatures)
			score := 0.0
			for j := range x {
				x[j] = rng.Intn(256)
				score += weights[j] * (float64(x[j]) - 128) / 128
			}
			label := 0
			if score > 0 {
				label = 1
			}
			// Label noise caps achievable accuracy, as on the real data.
			if rng.Float64() < 0.12 {
				label = 1 - label
			}
			out[i] = Sample{X: x, Label: label}
		}
		return out
	}
	s.Train = emit(train)
	s.Test = emit(test)
	return s
}

// Speech generates a speech-recognition-like set on which a degree-2
// polynomial SVM cannot reach useful accuracy but a neural network can —
// reproducing the paper's Section III observation ("we were unable to
// achieve reasonable accuracy on the speech recognition data set, which
// neural networks have performed well on"). Each sample is a 64-frame
// "spectrogram" whose class is determined by the *parity* of high-energy
// events across four frequency bands: a parity of more than two latent
// factors is outside any quadratic kernel's span, while a small MLP
// learns it easily.
func Speech(seed int64, train, test int) *Set {
	const (
		frames   = 16
		bands    = 4
		features = frames * bands
	)
	rng := rand.New(rand.NewSource(seed))
	s := &Set{Name: "SPEECH-syn", NumFeatures: features, NumClasses: 2}
	emit := func(n int) []Sample {
		out := make([]Sample, n)
		for i := range out {
			x := make([]int, features)
			parity := 0
			for b := 0; b < bands; b++ {
				// Each band is either "voiced" (sustained energy) or
				// quiet; the class is the parity of voiced bands — a
				// degree-4 interaction no quadratic kernel can span.
				voiced := rng.Intn(2) == 1
				if voiced {
					parity ^= 1
				}
				level := 40.0
				if voiced {
					level = 190
				}
				for f := 0; f < frames; f++ {
					x[f*bands+b] = clamp8(level + rng.NormFloat64()*20)
				}
			}
			out[i] = Sample{X: x, Label: parity}
		}
		return out
	}
	s.Train = emit(train)
	s.Test = emit(test)
	return s
}

// gaussianSet builds a clustered multi-class set: per-class mean vectors
// separated by `sep`, samples spread with per-feature noise `sigma`.
func gaussianSet(name string, seed int64, features, classes int, sep, sigma float64, trainPerClass, testPerClass int) *Set {
	rng := rand.New(rand.NewSource(seed))
	means := make([][]float64, classes)
	for c := range means {
		m := make([]float64, features)
		for j := range m {
			m[j] = 128 + rng.NormFloat64()*sep
		}
		means[c] = m
	}
	s := &Set{Name: name, NumFeatures: features, NumClasses: classes}
	emit := func(n int) []Sample {
		var out []Sample
		for c := 0; c < classes; c++ {
			for i := 0; i < n; i++ {
				x := make([]int, features)
				for j := range x {
					x[j] = clamp8(means[c][j] + rng.NormFloat64()*sigma)
				}
				out = append(out, Sample{X: x, Label: c})
			}
		}
		return out
	}
	s.Train = emit(trainPerClass)
	s.Test = emit(testPerClass)
	shuffle(rng, s.Train)
	shuffle(rng, s.Test)
	return s
}

func shuffle(rng *rand.Rand, s []Sample) {
	rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}
