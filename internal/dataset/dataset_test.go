package dataset

import (
	"reflect"
	"testing"
)

func TestDigitsShape(t *testing.T) {
	s := Digits(1, 10, 4)
	if s.NumFeatures != 784 || s.NumClasses != 10 {
		t.Fatalf("shape %dx%d", s.NumFeatures, s.NumClasses)
	}
	if len(s.Train) != 100 || len(s.Test) != 40 {
		t.Fatalf("sizes %d/%d", len(s.Train), len(s.Test))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHARShape(t *testing.T) {
	s := HAR(2, 8, 3)
	if s.NumFeatures != 561 || s.NumClasses != 6 {
		t.Fatalf("shape %dx%d", s.NumFeatures, s.NumClasses)
	}
	if len(s.Train) != 48 || len(s.Test) != 18 {
		t.Fatalf("sizes %d/%d", len(s.Train), len(s.Test))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAdultShape(t *testing.T) {
	s := Adult(3, 100, 50)
	if s.NumFeatures != 15 || s.NumClasses != 2 {
		t.Fatalf("shape %dx%d", s.NumFeatures, s.NumClasses)
	}
	if len(s.Train) != 100 || len(s.Test) != 50 {
		t.Fatalf("sizes %d/%d", len(s.Train), len(s.Test))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Both classes must occur.
	seen := map[int]bool{}
	for _, smp := range s.Train {
		seen[smp.Label] = true
	}
	if len(seen) != 2 {
		t.Fatalf("labels seen: %v", seen)
	}
}

func TestDeterminism(t *testing.T) {
	a := Digits(42, 3, 2)
	b := Digits(42, 3, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different data")
	}
	c := Digits(43, 3, 2)
	if reflect.DeepEqual(a.Train[0].X, c.Train[0].X) {
		t.Fatalf("different seeds produced identical data")
	}
}

func TestBinarize(t *testing.T) {
	s := Digits(5, 3, 2)
	bin := s.Binarize(128)
	if err := bin.Validate(); err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, smp := range bin.Train {
		for _, v := range smp.X {
			if v != 0 && v != 1 {
				t.Fatalf("non-binary feature %d", v)
			}
			ones += v
		}
	}
	if ones == 0 {
		t.Fatalf("binarization produced all zeros")
	}
	// The original is untouched.
	max := 0
	for _, v := range s.Train[0].X {
		if v > max {
			max = v
		}
	}
	if max <= 1 {
		t.Fatalf("Binarize mutated the source set")
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// A nearest-centroid classifier must beat chance comfortably on the
	// synthetic sets, or the classifiers downstream have nothing to learn.
	for _, s := range []*Set{Digits(7, 20, 10), HAR(7, 20, 10)} {
		centroids := make([][]float64, s.NumClasses)
		counts := make([]int, s.NumClasses)
		for c := range centroids {
			centroids[c] = make([]float64, s.NumFeatures)
		}
		for _, smp := range s.Train {
			counts[smp.Label]++
			for j, v := range smp.X {
				centroids[smp.Label][j] += float64(v)
			}
		}
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] /= float64(counts[c])
			}
		}
		correct := 0
		for _, smp := range s.Test {
			best, bestD := -1, 0.0
			for c := range centroids {
				d := 0.0
				for j, v := range smp.X {
					diff := float64(v) - centroids[c][j]
					d += diff * diff
				}
				if best < 0 || d < bestD {
					best, bestD = c, d
				}
			}
			if best == smp.Label {
				correct++
			}
		}
		acc := float64(correct) / float64(len(s.Test))
		chance := 1.0 / float64(s.NumClasses)
		if acc < 3*chance {
			t.Errorf("%s: nearest-centroid accuracy %.2f too close to chance %.2f", s.Name, acc, chance)
		}
	}
}

func TestValidateCatchesBadData(t *testing.T) {
	s := Digits(1, 2, 1)
	s.Train[0].X[0] = 999
	if err := s.Validate(); err == nil {
		t.Errorf("out-of-range feature accepted")
	}
	s = Digits(1, 2, 1)
	s.Train[0].Label = 99
	if err := s.Validate(); err == nil {
		t.Errorf("out-of-range label accepted")
	}
	s = Digits(1, 2, 1)
	s.Train[0].X = s.Train[0].X[:10]
	if err := s.Validate(); err == nil {
		t.Errorf("short sample accepted")
	}
}

func TestSpeechShape(t *testing.T) {
	s := Speech(4, 100, 40)
	if s.NumFeatures != 64 || s.NumClasses != 2 {
		t.Fatalf("shape %dx%d", s.NumFeatures, s.NumClasses)
	}
	if len(s.Train) != 100 || len(s.Test) != 40 {
		t.Fatalf("sizes %d/%d", len(s.Train), len(s.Test))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, smp := range s.Train {
		seen[smp.Label] = true
	}
	if len(seen) != 2 {
		t.Fatalf("labels: %v", seen)
	}
}

func TestSpeechIsNotLinearlySeparable(t *testing.T) {
	// Nearest-centroid (a linear rule) must fail on the parity task —
	// the structure that defeats the quadratic kernel.
	s := Speech(5, 300, 200)
	centroids := make([][]float64, 2)
	counts := make([]int, 2)
	for c := range centroids {
		centroids[c] = make([]float64, s.NumFeatures)
	}
	for _, smp := range s.Train {
		counts[smp.Label]++
		for j, v := range smp.X {
			centroids[smp.Label][j] += float64(v)
		}
	}
	for c := range centroids {
		for j := range centroids[c] {
			centroids[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for _, smp := range s.Test {
		best, bestD := 0, 0.0
		for c := range centroids {
			d := 0.0
			for j, v := range smp.X {
				diff := float64(v) - centroids[c][j]
				d += diff * diff
			}
			if c == 0 || d < bestD {
				best, bestD = c, d
			}
		}
		if best == smp.Label {
			correct++
		}
	}
	acc := float64(correct) / float64(len(s.Test))
	if acc > 0.65 {
		t.Errorf("nearest-centroid accuracy %.2f — the parity structure leaked", acc)
	}
}
