package fft_test

import (
	"fmt"
	"log"

	"mouse/internal/fft"
)

// ExampleParams_Transform computes the fixed-point FFT of an impulse —
// whose spectrum is flat — with the exact integer arithmetic the
// compiled MOUSE program performs.
func ExampleParams_Transform() {
	p := fft.Params{N: 8, Width: 16, Frac: 8}
	re := make([]int64, p.N)
	im := make([]int64, p.N)
	re[0] = 100
	if err := p.Transform(re, im); err != nil {
		log.Fatal(err)
	}
	fmt.Println(re)
	fmt.Println(im)
	// Output:
	// [100 100 100 100 100 100 100 100]
	// [0 0 0 0 0 0 0 0]
}

// ExampleCompile shows the size of a compiled in-memory transform: the
// twiddle factors unroll into shift-and-add constants, so the program
// carries the whole FFT with no multiplier hardware.
func ExampleCompile() {
	p := fft.Params{N: 8, Width: 14, Frac: 7}
	mp, err := fft.Compile(p, 1024, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input points:", len(mp.InRe))
	fmt.Println("output bins:", len(mp.OutRe))
	fmt.Println("has instructions:", len(mp.Prog) > 1000)
	// Output:
	// input points: 8
	// output bins: 8
	// has instructions: true
}
