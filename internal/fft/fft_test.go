package fft

import (
	"math"
	"math/rand"
	"testing"

	"mouse/internal/array"
	"mouse/internal/controller"
	"mouse/internal/mtj"
)

func TestParamsValidate(t *testing.T) {
	good := Params{N: 8, Width: 16, Frac: 8}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{N: 3, Width: 16, Frac: 8},
		{N: 1, Width: 16, Frac: 8},
		{N: 8, Width: 2, Frac: 1},
		{N: 8, Width: 40, Frac: 8},
		{N: 8, Width: 16, Frac: 0},
		{N: 8, Width: 16, Frac: 16},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v validated", p)
		}
	}
}

func TestTwiddles(t *testing.T) {
	p := Params{N: 8, Width: 16, Frac: 8}
	wre, wim := p.Twiddle(0)
	if wre != 256 || wim != 0 {
		t.Errorf("W^0 = (%d, %d), want (256, 0)", wre, wim)
	}
	wre, wim = p.Twiddle(2) // -90°
	if wre != 0 || wim != -256 {
		t.Errorf("W^2 = (%d, %d), want (0, -256)", wre, wim)
	}
	wre, wim = p.Twiddle(1) // -45°
	if wre != 181 || wim != -181 {
		t.Errorf("W^1 = (%d, %d), want (181, -181)", wre, wim)
	}
}

func TestBitReverse(t *testing.T) {
	p := Params{N: 8, Width: 16, Frac: 8}
	want := []int{0, 4, 2, 6, 1, 5, 3, 7}
	for i, w := range want {
		if got := p.bitReverse(i); got != w {
			t.Errorf("bitReverse(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestReferenceImpulse(t *testing.T) {
	// FFT of a unit impulse is flat ones.
	re := make([]float64, 8)
	im := make([]float64, 8)
	re[0] = 1
	Reference(re, im)
	for k := range re {
		if math.Abs(re[k]-1) > 1e-12 || math.Abs(im[k]) > 1e-12 {
			t.Fatalf("bin %d = (%g, %g), want (1, 0)", k, re[k], im[k])
		}
	}
}

func TestReferenceSinusoid(t *testing.T) {
	// A pure tone concentrates in its bin.
	const n, tone = 16, 3
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = math.Cos(2 * math.Pi * tone * float64(i) / n)
	}
	Reference(re, im)
	for k := range re {
		mag := math.Hypot(re[k], im[k])
		want := 0.0
		if k == tone || k == n-tone {
			want = n / 2
		}
		if math.Abs(mag-want) > 1e-9 {
			t.Fatalf("bin %d magnitude %g, want %g", k, mag, want)
		}
	}
}

func TestTransformTracksReference(t *testing.T) {
	p := Params{N: 16, Width: 18, Frac: 9}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		fre := make([]float64, p.N)
		fim := make([]float64, p.N)
		ire := make([]int64, p.N)
		iim := make([]int64, p.N)
		for i := range fre {
			v := rng.Intn(255) - 127
			fre[i] = float64(v)
			ire[i] = int64(v)
		}
		Reference(fre, fim)
		if err := p.Transform(ire, iim); err != nil {
			t.Fatal(err)
		}
		// Fixed-point error stays within a few LSBs per stage.
		tol := float64(p.N) * 2
		for k := range fre {
			if math.Abs(fre[k]-float64(ire[k])) > tol || math.Abs(fim[k]-float64(iim[k])) > tol {
				t.Fatalf("trial %d bin %d: fixed (%d, %d) vs float (%.1f, %.1f)",
					trial, k, ire[k], iim[k], fre[k], fim[k])
			}
		}
	}
}

func TestTransformValidates(t *testing.T) {
	p := Params{N: 8, Width: 16, Frac: 8}
	if err := p.Transform(make([]int64, 4), make([]int64, 8)); err == nil {
		t.Errorf("short input accepted")
	}
	if err := (Params{N: 3, Width: 16, Frac: 8}).Transform(nil, nil); err == nil {
		t.Errorf("bad params accepted")
	}
}

// TestCompiledFFTMatchesGolden runs the compiled MOUSE FFT gate by gate
// on the functional array, a batch of signals across columns, and
// requires bit-identical spectra to the integer golden model.
func TestCompiledFFTMatchesGolden(t *testing.T) {
	p := Params{N: 8, Width: 14, Frac: 7}
	const batch = 3
	mp, err := Compile(p, 1024, batch)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("compiled %d-point FFT: %d instructions, %d gates", p.N, len(mp.Prog), mp.Gates)

	mach := array.NewMachine(mtj.ModernSTT(), 1, 1024, batch)
	rng := rand.New(rand.NewSource(4))
	signals := make([][2][]int64, batch)
	mask := uint64(1<<p.Width - 1)
	for col := range signals {
		re := make([]int64, p.N)
		im := make([]int64, p.N)
		for i := range re {
			re[i] = int64(rng.Intn(127) - 63)
			im[i] = int64(rng.Intn(127) - 63)
		}
		signals[col] = [2][]int64{re, im}
		for i := 0; i < p.N; i++ {
			loadWord(mach, mp.InRe[i], col, uint64(re[i])&mask)
			loadWord(mach, mp.InIm[i], col, uint64(im[i])&mask)
		}
	}
	c := controller.New(controller.ProgramStore(mp.Prog), mach)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for col, sig := range signals {
		wantRe := append([]int64(nil), sig[0]...)
		wantIm := append([]int64(nil), sig[1]...)
		if err := p.Transform(wantRe, wantIm); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < p.N; k++ {
			gotRe := DecodeSigned(readWord(mach, mp.OutRe[k], col))
			gotIm := DecodeSigned(readWord(mach, mp.OutIm[k], col))
			if gotRe != wantRe[k] || gotIm != wantIm[k] {
				t.Fatalf("col %d bin %d: hardware (%d, %d) vs golden (%d, %d)",
					col, k, gotRe, gotIm, wantRe[k], wantIm[k])
			}
		}
	}
}

func loadWord(m *array.Machine, rows []int, col int, v uint64) {
	for i, row := range rows {
		m.Tiles[0].SetBit(row, col, int(v>>i)&1)
	}
}

func readWord(m *array.Machine, rows []int, col int) []int {
	bits := make([]int, len(rows))
	for i, row := range rows {
		bits[i] = m.Tiles[0].Bit(row, col)
	}
	return bits
}

func TestCompileValidates(t *testing.T) {
	if _, err := Compile(Params{N: 3, Width: 16, Frac: 8}, 1024, 1); err == nil {
		t.Errorf("bad params accepted")
	}
	if _, err := Compile(Params{N: 8, Width: 16, Frac: 8}, 1024, 0); err == nil {
		t.Errorf("zero batch accepted")
	}
	if _, err := Compile(Params{N: 64, Width: 16, Frac: 8}, 128, 1); err == nil {
		t.Errorf("tiny row budget accepted")
	}
}

func TestButterflyGates(t *testing.T) {
	g, err := ButterflyGates(Params{N: 1024, Width: 16, Frac: 8})
	if err != nil {
		t.Fatal(err)
	}
	if g <= 0 {
		t.Fatalf("gate count %d", g)
	}
	if _, err := ButterflyGates(Params{N: 3}); err == nil {
		t.Errorf("bad params accepted")
	}
}

func TestWorkloadOps(t *testing.T) {
	p := Params{N: 64, Width: 16, Frac: 8}
	ops, err := Ops(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) == 0 {
		t.Fatalf("empty workload")
	}
	if ops[0].ActCols != p.N/2 {
		t.Errorf("first op should activate N/2 columns, got %d", ops[0].ActCols)
	}
	reads, writes := 0, 0
	for _, op := range ops {
		switch op.Kind.String() {
		case "read":
			reads++
		case "write":
			writes++
		}
	}
	if reads == 0 || reads != writes {
		t.Errorf("inter-stage exchange unbalanced: %d reads vs %d writes", reads, writes)
	}
	if _, err := Ops(Params{N: 3}); err == nil {
		t.Errorf("bad params accepted")
	}
	if _, err := Stream(Params{N: 3}); err == nil {
		t.Errorf("bad params accepted by Stream")
	}
	s, err := Stream(p)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != len(ops) {
		t.Errorf("stream yields %d ops, want %d", n, len(ops))
	}
}

func TestMiBenchParams(t *testing.T) {
	p := MiBenchParams()
	if p.N != 1024 || p.Width != 16 || p.Frac != 8 {
		t.Errorf("MiBench params %+v", p)
	}
	if p.String() != "1024-point Q8.8" {
		t.Errorf("String = %q", p.String())
	}
	if NVPLatency <= CRAFFTLatency {
		t.Errorf("reference latencies inverted")
	}
}
