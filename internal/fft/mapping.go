package fft

import (
	"fmt"

	"mouse/internal/compile"
	"mouse/internal/isa"
)

// Mapping is a compiled in-column FFT: each active column transforms an
// independent complex signal (batch parallelism), every butterfly's
// twiddle multiplication unrolled into shift-and-add constants in the
// instruction stream. The bit-reversal permutation costs nothing: the
// compiler simply relabels which rows hold which index.
type Mapping struct {
	Prog isa.Program

	// InRe[i] / InIm[i] list the rows (LSB first) to load sample i's
	// real/imaginary parts into, per column.
	InRe, InIm [][]int

	// OutRe[k] / OutIm[k] list the rows of output bin k.
	OutRe, OutIm [][]int

	// Columns is the batch width.
	Columns int

	// Gates is the logic-gate count of one transform.
	Gates int
}

// Compile builds the MOUSE program for the transform, batched over
// batchCols columns on tiles with the given row count.
func Compile(p Params, rows, batchCols int) (*Mapping, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if batchCols < 1 || batchCols > isa.Cols {
		return nil, fmt.Errorf("fft: batch width %d out of range", batchCols)
	}
	b := compile.NewBuilder(rows)
	cols := make([]uint16, batchCols)
	for i := range cols {
		cols[i] = uint16(i)
	}
	b.ActivateBroadcast(cols)

	// Allocate the signal in bit-reversed positions so the DIT stages
	// run on naturally ordered indices.
	re := make([]compile.Word, p.N)
	im := make([]compile.Word, p.N)
	m := &Mapping{Columns: batchCols, InRe: make([][]int, p.N), InIm: make([][]int, p.N)}
	for i := 0; i < p.N; i++ {
		j := p.bitReverse(i)
		re[j] = b.AllocWord(p.Width, 0)
		im[j] = b.AllocWord(p.Width, 1)
		m.InRe[i] = wordRows(re[j])
		m.InIm[i] = wordRows(im[j])
	}

	ext := p.ExtWidth()
	// mulAdd computes (wre*x - s*wim*y) >> Frac at Width, through the
	// extended width so the products cannot wrap.
	mulAdd := func(x, y compile.Word, wre, wim int64, subtract bool) compile.Word {
		xe := b.SignExtend(x, ext)
		ye := b.SignExtend(y, ext)
		px := b.MulConstFixed(xe, wre)
		py := b.MulConstFixed(ye, wim)
		sum := b.AddFixed(px, py, subtract)
		sh := b.AshrFixed(sum, p.Frac)
		b.FreeWord(xe)
		b.FreeWord(ye)
		b.FreeWord(px)
		b.FreeWord(py)
		b.FreeWord(sum)
		out := make(compile.Word, p.Width)
		copy(out, sh[:p.Width])
		for i := p.Width; i < len(sh); i++ {
			b.Free(sh[i])
		}
		return out
	}

	for size := 2; size <= p.N; size <<= 1 {
		half := size / 2
		step := p.N / size
		for start := 0; start < p.N; start += size {
			for k := 0; k < half; k++ {
				a, bi := start+k, start+k+half
				wre, wim := p.Twiddle(k * step)
				tr := mulAdd(re[bi], im[bi], wre, wim, true)  // wre·re − wim·im
				ti := mulAdd(im[bi], re[bi], wre, wim, false) // wre·im + wim·re
				newBRe := b.AddFixed(re[a], tr, true)
				newBIm := b.AddFixed(im[a], ti, true)
				newARe := b.AddFixed(re[a], tr, false)
				newAIm := b.AddFixed(im[a], ti, false)
				b.FreeWord(tr)
				b.FreeWord(ti)
				b.FreeWord(re[a])
				b.FreeWord(im[a])
				b.FreeWord(re[bi])
				b.FreeWord(im[bi])
				re[a], im[a] = newARe, newAIm
				re[bi], im[bi] = newBRe, newBIm
			}
		}
	}

	prog, err := b.Program()
	if err != nil {
		return nil, err
	}
	m.Prog = prog
	m.Gates = b.GateCount()
	for i := 0; i < p.N; i++ {
		m.OutRe = append(m.OutRe, wordRows(re[i]))
		m.OutIm = append(m.OutIm, wordRows(im[i]))
	}
	return m, nil
}

func wordRows(w compile.Word) []int {
	rows := make([]int, len(w))
	for i, bit := range w {
		rows[i] = bit.Row
	}
	return rows
}

// DecodeSigned reconstructs a two's-complement value from bits read at
// the mapped rows.
func DecodeSigned(bits []int) int64 {
	var v uint64
	for i, bit := range bits {
		v |= uint64(bit&1) << i
	}
	if len(bits) < 64 && bits[len(bits)-1] == 1 {
		v |= ^uint64(0) << len(bits)
	}
	return int64(v)
}

// ButterflyGates returns the gate count of one representative butterfly
// (a 45° twiddle, the densest constant), measured by compiling it — the
// unit cost the paper-scale workload model multiplies out.
func ButterflyGates(p Params) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	b := compile.NewBuilder(isa.Rows)
	b.ActivateBroadcast([]uint16{0})
	re0 := b.AllocWord(p.Width, 0)
	im0 := b.AllocWord(p.Width, 1)
	re1 := b.AllocWord(p.Width, 0)
	im1 := b.AllocWord(p.Width, 1)
	wre, wim := p.Twiddle(p.N / 8) // 45°: both components non-trivial
	ext := p.ExtWidth()
	xe := b.SignExtend(re1, ext)
	ye := b.SignExtend(im1, ext)
	px := b.MulConstFixed(xe, wre)
	py := b.MulConstFixed(ye, wim)
	tr := b.AshrFixed(b.AddFixed(px, py, true), p.Frac)
	xe2 := b.SignExtend(im1, ext)
	ye2 := b.SignExtend(re1, ext)
	px2 := b.MulConstFixed(xe2, wre)
	py2 := b.MulConstFixed(ye2, wim)
	ti := b.AshrFixed(b.AddFixed(px2, py2, false), p.Frac)
	b.AddFixed(re0, tr[:p.Width], true)
	b.AddFixed(im0, ti[:p.Width], true)
	b.AddFixed(re0, tr[:p.Width], false)
	b.AddFixed(im0, ti[:p.Width], false)
	if b.Err() != nil {
		return 0, b.Err()
	}
	return b.GateCount(), nil
}
