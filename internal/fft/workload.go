package fft

import (
	"fmt"

	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/sim"
)

// Paper-scale FFT workload (Section X's related-work comparison): a
// CRAFFT-style mapping runs every butterfly of a stage in its own
// column simultaneously — N/2-way parallelism — and exchanges operands
// between stages through rotated row moves. The per-butterfly gate
// count is measured by compiling one with the real compiler.

// Ops returns the analytic instruction stream of one N-point transform.
func Ops(p Params) ([]energy.Op, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	bfGates, err := ButterflyGates(p)
	if err != nil {
		return nil, err
	}
	stages := 0
	for v := 1; v < p.N; v <<= 1 {
		stages++
	}
	cols := p.N / 2 // one butterfly per column
	var ops []energy.Op
	ops = append(ops, energy.Op{Kind: isa.KindAct, ActCols: cols})
	for s := 0; s < stages; s++ {
		// Butterflies of this stage, all columns at once.
		for g := 0; g < bfGates; g++ {
			ops = append(ops,
				energy.Op{Kind: isa.KindPreset, ActivePairs: cols},
				energy.Op{Kind: isa.KindLogic, Gate: mtj.MAJ3, ActivePairs: cols})
		}
		// Inter-stage exchange: each column hands one complex operand
		// (2×Width bits) to its partner via read + rotated write.
		if s < stages-1 {
			moves := 2 * p.Width * ((cols + isa.Cols - 1) / isa.Cols)
			for mv := 0; mv < moves; mv++ {
				ops = append(ops,
					energy.Op{Kind: isa.KindRead},
					energy.Op{Kind: isa.KindWrite})
			}
		}
	}
	return ops, nil
}

// Stream returns the workload as an OpStream.
func Stream(p Params) (sim.OpStream, error) {
	ops, err := Ops(p)
	if err != nil {
		return nil, err
	}
	return &sim.SliceStream{Ops: ops}, nil
}

// Reference latencies from the paper's Section X, in seconds.
const (
	// NVPLatency is the THU1010N non-volatile processor's MiBench FFT
	// time [57].
	NVPLatency = 4.2e-3
	// CRAFFTLatency is the best CRAM FFT latency reported by [19] for a
	// similarly sized problem.
	CRAFFTLatency = 1.63e-3
)

// MiBenchParams is the 1024-point transform used for the comparison.
func MiBenchParams() Params { return Params{N: 1024, Width: 16, Frac: 8} }

func (p Params) String() string {
	return fmt.Sprintf("%d-point Q%d.%d", p.N, p.Width-p.Frac, p.Frac)
}
