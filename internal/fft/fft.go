// Package fft implements a fixed-point fast Fourier transform on MOUSE,
// the workload the paper's related-work section uses to compare
// intermittent-safe architectures (Section X): a non-volatile processor
// completes the MiBench FFT in 4.2 ms, while CRAFFT on the same CRAM
// substrate as MOUSE reaches 1.63 ms. This package compiles a radix-2
// decimation-in-time FFT to MOUSE gate programs (each column transforms
// an independent signal; twiddle factors unroll into the instruction
// stream as shift-and-add constants), provides a bit-exact integer
// golden model, and an analytic paper-scale workload for the comparison.
package fft

import (
	"fmt"
	"math"
)

// Params fixes the transform size and the Q-format arithmetic.
type Params struct {
	// N is the transform length (a power of two).
	N int
	// Width is the two's-complement word width of each real/imaginary
	// component.
	Width int
	// Frac is the number of fractional bits in the twiddle factors.
	Frac int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.N < 2 || p.N&(p.N-1) != 0 {
		return fmt.Errorf("fft: N=%d is not a power of two ≥ 2", p.N)
	}
	if p.Width < 4 || p.Width > 32 {
		return fmt.Errorf("fft: width %d out of range", p.Width)
	}
	if p.Frac < 1 || p.Frac >= p.Width {
		return fmt.Errorf("fft: %d fractional bits out of range", p.Frac)
	}
	return nil
}

// ExtWidth is the intermediate width used inside a butterfly so the
// twiddle products cannot wrap before the renormalizing shift.
func (p Params) ExtWidth() int { return p.Width + p.Frac + 1 }

// Twiddle returns the stage twiddle factor e^{-2πik/N} quantized to the
// Q format: (round(cos·2^Frac), round(−sin·2^Frac)).
func (p Params) Twiddle(k int) (wre, wim int64) {
	ang := -2 * math.Pi * float64(k) / float64(p.N)
	scale := math.Pow(2, float64(p.Frac))
	return int64(math.Round(math.Cos(ang) * scale)), int64(math.Round(math.Sin(ang) * scale))
}

// wrap sign-extends v to a Width-bit two's-complement value.
func (p Params) wrap(v int64) int64 {
	mask := int64(1)<<p.Width - 1
	v &= mask
	if v&(1<<(p.Width-1)) != 0 {
		v -= 1 << p.Width
	}
	return v
}

// bitReverse returns i bit-reversed over log2(N) bits.
func (p Params) bitReverse(i int) int {
	bits := 0
	for v := 1; v < p.N; v <<= 1 {
		bits++
	}
	r := 0
	for b := 0; b < bits; b++ {
		if i&(1<<b) != 0 {
			r |= 1 << (bits - 1 - b)
		}
	}
	return r
}

// Transform computes the in-place fixed-point FFT of (re, im), using
// exactly the arithmetic the compiled hardware performs: extended-width
// twiddle products, arithmetic right shift by Frac, and truncation back
// to Width bits on every add. It is the golden model the MOUSE program
// is verified against bit for bit.
func (p Params) Transform(re, im []int64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if len(re) != p.N || len(im) != p.N {
		return fmt.Errorf("fft: input length %d/%d, want %d", len(re), len(im), p.N)
	}
	// Bit-reversal permutation.
	for i := 0; i < p.N; i++ {
		if j := p.bitReverse(i); j > i {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for size := 2; size <= p.N; size <<= 1 {
		half := size / 2
		step := p.N / size
		for start := 0; start < p.N; start += size {
			for k := 0; k < half; k++ {
				a, bIdx := start+k, start+k+half
				wre, wim := p.Twiddle(k * step)
				tr := p.wrap((wre*re[bIdx] - wim*im[bIdx]) >> p.Frac)
				ti := p.wrap((wre*im[bIdx] + wim*re[bIdx]) >> p.Frac)
				re[bIdx] = p.wrap(re[a] - tr)
				im[bIdx] = p.wrap(im[a] - ti)
				re[a] = p.wrap(re[a] + tr)
				im[a] = p.wrap(im[a] + ti)
			}
		}
	}
	return nil
}

// Reference computes a float64 FFT (iterative radix-2 DIT) for accuracy
// comparisons against the fixed-point pipeline.
func Reference(re, im []float64) {
	n := len(re)
	// Bit reversal.
	bits := 0
	for v := 1; v < n; v <<= 1 {
		bits++
	}
	for i := 0; i < n; i++ {
		r := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		if r > i {
			re[i], re[r] = re[r], re[i]
			im[i], im[r] = im[r], im[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				ang := -2 * math.Pi * float64(k) / float64(size)
				wre, wim := math.Cos(ang), math.Sin(ang)
				a, b := start+k, start+k+half
				tr := wre*re[b] - wim*im[b]
				ti := wre*im[b] + wim*re[b]
				re[b], im[b] = re[a]-tr, im[a]-ti
				re[a], im[a] = re[a]+tr, im[a]+ti
			}
		}
	}
}
