package compile

import (
	"mouse/internal/array"
	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// Flatten is the compile-once entry point of the bit-sliced batch
// engine: it turns a finished program into the flat op array
// (array.FlatProgram) that array.BatchMachine.Replay executes with no
// per-instruction validation, truth-table lookup, or activation
// decoding — compile once, replay per batch. Hot inference workloads
// (the SVM and BNN mappings, internal/workload's cached batch recipes)
// flatten their programs at build time and reuse the result for every
// batch.
//
// The implementation lives next to the replay executor in
// internal/array; this wrapper is the program-producer-facing name for
// it, mirroring how Builder is the producer-facing way to construct the
// isa.Program it consumes.
func Flatten(p isa.Program, cfg *mtj.Config, nTiles, rows, cols int) (*array.FlatProgram, error) {
	return array.Flatten(p, cfg, nTiles, rows, cols)
}
