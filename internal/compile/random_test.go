package compile

import (
	"math/rand"
	"testing"

	"mouse/internal/mtj"
)

// Random-program property test: generate arbitrary arithmetic expression
// DAGs, compile them, execute on the functional array, and compare
// against direct Go evaluation. This stresses parity management, row
// allocation/reuse, and macro composition far beyond the hand-written
// cases.

// exprNode evaluates one operation both ways: building hardware words
// and computing the expected value.
type exprNode struct {
	word Word
	val  uint64
	bits int
}

const exprWidth = 8 // all expression values are 8-bit (fixed arithmetic)

func TestRandomExpressionPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 25; trial++ {
		b := NewBuilder(testRows)
		activateAll(b)

		// Leaves: loaded operands and compile-time constants.
		nLeaves := 2 + rng.Intn(3)
		leaves := make([]exprNode, nLeaves)
		loadVals := make([]uint64, nLeaves)
		for i := range leaves {
			leaves[i] = exprNode{word: b.AllocWord(exprWidth, rng.Intn(2)), bits: exprWidth}
		}
		nodes := append([]exprNode{}, leaves...)
		if rng.Intn(2) == 0 {
			c := uint64(rng.Intn(256))
			nodes = append(nodes, exprNode{word: b.ConstWord(c, exprWidth, rng.Intn(2)), val: c, bits: exprWidth})
		}

		// Interior operations. All arithmetic stays at exprWidth via the
		// fixed-width macros, so expected values are mod 256.
		ops := 3 + rng.Intn(6)
		type pending struct {
			kind  int
			a, bi int
			k     int64
			s     int
		}
		var plan []pending
		for i := 0; i < ops; i++ {
			p := pending{
				kind: rng.Intn(6),
				a:    rng.Intn(len(nodes) + i),
				bi:   rng.Intn(len(nodes) + i),
				k:    int64(rng.Intn(31) - 15),
				s:    rng.Intn(exprWidth),
			}
			plan = append(plan, p)
		}
		// Build hardware nodes following the plan.
		build := func(vals []uint64) []uint64 {
			res := append([]uint64{}, vals...)
			for _, p := range plan {
				a, bi := res[p.a], res[p.bi]
				var v uint64
				switch p.kind {
				case 0:
					v = (a + bi) & 0xFF
				case 1:
					v = (a - bi) & 0xFF
				case 2:
					v = (a * bi) & 0xFF
				case 3:
					v = uint64(int64(a)*p.k) & 0xFF
				case 4:
					v = uint64(int64(int8(a))>>p.s) & 0xFF
				case 5:
					if a < bi {
						v = 1
					}
				}
				res = append(res, v)
			}
			return res
		}
		for _, p := range plan {
			an, bn := nodes[p.a], nodes[p.bi]
			var w Word
			switch p.kind {
			case 0:
				w = b.AddFixed(an.word, bn.word, false)
			case 1:
				w = b.AddFixed(an.word, bn.word, true)
			case 2:
				w = b.MulFixed(an.word, bn.word)
			case 3:
				w = b.MulConstFixed(an.word, p.k)
			case 4:
				w = b.AshrFixed(an.word, p.s)
			case 5:
				lt := b.LessThan(an.word, bn.word)
				w = Word{lt}
				for w.Len() < exprWidth {
					w = append(w, b.Const(0, 1-w[w.Len()-1].Parity()))
				}
			}
			nodes = append(nodes, exprNode{word: w, bits: exprWidth})
		}
		if b.Err() != nil {
			t.Fatalf("trial %d: compile error: %v", trial, b.Err())
		}

		r := newRig(t, b)
		for rerun := 0; rerun < 2; rerun++ {
			vals := make([]uint64, len(nodes)-ops)
			for i := 0; i < nLeaves; i++ {
				loadVals[i] = uint64(rng.Intn(256))
				vals[i] = loadVals[i]
				r.load(0, leaves[i].word, loadVals[i])
			}
			// Constants keep their compile-time values.
			for i := nLeaves; i < len(vals); i++ {
				vals[i] = nodes[i].val
			}
			want := build(vals)
			r.run()
			for i, n := range nodes {
				got := r.read(0, n.word)
				if got != want[i] {
					t.Fatalf("trial %d rerun %d node %d: hardware %#x, want %#x", trial, rerun, i, got, want[i])
				}
			}
		}
	}
}

// TestRandomOutageExpression compiles one random expression and verifies
// it survives an energy-starved intermittent run unchanged (compiler ×
// controller × power integration).
func TestRandomOutageExpression(t *testing.T) {
	b := NewBuilder(testRows)
	activateAll(b)
	x := b.AllocWord(exprWidth, 0)
	y := b.AllocWord(exprWidth, 0)
	p1 := b.MulFixed(x, y)
	p2 := b.AddFixed(p1, x, true)
	p3 := b.MulConstFixed(p2, -3)
	out := b.AshrFixed(p3, 2)
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	_ = mtj.ModernSTT()
	r := newRig(t, b)
	_ = prog
	r.load(0, x, 77)
	r.load(0, y, 19)
	r.run()
	step := uint8((77*19 - 77) % 256)
	step = uint8(int8(step) * -3)
	want := uint64(int64(int8(step))>>2) & 0xFF
	if got := r.read(0, out); got != want {
		t.Fatalf("expression = %#x, want %#x", got, want)
	}
}
