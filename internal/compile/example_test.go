package compile_test

import (
	"fmt"
	"log"

	"mouse/internal/array"
	"mouse/internal/compile"
	"mouse/internal/controller"
	"mouse/internal/mtj"
)

// ExampleBuilder compiles a 4-bit multiply, runs it in two columns at
// once (column-level parallelism), and reads the products back.
func ExampleBuilder() {
	b := compile.NewBuilder(256)
	b.ActivateBroadcast([]uint16{0, 1})
	x := b.AllocWord(4, 0)
	y := b.AllocWord(4, 0)
	p := b.MulWords(x, y)
	prog, err := b.Program()
	if err != nil {
		log.Fatal(err)
	}

	m := array.NewMachine(mtj.ModernSTT(), 1, 256, 2)
	load := func(col int, w compile.Word, v int) {
		for i, bit := range w {
			m.Tiles[0].SetBit(bit.Row, col, (v>>i)&1)
		}
	}
	load(0, x, 7)
	load(0, y, 6)
	load(1, x, 13)
	load(1, y, 11)
	if err := controller.New(controller.ProgramStore(prog), m).Run(); err != nil {
		log.Fatal(err)
	}
	read := func(col int) int {
		v := 0
		for i, bit := range p {
			v |= m.Tiles[0].Bit(bit.Row, col) << i
		}
		return v
	}
	fmt.Println(read(0), read(1))
	// Output: 42 143
}

// ExampleBuilder_gateCount shows how a single XOR decomposes into three
// threshold gates (six instructions: a preset write plus a logic
// operation per gate).
func ExampleBuilder_gateCount() {
	b := compile.NewBuilder(32)
	b.ActivateBroadcast([]uint16{0})
	x, y := b.Alloc(0), b.Alloc(0)
	b.XOR(x, y)
	fmt.Println(b.GateCount(), "gates,", b.Len()-1, "instructions after the ACT")
	// Output: 3 gates, 6 instructions after the ACT
}
