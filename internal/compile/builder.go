// Package compile maps computation onto MOUSE instructions, following the
// application-mapping discipline of Sections VI and VII of the paper:
// variables are assigned to rows, logic gates chain through alternating
// row parities (a gate's inputs share one bit-line parity and its output
// takes the other), every gate output is preset by a write instruction
// before the gate executes, and the whole instruction sequence runs
// simultaneously in every active column (column-level parallelism).
//
// The Builder is a small netlist compiler: it allocates rows, inserts the
// preset writes, checks the parity rule, and transparently inserts BUF
// copies when two operands sit on mismatched parities. On top of single
// gates it provides the arithmetic macro library the paper's benchmarks
// need — XOR/XNOR in three gates, a seven-gate full adder (majority carry
// plus two XORs), ripple add/subtract, shift-add multiply, square,
// popcount trees, and comparisons — exactly the blocks the paper's
// greedy, column-minimal scheduling composes (Section VI).
//
// Word bits are laid out on alternating parities so that ripple carries
// land on the parity the next stage needs, avoiding per-stage copies.
package compile

import (
	"fmt"

	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// Bit is a 1-bit signal resident in one row (present in every active
// column). The zero Bit is invalid.
type Bit struct {
	// Row is the row holding the signal; -1 marks an invalid bit.
	Row int
	ok  bool
}

// Valid reports whether the bit refers to a real row.
func (b Bit) Valid() bool { return b.ok }

// Parity returns the bit's row parity (0 even, 1 odd).
func (b Bit) Parity() int { return b.Row & 1 }

// Word is a multi-bit unsigned or two's-complement value, least
// significant bit first.
type Word []Bit

// Len returns the bit width.
func (w Word) Len() int { return len(w) }

// Builder compiles a sequence of gate and memory operations into a MOUSE
// program. Errors are sticky: after the first failure every operation
// becomes a no-op and Err reports the cause, keeping arithmetic
// construction code free of per-call error handling.
type Builder struct {
	rows int
	prog isa.Program
	free [2][]int // free rows by parity, used LIFO
	err  error
	ctx  CheckContext // deployment context handed to ProgramCheck

	// gates counts emitted logic gates (excluding presets), for
	// reporting against the paper's operation counts.
	gates int

	// peak tracks the high-water mark of simultaneously allocated rows —
	// the row pressure that decides how many operands fit per column
	// (the packing constraint of Section VI's greedy scheduling).
	peak int
}

// NewBuilder creates a builder for tiles with the given row count. Rows
// are handed out from 0 upward; reserve operand rows first with Reserve.
func NewBuilder(rows int) *Builder {
	b := &Builder{rows: rows, ctx: CheckContext{Rows: rows}}
	for r := rows - 1; r >= 0; r-- { // LIFO: low rows come out first
		b.free[r&1] = append(b.free[r&1], r)
	}
	return b
}

// Err returns the first error encountered, if any.
func (b *Builder) Err() error { return b.err }

// fail records the first error.
func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("compile: "+format, args...)
	}
}

// CheckContext carries the deployment facts a self-check needs beyond
// the instruction stream itself: the technology configuration (whose
// capacitor sizes the discharge window), the checkpoint interval the
// program will run under, and the machine geometry. Zero fields mean
// "unknown" and the checker falls back to its defaults (full ISA
// geometry, Modern STT, per-instruction checkpointing).
type CheckContext struct {
	// Cfg is the technology the program will deploy on; nil → default.
	Cfg *mtj.Config
	// CheckpointInterval is the replay-region length; ≤ 1 →
	// per-instruction checkpointing.
	CheckpointInterval int
	// Tiles, Rows, Cols bound the deployed array; zero fields default to
	// the full ISA address space.
	Tiles, Rows, Cols int
}

// ProgramCheck, when non-nil, is applied to every program Program()
// would return successfully; a non-nil result becomes the compile
// error. The compile test suite installs the lint package's verifier
// here so every compiler-emitted program is statically self-checked
// against its deployment context — geometry, technology, capacitor,
// checkpoint interval — (the package itself stays free of the
// dependency).
var ProgramCheck func(isa.Program, CheckContext) error

// SetCheckContext records the deployment context the self-check hook
// receives from Program(). Callers that know their capacitor and
// checkpoint interval set it right after NewBuilder.
func (b *Builder) SetCheckContext(ctx CheckContext) {
	if ctx.Rows == 0 {
		ctx.Rows = b.rows
	}
	b.ctx = ctx
}

// Program returns the compiled program. It returns the builder's error,
// if any, and validates (and, when a ProgramCheck is installed,
// self-checks) the result.
func (b *Builder) Program() (isa.Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	if ProgramCheck != nil {
		if err := ProgramCheck(b.prog, b.ctx); err != nil {
			return nil, fmt.Errorf("compile: self-check: %w", err)
		}
	}
	return b.prog, nil
}

// GateCount returns the number of logic gates emitted so far.
func (b *Builder) GateCount() int { return b.gates }

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.prog) }

// Reserve marks a specific row as in use (for operand placement) and
// returns it as a Bit. Reserving an already-allocated row fails.
func (b *Builder) Reserve(row int) Bit {
	if b.err != nil {
		return Bit{Row: -1}
	}
	list := b.free[row&1]
	for i, r := range list {
		if r == row {
			b.free[row&1] = append(list[:i], list[i+1:]...)
			if used := b.rows - len(b.free[0]) - len(b.free[1]); used > b.peak {
				b.peak = used
			}
			return Bit{Row: row, ok: true}
		}
	}
	b.fail("row %d is not free", row)
	return Bit{Row: -1}
}

// Alloc returns a fresh row of the requested parity (0 or 1).
func (b *Builder) Alloc(parity int) Bit {
	if b.err != nil {
		return Bit{Row: -1}
	}
	list := b.free[parity&1]
	if len(list) == 0 {
		b.fail("out of rows with parity %d", parity&1)
		return Bit{Row: -1}
	}
	r := list[len(list)-1]
	b.free[parity&1] = list[:len(list)-1]
	if used := b.rows - len(b.free[0]) - len(b.free[1]); used > b.peak {
		b.peak = used
	}
	return Bit{Row: r, ok: true}
}

// PeakRows returns the high-water mark of simultaneously live rows.
func (b *Builder) PeakRows() int { return b.peak }

// Free returns a bit's row to the allocator.
func (b *Builder) Free(bits ...Bit) {
	for _, bit := range bits {
		if bit.ok {
			b.free[bit.Row&1] = append(b.free[bit.Row&1], bit.Row)
		}
	}
}

// FreeWord releases every bit of a word.
func (b *Builder) FreeWord(w Word) {
	for _, bit := range w {
		b.Free(bit)
	}
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Instruction) {
	if b.err != nil {
		return
	}
	if err := in.Validate(); err != nil {
		b.fail("emit: %v", err)
		return
	}
	b.prog = append(b.prog, in)
}

// ActivateBroadcast emits Activate Columns instructions selecting the
// given columns in every tile, batching into the ranged form when the
// columns are a contiguous run and into ≤5-column lists otherwise.
func (b *Builder) ActivateBroadcast(cols []uint16) {
	b.activate(true, 0, cols)
}

// ActivateTile emits Activate Columns instructions for one tile.
func (b *Builder) ActivateTile(tile int, cols []uint16) {
	b.activate(false, tile, cols)
}

func (b *Builder) activate(broadcast bool, tile int, cols []uint16) {
	if b.err != nil || len(cols) == 0 {
		return
	}
	// Contiguous run (common case) → single ranged ACT.
	contiguous := true
	for i := 1; i < len(cols); i++ {
		if cols[i] != cols[i-1]+1 {
			contiguous = false
			break
		}
	}
	if contiguous {
		b.Emit(isa.ActRange(broadcast, tile, int(cols[0]), len(cols), 1))
		return
	}
	// The replacement semantics of ACT mean a scattered set larger than
	// one list instruction cannot be expressed; the mapper should use
	// contiguous runs (greedy allocation naturally does).
	if len(cols) > isa.MaxActList {
		b.fail("scattered activation of %d columns exceeds one ACT list", len(cols))
		return
	}
	b.Emit(isa.ActList(broadcast, tile, cols))
}

// MoveRows emits a read / rotated-write pair for each (src, dst) row
// pair: data in column c of the source rows lands in column (c+rot) mod
// 1024 of the destination rows. This is how partial results migrate
// across columns to meet (Section VI: "the partial sums are moved, via
// reads and writes, to a single column"); the bit lines themselves only
// move data vertically.
func (b *Builder) MoveRows(tile int, src, dst []int, rot int) {
	if b.err != nil {
		return
	}
	if len(src) != len(dst) {
		b.fail("MoveRows: %d source rows but %d destinations", len(src), len(dst))
		return
	}
	for i := range src {
		b.Emit(isa.Read(tile, src[i]))
		b.Emit(isa.WriteRot(tile, dst[i], rot))
	}
}

// MoveWord moves a word's rows into freshly allocated rows, shifted rot
// columns, returning the destination word (same widths and parities).
func (b *Builder) MoveWord(tile int, w Word, rot int) Word {
	dst := make(Word, len(w))
	src := make([]int, len(w))
	rows := make([]int, len(w))
	for i, bit := range w {
		dst[i] = b.Alloc(bit.Parity())
		if !dst[i].ok {
			return dst
		}
		src[i] = bit.Row
		rows[i] = dst[i].Row
	}
	b.MoveRows(tile, src, rows, rot)
	return dst
}

// Gate emits the preset write and logic instruction for gate g with the
// given inputs, placing the result on a freshly allocated row of the
// opposite parity. Inputs must share a parity; use ensureParity or the
// higher-level helpers for mixed operands.
func (b *Builder) Gate(g mtj.GateKind, ins ...Bit) Bit {
	if b.err != nil {
		return Bit{Row: -1}
	}
	spec := mtj.Spec(g)
	if len(ins) != spec.Inputs {
		b.fail("%s takes %d inputs, got %d", g, spec.Inputs, len(ins))
		return Bit{Row: -1}
	}
	p := ins[0].Parity()
	rows := make([]int, len(ins))
	for i, in := range ins {
		if !in.ok {
			b.fail("%s: invalid input bit", g)
			return Bit{Row: -1}
		}
		if in.Parity() != p {
			b.fail("%s: mixed input parities (rows %d, %d)", g, ins[0].Row, in.Row)
			return Bit{Row: -1}
		}
		rows[i] = in.Row
	}
	out := b.Alloc(1 - p)
	if !out.ok {
		return Bit{Row: -1}
	}
	b.Emit(isa.Preset(out.Row, spec.Preset))
	b.Emit(isa.Logic(g, rows, out.Row))
	b.gates++
	return out
}

// Copy materializes a on the opposite parity via a BUF gate.
func (b *Builder) Copy(a Bit) Bit { return b.Gate(mtj.BUF, a) }

// NOT returns the complement of a (opposite parity).
func (b *Builder) NOT(a Bit) Bit { return b.Gate(mtj.NOT, a) }

// ensureParity returns a sibling of x on parity p, inserting a copy when
// needed. The second return reports whether a scratch copy was made (the
// caller should free it).
func (b *Builder) ensureParity(x Bit, p int) (Bit, bool) {
	if !x.ok || x.Parity() == p {
		return x, false
	}
	return b.Copy(x), true
}

// align brings two bits onto a common parity (preferring their current
// majority), returning them plus any scratch copies to free.
func (b *Builder) align(x, y Bit) (Bit, Bit, []Bit) {
	if !x.ok || !y.ok || x.Parity() == y.Parity() {
		return x, y, nil
	}
	cy := b.Copy(y)
	return x, cy, []Bit{cy}
}

// Const returns a bit holding the constant v, written by a preset.
func (b *Builder) Const(v int, parity int) Bit {
	out := b.Alloc(parity)
	if !out.ok {
		return out
	}
	b.Emit(isa.Preset(out.Row, mtj.FromBit(v)))
	return out
}

// binary emits a two-input gate after aligning parities. Duplicate
// operands (the same row twice — impossible in hardware, where a cell has
// a single MTJ) fold to their logical identities.
func (b *Builder) binary(g mtj.GateKind, x, y Bit) Bit {
	if x.ok && y.ok && x.Row == y.Row {
		switch g {
		case mtj.AND2, mtj.OR2:
			return b.Copy(x)
		case mtj.NAND2, mtj.NOR2:
			return b.NOT(x)
		}
		b.fail("%s: duplicate operand row %d", g, x.Row)
		return Bit{Row: -1}
	}
	x, y, scratch := b.align(x, y)
	out := b.Gate(g, x, y)
	b.Free(scratch...)
	return out
}

// AND returns x∧y.
func (b *Builder) AND(x, y Bit) Bit { return b.binary(mtj.AND2, x, y) }

// OR returns x∨y.
func (b *Builder) OR(x, y Bit) Bit { return b.binary(mtj.OR2, x, y) }

// NAND returns ¬(x∧y).
func (b *Builder) NAND(x, y Bit) Bit { return b.binary(mtj.NAND2, x, y) }

// NOR returns ¬(x∨y).
func (b *Builder) NOR(x, y Bit) Bit { return b.binary(mtj.NOR2, x, y) }

// XOR returns x⊕y in three gates: AND(NAND(x,y), OR(x,y)).
func (b *Builder) XOR(x, y Bit) Bit {
	if x.ok && y.ok && x.Row == y.Row {
		return b.Const(0, 1-x.Parity())
	}
	x, y, scratch := b.align(x, y)
	n := b.Gate(mtj.NAND2, x, y)
	o := b.Gate(mtj.OR2, x, y)
	out := b.Gate(mtj.AND2, n, o)
	b.Free(n, o)
	b.Free(scratch...)
	return out
}

// XNOR returns ¬(x⊕y) in three gates: OR(AND(x,y), NOR(x,y)). XNOR is
// the BNN multiply (Section III).
func (b *Builder) XNOR(x, y Bit) Bit {
	if x.ok && y.ok && x.Row == y.Row {
		return b.Const(1, 1-x.Parity())
	}
	x, y, scratch := b.align(x, y)
	a := b.Gate(mtj.AND2, x, y)
	n := b.Gate(mtj.NOR2, x, y)
	out := b.Gate(mtj.OR2, a, n)
	b.Free(a, n)
	b.Free(scratch...)
	return out
}

// MAJ returns the majority of three bits (after parity alignment).
// Duplicate operands fold: MAJ(x,x,z) = x.
func (b *Builder) MAJ(x, y, z Bit) Bit {
	if x.ok && y.ok && z.ok {
		switch {
		case x.Row == y.Row:
			return b.Copy(x)
		case x.Row == z.Row:
			return b.Copy(x)
		case y.Row == z.Row:
			return b.Copy(y)
		}
	}
	// Align y and z to x's parity.
	p := x.Parity()
	y2, cy := b.ensureParity(y, p)
	z2, cz := b.ensureParity(z, p)
	out := b.Gate(mtj.MAJ3, x, y2, z2)
	if cy {
		b.Free(y2)
	}
	if cz {
		b.Free(z2)
	}
	return out
}
