package compile

import (
	"math/rand"
	"testing"

	"mouse/internal/array"
	"mouse/internal/controller"
	"mouse/internal/isa"
	"mouse/internal/mtj"
)

const (
	testRows = 512
	testCols = 4
)

// rig compiles the builder's program and returns a machine loader/runner:
// load writes operand words into a column, run executes the program, and
// read extracts a result word from a column.
type rig struct {
	t    *testing.T
	prog isa.Program
	m    *array.Machine
}

func newRig(t *testing.T, b *Builder) *rig {
	t.Helper()
	prog, err := b.Program()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return &rig{
		t:    t,
		prog: prog,
		m:    array.NewMachine(mtj.ModernSTT(), 1, testRows, testCols),
	}
}

func (r *rig) load(col int, w Word, value uint64) {
	r.t.Helper()
	for i, bit := range w {
		if !bit.Valid() {
			r.t.Fatalf("loading through invalid bit %d", i)
		}
		r.m.Tiles[0].SetBit(bit.Row, col, int(value>>i)&1)
	}
}

func (r *rig) run() {
	r.t.Helper()
	c := controller.New(controller.ProgramStore(r.prog), r.m)
	if err := c.Run(); err != nil {
		r.t.Fatalf("run: %v", err)
	}
}

func (r *rig) read(col int, w Word) uint64 {
	r.t.Helper()
	var v uint64
	for i, bit := range w {
		if !bit.Valid() {
			r.t.Fatalf("reading through invalid bit %d", i)
		}
		v |= uint64(r.m.Tiles[0].Bit(bit.Row, col)) << i
	}
	return v
}

func (r *rig) readBit(col int, bit Bit) int {
	r.t.Helper()
	return r.m.Tiles[0].Bit(bit.Row, col)
}

func activateAll(b *Builder) {
	cols := make([]uint16, testCols)
	for i := range cols {
		cols[i] = uint16(i)
	}
	b.ActivateBroadcast(cols)
}

func TestGateMacrosTruthTables(t *testing.T) {
	b := NewBuilder(testRows)
	activateAll(b)
	x := b.Alloc(0)
	y := b.Alloc(0)
	outs := map[string]Bit{
		"and":  b.AND(x, y),
		"or":   b.OR(x, y),
		"nand": b.NAND(x, y),
		"nor":  b.NOR(x, y),
		"xor":  b.XOR(x, y),
		"xnor": b.XNOR(x, y),
		"not":  b.NOT(x),
		"copy": b.Copy(x),
	}
	r := newRig(t, b)
	// Columns 0..3 carry the four input combinations.
	for col := 0; col < 4; col++ {
		r.m.Tiles[0].SetBit(x.Row, col, col&1)
		r.m.Tiles[0].SetBit(y.Row, col, col>>1)
	}
	r.run()
	for col := 0; col < 4; col++ {
		xv, yv := col&1, col>>1
		want := map[string]int{
			"and":  xv & yv,
			"or":   xv | yv,
			"nand": 1 - xv&yv,
			"nor":  1 - (xv | yv),
			"xor":  xv ^ yv,
			"xnor": 1 - xv ^ yv,
			"not":  1 - xv,
			"copy": xv,
		}
		for name, bit := range outs {
			if got := r.readBit(col, bit); got != want[name] {
				t.Errorf("%s(%d,%d) = %d, want %d", name, xv, yv, got, want[name])
			}
		}
	}
}

func TestMixedParityOperandsGetCopies(t *testing.T) {
	b := NewBuilder(testRows)
	activateAll(b)
	x := b.Alloc(0)
	y := b.Alloc(1) // opposite parity: the builder must insert a copy
	out := b.AND(x, y)
	r := newRig(t, b)
	r.m.Tiles[0].SetBit(x.Row, 0, 1)
	r.m.Tiles[0].SetBit(y.Row, 0, 1)
	r.m.Tiles[0].SetBit(x.Row, 1, 1)
	r.m.Tiles[0].SetBit(y.Row, 1, 0)
	r.run()
	if r.readBit(0, out) != 1 || r.readBit(1, out) != 0 {
		t.Errorf("mixed-parity AND wrong: %d %d", r.readBit(0, out), r.readBit(1, out))
	}
}

func TestDuplicateOperandFolds(t *testing.T) {
	b := NewBuilder(testRows)
	activateAll(b)
	x := b.Alloc(0)
	and := b.AND(x, x)
	nand := b.NAND(x, x)
	xor := b.XOR(x, x)
	xnor := b.XNOR(x, x)
	maj := b.MAJ(x, x, b.Alloc(0))
	r := newRig(t, b)
	r.m.Tiles[0].SetBit(x.Row, 0, 1)
	r.run()
	if r.readBit(0, and) != 1 || r.readBit(0, nand) != 0 {
		t.Errorf("AND(x,x)/NAND(x,x) fold wrong")
	}
	if r.readBit(0, xor) != 0 || r.readBit(0, xnor) != 1 {
		t.Errorf("XOR(x,x)/XNOR(x,x) fold wrong")
	}
	if r.readBit(0, maj) != 1 {
		t.Errorf("MAJ(x,x,z) fold wrong")
	}
}

func TestFullAddExhaustive(t *testing.T) {
	b := NewBuilder(testRows)
	activateAll(b)
	x, y, cin := b.Alloc(0), b.Alloc(0), b.Alloc(0)
	sum, carry := b.FullAdd(x, y, cin)
	r := newRig(t, b)
	// 8 combinations across 4 columns × 2 runs.
	for base := 0; base < 8; base += 4 {
		for col := 0; col < 4; col++ {
			v := base + col
			r.m.Tiles[0].SetBit(x.Row, col, v&1)
			r.m.Tiles[0].SetBit(y.Row, col, (v>>1)&1)
			r.m.Tiles[0].SetBit(cin.Row, col, (v>>2)&1)
		}
		r.run()
		for col := 0; col < 4; col++ {
			v := base + col
			total := v&1 + (v>>1)&1 + (v>>2)&1
			if got := r.readBit(col, sum); got != total&1 {
				t.Errorf("sum(%03b) = %d, want %d", v, got, total&1)
			}
			if got := r.readBit(col, carry); got != total>>1 {
				t.Errorf("carry(%03b) = %d, want %d", v, got, total>>1)
			}
		}
	}
}

func TestAddWordsRandom(t *testing.T) {
	b := NewBuilder(testRows)
	activateAll(b)
	x := b.AllocWord(8, 0)
	y := b.AllocWord(8, 0)
	sum := b.AddWords(x, y)
	if sum.Len() != 9 {
		t.Fatalf("sum width %d, want 9", sum.Len())
	}
	r := newRig(t, b)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 16; trial++ {
		vals := make([][2]uint64, testCols)
		for col := range vals {
			vals[col] = [2]uint64{uint64(rng.Intn(256)), uint64(rng.Intn(256))}
			r.load(col, x, vals[col][0])
			r.load(col, y, vals[col][1])
		}
		r.run()
		for col, v := range vals {
			if got := r.read(col, sum); got != v[0]+v[1] {
				t.Fatalf("%d + %d = %d, want %d", v[0], v[1], got, v[0]+v[1])
			}
		}
	}
}

func TestAddWordsUnequalWidths(t *testing.T) {
	b := NewBuilder(testRows)
	activateAll(b)
	x := b.AllocWord(8, 0)
	y := b.AllocWord(3, 1)
	sum := b.AddWords(x, y)
	r := newRig(t, b)
	r.load(0, x, 250)
	r.load(0, y, 7)
	r.run()
	if got := r.read(0, sum); got != 257 {
		t.Fatalf("250 + 7 = %d", got)
	}
}

func TestAddFixedSubtract(t *testing.T) {
	b := NewBuilder(testRows)
	activateAll(b)
	x := b.AllocWord(10, 0)
	y := b.AllocWord(8, 0)
	diff := b.AddFixed(x, y, true)
	sum := b.AddFixed(x, y, false)
	if diff.Len() != 10 || sum.Len() != 10 {
		t.Fatalf("fixed widths %d/%d, want 10", diff.Len(), sum.Len())
	}
	r := newRig(t, b)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 16; trial++ {
		vals := make([][2]uint64, testCols)
		for col := range vals {
			vals[col] = [2]uint64{uint64(rng.Intn(1024)), uint64(rng.Intn(256))}
			r.load(col, x, vals[col][0])
			r.load(col, y, vals[col][1])
		}
		r.run()
		for col, v := range vals {
			wantDiff := (v[0] - v[1]) & 1023 // two's complement wrap
			wantSum := (v[0] + v[1]) & 1023
			if got := r.read(col, diff); got != wantDiff {
				t.Fatalf("%d - %d = %d, want %d", v[0], v[1], got, wantDiff)
			}
			if got := r.read(col, sum); got != wantSum {
				t.Fatalf("%d + %d = %d, want %d", v[0], v[1], got, wantSum)
			}
		}
	}
}

func TestMulWordsRandom(t *testing.T) {
	b := NewBuilder(testRows)
	activateAll(b)
	x := b.AllocWord(6, 0)
	y := b.AllocWord(6, 0)
	prod := b.MulWords(x, y)
	if prod.Len() != 12 {
		t.Fatalf("product width %d, want 12", prod.Len())
	}
	r := newRig(t, b)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		vals := make([][2]uint64, testCols)
		for col := range vals {
			vals[col] = [2]uint64{uint64(rng.Intn(64)), uint64(rng.Intn(64))}
			r.load(col, x, vals[col][0])
			r.load(col, y, vals[col][1])
		}
		r.run()
		for col, v := range vals {
			if got := r.read(col, prod); got != v[0]*v[1] {
				t.Fatalf("%d * %d = %d, want %d", v[0], v[1], got, v[0]*v[1])
			}
		}
	}
}

func TestSquare(t *testing.T) {
	b := NewBuilder(testRows)
	activateAll(b)
	x := b.AllocWord(6, 0)
	sq := b.Square(x)
	r := newRig(t, b)
	for _, v := range []uint64{0, 1, 7, 33, 63} {
		r.load(0, x, v)
		r.run()
		if got := r.read(0, sq); got != v*v {
			t.Fatalf("%d² = %d, want %d", v, got, v*v)
		}
	}
}

func TestPopCount(t *testing.T) {
	b := NewBuilder(testRows)
	activateAll(b)
	bits := make([]Bit, 11)
	word := b.AllocWord(len(bits), 0)
	copy(bits, word)
	count := b.PopCount(bits)
	r := newRig(t, b)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 12; trial++ {
		vals := make([]uint64, testCols)
		for col := range vals {
			vals[col] = uint64(rng.Intn(1 << len(bits)))
			r.load(col, word, vals[col])
		}
		r.run()
		for col, v := range vals {
			want := uint64(popcount(v))
			if got := r.read(col, count); got != want {
				t.Fatalf("popcount(%b) = %d, want %d", v, got, want)
			}
		}
	}
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func TestComparisons(t *testing.T) {
	b := NewBuilder(testRows)
	activateAll(b)
	x := b.AllocWord(7, 0)
	y := b.AllocWord(7, 0)
	lt := b.LessThan(x, y)
	ge := b.GreaterEq(x, y)
	r := newRig(t, b)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 24; trial++ {
		vals := make([][2]uint64, testCols)
		for col := range vals {
			a, c := uint64(rng.Intn(128)), uint64(rng.Intn(128))
			if trial%4 == 0 {
				c = a // exercise equality
			}
			vals[col] = [2]uint64{a, c}
			r.load(col, x, a)
			r.load(col, y, c)
		}
		r.run()
		for col, v := range vals {
			wantLT := 0
			if v[0] < v[1] {
				wantLT = 1
			}
			if got := r.readBit(col, lt); got != wantLT {
				t.Fatalf("(%d < %d) = %d, want %d", v[0], v[1], got, wantLT)
			}
			if got := r.readBit(col, ge); got != 1-wantLT {
				t.Fatalf("(%d >= %d) = %d, want %d", v[0], v[1], got, 1-wantLT)
			}
		}
	}
}

func TestConstWord(t *testing.T) {
	b := NewBuilder(testRows)
	activateAll(b)
	c := b.ConstWord(0xB5, 8, 0)
	r := newRig(t, b)
	r.run()
	for col := 0; col < testCols; col++ {
		if got := r.read(col, c); got != 0xB5 {
			t.Fatalf("const = %#x in column %d", got, col)
		}
	}
}

func TestRowExhaustion(t *testing.T) {
	b := NewBuilder(8)
	activateAll(b)
	x := b.AllocWord(8, 0) // consumes all even+odd rows
	_ = x
	y := b.Alloc(0)
	if y.Valid() {
		t.Fatalf("allocation beyond capacity succeeded")
	}
	if b.Err() == nil {
		t.Fatalf("no sticky error after exhaustion")
	}
	if _, err := b.Program(); err == nil {
		t.Fatalf("Program() ignored sticky error")
	}
}

func TestReserve(t *testing.T) {
	b := NewBuilder(16)
	r := b.Reserve(4)
	if !r.Valid() || r.Row != 4 {
		t.Fatalf("Reserve(4) = %+v", r)
	}
	r2 := b.Reserve(4)
	if r2.Valid() || b.Err() == nil {
		t.Fatalf("double reserve succeeded")
	}
}

func TestScatteredActivationLimits(t *testing.T) {
	b := NewBuilder(16)
	b.ActivateBroadcast([]uint16{0, 2, 4, 6, 8, 10}) // 6 scattered columns
	if b.Err() == nil {
		t.Fatalf("oversized scattered activation accepted")
	}
	b2 := NewBuilder(16)
	b2.ActivateBroadcast([]uint16{0, 2, 4})
	if b2.Err() != nil {
		t.Fatalf("small scattered list rejected: %v", b2.Err())
	}
	b3 := NewBuilder(16)
	b3.ActivateBroadcast([]uint16{5, 6, 7, 8, 9, 10, 11, 12})
	if b3.Err() != nil {
		t.Fatalf("contiguous run rejected: %v", b3.Err())
	}
	prog, err := b3.Program()
	if err != nil || len(prog) != 1 || !prog[0].Ranged {
		t.Fatalf("contiguous run should compile to one ranged ACT: %v %v", prog, err)
	}
}

func TestGateCountTracksGates(t *testing.T) {
	b := NewBuilder(64)
	activateAll(b)
	x, y := b.Alloc(0), b.Alloc(0)
	b.XOR(x, y)
	if b.GateCount() != 3 {
		t.Errorf("XOR gate count = %d, want 3", b.GateCount())
	}
	if b.Len() != 1+2*3 { // ACT + (preset+logic) per gate
		t.Errorf("instruction count = %d", b.Len())
	}
}

func TestMulFixedSignedByUnsigned(t *testing.T) {
	const w = 12
	b := NewBuilder(testRows)
	activateAll(b)
	x := b.AllocWord(w, 0) // two's complement
	y := b.AllocWord(4, 0) // unsigned
	prod := b.MulFixed(x, y)
	if prod.Len() != w {
		t.Fatalf("product width %d, want %d", prod.Len(), w)
	}
	r := newRig(t, b)
	rng := rand.New(rand.NewSource(10))
	mask := uint64(1<<w - 1)
	for trial := 0; trial < 16; trial++ {
		vals := make([][2]int64, testCols)
		for col := range vals {
			sx := int64(rng.Intn(512) - 256) // signed
			uy := int64(rng.Intn(16))
			vals[col] = [2]int64{sx, uy}
			r.load(col, x, uint64(sx)&mask)
			r.load(col, y, uint64(uy))
		}
		r.run()
		for col, v := range vals {
			want := uint64(v[0]*v[1]) & mask
			if got := r.read(col, prod); got != want {
				t.Fatalf("%d * %d = %#x, want %#x", v[0], v[1], got, want)
			}
		}
	}
}

// TestCrossColumnReduction exercises the horizontal datapath (Section
// VI): two columns each hold a partial sum; a read/rotated-write pair
// moves column 1's partial into column 0, where a ripple add merges
// them — the "partial sums moved, via reads and writes, to a single
// column".
func TestCrossColumnReduction(t *testing.T) {
	b := NewBuilder(testRows)
	activateAll(b)
	p := b.AllocWord(8, 0) // each column's partial sum
	// Shift every column's copy of p one column to the right; column 0
	// then sees column testCols-1... we want column 0 to receive column
	// 1, so rotate by testCols-1.
	q := b.MoveWord(0, p, testCols-1)
	// Merge in column 0 only.
	b.ActivateBroadcast([]uint16{0})
	sum := b.AddWords(p, q)
	r := newRig(t, b)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		v0, v1 := uint64(rng.Intn(256)), uint64(rng.Intn(256))
		r.load(0, p, v0)
		r.load(1, p, v1)
		r.run()
		if got := r.read(0, sum); got != v0+v1 {
			t.Fatalf("cross-column %d + %d = %d, want %d", v0, v1, got, v0+v1)
		}
	}
}

func TestMoveRowsValidates(t *testing.T) {
	b := NewBuilder(16)
	b.MoveRows(0, []int{1, 2}, []int{3}, 1)
	if b.Err() == nil {
		t.Fatalf("mismatched move lengths accepted")
	}
}

// TestTreeReductionAcrossColumns merges four per-column partials down to
// one column in log2 steps, the pattern the workload model prices.
func TestTreeReductionAcrossColumns(t *testing.T) {
	b := NewBuilder(testRows)
	activateAll(b)
	p := b.AllocWord(6, 0)
	// Level 1: shift by 2 so columns 0,1 receive columns 2,3.
	q := b.MoveWord(0, p, testCols-2)
	s1 := b.AddWords(p, q) // columns 0,1 hold pairwise sums
	// Level 2: shift by 1 so column 0 receives column 1's pair sum.
	q2 := b.MoveWord(0, s1, testCols-1)
	b.ActivateBroadcast([]uint16{0})
	total := b.AddWords(s1, q2)
	r := newRig(t, b)
	vals := []uint64{13, 7, 55, 21}
	for col, v := range vals {
		r.load(col, p, v)
	}
	r.run()
	if got := r.read(0, total); got != 96 {
		t.Fatalf("tree reduction = %d, want 96", got)
	}
}

func TestNegate(t *testing.T) {
	const w = 10
	b := NewBuilder(testRows)
	activateAll(b)
	x := b.AllocWord(w, 0)
	n := b.Negate(x)
	r := newRig(t, b)
	mask := uint64(1<<w - 1)
	for _, v := range []int64{0, 1, 511, -1 & (1<<w - 1), 300} {
		r.load(0, x, uint64(v)&mask)
		r.run()
		if got := r.read(0, n); got != uint64(-v)&mask {
			t.Fatalf("-%d = %#x, want %#x", v, got, uint64(-v)&mask)
		}
	}
}

func TestMulConstFixed(t *testing.T) {
	const w = 14
	b := NewBuilder(testRows)
	activateAll(b)
	x := b.AllocWord(w, 0)
	outs := map[int64]Word{}
	for _, k := range []int64{0, 1, 3, -5, 11, -128, 127} {
		outs[k] = b.MulConstFixed(x, k)
		if outs[k].Len() != w {
			t.Fatalf("width %d for k=%d", outs[k].Len(), k)
		}
	}
	r := newRig(t, b)
	mask := uint64(1<<w - 1)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 8; trial++ {
		v := int64(rng.Intn(512) - 256) // signed operand
		r.load(0, x, uint64(v)&mask)
		r.run()
		for k, out := range outs {
			want := uint64(v*k) & mask
			if got := r.read(0, out); got != want {
				t.Fatalf("%d * %d = %#x, want %#x", v, k, got, want)
			}
		}
	}
}

func TestAshrFixed(t *testing.T) {
	const w = 12
	b := NewBuilder(testRows)
	activateAll(b)
	x := b.AllocWord(w, 0)
	sh3 := b.AshrFixed(x, 3)
	sh0 := b.AshrFixed(x, 0)
	r := newRig(t, b)
	mask := uint64(1<<w - 1)
	for _, v := range []int64{0, 7, 100, -8, -1, -2048 + 5} {
		r.load(0, x, uint64(v)&mask)
		r.run()
		if got := r.read(0, sh3); got != uint64(v>>3)&mask {
			t.Fatalf("%d >> 3 = %#x, want %#x", v, got, uint64(v>>3)&mask)
		}
		if got := r.read(0, sh0); got != uint64(v)&mask {
			t.Fatalf("%d >> 0 = %#x, want %#x", v, got, uint64(v)&mask)
		}
	}
}

func TestPeakRows(t *testing.T) {
	b := NewBuilder(64)
	if b.PeakRows() != 0 {
		t.Fatalf("fresh builder peak %d", b.PeakRows())
	}
	w := b.AllocWord(8, 0)
	if b.PeakRows() != 8 {
		t.Fatalf("peak %d after 8 allocs", b.PeakRows())
	}
	b.FreeWord(w)
	x := b.Alloc(0)
	_ = x
	if b.PeakRows() != 8 {
		t.Fatalf("peak %d should be a high-water mark", b.PeakRows())
	}
	b.Reserve(63)
	if b.PeakRows() != 8 {
		t.Fatalf("peak %d after reserve (2 live)", b.PeakRows())
	}
	b.AllocWord(10, 0)
	if b.PeakRows() != 12 {
		t.Fatalf("peak %d, want 12", b.PeakRows())
	}
}

// TestHazardAnalysisPredictsReplayBehaviour validates isa.FindWARHazards
// empirically: executing a hazard-free region twice leaves the machine
// exactly as executing it once, while a region with a WAR hazard
// diverges — the ground truth behind MOUSE's one-instruction checkpoint
// interval.
func TestHazardAnalysisPredictsReplayBehaviour(t *testing.T) {
	run := func(prog isa.Program, replay bool) *array.Machine {
		m := array.NewMachine(mtj.ModernSTT(), 1, 16, 2)
		m.Tiles[0].SetBit(0, 0, 1) // region input
		m.Tiles[0].SetBit(2, 0, 1)
		exec := func() {
			c := controller.New(controller.ProgramStore(prog), m)
			if err := c.Run(); err != nil {
				t.Fatal(err)
			}
		}
		exec()
		if replay {
			exec()
		}
		return m
	}
	same := func(a, b *array.Machine) bool {
		for r := 0; r < 16; r++ {
			for c := 0; c < 2; c++ {
				if a.Tiles[0].Bit(r, c) != b.Tiles[0].Bit(r, c) {
					return false
				}
			}
		}
		return true
	}

	clean := isa.Program{
		isa.ActRange(true, 0, 0, 2, 1),
		isa.Preset(1, mtj.AP),
		isa.Logic(mtj.AND2, []int{0, 2}, 1),
		isa.Preset(3, mtj.P),
		isa.Logic(mtj.NOT, []int{1}, 4),
	}
	if hz := isa.FindWARHazards(clean); len(hz) != 0 {
		t.Fatalf("clean program flagged: %v", hz)
	}
	if !same(run(clean, false), run(clean, true)) {
		t.Fatalf("hazard-free region diverged on replay")
	}

	hazardous := isa.Program{
		isa.ActRange(true, 0, 0, 2, 1),
		isa.Preset(1, mtj.AP),
		isa.Logic(mtj.AND2, []int{0, 2}, 1), // reads row 0
		isa.Preset(0, mtj.P),                // clobbers row 0
		isa.Preset(5, mtj.AP),
		isa.Logic(mtj.AND2, []int{0, 2}, 5),
	}
	if hz := isa.FindWARHazards(hazardous); len(hz) == 0 {
		t.Fatalf("hazardous program not flagged")
	}
	if same(run(hazardous, false), run(hazardous, true)) {
		t.Fatalf("flagged region replayed identically — the analysis is too conservative here")
	}
}

// TestReplaySafetyOfCompiledPrograms documents a finding the hazard
// analysis surfaces: because the Builder presets every gate output (and
// scratch reuse re-presets), pure straight-line arithmetic is
// *whole-program* replayable — its only exposed reads are the operand
// rows, which it never overwrites. What breaks replay — and what makes
// the paper's per-instruction checkpointing the safe default — is the
// data-reload pattern real mappings use: re-presetting operand rows with
// the next support vector / weight block clobbers rows earlier
// instructions read.
func TestReplaySafetyOfCompiledPrograms(t *testing.T) {
	// Straight-line arithmetic: one replay-safe region.
	b := NewBuilder(128)
	activateAll(b)
	x := b.AllocWord(6, 0)
	y := b.AllocWord(6, 0)
	b.MulWords(x, y)
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if bounds := isa.SafeCheckpointBoundaries(prog); len(bounds) != 1 {
		t.Fatalf("straight-line multiplier split into %d regions", len(bounds))
	}

	// Data-reload pattern (as in the SVM mappings): operand rows are
	// re-preset between uses → replay-unsafe, multiple regions.
	b2 := NewBuilder(256)
	activateAll(b2)
	x2 := b2.AllocWord(4, 0)
	y2 := b2.AllocWord(4, 0)
	b2.MulWords(x2, y2)
	for _, bit := range x2 { // reload the operand for the "next vector"
		b2.Emit(isa.Preset(bit.Row, mtj.AP))
	}
	b2.MulWords(x2, y2)
	prog2, err := b2.Program()
	if err != nil {
		t.Fatal(err)
	}
	bounds := isa.SafeCheckpointBoundaries(prog2)
	if len(bounds) < 2 {
		t.Fatalf("operand-reload program claims whole-program replayability")
	}
	t.Logf("reload pattern: %d instructions, %d replay-safe regions", len(prog2), len(bounds))
}

func TestSignedLessThan(t *testing.T) {
	const w = 8
	b := NewBuilder(testRows)
	activateAll(b)
	x := b.AllocWord(w, 0)
	y := b.AllocWord(w, 0)
	lt := b.SignedLessThan(x, y)
	r := newRig(t, b)
	mask := uint64(1<<w - 1)
	cases := [][2]int64{{-5, 3}, {3, -5}, {-128, 127}, {127, -128}, {-1, -1}, {0, 0}, {-7, -3}, {-3, -7}, {50, 51}}
	for _, c := range cases {
		r.load(0, x, uint64(c[0])&mask)
		r.load(0, y, uint64(c[1])&mask)
		r.run()
		want := 0
		if c[0] < c[1] {
			want = 1
		}
		if got := r.readBit(0, lt); got != want {
			t.Fatalf("(%d <s %d) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

func TestMux(t *testing.T) {
	const w = 6
	b := NewBuilder(testRows)
	activateAll(b)
	sel := b.Alloc(0)
	a := b.AllocWord(w, 0)
	c := b.AllocWord(w, 1)
	out := b.Mux(sel, a, c)
	r := newRig(t, b)
	for _, s := range []int{0, 1} {
		r.m.Tiles[0].SetBit(sel.Row, 0, s)
		r.load(0, a, 13)
		r.load(0, c, 42)
		r.run()
		want := uint64(13)
		if s == 1 {
			want = 42
		}
		if got := r.read(0, out); got != want {
			t.Fatalf("mux(sel=%d) = %d, want %d", s, got, want)
		}
	}
	b2 := NewBuilder(32)
	b2.ActivateBroadcast([]uint16{0})
	s2 := b2.Alloc(0)
	b2.Mux(s2, b2.AllocWord(3, 0), b2.AllocWord(4, 0))
	if b2.Err() == nil {
		t.Fatalf("width mismatch accepted")
	}
}

func TestDotProduct(t *testing.T) {
	b := NewBuilder(testRows)
	activateAll(b)
	xs := []Word{b.AllocWord(4, 0), b.AllocWord(4, 0), b.AllocWord(4, 0)}
	ys := []Word{b.AllocWord(4, 1), b.AllocWord(4, 1), b.AllocWord(4, 1)}
	dot := b.DotProduct(xs, ys)
	r := newRig(t, b)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		want := uint64(0)
		for j := range xs {
			a, c := uint64(rng.Intn(16)), uint64(rng.Intn(16))
			r.load(0, xs[j], a)
			r.load(0, ys[j], c)
			want += a * c
		}
		r.run()
		if got := r.read(0, dot); got != want {
			t.Fatalf("dot = %d, want %d", got, want)
		}
	}
	b2 := NewBuilder(32)
	b2.DotProduct([]Word{b2.AllocWord(2, 0)}, nil)
	if b2.Err() == nil {
		t.Fatalf("mismatched operand counts accepted")
	}
}
