package compile

// Arithmetic macros (Section VI: "n-bit addition can be implemented by
// performing n full-adds"; dot products, squares, and popcounts are the
// building blocks of the paper's SVM and BNN benchmarks). All macros
// leave their input bits intact unless explicitly documented to take
// ownership; internal scratch is freed as it dies so long chains stay
// within the tile's row budget.

// ConstWord materializes the constant v as a width-bit word, bit i on
// parity (startParity+i)&1 (the alternating layout ripple carries want).
func (b *Builder) ConstWord(v uint64, width, startParity int) Word {
	w := make(Word, width)
	for i := range w {
		w[i] = b.Const(int(v>>i)&1, (startParity+i)&1)
	}
	return w
}

// AllocWord allocates width fresh rows with alternating parity, without
// initializing them (for operand placement by the data loader).
func (b *Builder) AllocWord(width, startParity int) Word {
	w := make(Word, width)
	for i := range w {
		w[i] = b.Alloc((startParity + i) & 1)
	}
	return w
}

// HalfAdd returns (sum, carry) of two bits: 4 gates.
func (b *Builder) HalfAdd(x, y Bit) (sum, carry Bit) {
	sum = b.XOR(x, y)
	carry = b.AND(x, y)
	return sum, carry
}

// FullAdd returns (sum, carry) of three bits: the majority gate computes
// the carry in one operation and two XORs compute the sum — 7 gates when
// parities align (the paper's 9-NAND decomposition is the NAND-only
// equivalent; the MAJ3 form is the native CRAM adder).
func (b *Builder) FullAdd(x, y, cin Bit) (sum, carry Bit) {
	carry = b.MAJ(x, y, cin)
	t := b.XOR(x, y)
	sum = b.XOR(t, cin)
	b.Free(t)
	return sum, carry
}

// addBitConst adds a constant bit (0 or 1) to (x, cin): the degenerate
// full-adder stages used by subtraction's implicit sign extension.
func (b *Builder) addBitConst(x, cin Bit, one bool) (sum, carry Bit) {
	if one {
		return b.XNOR(x, cin), b.OR(x, cin)
	}
	return b.HalfAdd(x, cin)
}

// AddWords returns x+y as a word of width max(len)+1. Inputs are not
// consumed.
func (b *Builder) AddWords(x, y Word) Word {
	n := max(len(x), len(y))
	out := make(Word, 0, n+1)
	var carry Bit
	for i := 0; i < n; i++ {
		xi, yi := wordBit(x, i), wordBit(y, i)
		var s, c Bit
		switch {
		case !carry.ok && yi.ok && xi.ok:
			s, c = b.HalfAdd(xi, yi)
		case !carry.ok && xi.ok:
			s, c = b.Copy(xi), Bit{Row: -1}
		case !carry.ok:
			s, c = b.Copy(yi), Bit{Row: -1}
		case xi.ok && yi.ok:
			s, c = b.FullAdd(xi, yi, carry)
		case xi.ok:
			s, c = b.HalfAdd(xi, carry)
		case yi.ok:
			s, c = b.HalfAdd(yi, carry)
		default:
			s, c = b.Copy(carry), Bit{Row: -1}
		}
		if carry.ok {
			b.Free(carry)
		}
		out = append(out, s)
		carry = c
	}
	if carry.ok {
		out = append(out, carry)
	} else {
		out = append(out, b.Const(0, nextParity(out)))
	}
	return out
}

// AddShifted returns acc + (x << shift), taking ownership of acc (its low
// bits are reused in the result; its dead bits are freed). x is not
// consumed. The result is wide enough to hold the carry.
func (b *Builder) AddShifted(acc, x Word, shift int) Word {
	n := max(len(acc), shift+len(x))
	out := make(Word, 0, n+1)
	var carry Bit
	for i := 0; i < n; i++ {
		ai := wordBit(acc, i)
		var xi Bit
		if i >= shift {
			xi = wordBit(x, i-shift)
		}
		var s, c Bit
		switch {
		case !carry.ok && !xi.ok && ai.ok:
			// Below the shift point: the accumulator bit passes through.
			out = append(out, ai)
			continue
		case !carry.ok && !xi.ok:
			s, c = b.Const(0, nextParity(out)), Bit{Row: -1}
		case !carry.ok && ai.ok:
			s, c = b.HalfAdd(ai, xi)
		case !carry.ok:
			s, c = b.Copy(xi), Bit{Row: -1}
		case ai.ok && xi.ok:
			s, c = b.FullAdd(ai, xi, carry)
		case ai.ok:
			s, c = b.HalfAdd(ai, carry)
		case xi.ok:
			s, c = b.HalfAdd(xi, carry)
		default:
			s, c = b.Copy(carry), Bit{Row: -1}
		}
		if ai.ok {
			b.Free(ai)
		}
		if carry.ok {
			b.Free(carry)
		}
		out = append(out, s)
		carry = c
	}
	if carry.ok {
		out = append(out, carry)
	}
	return out
}

// AddFixed returns x ± y at the fixed width len(x) (two's complement,
// wrap-around). Subtraction computes x + ¬y + 1; y is zero-extended
// before inversion, so its implicit high bits invert to ones. Neither
// input is consumed.
func (b *Builder) AddFixed(x, y Word, subtract bool) Word {
	out := make(Word, 0, len(x))
	var carry Bit
	if subtract {
		carry = b.Const(1, 1-wordBit(x, 0).Parity())
	}
	for i := range x {
		yi := wordBit(y, i)
		var s, c Bit
		switch {
		case subtract && yi.ok:
			ny := b.NOT(yi)
			if carry.ok {
				s, c = b.FullAdd(x[i], ny, carry)
			} else {
				s, c = b.HalfAdd(x[i], ny)
			}
			b.Free(ny)
		case subtract: // implicit ¬0 = 1
			if carry.ok {
				s, c = b.addBitConst(x[i], carry, true)
			} else {
				s, c = b.NOT(x[i]), b.Copy(x[i])
			}
		case yi.ok && carry.ok:
			s, c = b.FullAdd(x[i], yi, carry)
		case yi.ok:
			s, c = b.HalfAdd(x[i], yi)
		case carry.ok:
			s, c = b.HalfAdd(x[i], carry)
		default:
			s, c = b.Copy(x[i]), Bit{Row: -1}
		}
		if carry.ok {
			b.Free(carry)
		}
		out = append(out, s)
		carry = c
	}
	if carry.ok {
		b.Free(carry) // wrap-around: the carry out is discarded
	}
	return out
}

// MulWords returns x*y (unsigned, shift-add), width len(x)+len(y).
// Inputs are not consumed; Square(x) works because duplicate-operand
// gates fold to copies.
func (b *Builder) MulWords(x, y Word) Word {
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	var acc Word
	for j := range y {
		pp := make(Word, len(x))
		for i := range x {
			pp[i] = b.AND(x[i], y[j])
		}
		if acc == nil {
			acc = pp
			continue
		}
		acc = b.AddShifted(acc, pp, j)
		b.FreeWord(pp)
	}
	// Pad to the canonical width.
	for len(acc) < len(x)+len(y) {
		acc = append(acc, b.Const(0, nextParity(acc)))
	}
	return acc[:len(x)+len(y)]
}

// Square returns x².
func (b *Builder) Square(x Word) Word { return b.MulWords(x, x) }

// MulFixed returns (x*y) mod 2^len(x): x is a two's-complement value at
// its full width, y an unsigned multiplier. Because two's-complement
// arithmetic is arithmetic mod 2^W, this implements signed-by-unsigned
// multiply-accumulate building blocks (e.g. SVM coefficient × squared
// kernel). Inputs are not consumed.
func (b *Builder) MulFixed(x, y Word) Word {
	w := len(x)
	if w == 0 {
		return nil
	}
	acc := b.ConstWord(0, w, wordBit(x, 0).Parity())
	for j := range y {
		if j >= w {
			break
		}
		n := w - j
		pp := make(Word, n)
		for i := 0; i < n; i++ {
			pp[i] = b.AND(x[i], y[j])
		}
		grown := b.AddShifted(acc, pp, j)
		b.FreeWord(pp)
		// Truncate back to the fixed width.
		for i := w; i < len(grown); i++ {
			b.Free(grown[i])
		}
		acc = grown[:w]
	}
	return acc
}

// DotProduct returns Σᵢ xsᵢ·ysᵢ (unsigned), the kernel of the paper's
// SVM benchmarks ("the main computation is effectively performing the
// dot product", Section III). Products accumulate through AddShifted, so
// the result width grows just enough to hold the sum exactly. Inputs are
// not consumed.
func (b *Builder) DotProduct(xs, ys []Word) Word {
	if len(xs) != len(ys) {
		b.fail("DotProduct: %d×%d operands", len(xs), len(ys))
		return nil
	}
	var acc Word
	for j := range xs {
		p := b.MulWords(xs[j], ys[j])
		if acc == nil {
			acc = p
			continue
		}
		acc = b.AddShifted(acc, p, 0)
		b.FreeWord(p)
	}
	return acc
}

// Negate returns -x (two's complement) at x's width. x is not consumed.
func (b *Builder) Negate(x Word) Word {
	zero := b.ConstWord(0, len(x), wordBit(x, 0).Parity())
	out := b.AddFixed(zero, x, true)
	b.FreeWord(zero)
	return out
}

// MulConstFixed returns (x·k) mod 2^len(x) for a signed two's-complement
// x and a compile-time integer constant k, via shift-and-add over k's
// set bits (constants cost nothing to "store": they unroll into the
// instruction stream). x is not consumed.
func (b *Builder) MulConstFixed(x Word, k int64) Word {
	w := len(x)
	if w == 0 {
		return nil
	}
	neg := k < 0
	if neg {
		k = -k
	}
	acc := b.ConstWord(0, w, wordBit(x, 0).Parity())
	for i := 0; i < w && k>>i != 0; i++ {
		if (k>>i)&1 == 0 {
			continue
		}
		// acc += x << i  (mod 2^w): stage through a shifted view of x.
		shifted := make(Word, w)
		var pads Word
		for j := 0; j < i; j++ {
			shifted[j] = b.Const(0, wordBit(acc, j).Parity())
			pads = append(pads, shifted[j])
		}
		copy(shifted[i:], x[:w-i])
		next := b.AddFixed(acc, shifted, false)
		b.FreeWord(acc)
		b.FreeWord(pads)
		acc = next
	}
	if neg {
		n := b.Negate(acc)
		b.FreeWord(acc)
		return n
	}
	return acc
}

// SignExtend returns a fresh copy of the two's-complement value x
// widened to w bits (w ≥ len(x)) by replicating its sign bit. x is not
// consumed.
func (b *Builder) SignExtend(x Word, w int) Word {
	out := make(Word, 0, w)
	for _, bit := range x {
		out = append(out, b.Copy(bit))
	}
	sign := x[len(x)-1]
	for len(out) < w {
		out = append(out, b.Copy(sign))
	}
	return out
}

// AshrFixed returns x arithmetically shifted right by s bits at x's
// width (the fixed-point renormalization after a multiply): low bits
// drop, the sign bit replicates into the top. x is not consumed.
func (b *Builder) AshrFixed(x Word, s int) Word {
	w := len(x)
	if s <= 0 {
		s = 0
	}
	out := make(Word, 0, w)
	for i := s; i < w; i++ {
		out = append(out, b.Copy(x[i]))
	}
	sign := x[w-1]
	for len(out) < w {
		out = append(out, b.Copy(sign))
	}
	return out
}

// PopCount returns the number of set bits among bits as a word. Input
// bits are not consumed.
func (b *Builder) PopCount(bits []Bit) Word {
	if len(bits) == 0 {
		return Word{b.Const(0, 0)}
	}
	// Binary-tree reduction: sum pairs of equal-width words.
	words := make([]Word, len(bits))
	for i, bit := range bits {
		words[i] = Word{b.Copy(bit)}
	}
	for len(words) > 1 {
		var next []Word
		for i := 0; i+1 < len(words); i += 2 {
			s := b.AddWords(words[i], words[i+1])
			b.FreeWord(words[i])
			b.FreeWord(words[i+1])
			next = append(next, s)
		}
		if len(words)%2 == 1 {
			next = append(next, words[len(words)-1])
		}
		words = next
	}
	return words[0]
}

// LessThan returns the bit x < y (unsigned). Inputs are not consumed.
func (b *Builder) LessThan(x, y Word) Bit {
	// x - y at width max+1: the MSB is the borrow (sign) bit.
	w := max(len(x), len(y)) + 1
	xe := b.extend(x, w)
	diff := b.AddFixed(xe, y, true)
	msb := b.Copy(diff[len(diff)-1])
	b.FreeWord(diff)
	b.freeExtension(xe, x)
	return msb
}

// SignedLessThan returns the bit x <ₛ y for two's-complement words of
// equal width: the sign of (x − y) computed one bit wider so the
// subtraction cannot wrap. Inputs are not consumed.
func (b *Builder) SignedLessThan(x, y Word) Bit {
	w := max(len(x), len(y)) + 1
	xe := b.SignExtend(x, w)
	ye := b.SignExtend(y, w)
	diff := b.AddFixed(xe, ye, true)
	msb := b.Copy(diff[len(diff)-1])
	b.FreeWord(xe)
	b.FreeWord(ye)
	b.FreeWord(diff)
	return msb
}

// Mux returns sel ? onTrue : onFalse, bit-wise:
// out = (sel ∧ onTrue) ∨ (¬sel ∧ onFalse). Words must be equal width.
// Inputs are not consumed.
func (b *Builder) Mux(sel Bit, onFalse, onTrue Word) Word {
	if len(onFalse) != len(onTrue) {
		b.fail("Mux: width mismatch %d vs %d", len(onFalse), len(onTrue))
		return nil
	}
	notSel := b.NOT(sel)
	out := make(Word, len(onTrue))
	for i := range out {
		t := b.AND(sel, onTrue[i])
		f := b.AND(notSel, onFalse[i])
		out[i] = b.OR(t, f)
		b.Free(t, f)
	}
	b.Free(notSel)
	return out
}

// GreaterEq returns the bit x ≥ y (unsigned).
func (b *Builder) GreaterEq(x, y Word) Bit {
	lt := b.LessThan(x, y)
	ge := b.NOT(lt)
	b.Free(lt)
	return ge
}

// extend zero-extends x to width w with constant bits (shared storage
// with x for the low bits).
func (b *Builder) extend(x Word, w int) Word {
	if len(x) >= w {
		return x[:w]
	}
	out := append(Word{}, x...)
	for len(out) < w {
		out = append(out, b.Const(0, nextParity(out)))
	}
	return out
}

// freeExtension frees the padding bits extend added beyond the original.
func (b *Builder) freeExtension(extended, original Word) {
	for i := len(original); i < len(extended); i++ {
		b.Free(extended[i])
	}
}

// wordBit returns bit i of w, or an invalid bit beyond its width.
func wordBit(w Word, i int) Bit {
	if i < len(w) {
		return w[i]
	}
	return Bit{Row: -1}
}

// nextParity picks the alternating parity for the next appended bit.
func nextParity(w Word) int {
	if len(w) == 0 {
		return 0
	}
	return 1 - w[len(w)-1].Parity()
}
