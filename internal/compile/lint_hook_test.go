package compile

import (
	"os"
	"strings"
	"testing"

	"mouse/internal/isa"
	"mouse/internal/lint"
)

// TestMain installs the lint self-check for the whole suite: every
// program the builder successfully compiles in any of these tests —
// the arithmetic macros, the random expression DAGs, the examples —
// must come out free of error-severity findings (un-preset gate
// outputs, dead computes, undefined buffer stores). This is the
// compiler-side enforcement of the paper's mapping discipline.
func TestMain(m *testing.M) {
	ProgramCheck = lintCheck
	os.Exit(m.Run())
}

// lintCheck adapts the lint package to the ProgramCheck hook: the
// deployment context becomes lint options (zero fields fall back to
// lint's defaults — partial geometry works because Options defaults
// each zero dimension independently).
func lintCheck(p isa.Program, ctx CheckContext) error {
	return lint.Lint(p, lint.Options{
		Geometry:           lint.Geometry{Tiles: ctx.Tiles, Rows: ctx.Rows, Cols: ctx.Cols},
		Config:             ctx.Cfg,
		CheckpointInterval: ctx.CheckpointInterval,
	}).Err()
}

func TestProgramCheckRejects(t *testing.T) {
	// A builder-constructed program that skips activation: the self-check
	// must turn the lint error into a compile error.
	saved := ProgramCheck
	defer func() { ProgramCheck = saved }()
	ProgramCheck = lintCheck

	b := NewBuilder(testRows)
	x := b.Reserve(0)
	y := b.Reserve(2)
	b.NAND(x, y) // preset + gate with no ACT anywhere
	if _, err := b.Program(); err == nil {
		t.Fatal("un-activated program passed the self-check")
	} else if !strings.Contains(err.Error(), "self-check") {
		t.Fatalf("error does not come from the self-check: %v", err)
	}

	// The same circuit with activation compiles cleanly.
	b = NewBuilder(testRows)
	activateAll(b)
	x = b.Reserve(0)
	y = b.Reserve(2)
	b.NAND(x, y)
	if _, err := b.Program(); err != nil {
		t.Fatalf("activated program rejected: %v", err)
	}
}
