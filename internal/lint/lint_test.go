package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/sim"
)

// cleanProgram is the idiomatic preset-then-gate sequence (the shape of
// cmd/mouseasm/testdata/pair_nand.s): activation first, every gate
// output preset with the gate's required polarity, the buffer loaded
// before it is stored.
func cleanProgram() isa.Program {
	return isa.Program{
		isa.ActRange(true, 0, 0, 4, 1),
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NAND2, []int{0, 2}, 1),
		isa.Preset(4, mtj.P),
		isa.Logic(mtj.NOT, []int{1}, 4),
		isa.Read(0, 4),
		isa.Write(1, 5),
	}
}

func sevCounts(t *testing.T, r Report) (errors, warnings, infos int) {
	t.Helper()
	return r.Count(Error), r.Count(Warning), r.Count(Info)
}

func TestCleanProgramHasNoErrorsOrWarnings(t *testing.T) {
	r := Lint(cleanProgram(), Options{})
	e, w, _ := sevCounts(t, r)
	if e != 0 || w != 0 {
		t.Fatalf("clean program flagged: %+v", r.Diagnostics)
	}
	if r.HasErrors() {
		t.Error("HasErrors on a clean program")
	}
	if err := r.Err(); err != nil {
		t.Errorf("Err = %v", err)
	}
	// The operand rows 0 and 2 really are read-before-written; that is
	// surfaced at info severity, once per row.
	if got := len(r.ByRule("def-use")); got != 2 {
		t.Errorf("expected 2 preloaded-operand infos, got %d: %+v", got, r.ByRule("def-use"))
	}
}

func TestBoundsRule(t *testing.T) {
	g := Geometry{Tiles: 2, Rows: 16, Cols: 8}
	prog := isa.Program{
		isa.ActList(false, 0, []uint16{9}),    // column beyond 8
		isa.Read(5, 3),                        // tile beyond 2
		isa.Preset(20, mtj.P),                 // row beyond 16
		isa.Logic(mtj.NAND2, []int{1, 3}, 18), // output row beyond 16
		isa.WriteRot(0, 1, 12),                // rotation wraps at 8 columns
		isa.ActRange(false, 3, 10, 4, 1),      // tile and start column beyond geometry
	}
	r := Lint(prog, Options{Geometry: g, Rules: []string{"bounds"}})
	if got := len(r.ByRule("bounds")); got != 7 {
		t.Fatalf("expected 7 bounds findings, got %d: %+v", got, r.Diagnostics)
	}
	for _, d := range r.ByRule("bounds") {
		if d.Index == 4 && d.Severity != Warning {
			t.Errorf("rotation wrap should be a warning: %+v", d)
		}
		if d.Index != 4 && d.Severity != Error {
			t.Errorf("out-of-bounds reference should be an error: %+v", d)
		}
	}
	// The same program against the full ISA geometry is bounds-clean.
	r = Lint(prog, Options{Rules: []string{"bounds"}})
	if got := len(r.ByRule("bounds")); got != 0 {
		t.Errorf("full geometry flagged %d bounds findings: %+v", got, r.Diagnostics)
	}
}

func TestDefUseBufferBeforeRead(t *testing.T) {
	r := Lint(isa.Program{isa.Write(0, 1)}, Options{Rules: []string{"def-use"}})
	if e, _, _ := sevCounts(t, r); e != 1 {
		t.Fatalf("undefined-buffer write not flagged: %+v", r.Diagnostics)
	}
	if !strings.Contains(r.Diagnostics[0].Message, "before any read") {
		t.Errorf("message: %q", r.Diagnostics[0].Message)
	}
	// Read-then-write is the legal order.
	r = Lint(isa.Program{isa.Read(0, 0), isa.Write(0, 1)}, Options{Rules: []string{"def-use"}})
	if r.HasErrors() {
		t.Errorf("RD-then-WR flagged: %+v", r.Diagnostics)
	}
}

func TestDefUseGatePresetDiscipline(t *testing.T) {
	act := isa.ActRange(true, 0, 0, 4, 1)
	cases := []struct {
		name string
		prog isa.Program
		sev  Severity
		want string
	}{
		{
			name: "missing preset",
			prog: isa.Program{act, isa.Logic(mtj.NAND2, []int{0, 2}, 1)},
			sev:  Error,
			want: "not preset",
		},
		{
			name: "wrong polarity",
			prog: isa.Program{act, isa.Preset(1, mtj.AP), isa.Logic(mtj.NAND2, []int{0, 2}, 1)},
			sev:  Error,
			want: "requires PRE0",
		},
		{
			name: "stale gate output",
			prog: isa.Program{
				act,
				isa.Preset(1, mtj.P), isa.Logic(mtj.NAND2, []int{0, 2}, 1),
				isa.Logic(mtj.NOR2, []int{0, 2}, 1),
			},
			sev:  Error,
			want: "previous gate result",
		},
		{
			name: "activation changed after preset",
			prog: isa.Program{
				act,
				isa.Preset(1, mtj.P),
				isa.ActRange(true, 0, 0, 8, 1),
				isa.Logic(mtj.NAND2, []int{0, 2}, 1),
			},
			sev:  Warning,
			want: "activation changed",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Lint(tc.prog, Options{Rules: []string{"def-use"}})
			found := false
			for _, d := range r.Diagnostics {
				if d.Severity == tc.sev && strings.Contains(d.Message, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("expected %v diagnostic containing %q, got %+v", tc.sev, tc.want, r.Diagnostics)
			}
		})
	}
	// The preset-then-gate idiom itself is clean.
	r := Lint(cleanProgram(), Options{Rules: []string{"def-use"}})
	if e, w, _ := sevCounts(t, r); e != 0 || w != 0 {
		t.Errorf("idiomatic preset-then-gate flagged: %+v", r.Diagnostics)
	}
}

func TestDeadWriteRule(t *testing.T) {
	act := isa.ActRange(true, 0, 0, 4, 1)
	// A preset overwritten by another preset with no read between.
	r := Lint(isa.Program{
		act,
		isa.Preset(1, mtj.AP),
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NAND2, []int{0, 2}, 1),
	}, Options{Rules: []string{"dead-write"}})
	dw := r.ByRule("dead-write")
	if len(dw) != 1 || dw[0].Index != 1 || dw[0].Severity != Warning {
		t.Fatalf("dead preset not flagged at index 1: %+v", r.Diagnostics)
	}

	// A buffer load discarded by a second load.
	r = Lint(isa.Program{
		isa.Read(0, 0),
		isa.Read(0, 2),
		isa.Write(1, 1),
	}, Options{Rules: []string{"dead-write"}})
	dw = r.ByRule("dead-write")
	if len(dw) != 1 || dw[0].Index != 0 || !strings.Contains(dw[0].Message, "memory buffer") {
		t.Fatalf("dead buffer load not flagged: %+v", r.Diagnostics)
	}

	// Negative: preset-then-gate is not dead (the gate reads its preset),
	// and an intervening ACT makes coverage uncertain, so no finding.
	if r := Lint(cleanProgram(), Options{Rules: []string{"dead-write"}}); len(r.Diagnostics) != 0 {
		t.Errorf("clean program flagged: %+v", r.Diagnostics)
	}
	r = Lint(isa.Program{
		act,
		isa.Preset(1, mtj.AP),
		isa.ActRange(true, 0, 4, 4, 1),
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NAND2, []int{0, 2}, 1),
	}, Options{Rules: []string{"dead-write"}})
	if len(r.ByRule("dead-write")) != 0 {
		t.Errorf("ACT-separated presets flagged as dead: %+v", r.Diagnostics)
	}
}

func TestActivationRule(t *testing.T) {
	// Preset with no ACT anywhere.
	r := Lint(isa.Program{isa.Preset(1, mtj.P)}, Options{Rules: []string{"activation"}})
	if e, _, _ := sevCounts(t, r); e != 1 {
		t.Fatalf("preset without ACT not flagged: %+v", r.Diagnostics)
	}

	// An ACT replaced before anything uses it configured nothing.
	r = Lint(isa.Program{
		isa.ActRange(true, 0, 0, 4, 1),
		isa.ActRange(true, 0, 0, 8, 1),
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NOT, []int{0}, 1),
	}, Options{Rules: []string{"activation"}})
	dead := r.ByRule("activation")
	if len(dead) != 1 || dead[0].Index != 0 || dead[0].Severity != Warning {
		t.Fatalf("replaced-before-use ACT not flagged at index 0: %+v", r.Diagnostics)
	}

	// Ranged activation walking off the machine edge: partially and
	// totally out of geometry.
	g := Geometry{Tiles: 2, Rows: 16, Cols: 4}
	r = Lint(isa.Program{
		isa.ActRange(true, 0, 2, 5, 4), // columns 2,6,10,14,18 → only 2 inside
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NOT, []int{0}, 1),
	}, Options{Geometry: g, Rules: []string{"activation"}})
	part := r.ByRule("activation")
	if len(part) != 1 || !strings.Contains(part[0].Message, "only 1 of 5") {
		t.Fatalf("partial activation not flagged: %+v", r.Diagnostics)
	}
	r = Lint(isa.Program{
		isa.ActList(true, 0, []uint16{6, 7}),
		isa.Preset(1, mtj.P),
	}, Options{Geometry: g, Rules: []string{"activation"}})
	found := 0
	for _, d := range r.ByRule("activation") {
		if strings.Contains(d.Message, "activates no columns") {
			found++
		}
		if strings.Contains(d.Message, "no live column activation") && d.Severity != Error {
			t.Errorf("dead compute should be an error: %+v", d)
		}
	}
	if found != 1 {
		t.Fatalf("empty activation not flagged: %+v", r.Diagnostics)
	}

	// Negative: activate-then-use is clean.
	if r := Lint(cleanProgram(), Options{Rules: []string{"activation"}}); len(r.Diagnostics) != 0 {
		t.Errorf("clean program flagged: %+v", r.Diagnostics)
	}
}

func TestReplayRule(t *testing.T) {
	hazardous := isa.Program{isa.Read(0, 0), isa.Write(0, 0)}
	// Per-instruction checkpointing (the MOUSE design point): no regions
	// to check, trivially safe.
	r := Lint(hazardous, Options{Rules: []string{"replay"}})
	if len(r.Diagnostics) != 0 {
		t.Fatalf("interval 1 flagged: %+v", r.Diagnostics)
	}
	// Thinned checkpoints: the read-modify-write pair inside one region
	// is the canonical WAR hazard.
	r = Lint(hazardous, Options{CheckpointInterval: 2, Rules: []string{"replay"}})
	rd := r.ByRule("replay")
	if len(rd) != 1 || rd[0].Severity != Error || rd[0].Index != 1 {
		t.Fatalf("WAR hazard not flagged: %+v", r.Diagnostics)
	}
	if !strings.Contains(rd[0].Message, "[0,2)") {
		t.Errorf("message should name the region: %q", rd[0].Message)
	}
	// The same pair split by a checkpoint boundary replays safely.
	safe := isa.Program{isa.Read(0, 0), isa.Write(0, 1)}
	r = Lint(safe, Options{CheckpointInterval: 2, Rules: []string{"replay"}})
	if len(r.Diagnostics) != 0 {
		t.Errorf("safe region flagged: %+v", r.Diagnostics)
	}
}

// windowFor sizes the capacitor so one full discharge window holds
// exactly factor × the program's costliest operation.
func windowFor(t *testing.T, prog isa.Program, g Geometry, factor float64) *mtj.Config {
	t.Helper()
	cfg := *mtj.ModernSTT()
	m := energy.NewModel(&cfg)
	if g.Cols < m.RowBits {
		m.RowBits = g.Cols
	}
	rep := sim.CheckTermination(sim.StreamFromProgram(prog, g.Tiles), m)
	if rep.MaxOpJ <= 0 {
		t.Fatal("fixture program has no energy cost")
	}
	want := factor * rep.MaxOpJ
	cfg.CapC *= want / rep.WindowJ
	return &cfg
}

func TestEnergyRule(t *testing.T) {
	prog := cleanProgram()
	g := Geometry{Tiles: 2, Rows: 1024, Cols: 1024}

	// Default capacitor: orders of magnitude of headroom, no findings.
	r := Lint(prog, Options{Geometry: g, Rules: []string{"energy"}})
	if len(r.Diagnostics) != 0 {
		t.Fatalf("default window flagged: %+v", r.Diagnostics)
	}

	// A window smaller than the costliest op can never finish it.
	r = Lint(prog, Options{Geometry: g, Config: windowFor(t, prog, g, 0.5), Rules: []string{"energy"}})
	en := r.ByRule("energy")
	if len(en) != 1 || en[0].Severity != Error || !strings.Contains(en[0].Message, "forward progress") {
		t.Fatalf("non-terminating program not flagged: %+v", r.Diagnostics)
	}

	// A window that barely fits is fragile.
	r = Lint(prog, Options{Geometry: g, Config: windowFor(t, prog, g, 1.2), Rules: []string{"energy"}})
	en = r.ByRule("energy")
	if len(en) != 1 || en[0].Severity != Warning || !strings.Contains(en[0].Message, "headroom") {
		t.Fatalf("fragile headroom not flagged: %+v", r.Diagnostics)
	}
}

func TestInvalidInstructionsReportedNotAnalyzed(t *testing.T) {
	prog := isa.Program{
		{Kind: isa.Kind(99)},
		{Kind: isa.KindLogic, Gate: mtj.GateKind(200), Out: 1},
		isa.Read(0, 0),
	}
	r := Lint(prog, Options{CheckpointInterval: 4})
	if got := len(r.ByRule("invalid")); got != 2 {
		t.Fatalf("expected 2 invalid findings, got %d: %+v", got, r.Diagnostics)
	}
	if !r.HasErrors() {
		t.Error("invalid instructions must be errors")
	}
}

func TestLineMapAndSorting(t *testing.T) {
	prog := isa.Program{isa.Write(0, 1)}
	r := Lint(prog, Options{LineMap: []int{7}, Rules: []string{"def-use"}})
	if len(r.Diagnostics) == 0 || r.Diagnostics[0].Line != 7 {
		t.Fatalf("line map not applied: %+v", r.Diagnostics)
	}
	if s := r.Diagnostics[0].String(); !strings.HasPrefix(s, "line 7: error:") {
		t.Errorf("String = %q", s)
	}

	// Diagnostics come out ordered by instruction index.
	prog = isa.Program{
		isa.Preset(1, mtj.P),            // activation error at 0
		isa.Write(0, 1),                 // def-use error at 1
		isa.Logic(mtj.NOT, []int{0}, 1), // several findings at 2
	}
	r = Lint(prog, Options{})
	last := -1
	for _, d := range r.Diagnostics {
		if d.Index < last {
			t.Fatalf("diagnostics out of order: %+v", r.Diagnostics)
		}
		last = d.Index
	}
}

func TestRulesRegistryAndFilter(t *testing.T) {
	ids := make(map[string]bool)
	for _, rule := range Rules() {
		if rule.Doc == "" {
			t.Errorf("rule %q has no doc", rule.ID)
		}
		ids[rule.ID] = true
	}
	for _, want := range []string{"bounds", "def-use", "dead-write", "activation", "replay", "energy"} {
		if !ids[want] {
			t.Errorf("rule %q not registered", want)
		}
	}
	// Filtering runs only the named rules.
	prog := isa.Program{isa.Preset(1, mtj.P), isa.Write(0, 1)}
	r := Lint(prog, Options{Rules: []string{"activation"}})
	for _, d := range r.Diagnostics {
		if d.Rule != "activation" {
			t.Errorf("filter leaked rule %q: %+v", d.Rule, d)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := Lint(isa.Program{isa.Write(0, 1)}, Options{LineMap: []int{3}})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(back.Diagnostics) != len(r.Diagnostics) {
		t.Fatalf("round trip lost diagnostics: %d vs %d", len(back.Diagnostics), len(r.Diagnostics))
	}
	if back.Diagnostics[0].Severity != Error || back.Diagnostics[0].Line != 3 {
		t.Errorf("round trip mangled: %+v", back.Diagnostics[0])
	}
	// An empty report still emits a JSON object with an array.
	buf.Reset()
	if err := (Report{}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"diagnostics\": []") {
		t.Errorf("empty report JSON: %s", buf.String())
	}
}
