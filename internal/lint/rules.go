package lint

import (
	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/sim"
)

// The built-in rule suite. The dataflow rules (def-use, dead-write,
// activation, replay, wce) consume the pass's shared fixpoint abstract
// interpretation (interp.go), which accounts for the loop edge — MOUSE
// programs repeat forever (Section IV-B) — and for checkpoint-region
// replay. The paper sections each rule enforces are catalogued in
// DESIGN.md.
func init() {
	Register(Rule{ID: "bounds", Doc: "tile/row/column references fit the deployed array geometry", Check: checkBounds})
	Register(Rule{ID: "def-use", Doc: "values are defined before use: buffer read before written, gate outputs preset on every pass", Check: checkDefUse})
	Register(Rule{ID: "dead-write", Doc: "no value is overwritten before anything reads it, including across the loop edge", Check: checkDeadWrite})
	Register(Rule{ID: "activation", Doc: "column activations exist, are non-empty, and are used before replaced", Check: checkActivation})
	Register(Rule{ID: "replay", Doc: "checkpoint regions are WAR- and activation-hazard-free and safe to replay", Check: checkReplay})
	Register(Rule{ID: "energy", Doc: "every instruction fits one capacitor discharge window", Check: checkEnergy})
	Register(Rule{ID: "wce", Doc: "every checkpoint region's worst-case energy fits one discharge window", Check: checkWCE})
}

// checkBounds validates addresses against the deployed geometry. The
// ISA validator bounds them to the 512×1024×1024 address space; a real
// machine is smaller, and a reference beyond it either errors out or
// silently reads nothing at inference time.
func checkBounds(p *Pass) {
	g := p.Opts.Geometry
	for i := range p.Prog {
		if !p.Valid[i] {
			continue
		}
		in := &p.Prog[i]
		badRow := func(row uint16, what string) {
			if int(row) >= g.Rows {
				p.Report("bounds", i, Error, "%s row %d is beyond the %d-row geometry", what, row, g.Rows)
			}
		}
		switch in.Kind {
		case isa.KindRead, isa.KindWrite:
			if int(in.Tile) >= g.Tiles {
				p.Report("bounds", i, Error, "tile %d is beyond the %d-tile geometry", in.Tile, g.Tiles)
			}
			badRow(in.Row, in.Kind.String())
			if in.Kind == isa.KindWrite && in.Rot != 0 && int(in.Rot) >= g.Cols {
				p.Report("bounds", i, Warning, "rotation %d wraps at the %d-column machine width", in.Rot, g.Cols)
			}
		case isa.KindPreset:
			badRow(in.Row, "preset")
		case isa.KindLogic:
			for k := 0; k < in.NumInputs(); k++ {
				badRow(in.In[k], "input")
			}
			badRow(in.Out, "output")
		case isa.KindAct:
			if !in.Broadcast && int(in.Tile) >= g.Tiles {
				p.Report("bounds", i, Error, "tile %d is beyond the %d-tile geometry", in.Tile, g.Tiles)
			}
			if in.Ranged {
				if int(in.Start) >= g.Cols {
					p.Report("bounds", i, Error, "start column %d is beyond the %d-column geometry", in.Start, g.Cols)
				}
			} else {
				for _, c := range in.Cols {
					if int(c) >= g.Cols {
						p.Report("bounds", i, Error, "column %d is beyond the %d-column geometry", c, g.Cols)
					}
				}
			}
		}
	}
}

// checkDefUse enforces the define-before-use discipline of Sections II-B
// and VI over every pass of the loop, using the fixpoint entry states:
// a gate's output row must hold the gate's preset state when the gate
// fires (threshold switching is conditional on it) — on the first pass
// AND on every later one, where the previous pass's leftovers are what
// the row holds; the memory buffer must be loaded by a read before a
// write stores it; and reads of rows no instruction ever writes are
// surfaced as infos (they are usually intentional preloaded operands,
// but a typo'd row number looks exactly the same).
func checkDefUse(p *Pass) {
	// Whole-program may-write sets for the preloaded-operand heuristic: a
	// row counts as program-written if any pass writes it, wherever in
	// the stream that write sits relative to the use.
	broadcastWritten := make(map[int]bool) // presets and gate outputs
	tileWritten := make(map[[2]int]bool)   // buffer writes to (tile, row)
	rowTileWritten := make(map[int]bool)   // buffer writes to the row in any tile
	for i := range p.Prog {
		if !p.Valid[i] {
			continue
		}
		switch in := &p.Prog[i]; in.Kind {
		case isa.KindPreset:
			broadcastWritten[int(in.Row)] = true
		case isa.KindLogic:
			broadcastWritten[int(in.Out)] = true
		case isa.KindWrite:
			tileWritten[[2]int{int(in.Tile), int(in.Row)}] = true
			rowTileWritten[int(in.Row)] = true
		}
	}

	reportedUndef := make(map[int]bool) // one preloaded-operand info per row
	undefInfo := func(i, row int, what string) {
		if reportedUndef[row] {
			return
		}
		reportedUndef[row] = true
		p.Report("def-use", i, Info, "%s row %d was never written by this program (preloaded operand?)", what, row)
	}

	it := p.interp()
	for i := range p.Prog {
		if !p.Valid[i] {
			continue
		}
		in := &p.Prog[i]
		s := it.entryAt(i)
		switch in.Kind {
		case isa.KindRead:
			if !broadcastWritten[int(in.Row)] && !tileWritten[[2]int{int(in.Tile), int(in.Row)}] {
				undefInfo(i, int(in.Row), "read")
			}
		case isa.KindWrite:
			if s.buf != bufDef {
				p.Report("def-use", i, Error, "writes the memory buffer to tile %d row %d before any read loads the buffer", in.Tile, in.Row)
			}
		case isa.KindLogic:
			spec := mtj.Spec(in.Gate)
			for k := 0; k < spec.Inputs; k++ {
				r := int(in.In[k])
				if !broadcastWritten[r] && !rowTileWritten[r] {
					undefInfo(i, r, "input")
				}
			}
			out := int(in.Out)
			switch d := s.rows[out]; {
			case d.val == rowBottom:
				p.Report("def-use", i, Error, "output row %d is not preset before %s fires (gate switching depends on the preset state)", out, in.Gate)
			case d.val == rowTop:
				p.Report("def-use", i, Error, "output row %d is not preset on every pass before %s fires (uninitialized on the first pass, or a stale value left by the previous pass)", out, in.Gate)
			case d.val == rowGated:
				p.Report("def-use", i, Error, "output row %d still holds a previous gate result when %s fires; preset it first", out, in.Gate)
			case d.state != spec.Preset:
				p.Report("def-use", i, Error, "output row %d is preset with PRE%d but %s requires PRE%d", out, d.state.Bit(), in.Gate, spec.Preset.Bit())
			case !d.curAct:
				p.Report("def-use", i, Warning, "activation changed between the preset of row %d and %s; newly active columns are not preset", out, in.Gate)
			}
		}
	}
}

// locOverlap reports whether two Effects locations can alias
// (mirroring the hazard analysis's model).
func locOverlap(a, b [2]int) bool {
	if a[0] == isa.LocBuffer || b[0] == isa.LocBuffer {
		return a[0] == b[0]
	}
	if a[1] != b[1] {
		return false
	}
	return a[0] == isa.LocAnyTile || b[0] == isa.LocAnyTile || a[0] == b[0]
}

// locCovers reports whether a later write w2 definitely replaces
// everything an earlier write w1 stored.
func locCovers(w2, w1 [2]int) bool {
	if w1[0] == isa.LocBuffer || w2[0] == isa.LocBuffer {
		return w1[0] == w2[0]
	}
	if w1[1] != w2[1] {
		return false
	}
	if w1[0] == isa.LocAnyTile {
		return w2[0] == isa.LocAnyTile
	}
	return w2[0] == isa.LocAnyTile || w2[0] == w1[0]
}

// checkDeadWrite finds values overwritten before any instruction reads
// them — wasted energy and wasted discharge-window budget on a platform
// where every write is paid for twice (the operation and its wear).
// Array values still live at the end of the stream are never flagged:
// they may be the program's outputs, which the host reads. The memory
// buffer is different — it is controller state no host observes — so a
// buffer load still pending at the end of the stream is checked against
// the *next* pass of the loop: if the program's own restart overwrites
// it before storing it, the load was dead. An intervening ACT makes
// broadcast-row coverage uncertain (the two writes may land on
// different column sets), so such pending writes are conservatively
// treated as read.
func checkDeadWrite(p *Pass) {
	type pending struct {
		idx  int
		loc  [2]int
		read bool
	}
	var pendings []pending
	for i := range p.Prog {
		if !p.Valid[i] {
			continue
		}
		in := &p.Prog[i]
		if in.Kind == isa.KindAct {
			for k := range pendings {
				if pendings[k].loc[0] == isa.LocAnyTile {
					pendings[k].read = true
				}
			}
			continue
		}
		reads, writes := in.Effects()
		for _, r := range reads {
			for k := range pendings {
				if locOverlap(pendings[k].loc, r) {
					pendings[k].read = true
				}
			}
		}
		for _, w := range writes {
			kept := pendings[:0]
			for _, pd := range pendings {
				if locCovers(w, pd.loc) {
					if !pd.read {
						switch {
						case pd.loc[0] == isa.LocBuffer:
							p.Report("dead-write", pd.idx, Warning, "the memory buffer loaded here is overwritten at instruction %d before any write stores it", i)
						case pd.loc[0] == isa.LocAnyTile:
							p.Report("dead-write", pd.idx, Warning, "row %d written here is overwritten at instruction %d before anything reads it", pd.loc[1], i)
						default:
							p.Report("dead-write", pd.idx, Warning, "tile %d row %d written here is overwritten at instruction %d before anything reads it", pd.loc[0], pd.loc[1], i)
						}
					}
					continue // replaced either way
				}
				kept = append(kept, pd)
			}
			pendings = append(kept, pending{idx: i, loc: w})
		}
	}

	// Loop edge: walk the stream once more with the surviving pendings.
	// Only buffer pendings are reportable here (array state at stream end
	// may be host-visible output); no new pendings accumulate, so this
	// terminates the moment the carried set drains.
	for i := range p.Prog {
		if len(pendings) == 0 {
			break
		}
		if !p.Valid[i] {
			continue
		}
		in := &p.Prog[i]
		if in.Kind == isa.KindAct {
			for k := range pendings {
				if pendings[k].loc[0] == isa.LocAnyTile {
					pendings[k].read = true
				}
			}
			continue
		}
		reads, writes := in.Effects()
		for _, r := range reads {
			for k := range pendings {
				if locOverlap(pendings[k].loc, r) {
					pendings[k].read = true
				}
			}
		}
		for _, w := range writes {
			kept := pendings[:0]
			for _, pd := range pendings {
				if locCovers(w, pd.loc) {
					if !pd.read && pd.loc[0] == isa.LocBuffer {
						p.Report("dead-write", pd.idx, Warning, "the memory buffer loaded here is overwritten at instruction %d on the next pass before any write stores it", i)
					}
					continue
				}
				kept = append(kept, pd)
			}
			pendings = kept
		}
	}
}

// checkActivation enforces the column-activation discipline of Section
// IV-B: presets and gates do nothing without a live activation, an
// activation whose columns all fall outside the machine activates
// nothing, and — because ACT replaces rather than accumulates (the
// Section IV-D recovery invariant) — an ACT that is itself replaced
// before any preset or gate uses it configured nothing at all. The
// replaced-before-use check follows the loop edge: a trailing ACT is
// live into the next pass, and is dead only if the next pass's first
// ACT replaces it before the next pass's first preset or gate.
func checkActivation(p *Pass) {
	g := p.Opts.Geometry
	live := false
	lastAct := -1
	usedSinceAct := false
	firstAct, firstUse := -1, -1
	for i := range p.Prog {
		if !p.Valid[i] {
			continue
		}
		in := &p.Prog[i]
		switch in.Kind {
		case isa.KindPreset, isa.KindLogic:
			if !live {
				p.Report("activation", i, Error, "%s executes with no live column activation: no ACT precedes it, so it touches nothing", in.Kind)
			}
			usedSinceAct = true
			if firstUse < 0 {
				firstUse = i
			}
		case isa.KindAct:
			if lastAct >= 0 && !usedSinceAct {
				p.Report("activation", lastAct, Warning, "activation is replaced at instruction %d before any preset or logic uses it", i)
			}
			declared := in.ActiveColumns()
			effective := 0
			for _, c := range declared {
				if int(c) < g.Cols {
					effective++
				}
			}
			if effective == 0 {
				p.Report("activation", i, Warning, "activates no columns within the %d-column geometry", g.Cols)
			} else if effective < len(declared) {
				p.Report("activation", i, Warning, "only %d of %d activated columns fall inside the %d-column geometry", effective, len(declared), g.Cols)
			}
			if firstAct < 0 {
				firstAct = i
			}
			lastAct = i
			usedSinceAct = false
			live = effective > 0
		}
	}
	// Loop edge: the stream's last ACT stays live into the next pass. It
	// is dead only when the next pass replaces it (at its first ACT)
	// without any preset or gate having used it first.
	if lastAct >= 0 && !usedSinceAct && !(firstUse >= 0 && firstUse < firstAct) {
		p.Report("activation", lastAct, Warning, "activation is replaced at instruction %d on the next pass before any preset or logic uses it", firstAct)
	}
}

// checkReplay verifies the Section IV-D replay-safety condition for the
// configured checkpoint interval. A region replayed from its last
// checkpoint must be free of two hazard classes:
//
//   - WAR hazards: a replayed read observes a value the first partial
//     execution already clobbered (isa.FindWARHazards).
//   - Activation-restore hazards: the restart protocol restores the last
//     *executed* ACT, not the region-entry configuration; if the region
//     issues an ACT after presets or gates that ran under the entry
//     configuration, a crash after that ACT replays those instructions
//     under the wrong column set. The fixpoint entry state decides
//     whether the restored configuration provably matches.
//
// With MOUSE's per-instruction checkpointing (interval ≤ 1) every
// region is a single instruction and trivially safe; the rule exists
// for checkpoint-thinned deployments (sim.RunWithCheckpointInterval's
// model).
func checkReplay(p *Pass) {
	k := p.Opts.CheckpointInterval
	if k <= 1 || !p.AllValid {
		return
	}
	it := p.interp()
	for _, reg := range it.cfg.Regions {
		for _, h := range isa.FindWARHazards(p.Prog[reg.Start:reg.End]) {
			abs := isa.Hazard{ReadAt: reg.Start + h.ReadAt, WriteAt: reg.Start + h.WriteAt, Tile: h.Tile, Row: h.Row}
			p.Report("replay", abs.WriteAt, Error,
				"checkpoint region [%d,%d) is not replay-safe: %s", reg.Start, reg.End, abs)
		}
		checkActReplay(p, it, reg)
	}
}

// checkActReplay reports activation-restore hazards in one region: it
// finds the activation-dependent instructions that precede the region's
// first ACT (during a replay they re-execute under the restored — last
// executed — configuration instead of the entry one) and checks every
// in-region ACT that could be the restored configuration against the
// region's fixpoint entry activation.
func checkActReplay(p *Pass, it *interp, reg Region) {
	firstAct := -1
	for i := reg.Start; i < reg.End; i++ {
		if p.Prog[i].Kind == isa.KindAct {
			firstAct = i
			break
		}
	}
	if firstAct < 0 {
		return
	}
	firstReader := -1
	for i := reg.Start; i < firstAct; i++ {
		if r, _ := p.Prog[i].ActEffects(); r {
			firstReader = i
			break
		}
	}
	if firstReader < 0 {
		return
	}
	entry := it.regionEntry(reg)
	for j := firstAct; j < reg.End; j++ {
		in := &p.Prog[j]
		if in.Kind != isa.KindAct {
			continue
		}
		restored := actOf(decodeAct(in), it.geom)
		switch {
		case entry.act.kind == actExact && entry.act.sameConfig(restored):
			// The region re-establishes the configuration it entered with
			// (the re-preset-after-checkpoint idiom): a replay under the
			// restored ACT is identical to the original execution.
		case entry.act.kind == actExact:
			p.Report("replay", j, Error,
				"checkpoint region [%d,%d) is not replay-safe: a crash after this ACT restores its configuration on restart, and the replayed instruction %d then executes under it instead of the activation the region entered with (the restart protocol restores the last executed ACT, Section IV-D)",
				reg.Start, reg.End, firstReader)
		default:
			p.Report("replay", j, Warning,
				"checkpoint region [%d,%d) may not be replay-safe: the region-entry activation cannot be pinned to a single configuration, so a crash after this ACT may replay instruction %d under a different column set",
				reg.Start, reg.End, firstReader)
		}
	}
}

// checkEnergy verifies Section I's forward-progress condition: the most
// expensive single instruction — the unit of atomic progress — must fit
// one full capacitor discharge window, or the device can never complete
// it no matter how often it recharges. Headroom close to 1 is flagged
// as fragile (device aging and temperature shrink the window). The wce
// rule generalizes this to whole checkpoint regions.
func checkEnergy(p *Pass) {
	if !p.AllValid {
		return
	}
	m := energy.NewModel(p.Opts.Config)
	if p.Opts.Geometry.Cols < m.RowBits {
		m.RowBits = p.Opts.Geometry.Cols
	}
	rep := sim.CheckTermination(sim.StreamFromProgram(p.Prog, p.Opts.Geometry.Tiles), m)
	switch {
	case rep.Ops == 0:
		return
	case !rep.OK:
		p.Report("energy", int(rep.MaxOpIndex), Error,
			"cannot make forward progress: this instruction needs %.3g J but one full discharge window holds %.3g J", rep.MaxOpJ, rep.WindowJ)
	case rep.Headroom < p.Opts.MinHeadroom:
		p.Report("energy", int(rep.MaxOpIndex), Warning,
			"energy headroom is only %.2fx (window %.3g J over costliest op %.3g J); below the %.2gx margin", rep.Headroom, rep.WindowJ, rep.MaxOpJ, p.Opts.MinHeadroom)
	}
}
