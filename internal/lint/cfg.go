package lint

// Checkpoint-region control-flow graph. MOUSE programs are straight-line
// streams the controller repeats forever (Section IV-B), so the only
// control flow is implicit: the checkpoint protocol. Partitioning the
// stream at checkpoint boundaries yields a CFG with three edge kinds,
// all of which the abstract interpreter must account for:
//
//   - the fall-through edge from each region to the next (program order),
//   - the loop edge from the last region back to the first (the stream
//     repeats, so state at the end of one pass flows into the next), and
//   - a replay self-edge on every region (a power loss inside a region
//     rolls execution back to the region's start, re-running its prefix
//     under whatever state the partial attempt left behind — the
//     Section IV-D replay-safety question).
//
// With MOUSE's per-instruction checkpointing every region is a single
// instruction; checkpoint-thinned deployments
// (sim.RunWithCheckpointInterval's model) produce multi-instruction
// regions, which is where region precision starts to matter.

// Region is one checkpoint region: the half-open instruction range
// [Start, End) replayed as a unit after a crash inside it.
type Region struct {
	// Index is the region's position in program order.
	Index int `json:"index"`
	// Start and End bound the region's instructions, half-open.
	Start int `json:"start"`
	End   int `json:"end"`
}

// Len returns the region's instruction count.
func (r Region) Len() int { return r.End - r.Start }

// CFG is the checkpoint-region graph of an n-instruction program
// checkpointed every Interval instructions.
type CFG struct {
	// Regions partition [0, N) in program order. Empty exactly when the
	// program is empty.
	Regions []Region
	// Interval is the resolved checkpoint interval (always >= 1).
	Interval int
	// N is the program length.
	N int
}

// BuildCFG partitions an n-instruction program into checkpoint regions.
// Intervals below 1 model MOUSE's per-instruction checkpointing
// (back-to-back checkpoints: every region is one instruction). A stream
// whose length is not a multiple of the interval ends mid-region; the
// tail is its own short region, since the end of the stream commits.
func BuildCFG(n, interval int) *CFG {
	if interval < 1 {
		interval = 1
	}
	c := &CFG{Interval: interval, N: n}
	for start := 0; start < n; start += interval {
		end := start + interval
		if end > n {
			end = n
		}
		c.Regions = append(c.Regions, Region{Index: len(c.Regions), Start: start, End: end})
	}
	return c
}

// RegionOf returns the index of the region containing instruction i.
func (c *CFG) RegionOf(i int) int { return i / c.Interval }

// Succ returns the fall-through successor of region r, wrapping the last
// region back to the first (the loop edge).
func (c *CFG) Succ(r int) int {
	if len(c.Regions) == 0 {
		return 0
	}
	return (r + 1) % len(c.Regions)
}
