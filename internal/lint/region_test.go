package lint

import (
	"strings"
	"testing"

	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/sim"
)

func TestIntervalSet(t *testing.T) {
	// Duplicates collapse and adjacent addresses merge into one interval.
	s := NewIntervalSet([]uint16{4, 2, 3, 3, 9})
	if s.Count() != 4 || s.String() != "2-4,9" {
		t.Errorf("set = %s (count %d), want 2-4,9 (4)", s, s.Count())
	}
	for _, a := range []uint16{2, 3, 4, 9} {
		if !s.Contains(a) {
			t.Errorf("missing %d", a)
		}
	}
	for _, a := range []uint16{0, 1, 5, 8, 10} {
		if s.Contains(a) {
			t.Errorf("spurious %d", a)
		}
	}
	if s.CountBelow(4) != 2 {
		t.Errorf("CountBelow(4) = %d, want 2", s.CountBelow(4))
	}

	// Strided ranges enumerate; unit stride is a single interval.
	r := NewIntervalRange(0, 4, 2)
	if r.String() != "0,2,4,6" {
		t.Errorf("strided = %s", r)
	}
	if u := NewIntervalRange(0, 8, 1); u.String() != "0-7" {
		t.Errorf("unit-stride = %s", u)
	}

	// Union merges overlap and adjacency, and is insensitive to order.
	u := s.Union(NewIntervalSet([]uint16{5, 6}))
	if u.String() != "2-6,9" {
		t.Errorf("union = %s", u)
	}
	if !u.Equal(NewIntervalSet([]uint16{9, 6, 5, 4, 3, 2})) {
		t.Errorf("Equal failed for %s", u)
	}
	if !NewIntervalSet(nil).Empty() || u.Empty() {
		t.Error("Empty misreports")
	}
}

func TestJoinLattice(t *testing.T) {
	// Row join: equal stays, differing polarity or kind rises to top,
	// curAct only survives when both sides kept it.
	p0 := rowInfo{val: rowPreset, state: mtj.P, curAct: true}
	if got := joinRow(p0, p0); got != p0 {
		t.Errorf("join of equal rows changed: %+v", got)
	}
	p1 := rowInfo{val: rowPreset, state: mtj.AP, curAct: true}
	if got := joinRow(p0, p1); got.val != rowTop {
		t.Errorf("conflicting presets should top out: %+v", got)
	}
	g := rowInfo{val: rowGated, curAct: false}
	if got := joinRow(p0, g); got.val != rowTop || got.curAct {
		t.Errorf("preset ⊔ gated = %+v, want top with curAct=false", got)
	}

	// Activation join: none is the identity modulo maybeOff; differing
	// exact configurations keep only the upper bounds.
	a := actOf(actInstr{broadcast: true, cols: NewIntervalSet([]uint16{0, 1})}, Geometry{Tiles: 2, Rows: 8, Cols: 8})
	if a.ubPairs != 4 {
		t.Fatalf("broadcast over 2 tiles: ubPairs = %d, want 4", a.ubPairs)
	}
	j := joinAct(actVal{}, a)
	if j.kind != actExact || !j.maybeOff {
		t.Errorf("none ⊔ exact = %+v, want exact with maybeOff", j)
	}
	b := actOf(actInstr{broadcast: true, cols: NewIntervalSet([]uint16{0, 1, 2})}, Geometry{Tiles: 2, Rows: 8, Cols: 8})
	j = joinAct(a, b)
	if j.kind != actTop || j.ubPairs != 6 || j.cols.String() != "0-2" {
		t.Errorf("exact ⊔ exact' = %+v, want top with max pairs and union cols", j)
	}

	// State join is monotone and reports stability: joining a state with
	// itself changes nothing.
	s := initialState()
	o := initialState()
	o.buf = bufDef
	o.rows[3] = p0
	if !s.join(&o) {
		t.Fatal("join into bottom reported no change")
	}
	if s.buf != bufTop {
		t.Errorf("undef ⊔ def buffer = %v, want top", s.buf)
	}
	if s.rows[3].val != rowTop {
		// Row 3 is bottom on the left (absent = never written on that
		// path), preset on the right: the join cannot keep the preset.
		t.Errorf("bottom ⊔ preset row = %+v, want top", s.rows[3])
	}
	snapshot := s.clone()
	if s.join(&snapshot) {
		t.Error("self-join reported a change (join is not idempotent)")
	}
}

func TestBuildCFGPartitions(t *testing.T) {
	cases := []struct {
		n, interval int
		regions     int
		lastLen     int
	}{
		{0, 1, 0, 0},
		{7, 1, 7, 1},  // per-instruction checkpointing
		{7, 0, 7, 1},  // interval < 1 clamps to 1
		{6, 3, 2, 3},  // even split
		{7, 3, 3, 1},  // stream ends mid-region: short tail
		{3, 10, 1, 3}, // interval longer than the program
		{7, -5, 7, 1}, // negative interval clamps too
	}
	for _, tc := range cases {
		c := BuildCFG(tc.n, tc.interval)
		if len(c.Regions) != tc.regions {
			t.Errorf("BuildCFG(%d,%d): %d regions, want %d", tc.n, tc.interval, len(c.Regions), tc.regions)
			continue
		}
		// The regions must partition [0, n) exactly, in order.
		next := 0
		for i, r := range c.Regions {
			if r.Index != i || r.Start != next || r.End <= r.Start {
				t.Errorf("BuildCFG(%d,%d) region %d = %+v, want start %d", tc.n, tc.interval, i, r, next)
			}
			next = r.End
		}
		if tc.n > 0 {
			if next != tc.n {
				t.Errorf("BuildCFG(%d,%d) covers [0,%d), want [0,%d)", tc.n, tc.interval, next, tc.n)
			}
			if got := c.Regions[len(c.Regions)-1].Len(); got != tc.lastLen {
				t.Errorf("BuildCFG(%d,%d) tail length %d, want %d", tc.n, tc.interval, got, tc.lastLen)
			}
			// Every instruction maps into its containing region, and the
			// successor chain wraps the last region to the first.
			for i := 0; i < tc.n; i++ {
				ri := c.RegionOf(i)
				if r := c.Regions[ri]; i < r.Start || i >= r.End {
					t.Errorf("RegionOf(%d) = %d (%+v)", i, ri, r)
				}
			}
			if c.Succ(len(c.Regions)-1) != 0 {
				t.Error("loop edge missing: last region's successor is not region 0")
			}
		}
	}
}

func TestFixpointTerminatesWithinBound(t *testing.T) {
	progs := []isa.Program{
		{},
		cleanProgram(),
		// A loop-carried chain: each pass's gate output feeds the next
		// pass's input, which forces at least one extra fixpoint round.
		{
			isa.ActRange(true, 0, 0, 4, 1),
			isa.Logic(mtj.NOT, []int{1}, 2),
			isa.Preset(1, mtj.P),
			isa.Logic(mtj.NOT, []int{2}, 1),
		},
	}
	for pi, prog := range progs {
		valid := make([]bool, len(prog))
		for i := range valid {
			valid[i] = true
		}
		it := newInterp(prog, Options{CheckpointInterval: 2}, valid)
		if it.iterations >= maxIterations(len(prog)) {
			t.Errorf("program %d: fixpoint took %d iterations, bound %d", pi, it.iterations, maxIterations(len(prog)))
		}
		if len(it.entry) != len(prog)+1 {
			t.Errorf("program %d: %d entry states for %d instructions", pi, len(it.entry), len(prog))
		}
	}
}

// The loop edge distinguishes never-written from first-pass-undefined:
// a gate whose output row is never preset sees bottom on the first pass
// and its own stale result on later ones — rowTop at entry, reported
// with the every-pass wording.
func TestDefUseLoopEdgeRowTop(t *testing.T) {
	prog := isa.Program{
		isa.ActRange(true, 0, 0, 4, 1),
		isa.Logic(mtj.NAND2, []int{0, 2}, 1), // row 1 never preset anywhere
	}
	r := Lint(prog, Options{Rules: []string{"def-use"}})
	errs := r.ByRule("def-use")
	found := false
	for _, d := range errs {
		if d.Severity == Error && strings.Contains(d.Message, "not preset on every pass") {
			found = true
		}
	}
	if !found {
		t.Fatalf("loop-edge rowTop not reported: %+v", errs)
	}
}

// The re-preset-after-checkpoint idiom: every region re-establishes the
// activation and re-presets its gate outputs before using them. The
// region-aware interpreter must prove each region replay-safe — the old
// linear analysis had no per-region entry facts and could not.
func TestRePresetAfterCheckpointIsReplaySafe(t *testing.T) {
	act := func() isa.Instruction { return isa.ActRange(true, 0, 0, 4, 1) }
	prog := isa.Program{
		// Region [0,4)
		act(),
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NAND2, []int{0, 2}, 1),
		isa.Read(0, 1),
		// Region [4,8): same ACT re-issued, outputs re-preset.
		act(),
		isa.Preset(5, mtj.P),
		isa.Logic(mtj.NOT, []int{1}, 5),
		isa.Write(0, 6),
	}
	r := Lint(prog, Options{CheckpointInterval: 4, Rules: []string{"replay"}})
	if len(r.ByRule("replay")) != 0 {
		t.Fatalf("re-preset regions flagged: %+v", r.ByRule("replay"))
	}
}

// The true positive the region CFG adds: a region whose preset runs
// under the carried-in activation and whose own later ACT differs. A
// crash after that ACT restores it — not the entry configuration — and
// the replayed preset lands on the wrong column set.
func TestActivationRestoreHazard(t *testing.T) {
	prog := isa.Program{
		// Region [0,4): establishes the 4-column configuration.
		isa.ActRange(true, 0, 0, 4, 1),
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NAND2, []int{0, 2}, 1),
		isa.Preset(3, mtj.P),
		// Region [4,8): preset under the entry ACT, then a wider ACT.
		isa.Preset(5, mtj.P),
		isa.ActRange(true, 0, 0, 8, 1),
		isa.Preset(6, mtj.P),
		isa.Logic(mtj.NAND2, []int{6, 0}, 3),
	}
	r := Lint(prog, Options{CheckpointInterval: 4, Rules: []string{"replay"}})
	var hazards []Diagnostic
	for _, d := range r.ByRule("replay") {
		if d.Severity == Error && strings.Contains(d.Message, "restores its configuration") {
			hazards = append(hazards, d)
		}
	}
	if len(hazards) != 1 || hazards[0].Index != 5 {
		t.Fatalf("want one activation-restore error at the ACT (index 5): %+v", r.ByRule("replay"))
	}

	// The same stream at interval 1 is trivially safe: every region is a
	// single instruction, so nothing replays under a changed ACT.
	r = Lint(prog, Options{CheckpointInterval: 1, Rules: []string{"replay"}})
	if len(r.ByRule("replay")) != 0 {
		t.Errorf("per-instruction checkpointing flagged: %+v", r.ByRule("replay"))
	}
}

// A buffer load still pending at the end of the stream is dead if the
// program's own next pass reloads the buffer before any write stores it.
func TestDeadWriteAcrossLoopEdge(t *testing.T) {
	prog := isa.Program{
		isa.ActRange(true, 0, 0, 4, 1),
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NAND2, []int{0, 2}, 1),
		isa.Read(0, 1), // loaded, never stored: pass 2's read clobbers it
	}
	r := Lint(prog, Options{Rules: []string{"dead-write"}})
	ds := r.ByRule("dead-write")
	if len(ds) != 1 || ds[0].Index != 3 || !strings.Contains(ds[0].Message, "on the next pass") {
		t.Fatalf("loop-edge dead buffer load not reported: %+v", ds)
	}
	// Storing the buffer before the end of the stream keeps the load live.
	live := append(prog[:len(prog):len(prog)], isa.Write(0, 2))
	r = Lint(live, Options{Rules: []string{"dead-write"}})
	if len(r.ByRule("dead-write")) != 0 {
		t.Errorf("stored buffer flagged: %+v", r.ByRule("dead-write"))
	}
}

// A trailing ACT is only dead when the next pass replaces it unused.
func TestTrailingActAcrossLoopEdge(t *testing.T) {
	dead := isa.Program{
		isa.ActRange(true, 0, 0, 4, 1),
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NOT, []int{0}, 1),
		isa.ActRange(true, 0, 0, 8, 1), // replaced by pass 2's first ACT
	}
	r := Lint(dead, Options{Rules: []string{"activation"}})
	var hit bool
	for _, d := range r.ByRule("activation") {
		if d.Index == 3 && strings.Contains(d.Message, "on the next pass") {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("dead trailing ACT not reported: %+v", r.ByRule("activation"))
	}

	// If the next pass uses the activation before its own ACT (preset at
	// 0, ACT later), the trailing ACT is live across the loop edge.
	liveProg := isa.Program{
		isa.Preset(1, mtj.P),
		isa.ActRange(true, 0, 0, 4, 1),
		isa.Logic(mtj.NOT, []int{0}, 1),
		isa.ActRange(true, 0, 0, 8, 1), // pass 2's preset uses this
	}
	r = Lint(liveProg, Options{Rules: []string{"activation"}})
	for _, d := range r.ByRule("activation") {
		if strings.Contains(d.Message, "on the next pass") {
			t.Fatalf("live trailing ACT flagged: %+v", d)
		}
	}
}

func TestCertifyCleanProgram(t *testing.T) {
	opts := Options{CheckpointInterval: 3}
	cert, err := Certify(cleanProgram(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Schema != CertSchema || cert.Config != mtj.ModernSTT().Name {
		t.Errorf("header: %+v", cert)
	}
	if !cert.Feasible || len(cert.Regions) != 3 {
		t.Fatalf("clean program at interval 3: %+v", cert)
	}
	worst := cert.Regions[cert.WorstRegion]
	for _, rc := range cert.Regions {
		if !rc.Feasible || rc.WCEJ <= 0 || rc.RestoreJ <= 0 || rc.Headroom <= 1 {
			t.Errorf("region %d: %+v", rc.Index, rc)
		}
		if rc.WCEJ > worst.WCEJ {
			t.Errorf("region %d out-costs the worst region: %+v > %+v", rc.Index, rc, worst)
		}
		if rc.WCEJ < rc.MaxOpJ+rc.RestoreJ {
			t.Errorf("region %d: WCE below restore+maxOp: %+v", rc.Index, rc)
		}
	}
}

// The certificate's execution cost must agree with the simulator's
// pricing of the same stream to the joule: same Op construction, same
// model, same pair counts (sim.StreamFromProgram's convention).
func TestCertifyMatchesSimPricing(t *testing.T) {
	prog := cleanProgram()
	opts := Options{CheckpointInterval: 1}
	cert, err := Certify(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := energy.NewModel(mtj.ModernSTT())
	s := sim.StreamFromProgram(prog, opts.geometry().Tiles)
	var want float64
	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		want += m.Energy(op) + m.Backup(op)
	}
	var got float64
	for _, rc := range cert.Regions {
		got += rc.WCEJ - rc.RestoreJ
	}
	if diff := got - want; diff > 1e-18 || diff < -1e-18 {
		t.Fatalf("certificate prices %.12g J, simulator %.12g J (diff %g)", got, want, diff)
	}
}

func TestCertifyInfeasibleAndReportCap(t *testing.T) {
	tiny := *mtj.ModernSTT()
	tiny.CapC = 1e-15
	// 20 instructions at interval 2: ten regions, all infeasible.
	prog := isa.Program{isa.ActRange(true, 0, 0, 4, 1)}
	for len(prog) < 20 {
		prog = append(prog, isa.Preset(1, mtj.P), isa.Logic(mtj.NOT, []int{0}, 1))
	}
	prog = prog[:20]
	opts := Options{Config: &tiny, CheckpointInterval: 2}
	cert, err := Certify(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Feasible || len(cert.Regions) != 10 {
		t.Fatalf("1 fF certificate: %+v", cert)
	}
	for _, rc := range cert.Regions {
		if rc.Feasible {
			t.Errorf("region %d feasible on 1 fF: %+v", rc.Index, rc)
		}
	}
	// The wce rule reports at most 8 per-region errors plus one summary.
	r := Lint(prog, Options{Config: &tiny, CheckpointInterval: 2, Rules: []string{"wce"}})
	ds := r.ByRule("wce")
	if len(ds) != 9 {
		t.Fatalf("got %d wce findings, want 8 capped + 1 summary: %+v", len(ds), ds)
	}
	summary := 0
	for _, d := range ds {
		if strings.Contains(d.Message, "first 8 reported") {
			summary++
		}
	}
	if summary != 1 {
		t.Errorf("summary line count = %d: %+v", summary, ds)
	}
}

func TestCertifyRejectsInvalidInstructions(t *testing.T) {
	prog := isa.Program{{Kind: isa.Kind(250)}}
	if _, err := Certify(prog, Options{}); err == nil {
		t.Fatal("invalid instruction certified")
	}
}
