package lint

import (
	"fmt"
	"sort"
	"strings"

	"mouse/internal/mtj"
)

// The abstract domain. Each component is a finite join-semilattice, so
// the product lattice is finite too and the fixpoint iteration in
// interp.go terminates: joins only move values up, and every chain is
// short (three levels for rows and the buffer, three for activations).

// IntervalSet is a set of column or row addresses kept as sorted,
// disjoint, inclusive [lo, hi] intervals — the compact representation
// for the dense ranged activations (ACT R) and the sparse list form
// (ACT C) alike.
type IntervalSet struct {
	iv [][2]uint16
}

// NewIntervalSet builds the set holding exactly the given addresses.
func NewIntervalSet(addrs []uint16) IntervalSet {
	if len(addrs) == 0 {
		return IntervalSet{}
	}
	sorted := append([]uint16(nil), addrs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var s IntervalSet
	lo, hi := sorted[0], sorted[0]
	for _, a := range sorted[1:] {
		if a <= hi+1 {
			if a > hi {
				hi = a
			}
			continue
		}
		s.iv = append(s.iv, [2]uint16{lo, hi})
		lo, hi = a, a
	}
	s.iv = append(s.iv, [2]uint16{lo, hi})
	return s
}

// NewIntervalRange builds the set {start, start+stride, ...} with count
// elements, clipped to the 16-bit address space. Stride 0 or 1 yields a
// single interval.
func NewIntervalRange(start, count, stride int) IntervalSet {
	if count <= 0 {
		return IntervalSet{}
	}
	if stride <= 1 {
		end := start + count - 1
		if end > 0xFFFF {
			end = 0xFFFF
		}
		return IntervalSet{iv: [][2]uint16{{uint16(start), uint16(end)}}}
	}
	addrs := make([]uint16, 0, count)
	for i, a := 0, start; i < count && a <= 0xFFFF; i, a = i+1, a+stride {
		addrs = append(addrs, uint16(a))
	}
	return NewIntervalSet(addrs)
}

// Empty reports whether the set holds no addresses.
func (s IntervalSet) Empty() bool { return len(s.iv) == 0 }

// Count returns the number of addresses in the set.
func (s IntervalSet) Count() int {
	n := 0
	for _, r := range s.iv {
		n += int(r[1]) - int(r[0]) + 1
	}
	return n
}

// CountBelow returns how many addresses fall below limit (the deployed
// geometry's column or row count).
func (s IntervalSet) CountBelow(limit int) int {
	n := 0
	for _, r := range s.iv {
		lo, hi := int(r[0]), int(r[1])
		if lo >= limit {
			break
		}
		if hi >= limit {
			hi = limit - 1
		}
		n += hi - lo + 1
	}
	return n
}

// Contains reports set membership.
func (s IntervalSet) Contains(a uint16) bool {
	for _, r := range s.iv {
		if a < r[0] {
			return false
		}
		if a <= r[1] {
			return true
		}
	}
	return false
}

// Equal reports whether two sets hold exactly the same addresses.
func (s IntervalSet) Equal(o IntervalSet) bool {
	if len(s.iv) != len(o.iv) {
		return false
	}
	for i := range s.iv {
		if s.iv[i] != o.iv[i] {
			return false
		}
	}
	return true
}

// Union returns the set union.
func (s IntervalSet) Union(o IntervalSet) IntervalSet {
	if s.Empty() {
		return o
	}
	if o.Empty() {
		return s
	}
	merged := append(append([][2]uint16(nil), s.iv...), o.iv...)
	sort.Slice(merged, func(i, j int) bool { return merged[i][0] < merged[j][0] })
	out := IntervalSet{iv: merged[:1]}
	for _, r := range merged[1:] {
		last := &out.iv[len(out.iv)-1]
		if int(r[0]) <= int(last[1])+1 {
			if r[1] > last[1] {
				last[1] = r[1]
			}
			continue
		}
		out.iv = append(out.iv, r)
	}
	return out
}

func (s IntervalSet) String() string {
	if s.Empty() {
		return "{}"
	}
	var b strings.Builder
	for i, r := range s.iv {
		if i > 0 {
			b.WriteByte(',')
		}
		if r[0] == r[1] {
			fmt.Fprintf(&b, "%d", r[0])
		} else {
			fmt.Fprintf(&b, "%d-%d", r[0], r[1])
		}
	}
	return b.String()
}

// rowVal is the abstract state of one broadcast row.
type rowVal uint8

const (
	// rowBottom: never written on this path — power-on or host-preloaded
	// contents, unknown to the analysis.
	rowBottom rowVal = iota
	// rowPreset: holds a preset constant (the state field of rowInfo says
	// which polarity).
	rowPreset
	// rowGated: holds a gate result.
	rowGated
	// rowTop: different abstract values on different paths (in a
	// straight-line looping program: uninitialized on the first pass,
	// defined on later ones, or conflicting defs across the loop edge).
	rowTop
)

// rowInfo is the per-row lattice element.
type rowInfo struct {
	val rowVal
	// state is the preset polarity, meaningful only for rowPreset.
	state mtj.State
	// curAct reports the definition landed under the current activation
	// configuration (no ACT between the def and now), so the defined
	// column set is exactly the active one.
	curAct bool
}

// joinRow is the per-row least upper bound.
func joinRow(a, b rowInfo) rowInfo {
	out := rowInfo{curAct: a.curAct && b.curAct}
	switch {
	case a.val == b.val && (a.val != rowPreset || a.state == b.state):
		out.val, out.state = a.val, a.state
	default:
		out.val = rowTop
	}
	return out
}

// bufVal is the abstract state of the memory buffer.
type bufVal uint8

const (
	// bufUndef: no read has loaded the buffer on this path.
	bufUndef bufVal = iota
	// bufDef: a read loaded it.
	bufDef
	// bufTop: loaded on some paths only (e.g. defined at the end of a
	// pass but not at power-on).
	bufTop
)

func joinBuf(a, b bufVal) bufVal {
	if a == b {
		return a
	}
	return bufTop
}

// actKind classifies the abstract activation configuration.
type actKind uint8

const (
	// actNone: no ACT has executed on this path (power-on state: nothing
	// active).
	actNone actKind = iota
	// actExact: the configuration is exactly one known ACT instruction.
	actExact
	// actTop: different ACTs reach this point; only the upper bounds
	// (cols union, pairs max) are known.
	actTop
)

// actVal is the abstract activation configuration.
type actVal struct {
	kind actKind
	// broadcast/tile/cols describe the exact configuration (actExact).
	broadcast bool
	tile      uint16
	cols      IntervalSet
	// ubPairs upper-bounds the active (tile, column) pair count; for
	// actExact it equals the exact count.
	ubPairs int
	// maybeOff records a join with actNone: the configuration holds on
	// later passes but nothing is active at power-on.
	maybeOff bool
}

// actOf abstracts one ACT instruction under the deployed geometry.
// ubPairs counts every declared column (broadcast multiplies by the
// tile count), matching sim.StreamFromProgram's pricing convention so
// the WCE certificate and the simulator agree to the joule.
func actOf(in actInstr, g Geometry) actVal {
	v := actVal{kind: actExact, broadcast: in.broadcast, tile: in.tile, cols: in.cols}
	mult := 1
	if in.broadcast {
		mult = g.Tiles
	}
	v.ubPairs = in.cols.Count() * mult
	return v
}

// actInstr is the decoded activation an ACT instruction establishes.
type actInstr struct {
	broadcast bool
	tile      uint16
	cols      IntervalSet
}

// sameConfig reports whether two exact configurations are identical.
func (a actVal) sameConfig(b actVal) bool {
	return a.kind == actExact && b.kind == actExact &&
		a.broadcast == b.broadcast &&
		(a.broadcast || a.tile == b.tile) &&
		a.cols.Equal(b.cols)
}

func joinAct(a, b actVal) actVal {
	switch {
	case a.kind == actNone && b.kind == actNone:
		return a
	case a.kind == actNone:
		b.maybeOff = true
		return b
	case b.kind == actNone:
		a.maybeOff = true
		return a
	case a.sameConfig(b):
		a.maybeOff = a.maybeOff || b.maybeOff
		return a
	}
	out := actVal{kind: actTop, cols: a.cols.Union(b.cols), maybeOff: a.maybeOff || b.maybeOff}
	out.ubPairs = a.ubPairs
	if b.ubPairs > out.ubPairs {
		out.ubPairs = b.ubPairs
	}
	return out
}

// absState is the abstract machine state at one program point: the
// product of the buffer, activation, and per-row lattices.
type absState struct {
	buf  bufVal
	act  actVal
	rows map[int]rowInfo
}

// initialState is the power-on state: buffer unloaded, nothing active,
// every row at bottom (host-preloaded contents are unknown, not absent).
func initialState() absState {
	return absState{rows: make(map[int]rowInfo)}
}

func (s *absState) clone() absState {
	out := *s
	out.rows = make(map[int]rowInfo, len(s.rows))
	for k, v := range s.rows {
		out.rows[k] = v
	}
	return out
}

// join folds o into s and reports whether s changed. It is the product
// lattice's least upper bound, so repeated joins are monotone: the
// fixpoint loop terminates because each component can only rise.
func (s *absState) join(o *absState) bool {
	changed := false
	if nb := joinBuf(s.buf, o.buf); nb != s.buf {
		s.buf, changed = nb, true
	}
	na := joinAct(s.act, o.act)
	if na.kind != s.act.kind || na.maybeOff != s.act.maybeOff ||
		na.ubPairs != s.act.ubPairs || !na.cols.Equal(s.act.cols) ||
		na.broadcast != s.act.broadcast || na.tile != s.act.tile {
		s.act, changed = na, true
	}
	for r, ov := range o.rows {
		sv, ok := s.rows[r]
		if !ok {
			sv = rowInfo{val: rowBottom, curAct: true}
		}
		nv := joinRow(sv, ov)
		if nv != sv {
			s.rows[r], changed = nv, true
		}
	}
	for r, sv := range s.rows {
		if _, ok := o.rows[r]; !ok {
			nv := joinRow(sv, rowInfo{val: rowBottom, curAct: true})
			if nv != sv {
				s.rows[r], changed = nv, true
			}
		}
	}
	return changed
}
