package lint

import (
	"fmt"

	"mouse/internal/energy"
	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// The worst-case-energy (WCE) pass: the paper's non-termination hazard
// (Section I) as a decidable per-region check. The energy rule bounds a
// single instruction against the discharge window — sufficient under
// MOUSE's per-instruction checkpointing, where one instruction is the
// unit of atomic progress. Under a thinned checkpoint interval the unit
// of progress is a whole region: if a region's restore-plus-execute cost
// exceeds one full discharge, the device crashes mid-region on every
// attempt, replays from the region start, and livelocks even though
// every individual instruction fits. Certify folds the energy model
// over each region, upper-bounding activation-dependent costs with the
// interpreter's abstract activation state, and emits a certificate that
// either proves every region completes within one charge cycle or names
// the regions that cannot.

// CertSchema identifies the certificate JSON layout.
const CertSchema = "mouse-wce/v1"

// RegionCert is the worst-case-energy bound for one checkpoint region.
type RegionCert struct {
	// Index, Start, End identify the region (see Region).
	Index int `json:"index"`
	Start int `json:"start"`
	End   int `json:"end"`
	// WCEJ is the region's worst-case energy in joules: the restart
	// restore cost plus every instruction's compute and backup energy.
	WCEJ float64 `json:"wce_j"`
	// RestoreJ is the worst-case restart cost charged to the region (the
	// costliest activation whose restore can precede a replay of it).
	RestoreJ float64 `json:"restore_j"`
	// MaxOpJ is the costliest single instruction in the region.
	MaxOpJ float64 `json:"max_op_j"`
	// Headroom is WindowJ / WCEJ (0 for a degenerate zero-cost region).
	Headroom float64 `json:"headroom"`
	// Feasible reports WCEJ <= WindowJ: a full charge completes the
	// region in one discharge, so every charge cycle commits a checkpoint.
	Feasible bool `json:"feasible"`
}

// Certificate is the per-region worst-case-energy proof for one program
// under one technology configuration and checkpoint interval.
type Certificate struct {
	// Schema is CertSchema, versioning the JSON layout for consumers
	// (ROADMAP item 5's checkpoint-placement optimizer reads this).
	Schema string `json:"schema"`
	// Config names the technology configuration priced against.
	Config string `json:"config"`
	// CapF is the energy-buffer capacitance in farads.
	CapF float64 `json:"cap_f"`
	// WindowJ is the usable energy of one full buffer discharge.
	WindowJ float64 `json:"window_j"`
	// Interval is the checkpoint interval the regions were built from.
	Interval int `json:"interval"`
	// Geometry is the deployed array shape used for broadcast costs.
	Geometry Geometry `json:"geometry"`
	// Regions holds one bound per checkpoint region, in program order.
	Regions []RegionCert `json:"regions"`
	// Feasible reports whether every region is feasible — the program
	// makes forward progress on this capacitor no matter where power
	// fails.
	Feasible bool `json:"feasible"`
	// WorstRegion is the index of the region with the least headroom
	// (-1 for an empty program).
	WorstRegion int `json:"worst_region"`
}

// Certify computes the per-region worst-case-energy certificate for the
// program. Options resolve exactly as in Lint (zero geometry → full ISA,
// nil config → Modern STT, interval < 1 → per-instruction). It fails if
// any instruction does not validate: an unencodable stream has no energy
// semantics to bound.
func Certify(prog isa.Program, opts Options) (*Certificate, error) {
	opts.Geometry = opts.geometry()
	if opts.Config == nil {
		opts.Config = mtj.ModernSTT()
	}
	if opts.CheckpointInterval < 1 {
		opts.CheckpointInterval = 1
	}
	valid := make([]bool, len(prog))
	for i := range prog {
		if err := prog[i].Validate(); err != nil {
			return nil, fmt.Errorf("lint: cannot certify: instruction %d: %w", i, err)
		}
		valid[i] = true
	}
	it := newInterp(prog, opts, valid)
	return certify(it, opts), nil
}

// certify folds the energy model over each region of a solved
// interpretation.
func certify(it *interp, opts Options) *Certificate {
	cfg := opts.Config
	m := energy.NewModel(cfg)
	if opts.Geometry.Cols < m.RowBits {
		m.RowBits = opts.Geometry.Cols
	}
	cert := &Certificate{
		Schema:      CertSchema,
		Config:      cfg.Name,
		CapF:        cfg.CapC,
		WindowJ:     0.5 * cfg.CapC * (cfg.CapVMax*cfg.CapVMax - cfg.CapVMin*cfg.CapVMin),
		Interval:    it.cfg.Interval,
		Geometry:    opts.Geometry,
		Feasible:    true,
		WorstRegion: -1,
	}
	for _, reg := range it.cfg.Regions {
		rc := certifyRegion(it, m, reg)
		rc.Feasible = rc.WCEJ <= cert.WindowJ
		if rc.WCEJ > 0 {
			rc.Headroom = cert.WindowJ / rc.WCEJ
		} else {
			// Unreachable for well-formed regions (every instruction pays
			// at least fetch + backup), but keep the JSON marshalable.
			rc.Headroom = 0
		}
		if !rc.Feasible {
			cert.Feasible = false
		}
		if cert.WorstRegion < 0 || rc.WCEJ > cert.Regions[cert.WorstRegion].WCEJ {
			cert.WorstRegion = rc.Index
		}
		cert.Regions = append(cert.Regions, rc)
	}
	return cert
}

// certifyRegion bounds one region: walk its instructions from the
// fixpoint entry state, pricing activation-dependent costs by the
// abstract activation's pair upper bound, and charge the costliest
// restore that can precede a replay (the region-entry activation or any
// ACT the partial attempt may have executed — the restart protocol
// restores the last *executed* ACT, not the last checkpointed one).
func certifyRegion(it *interp, m *energy.Model, reg Region) RegionCert {
	rc := RegionCert{Index: reg.Index, Start: reg.Start, End: reg.End}
	s := it.regionEntry(reg).clone()
	restoreCols := s.act.ubPairs
	var sum float64
	for i := reg.Start; i < reg.End; i++ {
		in := &it.prog[i]
		var op energy.Op
		switch in.Kind {
		case isa.KindAct:
			a := actOf(decodeAct(in), it.geom)
			op = energy.OpOf(*in, a.ubPairs, a.ubPairs)
			if a.ubPairs > restoreCols {
				restoreCols = a.ubPairs
			}
		default:
			op = energy.OpOf(*in, s.act.ubPairs, 0)
		}
		e := m.Energy(op) + m.Backup(op)
		sum += e
		if e > rc.MaxOpJ {
			rc.MaxOpJ = e
		}
		it.transfer(&s, i)
	}
	rc.RestoreJ = m.Restore(restoreCols)
	rc.WCEJ = rc.RestoreJ + sum
	return rc
}

// checkWCE is the rule wrapper over Certify: it re-uses the pass's
// fixpoint solution and reports each infeasible region as an error (the
// program livelocks there) and thin headroom as a warning. Per-region
// errors are capped; a program-level summary carries the total.
func checkWCE(p *Pass) {
	if !p.AllValid || len(p.Prog) == 0 {
		return
	}
	cert := certify(p.interp(), p.Opts)
	const maxReports = 8
	infeasible := 0
	for _, rc := range cert.Regions {
		if rc.Feasible {
			if rc.Headroom < p.Opts.MinHeadroom && p.Opts.CheckpointInterval > 1 {
				p.Report("wce", rc.Start, Warning,
					"checkpoint region [%d,%d) has only %.2fx energy headroom (window %.3g J over worst case %.3g J); below the %.2gx margin",
					rc.Start, rc.End, rc.Headroom, cert.WindowJ, rc.WCEJ, p.Opts.MinHeadroom)
			}
			continue
		}
		infeasible++
		if infeasible <= maxReports {
			p.Report("wce", rc.Start, Error,
				"checkpoint region [%d,%d) cannot complete in one discharge window: worst-case energy %.3g J (restore %.3g J + execution) exceeds the %.3g J window, so the program livelocks here",
				rc.Start, rc.End, rc.WCEJ, rc.RestoreJ, cert.WindowJ)
		}
	}
	if infeasible > maxReports {
		p.Report("wce", -1, Error,
			"%d of %d checkpoint regions exceed the %.3g J discharge window (first %d reported)",
			infeasible, len(cert.Regions), cert.WindowJ, maxReports)
	}
}
