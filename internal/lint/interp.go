package lint

import "mouse/internal/isa"

// The fixpoint abstract interpreter. A MOUSE program is a straight line
// the controller repeats forever, so its CFG (cfg.go) is a chain of
// checkpoint regions plus one loop edge from the end back to the start.
// The interpreter runs the lattice transfer function (lattice.go) over
// that graph to a fixpoint: the state entering instruction 0 is the join
// of the power-on state and the state leaving the last instruction,
// iterated until stable. The result — an entry state per instruction —
// is what lets the rules distinguish "undefined" (rowBottom: no pass
// ever writes it) from "first-pass-undefined" (rowTop: later passes
// leave a value behind), and is the per-region entry fact the replay
// and worst-case-energy rules consume.

// interp holds the fixpoint solution for one program under one set of
// options.
type interp struct {
	prog  isa.Program
	valid []bool
	geom  Geometry
	cfg   *CFG

	// entry[i] is the abstract state just before instruction i executes,
	// over every pass of the loop. entry has len(prog)+1 slots; the last
	// is the state after the final instruction (= the loop edge's source).
	entry []absState

	// iterations counts fixpoint passes over the program; the fuzz
	// harness asserts it stays within the lattice-height bound.
	iterations int
}

// maxIterations bounds the fixpoint loop. The product lattice's height
// is 2 (buffer) + 2 (activation) + 3 per distinct row, and each pass
// that fails to stabilize must raise at least one component, so the
// bound below can never bind on a monotone transfer function — it is a
// belt-and-braces guard (and the property the fuzzer checks).
func maxIterations(n int) int { return 3*n + 8 }

// newInterp solves the fixpoint for the program. Instructions with
// valid[i] == false are skipped (their fields cannot be interpreted),
// matching how every semantic rule treats them.
func newInterp(prog isa.Program, opts Options, valid []bool) *interp {
	it := &interp{
		prog:  prog,
		valid: valid,
		geom:  opts.geometry(),
		cfg:   BuildCFG(len(prog), opts.CheckpointInterval),
	}

	// Iterate pass-over-pass: start from power-on, run the whole stream,
	// fold the exit state back into the entry over the loop edge, repeat
	// until the entry stops changing.
	state := initialState()
	limit := maxIterations(len(prog))
	for it.iterations = 0; it.iterations < limit; it.iterations++ {
		exit := state.clone()
		for i := range prog {
			it.transfer(&exit, i)
		}
		if !state.join(&exit) {
			break
		}
	}

	// Materialize the per-instruction entry states from the stable
	// solution with one final linear walk.
	it.entry = make([]absState, len(prog)+1)
	it.entry[0] = state
	for i := range prog {
		next := it.entry[i].clone()
		it.transfer(&next, i)
		it.entry[i+1] = next
	}
	return it
}

// transfer applies instruction i to the state in place.
func (it *interp) transfer(s *absState, i int) {
	if !it.valid[i] {
		return
	}
	in := &it.prog[i]
	switch in.Kind {
	case isa.KindRead:
		s.buf = bufDef
	case isa.KindWrite:
		// Tile-specific; the row lattice tracks broadcast rows only.
	case isa.KindPreset:
		s.rows[int(in.Row)] = rowInfo{val: rowPreset, state: in.Value, curAct: true}
	case isa.KindLogic:
		s.rows[int(in.Out)] = rowInfo{val: rowGated, curAct: true}
	case isa.KindAct:
		s.act = actOf(decodeAct(in), it.geom)
		for r, v := range s.rows {
			if v.curAct {
				v.curAct = false
				s.rows[r] = v
			}
		}
	}
}

// decodeAct lifts an ACT instruction's column set into the abstract
// activation representation.
func decodeAct(in *isa.Instruction) actInstr {
	return actInstr{
		broadcast: in.Broadcast,
		tile:      in.Tile,
		cols:      NewIntervalSet(in.ActiveColumns()),
	}
}

// entryAt returns the fixpoint state just before instruction i (i may
// equal len(prog): the state after the last instruction).
func (it *interp) entryAt(i int) *absState { return &it.entry[i] }

// regionEntry returns the fixpoint state at the start of region r — the
// state a replay of r begins from (modulo the in-region partial attempt,
// which is exactly what the replay rule reasons about).
func (it *interp) regionEntry(r Region) *absState { return &it.entry[r.Start] }
