package lint

import (
	"encoding/binary"
	"reflect"
	"testing"

	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// FuzzLintProgram feeds arbitrary instruction streams to the linter
// (mirroring internal/isa's FuzzDecode): it must never panic and must be
// deterministic, whatever mix of valid, invalid, and garbage
// instructions the stream contains. Each 9-byte chunk of input yields
// one instruction: a selector byte picks between the decoder (valid or
// rejected words) and a raw, unvalidated struct whose fields come
// straight from the fuzz data — the latter exercises the Valid-mask
// paths that keep semantic rules away from uninterpretable fields.
func FuzzLintProgram(f *testing.F) {
	seed := func(p isa.Program) []byte {
		var b []byte
		for i := range p {
			w, err := isa.Encode(p[i])
			if err != nil {
				f.Fatal(err)
			}
			b = append(b, 0)
			b = binary.BigEndian.AppendUint64(b, w)
		}
		return b
	}
	f.Add(seed(isa.Program{
		isa.ActRange(true, 0, 0, 4, 1),
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NAND2, []int{0, 2}, 1),
		isa.Read(0, 1),
		isa.Write(1, 3),
	}))
	f.Add(seed(isa.Program{isa.Write(0, 0), isa.Preset(5, mtj.AP)}))
	f.Add([]byte{0xFF, 1, 2, 3, 4, 5, 6, 7, 8, 0xFF})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		prog := fuzzProgram(data)
		for _, opts := range []Options{
			{},
			{Geometry: Geometry{Tiles: 2, Rows: 64, Cols: 16}, CheckpointInterval: 3},
		} {
			r1 := Lint(prog, opts)
			r2 := Lint(prog, opts)
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("lint is non-deterministic:\n%+v\nvs\n%+v", r1, r2)
			}
		}
	})
}

// fuzzProgram decodes an instruction stream from fuzz data, one
// instruction per 9-byte chunk: a selector byte picks between the
// decoder (valid or rejected words) and a raw, unvalidated struct whose
// fields come straight from the fuzz data.
func fuzzProgram(data []byte) isa.Program {
	var prog isa.Program
	for len(data) >= 9 {
		sel, word := data[0], binary.BigEndian.Uint64(data[1:9])
		data = data[9:]
		if sel%2 == 0 {
			in, err := isa.Decode(word)
			if err != nil {
				continue
			}
			prog = append(prog, in)
			continue
		}
		// Raw construction: every field from the word, unvalidated.
		prog = append(prog, isa.Instruction{
			Kind:   isa.Kind(sel >> 1 & 7),
			Gate:   mtj.GateKind(word),
			In:     [3]uint16{uint16(word), uint16(word >> 16), uint16(word >> 32)},
			Out:    uint16(word >> 48),
			Tile:   uint16(word >> 3),
			Row:    uint16(word >> 13),
			Rot:    uint16(word >> 23),
			Value:  mtj.State(word >> 33 & 3),
			Ranged: sel&4 != 0,
			Start:  uint16(word >> 35),
			Count:  uint16(word >> 45),
			Stride: uint16(word >> 55),
		})
	}
	return prog
}

// FuzzRegionInterp targets the checkpoint-region machinery under
// arbitrary streams and intervals: the CFG must partition the program
// exactly, the fixpoint must terminate within the lattice-height bound,
// and certification must never panic — whatever the interval (empty
// regions cannot exist, back-to-back checkpoints make every region one
// instruction, and a stream ending mid-region leaves a short tail).
func FuzzRegionInterp(f *testing.F) {
	seed := func(interval byte, p isa.Program) []byte {
		b := []byte{interval}
		for i := range p {
			w, err := isa.Encode(p[i])
			if err != nil {
				f.Fatal(err)
			}
			b = append(b, 0)
			b = binary.BigEndian.AppendUint64(b, w)
		}
		return b
	}
	clean := isa.Program{
		isa.ActRange(true, 0, 0, 4, 1),
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NAND2, []int{0, 2}, 1),
		isa.Read(0, 1),
		isa.Write(1, 3),
	}
	f.Add(seed(0, nil))     // empty program, degenerate interval
	f.Add(seed(1, clean))   // back-to-back checkpoints
	f.Add(seed(3, clean))   // 5 instructions at interval 3: mid-region end
	f.Add(seed(255, clean)) // interval longer than the stream
	f.Add(seed(2, isa.Program{isa.ActRange(true, 0, 0, 4, 1), isa.ActRange(true, 0, 0, 8, 1)}))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		interval := int(data[0])
		prog := fuzzProgram(data[1:])

		cfg := BuildCFG(len(prog), interval)
		next := 0
		for i, r := range cfg.Regions {
			if r.Index != i || r.Start != next || r.End <= r.Start {
				t.Fatalf("region %d = %+v does not continue the partition at %d", i, r, next)
			}
			next = r.End
		}
		if next != len(prog) {
			t.Fatalf("regions cover [0,%d), program has %d instructions", next, len(prog))
		}

		opts := Options{CheckpointInterval: interval}
		valid := make([]bool, len(prog))
		allValid := true
		for i := range prog {
			valid[i] = prog[i].Validate() == nil
			allValid = allValid && valid[i]
		}
		it := newInterp(prog, opts, valid)
		if it.iterations >= maxIterations(len(prog)) {
			t.Fatalf("fixpoint hit the %d-iteration guard", maxIterations(len(prog)))
		}

		// Certification must never panic; on fully valid streams it must
		// succeed and partition like the CFG.
		cert, err := Certify(prog, opts)
		if allValid {
			if err != nil {
				t.Fatalf("valid stream failed to certify: %v", err)
			}
			if len(cert.Regions) != len(cfg.Regions) {
				t.Fatalf("certificate has %d regions, CFG %d", len(cert.Regions), len(cfg.Regions))
			}
		} else if err == nil {
			t.Fatal("invalid stream certified")
		}
	})
}
