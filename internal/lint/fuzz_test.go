package lint

import (
	"encoding/binary"
	"reflect"
	"testing"

	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// FuzzLintProgram feeds arbitrary instruction streams to the linter
// (mirroring internal/isa's FuzzDecode): it must never panic and must be
// deterministic, whatever mix of valid, invalid, and garbage
// instructions the stream contains. Each 9-byte chunk of input yields
// one instruction: a selector byte picks between the decoder (valid or
// rejected words) and a raw, unvalidated struct whose fields come
// straight from the fuzz data — the latter exercises the Valid-mask
// paths that keep semantic rules away from uninterpretable fields.
func FuzzLintProgram(f *testing.F) {
	seed := func(p isa.Program) []byte {
		var b []byte
		for i := range p {
			w, err := isa.Encode(p[i])
			if err != nil {
				f.Fatal(err)
			}
			b = append(b, 0)
			b = binary.BigEndian.AppendUint64(b, w)
		}
		return b
	}
	f.Add(seed(isa.Program{
		isa.ActRange(true, 0, 0, 4, 1),
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NAND2, []int{0, 2}, 1),
		isa.Read(0, 1),
		isa.Write(1, 3),
	}))
	f.Add(seed(isa.Program{isa.Write(0, 0), isa.Preset(5, mtj.AP)}))
	f.Add([]byte{0xFF, 1, 2, 3, 4, 5, 6, 7, 8, 0xFF})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var prog isa.Program
		for len(data) >= 9 {
			sel, word := data[0], binary.BigEndian.Uint64(data[1:9])
			data = data[9:]
			if sel%2 == 0 {
				in, err := isa.Decode(word)
				if err != nil {
					continue
				}
				prog = append(prog, in)
				continue
			}
			// Raw construction: every field from the word, unvalidated.
			prog = append(prog, isa.Instruction{
				Kind:   isa.Kind(sel >> 1 & 7),
				Gate:   mtj.GateKind(word),
				In:     [3]uint16{uint16(word), uint16(word >> 16), uint16(word >> 32)},
				Out:    uint16(word >> 48),
				Tile:   uint16(word >> 3),
				Row:    uint16(word >> 13),
				Rot:    uint16(word >> 23),
				Value:  mtj.State(word >> 33 & 3),
				Ranged: sel&4 != 0,
				Start:  uint16(word >> 35),
				Count:  uint16(word >> 45),
				Stride: uint16(word >> 55),
			})
		}
		for _, opts := range []Options{
			{},
			{Geometry: Geometry{Tiles: 2, Rows: 64, Cols: 16}, CheckpointInterval: 3},
		} {
			r1 := Lint(prog, opts)
			r2 := Lint(prog, opts)
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("lint is non-deterministic:\n%+v\nvs\n%+v", r1, r2)
			}
		}
	})
}
