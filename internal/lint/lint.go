// Package lint is the static program verifier for MOUSE instruction
// streams: it unifies the correctness conditions the paper states but
// the repo previously checked only piecemeal — per-instruction
// encodability (isa.Validate), replay safety of checkpoint regions
// (Section IV-D's WAR hazards), and energy forward progress (Section I's
// non-termination hazard) — and adds the dataflow discipline the
// application-mapping sections rely on: outputs preset before gates,
// the memory buffer read before it is written, activations established
// before the instructions that depend on them, and addresses that fit
// the deployed array geometry.
//
// Each analysis is an independently registered Rule producing
// Diagnostics (rule ID, severity, instruction index, optional source
// line, message), so new passes are cheap to add and front ends —
// cmd/mousevet, mouseasm -vet, the compile package's self-check hook —
// share one report format, including machine-readable JSON.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// Severity ranks a diagnostic. Errors mean the program is wrong on the
// paper's own terms (it cannot execute as intended on any MOUSE
// machine); warnings mean it is wasteful or fragile; infos surface
// facts worth knowing that are often intentional (e.g. reading
// preloaded operand rows).
type Severity int

const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// MarshalJSON renders the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the lower-case severity names.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = Info
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("lint: unknown severity %q", name)
	}
	return nil
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Rule is the ID of the rule that produced the finding.
	Rule string `json:"rule"`
	// Severity ranks the finding.
	Severity Severity `json:"severity"`
	// Index is the instruction index in the stream, or -1 for
	// program-level findings.
	Index int `json:"index"`
	// Line is the 1-based source line when the program came from
	// assembly text (0 when unknown or not applicable).
	Line int `json:"line,omitempty"`
	// Message describes the finding.
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	at := "program"
	switch {
	case d.Line > 0:
		at = fmt.Sprintf("line %d", d.Line)
	case d.Index >= 0:
		at = fmt.Sprintf("instruction %d", d.Index)
	}
	return fmt.Sprintf("%s: %s: %s [%s]", at, d.Severity, d.Message, d.Rule)
}

// Geometry is the deployed array shape diagnostics are validated
// against. The ISA address space (512 tiles of 1024×1024) is the upper
// bound; real machines are smaller, and references beyond the machine
// are exactly the silent failures a static check must catch.
type Geometry struct {
	Tiles int `json:"tiles"`
	Rows  int `json:"rows"`
	Cols  int `json:"cols"`
}

// FullGeometry returns the maximal ISA-addressable geometry.
func FullGeometry() Geometry {
	return Geometry{Tiles: isa.MaxTiles, Rows: isa.Rows, Cols: isa.Cols}
}

// Options configure a lint run. The zero value means: full ISA
// geometry, the Modern STT technology, per-instruction checkpointing,
// and every registered rule.
type Options struct {
	// Geometry bounds tile/row/column references; zero → FullGeometry.
	Geometry Geometry
	// Config is the technology for the energy rule; nil → mtj.ModernSTT.
	Config *mtj.Config
	// CheckpointInterval is the replay-region length the replay rule
	// verifies; values ≤ 1 model MOUSE's per-instruction checkpointing,
	// under which every region is trivially safe.
	CheckpointInterval int
	// MinHeadroom is the energy rule's warning threshold on
	// window/max-op headroom; 0 → 1.5.
	MinHeadroom float64
	// LineMap gives the 1-based source line of each instruction (from
	// isa.ParseLines); nil leaves Diagnostic.Line zero.
	LineMap []int
	// Rules restricts the run to the listed rule IDs; nil → all.
	Rules []string
}

func (o Options) geometry() Geometry {
	g := o.Geometry
	full := FullGeometry()
	if g.Tiles <= 0 {
		g.Tiles = full.Tiles
	}
	if g.Rows <= 0 {
		g.Rows = full.Rows
	}
	if g.Cols <= 0 {
		g.Cols = full.Cols
	}
	return g
}

// Rule is one registered analysis pass.
type Rule struct {
	// ID names the rule in diagnostics and -rules filters.
	ID string
	// Doc is a one-line description, shown by mousevet -rules help.
	Doc string
	// Check runs the analysis, reporting through the pass.
	Check func(*Pass)
}

var registry []Rule

// Register adds a rule; rule IDs must be unique. Future analyses
// register themselves here and are picked up by every front end.
func Register(r Rule) {
	if r.ID == "" || r.Check == nil {
		panic("lint: rule needs an ID and a Check")
	}
	for _, have := range registry {
		if have.ID == r.ID {
			panic(fmt.Sprintf("lint: duplicate rule %q", r.ID))
		}
	}
	registry = append(registry, r)
}

// Rules returns the registered rules in registration order.
func Rules() []Rule {
	return append([]Rule(nil), registry...)
}

// Pass is the shared state rules run against.
type Pass struct {
	// Prog is the program under analysis.
	Prog isa.Program
	// Opts are the resolved options (geometry and defaults filled in).
	Opts Options
	// Valid[i] reports whether Prog[i] passed isa.Validate. Semantic
	// rules must skip invalid instructions (their fields — gate kinds
	// in particular — cannot be interpreted), and whole-program rules
	// skip entirely unless AllValid.
	Valid []bool
	// AllValid reports whether every instruction validated.
	AllValid bool

	diags []Diagnostic
	itp   *interp
}

// interp returns the pass's fixpoint abstract interpretation, solving
// it on first use and sharing the solution between rules.
func (p *Pass) interp() *interp {
	if p.itp == nil {
		p.itp = newInterp(p.Prog, p.Opts, p.Valid)
	}
	return p.itp
}

// Report files a diagnostic against instruction idx (-1 for
// program-level findings).
func (p *Pass) Report(rule string, idx int, sev Severity, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Rule:     rule,
		Severity: sev,
		Index:    idx,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Report is the result of a lint run.
type Report struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// Max returns the highest severity present, and false when there are no
// diagnostics.
func (r Report) Max() (Severity, bool) {
	if len(r.Diagnostics) == 0 {
		return 0, false
	}
	max := r.Diagnostics[0].Severity
	for _, d := range r.Diagnostics[1:] {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max, true
}

// HasErrors reports whether any finding is error-severity.
func (r Report) HasErrors() bool {
	max, ok := r.Max()
	return ok && max == Error
}

// Count returns how many findings have exactly severity sev.
func (r Report) Count(sev Severity) int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// ByRule returns the findings produced by one rule.
func (r Report) ByRule(id string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Rule == id {
			out = append(out, d)
		}
	}
	return out
}

// Err returns nil when the report has no error-severity findings, and
// an error summarizing them otherwise — the contract enforced by
// mouseasm -vet and the compile self-check hook.
func (r Report) Err() error {
	if !r.HasErrors() {
		return nil
	}
	first := ""
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			first = d.String()
			break
		}
	}
	return fmt.Errorf("lint: %d error(s), first: %s", r.Count(Error), first)
}

// WriteJSON emits the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if r.Diagnostics == nil {
		r.Diagnostics = []Diagnostic{}
	}
	return enc.Encode(r)
}

// Lint runs the registered rules (filtered by opts.Rules) over the
// program and returns the sorted report. It never panics, whatever the
// instruction stream contains: instructions failing isa.Validate are
// reported under the "invalid" pseudo-rule and excluded from semantic
// analysis.
func Lint(prog isa.Program, opts Options) Report {
	opts.Geometry = opts.geometry()
	if opts.Config == nil {
		opts.Config = mtj.ModernSTT()
	}
	if opts.CheckpointInterval < 1 {
		opts.CheckpointInterval = 1
	}
	if opts.MinHeadroom <= 0 {
		opts.MinHeadroom = 1.5
	}

	pass := &Pass{
		Prog:     prog,
		Opts:     opts,
		Valid:    make([]bool, len(prog)),
		AllValid: true,
	}
	for i := range prog {
		if err := prog[i].Validate(); err != nil {
			pass.AllValid = false
			pass.Report("invalid", i, Error, "%v", err)
		} else {
			pass.Valid[i] = true
		}
	}

	want := func(id string) bool {
		if len(opts.Rules) == 0 {
			return true
		}
		for _, r := range opts.Rules {
			if r == id {
				return true
			}
		}
		return false
	}
	for _, r := range registry {
		if want(r.ID) {
			r.Check(pass)
		}
	}

	for i := range pass.diags {
		if idx := pass.diags[i].Index; idx >= 0 && idx < len(opts.LineMap) {
			pass.diags[i].Line = opts.LineMap[idx]
		}
	}
	// One deterministic order whatever the rule-registration order:
	// errors first, then warnings, then infos; within a severity by
	// stream position, then rule ID, then message text.
	sort.SliceStable(pass.diags, func(i, j int) bool {
		a, b := pass.diags[i], pass.diags[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return Report{Diagnostics: pass.diags}
}
