package mtj

import "testing"

func TestVariationToleranceBasics(t *testing.T) {
	for _, cfg := range Configs() {
		for g := GateKind(0); g.Valid(); g++ {
			tol := VariationTolerance(g, cfg)
			if tol < 0 || tol >= 0.5 {
				t.Errorf("%s on %s: tolerance %g out of range", g, cfg.Name, tol)
			}
			if tol == 0 {
				t.Errorf("%s on %s: no variation tolerance at all", g, cfg.Name)
			}
			// The nominal bias must work at the reported tolerance and
			// fail just above it.
			v, err := Bias(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !gateWorks(g, cfg, v, tol*0.999) {
				t.Errorf("%s on %s: fails below reported tolerance", g, cfg.Name)
			}
			if gateWorks(g, cfg, v, tol+0.01) {
				t.Errorf("%s on %s: works above reported tolerance", g, cfg.Name)
			}
		}
	}
}

// TestSHEMoreRobustThanSTT quantifies the Section II-D claim: removing
// the output MTJ from the current path makes input states easier to
// distinguish, so the SHE cell tolerates more device variation.
func TestSHEMoreRobustThanSTT(t *testing.T) {
	stt := ProjectedSTT()
	she := ProjectedSHE()
	sttTol, sttWorst := MinVariationTolerance(stt)
	sheTol, _ := MinVariationTolerance(she)
	if sheTol <= sttTol {
		t.Errorf("SHE min tolerance %.4f not above STT %.4f (worst STT gate: %v)", sheTol, sttTol, sttWorst)
	}
	t.Logf("min variation tolerance: STT %.1f%% (%v), SHE %.1f%%", sttTol*100, sttWorst, sheTol*100)
}

// TestVariationPhysics pins down the asymmetry behind the SHE cell's
// robustness advantage. Gates that preset the output to P (the
// NAND/NOR family, switching toward AP) benefit from projected MTJs'
// higher TMR: more contrast between input combinations. Gates that
// preset the output to AP (AND/OR family, toward P) get *worse* on
// projected STT, because the 76 kΩ output sits in series with the
// inputs and swamps their differences — the precise problem Section
// II-D says the SHE channel removes from the path.
func TestVariationPhysics(t *testing.T) {
	modern, projected := ModernSTT(), ProjectedSTT()
	// Toward-AP gates improve with TMR.
	for _, g := range []GateKind{NOR2, NOR3, MIN3, NAND3} {
		m, p := VariationTolerance(g, modern), VariationTolerance(g, projected)
		if p <= m {
			t.Errorf("%s: projected tolerance %.4f not above modern %.4f", g, p, m)
		}
	}
	// Toward-P gates with high thresholds degrade on projected STT (the
	// output RAP dominates the network).
	for _, g := range []GateKind{OR3, MAJ3, OR2} {
		m, p := VariationTolerance(g, modern), VariationTolerance(g, projected)
		if p >= m {
			t.Errorf("%s: projected tolerance %.4f unexpectedly above modern %.4f", g, p, m)
		}
		// ...and SHE repairs exactly these gates.
		s := VariationTolerance(g, ProjectedSHE())
		if s <= p {
			t.Errorf("%s: SHE tolerance %.4f not above projected STT %.4f", g, s, p)
		}
	}
}

// TestArrayWithVariationStillComputes ties the tolerance number back to
// the functional array: at a variation inside the reported tolerance,
// biasing and thresholding still produce correct truth tables.
func TestArrayWithVariationStillComputes(t *testing.T) {
	cfg := ModernSTT()
	for g := GateKind(0); g.Valid(); g++ {
		tol := VariationTolerance(g, cfg)
		v, err := Bias(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// All-high and all-low corners at 90% of tolerance.
		for _, f := range []float64{1 + 0.9*tol, 1 - 0.9*tol} {
			varied := *cfg
			varied.P.RP *= f
			varied.P.RAP *= f
			spec := Spec(g)
			for combo := 0; combo < 1<<spec.Inputs; combo++ {
				inputs := make([]State, spec.Inputs)
				for i := range inputs {
					inputs[i] = FromBit((combo >> i) & 1)
				}
				i := DriveCurrent(g, &varied, v, inputs)
				out := NewDevice(spec.Preset)
				out.ApplyPulse(&varied.P, spec.Dir, i, varied.P.SwitchTime)
				if out.State() != Evaluate(g, inputs) {
					t.Errorf("%s at variation %+.0f%%: inputs %v wrong", g, (f-1)*100, inputs)
				}
			}
		}
	}
}
