package mtj

import (
	"testing"
	"testing/quick"
)

func TestDevicePulseThreshold(t *testing.T) {
	p := Modern()
	d := NewDevice(P)

	// Sub-critical current: no switch.
	if d.ApplyPulse(&p, TowardAP, p.SwitchCurrent*0.99, p.SwitchTime) {
		t.Errorf("sub-critical current switched the device")
	}
	if d.State() != P {
		t.Fatalf("state changed on failed pulse")
	}

	// Too-short pulse: no switch (this is the interrupted-operation case).
	if d.ApplyPulse(&p, TowardAP, p.SwitchCurrent, p.SwitchTime*0.5) {
		t.Errorf("short pulse switched the device")
	}
	if d.State() != P {
		t.Fatalf("state changed on interrupted pulse")
	}

	// Full pulse: switches.
	if !d.ApplyPulse(&p, TowardAP, p.SwitchCurrent, p.SwitchTime) {
		t.Errorf("critical full-length pulse did not switch")
	}
	if d.State() != AP {
		t.Fatalf("device not in AP after switching pulse")
	}
}

func TestDevicePulseUnidirectional(t *testing.T) {
	// The core idempotency primitive: a pulse direction can only move the
	// device toward its own target, so repeating a pulse never undoes a
	// completed switch (Table I, bottom-right cell).
	p := Modern()
	d := NewDevice(P)
	huge := p.SwitchCurrent * 100

	d.ApplyPulse(&p, TowardAP, huge, p.SwitchTime*10)
	if d.State() != AP {
		t.Fatalf("setup switch failed")
	}
	// Re-applying the same pulse (even much stronger, as happens when the
	// output has switched to low resistance and the same voltage drives
	// more current) leaves it at AP.
	if d.ApplyPulse(&p, TowardAP, huge*10, p.SwitchTime*100) {
		t.Errorf("repeat pulse toward AP reports a switch from AP")
	}
	if d.State() != AP {
		t.Errorf("repeat pulse changed state: %v", d.State())
	}
}

func TestDeviceSetAndResistance(t *testing.T) {
	p := Modern()
	d := NewDevice(P)
	if d.Resistance(&p) != p.RP {
		t.Errorf("P resistance = %g, want %g", d.Resistance(&p), p.RP)
	}
	d.Set(AP)
	if d.Resistance(&p) != p.RAP {
		t.Errorf("AP resistance = %g, want %g", d.Resistance(&p), p.RAP)
	}
	if d.Bit() != 1 {
		t.Errorf("AP bit = %d, want 1", d.Bit())
	}
}

func TestDeviceZeroValue(t *testing.T) {
	var d Device
	if d.State() != P || d.Bit() != 0 {
		t.Errorf("zero-value device should be P/0, got %v", d.State())
	}
}

// TestPulseIdempotencyProperty checks, over random pulse sequences, that
// re-performing any pulse is idempotent: applying the same pulse twice
// always leaves the device in the same state as applying it once.
func TestPulseIdempotencyProperty(t *testing.T) {
	p := Projected()
	prop := func(startAP bool, dirAP bool, currentScale, durScale uint8) bool {
		start := P
		if startAP {
			start = AP
		}
		dir := TowardP
		if dirAP {
			dir = TowardAP
		}
		i := p.SwitchCurrent * float64(currentScale) / 128.0
		dur := p.SwitchTime * float64(durScale) / 128.0

		once := NewDevice(start)
		once.ApplyPulse(&p, dir, i, dur)

		twice := NewDevice(start)
		twice.ApplyPulse(&p, dir, i, dur)
		twice.ApplyPulse(&p, dir, i, dur)

		return once.State() == twice.State()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestInterruptedThenRepeatedPulse models Table I directly at the device
// level: a pulse interrupted at any point, then re-performed in full,
// always produces the same final state as an uninterrupted pulse.
func TestInterruptedThenRepeatedPulse(t *testing.T) {
	p := Modern()
	for _, start := range []State{P, AP} {
		for _, dir := range []Direction{TowardP, TowardAP} {
			want := NewDevice(start)
			want.ApplyPulse(&p, dir, p.SwitchCurrent*1.2, p.SwitchTime)

			for frac := 0.0; frac <= 1.0; frac += 0.125 {
				got := NewDevice(start)
				// Interrupted pulse: only frac of the required duration.
				got.ApplyPulse(&p, dir, p.SwitchCurrent*1.2, p.SwitchTime*frac)
				// Power restored; the operation is re-performed in full.
				got.ApplyPulse(&p, dir, p.SwitchCurrent*1.2, p.SwitchTime)
				if got.State() != want.State() {
					t.Errorf("start=%v dir=%v frac=%g: got %v, want %v",
						start, dir, frac, got.State(), want.State())
				}
			}
		}
	}
}
