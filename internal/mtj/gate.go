package mtj

import (
	"fmt"
	"math"
)

// GateKind identifies one of the in-array threshold logic gates MOUSE can
// perform. Every gate follows the same template (Section II-B): the input
// MTJs sit in parallel, in series with a preset output MTJ (STT) or the
// output cell's SHE channel (SHE), and a bias voltage drives a current
// whose magnitude depends on how many inputs are in the low-resistance P
// state. The output switches iff that count reaches the gate's threshold.
type GateKind uint8

const (
	// NOT inverts its single input (preset 0, switches toward 1 when the
	// input is 0).
	NOT GateKind = iota
	// BUF copies its single input (preset 1, switches toward 0 when the
	// input is 0).
	BUF
	// NAND2 is the 2-input NAND used as the universal gate in the paper.
	NAND2
	// AND2 is the 2-input AND (Table I's worked example).
	AND2
	// NOR2 is the 2-input NOR.
	NOR2
	// OR2 is the 2-input OR.
	OR2
	// NAND3 is the 3-input NAND.
	NAND3
	// AND3 is the 3-input AND.
	AND3
	// NOR3 is the 3-input NOR.
	NOR3
	// OR3 is the 3-input OR.
	OR3
	// MAJ3 is the 3-input majority gate (the full-adder carry).
	MAJ3
	// MIN3 is the 3-input minority gate (complement of majority).
	MIN3

	numGates
)

// NumGates is the number of distinct gate kinds.
const NumGates = int(numGates)

var gateNames = [...]string{
	NOT: "NOT", BUF: "BUF",
	NAND2: "NAND2", AND2: "AND2", NOR2: "NOR2", OR2: "OR2",
	NAND3: "NAND3", AND3: "AND3", NOR3: "NOR3", OR3: "OR3",
	MAJ3: "MAJ3", MIN3: "MIN3",
}

func (g GateKind) String() string {
	if int(g) < len(gateNames) {
		return gateNames[g]
	}
	return fmt.Sprintf("GateKind(%d)", uint8(g))
}

// Valid reports whether g names a real gate.
func (g GateKind) Valid() bool { return g < numGates }

// GateSpec describes a threshold gate: how many inputs it has, the preset
// state of its output, the current direction applied during the operation,
// and the minimum number of P-state (logic 0) inputs that produces enough
// current to switch the output.
type GateSpec struct {
	Gate GateKind
	// Inputs is the number of input MTJs (1, 2 or 3).
	Inputs int
	// MinP is the switching threshold: the output switches iff at least
	// MinP inputs are in the P (low resistance) state.
	MinP int
	// Preset is the state the output must be written to before the gate.
	Preset State
	// Dir is the current direction during the operation; the output can
	// only move toward Dir.Target().
	Dir Direction
}

var gateSpecs = [...]GateSpec{
	NOT:   {NOT, 1, 1, P, TowardAP},
	BUF:   {BUF, 1, 1, AP, TowardP},
	NAND2: {NAND2, 2, 1, P, TowardAP},
	AND2:  {AND2, 2, 1, AP, TowardP},
	NOR2:  {NOR2, 2, 2, P, TowardAP},
	OR2:   {OR2, 2, 2, AP, TowardP},
	NAND3: {NAND3, 3, 1, P, TowardAP},
	AND3:  {AND3, 3, 1, AP, TowardP},
	NOR3:  {NOR3, 3, 3, P, TowardAP},
	OR3:   {OR3, 3, 3, AP, TowardP},
	MAJ3:  {MAJ3, 3, 2, AP, TowardP},
	MIN3:  {MIN3, 3, 2, P, TowardAP},
}

// Spec returns the threshold-gate specification for g.
func Spec(g GateKind) GateSpec {
	if !g.Valid() {
		panic(fmt.Sprintf("mtj: invalid gate %d", uint8(g)))
	}
	return gateSpecs[g]
}

// Evaluate returns the ideal logic output of gate g for the given input
// states, derived purely from the threshold specification. The functional
// array simulation computes the same result through the resistor network;
// tests assert the two always agree.
func Evaluate(g GateKind, inputs []State) State {
	spec := Spec(g)
	if len(inputs) != spec.Inputs {
		panic(fmt.Sprintf("mtj: %s takes %d inputs, got %d", g, spec.Inputs, len(inputs)))
	}
	if countP(inputs) >= spec.MinP {
		return spec.Dir.Target()
	}
	return spec.Preset
}

func countP(inputs []State) int {
	n := 0
	for _, s := range inputs {
		if s == P {
			n++
		}
	}
	return n
}

// legResistance returns the resistance of one input leg: the MTJ itself,
// plus the SHE read path's channel resistance in the 2T1M cell.
func legResistance(cfg *Config, s State) float64 {
	r := cfg.P.Resistance(s)
	if cfg.Cell == SHE {
		r += cfg.RChannel
	}
	return r
}

// parallelR returns the equivalent resistance of n input legs of which
// pCount are in the P state.
func parallelR(cfg *Config, n, pCount int) float64 {
	g := float64(pCount)/legResistance(cfg, P) + float64(n-pCount)/legResistance(cfg, AP)
	return 1 / g
}

// outputSeriesR returns the series resistance contributed by the output
// cell: the preset MTJ itself in the STT cell, or only the SHE write
// channel in the 2T1M cell (the key SHE efficiency advantage).
func outputSeriesR(cfg *Config, preset State) float64 {
	if cfg.Cell == SHE {
		return cfg.RChannel
	}
	return cfg.P.Resistance(preset)
}

// BiasWindow returns the admissible bias voltage range [lo, hi) for gate g
// under configuration cfg: any voltage in the window makes the output
// switch exactly when at least MinP inputs are P. The window is always
// non-empty for a valid threshold gate because adding one more P input
// strictly lowers the network resistance.
func BiasWindow(g GateKind, cfg *Config) (lo, hi float64) {
	spec := Spec(g)
	ic := cfg.P.SwitchCurrent
	rout := outputSeriesR(cfg, spec.Preset)
	// Weakest case that must switch: exactly MinP inputs at P.
	lo = ic * (parallelR(cfg, spec.Inputs, spec.MinP) + rout)
	if spec.MinP == 0 {
		// Degenerate (always switches); cap by a nominal 2x overdrive.
		return lo, 2 * lo
	}
	// Strongest case that must NOT switch: MinP-1 inputs at P.
	hi = ic * (parallelR(cfg, spec.Inputs, spec.MinP-1) + rout)
	return lo, hi
}

// biasOverdrive is the fraction above the lower window edge at which the
// operating bias is placed: enough margin to switch reliably while keeping
// the operation energy low (the paper optimizes for energy, Section IV-B).
const biasOverdrive = 1.15

// Bias returns the operating voltage for gate g under cfg: the lower
// window edge with a 15% overdrive when the window is wide enough
// (minimizing energy), otherwise the geometric mean of the window
// (maximizing symmetric noise margin in a narrow window). It returns an
// error only if the window is empty, which would make the gate
// unrealizable. The result is memoized per electrical configuration
// alongside the gate truth table (see Table).
func Bias(g GateKind, cfg *Config) (float64, error) {
	e := &tablesFor(cfg).gates[g]
	if e.infeasible {
		return 0, infeasibleErr(g, cfg, e.lo, e.hi)
	}
	return e.table.Bias, nil
}

// biasUncached is the direct computation behind Bias; the table cache
// calls it exactly once per (gate, configuration).
func biasUncached(g GateKind, cfg *Config) (float64, error) {
	lo, hi := BiasWindow(g, cfg)
	if hi <= lo {
		return 0, infeasibleErr(g, cfg, lo, hi)
	}
	v := lo * biasOverdrive
	if mid := math.Sqrt(lo * hi); v >= mid {
		v = mid
	}
	return v, nil
}

// RelativeMargin returns (hi-lo)/lo, the relative width of the bias
// window. Larger margins mean more robust gates; the SHE cell improves
// this because the output MTJ no longer sits in the current path
// (Section II-D).
func RelativeMargin(g GateKind, cfg *Config) float64 {
	lo, hi := BiasWindow(g, cfg)
	return (hi - lo) / lo
}

// DriveCurrent returns the current through the output cell when gate g is
// biased at v and the inputs are in the given states, with the output
// still at its preset state. The functional array applies this current to
// the output device; whether it crosses the switching threshold determines
// the gate result.
func DriveCurrent(g GateKind, cfg *Config, v float64, inputs []State) float64 {
	spec := Spec(g)
	if len(inputs) != spec.Inputs {
		panic(fmt.Sprintf("mtj: %s takes %d inputs, got %d", g, spec.Inputs, len(inputs)))
	}
	r := parallelR(cfg, spec.Inputs, countP(inputs)) + outputSeriesR(cfg, spec.Preset)
	return v / r
}

// GateEnergy returns the electrical energy, in joules, dissipated in one
// column by one execution of gate g: bias voltage times the current of the
// threshold (weakest switching) case, for one switching time. Peripheral
// circuitry overheads are added separately by the energy model. The
// result is memoized per electrical configuration alongside the gate
// truth table (see Table); infeasible gates report 0.
func GateEnergy(g GateKind, cfg *Config) float64 {
	return tablesFor(cfg).gates[g].energy
}

// gateEnergyUncached is the direct computation behind GateEnergy; the
// table cache calls it exactly once per (gate, configuration).
func gateEnergyUncached(g GateKind, cfg *Config) float64 {
	v, err := biasUncached(g, cfg)
	if err != nil {
		// All shipped gate/config combinations are feasible; a caller
		// constructing an exotic config learns about it via Bias.
		return 0
	}
	spec := Spec(g)
	r := parallelR(cfg, spec.Inputs, spec.MinP) + outputSeriesR(cfg, spec.Preset)
	i := v / r
	return v * i * cfg.P.SwitchTime
}

// writeOverdrive is the current margin applied above the critical
// switching current for deterministic writes.
const writeOverdrive = 1.5

// WriteEnergy returns the energy, in joules, to write one bit: a switching
// current pulse through the MTJ (STT) or through the low-resistance SHE
// channel (2T1M cell), for one switching time.
func WriteEnergy(cfg *Config) float64 {
	i := cfg.P.SwitchCurrent * writeOverdrive
	var r float64
	if cfg.Cell == SHE {
		r = cfg.RChannel
	} else {
		// Worst case: the device spends the pulse in its AP state.
		r = cfg.P.RAP
	}
	return i * i * r * cfg.P.SwitchTime
}

// ReadEnergy returns the energy, in joules, to sense one bit. The read
// voltage is sized to keep the read current at half the switching current
// (avoiding read disturb).
func ReadEnergy(cfg *Config) float64 {
	v := 0.5 * cfg.P.SwitchCurrent * cfg.P.RP
	r := cfg.P.RP
	if cfg.Cell == SHE {
		r += cfg.RChannel
	}
	return v * v / r * cfg.P.SwitchTime
}
