package mtj

import "testing"

func TestStateBits(t *testing.T) {
	if P.Bit() != 0 || AP.Bit() != 1 {
		t.Fatalf("P.Bit()=%d AP.Bit()=%d, want 0 and 1", P.Bit(), AP.Bit())
	}
	if FromBit(0) != P || FromBit(1) != AP || FromBit(7) != AP {
		t.Fatalf("FromBit mapping wrong")
	}
	if P.String() != "P" || AP.String() != "AP" {
		t.Fatalf("state strings wrong: %q %q", P, AP)
	}
}

func TestDirectionTarget(t *testing.T) {
	if TowardP.Target() != P {
		t.Errorf("TowardP targets %v", TowardP.Target())
	}
	if TowardAP.Target() != AP {
		t.Errorf("TowardAP targets %v", TowardAP.Target())
	}
	if TowardP.String() == TowardAP.String() {
		t.Errorf("direction strings collide")
	}
}

func TestTableIIParams(t *testing.T) {
	m := Modern()
	if m.RP != 3.15e3 || m.RAP != 7.34e3 {
		t.Errorf("modern resistances %g/%g don't match Table II", m.RP, m.RAP)
	}
	if m.SwitchTime != 3e-9 || m.SwitchCurrent != 40e-6 {
		t.Errorf("modern switching %g s / %g A don't match Table II", m.SwitchTime, m.SwitchCurrent)
	}
	p := Projected()
	if p.RP != 7.34e3 || p.RAP != 76.39e3 {
		t.Errorf("projected resistances %g/%g don't match Table II", p.RP, p.RAP)
	}
	if p.SwitchTime != 1e-9 || p.SwitchCurrent != 3e-6 {
		t.Errorf("projected switching %g s / %g A don't match Table II", p.SwitchTime, p.SwitchCurrent)
	}
	if p.TMR() <= m.TMR() {
		t.Errorf("projected TMR (%g) should exceed modern (%g)", p.TMR(), m.TMR())
	}
}

func TestParamsValidate(t *testing.T) {
	good := Modern()
	if err := good.Validate(); err != nil {
		t.Fatalf("modern params should validate: %v", err)
	}
	cases := []func(*Params){
		func(p *Params) { p.RP = 0 },
		func(p *Params) { p.RAP = p.RP },
		func(p *Params) { p.SwitchTime = 0 },
		func(p *Params) { p.SwitchCurrent = -1 },
	}
	for i, mutate := range cases {
		p := Modern()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range Configs() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	bad := ModernSTT()
	bad.Freq = 0
	if err := bad.Validate(); err == nil {
		t.Errorf("zero frequency should not validate")
	}
	bad = ProjectedSHE()
	bad.RChannel = 0
	if err := bad.Validate(); err == nil {
		t.Errorf("SHE without channel resistance should not validate")
	}
	bad = ModernSTT()
	bad.CapVMax = bad.CapVMin
	if err := bad.Validate(); err == nil {
		t.Errorf("empty capacitor window should not validate")
	}
	bad = ModernSTT()
	bad.CapC = 0
	if err := bad.Validate(); err == nil {
		t.Errorf("zero capacitance should not validate")
	}
}

func TestConfigFrequencies(t *testing.T) {
	if got := ModernSTT().Freq; got != 30.3e6 {
		t.Errorf("modern frequency = %g, want 30.3 MHz", got)
	}
	if got := ProjectedSTT().Freq; got != 90.9e6 {
		t.Errorf("projected frequency = %g, want 90.9 MHz", got)
	}
	ct := ModernSTT().CycleTime()
	if ct < 32e-9 || ct > 34e-9 {
		t.Errorf("modern cycle time = %g, want about 33 ns", ct)
	}
}

func TestConfigCellKinds(t *testing.T) {
	if ModernSTT().Cell != STT || ProjectedSTT().Cell != STT {
		t.Errorf("STT configs must use STT cells")
	}
	if ProjectedSHE().Cell != SHE {
		t.Errorf("SHE config must use SHE cell")
	}
	if STT.String() == SHE.String() {
		t.Errorf("cell kind strings collide")
	}
}
