package mtj

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file derives, once per (gate, electrical configuration), the
// full-pulse truth table implied by the resistor-network model, and
// memoizes it together with the gate's operating bias and energy. The
// packed word-parallel array engine (internal/array) executes logic
// operations directly from these tables; the scalar per-cell path keeps
// using DriveCurrent/ApplyPulse, and tests assert the two agree bit for
// bit.
//
// The derivation is sound because the drive current through the output
// cell depends on the input states only through how many of them are in
// the low-resistance P state (parallelR), and a full, uninterrupted
// pulse always meets the switching-time condition. The table therefore
// collapses to "does the output switch when exactly k inputs are P",
// for k = 0..Inputs.

// TruthTable is the full-pulse behaviour of one gate under one
// configuration, derived from the resistor network (not from the ideal
// threshold spec — tests check they coincide).
type TruthTable struct {
	Gate   GateKind
	Inputs int
	// Preset is the output state the gate expects before execution.
	Preset State
	// Target is the state a switching column ends in (the current
	// direction's target).
	Target State
	// SwitchAtP[k] reports whether a full pulse switches the output when
	// exactly k inputs are in the P state.
	SwitchAtP [4]bool
	// MinSwitchP is the smallest k with SwitchAtP[k]; Inputs+1 when no
	// input combination switches. Because adding a P input strictly
	// lowers the network resistance, SwitchAtP is monotone and the whole
	// table reduces to this single threshold.
	MinSwitchP int
	// Bias is the memoized operating voltage (identical to Bias()).
	Bias float64
	// Energy is the memoized per-column gate energy (identical to
	// GateEnergy()).
	Energy float64
}

// tableKey captures every configuration field the gate electrical model
// reads, so configurations that differ only in bookkeeping (name,
// frequency, capacitor window) share one cache entry and mutated copies
// (the variation study's scaled configs) get fresh ones.
type tableKey struct {
	rp, rap, switchTime, switchCurrent float64
	cell                               CellKind
	rChannel                           float64
}

func keyOf(cfg *Config) tableKey {
	k := tableKey{
		rp:            cfg.P.RP,
		rap:           cfg.P.RAP,
		switchTime:    cfg.P.SwitchTime,
		switchCurrent: cfg.P.SwitchCurrent,
		cell:          cfg.Cell,
	}
	if cfg.Cell == SHE {
		k.rChannel = cfg.RChannel
	}
	return k
}

// gateEntry is one gate's memoized results under one configuration.
type gateEntry struct {
	table TruthTable
	// infeasible records an empty bias window; lo/hi reconstruct the
	// error message with the caller's config name.
	infeasible bool
	lo, hi     float64
	// nonMonotone records a table that is not threshold-shaped; it
	// cannot arise from the resistor network but the packed engine
	// refuses to use such a table rather than trust it.
	nonMonotone bool
	energy      float64
}

type configTables struct {
	gates [NumGates]gateEntry
}

// tableCache memoizes configTables per electrical configuration. Sweeps
// run concurrent workers, so access goes through a sync.Map; duplicate
// computation on a racy first miss is harmless (entries are pure
// functions of the key).
var tableCache sync.Map // tableKey -> *configTables

// lastTables is a one-entry front cache: a run prices every instruction
// under one configuration, and hashing the struct key through the
// sync.Map on each call dominated inference profiles. A plain struct
// compare against the most recent key avoids that; sweeps over many
// configs fall through to the sync.Map and refresh the entry.
var lastTables atomic.Pointer[keyedTables]

type keyedTables struct {
	key  tableKey
	tabs *configTables
}

func tablesFor(cfg *Config) *configTables {
	k := keyOf(cfg)
	if c := lastTables.Load(); c != nil && c.key == k {
		return c.tabs
	}
	var ct *configTables
	if v, ok := tableCache.Load(k); ok {
		ct = v.(*configTables)
	} else {
		ct = &configTables{}
		for g := GateKind(0); g.Valid(); g++ {
			ct.gates[g] = deriveEntry(g, cfg)
		}
		v, _ := tableCache.LoadOrStore(k, ct)
		ct = v.(*configTables)
	}
	lastTables.Store(&keyedTables{key: k, tabs: ct})
	return ct
}

// deriveEntry computes one gate's bias, energy, and resistor-network
// truth table with the original (uncached) model code.
func deriveEntry(g GateKind, cfg *Config) gateEntry {
	spec := Spec(g)
	lo, hi := BiasWindow(g, cfg)
	if hi <= lo {
		return gateEntry{infeasible: true, lo: lo, hi: hi}
	}
	v, err := biasUncached(g, cfg)
	if err != nil {
		return gateEntry{infeasible: true, lo: lo, hi: hi}
	}
	e := gateEntry{energy: gateEnergyUncached(g, cfg)}
	tt := TruthTable{
		Gate:       g,
		Inputs:     spec.Inputs,
		Preset:     spec.Preset,
		Target:     spec.Dir.Target(),
		MinSwitchP: spec.Inputs + 1,
		Bias:       v,
		Energy:     e.energy,
	}
	inputs := make([]State, spec.Inputs)
	for k := 0; k <= spec.Inputs; k++ {
		for i := range inputs {
			if i < k {
				inputs[i] = P
			} else {
				inputs[i] = AP
			}
		}
		// The exact ApplyPulse switching condition for a full pulse.
		sw := DriveCurrent(g, cfg, v, inputs) >= cfg.P.SwitchCurrent
		tt.SwitchAtP[k] = sw
		if sw && tt.MinSwitchP > spec.Inputs {
			tt.MinSwitchP = k
		}
	}
	for k := 0; k <= spec.Inputs; k++ {
		if tt.SwitchAtP[k] != (k >= tt.MinSwitchP) {
			e.nonMonotone = true
		}
	}
	e.table = tt
	return e
}

// SwitchWord evaluates the table's P-count threshold 64 lanes at a
// time: bit i of each argument is one independent evaluation's input
// (inputs beyond the gate's arity are ignored), and bit i of the result
// reports whether that evaluation's output switches under a full pulse.
// This is the single word-parallel form of the table's dispatch — the
// packed column engine and the bit-sliced batch engine both implement
// exactly these masks, and tests hold them to it lane by lane against
// SwitchAtP.
//
// The complements count P (logic 0) inputs: with m = MinSwitchP, the
// masks below are the threshold functions "at least m of the inputs are
// P", specialized per arity.
func (t *TruthTable) SwitchWord(a, b, c uint64) uint64 {
	m := t.MinSwitchP
	switch {
	case m <= 0:
		return ^uint64(0)
	case m > t.Inputs:
		return 0
	}
	switch t.Inputs {
	case 1:
		return ^a
	case 2:
		pa, pb := ^a, ^b
		if m == 1 {
			return pa | pb
		}
		return pa & pb
	default: // 3
		pa, pb, pc := ^a, ^b, ^c
		switch m {
		case 1:
			return pa | pb | pc
		case 2:
			return pa&(pb|pc) | pb&pc
		default:
			return pa & pb & pc
		}
	}
}

// Table returns the memoized full-pulse truth table for gate g under
// cfg. It fails exactly when Bias fails (an empty bias window makes the
// gate unrealizable).
func Table(g GateKind, cfg *Config) (TruthTable, error) {
	if !g.Valid() {
		panic(fmt.Sprintf("mtj: invalid gate %d", uint8(g)))
	}
	e := &tablesFor(cfg).gates[g]
	if e.infeasible {
		return TruthTable{}, infeasibleErr(g, cfg, e.lo, e.hi)
	}
	if e.nonMonotone {
		return TruthTable{}, fmt.Errorf("mtj: gate %s under %s is not threshold-shaped", g, cfg.Name)
	}
	return e.table, nil
}

func infeasibleErr(g GateKind, cfg *Config, lo, hi float64) error {
	return fmt.Errorf("mtj: gate %s infeasible for %s: window [%.4g, %.4g) V is empty", g, cfg.Name, lo, hi)
}
