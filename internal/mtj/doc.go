// Package mtj models magnetic tunnel junction (MTJ) devices and the
// resistor-network logic gates built from them, following the CRAM/MOUSE
// device model (Resch et al., MICRO 2020, Section II).
//
// An MTJ is a two-terminal resistive device with two stable states:
// parallel (P, low resistance, logic 0) and anti-parallel (AP, high
// resistance, logic 1). Driving a sufficiently large current through the
// device for a sufficiently long time switches its state; the *direction*
// of the current selects the target state. Because a given current
// direction can only move the device toward one state — never back — every
// in-array logic operation is idempotent: re-performing an interrupted
// gate can complete a pending switch but can never undo one. This is the
// physical primitive behind MOUSE's intermittent-safety guarantee
// (Table I of the paper).
//
// A two-input gate places the two input MTJs in parallel, in series with a
// preset output MTJ (Fig. 1). Applying a bias voltage across the network
// drives a current through the output whose magnitude depends on the input
// states; the bias is chosen so the output switches exactly for the input
// combinations the gate's truth table requires. The Bias solver in this
// package computes that voltage window from the device parameters, and the
// Network type evaluates the actual current for a given input combination.
//
// The package carries two device parameter sets from Table II of the paper
// (modern and projected MTJs) and the spin-Hall-effect (SHE) cell variant
// (Section II-D), in which writes and logic outputs are driven through a
// low-resistance SHE channel instead of through the output MTJ itself.
package mtj
