package mtj

import "testing"

// TestTableMatchesThresholdSpec: the truth table derived from the
// resistor network must coincide with the ideal threshold specification
// for every gate and every shipped configuration — the same agreement
// the functional array asserts cell by cell.
func TestTableMatchesThresholdSpec(t *testing.T) {
	for _, cfg := range Configs() {
		for g := GateKind(0); g.Valid(); g++ {
			tbl, err := Table(g, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", cfg.Name, g, err)
			}
			spec := Spec(g)
			if tbl.Gate != g || tbl.Inputs != spec.Inputs || tbl.Preset != spec.Preset || tbl.Target != spec.Dir.Target() {
				t.Errorf("%s/%s: header mismatch: %+v", cfg.Name, g, tbl)
			}
			if tbl.MinSwitchP != spec.MinP {
				t.Errorf("%s/%s: network threshold %d, spec threshold %d", cfg.Name, g, tbl.MinSwitchP, spec.MinP)
			}
			for k := 0; k <= spec.Inputs; k++ {
				if tbl.SwitchAtP[k] != (k >= spec.MinP) {
					t.Errorf("%s/%s: SwitchAtP[%d] = %v", cfg.Name, g, k, tbl.SwitchAtP[k])
				}
			}
		}
	}
}

// TestTableMemoizesBiasAndEnergy: the cached Bias/GateEnergy values the
// table carries are exactly what the public accessors return, and
// repeated lookups agree (the cache is keyed by electrical parameters,
// so a renamed copy of a config shares the same derivation).
func TestTableMemoizesBiasAndEnergy(t *testing.T) {
	cfg := ModernSTT()
	renamed := *cfg
	renamed.Name = "Renamed copy"
	for g := GateKind(0); g.Valid(); g++ {
		tbl, err := Table(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		v, err := Bias(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Bias != v {
			t.Errorf("%s: table bias %g, Bias() %g", g, tbl.Bias, v)
		}
		if e := GateEnergy(g, cfg); tbl.Energy != e {
			t.Errorf("%s: table energy %g, GateEnergy() %g", g, tbl.Energy, e)
		}
		tbl2, err := Table(g, &renamed)
		if err != nil {
			t.Fatal(err)
		}
		if tbl != tbl2 {
			t.Errorf("%s: renamed electrical twin derived a different table", g)
		}
	}
}

// TestTableScaledConfigGetsFreshEntry: mutating the electrical
// parameters (as the variation study does) must not reuse a stale cache
// entry.
func TestTableScaledConfigGetsFreshEntry(t *testing.T) {
	cfg := ModernSTT()
	base, err := Bias(NAND2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scaled := *cfg
	scaled.P.RP *= 1.1
	scaled.P.RAP *= 1.1
	v, err := Bias(NAND2, &scaled)
	if err != nil {
		t.Fatal(err)
	}
	if v == base {
		t.Errorf("scaled config returned the unscaled bias %g", v)
	}
}

// TestSwitchWordMatchesSwitchAtP holds the word-parallel dispatch to
// the scalar table lane by lane: for every gate, configuration, and
// input pattern, packing the pattern into one lane of SwitchWord's
// arguments must reproduce SwitchAtP's answer in that lane, with no
// leakage into other lanes.
func TestSwitchWordMatchesSwitchAtP(t *testing.T) {
	for _, cfg := range Configs() {
		for g := GateKind(0); g.Valid(); g++ {
			tbl, err := Table(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			n := tbl.Inputs
			for v := 0; v < 1<<n; v++ {
				p := 0
				for i := 0; i < n; i++ {
					if v>>i&1 == 0 {
						p++
					}
				}
				want := tbl.SwitchAtP[p]
				for lane := 0; lane < 64; lane += 13 {
					// Lane under test carries the pattern; every other lane
					// carries all-AP inputs (0 P inputs).
					var a, b, c uint64
					if n >= 1 {
						a = ^uint64(0)&^(1<<lane) | uint64(v&1)<<lane
					}
					if n >= 2 {
						b = ^uint64(0)&^(1<<lane) | uint64(v>>1&1)<<lane
					}
					if n >= 3 {
						c = ^uint64(0)&^(1<<lane) | uint64(v>>2&1)<<lane
					}
					w := tbl.SwitchWord(a, b, c)
					if got := w>>lane&1 == 1; got != want {
						t.Errorf("%s/%s pattern %b lane %d: SwitchWord %v, SwitchAtP[%d] %v", cfg.Name, g, v, lane, got, p, want)
					}
					if others := w &^ (1 << lane); others != 0 && tbl.MinSwitchP > 0 {
						t.Errorf("%s/%s pattern %b lane %d: leaked into lanes %#x", cfg.Name, g, v, lane, others)
					}
				}
			}
		}
	}
}

// TestTableDrivesSameSwitchDecisionAsNetwork cross-checks the memoized
// threshold against a direct DriveCurrent evaluation for every input
// pattern (not just the canonical k-P orderings used in derivation).
func TestTableDrivesSameSwitchDecisionAsNetwork(t *testing.T) {
	for _, cfg := range Configs() {
		for g := GateKind(0); g.Valid(); g++ {
			tbl, err := Table(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			n := tbl.Inputs
			for v := 0; v < 1<<n; v++ {
				inputs := make([]State, n)
				p := 0
				for i := range inputs {
					inputs[i] = FromBit(v >> i & 1)
					if inputs[i] == P {
						p++
					}
				}
				net := DriveCurrent(g, cfg, tbl.Bias, inputs) >= cfg.P.SwitchCurrent
				if net != (p >= tbl.MinSwitchP) {
					t.Errorf("%s/%s inputs %v: network switch %v, table %v", cfg.Name, g, inputs, net, p >= tbl.MinSwitchP)
				}
			}
		}
	}
}
