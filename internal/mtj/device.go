package mtj

// Device is a single MTJ. The zero value is a device in the P (logic 0)
// state, matching an erased array.
//
// Switching is modelled as a threshold phenomenon: a current pulse changes
// the state if and only if its magnitude reaches the critical switching
// current and its duration reaches the switching time. A weaker or shorter
// pulse leaves the state untouched (the free layer is thermally stable),
// and a pulse in a given direction can only move the device toward that
// direction's target state. These two properties together make every gate
// operation idempotent under power interruption (Section V-A).
type Device struct {
	state State
}

// NewDevice returns a device initialized to state s.
func NewDevice(s State) Device { return Device{state: s} }

// State returns the current magnetic state.
func (d *Device) State() State { return d.state }

// Bit returns the logic value stored in the device.
func (d *Device) Bit() int { return d.state.Bit() }

// Set forces the device into state s. This models a completed write; use
// ApplyPulse to model electrically driven (and interruptible) switching.
func (d *Device) Set(s State) { d.state = s }

// Resistance returns the device's present resistance under parameters p.
func (d *Device) Resistance(p *Params) float64 { return p.Resistance(d.state) }

// ApplyPulse drives a current of magnitude i amperes in direction dir
// through the device for dur seconds. It returns true if the device
// switched state.
//
// The pulse switches the device iff all of the following hold:
//   - the device is not already in the direction's target state,
//   - i >= p.SwitchCurrent,
//   - dur >= p.SwitchTime.
//
// Re-applying a pulse after the device has switched is harmless: the
// direction's target equals the current state, so nothing changes. This is
// exactly the property Table I of the paper relies on.
func (d *Device) ApplyPulse(p *Params, dir Direction, i, dur float64) bool {
	if d.state == dir.Target() {
		return false
	}
	if i < p.SwitchCurrent || dur < p.SwitchTime {
		return false
	}
	d.state = dir.Target()
	return true
}
