package mtj

import (
	"math"
	"testing"
)

// allGates lists every gate kind for table-driven tests.
func allGates() []GateKind {
	gates := make([]GateKind, 0, NumGates)
	for g := GateKind(0); g.Valid(); g++ {
		gates = append(gates, g)
	}
	return gates
}

// truth returns the expected boolean function of each gate.
func truth(g GateKind, bits []int) int {
	and := func(xs []int) int {
		for _, x := range xs {
			if x == 0 {
				return 0
			}
		}
		return 1
	}
	or := func(xs []int) int {
		for _, x := range xs {
			if x == 1 {
				return 1
			}
		}
		return 0
	}
	sum := 0
	for _, x := range bits {
		sum += x
	}
	switch g {
	case NOT:
		return 1 - bits[0]
	case BUF:
		return bits[0]
	case NAND2, NAND3:
		return 1 - and(bits)
	case AND2, AND3:
		return and(bits)
	case NOR2, NOR3:
		return 1 - or(bits)
	case OR2, OR3:
		return or(bits)
	case MAJ3:
		if sum >= 2 {
			return 1
		}
		return 0
	case MIN3:
		if sum >= 2 {
			return 0
		}
		return 1
	}
	panic("unknown gate")
}

func inputCombos(n int) [][]State {
	var combos [][]State
	for v := 0; v < 1<<n; v++ {
		in := make([]State, n)
		for i := range in {
			in[i] = FromBit((v >> i) & 1)
		}
		combos = append(combos, in)
	}
	return combos
}

func TestEvaluateMatchesTruthTables(t *testing.T) {
	for _, g := range allGates() {
		spec := Spec(g)
		for _, in := range inputCombos(spec.Inputs) {
			bits := make([]int, len(in))
			for i, s := range in {
				bits[i] = s.Bit()
			}
			want := truth(g, bits)
			if got := Evaluate(g, in).Bit(); got != want {
				t.Errorf("%s%v = %d, want %d", g, bits, got, want)
			}
		}
	}
}

func TestBiasFeasibleForAllGatesAndConfigs(t *testing.T) {
	for _, cfg := range Configs() {
		for _, g := range allGates() {
			v, err := Bias(g, cfg)
			if err != nil {
				t.Errorf("%s on %s: %v", g, cfg.Name, err)
				continue
			}
			lo, hi := BiasWindow(g, cfg)
			if !(lo < v && v < hi) {
				t.Errorf("%s on %s: bias %g outside window [%g, %g)", g, cfg.Name, v, lo, hi)
			}
		}
	}
}

// TestNetworkMatchesTruthTable is the central device-physics check: for
// every gate, configuration, and input combination, the resistor-network
// current compared against the switching threshold yields exactly the
// gate's truth table.
func TestNetworkMatchesTruthTable(t *testing.T) {
	for _, cfg := range Configs() {
		for _, g := range allGates() {
			spec := Spec(g)
			v, err := Bias(g, cfg)
			if err != nil {
				t.Fatalf("%s on %s: %v", g, cfg.Name, err)
			}
			for _, in := range inputCombos(spec.Inputs) {
				i := DriveCurrent(g, cfg, v, in)
				out := NewDevice(spec.Preset)
				out.ApplyPulse(&cfg.P, spec.Dir, i, cfg.P.SwitchTime)
				want := Evaluate(g, in)
				if out.State() != want {
					t.Errorf("%s on %s, inputs %v: network gives %v, truth table gives %v (I=%g A, Ic=%g A)",
						g, cfg.Name, in, out.State(), want, i, cfg.P.SwitchCurrent)
				}
			}
		}
	}
}

func TestSHEImprovesMargins(t *testing.T) {
	// Section II-D: with the output MTJ out of the series path, input
	// combinations become easier to distinguish.
	stt := ProjectedSTT()
	she := ProjectedSHE()
	for _, g := range []GateKind{NAND2, AND2, NOR2, OR2, MAJ3} {
		ms := RelativeMargin(g, stt)
		mh := RelativeMargin(g, she)
		if mh <= ms {
			t.Errorf("%s: SHE margin %.3f not better than STT margin %.3f", g, mh, ms)
		}
	}
}

func TestSHEReducesWriteEnergy(t *testing.T) {
	stt := WriteEnergy(ProjectedSTT())
	she := WriteEnergy(ProjectedSHE())
	if she >= stt {
		t.Errorf("SHE write energy %g >= STT %g; the separate write path should be cheaper", she, stt)
	}
	if she <= 0 || stt <= 0 {
		t.Errorf("write energies must be positive: she=%g stt=%g", she, stt)
	}
}

func TestSHEReducesGateEnergy(t *testing.T) {
	for _, g := range []GateKind{NAND2, AND2, NOT, MAJ3} {
		stt := GateEnergy(g, ProjectedSTT())
		she := GateEnergy(g, ProjectedSHE())
		if she >= stt {
			t.Errorf("%s: SHE gate energy %g >= STT %g", g, she, stt)
		}
	}
}

func TestProjectedBeatsModernEnergy(t *testing.T) {
	// Projected MTJs switch with 3 µA instead of 40 µA; gate energy must
	// drop by well over an order of magnitude.
	for _, g := range []GateKind{NAND2, AND2} {
		m := GateEnergy(g, ModernSTT())
		p := GateEnergy(g, ProjectedSTT())
		if p >= m/10 {
			t.Errorf("%s: projected energy %g not <10%% of modern %g", g, p, m)
		}
	}
}

func TestEnergiesPositiveAndFinite(t *testing.T) {
	for _, cfg := range Configs() {
		for _, g := range allGates() {
			e := GateEnergy(g, cfg)
			if e <= 0 || math.IsInf(e, 0) || math.IsNaN(e) {
				t.Errorf("%s on %s: gate energy %g", g, cfg.Name, e)
			}
		}
		for name, e := range map[string]float64{
			"write": WriteEnergy(cfg),
			"read":  ReadEnergy(cfg),
		} {
			if e <= 0 || math.IsInf(e, 0) || math.IsNaN(e) {
				t.Errorf("%s on %s: energy %g", name, cfg.Name, e)
			}
		}
	}
}

func TestReadCurrentAvoidsDisturb(t *testing.T) {
	for _, cfg := range Configs() {
		v := 0.5 * cfg.P.SwitchCurrent * cfg.P.RP
		// Worst case read current flows through the P-state device.
		i := v / cfg.P.RP
		if i >= cfg.P.SwitchCurrent {
			t.Errorf("%s: read current %g can disturb the cell (Ic=%g)", cfg.Name, i, cfg.P.SwitchCurrent)
		}
	}
}

func TestSpecPanicsOnInvalidGate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Spec on invalid gate did not panic")
		}
	}()
	Spec(GateKind(200))
}

func TestEvaluatePanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Evaluate with wrong arity did not panic")
		}
	}()
	Evaluate(NAND2, []State{P})
}

func TestGateStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range allGates() {
		s := g.String()
		if s == "" || seen[s] {
			t.Errorf("gate %d has empty or duplicate name %q", g, s)
		}
		seen[s] = true
	}
	if GateKind(200).String() == "" {
		t.Errorf("invalid gate should still stringify")
	}
}
