package mtj_test

import (
	"fmt"

	"mouse/internal/mtj"
)

// ExampleDevice_ApplyPulse demonstrates the idempotency primitive: a
// current direction can only move the device toward one state, so
// re-performing an interrupted operation is always safe (Table I).
func ExampleDevice_ApplyPulse() {
	p := mtj.Modern()
	d := mtj.NewDevice(mtj.P)

	// Interrupted pulse: too short to switch.
	d.ApplyPulse(&p, mtj.TowardAP, p.SwitchCurrent, p.SwitchTime/2)
	fmt.Println("after interrupt:", d.State())

	// Power restored: the operation is re-performed in full.
	d.ApplyPulse(&p, mtj.TowardAP, p.SwitchCurrent, p.SwitchTime)
	fmt.Println("after repeat:", d.State())

	// Repeating again cannot undo the switch — the direction's target
	// is already the current state.
	d.ApplyPulse(&p, mtj.TowardAP, p.SwitchCurrent*100, p.SwitchTime*100)
	fmt.Println("after another repeat:", d.State())
	// Output:
	// after interrupt: P
	// after repeat: AP
	// after another repeat: AP
}

// ExampleEvaluate shows the threshold-gate truth function used both by
// the compiler and (via the resistor network) the functional array.
func ExampleEvaluate() {
	out := mtj.Evaluate(mtj.NAND2, []mtj.State{mtj.AP, mtj.AP})
	fmt.Println("NAND(1,1) =", out.Bit())
	out = mtj.Evaluate(mtj.MAJ3, []mtj.State{mtj.AP, mtj.P, mtj.AP})
	fmt.Println("MAJ(1,0,1) =", out.Bit())
	// Output:
	// NAND(1,1) = 0
	// MAJ(1,0,1) = 1
}
