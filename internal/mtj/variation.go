package mtj

// Process-variation analysis. Fabricated MTJs vary in resistance from
// die to die and cell to cell; a gate remains functional only while the
// worst-case variation keeps should-switch currents above the critical
// current and must-not-switch currents below it. Section II-D claims the
// SHE cell makes "different input values easier to distinguish,
// increasing the robustness of logic operations" — this file quantifies
// that claim.

// gateWorks reports whether gate g, biased at v, behaves correctly when
// every device resistance may deviate by up to ±delta (relative). The
// adversary weakens switching cases (all resistances high) and
// strengthens non-switching cases (all resistances low).
func gateWorks(g GateKind, cfg *Config, v, delta float64) bool {
	spec := Spec(g)
	ic := cfg.P.SwitchCurrent

	scaled := func(f float64) *Config {
		c := *cfg
		c.P.RP *= f
		c.P.RAP *= f
		if c.Cell == SHE {
			c.RChannel *= f
		}
		return &c
	}

	// Weakest case that must switch: MinP inputs at P, resistances high.
	hi := scaled(1 + delta)
	rSwitch := parallelR(hi, spec.Inputs, spec.MinP) + outputSeriesR(hi, spec.Preset)
	if v/rSwitch < ic {
		return false
	}
	// Strongest case that must not switch: MinP-1 inputs at P,
	// resistances low.
	if spec.MinP > 0 {
		lo := scaled(1 - delta)
		rHold := parallelR(lo, spec.Inputs, spec.MinP-1) + outputSeriesR(lo, spec.Preset)
		if v/rHold >= ic {
			return false
		}
	}
	return true
}

// VariationTolerance returns the largest relative resistance variation
// ±δ the gate tolerates at its nominal bias, found by bisection. A gate
// that is infeasible even nominally reports 0.
func VariationTolerance(g GateKind, cfg *Config) float64 {
	v, err := Bias(g, cfg)
	if err != nil || !gateWorks(g, cfg, v, 0) {
		return 0
	}
	lo, hi := 0.0, 0.5
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if gateWorks(g, cfg, v, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// MinVariationTolerance returns the weakest gate's tolerance — the
// array-level robustness limit — and which gate it is.
func MinVariationTolerance(cfg *Config) (float64, GateKind) {
	best := 1.0
	var worst GateKind
	for g := GateKind(0); g.Valid(); g++ {
		tol := VariationTolerance(g, cfg)
		if tol < best {
			best = tol
			worst = g
		}
	}
	return best, worst
}
