package mtj

import "fmt"

// State is the magnetic state of an MTJ free layer relative to its fixed
// layer. The parallel state has low resistance and encodes logic 0; the
// anti-parallel state has high resistance and encodes logic 1.
type State uint8

const (
	// P is the parallel (low resistance) state, logic 0.
	P State = 0
	// AP is the anti-parallel (high resistance) state, logic 1.
	AP State = 1
)

// Bit reports the logic value of the state (P=0, AP=1).
func (s State) Bit() int {
	if s == AP {
		return 1
	}
	return 0
}

// FromBit returns the state encoding logic bit b (anything nonzero is AP).
func FromBit(b int) State {
	if b != 0 {
		return AP
	}
	return P
}

func (s State) String() string {
	if s == AP {
		return "AP"
	}
	return "P"
}

// Direction is the direction of current through an MTJ. Current flowing
// from the free layer to the fixed layer switches the device toward AP;
// the opposite direction switches it toward P. A direction can only ever
// move the device toward its own target state.
type Direction uint8

const (
	// TowardP drives the device toward the parallel (logic 0) state.
	TowardP Direction = iota
	// TowardAP drives the device toward the anti-parallel (logic 1) state.
	TowardAP
)

// Target returns the state this current direction switches a device to.
func (d Direction) Target() State {
	if d == TowardAP {
		return AP
	}
	return P
}

func (d Direction) String() string {
	if d == TowardAP {
		return "toward-AP"
	}
	return "toward-P"
}

// Params holds the electrical parameters of an MTJ device generation
// (Table II of the paper). All values are SI: ohms, seconds, amperes.
type Params struct {
	Name string

	// RP and RAP are the device resistances in the parallel and
	// anti-parallel states, in ohms.
	RP  float64
	RAP float64

	// SwitchTime is the minimum pulse duration that completes a state
	// switch, in seconds.
	SwitchTime float64

	// SwitchCurrent is the critical current magnitude above which a pulse
	// of at least SwitchTime switches the device, in amperes.
	SwitchCurrent float64
}

// Validate reports an error if the parameters are not physical.
func (p *Params) Validate() error {
	switch {
	case p.RP <= 0 || p.RAP <= 0:
		return fmt.Errorf("mtj: %s: resistances must be positive (RP=%g, RAP=%g)", p.Name, p.RP, p.RAP)
	case p.RAP <= p.RP:
		return fmt.Errorf("mtj: %s: RAP (%g) must exceed RP (%g)", p.Name, p.RAP, p.RP)
	case p.SwitchTime <= 0:
		return fmt.Errorf("mtj: %s: switch time must be positive (%g)", p.Name, p.SwitchTime)
	case p.SwitchCurrent <= 0:
		return fmt.Errorf("mtj: %s: switch current must be positive (%g)", p.Name, p.SwitchCurrent)
	}
	return nil
}

// Resistance returns the device resistance in state s, in ohms.
func (p *Params) Resistance(s State) float64 {
	if s == AP {
		return p.RAP
	}
	return p.RP
}

// TMR returns the tunnel magnetoresistance ratio (RAP-RP)/RP, a measure of
// how distinguishable the two states are.
func (p *Params) TMR() float64 { return (p.RAP - p.RP) / p.RP }

// Modern returns the present-day MTJ parameters from Table II.
func Modern() Params {
	return Params{
		Name:          "modern",
		RP:            3.15e3,
		RAP:           7.34e3,
		SwitchTime:    3e-9,
		SwitchCurrent: 40e-6,
	}
}

// Projected returns the near-future MTJ parameters from Table II.
func Projected() Params {
	return Params{
		Name:          "projected",
		RP:            7.34e3,
		RAP:           76.39e3,
		SwitchTime:    1e-9,
		SwitchCurrent: 3e-6,
	}
}

// CellKind distinguishes the two MOUSE cell architectures.
type CellKind uint8

const (
	// STT is the 1T1M cell (Fig. 2): one access transistor, one MTJ.
	// Writes and logic outputs drive current through the MTJ itself.
	STT CellKind = iota
	// SHE is the 2T1M cell (Fig. 4): a spin-Hall-effect channel provides a
	// separate low-resistance write path; reads still pass through the MTJ.
	SHE
)

func (k CellKind) String() string {
	if k == SHE {
		return "SHE"
	}
	return "STT"
}

// Config is a full technology configuration: device generation, cell
// architecture, operating frequency, and the energy-buffer operating
// window used under energy harvesting (Section VIII).
type Config struct {
	Name string
	P    Params
	Cell CellKind

	// RChannel is the SHE channel resistance in ohms (used only when
	// Cell == SHE). The paper assumes 1 kΩ as a conservative estimate.
	RChannel float64

	// Freq is the instruction cycle frequency in Hz (30.3 MHz modern,
	// 90.9 MHz projected). The cycle is sized so the slowest instruction,
	// including MTJ switching and peripheral latency, always completes.
	Freq float64

	// CapVMin and CapVMax bound the energy-buffer (capacitor) voltage in
	// volts: the system shuts down when the voltage falls to CapVMin and
	// restarts once it recharges to CapVMax.
	CapVMin float64
	CapVMax float64

	// CapC is the energy-buffer capacitance in farads (100 µF modern,
	// 10 µF projected).
	CapC float64
}

// CycleTime returns the duration of one instruction cycle in seconds.
func (c *Config) CycleTime() float64 { return 1 / c.Freq }

// Validate reports an error if the configuration is not usable.
func (c *Config) Validate() error {
	if err := c.P.Validate(); err != nil {
		return err
	}
	switch {
	case c.Freq <= 0:
		return fmt.Errorf("mtj: %s: frequency must be positive", c.Name)
	case c.Cell == SHE && c.RChannel <= 0:
		return fmt.Errorf("mtj: %s: SHE cell requires positive channel resistance", c.Name)
	case c.CapVMin <= 0 || c.CapVMax <= c.CapVMin:
		return fmt.Errorf("mtj: %s: capacitor window [%g, %g] invalid", c.Name, c.CapVMin, c.CapVMax)
	case c.CapC <= 0:
		return fmt.Errorf("mtj: %s: capacitance must be positive", c.Name)
	}
	return nil
}

// ModernSTT is the baseline configuration: modern MTJs in 1T1M cells at
// 30.3 MHz with a 100 µF buffer cycling between 320 and 340 mV.
func ModernSTT() *Config {
	return &Config{
		Name:    "Modern STT",
		P:       Modern(),
		Cell:    STT,
		Freq:    30.3e6,
		CapVMin: 0.320,
		CapVMax: 0.340,
		CapC:    100e-6,
	}
}

// ProjectedSTT uses projected MTJs in 1T1M cells at 90.9 MHz with a 10 µF
// buffer cycling between 100 and 120 mV.
func ProjectedSTT() *Config {
	return &Config{
		Name:    "Projected STT",
		P:       Projected(),
		Cell:    STT,
		Freq:    90.9e6,
		CapVMin: 0.100,
		CapVMax: 0.120,
		CapC:    10e-6,
	}
}

// ProjectedSHE uses projected MTJs in 2T1M SHE cells (1 kΩ channel) at
// 90.9 MHz with a 10 µF buffer cycling between 100 and 120 mV.
func ProjectedSHE() *Config {
	return &Config{
		Name:     "SHE",
		P:        Projected(),
		Cell:     SHE,
		RChannel: 1e3,
		Freq:     90.9e6,
		CapVMin:  0.100,
		CapVMax:  0.120,
		CapC:     10e-6,
	}
}

// Configs returns the three configurations evaluated in the paper, in the
// order they appear in the evaluation (Figures 10, 11, 12).
func Configs() []*Config {
	return []*Config{ModernSTT(), ProjectedSTT(), ProjectedSHE()}
}
