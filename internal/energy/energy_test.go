package energy

import (
	"math"
	"strings"
	"testing"

	"mouse/internal/isa"
	"mouse/internal/mtj"
)

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestLogicEnergyScalesWithParallelism(t *testing.T) {
	m := NewModel(mtj.ModernSTT())
	op1 := Op{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 1}
	op1000 := Op{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 1000}
	e1, e1000 := m.Energy(op1), m.Energy(op1000)
	if e1000 <= e1 {
		t.Fatalf("parallel op not more expensive: %g vs %g", e1000, e1)
	}
	perCol := (e1000 - e1) / 999
	want := m.scale(mtj.GateEnergy(mtj.NAND2, m.Cfg))
	if !almost(perCol, want, 1e-9) {
		t.Errorf("per-column marginal energy %g, want %g", perCol, want)
	}
}

func TestEnergyIncludesFetchFloor(t *testing.T) {
	m := NewModel(mtj.ModernSTT())
	// Even a zero-column logic op pays the fetch cost.
	e := m.Energy(Op{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 0})
	if e <= 0 {
		t.Errorf("zero-column op free: %g", e)
	}
	if !almost(e, m.fetch(), 1e-12) {
		t.Errorf("zero-column energy %g != fetch %g", e, m.fetch())
	}
}

func TestPeripheralShareInflation(t *testing.T) {
	m := NewModel(mtj.ModernSTT())
	core := 1e-12
	if got := m.scale(core); !almost(got, 2e-12, 1e-12) {
		t.Errorf("50%% share should double core energy, got %g", got)
	}
}

func TestBackupCheaperThanTypicalLogic(t *testing.T) {
	// Section IV-D: backup and restore cost far less than a typical
	// (parallel) logic instruction.
	for _, cfg := range mtj.Configs() {
		m := NewModel(cfg)
		logic := m.Energy(Op{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 1024})
		backup := m.Backup(Op{Kind: isa.KindLogic})
		restore := m.Restore(1024)
		if backup >= logic/10 {
			t.Errorf("%s: backup %g not far below logic %g", cfg.Name, backup, logic)
		}
		if restore >= logic {
			t.Errorf("%s: restore %g not below logic %g", cfg.Name, restore, logic)
		}
	}
}

func TestBackupActCostsMore(t *testing.T) {
	m := NewModel(mtj.ModernSTT())
	plain := m.Backup(Op{Kind: isa.KindLogic})
	act := m.Backup(Op{Kind: isa.KindAct})
	if act <= plain {
		t.Errorf("ACT backup %g should exceed plain %g (stores the instruction register)", act, plain)
	}
}

func TestRestoreScalesWithColumns(t *testing.T) {
	m := NewModel(mtj.ModernSTT())
	if m.Restore(1024) <= m.Restore(4) {
		t.Errorf("restore energy should grow with column count")
	}
}

func TestReadWriteRowEnergy(t *testing.T) {
	m := NewModel(mtj.ProjectedSTT())
	rd := m.Energy(Op{Kind: isa.KindRead})
	wr := m.Energy(Op{Kind: isa.KindWrite})
	if rd <= 0 || wr <= 0 {
		t.Fatalf("row ops free: rd=%g wr=%g", rd, wr)
	}
}

func TestSHECheaperThanSTT(t *testing.T) {
	stt := NewModel(mtj.ProjectedSTT())
	she := NewModel(mtj.ProjectedSHE())
	ops := []Op{
		{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 1024},
		{Kind: isa.KindPreset, ActivePairs: 1024},
		{Kind: isa.KindWrite},
	}
	for _, op := range ops {
		if she.Energy(op) >= stt.Energy(op) {
			t.Errorf("%v: SHE %g >= STT %g", op.Kind, she.Energy(op), stt.Energy(op))
		}
	}
}

func TestOpOf(t *testing.T) {
	lg := OpOf(isa.Logic(mtj.NAND2, []int{0, 2}, 1), 77, 0)
	if lg.Kind != isa.KindLogic || lg.Gate != mtj.NAND2 || lg.ActivePairs != 77 {
		t.Errorf("OpOf logic = %+v", lg)
	}
	act := OpOf(isa.ActRange(true, 0, 0, 16, 1), 0, 16)
	if act.Kind != isa.KindAct || act.ActCols != 16 {
		t.Errorf("OpOf act = %+v", act)
	}
	pre := OpOf(isa.Preset(1, mtj.P), 10, 0)
	if pre.Kind != isa.KindPreset || pre.ActivePairs != 10 {
		t.Errorf("OpOf preset = %+v", pre)
	}
	rd := OpOf(isa.Read(0, 0), 5, 5)
	if rd.ActivePairs != 0 || rd.ActCols != 0 {
		t.Errorf("OpOf read kept activity fields: %+v", rd)
	}
}

func TestLevels(t *testing.T) {
	m := NewModel(mtj.ModernSTT())
	// ACT and fetch-only ops are level 0; array ops have a valid level.
	if l := m.Level(Op{Kind: isa.KindAct}); l != 0 {
		t.Errorf("ACT level = %d", l)
	}
	for _, op := range []Op{
		{Kind: isa.KindLogic, Gate: mtj.NAND2},
		{Kind: isa.KindLogic, Gate: mtj.NOR2},
		{Kind: isa.KindPreset},
		{Kind: isa.KindRead},
		{Kind: isa.KindWrite},
	} {
		if l := m.Level(op); l < 0 {
			t.Errorf("%v: unreachable level", op)
		}
	}
	// Different gates can land on different converter levels; at minimum
	// reads and writes differ from each other for modern STT.
	rd := m.Level(Op{Kind: isa.KindRead})
	wr := m.Level(Op{Kind: isa.KindWrite})
	if rd == wr {
		t.Logf("read level %d == write level %d (acceptable, but unexpected for modern STT)", rd, wr)
	}
}

func TestBreakdownAccounting(t *testing.T) {
	b := Breakdown{ComputeEnergy: 4, BackupEnergy: 1, DeadEnergy: 2, RestoreEnergy: 1,
		OnLatency: 3, OffLatency: 7, Instructions: 10, Restarts: 2}
	if b.TotalEnergy() != 8 {
		t.Errorf("TotalEnergy = %g", b.TotalEnergy())
	}
	if b.TotalLatency() != 10 {
		t.Errorf("TotalLatency = %g", b.TotalLatency())
	}
	if b.Share(b.DeadEnergy) != 0.25 {
		t.Errorf("Share = %g", b.Share(b.DeadEnergy))
	}
	var zero Breakdown
	if zero.Share(1) != 0 {
		t.Errorf("zero-total share should be 0")
	}
	b2 := b
	b2.Add(b)
	if b2.TotalEnergy() != 16 || b2.Instructions != 20 || b2.Restarts != 4 {
		t.Errorf("Add wrong: %+v", b2)
	}
	if s := b.String(); !strings.Contains(s, "restarts") {
		t.Errorf("String() = %q", s)
	}
}

func TestAreaReproducesTableIII(t *testing.T) {
	// Table III rows (total memory → area).
	cases := []struct {
		cfg  *mtj.Config
		mb   int64
		want float64
	}{
		{mtj.ModernSTT(), 64, 50.98},
		{mtj.ModernSTT(), 8, 6.37}, // paper rounds via benchmark rows: 5.43 uses effective size; see EXPERIMENTS.md
		{mtj.ProjectedSTT(), 64, 38.67},
		{mtj.ProjectedSHE(), 64, 77.34},
		{mtj.ModernSTT(), 1, 0.797},
	}
	for _, c := range cases {
		got := Area(c.cfg, c.mb<<20)
		if !almost(got, c.want, 0.02) {
			t.Errorf("Area(%s, %d MB) = %.3f, want about %.3f", c.cfg.Name, c.mb, got, c.want)
		}
	}
	if AreaPerMB(mtj.ProjectedSHE()) != 2*AreaPerMB(mtj.ProjectedSTT()) {
		t.Errorf("SHE cell should be twice the projected STT cell")
	}
}

func TestFitCapacity(t *testing.T) {
	const mb = 1 << 20
	cases := []struct{ in, want int64 }{
		{1, mb},
		{mb, mb},
		{mb + 1, 2 * mb},
		{int64(34.5 * mb), 64 * mb},
		{16 * mb, 16 * mb},
		{250 * 1024, mb},
	}
	for _, c := range cases {
		if got := FitCapacity(c.in); got != c.want {
			t.Errorf("FitCapacity(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}
