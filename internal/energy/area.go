package energy

import (
	"math"

	"mouse/internal/mtj"
)

// Area model (Section VIII, Table III). The access transistors dominate
// cell area: they must be sized to carry the switching current with less
// than 1 kΩ of resistance, so modern MTJs (40 µA) need larger devices
// than projected ones (3 µA), and the 2T1M SHE cell pays for its second
// transistor with roughly double the cell area. Peripheral overheads are
// folded in at NVSim's area-efficiency ratio for same-sized arrays. The
// constants below are calibrated so the model reproduces Table III:
// 64 MB Modern STT = 50.98 mm², Projected STT = 38.67 mm², SHE = 2× the
// projected STT cell.

const (
	mm2PerMBModernSTT    = 50.98 / 64.0
	mm2PerMBProjectedSTT = 38.67 / 64.0
	mm2PerMBSHE          = 2 * mm2PerMBProjectedSTT
)

// AreaPerMB returns the configuration's density in mm² per MB.
func AreaPerMB(cfg *mtj.Config) float64 {
	if cfg.Cell == mtj.SHE {
		return mm2PerMBSHE
	}
	if cfg.P.Name == "modern" {
		return mm2PerMBModernSTT
	}
	return mm2PerMBProjectedSTT
}

// Area returns the silicon area in mm² for the given memory capacity in
// bytes under configuration cfg.
func Area(cfg *mtj.Config, bytes int64) float64 {
	return AreaPerMB(cfg) * float64(bytes) / (1 << 20)
}

// FitCapacity rounds a required capacity in bytes up to the next
// power-of-two megabyte count, matching NVSim's constraint that array
// capacities be powers of two (e.g. SVM MNIST needs 34.5 MB and is
// provisioned a 64 MB array).
func FitCapacity(bytes int64) int64 {
	const mb = 1 << 20
	mbs := float64(bytes) / mb
	if mbs <= 1 {
		return mb
	}
	return int64(math.Pow(2, math.Ceil(math.Log2(mbs)))) * mb
}
