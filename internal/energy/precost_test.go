package energy

import (
	"testing"

	"mouse/internal/isa"
	"mouse/internal/mtj"
)

func TestPrecostRunsCompacts(t *testing.T) {
	m := NewModel(mtj.ModernSTT())
	read := Op{Kind: isa.KindRead, ActivePairs: 64}
	write := Op{Kind: isa.KindWrite, ActivePairs: 64}
	c := PrecostRuns(m, []OpRun{
		{Op: read, Count: 3},
		{Op: read, Count: 2},  // merges with previous
		{Op: write, Count: 0}, // dropped
		{Op: write, Count: -1},
		{Op: write, Count: 4},
		{Op: read, Count: 1},
	})
	if len(c.Runs) != 3 {
		t.Fatalf("got %d runs, want 3: %+v", len(c.Runs), c.Runs)
	}
	if c.Runs[0].Count != 5 || c.Runs[1].Count != 4 || c.Runs[2].Count != 1 {
		t.Fatalf("counts = %d,%d,%d, want 5,4,1", c.Runs[0].Count, c.Runs[1].Count, c.Runs[2].Count)
	}
	if c.Ops() != 10 {
		t.Fatalf("Ops() = %d, want 10", c.Ops())
	}
}

// Per-run prices must be the Model's own outputs, with Total assembled
// in the same association (compute + backup) the stepping simulator
// uses — bitwise, not approximately.
func TestPrecostPricesAreModelOutputs(t *testing.T) {
	m := NewModel(mtj.ModernSTT())
	ops := []Op{
		{Kind: isa.KindAct, ActCols: 128},
		{Kind: isa.KindLogic, Gate: mtj.NAND2, ActivePairs: 512},
		{Kind: isa.KindRead, ActivePairs: 64},
		{Kind: isa.KindWrite, ActivePairs: 2048},
	}
	var runs []OpRun
	for _, op := range ops {
		runs = append(runs, OpRun{Op: op, Count: 7})
	}
	c := PrecostRuns(m, runs)
	var prefix float64
	for i, op := range ops {
		if c.Compute[i] != m.Energy(op) || c.Backup[i] != m.Backup(op) {
			t.Fatalf("run %d: prices diverge from model", i)
		}
		if c.Total[i] != m.Energy(op)+m.Backup(op) {
			t.Fatalf("run %d: Total not compute+backup", i)
		}
		if c.Level[i] != m.Level(op) {
			t.Fatalf("run %d: Level diverges from model", i)
		}
		prefix += 7 * c.Total[i]
		if c.Prefix[i+1] != prefix {
			t.Fatalf("run %d: prefix %g, want %g", i, c.Prefix[i+1], prefix)
		}
	}
	if c.TotalDraw() != c.Prefix[len(c.Runs)] {
		t.Fatal("TotalDraw != final prefix")
	}
	maxE, at := c.MaxOpTotal()
	for i := range c.Total {
		if c.Total[i] > maxE {
			t.Fatalf("MaxOpTotal missed run %d (%g > %g at %d)", i, c.Total[i], maxE, at)
		}
	}
}

func TestPrecostEmpty(t *testing.T) {
	c := PrecostRuns(NewModel(mtj.ModernSTT()), nil)
	if len(c.Runs) != 0 || c.Ops() != 0 || c.TotalDraw() != 0 {
		t.Fatalf("empty precost not empty: %+v", c)
	}
	if _, at := c.MaxOpTotal(); at != -1 {
		t.Fatalf("MaxOpTotal on empty stream returned index %d, want -1", at)
	}
	if w := c.EstimateWindows(1e-6, 0); w != 0 {
		t.Fatalf("EstimateWindows on empty stream = %g, want 0", w)
	}
}
