package energy

// Run-length precosting for the analytic segment engine (internal/sim).
// Paper-scale instruction streams are phase-structured: hundreds of
// thousands of operations, but only a few thousand maximal runs of
// identical operations. Pricing the model once per run instead of once
// per instruction (let alone the stepping path's several calls per
// retired instruction) turns the per-op model cost into a table lookup,
// and the prefix sum gives analytic totals without replaying the
// stream.

// OpRun is a maximal run of identical operations — the run-length
// encoded form of an instruction stream.
type OpRun struct {
	Op    Op
	Count int64
}

// RunCosts is a stream's fully priced run-length form. Per-run values
// are the Model's own outputs for that run's operation, so accounting
// assembled from them is bit-identical to calling the Model on every
// instruction.
type RunCosts struct {
	// Runs is the compacted encoding: empty runs dropped, adjacent
	// equal-operation runs merged.
	Runs []OpRun

	// Compute and Backup are each run's per-operation Energy and Backup
	// prices; Total[i] = Compute[i] + Backup[i] is the per-cycle draw
	// the harvester sees, with the same float association the stepping
	// path uses (e := Energy(op) + Backup(op)).
	Compute, Backup, Total []float64

	// Level is each run's converter level (Model.Level).
	Level []int

	// Prefix is the analytic cumulative draw: Prefix[i] sums
	// Count*Total over every run before run i, with Prefix[len(Runs)]
	// the stream's grand total. It prices budgets in closed form
	// (estimates, sanity checks) — the simulator's exact per-window
	// folds never read it.
	Prefix []float64
}

// PrecostRuns prices a run-length encoded stream under m. Runs with
// non-positive counts are dropped and adjacent runs of the same
// operation merge, so the tables are as small as the stream allows.
func PrecostRuns(m *Model, runs []OpRun) *RunCosts {
	c := &RunCosts{}
	for _, r := range runs {
		if r.Count <= 0 {
			continue
		}
		if n := len(c.Runs); n > 0 && c.Runs[n-1].Op == r.Op {
			c.Runs[n-1].Count += r.Count
			continue
		}
		c.Runs = append(c.Runs, r)
	}
	n := len(c.Runs)
	c.Compute = make([]float64, n)
	c.Backup = make([]float64, n)
	c.Total = make([]float64, n)
	c.Level = make([]int, n)
	c.Prefix = make([]float64, n+1)
	for i, r := range c.Runs {
		c.Compute[i] = m.Energy(r.Op)
		c.Backup[i] = m.Backup(r.Op)
		c.Total[i] = c.Compute[i] + c.Backup[i]
		c.Level[i] = m.Level(r.Op)
		c.Prefix[i+1] = c.Prefix[i] + float64(r.Count)*c.Total[i]
	}
	return c
}

// Ops returns the stream's total operation count.
func (c *RunCosts) Ops() int64 {
	var n int64
	for _, r := range c.Runs {
		n += r.Count
	}
	return n
}

// TotalDraw returns the analytic grand-total draw of the stream — what
// a run with no outages pays in Compute plus Backup energy, up to float
// association.
func (c *RunCosts) TotalDraw() float64 { return c.Prefix[len(c.Runs)] }

// MaxOpTotal returns the largest single-operation draw and the index of
// the run it occurs in (-1 for an empty stream) — the quantity the
// non-termination guard compares against the window budget.
func (c *RunCosts) MaxOpTotal() (float64, int) {
	maxE, at := 0.0, -1
	for i, e := range c.Total {
		if e > maxE {
			maxE, at = e, i
		}
	}
	return maxE, at
}

// EstimateWindows returns the analytic number of outage windows a
// constant-power run needs: the net buffer drain (draw minus harvest
// accrued per cycle) divided by one window's discharge budget. It is an
// estimate for sizing and reporting — the simulator counts real
// restarts — and zero when the harvest keeps up or the stream is empty.
func (c *RunCosts) EstimateWindows(windowJ, harvestPerOp float64) float64 {
	if windowJ <= 0 {
		return 0
	}
	drain := 0.0
	for i, r := range c.Runs {
		if net := c.Total[i] - harvestPerOp; net > 0 {
			drain += float64(r.Count) * net
		}
	}
	return drain / windowJ
}
