// Package energy is MOUSE's performance, energy, and area model
// (Section VIII of the paper). It turns instruction-level activity into
// joules and seconds for a given technology configuration, and accounts
// them into the EH-model categories of San Miguel et al. [75] that the
// paper reports: Compute, Backup, Dead, and Restore energy, plus Dead and
// Restore latency.
//
//   - Compute: the instruction's own work — gate switching in every
//     active column plus the peripheral circuitry share (instruction
//     fetch, decode, address drivers), calibrated as a fixed share of
//     total energy in the NVSim style.
//   - Backup: the per-cycle checkpoint — writing the next PC into the
//     invalid PC register and flipping the parity bit, plus storing an
//     Activate Columns instruction into its register pair when one is
//     issued. Backup has no latency: it overlaps the instruction cycle.
//   - Dead: work lost to an outage — the partially performed instruction
//     plus its full re-execution on restart.
//   - Restore: re-issuing the stored Activate Columns instruction on
//     every restart; its cost grows with the number of columns latched.
//
// Every instruction occupies exactly one cycle: the controller always
// waits as long as the slowest instruction needs (Section IV-B).
package energy

import (
	"fmt"

	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/power"
)

// Op is the compact activity record the model prices. The functional
// simulator derives it from real instructions; the analytic trace layer
// for paper-scale workloads generates Ops directly.
type Op struct {
	Kind isa.Kind
	// Gate applies to KindLogic.
	Gate mtj.GateKind
	// ActivePairs is the number of (tile, column) pairs the operation
	// touches (logic and preset operations).
	ActivePairs int
	// ActCols is the number of columns an ACT instruction latches,
	// summed over its target tiles.
	ActCols int
}

// OpOf summarizes a concrete instruction executing on a machine with the
// given activation state.
func OpOf(in isa.Instruction, activePairs, actCols int) Op {
	op := Op{Kind: in.Kind}
	switch in.Kind {
	case isa.KindLogic:
		op.Gate = in.Gate
		op.ActivePairs = activePairs
	case isa.KindPreset:
		op.ActivePairs = activePairs
	case isa.KindAct:
		op.ActCols = actCols
	}
	return op
}

// Model prices operations for one technology configuration.
type Model struct {
	Cfg *mtj.Config

	// PeripheralShare is the fraction of each operation's energy spent in
	// peripheral circuitry (decoders, drivers, sensing), calibrated from
	// NVSim's reported shares for MRAM arrays of this size. Core (cell)
	// energy is divided by (1 - PeripheralShare).
	PeripheralShare float64

	// InstrBits is the instruction word width fetched from the
	// instruction tiles each cycle.
	InstrBits int

	// PCBits is the width of a PC register write during backup.
	PCBits int

	// RowBits is the number of columns a full-row read or write moves.
	RowBits int

	// LatchFraction sizes the per-column activation-latch energy as a
	// fraction of a cell write (CMOS latches are far cheaper than MTJ
	// switching).
	LatchFraction float64

	// RegisterFraction sizes a dedicated non-volatile register bit write
	// (PC, parity, ACT registers) relative to a worst-case array cell
	// write: registers sit next to the controller, need no array
	// word/bit-line drive, and are written at minimal overdrive.
	RegisterFraction float64

	Converter power.Converter
}

// NewModel returns the calibrated model for cfg with the paper's tile
// geometry (1024-column rows).
func NewModel(cfg *mtj.Config) *Model {
	return &Model{
		Cfg:              cfg,
		PeripheralShare:  0.5,
		InstrBits:        64,
		PCBits:           24,
		RowBits:          isa.Cols,
		LatchFraction:    0.05,
		RegisterFraction: 0.25,
		Converter:        power.DefaultConverter(),
	}
}

// scale inflates a core (cell-level) energy by the peripheral share.
func (m *Model) scale(core float64) float64 {
	return core / (1 - m.PeripheralShare)
}

// CycleTime returns the duration of one instruction cycle in seconds.
func (m *Model) CycleTime() float64 { return m.Cfg.CycleTime() }

// bitWrite returns the scaled energy of writing one cell.
func (m *Model) bitWrite() float64 { return m.scale(mtj.WriteEnergy(m.Cfg)) }

// bitRead returns the scaled energy of sensing one cell.
func (m *Model) bitRead() float64 { return m.scale(mtj.ReadEnergy(m.Cfg)) }

// fetch returns the per-cycle instruction-fetch energy: reading one
// 64-bit word from an instruction tile.
func (m *Model) fetch() float64 { return float64(m.InstrBits) * m.bitRead() }

// Energy returns the Compute energy of one operation in joules,
// including the instruction fetch.
func (m *Model) Energy(op Op) float64 {
	e := m.fetch()
	switch op.Kind {
	case isa.KindLogic:
		e += m.scale(mtj.GateEnergy(op.Gate, m.Cfg)) * float64(op.ActivePairs)
	case isa.KindPreset:
		e += m.bitWrite() * float64(op.ActivePairs)
	case isa.KindRead:
		e += m.bitRead() * float64(m.RowBits)
	case isa.KindWrite:
		e += m.bitWrite() * float64(m.RowBits)
	case isa.KindAct:
		e += m.latchEnergy(op.ActCols)
	}
	return e
}

// latchEnergy is the cost of driving the column-activation latches.
func (m *Model) latchEnergy(cols int) float64 {
	return m.bitWrite() * m.LatchFraction * float64(cols)
}

// Backup returns the checkpoint energy committed alongside the
// operation: the PC register write and parity flip, plus the duplicated
// Activate Columns register write for ACT instructions (Section IV-D).
func (m *Model) Backup(op Op) float64 {
	regBit := m.bitWrite() * m.RegisterFraction
	e := float64(m.PCBits+1) * regBit
	if op.Kind == isa.KindAct {
		e += float64(m.InstrBits+1) * regBit
	}
	return e
}

// Restore returns the energy of re-activating cols columns on restart:
// re-reading the stored ACT register and re-driving the latches.
func (m *Model) Restore(cols int) float64 {
	return float64(m.InstrBits)*m.bitRead()*m.RegisterFraction + m.latchEnergy(cols)
}

// Level returns the converter level the operation's bias voltage
// requires, for level-switch accounting (Section IV-C). Operations that
// need no array bias (fetch-only) report level 0.
func (m *Model) Level(op Op) int {
	vIn := (m.Cfg.CapVMin + m.Cfg.CapVMax) / 2
	var vOut float64
	switch op.Kind {
	case isa.KindLogic:
		v, err := mtj.Bias(op.Gate, m.Cfg)
		if err != nil {
			return -1
		}
		vOut = v
	case isa.KindPreset, isa.KindWrite:
		// Writes drive the switching current through the write path; the
		// supply level is sized for the mean device resistance (the
		// resistance falls as an AP→P switch proceeds, so the worst-case
		// RAP applies only transiently).
		r := (m.Cfg.P.RP + m.Cfg.P.RAP) / 2
		if m.Cfg.Cell == mtj.SHE {
			r = m.Cfg.RChannel
		}
		vOut = m.Cfg.P.SwitchCurrent * 1.5 * r
	case isa.KindRead:
		vOut = 0.5 * m.Cfg.P.SwitchCurrent * m.Cfg.P.RP
	default:
		return 0
	}
	return m.Converter.LevelIndex(vIn, vOut)
}

// Breakdown is the EH-model accounting record for a run. All energies
// are joules, all latencies seconds.
type Breakdown struct {
	// ComputeEnergy is the useful (forward-progress) instruction energy.
	ComputeEnergy float64
	// BackupEnergy is the continuous architectural-state checkpointing.
	BackupEnergy float64
	// DeadEnergy is work lost to outages and re-performed.
	DeadEnergy float64
	// RestoreEnergy is the restart re-activation cost.
	RestoreEnergy float64

	// OnLatency is powered execution time; OffLatency is time spent
	// powered down waiting for the buffer to recharge.
	OnLatency  float64
	OffLatency float64
	// DeadLatency is the time spent re-performing interrupted work.
	DeadLatency float64
	// RestoreLatency is the time spent re-activating columns on restarts.
	RestoreLatency float64

	Instructions  uint64
	Restarts      uint64
	LevelSwitches uint64
}

// TotalEnergy sums every energy category.
func (b Breakdown) TotalEnergy() float64 {
	return b.ComputeEnergy + b.BackupEnergy + b.DeadEnergy + b.RestoreEnergy
}

// TotalLatency is wall-clock completion time: powered-on plus
// powered-off time (Dead and Restore latency are subsets of OnLatency).
func (b Breakdown) TotalLatency() float64 {
	return b.OnLatency + b.OffLatency
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.ComputeEnergy += o.ComputeEnergy
	b.BackupEnergy += o.BackupEnergy
	b.DeadEnergy += o.DeadEnergy
	b.RestoreEnergy += o.RestoreEnergy
	b.OnLatency += o.OnLatency
	b.OffLatency += o.OffLatency
	b.DeadLatency += o.DeadLatency
	b.RestoreLatency += o.RestoreLatency
	b.Instructions += o.Instructions
	b.Restarts += o.Restarts
	b.LevelSwitches += o.LevelSwitches
}

// Share returns x as a fraction of total energy (0 when the total is 0).
func (b Breakdown) Share(x float64) float64 {
	t := b.TotalEnergy()
	if t == 0 {
		return 0
	}
	return x / t
}

func (b Breakdown) String() string {
	return fmt.Sprintf("energy %.4g J (compute %.4g, backup %.4g, dead %.4g, restore %.4g); latency %.4g s (on %.4g, off %.4g); %d instructions, %d restarts",
		b.TotalEnergy(), b.ComputeEnergy, b.BackupEnergy, b.DeadEnergy, b.RestoreEnergy,
		b.TotalLatency(), b.OnLatency, b.OffLatency, b.Instructions, b.Restarts)
}
