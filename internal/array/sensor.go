package array

import (
	"fmt"

	"mouse/internal/mtj"
)

// SensorBuffer models the attached sensor's non-volatile input buffer
// (Section IV-E): it is assigned a tile address and treated as one of
// the tiles (MOUSE reads it with ordinary RD instructions), and it
// carries a non-volatile valid bit that the sensor sets only once a
// sample has been written in full. If power dies while the sensor is
// filling the buffer, the valid bit stays zero, and MOUSE's restart
// protocol rewinds to the start of the sensor-read code (the dedicated
// sensor-PC register) instead of consuming a torn sample.
type SensorBuffer struct {
	tile  *Tile
	valid bool
}

// NewSensorBuffer creates a sensor buffer backed by a rows×cols tile.
func NewSensorBuffer(cfg *mtj.Config, rows, cols int) *SensorBuffer {
	return &SensorBuffer{tile: NewTile(cfg, rows, cols)}
}

// Tile exposes the buffer's tile so a Machine can map it at a tile
// address.
func (s *SensorBuffer) Tile() *Tile { return s.tile }

// Valid reports whether a complete sample is ready (the non-volatile
// valid bit). It implements controller.Sensor.
func (s *SensorBuffer) Valid() bool { return s.valid }

// Provide writes a complete sample into the buffer — bits[i] lands in
// row i/cols, column i%cols — and sets the valid bit. This models the
// sensor's own transfer completing.
func (s *SensorBuffer) Provide(bits []int) error {
	if len(bits) > s.tile.Rows()*s.tile.Cols() {
		return fmt.Errorf("array: sample of %d bits exceeds the sensor buffer", len(bits))
	}
	s.valid = false
	for i, b := range bits {
		s.tile.SetBit(i/s.tile.Cols(), i%s.tile.Cols(), b)
	}
	s.valid = true
	return nil
}

// ProvidePartial models the sensor's transfer being cut off by an
// outage after upTo bits: the buffer holds a torn sample and the valid
// bit stays zero.
func (s *SensorBuffer) ProvidePartial(bits []int, upTo int) error {
	if len(bits) > s.tile.Rows()*s.tile.Cols() {
		return fmt.Errorf("array: sample of %d bits exceeds the sensor buffer", len(bits))
	}
	s.valid = false
	for i := 0; i < upTo && i < len(bits); i++ {
		s.tile.SetBit(i/s.tile.Cols(), i%s.tile.Cols(), bits[i])
	}
	return nil
}

// Consume clears the valid bit once MOUSE has transferred the sample,
// signalling the sensor that the buffer may be refilled.
func (s *SensorBuffer) Consume() { s.valid = false }

// AttachSensor maps the sensor buffer's tile at the next tile address of
// the machine and returns that address.
func (m *Machine) AttachSensor(s *SensorBuffer) int {
	m.Tiles = append(m.Tiles, s.Tile())
	return len(m.Tiles) - 1
}
