package array

import (
	"testing"

	"mouse/internal/isa"
	"mouse/internal/mtj"
)

func testMachine(t *testing.T) *Machine {
	t.Helper()
	return NewMachine(mtj.ModernSTT(), 3, 16, 16)
}

func TestNewMachinePanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic")
		}
	}()
	NewMachine(mtj.ModernSTT(), 0, 16, 16)
}

func TestMachineReadWriteThroughBuffer(t *testing.T) {
	m := testMachine(t)
	m.Tiles[0].SetBit(3, 5, 1)
	m.Tiles[0].SetBit(3, 9, 1)

	if err := m.Exec(isa.Read(0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := m.Exec(isa.Write(2, 7)); err != nil {
		t.Fatal(err)
	}
	if m.Tiles[2].Bit(7, 5) != 1 || m.Tiles[2].Bit(7, 9) != 1 {
		t.Errorf("inter-tile copy via buffer failed")
	}
	if m.Tiles[2].Bit(7, 4) != 0 {
		t.Errorf("stray bit set")
	}
}

func TestMachineExecRejectsBadTile(t *testing.T) {
	m := testMachine(t)
	if err := m.Exec(isa.Read(7, 0)); err == nil {
		t.Errorf("read from nonexistent tile accepted")
	}
	if err := m.Exec(isa.Write(7, 0)); err == nil {
		t.Errorf("write to nonexistent tile accepted")
	}
}

func TestMachineActivateBroadcast(t *testing.T) {
	m := testMachine(t)
	if err := m.Exec(isa.ActList(true, 0, []uint16{1, 2})); err != nil {
		t.Fatal(err)
	}
	if m.ActivePairs() != 6 {
		t.Fatalf("ActivePairs = %d, want 6", m.ActivePairs())
	}
	// Targeted activation replaces the whole configuration.
	if err := m.Exec(isa.ActList(false, 1, []uint16{4})); err != nil {
		t.Fatal(err)
	}
	if m.ActivePairs() != 1 {
		t.Fatalf("ActivePairs after targeted ACT = %d, want 1", m.ActivePairs())
	}
	if m.Tiles[1].ActiveCount() != 1 || m.Tiles[0].ActiveCount() != 0 {
		t.Fatalf("targeted ACT landed on wrong tile")
	}
}

func TestMachinePresetAndLogicAcrossTiles(t *testing.T) {
	m := testMachine(t)
	// Different data per tile, same columns active everywhere.
	m.Tiles[0].SetBit(0, 3, 1)
	m.Tiles[0].SetBit(2, 3, 1)
	m.Tiles[1].SetBit(0, 3, 1)
	m.Tiles[1].SetBit(2, 3, 0)

	prog := isa.Program{
		isa.ActList(true, 0, []uint16{3}),
		isa.Preset(1, mtj.AP), // AND preset
		isa.Logic(mtj.AND2, []int{0, 2}, 1),
	}
	for _, in := range prog {
		if err := m.Exec(in); err != nil {
			t.Fatal(err)
		}
	}
	if m.Tiles[0].Bit(1, 3) != 1 {
		t.Errorf("tile 0: AND(1,1) = %d", m.Tiles[0].Bit(1, 3))
	}
	if m.Tiles[1].Bit(1, 3) != 0 {
		t.Errorf("tile 1: AND(1,0) = %d", m.Tiles[1].Bit(1, 3))
	}
	if m.Tiles[2].Bit(1, 3) != 0 {
		t.Errorf("tile 2: AND(0,0) = %d", m.Tiles[2].Bit(1, 3))
	}
}

func TestMachineLoseVolatile(t *testing.T) {
	m := testMachine(t)
	if err := m.Exec(isa.ActList(true, 0, []uint16{1})); err != nil {
		t.Fatal(err)
	}
	m.Buffer[0] = 0xFF
	m.Tiles[0].SetBit(5, 5, 1)
	m.LoseVolatile()
	if m.ActivePairs() != 0 {
		t.Errorf("activation survived outage")
	}
	if m.Buffer[0] != 0xFF {
		t.Errorf("non-volatile buffer lost its contents (a RD/WR pair spans a checkpoint, so it must persist)")
	}
	if m.Tiles[0].Bit(5, 5) != 1 {
		t.Errorf("non-volatile cell lost its state")
	}
}

func TestMachineExecValidates(t *testing.T) {
	m := testMachine(t)
	bad := isa.Instruction{Kind: isa.KindLogic, Gate: mtj.GateKind(99)}
	if err := m.Exec(bad); err == nil {
		t.Errorf("invalid instruction accepted")
	}
	if err := m.Activate(isa.Read(0, 0)); err == nil {
		t.Errorf("Activate accepted a read")
	}
}

func TestLoadReadBits(t *testing.T) {
	m := testMachine(t)
	bits := []int{1, 0, 1, 1}
	if err := m.LoadBits(1, 4, 2, 2, bits); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBits(1, 4, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("ReadBits = %v, want %v", got, bits)
		}
	}
	if err := m.LoadBits(1, 4, 15, 2, bits); err == nil {
		t.Errorf("out-of-range LoadBits accepted")
	}
	if _, err := m.ReadBits(1, 4, 15, 2, 4); err == nil {
		t.Errorf("out-of-range ReadBits accepted")
	}
	if err := m.LoadBits(9, 0, 0, 1, bits); err == nil {
		t.Errorf("bad tile accepted")
	}
}

func TestRotatedWriteMovesAcrossColumns(t *testing.T) {
	m := testMachine(t) // 3 tiles, 16x16
	// Data in columns 2 and 5 of row 0.
	m.Tiles[0].SetBit(0, 2, 1)
	m.Tiles[0].SetBit(0, 5, 1)
	if err := m.Exec(isa.Read(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.Exec(isa.WriteRot(0, 3, 4)); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 16; c++ {
		want := 0
		if c == 6 || c == 9 { // shifted right by 4
			want = 1
		}
		if got := m.Tiles[0].Bit(3, c); got != want {
			t.Errorf("col %d = %d, want %d", c, got, want)
		}
	}
	// Rotation wraps at the tile width.
	if err := m.Exec(isa.WriteRot(0, 5, 15)); err != nil {
		t.Fatal(err)
	}
	if m.Tiles[0].Bit(5, 1) != 1 || m.Tiles[0].Bit(5, 4) != 1 {
		t.Errorf("wrapped rotation wrong")
	}
	// A rotation beyond the narrow tile's width wraps modulo the width.
	if err := m.Exec(isa.WriteRot(0, 7, 16+4)); err != nil {
		t.Fatal(err)
	}
	if m.Tiles[0].Bit(7, 6) != 1 {
		t.Errorf("modulo rotation wrong")
	}
}

func TestWriteRowRotValidates(t *testing.T) {
	tile := m0(t)
	buf := make([]byte, 2)
	if err := tile.WriteRowRot(0, buf, -1, 99); err == nil {
		t.Errorf("negative rotation accepted")
	}
	if err := tile.WriteRowRot(0, buf, 16, 99); err == nil {
		t.Errorf("rotation = width accepted")
	}
}

func m0(t *testing.T) *Tile {
	t.Helper()
	return NewTile(mtj.ModernSTT(), 4, 16)
}

func TestSensorInPackage(t *testing.T) {
	// The sensor protocol is exercised end to end from the controller
	// package; this covers the in-package surface.
	m := testMachine(t)
	s := NewSensorBuffer(mtj.ModernSTT(), 2, 16)
	tileAddr := m.AttachSensor(s)
	if tileAddr != 3 {
		t.Fatalf("sensor tile at %d, want 3", tileAddr)
	}
	if s.Valid() {
		t.Fatalf("fresh sensor valid")
	}
	bits := make([]int, 32)
	bits[5], bits[17] = 1, 1
	if err := s.Provide(bits); err != nil {
		t.Fatal(err)
	}
	if !s.Valid() || s.Tile().Bit(0, 5) != 1 || s.Tile().Bit(1, 1) != 1 {
		t.Fatalf("sample not stored")
	}
	// A read from the attached tile lands in the buffer.
	if err := m.Exec(isa.Read(tileAddr, 0)); err != nil {
		t.Fatal(err)
	}
	if m.Buffer[0]&(1<<5) == 0 {
		t.Fatalf("sensor row not readable through the machine")
	}
	// Broadcast compute never touches the sensor tile.
	if err := m.Exec(isa.ActRange(true, 0, 0, 16, 1)); err != nil {
		t.Fatal(err)
	}
	if s.Tile().ActiveCount() != 0 {
		t.Fatalf("broadcast ACT activated sensor columns")
	}
	if err := m.Exec(isa.Preset(0, mtj.AP)); err != nil {
		t.Fatal(err)
	}
	if s.Tile().Bit(0, 0) != 0 {
		t.Fatalf("broadcast preset wrote the sensor tile")
	}
	// Targeted ACT at the sensor tile is rejected.
	if err := m.Exec(isa.ActList(false, uint16ToInt(tileAddr), []uint16{1})); err == nil {
		t.Fatalf("activating the sensor tile succeeded")
	}
	s.Consume()
	if s.Valid() {
		t.Fatalf("consume kept valid set")
	}
	if err := s.ProvidePartial(bits, 3); err != nil {
		t.Fatal(err)
	}
	if s.Valid() {
		t.Fatalf("torn sample valid")
	}
}

func uint16ToInt(v int) int { return v }

func TestPresetRowOutOfRange(t *testing.T) {
	tile := m0(t)
	if err := tile.PresetRow(99, mtj.AP, 1); err == nil {
		t.Fatalf("out-of-range preset accepted")
	}
}

func TestExecLogicBiasError(t *testing.T) {
	// An unrealizable gate configuration surfaces as an error rather
	// than silent wrong results: corrupt the config so every window
	// collapses.
	bad := *mtj.ModernSTT()
	tile := NewTile(&bad, 8, 2)
	tile.SetActive([]uint16{0})
	// Same resistances for both states would be caught by Validate, but
	// ExecLogic re-derives the bias each call; exercise its error path
	// via an out-of-range input row instead.
	if err := tile.ExecLogic(mtj.NAND2, []int{0, 88}, 1, FullPulse); err == nil {
		t.Fatalf("bad input row accepted")
	}
}

func TestExecPartialUnknownKind(t *testing.T) {
	m := testMachine(t)
	bad := isa.Instruction{Kind: isa.Kind(99)}
	if err := m.Exec(bad); err == nil {
		t.Fatalf("unknown kind accepted")
	}
}

func TestReadBitsNegativeStart(t *testing.T) {
	m := testMachine(t)
	if _, err := m.ReadBits(0, 0, -1, 1, 2); err == nil {
		t.Fatalf("negative start accepted")
	}
}
