package array

import (
	"fmt"

	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/probe"
)

// Machine is the full MOUSE datapath: the set of data tiles plus the
// row-sized memory buffer that mediates reads and writes (Section IV-A).
// The memory controller (package controller) drives it by broadcasting
// decoded instructions; Machine applies their datapath effects.
//
// The memory buffer is one of the five non-array components of MOUSE
// (Section IV-A). It must be non-volatile: a read and its paired write
// are separate instructions with a PC checkpoint between them, so if the
// buffer lost its contents in an outage landing between the two, the
// re-executed write would store garbage. MOUSE "consists entirely of
// non-volatile devices" (Section I), so the buffer survives outages here
// and only the peripheral latches are lost.
type Machine struct {
	Cfg   *mtj.Config
	Tiles []*Tile

	// dataTiles is the number of leading Tiles that participate in
	// broadcast compute operations (preset, logic, broadcast ACT).
	// Tiles appended later — e.g. an attached sensor buffer — are
	// addressable by reads and writes but never compute.
	dataTiles int

	// Buffer is the 128-byte (one-row) memory buffer.
	Buffer []byte

	// ForceScalar routes full-pulse logic operations through the scalar
	// per-cell resistor-network path instead of the packed word-parallel
	// path. Results are bit-identical either way; the knob exists for
	// differential tests and packed-vs-scalar benchmarks.
	ForceScalar bool

	// Obs receives per-tile write events for wear accounting (writes,
	// presets, and logic output pulses all stress cells). Both logic
	// paths report identical events — the packed/scalar split changes
	// how cells are computed, never how many are touched. Nil disables.
	Obs probe.Observer
}

// NewMachine creates a machine with nTiles tiles of rows×cols cells each.
func NewMachine(cfg *mtj.Config, nTiles, rows, cols int) *Machine {
	if nTiles <= 0 || nTiles > isa.BroadcastTile {
		panic(fmt.Sprintf("array: bad tile count %d", nTiles))
	}
	m := &Machine{Cfg: cfg, dataTiles: nTiles, Buffer: make([]byte, (cols+7)/8)}
	for i := 0; i < nTiles; i++ {
		m.Tiles = append(m.Tiles, NewTile(cfg, rows, cols))
	}
	return m
}

// Tile returns tile i, or an error if out of range.
func (m *Machine) Tile(i int) (*Tile, error) {
	if i < 0 || i >= len(m.Tiles) {
		return nil, fmt.Errorf("array: tile %d out of range [0, %d)", i, len(m.Tiles))
	}
	return m.Tiles[i], nil
}

// ActivePairs returns the total number of (tile, column) pairs currently
// active — the multiplier for per-column logic energy.
func (m *Machine) ActivePairs() int {
	n := 0
	for _, t := range m.DataTiles() {
		n += t.ActiveCount()
	}
	return n
}

// DataTiles returns the tiles that participate in compute broadcasts.
func (m *Machine) DataTiles() []*Tile { return m.Tiles[:m.dataTiles] }

// LoseVolatile models a power outage across the machine: the peripheral
// column-activation latches are cleared; the MTJ cells and the
// non-volatile memory buffer persist.
func (m *Machine) LoseVolatile() {
	for _, t := range m.Tiles {
		t.LoseVolatile()
	}
}

// Exec applies the full (uninterrupted) datapath effect of one
// instruction. Interruptible execution paths are exercised through
// ExecPartial.
func (m *Machine) Exec(in isa.Instruction) error {
	return m.ExecPartial(in, nil)
}

// Partial describes how far an interrupted instruction progressed before
// power was lost. A nil *Partial means uninterrupted execution.
type Partial struct {
	// Columns bounds how many columns complete for preset and write
	// operations.
	Columns int
	// Pulse gives the per-column pulse fraction for logic operations.
	Pulse PulseLength
}

// ExecPartial applies the datapath effect of one instruction, optionally
// interrupted partway through per p.
func (m *Machine) ExecPartial(in isa.Instruction, p *Partial) error {
	if err := in.Validate(); err != nil {
		return err
	}
	cols := 1 << 30
	pulse := FullPulse
	if p != nil {
		cols = p.Columns
		if p.Pulse != nil {
			pulse = p.Pulse
		}
	}
	switch in.Kind {
	case isa.KindRead:
		t, err := m.Tile(int(in.Tile))
		if err != nil {
			return err
		}
		return t.ReadRow(int(in.Row), m.Buffer)
	case isa.KindWrite:
		t, err := m.Tile(int(in.Tile))
		if err != nil {
			return err
		}
		rot := int(in.Rot)
		if rot >= t.Cols() {
			// Narrow functional machines wrap the rotation at their
			// actual width.
			rot %= t.Cols()
		}
		if err := t.WriteRowRot(int(in.Row), m.Buffer, rot, cols); err != nil {
			return err
		}
		if m.Obs != nil {
			m.Obs.TileWrite(int(in.Tile), clampCols(cols, t.Cols()))
		}
		return nil
	case isa.KindPreset:
		for i, t := range m.DataTiles() {
			if err := t.PresetRow(int(in.Row), in.Value, cols); err != nil {
				return err
			}
			if m.Obs != nil {
				m.Obs.TileWrite(i, clampCols(cols, t.ActiveCount()))
			}
		}
		return nil
	case isa.KindLogic:
		// Gates take at most 3 inputs (Instruction.In); a stack array
		// keeps the per-instruction hot path allocation-free.
		var rowsArr [3]int
		rows := rowsArr[:in.NumInputs()]
		for i := range rows {
			rows[i] = int(in.In[i])
		}
		// Fast/slow path split: an uninterrupted operation (no per-column
		// pulse profile) reduces to the gate's truth table and runs
		// word-parallel; an interrupted one must integrate the partial
		// pulse per cell through the resistor network.
		full := (p == nil || p.Pulse == nil) && !m.ForceScalar
		for i, t := range m.DataTiles() {
			var err error
			if full {
				err = t.ExecLogicFull(in.Gate, rows, int(in.Out))
			} else {
				err = t.ExecLogic(in.Gate, rows, int(in.Out), pulse)
			}
			if err != nil {
				return err
			}
			// Wear: the output row's cell is pulsed in every active
			// column — reported identically by both logic paths.
			if m.Obs != nil {
				m.Obs.TileWrite(i, t.ActiveCount())
			}
		}
		return nil
	case isa.KindAct:
		return m.Activate(in)
	}
	return fmt.Errorf("array: unknown instruction kind %d", uint8(in.Kind))
}

// clampCols bounds a Partial's column limit to the cells actually
// touched in one tile.
func clampCols(cols, touched int) int {
	if cols < touched {
		return cols
	}
	return touched
}

// Activate applies an Activate Columns instruction: the machine-wide
// active configuration is replaced by the instruction's column set, in
// the addressed tile or in every tile (broadcast). Replacement semantics
// make the configuration recoverable from the single most recent ACT
// instruction after an outage (Section IV-D).
func (m *Machine) Activate(in isa.Instruction) error {
	if in.Kind != isa.KindAct {
		return fmt.Errorf("array: Activate on %v instruction", in.Kind)
	}
	cols := in.ActiveColumns()
	if in.Broadcast {
		for _, t := range m.DataTiles() {
			t.SetActive(cols)
		}
		return nil
	}
	target, err := m.Tile(int(in.Tile))
	if err != nil {
		return err
	}
	for _, t := range m.DataTiles() {
		if t == target {
			t.SetActive(cols)
		} else {
			t.ClearActive()
		}
	}
	if int(in.Tile) >= m.dataTiles {
		// A non-data tile (e.g. the sensor buffer) has no compute
		// columns to activate.
		return fmt.Errorf("array: tile %d is not a data tile", in.Tile)
	}
	return nil
}

// LoadBits writes a bit vector into consecutive rows of one column of a
// tile, bits[i] landing in row start+i*step. A convenience for tests and
// examples that prepare operands.
func (m *Machine) LoadBits(tile, col, start, step int, bits []int) error {
	t, err := m.Tile(tile)
	if err != nil {
		return err
	}
	for i, b := range bits {
		row := start + i*step
		if row < 0 || row >= t.Rows() {
			return fmt.Errorf("array: LoadBits row %d out of range", row)
		}
		t.SetBit(row, col, b)
	}
	return nil
}

// ReadBits reads a bit vector from consecutive rows of one column.
func (m *Machine) ReadBits(tile, col, start, step, n int) ([]int, error) {
	t, err := m.Tile(tile)
	if err != nil {
		return nil, err
	}
	bits := make([]int, n)
	for i := range bits {
		row := start + i*step
		if row < 0 || row >= t.Rows() {
			return nil, fmt.Errorf("array: ReadBits row %d out of range", row)
		}
		bits[i] = t.Bit(row, col)
	}
	return bits, nil
}
