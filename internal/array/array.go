// Package array is the bit-accurate functional model of MOUSE's memory
// tiles (Section II-C of the paper): MTJ cell arrays with even/odd bit
// lines, a shared logic line per column, word lines per row, and a
// column-activation latch in the peripheral circuitry.
//
// The package distinguishes non-volatile state (the MTJ cells themselves,
// which survive power outages) from volatile peripheral state (the
// column-activation latches, which do not). A simulated outage clears the
// volatile state via LoseVolatile; the controller restores it by
// re-issuing the most recent Activate Columns instruction (Section IV-D).
//
// Logic operations execute through the same resistor-network device model
// used by package mtj, so an interrupted operation (modelled as a
// truncated or per-column-partial current pulse) behaves exactly like the
// hardware: outputs either completed their unidirectional switch or were
// left untouched, and re-performing the operation is always safe.
package array

import (
	"fmt"

	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// Tile is one MTJ array with its column-activation latch.
type Tile struct {
	cfg  *mtj.Config
	rows int
	cols int

	// cells holds the non-volatile MTJ devices, row-major.
	cells []mtj.Device

	// active is the volatile peripheral column latch.
	active []bool
}

// NewTile creates a rows×cols tile with every cell in the P (0) state and
// no columns active.
func NewTile(cfg *mtj.Config, rows, cols int) *Tile {
	if rows <= 0 || cols <= 0 || rows > isa.Rows || cols > isa.Cols {
		panic(fmt.Sprintf("array: bad tile geometry %dx%d", rows, cols))
	}
	return &Tile{
		cfg:    cfg,
		rows:   rows,
		cols:   cols,
		cells:  make([]mtj.Device, rows*cols),
		active: make([]bool, cols),
	}
}

// Rows returns the number of rows in the tile.
func (t *Tile) Rows() int { return t.rows }

// Cols returns the number of columns in the tile.
func (t *Tile) Cols() int { return t.cols }

func (t *Tile) cell(row, col int) *mtj.Device {
	return &t.cells[row*t.cols+col]
}

// Bit returns the logic value stored at (row, col).
func (t *Tile) Bit(row, col int) int { return t.cell(row, col).Bit() }

// SetBit stores a logic value at (row, col), modelling a completed write.
func (t *Tile) SetBit(row, col, bit int) { t.cell(row, col).Set(mtj.FromBit(bit)) }

// ActiveColumns returns the indices of currently active columns.
func (t *Tile) ActiveColumns() []int {
	var out []int
	for c, a := range t.active {
		if a {
			out = append(out, c)
		}
	}
	return out
}

// ActiveCount returns how many columns are active.
func (t *Tile) ActiveCount() int {
	n := 0
	for _, a := range t.active {
		if a {
			n++
		}
	}
	return n
}

// SetActive replaces the tile's active-column latch with exactly the
// given columns. Columns beyond the tile width are ignored (the decoder
// simply has no such column).
func (t *Tile) SetActive(cols []uint16) {
	for i := range t.active {
		t.active[i] = false
	}
	for _, c := range cols {
		if int(c) < t.cols {
			t.active[c] = true
		}
	}
}

// ClearActive deactivates every column.
func (t *Tile) ClearActive() { t.SetActive(nil) }

// LoseVolatile models a power outage: the peripheral activation latch is
// cleared, while the MTJ cells retain their states.
func (t *Tile) LoseVolatile() { t.ClearActive() }

// ReadRow senses one full row into buf (least-significant bit of buf[0]
// is column 0). buf must hold at least (cols+7)/8 bytes.
func (t *Tile) ReadRow(row int, buf []byte) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	if len(buf)*8 < t.cols {
		return fmt.Errorf("array: read buffer too small (%d bytes for %d columns)", len(buf), t.cols)
	}
	for i := range buf {
		buf[i] = 0
	}
	for c := 0; c < t.cols; c++ {
		if t.cell(row, c).Bit() == 1 {
			buf[c/8] |= 1 << (c % 8)
		}
	}
	return nil
}

// WriteRow writes one full row from buf, the inverse of ReadRow.
// upTo limits how many columns complete (modelling an interrupted write);
// pass cols or more for a full write. Re-performing an interrupted write
// is safe because writes do not depend on the previous cell state.
func (t *Tile) WriteRow(row int, buf []byte, upTo int) error {
	return t.WriteRowRot(row, buf, 0, upTo)
}

// WriteRowRot writes one full row from buf rotated left by rot columns:
// destination column c receives buffer bit (c-rot) mod cols. A read
// followed by a rotated write moves data horizontally across columns —
// the only horizontal datapath MOUSE has (Section VI's partial-sum
// moves). The pair stays idempotent across outages because the buffer is
// non-volatile and the write overwrites unconditionally.
func (t *Tile) WriteRowRot(row int, buf []byte, rot, upTo int) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	if len(buf)*8 < t.cols {
		return fmt.Errorf("array: write buffer too small (%d bytes for %d columns)", len(buf), t.cols)
	}
	if rot < 0 || rot >= t.cols {
		return fmt.Errorf("array: rotation %d out of range [0, %d)", rot, t.cols)
	}
	if upTo > t.cols {
		upTo = t.cols
	}
	for c := 0; c < upTo; c++ {
		src := c - rot
		if src < 0 {
			src += t.cols
		}
		bit := int(buf[src/8]>>(src%8)) & 1
		t.cell(row, c).Set(mtj.FromBit(bit))
	}
	return nil
}

// PresetRow writes state s into row across the active columns, the
// preparation step before a logic operation. upTo limits how many of the
// active columns complete (interruption model); pass the column count or
// more for a full preset.
func (t *Tile) PresetRow(row int, s mtj.State, upTo int) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	done := 0
	for c := 0; c < t.cols && done < upTo; c++ {
		if t.active[c] {
			t.cell(row, c).Set(s)
			done++
		}
	}
	return nil
}

// PulseLength describes how much of a logic operation's current pulse a
// column received, as a fraction of the switching time. A full operation
// delivers 1.0 everywhere; an interrupted operation delivers less in some
// or all columns.
type PulseLength func(col int) float64

// FullPulse is the uninterrupted pulse profile.
func FullPulse(int) float64 { return 1.0 }

// ExecLogic performs gate g with the given input rows and output row in
// every active column, delivering pulse(col) of the switching time to
// each column. Input and output parities must satisfy the bit-line
// crossing requirement (validated at the ISA layer; re-checked here).
func (t *Tile) ExecLogic(g mtj.GateKind, inRows []int, outRow int, pulse PulseLength) error {
	spec := mtj.Spec(g)
	if len(inRows) != spec.Inputs {
		return fmt.Errorf("array: %s takes %d inputs, got %d", g, spec.Inputs, len(inRows))
	}
	if err := t.checkRow(outRow); err != nil {
		return err
	}
	for _, r := range inRows {
		if err := t.checkRow(r); err != nil {
			return err
		}
		if r&1 == outRow&1 {
			return fmt.Errorf("array: %s: input row %d shares parity with output row %d", g, r, outRow)
		}
	}
	bias, err := mtj.Bias(g, t.cfg)
	if err != nil {
		return err
	}
	inputs := make([]mtj.State, spec.Inputs)
	for c := 0; c < t.cols; c++ {
		if !t.active[c] {
			continue
		}
		for i, r := range inRows {
			inputs[i] = t.cell(r, c).State()
		}
		i := mtj.DriveCurrent(g, t.cfg, bias, inputs)
		dur := pulse(c) * t.cfg.P.SwitchTime
		t.cell(outRow, c).ApplyPulse(&t.cfg.P, spec.Dir, i, dur)
	}
	return nil
}

func (t *Tile) checkRow(row int) error {
	if row < 0 || row >= t.rows {
		return fmt.Errorf("array: row %d out of range [0, %d)", row, t.rows)
	}
	return nil
}
