// Package array is the bit-accurate functional model of MOUSE's memory
// tiles (Section II-C of the paper): MTJ cell arrays with even/odd bit
// lines, a shared logic line per column, word lines per row, and a
// column-activation latch in the peripheral circuitry.
//
// The package distinguishes non-volatile state (the MTJ cells themselves,
// which survive power outages) from volatile peripheral state (the
// column-activation latches, which do not). A simulated outage clears the
// volatile state via LoseVolatile; the controller restores it by
// re-issuing the most recent Activate Columns instruction (Section IV-D).
//
// Cell storage is packed: each row is a bit-plane of uint64 words (one
// bit per column, 1 = AP = logic 1), and the activation latch is a
// packed mask with a cached popcount. A full, uninterrupted logic pulse
// reduces to a fixed truth table per (gate, configuration) — derived
// once from the resistor-network model and memoized by package mtj — so
// ExecLogicFull executes a gate over 64 columns per boolean word
// operation, exactly as the hardware's column broadcast does.
//
// Interrupted operations (truncated or per-column-partial current
// pulses) still execute through the scalar resistor-network device
// model, cell by cell, so outage semantics are untouched: outputs either
// completed their unidirectional switch or were left alone, and
// re-performing the operation is always safe. Tests assert the packed
// and scalar paths are bit-identical.
package array

import (
	"fmt"
	"math/bits"

	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// Tile is one MTJ array with its column-activation latch.
type Tile struct {
	cfg  *mtj.Config
	rows int
	cols int

	// wpr is the number of uint64 words per row; tail masks the valid
	// bits of a row's final word.
	wpr  int
	tail uint64

	// planes holds the non-volatile cell states as packed bit-planes,
	// row-major: bit c%64 of planes[row*wpr+c/64] is cell (row, c),
	// 1 = AP = logic 1. Bits at column positions >= cols are always 0.
	planes []uint64

	// active is the volatile peripheral column latch, packed like a row,
	// with its popcount cached in nActive.
	active  []uint64
	nActive int

	// scratch backs word-parallel row writes (packing + rotation).
	scratch, scratch2 []uint64
}

// NewTile creates a rows×cols tile with every cell in the P (0) state and
// no columns active.
func NewTile(cfg *mtj.Config, rows, cols int) *Tile {
	if rows <= 0 || cols <= 0 || rows > isa.Rows || cols > isa.Cols {
		panic(fmt.Sprintf("array: bad tile geometry %dx%d", rows, cols))
	}
	wpr := wordsFor(cols)
	return &Tile{
		cfg:      cfg,
		rows:     rows,
		cols:     cols,
		wpr:      wpr,
		tail:     tailMask(cols),
		planes:   make([]uint64, rows*wpr),
		active:   make([]uint64, wpr),
		scratch:  make([]uint64, wpr),
		scratch2: make([]uint64, wpr),
	}
}

// Rows returns the number of rows in the tile.
func (t *Tile) Rows() int { return t.rows }

// Cols returns the number of columns in the tile.
func (t *Tile) Cols() int { return t.cols }

// rowWords returns row r's packed bit-plane.
func (t *Tile) rowWords(r int) []uint64 {
	return t.planes[r*t.wpr : (r+1)*t.wpr]
}

func (t *Tile) checkCell(row, col int) {
	if row < 0 || row >= t.rows || col < 0 || col >= t.cols {
		panic(fmt.Sprintf("array: cell (%d, %d) outside %dx%d tile", row, col, t.rows, t.cols))
	}
}

// state returns the magnetic state of cell (row, col).
func (t *Tile) state(row, col int) mtj.State {
	if t.planes[row*t.wpr+col/wordBits]>>(col%wordBits)&1 == 1 {
		return mtj.AP
	}
	return mtj.P
}

// setState forces cell (row, col) into state s.
func (t *Tile) setState(row, col int, s mtj.State) {
	bit := uint64(1) << (col % wordBits)
	if s == mtj.AP {
		t.planes[row*t.wpr+col/wordBits] |= bit
	} else {
		t.planes[row*t.wpr+col/wordBits] &^= bit
	}
}

// Bit returns the logic value stored at (row, col).
func (t *Tile) Bit(row, col int) int {
	t.checkCell(row, col)
	return t.state(row, col).Bit()
}

// SetBit stores a logic value at (row, col), modelling a completed write.
func (t *Tile) SetBit(row, col, bit int) {
	t.checkCell(row, col)
	t.setState(row, col, mtj.FromBit(bit))
}

// ActiveColumns returns the indices of currently active columns.
func (t *Tile) ActiveColumns() []int {
	out := make([]int, 0, t.nActive)
	for wi, w := range t.active {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << b
			out = append(out, wi*wordBits+b)
		}
	}
	return out
}

// ActiveCount returns how many columns are active (cached popcount of
// the packed latch — O(1), it is read per instruction for energy
// accounting).
func (t *Tile) ActiveCount() int { return t.nActive }

// SetActive replaces the tile's active-column latch with exactly the
// given columns. Columns beyond the tile width are ignored (the decoder
// simply has no such column).
func (t *Tile) SetActive(cols []uint16) {
	for i := range t.active {
		t.active[i] = 0
	}
	for _, c := range cols {
		if int(c) < t.cols {
			t.active[c/wordBits] |= 1 << (c % wordBits)
		}
	}
	t.nActive = popcount(t.active)
}

// ClearActive deactivates every column.
func (t *Tile) ClearActive() { t.SetActive(nil) }

// LoseVolatile models a power outage: the peripheral activation latch is
// cleared, while the MTJ cells retain their states.
func (t *Tile) LoseVolatile() { t.ClearActive() }

// ReadRow senses one full row into buf (least-significant bit of buf[0]
// is column 0). buf must hold at least (cols+7)/8 bytes.
func (t *Tile) ReadRow(row int, buf []byte) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	if len(buf)*8 < t.cols {
		return fmt.Errorf("array: read buffer too small (%d bytes for %d columns)", len(buf), t.cols)
	}
	unpackBytes(buf, t.rowWords(row))
	return nil
}

// WriteRow writes one full row from buf, the inverse of ReadRow.
// upTo limits how many columns complete (modelling an interrupted write);
// pass cols or more for a full write. Re-performing an interrupted write
// is safe because writes do not depend on the previous cell state.
func (t *Tile) WriteRow(row int, buf []byte, upTo int) error {
	return t.WriteRowRot(row, buf, 0, upTo)
}

// WriteRowRot writes one full row from buf rotated left by rot columns:
// destination column c receives buffer bit (c-rot) mod cols. A read
// followed by a rotated write moves data horizontally across columns —
// the only horizontal datapath MOUSE has (Section VI's partial-sum
// moves). The pair stays idempotent across outages because the buffer is
// non-volatile and the write overwrites unconditionally.
//
// The whole operation is word-parallel: the buffer is packed into words,
// rotated with word shifts, and merged under the interruption mask.
func (t *Tile) WriteRowRot(row int, buf []byte, rot, upTo int) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	if len(buf)*8 < t.cols {
		return fmt.Errorf("array: write buffer too small (%d bytes for %d columns)", len(buf), t.cols)
	}
	if rot < 0 || rot >= t.cols {
		return fmt.Errorf("array: rotation %d out of range [0, %d)", rot, t.cols)
	}
	if upTo > t.cols {
		upTo = t.cols
	}
	if upTo <= 0 {
		return nil
	}
	src := t.scratch
	packBytes(src, buf, t.cols)
	if rot != 0 {
		rotlInto(t.scratch2, src, t.cols, rot)
		src = t.scratch2
	}
	dst := t.rowWords(row)
	if upTo >= t.cols {
		copy(dst, src)
		return nil
	}
	// Interrupted write: columns 0..upTo-1 take the new value, the rest
	// keep theirs.
	for i := range dst {
		var m uint64
		switch base := i * wordBits; {
		case base+wordBits <= upTo:
			m = ^uint64(0)
		case base < upTo:
			m = 1<<(upTo-base) - 1
		}
		dst[i] = dst[i]&^m | src[i]&m
	}
	return nil
}

// PresetRow writes state s into row across the active columns, the
// preparation step before a logic operation. upTo limits how many of the
// active columns complete (interruption model); pass the column count or
// more for a full preset.
func (t *Tile) PresetRow(row int, s mtj.State, upTo int) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	if upTo <= 0 {
		return nil
	}
	dst := t.rowWords(row)
	need := upTo
	for i, w := range t.active {
		if w == 0 {
			continue
		}
		m := w
		pc := bits.OnesCount64(w)
		if pc > need {
			m = lowestSetBits(w, need)
		}
		if s == mtj.AP {
			dst[i] |= m
		} else {
			dst[i] &^= m
		}
		if pc >= need {
			return nil
		}
		need -= pc
	}
	return nil
}

// PulseLength describes how much of a logic operation's current pulse a
// column received, as a fraction of the switching time. A full operation
// delivers 1.0 everywhere; an interrupted operation delivers less in some
// or all columns.
type PulseLength func(col int) float64

// FullPulse is the uninterrupted pulse profile.
func FullPulse(int) float64 { return 1.0 }

// checkLogic validates gate arity, row bounds, and the bit-line parity
// crossing requirement shared by both execution paths.
func (t *Tile) checkLogic(g mtj.GateKind, spec mtj.GateSpec, inRows []int, outRow int) error {
	if len(inRows) != spec.Inputs {
		return fmt.Errorf("array: %s takes %d inputs, got %d", g, spec.Inputs, len(inRows))
	}
	if err := t.checkRow(outRow); err != nil {
		return err
	}
	for _, r := range inRows {
		if err := t.checkRow(r); err != nil {
			return err
		}
		if r&1 == outRow&1 {
			return fmt.Errorf("array: %s: input row %d shares parity with output row %d", g, r, outRow)
		}
	}
	return nil
}

// ExecLogic performs gate g with the given input rows and output row in
// every active column, delivering pulse(col) of the switching time to
// each column. Input and output parities must satisfy the bit-line
// crossing requirement (validated at the ISA layer; re-checked here).
//
// This is the scalar resistor-network path: it solves the network and
// integrates the switching pulse per cell, so it models arbitrary
// per-column interruption profiles. Full pulses take the word-parallel
// ExecLogicFull instead; the two are bit-identical where they overlap.
func (t *Tile) ExecLogic(g mtj.GateKind, inRows []int, outRow int, pulse PulseLength) error {
	spec := mtj.Spec(g)
	if err := t.checkLogic(g, spec, inRows, outRow); err != nil {
		return err
	}
	bias, err := mtj.Bias(g, t.cfg)
	if err != nil {
		return err
	}
	inputs := make([]mtj.State, spec.Inputs)
	for wi, w := range t.active {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << b
			c := wi*wordBits + b
			for i, r := range inRows {
				inputs[i] = t.state(r, c)
			}
			i := mtj.DriveCurrent(g, t.cfg, bias, inputs)
			dur := pulse(c) * t.cfg.P.SwitchTime
			d := mtj.NewDevice(t.state(outRow, c))
			d.ApplyPulse(&t.cfg.P, spec.Dir, i, dur)
			t.setState(outRow, c, d.State())
		}
	}
	return nil
}

// ExecLogicFull performs gate g with a full, uninterrupted pulse in
// every active column, 64 columns per boolean word operation. The
// resistor network collapses to a threshold on the number of P-state
// inputs (mtj.Table derives and memoizes it), so each word step builds
// the count-threshold mask from the input bit-planes and switches
// exactly the active columns that reach it — the word-parallel image of
// the array's column broadcast.
func (t *Tile) ExecLogicFull(g mtj.GateKind, inRows []int, outRow int) error {
	spec := mtj.Spec(g)
	if err := t.checkLogic(g, spec, inRows, outRow); err != nil {
		return err
	}
	tbl, err := mtj.Table(g, t.cfg)
	if err != nil {
		return err
	}
	out := t.rowWords(outRow)
	toAP := tbl.Target == mtj.AP
	var in0, in1, in2 []uint64
	switch spec.Inputs {
	case 3:
		in2 = t.rowWords(inRows[2])
		fallthrough
	case 2:
		in1 = t.rowWords(inRows[1])
		fallthrough
	case 1:
		in0 = t.rowWords(inRows[0])
	}
	for i, act := range t.active {
		if act == 0 {
			continue
		}
		// sw: active columns whose P-input count reaches the switching
		// threshold. Complemented planes count P (logic 0) inputs; tail
		// garbage from the complement is cleared by the active mask.
		var sw uint64
		switch m := tbl.MinSwitchP; {
		case m <= 0:
			sw = act
		case m > spec.Inputs:
			sw = 0
		default:
			switch spec.Inputs {
			case 1:
				sw = ^in0[i]
			case 2:
				pa, pb := ^in0[i], ^in1[i]
				if m == 1 {
					sw = pa | pb
				} else {
					sw = pa & pb
				}
			case 3:
				pa, pb, pc := ^in0[i], ^in1[i], ^in2[i]
				switch m {
				case 1:
					sw = pa | pb | pc
				case 2:
					sw = pa&(pb|pc) | pb&pc
				default:
					sw = pa & pb & pc
				}
			}
			sw &= act
		}
		if toAP {
			out[i] |= sw
		} else {
			out[i] &^= sw
		}
	}
	return nil
}

func (t *Tile) checkRow(row int) error {
	if row < 0 || row >= t.rows {
		return fmt.Errorf("array: row %d out of range [0, %d)", row, t.rows)
	}
	return nil
}
