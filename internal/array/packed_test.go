package array

import (
	"fmt"
	"testing"
	"testing/quick"

	"mouse/internal/mtj"
)

// refTile is the seed's scalar tile implementation, kept verbatim as
// the differential-testing oracle for the packed engine: one
// mtj.Device per cell, a []bool activation latch, and per-cell
// resistor-network math for every operation.
type refTile struct {
	cfg    *mtj.Config
	rows   int
	cols   int
	cells  []mtj.Device
	active []bool
}

func newRefTile(cfg *mtj.Config, rows, cols int) *refTile {
	return &refTile{
		cfg:    cfg,
		rows:   rows,
		cols:   cols,
		cells:  make([]mtj.Device, rows*cols),
		active: make([]bool, cols),
	}
}

func (t *refTile) cell(row, col int) *mtj.Device { return &t.cells[row*t.cols+col] }

func (t *refTile) setActive(cols []uint16) {
	for i := range t.active {
		t.active[i] = false
	}
	for _, c := range cols {
		if int(c) < t.cols {
			t.active[c] = true
		}
	}
}

func (t *refTile) checkRow(row int) error {
	if row < 0 || row >= t.rows {
		return fmt.Errorf("array: row %d out of range [0, %d)", row, t.rows)
	}
	return nil
}

func (t *refTile) writeRowRot(row int, buf []byte, rot, upTo int) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	if len(buf)*8 < t.cols {
		return fmt.Errorf("array: write buffer too small (%d bytes for %d columns)", len(buf), t.cols)
	}
	if rot < 0 || rot >= t.cols {
		return fmt.Errorf("array: rotation %d out of range [0, %d)", rot, t.cols)
	}
	if upTo > t.cols {
		upTo = t.cols
	}
	for c := 0; c < upTo; c++ {
		src := c - rot
		if src < 0 {
			src += t.cols
		}
		bit := int(buf[src/8]>>(src%8)) & 1
		t.cell(row, c).Set(mtj.FromBit(bit))
	}
	return nil
}

func (t *refTile) presetRow(row int, s mtj.State, upTo int) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	done := 0
	for c := 0; c < t.cols && done < upTo; c++ {
		if t.active[c] {
			t.cell(row, c).Set(s)
			done++
		}
	}
	return nil
}

func (t *refTile) execLogic(g mtj.GateKind, inRows []int, outRow int, pulse PulseLength) error {
	spec := mtj.Spec(g)
	if len(inRows) != spec.Inputs {
		return fmt.Errorf("array: %s takes %d inputs, got %d", g, spec.Inputs, len(inRows))
	}
	if err := t.checkRow(outRow); err != nil {
		return err
	}
	for _, r := range inRows {
		if err := t.checkRow(r); err != nil {
			return err
		}
		if r&1 == outRow&1 {
			return fmt.Errorf("array: %s: input row %d shares parity with output row %d", g, r, outRow)
		}
	}
	bias, err := mtj.Bias(g, t.cfg)
	if err != nil {
		return err
	}
	inputs := make([]mtj.State, spec.Inputs)
	for c := 0; c < t.cols; c++ {
		if !t.active[c] {
			continue
		}
		for i, r := range inRows {
			inputs[i] = t.cell(r, c).State()
		}
		i := mtj.DriveCurrent(g, t.cfg, bias, inputs)
		dur := pulse(c) * t.cfg.P.SwitchTime
		t.cell(outRow, c).ApplyPulse(&t.cfg.P, spec.Dir, i, dur)
	}
	return nil
}

// assertSameState compares every cell and the activation latch.
func assertSameState(t *testing.T, step int, packed *Tile, ref *refTile) {
	t.Helper()
	for r := 0; r < ref.rows; r++ {
		for c := 0; c < ref.cols; c++ {
			if got, want := packed.Bit(r, c), ref.cell(r, c).Bit(); got != want {
				t.Fatalf("step %d: cell (%d,%d) = %d, scalar reference has %d", step, r, c, got, want)
			}
		}
	}
	var want []int
	for c, a := range ref.active {
		if a {
			want = append(want, c)
		}
	}
	if packed.ActiveCount() != len(want) {
		t.Fatalf("step %d: ActiveCount = %d, reference has %d", step, packed.ActiveCount(), len(want))
	}
	got := packed.ActiveColumns()
	if len(got) != len(want) {
		t.Fatalf("step %d: ActiveColumns = %v, reference %v", step, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("step %d: ActiveColumns = %v, reference %v", step, got, want)
		}
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// FuzzPackedVsScalarStream drives a random operation stream through the
// packed tile and the scalar reference, asserting bit-identical cell
// state, identical activation accounting, and identical errors after
// every operation. Geometry (including tail-word widths that do not
// divide 64) and the full/partial split are all fuzzer-chosen.
func FuzzPackedVsScalarStream(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{200, 100, 3, 250, 17, 90, 41, 7, 7, 7, 88, 13, 54, 255, 0, 32, 99, 1})
	f.Add([]byte{5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5})
	widths := []int{1, 7, 63, 64, 65, 100, 128}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		cfg := mtj.Configs()[int(next())%3]
		rows := 4 + int(next())%8
		cols := widths[int(next())%len(widths)]
		packed := NewTile(cfg, rows, cols)
		ref := newRefTile(cfg, rows, cols)

		buf := make([]byte, (cols+7)/8)
		for step := 0; len(data) > 0 && step < 64; step++ {
			switch next() % 6 {
			case 0: // replace the activation latch
				n := int(next()) % (cols + 1)
				sel := make([]uint16, 0, n)
				for i := 0; i < n; i++ {
					sel = append(sel, uint16(int(next())%(cols+4))) // may exceed width: ignored
				}
				packed.SetActive(sel)
				ref.setActive(sel)
			case 1: // possibly-interrupted rotated row write
				row := int(next()) % (rows + 1) // may be out of range
				for i := range buf {
					buf[i] = next()
				}
				rot := int(next()) % (cols + 1) // may be out of range
				upTo := int(next()) % (cols + 2)
				gotErr := packed.WriteRowRot(row, buf, rot, upTo)
				wantErr := ref.writeRowRot(row, buf, rot, upTo)
				if errString(gotErr) != errString(wantErr) {
					t.Fatalf("step %d: WriteRowRot error %q, reference %q", step, errString(gotErr), errString(wantErr))
				}
			case 2: // possibly-interrupted preset
				row := int(next()) % (rows + 1)
				s := mtj.FromBit(int(next()) & 1)
				upTo := int(next()) % (cols + 2)
				gotErr := packed.PresetRow(row, s, upTo)
				wantErr := ref.presetRow(row, s, upTo)
				if errString(gotErr) != errString(wantErr) {
					t.Fatalf("step %d: PresetRow error %q, reference %q", step, errString(gotErr), errString(wantErr))
				}
			case 3, 4: // logic: packed fast path vs scalar network
				g := mtj.GateKind(int(next()) % mtj.NumGates)
				spec := mtj.Spec(g)
				outRow := int(next()) % rows
				inRows := make([]int, spec.Inputs)
				for i := range inRows {
					inRows[i] = int(next()) % rows // parity may clash: error path
				}
				gotErr := packed.ExecLogicFull(g, inRows, outRow)
				wantErr := ref.execLogic(g, inRows, outRow, FullPulse)
				if errString(gotErr) != errString(wantErr) {
					t.Fatalf("step %d: ExecLogicFull error %q, reference %q", step, errString(gotErr), errString(wantErr))
				}
			case 5: // interrupted logic: both take the scalar network path
				g := mtj.GateKind(int(next()) % mtj.NumGates)
				spec := mtj.Spec(g)
				outRow := int(next()) % rows
				inRows := make([]int, spec.Inputs)
				for i := range inRows {
					inRows[i] = int(next()) % rows
				}
				frac := float64(next()%128) / 100.0
				pulse := func(c int) float64 {
					if c%2 == 0 {
						return frac
					}
					return 1.0
				}
				gotErr := packed.ExecLogic(g, inRows, outRow, pulse)
				wantErr := ref.execLogic(g, inRows, outRow, pulse)
				if errString(gotErr) != errString(wantErr) {
					t.Fatalf("step %d: ExecLogic error %q, reference %q", step, errString(gotErr), errString(wantErr))
				}
			}
			assertSameState(t, step, packed, ref)
		}
	})
}

// TestWriteRowRotWordShiftsMatchScalar pins the word-shift rotation
// against the scalar reference across widths, rotations, and
// interruption points.
func TestWriteRowRotWordShiftsMatchScalar(t *testing.T) {
	cfg := mtj.ModernSTT()
	prop := func(seed uint64, rotRaw, upToRaw uint16, widthSel uint8) bool {
		widths := []int{1, 8, 63, 64, 65, 100, 128, 256}
		cols := widths[int(widthSel)%len(widths)]
		packed := NewTile(cfg, 2, cols)
		ref := newRefTile(cfg, 2, cols)
		buf := make([]byte, (cols+7)/8)
		s := seed
		for i := range buf {
			s = s*6364136223846793005 + 1442695040888963407
			buf[i] = byte(s >> 56)
		}
		rot := int(rotRaw) % cols
		upTo := int(upToRaw) % (cols + 2)
		if err := packed.WriteRowRot(1, buf, rot, upTo); err != nil {
			return false
		}
		if err := ref.writeRowRot(1, buf, rot, upTo); err != nil {
			return false
		}
		for c := 0; c < cols; c++ {
			if packed.Bit(1, c) != ref.cell(1, c).Bit() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestExecLogicFullMatchesScalarAllGates exhaustively checks the packed
// fast path against the scalar path for every gate, configuration, and
// input pattern, on a width with a partial tail word.
func TestExecLogicFullMatchesScalarAllGates(t *testing.T) {
	const cols = 70
	for _, cfg := range mtj.Configs() {
		for g := mtj.GateKind(0); g.Valid(); g++ {
			n := mtj.Spec(g).Inputs
			packed := NewTile(cfg, 8, cols)
			scalar := NewTile(cfg, 8, cols)
			// Activate a ragged subset crossing the word boundary.
			var act []uint16
			for c := 0; c < cols; c += 3 {
				act = append(act, uint16(c))
			}
			packed.SetActive(act)
			scalar.SetActive(act)
			inRows := []int{0, 2, 4}[:n]
			for v := 0; v < 1<<n; v++ {
				c := v % cols
				for i := 0; i < n; i++ {
					packed.SetBit(inRows[i], c, v>>i&1)
					scalar.SetBit(inRows[i], c, v>>i&1)
				}
			}
			// Mixed preset states on the output row, including non-preset
			// values a prior gate may have left behind.
			for c := 0; c < cols; c++ {
				packed.SetBit(1, c, c&1)
				scalar.SetBit(1, c, c&1)
			}
			if err := packed.ExecLogicFull(g, inRows, 1); err != nil {
				t.Fatal(err)
			}
			if err := scalar.ExecLogic(g, inRows, 1, FullPulse); err != nil {
				t.Fatal(err)
			}
			for c := 0; c < cols; c++ {
				for r := 0; r < 8; r++ {
					if packed.Bit(r, c) != scalar.Bit(r, c) {
						t.Fatalf("%s/%s: (%d,%d) packed %d scalar %d", cfg.Name, g, r, c, packed.Bit(r, c), scalar.Bit(r, c))
					}
				}
			}
		}
	}
}

// TestPresetRowPartialBoundaryWords exercises the lowest-set-bits
// selection at word boundaries: active columns straddling words, with
// interruption points landing inside each word.
func TestPresetRowPartialBoundaryWords(t *testing.T) {
	cfg := mtj.ModernSTT()
	const cols = 130
	var act []uint16
	for c := 60; c < 70; c++ {
		act = append(act, uint16(c))
	}
	act = append(act, 127, 128, 129)
	for upTo := 0; upTo <= len(act)+1; upTo++ {
		packed := NewTile(cfg, 2, cols)
		ref := newRefTile(cfg, 2, cols)
		packed.SetActive(act)
		ref.setActive(act)
		if err := packed.PresetRow(1, mtj.AP, upTo); err != nil {
			t.Fatal(err)
		}
		if err := ref.presetRow(1, mtj.AP, upTo); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < cols; c++ {
			if packed.Bit(1, c) != ref.cell(1, c).Bit() {
				t.Fatalf("upTo=%d: col %d packed %d ref %d", upTo, c, packed.Bit(1, c), ref.cell(1, c).Bit())
			}
		}
	}
}
