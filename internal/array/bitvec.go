package array

import "math/bits"

// Bit-vector helpers for the packed tile engine. A row (or the
// activation latch) is a cols-bit vector packed little-endian into
// uint64 words: column c lives in bit c%64 of word c/64. Every vector
// maintains the invariant that bits at positions >= cols are zero, so
// word-wide boolean operations never leak state across the tile edge.

const wordBits = 64

// wordsFor returns how many uint64 words hold a cols-bit vector.
func wordsFor(cols int) int { return (cols + wordBits - 1) / wordBits }

// tailMask returns the valid-bit mask of the final word of a cols-bit
// vector.
func tailMask(cols int) uint64 {
	if r := cols % wordBits; r != 0 {
		return 1<<r - 1
	}
	return ^uint64(0)
}

// packBytes packs the low cols bits of buf (LSB of buf[0] is bit 0)
// into dst, zeroing dst first and masking bits beyond cols.
func packBytes(dst []uint64, buf []byte, cols int) {
	for i := range dst {
		dst[i] = 0
	}
	nb := (cols + 7) / 8
	for i := 0; i < nb; i++ {
		dst[i/8] |= uint64(buf[i]) << (8 * (i % 8))
	}
	dst[len(dst)-1] &= tailMask(cols)
}

// unpackBytes writes the packed vector src into buf (zeroing all of
// buf first, matching the sense amplifier clearing the whole buffer).
func unpackBytes(buf []byte, src []uint64) {
	for i := range buf {
		buf[i] = 0
	}
	for i := range buf {
		if i/8 >= len(src) {
			break
		}
		buf[i] = byte(src[i/8] >> (8 * (i % 8)))
	}
}

// orShiftLeft ors src<<k into dst (dst and src must not alias).
func orShiftLeft(dst, src []uint64, k int) {
	wshift, bshift := k/wordBits, uint(k%wordBits)
	for i := len(dst) - 1; i >= wshift; i-- {
		w := src[i-wshift] << bshift
		if bshift > 0 && i-wshift-1 >= 0 {
			w |= src[i-wshift-1] >> (wordBits - bshift)
		}
		dst[i] |= w
	}
}

// orShiftRight ors src>>k into dst (dst and src must not alias).
func orShiftRight(dst, src []uint64, k int) {
	wshift, bshift := k/wordBits, uint(k%wordBits)
	for i := 0; i+wshift < len(src); i++ {
		w := src[i+wshift] >> bshift
		if bshift > 0 && i+wshift+1 < len(src) {
			w |= src[i+wshift+1] << (wordBits - bshift)
		}
		dst[i] |= w
	}
}

// rotlInto writes the cols-bit left rotation of src by rot into dst:
// destination bit (i+rot) mod cols receives source bit i. dst and src
// must not alias; src must respect the tail invariant.
func rotlInto(dst, src []uint64, cols, rot int) {
	for i := range dst {
		dst[i] = 0
	}
	if rot == 0 {
		copy(dst, src)
		return
	}
	orShiftLeft(dst, src, rot)
	orShiftRight(dst, src, cols-rot)
	dst[len(dst)-1] &= tailMask(cols)
}

// popcount returns the number of set bits in the vector.
func popcount(v []uint64) int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// lowestSetBits returns the mask of the n lowest set bits of w
// (all of w when it has fewer than n set bits).
func lowestSetBits(w uint64, n int) uint64 {
	if bits.OnesCount64(w) <= n {
		return w
	}
	t := w
	for i := 0; i < n; i++ {
		t &= t - 1 // clear the lowest set bit
	}
	return w ^ t
}
