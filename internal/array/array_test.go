package array

import (
	"testing"
	"testing/quick"

	"mouse/internal/isa"
	"mouse/internal/mtj"
)

func testTile(t *testing.T, rows, cols int) *Tile {
	t.Helper()
	return NewTile(mtj.ModernSTT(), rows, cols)
}

func TestTileGeometry(t *testing.T) {
	tile := testTile(t, 16, 32)
	if tile.Rows() != 16 || tile.Cols() != 32 {
		t.Fatalf("geometry %dx%d", tile.Rows(), tile.Cols())
	}
	for _, bad := range [][2]int{{0, 8}, {8, 0}, {isa.Rows + 1, 8}, {8, isa.Cols + 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTile(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			NewTile(mtj.ModernSTT(), bad[0], bad[1])
		}()
	}
}

func TestTileBits(t *testing.T) {
	tile := testTile(t, 8, 8)
	if tile.Bit(3, 4) != 0 {
		t.Fatalf("fresh tile not zeroed")
	}
	tile.SetBit(3, 4, 1)
	if tile.Bit(3, 4) != 1 {
		t.Fatalf("SetBit did not stick")
	}
	tile.SetBit(3, 4, 0)
	if tile.Bit(3, 4) != 0 {
		t.Fatalf("SetBit(0) did not stick")
	}
}

func TestReadWriteRow(t *testing.T) {
	tile := testTile(t, 4, 16)
	data := []byte{0xA5, 0x3C}
	if err := tile.WriteRow(2, data, 1<<30); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if err := tile.ReadRow(2, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xA5 || got[1] != 0x3C {
		t.Fatalf("ReadRow = %x, want a53c", got)
	}
	// Other rows untouched.
	if err := tile.ReadRow(1, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("row 1 disturbed: %x", got)
	}
}

func TestReadWriteRowErrors(t *testing.T) {
	tile := testTile(t, 4, 16)
	short := make([]byte, 1)
	if err := tile.ReadRow(0, short); err == nil {
		t.Errorf("short read buffer accepted")
	}
	if err := tile.WriteRow(0, short, 99); err == nil {
		t.Errorf("short write buffer accepted")
	}
	full := make([]byte, 2)
	if err := tile.ReadRow(-1, full); err == nil {
		t.Errorf("negative row accepted")
	}
	if err := tile.WriteRow(4, full, 99); err == nil {
		t.Errorf("out-of-range row accepted")
	}
}

func TestInterruptedWriteRowIsRepeatable(t *testing.T) {
	tile := testTile(t, 4, 16)
	data := []byte{0xFF, 0xFF}
	// Interrupted after 5 columns.
	if err := tile.WriteRow(0, data, 5); err != nil {
		t.Fatal(err)
	}
	if tile.Bit(0, 4) != 1 || tile.Bit(0, 5) != 0 {
		t.Fatalf("partial write boundary wrong")
	}
	// Re-perform in full: final state identical to a single full write.
	if err := tile.WriteRow(0, data, 1<<30); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 16; c++ {
		if tile.Bit(0, c) != 1 {
			t.Fatalf("column %d not written after repeat", c)
		}
	}
}

func TestPresetRowActiveOnly(t *testing.T) {
	tile := testTile(t, 4, 8)
	tile.SetActive([]uint16{1, 3, 5})
	if err := tile.PresetRow(2, mtj.AP, 1<<30); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 8; c++ {
		want := 0
		if c == 1 || c == 3 || c == 5 {
			want = 1
		}
		if tile.Bit(2, c) != want {
			t.Errorf("col %d = %d, want %d", c, tile.Bit(2, c), want)
		}
	}
}

func TestPresetRowPartial(t *testing.T) {
	tile := testTile(t, 4, 8)
	tile.SetActive([]uint16{1, 3, 5})
	if err := tile.PresetRow(2, mtj.AP, 2); err != nil {
		t.Fatal(err)
	}
	if tile.Bit(2, 1) != 1 || tile.Bit(2, 3) != 1 || tile.Bit(2, 5) != 0 {
		t.Errorf("partial preset wrong: %d %d %d", tile.Bit(2, 1), tile.Bit(2, 3), tile.Bit(2, 5))
	}
}

func TestActivationLatch(t *testing.T) {
	tile := testTile(t, 4, 8)
	tile.SetActive([]uint16{0, 7, 200}) // 200 beyond width: ignored
	if n := tile.ActiveCount(); n != 2 {
		t.Fatalf("ActiveCount = %d, want 2", n)
	}
	got := tile.ActiveColumns()
	if len(got) != 2 || got[0] != 0 || got[1] != 7 {
		t.Fatalf("ActiveColumns = %v", got)
	}
	// Replacement semantics.
	tile.SetActive([]uint16{3})
	if n := tile.ActiveCount(); n != 1 {
		t.Fatalf("replacement failed: %v", tile.ActiveColumns())
	}
	tile.LoseVolatile()
	if tile.ActiveCount() != 0 {
		t.Fatalf("LoseVolatile kept columns active")
	}
}

// execGate runs gate g on a fresh tile with the given input bits placed
// on even rows and the preset output on row 1, returning the output bit.
func execGate(t *testing.T, cfg *mtj.Config, g mtj.GateKind, bits []int, pulse PulseLength) int {
	t.Helper()
	tile := NewTile(cfg, 8, 4)
	tile.SetActive([]uint16{2})
	inRows := make([]int, len(bits))
	for i, b := range bits {
		inRows[i] = i * 2
		tile.SetBit(i*2, 2, b)
	}
	tile.SetBit(1, 2, int(mtj.Spec(g).Preset.Bit()))
	if err := tile.ExecLogic(g, inRows, 1, pulse); err != nil {
		t.Fatal(err)
	}
	return tile.Bit(1, 2)
}

func TestExecLogicAllGatesAllConfigs(t *testing.T) {
	for _, cfg := range mtj.Configs() {
		for g := mtj.GateKind(0); g.Valid(); g++ {
			n := mtj.Spec(g).Inputs
			for v := 0; v < 1<<n; v++ {
				bits := make([]int, n)
				states := make([]mtj.State, n)
				for i := range bits {
					bits[i] = (v >> i) & 1
					states[i] = mtj.FromBit(bits[i])
				}
				want := mtj.Evaluate(g, states).Bit()
				if got := execGate(t, cfg, g, bits, FullPulse); got != want {
					t.Errorf("%s: %s%v = %d, want %d", cfg.Name, g, bits, got, want)
				}
			}
		}
	}
}

func TestExecLogicOnlyActiveColumns(t *testing.T) {
	tile := testTile(t, 8, 4)
	tile.SetActive([]uint16{1})
	// Column 1: NAND(0,0)=1. Column 3 identical data but inactive.
	for _, c := range []int{1, 3} {
		tile.SetBit(0, c, 0)
		tile.SetBit(2, c, 0)
		tile.SetBit(1, c, 0) // preset for NAND
	}
	if err := tile.ExecLogic(mtj.NAND2, []int{0, 2}, 1, FullPulse); err != nil {
		t.Fatal(err)
	}
	if tile.Bit(1, 1) != 1 {
		t.Errorf("active column did not compute")
	}
	if tile.Bit(1, 3) != 0 {
		t.Errorf("inactive column computed")
	}
}

func TestExecLogicParityEnforced(t *testing.T) {
	tile := testTile(t, 8, 4)
	tile.SetActive([]uint16{0})
	if err := tile.ExecLogic(mtj.NAND2, []int{0, 2}, 4, FullPulse); err == nil {
		t.Errorf("same-parity output accepted")
	}
	if err := tile.ExecLogic(mtj.NAND2, []int{0, 2}, 7, FullPulse); err != nil {
		t.Errorf("valid parity rejected: %v", err)
	}
	if err := tile.ExecLogic(mtj.NAND2, []int{0}, 1, FullPulse); err == nil {
		t.Errorf("wrong arity accepted")
	}
	if err := tile.ExecLogic(mtj.NAND2, []int{0, 2}, 800, FullPulse); err == nil {
		t.Errorf("out-of-range output row accepted")
	}
}

// TestTableI reproduces Table I of the paper: the four cases of
// re-performing an interrupted AND gate.
func TestTableI(t *testing.T) {
	cfg := mtj.ModernSTT()
	run := func(a, b int, firstPulse float64) int {
		tile := NewTile(cfg, 8, 1)
		tile.SetActive([]uint16{0})
		tile.SetBit(0, 0, a)
		tile.SetBit(2, 0, b)
		tile.SetBit(1, 0, 1) // AND preset is 1
		// First (possibly interrupted) attempt.
		if err := tile.ExecLogic(mtj.AND2, []int{0, 2}, 1, func(int) float64 { return firstPulse }); err != nil {
			t.Fatal(err)
		}
		// Power restored: the controller re-performs the instruction.
		if err := tile.ExecLogic(mtj.AND2, []int{0, 2}, 1, FullPulse); err != nil {
			t.Fatal(err)
		}
		return tile.Bit(1, 0)
	}

	// Row 1 of Table I: output should not switch (inputs 1,1 → AND=1).
	// "Output did not switch before interrupt": repeating is the same as
	// performing for the first time.
	if got := run(1, 1, 0.4); got != 1 {
		t.Errorf("should-not-switch, interrupted: output %d, want 1", got)
	}
	// "Output did switch before interrupt" is impossible by construction:
	// even a full-length first pulse cannot switch it.
	if got := run(1, 1, 1.0); got != 1 {
		t.Errorf("should-not-switch, completed: output %d, want 1", got)
	}

	// Row 2: output should switch (input contains a 0 → AND=0).
	// Interrupted before switching: the repeat completes it.
	if got := run(0, 1, 0.4); got != 0 {
		t.Errorf("should-switch, interrupted: output %d, want 0", got)
	}
	// Switched before the interrupt: repetition cannot switch it back.
	if got := run(0, 1, 1.0); got != 0 {
		t.Errorf("should-switch, completed: output %d, want 0", got)
	}
	if got := run(0, 0, 1.0); got != 0 {
		t.Errorf("both-zero completed: output %d, want 0", got)
	}
}

// TestGateInterruptionIdempotencyProperty generalizes Table I to every
// gate, every input combination, and per-column partial pulses.
func TestGateInterruptionIdempotencyProperty(t *testing.T) {
	cfg := mtj.ProjectedSTT()
	prop := func(gateIdx uint8, inBits uint8, fracNum uint8) bool {
		g := mtj.GateKind(int(gateIdx) % mtj.NumGates)
		n := mtj.Spec(g).Inputs
		bits := make([]int, n)
		for i := range bits {
			bits[i] = int(inBits>>i) & 1
		}
		frac := float64(fracNum%128) / 100.0 // 0 .. 1.27
		interrupted := execGateWith(cfg, g, bits, func(int) float64 { return frac }, true)
		clean := execGateWith(cfg, g, bits, FullPulse, false)
		return interrupted == clean
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// execGateWith runs a gate with an optional interrupted first attempt
// followed by a full re-execution, returning the output bit.
func execGateWith(cfg *mtj.Config, g mtj.GateKind, bits []int, first PulseLength, interrupted bool) int {
	tile := NewTile(cfg, 8, 1)
	tile.SetActive([]uint16{0})
	inRows := make([]int, len(bits))
	for i, b := range bits {
		inRows[i] = i * 2
		tile.SetBit(i*2, 0, b)
	}
	tile.SetBit(1, 0, int(mtj.Spec(g).Preset.Bit()))
	if interrupted {
		if err := tile.ExecLogic(g, inRows, 1, first); err != nil {
			panic(err)
		}
	}
	if err := tile.ExecLogic(g, inRows, 1, FullPulse); err != nil {
		panic(err)
	}
	return tile.Bit(1, 0)
}
