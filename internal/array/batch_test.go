package array

import (
	"bytes"
	"math/rand"
	"testing"

	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// Batch-engine geometry: two tiles so tile addressing and broadcast ACT
// differ, and a column count above one word so the scalar machine's
// multi-word rows, rotation across word boundaries, and tail masking
// are all in play.
const (
	batchTestTiles = 2
	batchTestRows  = 16
	batchTestCols  = 70
)

// randBatchProgram emits a valid random instruction stream: activation
// changes (broadcast and per-tile, list and range forms), presets,
// logic over every gate kind, reads, and rotated writes — the full
// datapath surface the batch replay must reproduce.
func randBatchProgram(rng *rand.Rand, n int) isa.Program {
	var p isa.Program
	p = append(p, isa.ActRange(true, 0, 0, batchTestCols, 1))
	for len(p) < n {
		switch rng.Intn(10) {
		case 0: // narrow list activation
			cols := make([]uint16, 1+rng.Intn(isa.MaxActList))
			for i := range cols {
				cols[i] = uint16(rng.Intn(batchTestCols + 8)) // some beyond width
			}
			p = append(p, isa.ActList(rng.Intn(2) == 0, rng.Intn(batchTestTiles), cols))
		case 1: // ranged activation
			p = append(p, isa.ActRange(rng.Intn(2) == 0, rng.Intn(batchTestTiles),
				rng.Intn(batchTestCols), 1+rng.Intn(batchTestCols), 1+rng.Intn(3)))
		case 2:
			p = append(p, isa.Preset(rng.Intn(batchTestRows), mtj.FromBit(rng.Intn(2))))
		case 3:
			p = append(p, isa.Read(rng.Intn(batchTestTiles), rng.Intn(batchTestRows)))
		case 4:
			p = append(p, isa.WriteRot(rng.Intn(batchTestTiles), rng.Intn(batchTestRows),
				rng.Intn(2*batchTestCols))) // exercises the width wrap
		default:
			g := mtj.GateKind(rng.Intn(mtj.NumGates))
			spec := mtj.Spec(g)
			out := rng.Intn(batchTestRows)
			// Inputs: distinct rows of the opposite parity.
			perm := rng.Perm(batchTestRows / 2)
			ins := make([]int, spec.Inputs)
			for i := range ins {
				ins[i] = perm[i]*2 + 1 - out&1
			}
			p = append(p, isa.Logic(g, ins, out))
		}
	}
	return p
}

// seedLane fills one scalar machine with lane's random initial cell
// states, and mirrors them into the batch machine when b is non-nil.
func seedLane(rng *rand.Rand, m *Machine, b *BatchMachine, lane int) {
	for ti, t := range m.Tiles {
		for r := 0; r < t.Rows(); r++ {
			for c := 0; c < t.Cols(); c++ {
				bit := rng.Intn(2)
				t.SetBit(r, c, bit)
				if b != nil {
					b.SetLaneBit(lane, ti, r, c, bit)
				}
			}
		}
	}
}

// requireLaneEqual extracts lane from the batch machine and compares
// every byte of non-volatile state (cells, buffer) plus the restored
// activation latches against the sequentially-run scalar machine.
func requireLaneEqual(t *testing.T, b *BatchMachine, lane int, want *Machine) {
	t.Helper()
	got := NewMachine(want.Cfg, len(want.Tiles), want.Tiles[0].Rows(), want.Tiles[0].Cols())
	if err := b.StoreLane(lane, got); err != nil {
		t.Fatalf("lane %d: %v", lane, err)
	}
	for ti := range want.Tiles {
		wt, gt := want.Tiles[ti], got.Tiles[ti]
		for r := 0; r < wt.Rows(); r++ {
			for c := 0; c < wt.Cols(); c++ {
				if wt.Bit(r, c) != gt.Bit(r, c) {
					t.Fatalf("lane %d: tile %d cell (%d, %d): sequential %d, batched %d",
						lane, ti, r, c, wt.Bit(r, c), gt.Bit(r, c))
				}
			}
		}
		wa, ga := wt.ActiveColumns(), gt.ActiveColumns()
		if len(wa) != len(ga) {
			t.Fatalf("lane %d: tile %d: active %v (sequential) vs %v (batched)", lane, ti, wa, ga)
		}
		for i := range wa {
			if wa[i] != ga[i] {
				t.Fatalf("lane %d: tile %d: active %v (sequential) vs %v (batched)", lane, ti, wa, ga)
			}
		}
	}
	if !bytes.Equal(want.Buffer, got.Buffer) {
		t.Fatalf("lane %d: buffer % x (sequential) vs % x (batched)", lane, want.Buffer, got.Buffer)
	}
}

// runBatchedVsSequential is the shared differential harness: lanes
// random initial states, one random program, executed lane-by-lane on
// fresh scalar machines (the k-th sequential run) and once on the batch
// machine; every lane must match byte for byte.
func runBatchedVsSequential(t *testing.T, seed int64, lanes, progLen int) {
	t.Helper()
	cfg := mtj.ModernSTT()
	rng := rand.New(rand.NewSource(seed))
	prog := randBatchProgram(rng, progLen)
	flat, err := Flatten(prog, cfg, batchTestTiles, batchTestRows, batchTestCols)
	if err != nil {
		t.Fatal(err)
	}

	b := NewBatchMachine(batchTestTiles, batchTestRows, batchTestCols)
	seq := make([]*Machine, lanes)
	for lane := 0; lane < lanes; lane++ {
		m := NewMachine(cfg, batchTestTiles, batchTestRows, batchTestCols)
		seedLane(rng, m, b, lane)
		seq[lane] = m
	}
	for lane, m := range seq {
		for i, in := range prog {
			if err := m.Exec(in); err != nil {
				t.Fatalf("lane %d: instruction %d (%v): %v", lane, i, in, err)
			}
		}
	}
	if err := b.Replay(flat); err != nil {
		t.Fatal(err)
	}
	for lane, m := range seq {
		requireLaneEqual(t, b, lane, m)
	}
}

// FuzzBatchedVsSequential: for random gate streams and batch sizes
// 1–64, batched lane k must be byte-identical to the k-th sequential
// run — the batch engine's core proof obligation, mirroring the
// packed-vs-scalar fuzz of the column engine.
func FuzzBatchedVsSequential(f *testing.F) {
	f.Add(int64(1), uint8(1))
	f.Add(int64(2), uint8(7))
	f.Add(int64(3), uint8(63))
	f.Add(int64(4), uint8(64))
	f.Add(int64(5), uint8(33))
	f.Fuzz(func(t *testing.T, seed int64, rawLanes uint8) {
		lanes := int(rawLanes)%MaxLanes + 1
		runBatchedVsSequential(t, seed, lanes, 48)
	})
}

// TestBatchedVsSequentialSweep pins the differential check across every
// batch size in a normal test run (the fuzzer's seed corpus only covers
// a handful).
func TestBatchedVsSequentialSweep(t *testing.T) {
	for lanes := 1; lanes <= MaxLanes; lanes++ {
		runBatchedVsSequential(t, int64(1000+lanes), lanes, 32)
	}
}

// TestBatchPackUnpackIdentity: LoadLane then StoreLane is the identity
// on a machine's non-volatile state, for every lane count and for every
// lane — the packing layer's round-trip property.
func TestBatchPackUnpackIdentity(t *testing.T) {
	cfg := mtj.ModernSTT()
	rng := rand.New(rand.NewSource(7))
	for _, lanes := range []int{1, 2, 3, 13, 32, 63, 64} {
		b := NewBatchMachine(batchTestTiles, batchTestRows, batchTestCols)
		src := make([]*Machine, lanes)
		for lane := 0; lane < lanes; lane++ {
			m := NewMachine(cfg, batchTestTiles, batchTestRows, batchTestCols)
			seedLane(rng, m, nil, 0)
			for i := range m.Buffer {
				m.Buffer[i] = byte(rng.Intn(256))
			}
			// Mask buffer bits beyond the column count, as ReadRow's
			// unpack leaves them zero.
			m.Buffer[len(m.Buffer)-1] &= 1<<(batchTestCols%8) - 1
			src[lane] = m
			if err := b.LoadLane(lane, m); err != nil {
				t.Fatal(err)
			}
		}
		for lane, m := range src {
			requireLaneEqual(t, b, lane, m)
		}
	}
}

// TestBatch64CopiesIdenticalOutputs: a batch of 64 copies of one input
// must produce 64 identical outputs — lanes cannot interfere.
func TestBatch64CopiesIdenticalOutputs(t *testing.T) {
	cfg := mtj.ModernSTT()
	rng := rand.New(rand.NewSource(11))
	prog := randBatchProgram(rng, 40)
	flat, err := Flatten(prog, cfg, batchTestTiles, batchTestRows, batchTestCols)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatchMachine(batchTestTiles, batchTestRows, batchTestCols)
	one := NewMachine(cfg, batchTestTiles, batchTestRows, batchTestCols)
	seedLane(rng, one, nil, 0)
	for lane := 0; lane < MaxLanes; lane++ {
		if err := b.LoadLane(lane, one); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Replay(flat); err != nil {
		t.Fatal(err)
	}
	for _, tile := range b.Tiles {
		for i, w := range tile.lanes {
			if w != 0 && w != ^uint64(0) {
				t.Fatalf("cell %d diverged across identical lanes: %#x", i, w)
			}
		}
	}
	for c, w := range b.Buffer {
		if w != 0 && w != ^uint64(0) {
			t.Fatalf("buffer column %d diverged across identical lanes: %#x", c, w)
		}
	}
}

// TestBatchReplayRejectsWrongGeometry: a program flattened for one
// geometry must not replay on another.
func TestBatchReplayRejectsWrongGeometry(t *testing.T) {
	cfg := mtj.ModernSTT()
	prog := isa.Program{isa.ActRange(true, 0, 0, 8, 1)}
	flat, err := Flatten(prog, cfg, 1, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewBatchMachine(1, 8, 16).Replay(flat); err == nil {
		t.Fatal("replay accepted a mismatched geometry")
	}
	if err := NewBatchMachine(2, 8, 8).Replay(flat); err == nil {
		t.Fatal("replay accepted a mismatched tile count")
	}
}

// TestFlattenRejectsInvalidPrograms: flattening performs the scalar
// path's validation once, at compile time.
func TestFlattenRejectsInvalidPrograms(t *testing.T) {
	cfg := mtj.ModernSTT()
	cases := []struct {
		name string
		prog isa.Program
	}{
		{"row out of range", isa.Program{isa.Read(0, 12)}},
		{"tile out of range", isa.Program{isa.Read(3, 0)}},
		{"parity violation", isa.Program{{Kind: isa.KindLogic, Gate: mtj.NAND2, In: [3]uint16{1, 3}, Out: 5}}},
		{"act tile out of range", isa.Program{isa.ActList(false, 2, []uint16{0})}},
	}
	for _, tc := range cases {
		if _, err := Flatten(tc.prog, cfg, 2, 8, 8); err == nil {
			t.Errorf("%s: flatten accepted the program", tc.name)
		}
	}
}
